(** Majority-Inverter Graphs (MIGs).

    A MIG is a DAG whose internal nodes are 3-input majority gates and whose
    edges may carry complement attributes (Amarù et al., DAC 2014).  This
    module provides the node store: structural hashing, fanout tracking, node
    substitution with cascading re-normalization, and mark-and-compact
    cleanup.  The Ω/Ψ rewrite rules live in {!Mig_algebra}; whole-graph
    passes in {!Mig_passes}.

    Signals are integers [2*node + complement]; the node with index 0 is the
    constant-false node, so [const0 = 0] and [const1 = 1].  Structural
    hashing keys on the *sorted fanin triple with polarities*: no polarity
    canonicalization is performed, because the placement of complement
    attributes is itself an optimization dimension for RRAM mapping (each
    complemented edge costs one RRAM and contributes to the step count). *)

type t

type signal = int

(** {1 Signals} *)

val const0 : signal
val const1 : signal
val not_ : signal -> signal
val node_of : signal -> int
val is_compl : signal -> bool
val signal_of : int -> bool -> signal
(** [signal_of node compl]. *)

(** {1 Construction} *)

val create : unit -> t

val add_pi : t -> signal
(** Append a primary input; returns its (positive) signal. *)

val maj : t -> signal -> signal -> signal -> signal
(** Structural-hashed majority node creation.  Applies the Ω.M simplification
    rules [M(x,x,z) = x] and [M(x,¬x,z) = z] eagerly, so the returned signal
    may not be a fresh node. *)

val and_ : t -> signal -> signal -> signal
(** [M(a, b, 0)]. *)

val or_ : t -> signal -> signal -> signal
(** [M(a, b, 1)]. *)

val xor_ : t -> signal -> signal -> signal
(** Three majority nodes. *)

val mux : t -> signal -> signal -> signal -> signal
(** [mux s a b] = if [s] then [a] else [b]; three majority nodes. *)

val add_po : t -> signal -> int
(** Append a primary output; returns its index. *)

(** {1 Inspection} *)

type kind = Const | Pi of int | Gate

val kind : t -> int -> kind
val num_pis : t -> int
val num_pos : t -> int
val num_nodes : t -> int
(** Allocated node records, including dead ones (an upper bound on ids). *)

val num_gates : t -> int
(** O(1) maintained count of live majority gates, including gates no longer
    reachable from the outputs (e.g. speculative nodes a rewrite rule built
    and abandoned).  Use {!size} for the reachable count. *)

val size : t -> int
(** Number of live majority gates reachable from the outputs.  Computed by a
    traversal; {!Mig_analysis.size} maintains the same number in O(1). *)

val pi : t -> int -> signal
val po : t -> int -> signal
val set_po : t -> int -> signal -> unit
val pos : t -> signal array
val fanins : t -> int -> signal array
(** The three fanin signals of a gate (sorted ascending); [[||]] for
    constants and inputs. *)

val fanout : t -> int -> int list
(** Live gate nodes that use this node as a fanin, newest first. *)

val fanout_size : t -> int -> int
(** Number of live users — O(1), maintained alongside the fanout array. *)

val fanout_iter : t -> int -> (int -> unit) -> unit
(** Iterate the live users of a node, oldest first, without allocating.  The
    callback must not rewrite the graph. *)

val po_refs : t -> int -> int
(** How many primary outputs are driven (possibly complemented) by the
    node.  O(1): maintained alongside the output array. *)

val is_dead : t -> int -> bool

val lookup : t -> signal -> signal -> signal -> signal option
(** Structural-hash lookup without creating: the signal an equivalent
    majority node would return, if one already exists or the triple
    simplifies. *)

(** {1 Rewriting support} *)

val substitute : t -> int -> signal -> unit
(** [substitute t n s] replaces node [n] by signal [s] everywhere (fanouts
    and outputs), cascading the re-normalization of affected fanout nodes
    (majority-rule simplification and strash merging).  [s]'s cone must not
    contain [n]. *)

val cleanup : t -> t
(** Compacted copy containing only nodes reachable from the outputs, in
    topological order.  Primary inputs and outputs keep their indices. *)

val topo_order : t -> int list
(** Live gate nodes reachable from the outputs, fanins before fanouts. *)

val iter_topo : t -> (int -> unit) -> unit
(** Call [f] on every live gate reachable from the outputs, fanins before
    fanouts — the same order as {!topo_order} without materializing the
    list.  Iterative over a reusable scratch (stack-safe on deep graphs);
    the callback must not rewrite the graph (use {!foreach_gate} for that). *)

val foreach_gate : t -> (int -> unit) -> unit
(** Iterate {!topo_order} (snapshot taken before the first call, so the
    callback may rewrite the graph). *)

(** {1 Mutation events}

    A single listener slot (one load-and-branch when absent) lets an analysis
    layer such as {!Mig_analysis} track the graph incrementally.  Events fire
    after the graph is consistent: [Gate_added] once the node is strashed and
    wired, [Gate_killed] with the dead node's fanin array still readable,
    [Refanin] with the superseded fanin array (ownership passes to the
    listener), [Po_redirected]/[Po_added] after the output array is
    updated. *)

type event =
  | Gate_added of int
  | Gate_killed of int
  | Refanin of { node : int; old_fanins : signal array }
  | Po_added of int  (** output index *)
  | Po_redirected of { index : int; old_po : signal }

val on_event : t -> (event -> unit) option -> unit
(** Install (or clear) the mutation listener.  Last install wins. *)

(** Extension slot for an attached analysis, so higher layers can cache state
    on the graph without this module depending on them. *)
type attachment = ..

val attachment : t -> attachment option
val set_attachment : t -> attachment option -> unit

val pp_stats : Format.formatter -> t -> unit
