type signal = int
type kind = Const | Pi of int | Gate

type node = {
  mutable kind : kind;
  mutable fanin : signal array;
  mutable fanout : int list;
  mutable dead : bool;
}

type t = {
  mutable nodes : node array;
  mutable n : int;
  mutable pis : int array;
  mutable npis : int;
  mutable pout : signal array;
  mutable npos : int;
  strash : (int * int * int, int) Hashtbl.t;
}

let const0 = 0
let const1 = 1
let not_ s = s lxor 1
let node_of s = s lsr 1
let is_compl s = s land 1 = 1
let signal_of n c = (n lsl 1) lor if c then 1 else 0

let fresh_node kind = { kind; fanin = [||]; fanout = []; dead = false }

let create () =
  let t =
    {
      nodes = Array.make 64 (fresh_node Const);
      n = 0;
      pis = Array.make 8 0;
      npis = 0;
      pout = Array.make 8 0;
      npos = 0;
      strash = Hashtbl.create 997;
    }
  in
  (* node 0 is the constant-false node *)
  t.nodes.(0) <- fresh_node Const;
  t.n <- 1;
  t

let grow arr n default =
  if n >= Array.length arr then begin
    let bigger = Array.make (2 * Array.length arr) default in
    Array.blit arr 0 bigger 0 n;
    bigger
  end
  else arr

let push_node t node =
  t.nodes <- grow t.nodes t.n (fresh_node Const);
  t.nodes.(t.n) <- node;
  t.n <- t.n + 1;
  t.n - 1

let add_pi t =
  let id = push_node t (fresh_node (Pi t.npis)) in
  t.pis <- grow t.pis t.npis 0;
  t.pis.(t.npis) <- id;
  t.npis <- t.npis + 1;
  signal_of id false

let sort3 a b c =
  let a, b = if a <= b then (a, b) else (b, a) in
  let b, c = if b <= c then (b, c) else (c, b) in
  let a, b = if a <= b then (a, b) else (b, a) in
  (a, b, c)

(* Ω.M on a sorted triple: either the triple simplifies to a signal, or it is
   a genuine gate over three distinct nodes.  Complementary signals of the
   same node are adjacent integers, so checking the two adjacent pairs
   suffices. *)
let simplify3 a b c =
  if a = b then Some a
  else if b = c then Some b
  else if a lxor b = 1 then Some c
  else if b lxor c = 1 then Some a
  else None

let add_fanout t n f = t.nodes.(n).fanout <- f :: t.nodes.(n).fanout

let remove_fanout t n f =
  let rec drop = function
    | [] -> []
    | x :: rest -> if x = f then rest else x :: drop rest
  in
  t.nodes.(n).fanout <- drop t.nodes.(n).fanout

let lookup t a b c =
  let a, b, c = sort3 a b c in
  match simplify3 a b c with
  | Some s -> Some s
  | None -> (
      match Hashtbl.find_opt t.strash (a, b, c) with
      | Some n when not t.nodes.(n).dead -> Some (signal_of n false)
      | _ -> None)

(* Ω.M fires eagerly on node creation (see the module doc of Mig_algebra);
   counting it here covers every construction and rewrite path. *)
let c_omega_m_hit = Obs.counter "mig.rule/omega_m.hits"

let maj t a b c =
  let a, b, c = sort3 a b c in
  match simplify3 a b c with
  | Some s ->
      Obs.incr c_omega_m_hit;
      s
  | None -> (
      match Hashtbl.find_opt t.strash (a, b, c) with
      | Some n when not t.nodes.(n).dead -> signal_of n false
      | _ ->
          let node = fresh_node Gate in
          node.fanin <- [| a; b; c |];
          let id = push_node t node in
          Hashtbl.replace t.strash (a, b, c) id;
          add_fanout t (node_of a) id;
          add_fanout t (node_of b) id;
          add_fanout t (node_of c) id;
          signal_of id false)

let and_ t a b = maj t a b const0
let or_ t a b = maj t a b const1

let xor_ t a b =
  let nand = not_ (and_ t a b) in
  let both = or_ t a b in
  and_ t nand both

let mux t s a b =
  let when_true = and_ t s a in
  let when_false = and_ t (not_ s) b in
  or_ t when_true when_false

let add_po t s =
  t.pout <- grow t.pout t.npos 0;
  t.pout.(t.npos) <- s;
  t.npos <- t.npos + 1;
  t.npos - 1

let kind t n = t.nodes.(n).kind
let num_pis t = t.npis
let num_pos t = t.npos
let num_nodes t = t.n
let pi t i = signal_of t.pis.(i) false
let po t i = t.pout.(i)
let set_po t i s = t.pout.(i) <- s
let pos t = Array.sub t.pout 0 t.npos
let fanins t n = t.nodes.(n).fanin
let fanout t n = List.filter (fun f -> not t.nodes.(f).dead) t.nodes.(n).fanout
let fanout_size t n = List.length (fanout t n)
let is_dead t n = t.nodes.(n).dead

let po_refs t n =
  let count = ref 0 in
  for i = 0 to t.npos - 1 do
    if node_of t.pout.(i) = n then incr count
  done;
  !count

let strash_key t n =
  let f = t.nodes.(n).fanin in
  (f.(0), f.(1), f.(2))

let unregister t n =
  match Hashtbl.find_opt t.strash (strash_key t n) with
  | Some m when m = n -> Hashtbl.remove t.strash (strash_key t n)
  | _ -> ()

(* Kill a gate node: drop its strash entry and detach it from its fanins'
   fanout lists.  The fanout list of [n] itself is the caller's business.
   Inputs and constants are never killed: substituting one merely redirects
   its users while the node itself stays alive. *)
let kill t n =
  let node = t.nodes.(n) in
  if node.kind = Gate && not node.dead then begin
    unregister t n;
    Array.iter (fun s -> remove_fanout t (node_of s) n) node.fanin;
    node.dead <- true
  end

let rec substitute t n s =
  let node = t.nodes.(n) in
  if not node.dead then begin
    assert (node_of s <> n);
    for i = 0 to t.npos - 1 do
      if node_of t.pout.(i) = n then t.pout.(i) <- s lxor (t.pout.(i) land 1)
    done;
    let fos = node.fanout in
    node.fanout <- [];
    kill t n;
    List.iter (fun f -> if not t.nodes.(f).dead then refanin t f n s) fos
  end

(* Rewrite fanout node [f] after its fanin node [n] was replaced by [s]:
   recompute the fanin triple, re-simplify (the replacement may collapse the
   gate) and re-hash (the new triple may collide with an existing gate); both
   cases cascade into a further substitution of [f] itself. *)
and refanin t f n s =
  let fnode = t.nodes.(f) in
  let updated =
    Array.map (fun g -> if node_of g = n then s lxor (g land 1) else g) fnode.fanin
  in
  let a, b, c = sort3 updated.(0) updated.(1) updated.(2) in
  match simplify3 a b c with
  | Some r -> substitute t f r
  | None -> (
      match Hashtbl.find_opt t.strash (a, b, c) with
      | Some g when g <> f && not t.nodes.(g).dead -> substitute t f (signal_of g false)
      | _ ->
          unregister t f;
          Array.iter
            (fun g -> if node_of g <> n then remove_fanout t (node_of g) f)
            fnode.fanin;
          fnode.fanin <- [| a; b; c |];
          Hashtbl.replace t.strash (a, b, c) f;
          Array.iter (fun g -> add_fanout t (node_of g) f) fnode.fanin)

let topo_order t =
  let visited = Array.make t.n false in
  let order = ref [] in
  let rec visit n =
    if not visited.(n) then begin
      visited.(n) <- true;
      let node = t.nodes.(n) in
      match node.kind with
      | Const | Pi _ -> ()
      | Gate ->
          Array.iter (fun s -> visit (node_of s)) node.fanin;
          order := n :: !order
    end
  in
  for i = 0 to t.npos - 1 do
    visit (node_of t.pout.(i))
  done;
  List.rev !order

let size t = List.length (topo_order t)

let foreach_gate t f =
  let order = topo_order t in
  List.iter (fun n -> if not t.nodes.(n).dead then f n) order

let cleanup t =
  let fresh = create () in
  let map = Array.make t.n (-1) in
  map.(0) <- 0;
  for i = 0 to t.npis - 1 do
    map.(t.pis.(i)) <- node_of (add_pi fresh)
  done;
  let rec copy n =
    if map.(n) >= 0 then map.(n)
    else begin
      let node = t.nodes.(n) in
      let f s = signal_of (copy (node_of s)) (is_compl s) in
      let s = maj fresh (f node.fanin.(0)) (f node.fanin.(1)) (f node.fanin.(2)) in
      (* A live gate triple cannot simplify, and strashing in the fresh graph
         only merges identical gates, so the copy is a positive signal. *)
      assert (not (is_compl s));
      map.(n) <- node_of s;
      map.(n)
    end
  in
  for i = 0 to t.npos - 1 do
    let s = t.pout.(i) in
    ignore (add_po fresh (signal_of (copy (node_of s)) (is_compl s)))
  done;
  fresh

let pp_stats ppf t =
  Format.fprintf ppf "pis=%d pos=%d gates=%d" t.npis t.npos (size t)
