type signal = int
type kind = Const | Pi of int | Gate

type node = {
  mutable kind : kind;
  mutable fanin : signal array;
  (* Counted fanout: the first [nfo] entries of [fanout] are the users, in
     insertion order (oldest first) with removals tombstoned as [-1], so a
     detach is O(1) instead of an order-preserving shift (which made heavy
     substitution cascades quadratic on high-fanout nodes — the constant
     node fans out to every AND/OR gate).  Holes are squeezed out, order
     preserved, when an append finds the array at least half empty.  The
     public view ({!fanout}) presents live users newest-first to preserve
     the historical cons-list order that level-balancing heuristics
     iterate. *)
  mutable fanout : int array;
  mutable nfo : int;
  mutable nlive : int;
  (* For a gate, [fo_slot.(i)] is the index of this gate inside
     [fanin.(i)]'s fanout array — the back-pointers that make tombstoning
     O(1).  Kept current by compaction; [[||]] for constants and inputs. *)
  mutable fo_slot : int array;
  mutable dead : bool;
}

(* Mutation events, emitted after the graph is consistent again so a
   listener can read the post-state (fanins, fanouts, outputs).  [Refanin]
   hands over the pre-rewrite fanin array (ownership transferred: the node
   now holds a fresh array). *)
type event =
  | Gate_added of int
  | Gate_killed of int
  | Refanin of { node : int; old_fanins : signal array }
  | Po_added of int
  | Po_redirected of { index : int; old_po : signal }

type attachment = ..

type t = {
  mutable nodes : node array;
  mutable n : int;
  mutable pis : int array;
  mutable npis : int;
  mutable pout : signal array;
  mutable npos : int;
  strash : (int * int * int, int) Hashtbl.t;
  mutable porefs : int array;
  mutable ngates : int;
  mutable listener : (event -> unit) option;
  mutable attachment : attachment option;
  (* Reusable DFS scratch: epoch-marked visited array plus an explicit stack
     of packed [node * 4 + next_fanin_index] states, so traversals allocate
     nothing steady-state and never overflow the OCaml stack. *)
  mutable mark : int array;
  mutable epoch : int;
  mutable dfs_stack : int array;
}

let const0 = 0
let const1 = 1
let not_ s = s lxor 1
let node_of s = s lsr 1
let is_compl s = s land 1 = 1
let signal_of n c = (n lsl 1) lor if c then 1 else 0

let fresh_node kind =
  { kind; fanin = [||]; fanout = [||]; nfo = 0; nlive = 0; fo_slot = [||]; dead = false }

let create () =
  let t =
    {
      nodes = Array.make 64 (fresh_node Const);
      n = 0;
      pis = Array.make 8 0;
      npis = 0;
      pout = Array.make 8 0;
      npos = 0;
      strash = Hashtbl.create 997;
      porefs = Array.make 64 0;
      ngates = 0;
      listener = None;
      attachment = None;
      mark = Array.make 64 0;
      epoch = 0;
      dfs_stack = Array.make 64 0;
    }
  in
  (* node 0 is the constant-false node *)
  t.nodes.(0) <- fresh_node Const;
  t.n <- 1;
  t

let[@inline] emit t e = match t.listener with None -> () | Some f -> f e
let on_event t f = t.listener <- f
let attachment t = t.attachment
let set_attachment t a = t.attachment <- a

let grow arr n default =
  if n >= Array.length arr then begin
    let bigger = Array.make (2 * Array.length arr) default in
    Array.blit arr 0 bigger 0 n;
    bigger
  end
  else arr

let push_node t node =
  t.nodes <- grow t.nodes t.n (fresh_node Const);
  t.porefs <- grow t.porefs t.n 0;
  t.nodes.(t.n) <- node;
  t.porefs.(t.n) <- 0;
  t.n <- t.n + 1;
  t.n - 1

let add_pi t =
  let id = push_node t (fresh_node (Pi t.npis)) in
  t.pis <- grow t.pis t.npis 0;
  t.pis.(t.npis) <- id;
  t.npis <- t.npis + 1;
  signal_of id false

let sort3 a b c =
  let a, b = if a <= b then (a, b) else (b, a) in
  let b, c = if b <= c then (b, c) else (c, b) in
  let a, b = if a <= b then (a, b) else (b, a) in
  (a, b, c)

(* Ω.M on a sorted triple: either the triple simplifies to a signal, or it is
   a genuine gate over three distinct nodes.  Complementary signals of the
   same node are adjacent integers, so checking the two adjacent pairs
   suffices. *)
let simplify3 a b c =
  if a = b then Some a
  else if b = c then Some b
  else if a lxor b = 1 then Some c
  else if b lxor c = 1 then Some a
  else None

(* Squeeze the tombstones out of [n]'s fanout array in place, preserving the
   order of the live entries, and re-aim the survivors' back-pointers (each
   survivor is a gate with [n] as exactly one of its three distinct fanins). *)
let compact_fanout t n =
  let node = t.nodes.(n) in
  let w = ref 0 in
  for r = 0 to node.nfo - 1 do
    let g = node.fanout.(r) in
    if g >= 0 then begin
      node.fanout.(!w) <- g;
      let gn = t.nodes.(g) in
      let fi = gn.fanin in
      if node_of fi.(0) = n then gn.fo_slot.(0) <- !w
      else if node_of fi.(1) = n then gn.fo_slot.(1) <- !w
      else gn.fo_slot.(2) <- !w;
      incr w
    end
  done;
  node.nfo <- !w

(* [add_fanout t n f i] appends user [f] to [n]'s fanout and records the slot
   in [f]'s back-pointer for fanin position [i].  When the append needs room
   and at least half the occupied prefix is tombstones, compact instead of
   growing — amortized O(1) and the array never exceeds ~2x the live count. *)
let add_fanout t n f i =
  let node = t.nodes.(n) in
  if node.nfo >= Array.length node.fanout then begin
    if node.nfo >= 8 && 2 * node.nlive <= node.nfo then compact_fanout t n
    else begin
      let bigger = Array.make (max 4 (2 * Array.length node.fanout)) 0 in
      Array.blit node.fanout 0 bigger 0 node.nfo;
      node.fanout <- bigger
    end
  end;
  node.fanout.(node.nfo) <- f;
  t.nodes.(f).fo_slot.(i) <- node.nfo;
  node.nfo <- node.nfo + 1;
  node.nlive <- node.nlive + 1

(* A gate's three fanins are distinct nodes (the sorted triple survived Ω.M),
   so a user appears at most once; its back-pointer names the slot and removal
   is an O(1) tombstone.  The slot is validated before writing: [substitute]
   detaches a whole fanout array at once, which leaves the back-pointers of
   the captured users stale until the cascade rewrites them. *)
let remove_fanout t n f slot =
  let node = t.nodes.(n) in
  if slot < node.nfo && node.fanout.(slot) = f then begin
    node.fanout.(slot) <- -1;
    node.nlive <- node.nlive - 1
  end

let lookup t a b c =
  let a, b, c = sort3 a b c in
  match simplify3 a b c with
  | Some s -> Some s
  | None -> (
      match Hashtbl.find_opt t.strash (a, b, c) with
      | Some n when not t.nodes.(n).dead -> Some (signal_of n false)
      | _ -> None)

(* Ω.M fires eagerly on node creation (see the module doc of Mig_algebra);
   counting it here covers every construction and rewrite path. *)
let c_omega_m_hit = Obs.counter "mig.rule/omega_m.hits"

let maj t a b c =
  let a, b, c = sort3 a b c in
  match simplify3 a b c with
  | Some s ->
      Obs.incr c_omega_m_hit;
      s
  | None -> (
      match Hashtbl.find_opt t.strash (a, b, c) with
      | Some n when not t.nodes.(n).dead -> signal_of n false
      | _ ->
          let node = fresh_node Gate in
          node.fanin <- [| a; b; c |];
          node.fo_slot <- Array.make 3 0;
          let id = push_node t node in
          Hashtbl.replace t.strash (a, b, c) id;
          add_fanout t (node_of a) id 0;
          add_fanout t (node_of b) id 1;
          add_fanout t (node_of c) id 2;
          t.ngates <- t.ngates + 1;
          emit t (Gate_added id);
          signal_of id false)

let and_ t a b = maj t a b const0
let or_ t a b = maj t a b const1

let xor_ t a b =
  let nand = not_ (and_ t a b) in
  let both = or_ t a b in
  and_ t nand both

let mux t s a b =
  let when_true = and_ t s a in
  let when_false = and_ t (not_ s) b in
  or_ t when_true when_false

let add_po t s =
  t.pout <- grow t.pout t.npos 0;
  t.pout.(t.npos) <- s;
  t.npos <- t.npos + 1;
  t.porefs.(node_of s) <- t.porefs.(node_of s) + 1;
  let i = t.npos - 1 in
  emit t (Po_added i);
  i

let kind t n = t.nodes.(n).kind
let num_pis t = t.npis
let num_pos t = t.npos
let num_nodes t = t.n
let num_gates t = t.ngates
let pi t i = signal_of t.pis.(i) false
let po t i = t.pout.(i)

let set_po t i s =
  let old = t.pout.(i) in
  if old <> s then begin
    t.pout.(i) <- s;
    t.porefs.(node_of old) <- t.porefs.(node_of old) - 1;
    t.porefs.(node_of s) <- t.porefs.(node_of s) + 1;
    emit t (Po_redirected { index = i; old_po = old })
  end

let pos t = Array.sub t.pout 0 t.npos
let fanins t n = t.nodes.(n).fanin

let fanout t n =
  let node = t.nodes.(n) in
  let acc = ref [] in
  for i = 0 to node.nfo - 1 do
    let f = node.fanout.(i) in
    if f >= 0 && not t.nodes.(f).dead then acc := f :: !acc
  done;
  !acc

let fanout_size t n = t.nodes.(n).nlive

let fanout_iter t n f =
  let node = t.nodes.(n) in
  for i = 0 to node.nfo - 1 do
    let g = node.fanout.(i) in
    if g >= 0 && not t.nodes.(g).dead then f g
  done

let is_dead t n = t.nodes.(n).dead
let po_refs t n = t.porefs.(n)

let strash_key t n =
  let f = t.nodes.(n).fanin in
  (f.(0), f.(1), f.(2))

let unregister t n =
  match Hashtbl.find_opt t.strash (strash_key t n) with
  | Some m when m = n -> Hashtbl.remove t.strash (strash_key t n)
  | _ -> ()

(* Kill a gate node: drop its strash entry and detach it from its fanins'
   fanout lists.  The fanout list of [n] itself is the caller's business.
   Inputs and constants are never killed: substituting one merely redirects
   its users while the node itself stays alive.  The [Gate_killed] event
   fires with the fanin array still intact so listeners can walk it. *)
let kill t n =
  let node = t.nodes.(n) in
  if node.kind = Gate && not node.dead then begin
    unregister t n;
    Array.iteri
      (fun i s -> remove_fanout t (node_of s) n node.fo_slot.(i))
      node.fanin;
    node.dead <- true;
    t.ngates <- t.ngates - 1;
    emit t (Gate_killed n)
  end

let rec substitute t n s =
  let node = t.nodes.(n) in
  if not node.dead then begin
    assert (node_of s <> n);
    (* The maintained PO reference count gates the output scan: substitution
       runs thousands of times per sweep and scanning every output each time
       was an O(gates * outputs) term at the 10^5 tier. *)
    if t.porefs.(n) > 0 then
      for i = 0 to t.npos - 1 do
        if node_of t.pout.(i) = n then begin
          let old = t.pout.(i) in
          t.pout.(i) <- s lxor (old land 1);
          t.porefs.(n) <- t.porefs.(n) - 1;
          let m = node_of t.pout.(i) in
          t.porefs.(m) <- t.porefs.(m) + 1;
          emit t (Po_redirected { index = i; old_po = old })
        end
      done;
    let fos = node.fanout in
    let nfos = node.nfo in
    node.fanout <- [||];
    node.nfo <- 0;
    node.nlive <- 0;
    kill t n;
    (* The historical fanout order was a cons list (newest first); iterate
       the array back-to-front, skipping tombstones, to keep the cascade
       order bit-identical. *)
    for i = nfos - 1 downto 0 do
      let f = fos.(i) in
      if f >= 0 && not t.nodes.(f).dead then refanin t f n s
    done
  end

(* Rewrite fanout node [f] after its fanin node [n] was replaced by [s]:
   recompute the fanin triple, re-simplify (the replacement may collapse the
   gate) and re-hash (the new triple may collide with an existing gate); both
   cases cascade into a further substitution of [f] itself. *)
and refanin t f n s =
  let fnode = t.nodes.(f) in
  let updated =
    Array.map (fun g -> if node_of g = n then s lxor (g land 1) else g) fnode.fanin
  in
  let a, b, c = sort3 updated.(0) updated.(1) updated.(2) in
  match simplify3 a b c with
  | Some r -> substitute t f r
  | None -> (
      match Hashtbl.find_opt t.strash (a, b, c) with
      | Some g when g <> f && not t.nodes.(g).dead -> substitute t f (signal_of g false)
      | _ ->
          unregister t f;
          Array.iteri
            (fun i g ->
              if node_of g <> n then remove_fanout t (node_of g) f fnode.fo_slot.(i))
            fnode.fanin;
          let old_fanins = fnode.fanin in
          fnode.fanin <- [| a; b; c |];
          Hashtbl.replace t.strash (a, b, c) f;
          Array.iteri (fun i g -> add_fanout t (node_of g) f i) fnode.fanin;
          emit t (Refanin { node = f; old_fanins }))

(* Iterative post-order DFS from the outputs over the reusable scratch; calls
   [f] on each reachable live gate, fanins first.  Identical visit order to
   the recursive formulation (children explored in fanin order, emitted on
   completion), so consumers relying on the historical order are safe.
   [rev_fanins] explores fanin 2 before 0 — the order the historical
   recursive [cleanup] produced via right-to-left argument evaluation, which
   pins fresh-graph node numbering (and hence signal sort order downstream). *)
let iter_topo_gen t ~rev_fanins f =
  if Array.length t.mark < t.n then begin
    let bigger = Array.make (max t.n (2 * Array.length t.mark)) 0 in
    Array.blit t.mark 0 bigger 0 (Array.length t.mark);
    t.mark <- bigger
  end;
  t.epoch <- t.epoch + 1;
  let ep = t.epoch in
  let mark = t.mark in
  let sp = ref 0 in
  let push v =
    if !sp >= Array.length t.dfs_stack then begin
      let bigger = Array.make (2 * Array.length t.dfs_stack) 0 in
      Array.blit t.dfs_stack 0 bigger 0 !sp;
      t.dfs_stack <- bigger
    end;
    t.dfs_stack.(!sp) <- v;
    incr sp
  in
  for i = 0 to t.npos - 1 do
    let root = node_of t.pout.(i) in
    if mark.(root) <> ep then begin
      mark.(root) <- ep;
      (match t.nodes.(root).kind with
      | Const | Pi _ -> ()
      | Gate -> push (root * 4));
      while !sp > 0 do
        let v = t.dfs_stack.(!sp - 1) in
        let n = v lsr 2 and idx = v land 3 in
        if idx = 3 then begin
          decr sp;
          f n
        end
        else begin
          t.dfs_stack.(!sp - 1) <- v + 1;
          let idx = if rev_fanins then 2 - idx else idx in
          let m = node_of t.nodes.(n).fanin.(idx) in
          if mark.(m) <> ep then begin
            mark.(m) <- ep;
            match t.nodes.(m).kind with Const | Pi _ -> () | Gate -> push (m * 4)
          end
        end
      done
    end
  done

let iter_topo t f = iter_topo_gen t ~rev_fanins:false f

let topo_order t =
  let acc = ref [] in
  iter_topo t (fun n -> acc := n :: !acc);
  List.rev !acc

let size t =
  let count = ref 0 in
  iter_topo t (fun _ -> incr count);
  !count

let foreach_gate t f =
  let order = topo_order t in
  List.iter (fun n -> if not t.nodes.(n).dead then f n) order

let cleanup t =
  let fresh = create () in
  let map = Array.make t.n (-1) in
  map.(0) <- 0;
  for i = 0 to t.npis - 1 do
    map.(t.pis.(i)) <- node_of (add_pi fresh)
  done;
  iter_topo_gen t ~rev_fanins:true (fun n ->
      let node = t.nodes.(n) in
      let f s = signal_of map.(node_of s) (is_compl s) in
      let s = maj fresh (f node.fanin.(0)) (f node.fanin.(1)) (f node.fanin.(2)) in
      (* A live gate triple cannot simplify, and strashing in the fresh graph
         only merges identical gates, so the copy is a positive signal. *)
      assert (not (is_compl s));
      map.(n) <- node_of s);
  for i = 0 to t.npos - 1 do
    let s = t.pout.(i) in
    ignore (add_po fresh (signal_of map.(node_of s) (is_compl s)))
  done;
  fresh

let pp_stats ppf t =
  Format.fprintf ppf "pis=%d pos=%d gates=%d" t.npis t.npos (size t)
