type realization = Imp | Maj

let rrams_per_gate = function Imp -> 6 | Maj -> 4
let steps_per_level = function Imp -> 10 | Maj -> 3

type cost = { rrams : int; steps : int }

let of_levels realization (lv : Mig_levels.t) =
  let k_r = rrams_per_gate realization in
  let k_s = steps_per_level realization in
  let rrams = ref 0 in
  for i = 0 to lv.Mig_levels.depth + 1 do
    let ni = if i < Array.length lv.gates_per_level then lv.gates_per_level.(i) else 0 in
    let ci = if i < Array.length lv.compl_per_level then lv.compl_per_level.(i) else 0 in
    rrams := max !rrams ((k_r * ni) + ci)
  done;
  let steps = (k_s * lv.depth) + Mig_levels.num_levels_with_compl lv in
  { rrams = !rrams; steps }

let of_mig realization mig =
  let a = Mig_analysis.of_mig mig in
  let rrams, steps =
    Mig_analysis.table1 a ~rrams_per_gate:(rrams_per_gate realization)
      ~steps_per_level:(steps_per_level realization)
  in
  { rrams; steps }

let pareto_better a b =
  a.rrams <= b.rrams && a.steps <= b.steps && (a.rrams < b.rrams || a.steps < b.steps)

let weighted ?(step_weight = 4.0) c = float_of_int c.rrams +. (step_weight *. float_of_int c.steps)

let pp ppf c = Format.fprintf ppf "R=%d S=%d" c.rrams c.steps

let pp_realization ppf = function
  | Imp -> Format.pp_print_string ppf "IMP"
  | Maj -> Format.pp_print_string ppf "MAJ"
