type realization = Imp | Maj

let rrams_per_gate = function Imp -> 6 | Maj -> 4
let steps_per_level = function Imp -> 10 | Maj -> 3

type arch = Unbounded_serial | Crossbar of { rows : int; columns : int }

let validate_arch = function
  | Unbounded_serial -> Ok ()
  | Crossbar { rows; columns } ->
      if rows < 1 then
        Error (Printf.sprintf "crossbar needs at least one row (got %d)" rows)
      else if columns < 1 then
        Error (Printf.sprintf "crossbar needs at least one column (got %d)" columns)
      else Ok ()

let arch_to_string = function
  | Unbounded_serial -> "serial"
  | Crossbar { rows; columns } -> Printf.sprintf "%dx%d" rows columns

let parse_arch text =
  let s = String.lowercase_ascii (String.trim text) in
  match s with
  | "serial" | "unbounded" -> Ok Unbounded_serial
  | _ -> (
      let malformed () =
        Error
          (Printf.sprintf
             "bad architecture '%s': expected ROWSxCOLUMNS (e.g. 32x64) or \
              'serial'"
             text)
      in
      match String.index_opt s 'x' with
      | None -> malformed ()
      | Some i -> (
          let rows_text = String.sub s 0 i in
          let cols_text = String.sub s (i + 1) (String.length s - i - 1) in
          match (int_of_string_opt rows_text, int_of_string_opt cols_text) with
          | Some rows, Some columns -> (
              let a = Crossbar { rows; columns } in
              match validate_arch a with Ok () -> Ok a | Error e -> Error e)
          | _ -> malformed ()))

let pp_arch ppf a = Format.pp_print_string ppf (arch_to_string a)

type cost = { rrams : int; steps : int }

let of_levels realization (lv : Mig_levels.t) =
  let k_r = rrams_per_gate realization in
  let k_s = steps_per_level realization in
  let rrams = ref 0 in
  for i = 0 to lv.Mig_levels.depth + 1 do
    let ni = if i < Array.length lv.gates_per_level then lv.gates_per_level.(i) else 0 in
    let ci = if i < Array.length lv.compl_per_level then lv.compl_per_level.(i) else 0 in
    rrams := max !rrams ((k_r * ni) + ci)
  done;
  let steps = (k_s * lv.depth) + Mig_levels.num_levels_with_compl lv in
  { rrams = !rrams; steps }

let of_mig realization mig =
  let a = Mig_analysis.of_mig mig in
  let rrams, steps =
    Mig_analysis.table1 a ~rrams_per_gate:(rrams_per_gate realization)
      ~steps_per_level:(steps_per_level realization)
  in
  { rrams; steps }

let pareto_better a b =
  a.rrams <= b.rrams && a.steps <= b.steps && (a.rrams < b.rrams || a.steps < b.steps)

type triple = { devices : int; latency : int; utilization : float }

(* Analytic crossbar model.  Each level is executed in
   [ceil(N_i / rows)] waves of up to [rows] concurrent gates (one gate
   pulse per row per step, the HIPE-MAGIC packing); a wave costs the
   realization's per-level step count plus one complement step when the
   level carries complemented edges.  With enough rows (one wave per
   level) the latency collapses to the paper's serial S = K·D + L
   exactly, which is how [Unbounded_serial] stays one instance of the
   model rather than a special case. *)
let triple_of_levels ~arch realization (lv : Mig_levels.t) =
  let serial = of_levels realization lv in
  match arch with
  | Unbounded_serial ->
      { devices = serial.rrams; latency = serial.steps; utilization = 1.0 }
  | Crossbar { rows; columns } ->
      let k_r = rrams_per_gate realization in
      let k_s = steps_per_level realization in
      let latency = ref 0 and demand = ref 0 in
      for i = 1 to lv.Mig_levels.depth do
        let ni =
          if i < Array.length lv.gates_per_level then lv.gates_per_level.(i)
          else 0
        in
        let ci =
          if i < Array.length lv.compl_per_level then lv.compl_per_level.(i)
          else 0
        in
        let waves = max 1 ((ni + rows - 1) / rows) in
        latency := !latency + (waves * k_s) + (if ci > 0 then waves else 0);
        demand := max !demand ((k_r * min ni rows) + ci)
      done;
      (* virtual readout stage: complemented outputs invert across rows *)
      let readout = lv.Mig_levels.depth + 1 in
      let c_read =
        if readout < Array.length lv.compl_per_level then
          lv.compl_per_level.(readout)
        else 0
      in
      if c_read > 0 then begin
        latency := !latency + ((c_read + rows - 1) / rows);
        demand := max !demand c_read
      end;
      let capacity = rows * columns in
      let devices = min capacity (max 1 !demand) in
      {
        devices;
        latency = !latency;
        utilization = float_of_int devices /. float_of_int capacity;
      }

let triple_pareto_better a b =
  a.devices <= b.devices && a.latency <= b.latency
  && (a.devices < b.devices || a.latency < b.latency)

let weighted_triple ?(step_weight = 4.0) t =
  float_of_int t.devices +. (step_weight *. float_of_int t.latency)

let pp_triple ppf t =
  Format.fprintf ppf "devices=%d latency=%d util=%.0f%%" t.devices t.latency
    (100.0 *. t.utilization)

let weighted ?(step_weight = 4.0) c = float_of_int c.rrams +. (step_weight *. float_of_int c.steps)

let pp ppf c = Format.fprintf ppf "R=%d S=%d" c.rrams c.steps

let pp_realization ppf = function
  | Imp -> Format.pp_print_string ppf "IMP"
  | Maj -> Format.pp_print_string ppf "MAJ"
