(** Incrementally maintained graph analysis for MIGs.

    Attaches to a {!Mig.t} through the mutation-event interface and keeps the
    quantities every optimization loop asks for — node levels, depth, gates
    and complemented edges per level, the reachable gate count, and the
    Table I cost pairs — up to date as the graph is rewritten, instead of
    recomputing them from a fresh topological traversal at every query.

    Reachability is tracked by reference counting: a gate is {e counted}
    (contributes to the statistics) iff it is referenced by a primary output
    or by a counted gate, which in a DAG coincides with reachability from the
    outputs.  Speculative gates built and abandoned by rewrite rules stay
    uncounted and cost nothing.

    Levels are repaired lazily: mutations push affected nodes onto a dirty
    worklist whose processing is deferred to the next query, and a
    from-scratch rebuild takes over when the dirty frontier grows past a
    threshold (see DESIGN.md §10).

    All query functions flush pending work first, so results always reflect
    the current graph.  Use {!of_mig} to attach (or fetch the already
    attached analysis); attaching installs the graph's event listener. *)

type t

val of_mig : Mig.t -> t
(** The analysis attached to this graph, creating and attaching one (full
    initial computation) on first use.  Subsequent calls are O(1). *)

val size : t -> int
(** Number of live gates reachable from the outputs — equals {!Mig.size}
    in O(1). *)

val depth : t -> int
(** Maximum level over the primary outputs.  O(num_pos) after the flush. *)

val level : t -> int -> int
(** Current level of a node: 0 for inputs and constants, 1 + max fanin level
    for gates.  Valid for any live node, including speculative gates a
    rewrite rule just built (their level is assigned on creation). *)

val is_counted : t -> int -> bool
(** Whether the node is a live gate reachable from the outputs. *)

val gates_at_level : t -> int -> int
(** Number of counted gates at a level (N_i of Table I). *)

val compl_at_level : t -> int -> int
(** Number of complemented non-constant fanin edges of counted gates at a
    level (C_i of Table I), excluding the virtual readout stage. *)

val po_compl : t -> int
(** Complemented non-constant primary outputs — the virtual readout stage at
    depth + 1. *)

val table1 : t -> rrams_per_gate:int -> steps_per_level:int -> int * int
(** [(R, S)] of the paper's Table I for a realization with [K_R] RRAMs per
    gate and [K_S] steps per level: [R = max_i (K_R * N_i + C_i)] over
    levels 0 .. depth+1 (with the readout stage at depth+1) and
    [S = K_S * depth + #{i | C_i > 0}].  O(depth) after the flush;
    {!Rram_cost.of_mig} supplies the constants. *)

val levels_with_compl : t -> int
(** Number of levels, including the readout stage, with at least one
    complemented edge — the L term of Table I. *)

val refresh : t -> unit
(** Force a full from-scratch recomputation (normally automatic). *)

val check : t -> unit
(** Validate every maintained quantity against a from-scratch recomputation;
    raises [Failure] on any mismatch.  For tests. *)
