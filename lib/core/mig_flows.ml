let ops =
  {
    Flow.copy = Mig.cleanup;
    cleanup = Mig.cleanup;
    measure =
      (fun mig ->
        let size, depth = Mig_passes.size_and_depth mig in
        let imp = Rram_cost.of_mig Rram_cost.Imp mig in
        let maj = Rram_cost.of_mig Rram_cost.Maj mig in
        [
          ("size", float_of_int size);
          ("depth", float_of_int depth);
          ("r_imp", float_of_int imp.Rram_cost.rrams);
          ("s_imp", float_of_int imp.Rram_cost.steps);
          ("r_maj", float_of_int maj.Rram_cost.rrams);
          ("s_maj", float_of_int maj.Rram_cost.steps);
        ]);
  }

let registry : Mig.t Flow.registry = Flow.create_registry ()

let inplace f ~cycle:_ mig = (mig, f mig)

let pass name ~category ~doc ?(preserves = "function") run =
  { Flow.name; category; doc; preserves; run }

let () =
  List.iter (Flow.register registry)
    [
      pass "eliminate" ~category:"area"
        ~doc:
          "Ω.M + Ω.D right-to-left sweeps to a bounded fixpoint \
           (the node-count engine of Alg. 1)"
        (inplace Mig_passes.eliminate);
      pass "reshape" ~category:"area" ~preserves:"function, depth"
        ~doc:
          "Ω.A + Ψ.C level-preserving perturbation; the random \
           subset of moves is seeded by the enclosing cycle index"
        (fun ~cycle mig -> (mig, Mig_passes.reshape ~seed:(0x5EED + cycle) mig));
      pass "push_up" ~category:"depth"
        ~doc:
          "critical-path depth reduction (Ω.M; Ω.D left-to-right; \
           Ω.A; Ψ.C), looking through complemented edges"
        (inplace (fun mig -> Mig_passes.push_up mig));
      pass "push_up_nc" ~category:"depth"
        ~doc:
          "push-up restricted to uncomplemented edges — the \
           conventional-depth variant of Alg. 2"
        (inplace (Mig_passes.push_up ~through_compl:false));
      pass "push_up_f2" ~category:"rram"
        ~doc:
          "push-up with duplication bounded to fanout ≤ 2, keeping \
           level widths (hence RRAM counts) from growing (Alg. 3)"
        (inplace (Mig_passes.push_up ~fanout_limit:2));
      pass "psi_r" ~category:"depth"
        ~doc:"one Ψ.R sweep (bounded-cone reconvergence substitution)"
        (inplace Mig_passes.relevance);
      pass "omega_i" ~category:"rram"
        ~doc:
          "Ω.I sweep over gates with ≥ 2 complemented fanins, \
           applied unconditionally (Alg. 4)"
        (inplace (Mig_passes.compl_prop Mig_passes.Always));
      pass "omega_i3" ~category:"rram"
        ~doc:
          "Ω.I sweep over gates with ≥ 3 complemented fanins \
           (Alg. 4's first phase)"
        (inplace (Mig_passes.compl_prop ~min_compl:3 Mig_passes.Always));
      pass "omega_i_w_imp" ~category:"rram"
        ~doc:
          "Ω.I sweep accepting only moves that do not worsen the \
           weighted (R, S) cost under the IMP realization (Alg. 3)"
        (inplace (Mig_passes.compl_prop (Mig_passes.Weighted Rram_cost.Imp)));
      pass "omega_i_w_maj" ~category:"rram"
        ~doc:
          "Ω.I sweep accepting only moves that do not worsen the \
           weighted (R, S) cost under the MAJ realization (Alg. 3)"
        (inplace (Mig_passes.compl_prop (Mig_passes.Weighted Rram_cost.Maj)));
      pass "balance" ~category:"rram"
        ~doc:
          "trailing Ω.A; Ω.D right-to-left combination that undoes \
           level-size growth introduced by push-up (Alg. 3)"
        (inplace Mig_passes.balance);
      pass "cleanup" ~category:"structural" ~preserves:"function, structure"
        ~doc:"mark-and-compact copy: drop dead nodes, renumber topologically"
        (fun ~cycle:_ mig -> (Mig.cleanup mig, false));
      pass "strash" ~category:"structural" ~preserves:"function, structure"
        ~doc:
          "one topological re-hash sweep: merge structural duplicates, \
           compact dead ids; no-op (and reports no change) on an already \
           canonical graph"
        (fun ~cycle:_ mig -> Mig_passes.strash mig);
      pass "cut_rewrite" ~category:"boolean"
        ~doc:
          "NPN-cached 4-input cut-based Boolean resynthesis (the bool-rewrite \
           extension); replaces cones when strictly smaller"
        (fun ~cycle:_ mig ->
          let rewritten = Mig_cut_rewrite.rewrite mig in
          (rewritten, Mig.size rewritten <> Mig.size mig));
    ]

(* The architecture the xbar_* costs are evaluated against.  Scripts name
   costs, not geometries, so the concrete target is ambient state set once
   per run (the CLI's --arch does it before parsing the script); the
   default keeps the costs meaningful without a flag. *)
let arch = ref (Rram_cost.Crossbar { rows = 64; columns = 64 })
let set_arch a = arch := a

let costs : (string * (Mig.t -> float)) list =
  let cost_field realization f mig =
    float_of_int (f (Rram_cost.of_mig realization mig))
  in
  let xbar realization f mig =
    f (Rram_cost.triple_of_levels ~arch:!arch realization (Mig_levels.compute mig))
  in
  [
    ("size", fun mig -> float_of_int (Mig_analysis.size (Mig_analysis.of_mig mig)));
    ("depth", fun mig -> float_of_int (snd (Mig_passes.size_and_depth mig)));
    ("rrams_imp", cost_field Rram_cost.Imp (fun c -> c.Rram_cost.rrams));
    ("steps_imp", cost_field Rram_cost.Imp (fun c -> c.Rram_cost.steps));
    ("rrams_maj", cost_field Rram_cost.Maj (fun c -> c.Rram_cost.rrams));
    ("steps_maj", cost_field Rram_cost.Maj (fun c -> c.Rram_cost.steps));
    ("weighted_imp", fun mig -> Rram_cost.weighted (Rram_cost.of_mig Rram_cost.Imp mig));
    ("weighted_maj", fun mig -> Rram_cost.weighted (Rram_cost.of_mig Rram_cost.Maj mig));
    ("xbar_devices_imp", xbar Rram_cost.Imp (fun t -> float_of_int t.Rram_cost.devices));
    ("xbar_devices_maj", xbar Rram_cost.Maj (fun t -> float_of_int t.Rram_cost.devices));
    ("xbar_latency_imp", xbar Rram_cost.Imp (fun t -> float_of_int t.Rram_cost.latency));
    ("xbar_latency_maj", xbar Rram_cost.Maj (fun t -> float_of_int t.Rram_cost.latency));
    ("xbar_weighted_maj", xbar Rram_cost.Maj (Rram_cost.weighted_triple ?step_weight:None));
  ]

let parse text = Flow.Script.parse ~registry ~costs text

let parse_exn text =
  match parse text with
  | Ok flow -> flow
  | Error e ->
      invalid_arg (Format.asprintf "flow script %a" Flow.Script.pp_error e)

let run ?name flow mig = Flow.run ~ops ~span_prefix:"mig.opt" ?name flow mig

let canonical_names =
  [ "area"; "depth"; "rram-costs-imp"; "rram-costs-maj"; "steps"; "bool-rewrite" ]

let canonical_script ?(effort = Flow.default_effort) name =
  let converge body finish = Printf.sprintf "cycle(%d){%s}; %s" effort body finish in
  let area = converge "eliminate; reshape; eliminate" "eliminate" in
  match name with
  | "area" -> Some area
  | "depth" -> Some (converge "push_up_nc; every(3){psi_r}; push_up_nc" "push_up_nc")
  | "rram-costs-imp" ->
      Some (converge "push_up_f2; omega_i_w_imp; push_up_f2; balance" "push_up_f2")
  | "rram-costs-maj" ->
      Some (converge "push_up_f2; omega_i_w_maj; push_up_f2; balance" "push_up_f2")
  | "steps" -> Some (converge "push_up; omega_i3; omega_i; push_up" "push_up")
  | "bool-rewrite" -> Some (area ^ "; cleanup; cut_rewrite; eliminate")
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Portfolio                                                           *)
(* ------------------------------------------------------------------ *)

let default_cost = "weighted_maj"

let cost_fn name =
  match List.assoc_opt name costs with
  | Some f -> f
  | None ->
      invalid_arg
        (Printf.sprintf "Mig_flows.portfolio: unknown cost '%s'%s" name
           (match Flow.suggest ~candidates:(List.map fst costs) name with
           | Some s -> Printf.sprintf " (did you mean '%s'?)" s
           | None -> ""))

let portfolio ?jobs ?(cost = default_cost) specs mig =
  let cost = cost_fn cost in
  let entrants =
    List.map
      (fun (label, script) -> { Flow.label; flow = parse_exn script })
      specs
  in
  Flow.portfolio ~ops ~span_prefix:"mig.opt" ?jobs ~cost entrants mig

let default_portfolio ?effort () =
  List.filter_map
    (fun name ->
      Option.map (fun script -> (name, script)) (canonical_script ?effort name))
    [ "area"; "depth"; "rram-costs-imp"; "rram-costs-maj"; "steps" ]

(* The portfolio as an ordinary registered pass, so flow scripts can embed
   the race (e.g. `portfolio; push_up`).  Effort of the inner canonical
   scripts is fixed at a moderate 10 to keep nested cycles affordable; the
   CLI's --portfolio mode races the full-effort scripts instead. *)
let () =
  Flow.register registry
    (pass "portfolio" ~category:"search"
       ~doc:
         "race the five canonical algorithm scripts (effort 10) on \
          separate domains; keep the lowest weighted_maj cost, ties to \
          the earliest script"
       (fun ~cycle:_ mig ->
         let before_size, before_depth = Mig_passes.size_and_depth mig in
         let winner, _ = portfolio (default_portfolio ~effort:10 ()) mig in
         let size, depth = Mig_passes.size_and_depth winner in
         (winner, size <> before_size || depth <> before_depth)))
