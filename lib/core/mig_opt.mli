(** The four MIG optimization algorithms of the paper (Algs. 1–4).

    Since the pass-manager refactor these are {e thin wrappers}: each entry
    point parses its canonical flow script ({!Mig_flows.canonical_script})
    and runs it on the generic {!Flow} engine, so
    [migsyn flow --script "cycle(40){eliminate; reshape; eliminate}; eliminate"]
    reproduces [area] exactly, and user scripts can recombine the same
    registered passes with cost-guarded acceptance ([accept_if]).

    Every optimizer is functional: it copies its input (via
    {!Mig.cleanup}-style compaction between cycles) and returns a new,
    logically equivalent MIG.  [effort] is the cycle count of the outer
    loop; the paper uses 40.  All algorithms stop early when a full cycle
    leaves the graph unchanged.

    When observability is on ({!Obs.set_enabled}), every algorithm records a
    span per cycle (category ["mig.opt"]), one per pass application
    (["mig.opt/pass/<pass>"]) and a ["mig.opt/<name>/trajectory"] series
    with one [(cycle, size, depth, r_imp, s_imp, r_maj, s_maj)] sample for
    the initial graph and after each cycle's cleanup; the per-rule hit/miss
    counters live in {!Mig_passes} (["mig.rule/*"]). *)

val default_effort : int
(** 40, the paper's setting. *)

val area : ?effort:int -> Mig.t -> Mig.t
(** Alg. 1 — conventional area optimization:
    per cycle \[eliminate; reshape; eliminate\], final eliminate. *)

val depth : ?effort:int -> Mig.t -> Mig.t
(** Alg. 2 — conventional depth optimization:
    per cycle \[push-up; Ψ.R; push-up\], final push-up. *)

val rram_costs : ?effort:int -> Rram_cost.realization -> Mig.t -> Mig.t
(** Alg. 3 — multi-objective optimization of the (RRAM count, step count)
    pair: per cycle \[push-up; Ω.I(1–3) with weighted-gain acceptance;
    push-up; balance\], final push-up.  The realization fixes the constants
    of the cost model used in the acceptance test. *)

val steps : ?effort:int -> Mig.t -> Mig.t
(** Alg. 4 — step-count optimization:
    per cycle \[push-up; Ω.I case (1); Ω.I(1–3); push-up\], final push-up. *)

val boolean : ?effort:int -> Mig.t -> Mig.t
(** Extension (not in the paper): Alg. 1 followed by NPN-cached cut-based
    Boolean rewriting ({!Mig_cut_rewrite}) and a final eliminate. *)

type algorithm =
  | Area
  | Depth
  | Rram_costs of Rram_cost.realization
  | Steps
  | Boolean  (** extension: area + cut-based Boolean rewriting *)

val run : ?effort:int -> algorithm -> Mig.t -> Mig.t
val algorithm_name : algorithm -> string
