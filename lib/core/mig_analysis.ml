(* Incremental MIG analysis: reference-counted reachability plus lazily
   repaired levels and per-level Table I statistics.

   Invariants (at quiescence, i.e. whenever a query returns):
   - refs.(n)  = #(counted gates with a fanin edge to n) + Mig.po_refs n
   - cnt.(n)   ⟺ n is a live gate with refs.(n) > 0
                ⟺ n is a live gate reachable from the outputs (DAG)
   - every counted gate with [inb] has its (level, compl-fanins) contribution
     in exactly one slot of the per-level buckets; dirty gates are out of the
     buckets and sit in the FIFO worklist until the next flush
   - lvl.(n) of a counted gate = 1 + max fanin level after the flush;
     uncounted gates' entries are scratch (recomputed on demand)

   When the dirty frontier outgrows the graph (or a flush fails to settle
   within a linear work budget), the whole state is rebuilt from scratch —
   the incremental path is an optimization, never a semantic dependency. *)

let c_rebuilds = Obs.counter "mig.analysis/rebuilds"
and c_flush_pops = Obs.counter "mig.analysis/flush.pops"

type t = {
  mig : Mig.t;
  mutable refs : int array;
  mutable cnt : bool array;
  mutable lvl : int array;
  mutable cmp : int array; (* complemented non-constant fanins of a gate *)
  mutable inb : bool array; (* bucket membership *)
  mutable queued : bool array;
  mutable gpl : int array; (* counted gates per level *)
  mutable cpl : int array; (* complemented fanin edges per level *)
  mutable nsize : int; (* counted gates *)
  (* dirty FIFO ring *)
  mutable q : int array;
  mutable qhead : int;
  mutable qlen : int;
  mutable invalid : bool;
  (* reusable scratch for the counting / level DFS (packed node*4+idx) *)
  mutable stk : int array;
  mutable vmark : int array;
  mutable vepoch : int;
  mutable ustale : bool;
      (* whether uncounted-level scratch (epoch [vepoch]) predates a
         mutation and must be recomputed *)
}

type Mig.attachment += Analysis of t

let grow_to arr len fill =
  if Array.length arr >= len then arr
  else begin
    let bigger = Array.make (max len (2 * Array.length arr)) fill in
    Array.blit arr 0 bigger 0 (Array.length arr);
    bigger
  end

let ensure_nodes a =
  let n = Mig.num_nodes a.mig in
  if Array.length a.refs < n then begin
    a.refs <- grow_to a.refs n 0;
    a.cnt <- grow_to a.cnt n false;
    a.lvl <- grow_to a.lvl n 0;
    a.cmp <- grow_to a.cmp n 0;
    a.inb <- grow_to a.inb n false;
    a.queued <- grow_to a.queued n false;
    a.vmark <- grow_to a.vmark n 0
  end

let ensure_level a l =
  if l >= Array.length a.gpl then begin
    a.gpl <- grow_to a.gpl (l + 1) 0;
    a.cpl <- grow_to a.cpl (l + 1) 0
  end

let compl_fanins mig g =
  let f = Mig.fanins mig g in
  let count = ref 0 in
  Array.iter (fun s -> if Mig.is_compl s && Mig.node_of s <> 0 then incr count) f;
  !count

let bucket_add a n =
  let l = a.lvl.(n) in
  ensure_level a l;
  a.gpl.(l) <- a.gpl.(l) + 1;
  a.cpl.(l) <- a.cpl.(l) + a.cmp.(n);
  a.inb.(n) <- true

let bucket_remove a n =
  let l = a.lvl.(n) in
  a.gpl.(l) <- a.gpl.(l) - 1;
  a.cpl.(l) <- a.cpl.(l) - a.cmp.(n);
  a.inb.(n) <- false

(* ---- dirty worklist ---- *)

let ring_push a n =
  if a.qlen >= Array.length a.q then begin
    let bigger = Array.make (max 64 (2 * Array.length a.q)) 0 in
    for i = 0 to a.qlen - 1 do
      bigger.(i) <- a.q.((a.qhead + i) mod Array.length a.q)
    done;
    a.q <- bigger;
    a.qhead <- 0
  end;
  a.q.((a.qhead + a.qlen) mod Array.length a.q) <- n;
  a.qlen <- a.qlen + 1

let ring_pop a =
  let n = a.q.(a.qhead) in
  a.qhead <- (a.qhead + 1) mod Array.length a.q;
  a.qlen <- a.qlen - 1;
  n

let dirty_cap a = max 64 (a.nsize / 2)

(* Take a counted gate out of the buckets and schedule its level for
   recomputation at the next flush. *)
let mark_dirty a n =
  if a.inb.(n) then bucket_remove a n;
  if not a.queued.(n) then begin
    a.queued.(n) <- true;
    ring_push a n;
    if a.qlen > dirty_cap a then a.invalid <- true
  end

(* ---- reference counting ---- *)

let fanin_level a mig s =
  match Mig.kind mig (Mig.node_of s) with
  | Mig.Const | Mig.Pi _ -> 0
  | Mig.Gate -> a.lvl.(Mig.node_of s)

let stk_push a sp v =
  if sp >= Array.length a.stk then a.stk <- grow_to a.stk (sp + 1) 0;
  a.stk.(sp) <- v

(* Make the whole uncounted cone under [n0] counted: set flags, bump refs
   along every edge, and assign levels bottom-up.  Iterative post-order over
   the packed scratch stack (stack-safe on deep graphs).  A level computed
   here may read a dirty fanin's stale level; the flush propagation
   re-enqueues this node through the fanin's fanout list, so it settles by
   the next query. *)
let count_cascade a n0 =
  let mig = a.mig in
  a.cnt.(n0) <- true;
  a.nsize <- a.nsize + 1;
  stk_push a 0 (n0 * 4);
  let sp = ref 1 in
  while !sp > 0 do
    let v = a.stk.(!sp - 1) in
    let n = v lsr 2 and idx = v land 3 in
    if idx = 3 then begin
      decr sp;
      let f = Mig.fanins mig n in
      let m = ref 0 in
      let dead_fanin = ref false in
      Array.iter
        (fun s ->
          if Mig.is_dead mig (Mig.node_of s) then dead_fanin := true;
          m := max !m (fanin_level a mig s))
        f;
      a.lvl.(n) <- !m + 1;
      a.cmp.(n) <- compl_fanins mig n;
      bucket_add a n;
      (* A fanin can be dead mid-substitution-cascade (its users are rewired
         right after this event); the level read from it is stale, so force a
         recomputation once the graph settles. *)
      if !dead_fanin then mark_dirty a n
    end
    else begin
      a.stk.(!sp - 1) <- v + 1;
      let m = Mig.node_of (Mig.fanins mig n).(idx) in
      a.refs.(m) <- a.refs.(m) + 1;
      if
        (not a.cnt.(m))
        && (not (Mig.is_dead a.mig m))
        && Mig.kind a.mig m = Mig.Gate
      then begin
        a.cnt.(m) <- true;
        a.nsize <- a.nsize + 1;
        stk_push a !sp (m * 4);
        incr sp
      end
    end
  done

let incref a m =
  a.refs.(m) <- a.refs.(m) + 1;
  if (not a.cnt.(m)) && (not (Mig.is_dead a.mig m)) && Mig.kind a.mig m = Mig.Gate
  then count_cascade a m

(* Uncount a gate (remove its contributions) and release its fanin
   references, cascading; iterative over an explicit stack of pending
   decrements. *)
let uncount a n =
  a.cnt.(n) <- false;
  a.nsize <- a.nsize - 1;
  if a.inb.(n) then bucket_remove a n;
  let sp = ref 0 in
  Array.iter
    (fun s ->
      stk_push a !sp (Mig.node_of s);
      incr sp)
    (Mig.fanins a.mig n);
  while !sp > 0 do
    decr sp;
    let m = a.stk.(!sp) in
    a.refs.(m) <- a.refs.(m) - 1;
    if a.refs.(m) = 0 && a.cnt.(m) then begin
      a.cnt.(m) <- false;
      a.nsize <- a.nsize - 1;
      if a.inb.(m) then bucket_remove a m;
      Array.iter
        (fun s ->
          stk_push a !sp (Mig.node_of s);
          incr sp)
        (Mig.fanins a.mig m)
    end
  done

let decref a m =
  a.refs.(m) <- a.refs.(m) - 1;
  if a.refs.(m) = 0 && a.cnt.(m) then uncount a m

(* ---- from-scratch rebuild ---- *)

let rebuild a =
  Obs.incr c_rebuilds;
  a.ustale <- true;
  let mig = a.mig in
  ensure_nodes a;
  let n = Mig.num_nodes mig in
  Array.fill a.refs 0 n 0;
  Array.fill a.cnt 0 n false;
  Array.fill a.lvl 0 n 0;
  Array.fill a.cmp 0 n 0;
  Array.fill a.inb 0 n false;
  Array.fill a.queued 0 n false;
  Array.fill a.gpl 0 (Array.length a.gpl) 0;
  Array.fill a.cpl 0 (Array.length a.cpl) 0;
  a.qlen <- 0;
  a.qhead <- 0;
  a.nsize <- 0;
  a.invalid <- false;
  Mig.iter_topo mig (fun g ->
      let f = Mig.fanins mig g in
      let m = ref 0 in
      Array.iter
        (fun s ->
          a.refs.(Mig.node_of s) <- a.refs.(Mig.node_of s) + 1;
          m := max !m (fanin_level a mig s))
        f;
      a.cnt.(g) <- true;
      a.nsize <- a.nsize + 1;
      a.lvl.(g) <- !m + 1;
      a.cmp.(g) <- compl_fanins mig g;
      bucket_add a g);
  for i = 0 to Mig.num_pos mig - 1 do
    let m = Mig.node_of (Mig.po mig i) in
    a.refs.(m) <- a.refs.(m) + 1
  done

(* ---- flush ---- *)

let flush a =
  if a.invalid then rebuild a
  else if a.qlen > 0 then begin
    let budget = (8 * (a.nsize + 16)) + a.qlen in
    let processed = ref 0 in
    while a.qlen > 0 && not a.invalid do
      let n = ring_pop a in
      a.queued.(n) <- false;
      incr processed;
      if a.cnt.(n) && not (Mig.is_dead a.mig n) then begin
        if a.inb.(n) then bucket_remove a n;
        let f = Mig.fanins a.mig n in
        let m = ref 0 in
        Array.iter (fun s -> m := max !m (fanin_level a a.mig s)) f;
        let newl = !m + 1 in
        let oldl = a.lvl.(n) in
        a.lvl.(n) <- newl;
        bucket_add a n;
        if newl <> oldl then
          Mig.fanout_iter a.mig n (fun u -> if a.cnt.(u) then mark_dirty a u)
      end;
      if !processed > budget then a.invalid <- true
    done;
    Obs.incr ~by:!processed c_flush_pops;
    if a.invalid then rebuild a
  end

(* ---- event handler ---- *)

let handle a ev =
  a.ustale <- true;
  match ev with
  | _ when a.invalid -> ()
  | Mig.Gate_added _ ->
      (* Fresh gates start unreferenced and uncounted; their level is
         computed on demand (see [level]). *)
      ensure_nodes a
  | Mig.Gate_killed n -> if a.cnt.(n) then uncount a n
  | Mig.Refanin { node = f; old_fanins } ->
      if a.cnt.(f) then begin
        mark_dirty a f;
        a.cmp.(f) <- compl_fanins a.mig f;
        (* incref before decref so fanins shared between the old and new
           triples never transit through zero. *)
        Array.iter (fun s -> incref a (Mig.node_of s)) (Mig.fanins a.mig f);
        Array.iter (fun s -> decref a (Mig.node_of s)) old_fanins
      end
  | Mig.Po_added i -> incref a (Mig.node_of (Mig.po a.mig i))
  | Mig.Po_redirected { index; old_po } ->
      incref a (Mig.node_of (Mig.po a.mig index));
      decref a (Mig.node_of old_po)

(* ---- attach ---- *)

let of_mig mig =
  match Mig.attachment mig with
  | Some (Analysis a) -> a
  | _ ->
      let a =
        {
          mig;
          refs = [||];
          cnt = [||];
          lvl = [||];
          cmp = [||];
          inb = [||];
          queued = [||];
          gpl = Array.make 16 0;
          cpl = Array.make 16 0;
          nsize = 0;
          q = Array.make 64 0;
          qhead = 0;
          qlen = 0;
          invalid = false;
          stk = Array.make 64 0;
          vmark = [||];
          vepoch = 0;
          ustale = true;
        }
      in
      rebuild a;
      Mig.set_attachment mig (Some (Analysis a));
      Mig.on_event mig (Some (handle a));
      a

let refresh a = rebuild a

(* ---- queries ---- *)

let size a =
  flush a;
  a.nsize

let is_counted a n =
  flush a;
  n < Array.length a.cnt && a.cnt.(n)

(* Level of an uncounted live gate (a speculative node a rewrite rule just
   built, or a gate that fell unreachable): recompute its uncounted cone
   bottom-up, using counted levels as the boundary.  Results are written to
   [lvl] and memoized under the scratch epoch [vepoch], which stays valid
   until the next mutation — so sweeps over a detached region pay one DFS
   per mutation, not one per query. *)
let uncounted_level a n0 =
  if a.ustale then begin
    a.vepoch <- a.vepoch + 1;
    a.ustale <- false
  end;
  let ep = a.vepoch in
  if a.vmark.(n0) = ep then a.lvl.(n0)
  else begin
  let mig = a.mig in
  a.vmark.(n0) <- ep;
  stk_push a 0 (n0 * 4);
  let sp = ref 1 in
  while !sp > 0 do
    let v = a.stk.(!sp - 1) in
    let n = v lsr 2 and idx = v land 3 in
    if idx = 3 then begin
      decr sp;
      let f = Mig.fanins mig n in
      let m = ref 0 in
      Array.iter (fun s -> m := max !m (fanin_level a mig s)) f;
      a.lvl.(n) <- !m + 1
    end
    else begin
      a.stk.(!sp - 1) <- v + 1;
      let m = Mig.node_of (Mig.fanins mig n).(idx) in
      if
        a.vmark.(m) <> ep
        && (not a.cnt.(m))
        && (not (Mig.is_dead mig m))
        && Mig.kind mig m = Mig.Gate
      then begin
        a.vmark.(m) <- ep;
        stk_push a !sp (m * 4);
        incr sp
      end
    end
  done;
    a.lvl.(n0)
  end

let level a n =
  flush a;
  match Mig.kind a.mig n with
  | Mig.Const | Mig.Pi _ -> 0
  | Mig.Gate ->
      if a.cnt.(n) || Mig.is_dead a.mig n then a.lvl.(n) else uncounted_level a n

let depth a =
  flush a;
  let d = ref 0 in
  for i = 0 to Mig.num_pos a.mig - 1 do
    let m = Mig.node_of (Mig.po a.mig i) in
    if Mig.kind a.mig m = Mig.Gate then d := max !d a.lvl.(m)
  done;
  !d

let po_compl a =
  let count = ref 0 in
  for i = 0 to Mig.num_pos a.mig - 1 do
    let s = Mig.po a.mig i in
    if Mig.is_compl s && Mig.node_of s <> 0 then incr count
  done;
  !count

let gates_at_level a l =
  flush a;
  if l >= 0 && l < Array.length a.gpl then a.gpl.(l) else 0

let compl_at_level a l =
  flush a;
  if l >= 0 && l < Array.length a.cpl then a.cpl.(l) else 0

let levels_with_compl a =
  flush a;
  let d = depth a in
  let count = ref 0 in
  for i = 0 to min d (Array.length a.cpl - 1) do
    if a.cpl.(i) > 0 then incr count
  done;
  if po_compl a > 0 then incr count;
  !count

(* Table I, matching Rram_cost.of_levels over a from-scratch Mig_levels.t:
   R scans levels 0 .. depth+1 with the virtual readout stage (complemented
   outputs) at depth+1; S adds one step per level with a complement. *)
let table1 a ~rrams_per_gate ~steps_per_level =
  flush a;
  let d = depth a in
  let pc = po_compl a in
  let rrams = ref pc in
  (* the i = depth+1 readout term: K*0 + pc *)
  for i = 0 to d do
    let ni = if i < Array.length a.gpl then a.gpl.(i) else 0 in
    let ci = if i < Array.length a.cpl then a.cpl.(i) else 0 in
    rrams := max !rrams ((rrams_per_gate * ni) + ci)
  done;
  let steps = (steps_per_level * d) + levels_with_compl a in
  (!rrams, steps)

(* ---- validation (tests) ---- *)

let check a =
  flush a;
  let mig = a.mig in
  let fail fmt = Format.kasprintf failwith fmt in
  (* from-scratch reference: reachable gates in topo order *)
  let n = Mig.num_nodes mig in
  let reached = Array.make n false in
  let lvl = Array.make n 0 in
  let refs = Array.make n 0 in
  let count = ref 0 in
  Mig.iter_topo mig (fun g ->
      reached.(g) <- true;
      incr count;
      let m = ref 0 in
      Array.iter
        (fun s ->
          refs.(Mig.node_of s) <- refs.(Mig.node_of s) + 1;
          m := max !m lvl.(Mig.node_of s))
        (Mig.fanins mig g);
      lvl.(g) <- !m + 1);
  for i = 0 to Mig.num_pos mig - 1 do
    let m = Mig.node_of (Mig.po mig i) in
    refs.(m) <- refs.(m) + 1
  done;
  if a.nsize <> !count then fail "size: maintained %d, actual %d" a.nsize !count;
  for i = 0 to n - 1 do
    if a.cnt.(i) <> reached.(i) then
      fail "counted flag of node %d: %b, reachable %b" i a.cnt.(i) reached.(i);
    if reached.(i) then begin
      if a.lvl.(i) <> lvl.(i) then
        fail "level of node %d: maintained %d, actual %d" i a.lvl.(i) lvl.(i);
      if not a.inb.(i) then fail "counted node %d missing from buckets" i;
      if a.cmp.(i) <> compl_fanins mig i then
        fail "compl fanins of node %d: %d, actual %d" i a.cmp.(i)
          (compl_fanins mig i)
    end;
    if a.refs.(i) <> refs.(i) then
      fail "refs of node %d: maintained %d, actual %d" i a.refs.(i) refs.(i)
  done;
  let d = depth a in
  let gpl = Array.make (d + 2) 0 and cpl = Array.make (d + 2) 0 in
  for i = 0 to n - 1 do
    if reached.(i) then begin
      gpl.(lvl.(i)) <- gpl.(lvl.(i)) + 1;
      cpl.(lvl.(i)) <- cpl.(lvl.(i)) + compl_fanins mig i
    end
  done;
  for l = 0 to d + 1 do
    if gates_at_level a l <> gpl.(l) then
      fail "gates at level %d: maintained %d, actual %d" l (gates_at_level a l)
        gpl.(l);
    if compl_at_level a l <> cpl.(l) then
      fail "compl at level %d: maintained %d, actual %d" l (compl_at_level a l)
        cpl.(l)
  done;
  for l = 0 to Array.length a.gpl - 1 do
    if (l > d + 1 || l >= Array.length gpl) && a.gpl.(l) <> 0 then
      fail "stray gate bucket at level %d: %d" l a.gpl.(l)
  done
