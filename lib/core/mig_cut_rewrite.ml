open Logic

(* Resynthesis cache: canonical truth-table bits -> minimized SOP.  The SOP
   is rebuilt per site over the site's (possibly negated) leaf signals.
   The cache is shared by every domain (a portfolio race or a parallel
   bench sweep may run cut_rewrite concurrently), so lookups and inserts
   are mutex-guarded; minimization itself runs outside the lock, and a
   duplicated miss just recomputes the same idempotent entry. *)
let sop_cache : (string, Sop.t) Hashtbl.t = Hashtbl.create 997
let sop_cache_lock = Mutex.create ()

let c_cache_hit = Obs.counter "mig.cut_rewrite/npn_cache.hits"
and c_cache_miss = Obs.counter "mig.cut_rewrite/npn_cache.misses"

let minimized_sop canonical =
  let key = Truth_table.to_bits canonical in
  let cached =
    Mutex.lock sop_cache_lock;
    let v = Hashtbl.find_opt sop_cache key in
    Mutex.unlock sop_cache_lock;
    v
  in
  match cached with
  | Some sop ->
      Obs.incr c_cache_hit;
      sop
  | None ->
      Obs.incr c_cache_miss;
      let sop = Espresso.minimize (Sop.of_truth_table canonical) in
      Mutex.lock sop_cache_lock;
      Hashtbl.replace sop_cache key sop;
      Mutex.unlock sop_cache_lock;
      sop

let rec balanced_fold f = function
  | [] -> invalid_arg "Mig_cut_rewrite: empty operand list"
  | [ x ] -> x
  | xs ->
      let rec split acc n = function
        | rest when n = 0 -> (List.rev acc, rest)
        | x :: rest -> split (x :: acc) (n - 1) rest
        | [] -> (List.rev acc, [])
      in
      let half = List.length xs / 2 in
      let left, right = split [] half xs in
      f (balanced_fold f left) (balanced_fold f right)

let build_sop mig sop operands =
  let cube_signal cube =
    match Cube.literals cube with
    | [] -> Mig.const1
    | lits ->
        balanced_fold (Mig.and_ mig)
          (List.map
             (fun (v, positive) ->
               if positive then operands.(v) else Mig.not_ operands.(v))
             lits)
  in
  match Sop.cubes sop with
  | [] -> Mig.const0
  | cubes -> balanced_fold (Mig.or_ mig) (List.map cube_signal cubes)

let one_pass ?(k = 4) mig =
  let cuts = Mig_cuts.enumerate ~k mig in
  let changed = ref false in
  Mig.foreach_gate mig (fun g ->
      if not (Mig.is_dead mig g) then begin
        let best = ref None in
        List.iter
          (fun cut ->
            (* Earlier substitutions in this sweep may have invalidated a
               stored cut's boundary; such cuts surface as [Not_found] while
               evaluating the cone and are simply skipped.  (A stale cut that
               is still a complete boundary evaluates the *current* function
               of the gate, so using it remains sound.) *)
            try
              if
                Array.length cut <= Npn.max_vars
                && not (Array.exists (fun l -> Mig.is_dead mig l) cut)
              then begin
                let mffc = Mig_cuts.mffc_size mig g cut in
                if mffc >= 2 then begin
                  let tt = Mig_cuts.cut_function mig g cut in
                  let canonical, transform = Npn.canonize tt in
                  let sop = minimized_sop canonical in
                  (* cheap size estimate: AND-tree per cube + OR-tree *)
                  let estimate =
                    List.fold_left
                      (fun acc c -> acc + max 0 (Cube.num_literals c - 1))
                      (max 0 (Sop.num_cubes sop - 1))
                      (Sop.cubes sop)
                  in
                  if estimate < mffc then
                    match !best with
                    | Some (_, _, _, gain) when mffc - estimate <= gain -> ()
                    | _ -> best := Some (cut, sop, transform, mffc - estimate)
                end
              end
            with Not_found -> ())
          (Mig_cuts.cuts_of cuts g);
        match !best with
        | None -> ()
        | Some (cut, _, _, _) when Array.exists (fun l -> Mig.is_dead mig l) cut -> ()
        | Some (cut, sop, transform, _) ->
            let before = Mig.num_nodes mig in
            let leaf_signals = Array.map (fun leaf -> Mig.signal_of leaf false) cut in
            let operands, out_neg = Npn.signals_for transform leaf_signals Mig.not_ in
            let replacement = build_sop mig sop operands in
            let replacement = if out_neg then Mig.not_ replacement else replacement in
            let created = Mig.num_nodes mig - before in
            (* accept only when the true cost (fresh nodes after strashing)
               still beats the nodes the substitution frees, and the
               replacement does not feed back into itself *)
            if Mig.node_of replacement <> g then begin
              let mffc = Mig_cuts.mffc_size mig g cut in
              if created < mffc then begin
                Mig.substitute mig g replacement;
                changed := true
              end
            end
      end);
  !changed

let rewrite ?(k = 4) ?(passes = 2) mig =
  let current = ref (Mig.cleanup mig) in
  let continue_ = ref true and n = ref 0 in
  while !continue_ && !n < passes do
    if not (one_pass ~k !current) then continue_ := false;
    current := Mig.cleanup !current;
    incr n
  done;
  !current
