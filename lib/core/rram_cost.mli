(** The RRAM cost model of Table I.

    For a MIG with per-level gate counts [N_i], complemented ingoing edge
    counts [C_i], depth [D] and [L] levels having complemented edges, the
    level-by-level mapping methodology of §III-B costs

    - RRAMs:  [R = max_i (K·N_i + C_i)] with [K = 6] (IMP) or [4] (MAJ);
    - steps:  [S = K·D + L]            with [K = 10] (IMP) or [3] (MAJ).

    These formulas are cross-checked against the actual resource usage and
    step count of the compiled programs in [lib/rram] (see
    [test/test_rram.ml]). *)

type realization = Imp | Maj

val rrams_per_gate : realization -> int
(** 6 for IMP, 4 for MAJ. *)

val steps_per_level : realization -> int
(** 10 for IMP, 3 for MAJ. *)

(** {1 Architecture model}

    The execution target the mapping pipeline compiles for.  The paper's
    implicit model — an unbounded device pool where every level executes
    in one batch of shared steps — is [Unbounded_serial], the default
    everywhere; [Crossbar] is a fixed rows × columns array where at most
    one gate pulse may fire per row per step, so a level wider than the
    row budget spills across several pulse waves (see DESIGN.md §15 and
    the backend in lib/rram for the scheduler that honors it). *)

type arch = Unbounded_serial | Crossbar of { rows : int; columns : int }

val validate_arch : arch -> (unit, string) result
(** Crossbar geometry must have at least one row and one column. *)

val parse_arch : string -> (arch, string) result
(** ["serial"] (or ["unbounded"]), or ["RxC"] with positive integers, e.g.
    ["32x64"].  The error message names the offending text. *)

val arch_to_string : arch -> string
val pp_arch : Format.formatter -> arch -> unit

type cost = { rrams : int; steps : int }

val of_levels : realization -> Mig_levels.t -> cost
val of_mig : realization -> Mig.t -> cost

val pareto_better : cost -> cost -> bool
(** [pareto_better a b]: [a] dominates [b] (≤ in both metrics, < in one). *)

(** {1 The crossbar cost triple} *)

type triple = {
  devices : int;  (** crossbar sites the mapping occupies *)
  latency : int;  (** parallel pulse steps to evaluate the circuit once *)
  utilization : float;  (** devices / (rows × columns) of the target *)
}

val triple_of_levels : arch:arch -> realization -> Mig_levels.t -> triple
(** Analytic model: each level runs in [ceil(N_i / rows)] waves of the
    realization's step count (plus a complement step per wave on levels
    with complemented edges); device demand is the Table I per-level
    formula capped at one wave of gates and at the array capacity.  Under
    [Unbounded_serial] this is exactly Table I ([devices = R],
    [latency = S], utilization 1).  The measured counterpart comes from
    the compiled program (the crossbar backend in lib/rram). *)

val triple_pareto_better : triple -> triple -> bool
(** Dominance on (devices, latency); utilization is derived, not a goal. *)

val weighted_triple : ?step_weight:float -> triple -> float
(** [devices + step_weight·latency], the crossbar analogue of
    {!weighted} (default weight 4.0). *)

val pp_triple : Format.formatter -> triple -> unit

val weighted : ?step_weight:float -> cost -> float
(** Scalarization used by the multi-objective optimizer to accept moves:
    [rrams + step_weight * steps]; the default weight (4.0) reflects the
    paper's position that steps are the dominant cost. *)

val pp : Format.formatter -> cost -> unit

val pp_realization : Format.formatter -> realization -> unit
