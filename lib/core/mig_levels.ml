type t = {
  level : int array;
  depth : int;
  gates_per_level : int array;
  compl_per_level : int array;
  order : int list;
}

let of_level_assignment mig level =
  let order = Mig.topo_order mig in
  let depth =
    Array.fold_left (fun acc s -> max acc level.(Mig.node_of s)) 0 (Mig.pos mig)
  in
  let gates_per_level = Array.make (depth + 2) 0 in
  let compl_per_level = Array.make (depth + 2) 0 in
  List.iter
    (fun g ->
      let l = level.(g) in
      gates_per_level.(l) <- gates_per_level.(l) + 1;
      Array.iter
        (fun s ->
          if Mig.is_compl s && Mig.node_of s <> 0 then
            compl_per_level.(l) <- compl_per_level.(l) + 1)
        (Mig.fanins mig g))
    order;
  (* Virtual readout stage for complemented primary outputs. *)
  Array.iter
    (fun s ->
      if Mig.is_compl s && Mig.node_of s <> 0 then
        compl_per_level.(depth + 1) <- compl_per_level.(depth + 1) + 1)
    (Mig.pos mig);
  { level; depth; gates_per_level; compl_per_level; order }

let compute_scratch mig =
  let n = Mig.num_nodes mig in
  let level = Array.make n 0 in
  List.iter
    (fun g ->
      let fanins = Mig.fanins mig g in
      let m = ref 0 in
      Array.iter (fun s -> m := max !m level.(Mig.node_of s)) fanins;
      level.(g) <- !m + 1)
    (Mig.topo_order mig);
  of_level_assignment mig level

let compute mig =
  let a = Mig_analysis.of_mig mig in
  let n = Mig.num_nodes mig in
  let level =
    Array.init n (fun i ->
        if Mig_analysis.is_counted a i then Mig_analysis.level a i else 0)
  in
  of_level_assignment mig level

let num_levels_with_compl t =
  let count = ref 0 in
  Array.iter (fun c -> if c > 0 then incr count) t.compl_per_level;
  !count

let critical_fanin_level t mig g =
  let m = ref 0 in
  Array.iter (fun s -> m := max !m t.level.(Mig.node_of s)) (Mig.fanins mig g);
  !m

let pp ppf t =
  Format.fprintf ppf "depth=%d levels_with_compl=%d" t.depth (num_levels_with_compl t)
