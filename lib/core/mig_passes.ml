open Logic

(* Per-rule application counters (hits = the rewrite fired, misses = it was
   attempted on an eligible gate and declined).  One load-and-branch per
   attempt when observability is off. *)
let c_omega_d_rl_hit = Obs.counter "mig.rule/omega_d_rl.hits"
and c_omega_d_rl_miss = Obs.counter "mig.rule/omega_d_rl.misses"
and c_omega_d_lr_hit = Obs.counter "mig.rule/omega_d_lr.hits"
and c_omega_d_lr_miss = Obs.counter "mig.rule/omega_d_lr.misses"
and c_omega_a_hit = Obs.counter "mig.rule/omega_a.hits"
and c_omega_a_miss = Obs.counter "mig.rule/omega_a.misses"
and c_psi_c_hit = Obs.counter "mig.rule/psi_c.hits"
and c_psi_c_miss = Obs.counter "mig.rule/psi_c.misses"
and c_psi_r_hit = Obs.counter "mig.rule/psi_r.hits"
and c_psi_r_miss = Obs.counter "mig.rule/psi_r.misses"
and c_omega_i_hit = Obs.counter "mig.rule/omega_i.hits"
and c_omega_i_miss = Obs.counter "mig.rule/omega_i.misses"

let c_strash_merges = Obs.counter "mig.pass/strash.merges"
and c_strash_compacted = Obs.counter "mig.pass/strash.compacted_ids"

(* Specializes at partial-application time (once per sweep): when
   observability is off this returns [rule] itself, so the per-gate loop
   pays nothing over the uninstrumented code. *)
let counted hit miss rule =
  if not (Obs.enabled ()) then rule
  else fun g ->
    let fired = rule g in
    if fired then Obs.incr hit else Obs.incr miss;
    fired

let sweep mig rule =
  let changed = ref false in
  Mig.foreach_gate mig (fun g ->
      if (not (Mig.is_dead mig g)) && rule g then changed := true);
  !changed

let repeat_until_stable ?(max_iters = 4) pass mig =
  let changed = ref false in
  let continue_ = ref true in
  let iters = ref 0 in
  while !continue_ && !iters < max_iters do
    incr iters;
    if pass mig then changed := true else continue_ := false
  done;
  !changed

let eliminate mig =
  repeat_until_stable
    (fun m ->
      sweep m (counted c_omega_d_rl_hit c_omega_d_rl_miss (Mig_algebra.try_distributivity_rl m)))
    mig

let reshape ~seed mig =
  let rng = Prng.create seed in
  let cache = Mig_algebra.Level_cache.make mig in
  let psi_c =
    counted c_psi_c_hit c_psi_c_miss
      (Mig_algebra.try_compl_assoc ~through_compl:false ~fanout_limit:1 mig cache)
  in
  let omega_a =
    counted c_omega_a_hit c_omega_a_miss
      (Mig_algebra.try_associativity ~strict:false ~through_compl:false
         ~fanout_limit:1 mig cache)
  in
  sweep mig (fun g -> if Prng.bool rng then psi_c g else omega_a g)

let push_up ?(through_compl = true) ?(fanout_limit = max_int) mig =
  let one m =
    let cache = Mig_algebra.Level_cache.make m in
    let omega_d =
      counted c_omega_d_lr_hit c_omega_d_lr_miss
        (Mig_algebra.try_distributivity_lr ~through_compl ~fanout_limit m cache)
    in
    let omega_a =
      counted c_omega_a_hit c_omega_a_miss
        (Mig_algebra.try_associativity ~through_compl ~fanout_limit m cache)
    in
    let psi_c =
      counted c_psi_c_hit c_psi_c_miss
        (Mig_algebra.try_compl_assoc ~through_compl ~fanout_limit m cache)
    in
    sweep m (fun g -> omega_d g || omega_a g || psi_c g)
  in
  repeat_until_stable ~max_iters:2 one mig

let relevance mig =
  let cache = Mig_algebra.Level_cache.make mig in
  sweep mig (counted c_psi_r_hit c_psi_r_miss (Mig_algebra.try_relevance mig cache))

type compl_criterion = Always | Weighted of Rram_cost.realization

let compl_prop ?(min_compl = 2) criterion mig =
  (* Table I statistics come from the maintained analysis and track every
     accepted flip, so each candidate is judged against the current graph
     rather than a sweep-start snapshot. *)
  let a = Mig_analysis.of_mig mig in
  let changed = ref false in
  Mig.foreach_gate mig (fun g ->
      if (not (Mig.is_dead mig g)) && Mig_algebra.compl_fanins mig g >= min_compl
      then begin
        let accept =
          match criterion with
          | Always -> true
          | Weighted realization ->
              let depth = Mig_analysis.depth a in
              let lg = Mig_analysis.level a g in
              let compl_at l =
                if l = depth + 1 then Mig_analysis.po_compl a
                else Mig_analysis.compl_at_level a l
              in
              (* Per-level complement deltas caused by flipping g. *)
              let deltas = Hashtbl.create 7 in
              let bump l d =
                Hashtbl.replace deltas l
                  (d + try Hashtbl.find deltas l with Not_found -> 0)
              in
              Array.iter
                (fun s ->
                  if Mig.node_of s <> 0 then
                    bump lg (if Mig.is_compl s then -1 else 1))
                (Mig.fanins mig g);
              List.iter
                (fun h ->
                  let lh = Mig_analysis.level a h in
                  Array.iter
                    (fun s ->
                      if Mig.node_of s = g then
                        bump lh (if Mig.is_compl s then -1 else 1))
                    (Mig.fanins mig h))
                (Mig.fanout mig g);
              Array.iter
                (fun s ->
                  if Mig.node_of s = g then
                    bump (depth + 1) (if Mig.is_compl s then -1 else 1))
                (Mig.pos mig);
              let delta_at l =
                try Hashtbl.find deltas l with Not_found -> 0
              in
              let cost_of with_delta =
                let k_r = Rram_cost.rrams_per_gate realization in
                let k_s = Rram_cost.steps_per_level realization in
                let rrams = ref 0 and levels_with = ref 0 in
                for i = 0 to depth + 1 do
                  let c = compl_at i + if with_delta then delta_at i else 0 in
                  let ni = if i <= depth then Mig_analysis.gates_at_level a i else 0 in
                  rrams := max !rrams ((k_r * ni) + c);
                  if c > 0 then incr levels_with
                done;
                { Rram_cost.rrams = !rrams; steps = (k_s * depth) + !levels_with }
              in
              let before = cost_of false in
              let after = cost_of true in
              Rram_cost.weighted after < Rram_cost.weighted before
              || (after.Rram_cost.steps = before.Rram_cost.steps
                  && after.Rram_cost.rrams <= before.Rram_cost.rrams
                  && compl_at lg > 0)
        in
        if accept && Mig_algebra.try_compl_prop ~min_compl mig g then begin
          Obs.incr c_omega_i_hit;
          changed := true
        end
        else Obs.incr c_omega_i_miss
      end);
  !changed

let balance mig =
  let cache = Mig_algebra.Level_cache.make mig in
  let assoc_changed =
    sweep mig
      (counted c_omega_a_hit c_omega_a_miss
         (Mig_algebra.try_associativity ~strict:false ~fanout_limit:1 mig cache))
  in
  let elim_changed = eliminate mig in
  assoc_changed || elim_changed

let size_and_depth mig =
  let a = Mig_analysis.of_mig mig in
  (Mig_analysis.size a, Mig_analysis.depth a)

(* One topological sweep that re-hashes every live gate against the gates
   already visited and merges structural duplicates (substitution cascades
   keep downstream triples current, so later visits see post-merge fanins).
   Node construction strashes eagerly and [Mig.refanin] re-hashes through
   the same table, so in steady state this sweep is a defensive no-op on
   duplicates; its routine effect is detecting (and compacting away) dead
   node records and live-but-unreachable gates left behind by rewriting.
   Returns the untouched input when the graph is already canonical, so
   enclosing [cycle] blocks converge. *)
let strash mig =
  let seen = Hashtbl.create 997 in
  let merges = ref 0 in
  Mig.foreach_gate mig (fun g ->
      if not (Mig.is_dead mig g) then begin
        let f = Mig.fanins mig g in
        let key = (f.(0), f.(1), f.(2)) in
        match Hashtbl.find_opt seen key with
        | Some first when first <> g && not (Mig.is_dead mig first) ->
            incr merges;
            Mig.substitute mig g (Mig.signal_of first false)
        | Some _ -> ()
        | None -> Hashtbl.add seen key g
      end);
  let reachable = Mig.size mig in
  let dead_ids = Mig.num_nodes mig - 1 - Mig.num_pis mig - reachable in
  if !merges = 0 && dead_ids = 0 then (mig, false)
  else begin
    Obs.incr ~by:!merges c_strash_merges;
    Obs.incr ~by:dead_ids c_strash_compacted;
    (Mig.cleanup mig, true)
  end
