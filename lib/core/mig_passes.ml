open Logic

(* Per-rule application counters (hits = the rewrite fired, misses = it was
   attempted on an eligible gate and declined).  One load-and-branch per
   attempt when observability is off. *)
let c_omega_d_rl_hit = Obs.counter "mig.rule/omega_d_rl.hits"
and c_omega_d_rl_miss = Obs.counter "mig.rule/omega_d_rl.misses"
and c_omega_d_lr_hit = Obs.counter "mig.rule/omega_d_lr.hits"
and c_omega_d_lr_miss = Obs.counter "mig.rule/omega_d_lr.misses"
and c_omega_a_hit = Obs.counter "mig.rule/omega_a.hits"
and c_omega_a_miss = Obs.counter "mig.rule/omega_a.misses"
and c_psi_c_hit = Obs.counter "mig.rule/psi_c.hits"
and c_psi_c_miss = Obs.counter "mig.rule/psi_c.misses"
and c_psi_r_hit = Obs.counter "mig.rule/psi_r.hits"
and c_psi_r_miss = Obs.counter "mig.rule/psi_r.misses"
and c_omega_i_hit = Obs.counter "mig.rule/omega_i.hits"
and c_omega_i_miss = Obs.counter "mig.rule/omega_i.misses"

(* Specializes at partial-application time (once per sweep): when
   observability is off this returns [rule] itself, so the per-gate loop
   pays nothing over the uninstrumented code. *)
let counted hit miss rule =
  if not (Obs.enabled ()) then rule
  else fun g ->
    let fired = rule g in
    if fired then Obs.incr hit else Obs.incr miss;
    fired

let sweep mig rule =
  let changed = ref false in
  Mig.foreach_gate mig (fun g ->
      if (not (Mig.is_dead mig g)) && rule g then changed := true);
  !changed

let repeat_until_stable ?(max_iters = 4) pass mig =
  let changed = ref false in
  let continue_ = ref true in
  let iters = ref 0 in
  while !continue_ && !iters < max_iters do
    incr iters;
    if pass mig then changed := true else continue_ := false
  done;
  !changed

let eliminate mig =
  repeat_until_stable
    (fun m ->
      sweep m (counted c_omega_d_rl_hit c_omega_d_rl_miss (Mig_algebra.try_distributivity_rl m)))
    mig

let reshape ~seed mig =
  let rng = Prng.create seed in
  let cache = Mig_algebra.Level_cache.make mig in
  let psi_c =
    counted c_psi_c_hit c_psi_c_miss
      (Mig_algebra.try_compl_assoc ~through_compl:false ~fanout_limit:1 mig cache)
  in
  let omega_a =
    counted c_omega_a_hit c_omega_a_miss
      (Mig_algebra.try_associativity ~strict:false ~through_compl:false
         ~fanout_limit:1 mig cache)
  in
  sweep mig (fun g -> if Prng.bool rng then psi_c g else omega_a g)

let push_up ?(through_compl = true) ?(fanout_limit = max_int) mig =
  let one m =
    let cache = Mig_algebra.Level_cache.make m in
    let omega_d =
      counted c_omega_d_lr_hit c_omega_d_lr_miss
        (Mig_algebra.try_distributivity_lr ~through_compl ~fanout_limit m cache)
    in
    let omega_a =
      counted c_omega_a_hit c_omega_a_miss
        (Mig_algebra.try_associativity ~through_compl ~fanout_limit m cache)
    in
    let psi_c =
      counted c_psi_c_hit c_psi_c_miss
        (Mig_algebra.try_compl_assoc ~through_compl ~fanout_limit m cache)
    in
    sweep m (fun g -> omega_d g || omega_a g || psi_c g)
  in
  repeat_until_stable ~max_iters:2 one mig

let relevance mig =
  let cache = Mig_algebra.Level_cache.make mig in
  sweep mig (counted c_psi_r_hit c_psi_r_miss (Mig_algebra.try_relevance mig cache))

type compl_criterion = Always | Weighted of Rram_cost.realization

let compl_prop ?(min_compl = 2) criterion mig =
  let lv = Mig_levels.compute mig in
  let cache = Mig_algebra.Level_cache.make mig in
  let depth = lv.Mig_levels.depth in
  (* Working copies of the Table I statistics, updated as flips are applied;
     node levels are invariant under Ω.I so the level cache stays valid. *)
  let ncomp = Array.copy lv.Mig_levels.compl_per_level in
  let ngates = lv.Mig_levels.gates_per_level in
  let gate_count l = if l >= 0 && l < Array.length ngates then ngates.(l) else 0 in
  let compl_count l = if l >= 0 && l < Array.length ncomp then ncomp.(l) else 0 in
  let cost_of comp_arr realization =
    let k_r = Rram_cost.rrams_per_gate realization in
    let k_s = Rram_cost.steps_per_level realization in
    let rrams = ref 0 and levels_with = ref 0 in
    for i = 0 to depth + 1 do
      let c = if i < Array.length comp_arr then comp_arr.(i) else 0 in
      rrams := max !rrams ((k_r * gate_count i) + c);
      if c > 0 then incr levels_with
    done;
    { Rram_cost.rrams = !rrams; steps = (k_s * depth) + !levels_with }
  in
  let changed = ref false in
  Mig.foreach_gate mig (fun g ->
      if (not (Mig.is_dead mig g)) && Mig_algebra.compl_fanins mig g >= min_compl
      then begin
        let lg = Mig_algebra.Level_cache.node_level cache mig g in
        (* Per-level complement deltas caused by flipping g. *)
        let deltas = Hashtbl.create 7 in
        let bump l d =
          Hashtbl.replace deltas l (d + try Hashtbl.find deltas l with Not_found -> 0)
        in
        let const_fanins = ref 0 in
        Array.iter
          (fun s ->
            if Mig.node_of s = 0 then incr const_fanins
            else if Mig.is_compl s then bump lg (-1)
            else bump lg 1)
          (Mig.fanins mig g);
        List.iter
          (fun h ->
            let lh = Mig_algebra.Level_cache.node_level cache mig h in
            Array.iter
              (fun s ->
                if Mig.node_of s = g then bump lh (if Mig.is_compl s then -1 else 1))
              (Mig.fanins mig h))
          (Mig.fanout mig g);
        Array.iter
          (fun s ->
            if Mig.node_of s = g then
              bump (depth + 1) (if Mig.is_compl s then -1 else 1))
          (Mig.pos mig);
        let accept =
          match criterion with
          | Always -> true
          | Weighted realization ->
              let trial = Array.copy ncomp in
              Hashtbl.iter
                (fun l d ->
                  if l >= 0 && l < Array.length trial then trial.(l) <- trial.(l) + d)
                deltas;
              let before = cost_of ncomp realization in
              let after = cost_of trial realization in
              Rram_cost.weighted after < Rram_cost.weighted before
              || (after.Rram_cost.steps = before.Rram_cost.steps
                  && after.Rram_cost.rrams <= before.Rram_cost.rrams
                  && compl_count lg > 0)
        in
        if accept && Mig_algebra.try_compl_prop ~min_compl mig g then begin
          Obs.incr c_omega_i_hit;
          changed := true;
          Hashtbl.iter
            (fun l d ->
              if l >= 0 && l < Array.length ncomp then
                ncomp.(l) <- max 0 (ncomp.(l) + d))
            deltas
        end
        else Obs.incr c_omega_i_miss
      end);
  !changed

let balance mig =
  let cache = Mig_algebra.Level_cache.make mig in
  let assoc_changed =
    sweep mig
      (counted c_omega_a_hit c_omega_a_miss
         (Mig_algebra.try_associativity ~strict:false ~fanout_limit:1 mig cache))
  in
  let elim_changed = eliminate mig in
  assoc_changed || elim_changed

let size_and_depth mig =
  let lv = Mig_levels.compute mig in
  (List.length lv.Mig_levels.order, lv.Mig_levels.depth)
