open Logic

(* Balanced fold keeps tree depth logarithmic in the operand count.
   Explicit-stack evaluation of the historical recursion
   [f (fold left-half) (fold right-half)] — including its right-to-left
   argument order, which fixes the MIG node creation order when [f] builds
   gates — without the per-level list splitting (O(n log n) allocation) or
   any stack-depth dependence on the operand count. *)
let balanced_fold f = function
  | [] -> invalid_arg "Mig_of_network: empty operand list"
  | [ x ] -> x
  | xs ->
      let arr = Array.of_list xs in
      (* frames: [Eval (lo, hi)] folds the slice, [Combine] applies [f] to
         the top two values (left on top, pushed second). *)
      let frames = ref [ `Eval (0, Array.length arr) ] in
      let values = ref [] in
      while !frames <> [] do
        let fr = List.hd !frames in
        frames := List.tl !frames;
        match fr with
        | `Eval (lo, hi) ->
            if hi - lo = 1 then values := arr.(lo) :: !values
            else begin
              let mid = lo + ((hi - lo) / 2) in
              frames := `Eval (mid, hi) :: `Eval (lo, mid) :: `Combine :: !frames
            end
        | `Combine -> (
            match !values with
            | l :: r :: rest -> values := f l r :: rest
            | _ -> assert false)
      done;
      (match !values with [ v ] -> v | _ -> assert false)

let signal_of_sop mig sop literal_signal =
  let cube_signal cube =
    match Cube.literals cube with
    | [] -> Mig.const1
    | lits ->
        balanced_fold (Mig.and_ mig)
          (List.map (fun (v, pos) ->
               let s = literal_signal v in
               if pos then s else Mig.not_ s)
             lits)
  in
  match Sop.cubes sop with
  | [] -> Mig.const0
  | cubes -> balanced_fold (Mig.or_ mig) (List.map cube_signal cubes)

let convert net =
  let mig = Mig.create () in
  let pi_signals = Array.init (Network.num_inputs net) (fun _ -> Mig.add_pi mig) in
  let n = Network.num_nodes net in
  let signals = Array.make n Mig.const0 in
  for id = 0 to n - 1 do
    let f i = signals.((Network.fanins net id).(i)) in
    let all () = Array.to_list (Array.map (fun g -> signals.(g)) (Network.fanins net id)) in
    signals.(id) <-
      (match Network.kind net id with
      | Network.Const b -> if b then Mig.const1 else Mig.const0
      | Network.Input k -> pi_signals.(k)
      | Network.And -> balanced_fold (Mig.and_ mig) (all ())
      | Network.Or -> balanced_fold (Mig.or_ mig) (all ())
      | Network.Xor -> balanced_fold (Mig.xor_ mig) (all ())
      | Network.Nand -> Mig.not_ (balanced_fold (Mig.and_ mig) (all ()))
      | Network.Nor -> Mig.not_ (balanced_fold (Mig.or_ mig) (all ()))
      | Network.Xnor -> Mig.not_ (balanced_fold (Mig.xor_ mig) (all ()))
      | Network.Not -> Mig.not_ (f 0)
      | Network.Buf -> f 0
      | Network.Maj -> Mig.maj mig (f 0) (f 1) (f 2)
      | Network.Mux -> Mig.mux mig (f 0) (f 1) (f 2)
      | Network.Table sop ->
          let fanins = Network.fanins net id in
          signal_of_sop mig sop (fun v -> signals.(fanins.(v))))
  done;
  List.iter (fun (_, id) -> ignore (Mig.add_po mig signals.(id))) (Network.outputs net);
  mig

let of_truth_table tt =
  let n = Truth_table.num_vars tt in
  let sop = Sop.of_truth_table tt in
  let mig = Mig.create () in
  let pis = Array.init n (fun _ -> Mig.add_pi mig) in
  let s = signal_of_sop mig sop (fun v -> pis.(v)) in
  ignore (Mig.add_po mig s);
  mig
