(* Thin view over the incrementally maintained {!Mig_analysis}: levels track
   every substitution instead of freezing at the first query, so depth-aware
   rules always compare against the current graph. *)
module Level_cache = struct
  type t = Mig_analysis.t

  let make mig = Mig_analysis.of_mig mig
  let node_level t _mig n = Mig_analysis.level t n
  let level t _mig s = Mig_analysis.level t (Mig.node_of s)
  let invalidate _t _n = ()
end

let is_gate mig s = Mig.kind mig (Mig.node_of s) = Mig.Gate

let single_use mig s =
  let n = Mig.node_of s in
  Mig.fanout_size mig n = 1 && Mig.po_refs mig n = 0

(* Total uses (gate fanouts + primary outputs) bounded by [k]: rewriting
   through a gate duplicates it for its other users, so passes bound the
   damage with a fanout limit. *)
let uses_at_most mig s k =
  let n = Mig.node_of s in
  Mig.fanout_size mig n + Mig.po_refs mig n <= k

(* Fanins of a gate signal as seen through its polarity: by Ω.I,
   ¬M(u,v,z) = M(¬u,¬v,¬z), so a complemented gate edge exposes the
   complemented fanin triple.  Rewriting through these "virtual" fanins lets
   the structural rules (Ω.A, Ω.D, Ψ.C) cross complemented edges, which is
   essential on XOR-rich logic. *)
(* The positive case borrows the node's fanin array: callers only read it,
   and {!Mig} replaces fanin arrays wholesale on refanin (never writes them
   in place), so the borrowed array keeps its snapshot contents. *)
let virtual_fanins mig s =
  let f = Mig.fanins mig (Mig.node_of s) in
  if Mig.is_compl s then Array.map (fun g -> Mig.not_ g) f else f

(* Whether a rule may look through a (possibly complemented) gate edge.
   The conventional algorithms (Algs. 1–2) have no Ω.I in their listings, so
   their rewrites stop at complemented edges; the complement-aware
   algorithms (Algs. 3–4) cross them — equivalent to flipping with Ω.I
   right-to-left first and rewriting after. *)
let gate_edge_ok mig through_compl s =
  is_gate mig s && (through_compl || not (Mig.is_compl s))

(* The two signals of a fanin triple other than [u]; fails if [u] absent. *)
let others_in f u =
  let rest = Array.to_list f |> List.filter (fun s -> s <> u) in
  match rest with [ a; b ] -> Some (a, b) | _ -> None

(* Shared signals between two sorted fanin triples. *)
let shared_signals fa fb =
  Array.to_list fa |> List.filter (fun s -> Array.exists (fun x -> x = s) fb)

let pairs_with_third f =
  [ (f.(0), f.(1), f.(2)); (f.(0), f.(2), f.(1)); (f.(1), f.(2), f.(0)) ]

(* Ω.D right-to-left: M(M(x,y,u), M(x,y,v), r) → M(x, y, M(u,v,r)). *)
let try_distributivity_rl mig g =
  let f = Mig.fanins mig g in
  let attempt (p, q, r) =
    if is_gate mig p && is_gate mig q && single_use mig p && single_use mig q then begin
      let fp = virtual_fanins mig p and fq = virtual_fanins mig q in
      match shared_signals fp fq with
      | [ x; y ] ->
          let leftover fa =
            Array.to_list fa |> List.filter (fun s -> s <> x && s <> y) |> List.hd
          in
          let u = leftover fp and v = leftover fq in
          let inner = Mig.maj mig u v r in
          if Mig.node_of inner = g then false
          else begin
            let root = Mig.maj mig x y inner in
            if Mig.node_of root = g then false
            else begin
              Mig.substitute mig g root;
              true
            end
          end
      | _ -> false
    end
    else false
  in
  List.exists attempt (pairs_with_third f)

(* Ω.D left-to-right: M(x, y, M(u,v,z)) → M(M(x,y,u), M(x,y,v), z); apply
   when the root level strictly drops (z is on the critical path). *)
let try_distributivity_lr ?(through_compl = true) ?(fanout_limit = max_int) mig cache g =
  let lv s = Level_cache.level cache mig s in
  let root_level = Level_cache.node_level cache mig g in
  let f = Mig.fanins mig g in
  let attempt (p, other1, other2) =
    if gate_edge_ok mig through_compl p && uses_at_most mig p fanout_limit then begin
      let fp = virtual_fanins mig p in
      let x = other1 and y = other2 in
      let choices = pairs_with_third fp in
      List.exists
        (fun (u, v, z) ->
          let inner1 = 1 + max (lv x) (max (lv y) (lv u)) in
          let inner2 = 1 + max (lv x) (max (lv y) (lv v)) in
          let new_level = 1 + max (lv z) (max inner1 inner2) in
          if new_level < root_level then begin
            let a = Mig.maj mig x y u in
            let b = Mig.maj mig x y v in
            if Mig.node_of a = g || Mig.node_of b = g then false
            else begin
              let root = Mig.maj mig a b z in
              if Mig.node_of root = g then false
              else begin
                Mig.substitute mig g root;
                true
              end
            end
          end
          else false)
        choices
    end
    else false
  in
  (* positions: each fanin may play the inner-gate role *)
  List.exists attempt
    [ (f.(0), f.(1), f.(2)); (f.(1), f.(0), f.(2)); (f.(2), f.(0), f.(1)) ]

(* Ω.A: M(x, u, M(y,u,z)) → M(z, u, M(y,u,x)); swap the deep inner operand
   with the shallow outer one.  With [strict] (the default) the root level
   must strictly drop; reshaping passes use [strict:false] to accept
   level-preserving swaps that expose new elimination opportunities. *)
let try_associativity ?(strict = true) ?(through_compl = true) ?(fanout_limit = max_int) mig cache g =
  let lv s = Level_cache.level cache mig s in
  let root_level = Level_cache.node_level cache mig g in
  let accepts new_level =
    if strict then new_level < root_level else new_level <= root_level
  in
  let f = Mig.fanins mig g in
  let attempt (p, a1, a2) =
    if gate_edge_ok mig through_compl p && uses_at_most mig p fanout_limit then begin
      let fp = virtual_fanins mig p in
      (* u must be shared between the root and the inner gate *)
      List.exists
        (fun (u, x) ->
          if Array.exists (fun s -> s = u) fp then begin
            match others_in fp u with
            | Some (c1, c2) ->
                List.exists
                  (fun (z, y) ->
                    let new_inner = 1 + max (lv y) (max (lv u) (lv x)) in
                    let new_level = 1 + max (lv z) (max (lv u) new_inner) in
                    if accepts new_level && new_level <= root_level then begin
                      let inner = Mig.maj mig y u x in
                      if Mig.node_of inner = g then false
                      else begin
                        let root = Mig.maj mig z u inner in
                        if Mig.node_of root = g then false
                        else begin
                          Mig.substitute mig g root;
                          true
                        end
                      end
                    end
                    else false)
                  [ (c1, c2); (c2, c1) ]
            | None -> false
          end
          else false)
        [ (a1, a2); (a2, a1) ]
    end
    else false
  in
  List.exists attempt
    [ (f.(0), f.(1), f.(2)); (f.(1), f.(0), f.(2)); (f.(2), f.(0), f.(1)) ]

(* Ψ.C: M(x, u, M(y,¬u,z)) → M(x, u, M(y,x,z)). *)
let try_compl_assoc ?(require_gain = true) ?(through_compl = true) ?(fanout_limit = max_int) mig cache g =
  let lv s = Level_cache.level cache mig s in
  let root_level = Level_cache.node_level cache mig g in
  let f = Mig.fanins mig g in
  let attempt (p, a1, a2) =
    if gate_edge_ok mig through_compl p && uses_at_most mig p fanout_limit then begin
      let fp = virtual_fanins mig p in
      List.exists
        (fun (u, x) ->
          if not (Array.exists (fun s -> s = Mig.not_ u) fp) then false
          else
            match others_in fp (Mig.not_ u) with
            | Some (y, z) ->
                let new_inner = 1 + max (lv y) (max (lv x) (lv z)) in
                let new_level = 1 + max (lv x) (max (lv u) new_inner) in
                if (not require_gain) || new_level <= root_level then begin
                  let inner = Mig.maj mig y x z in
                  if Mig.node_of inner = g then false
                  else begin
                    let root = Mig.maj mig x u inner in
                    if Mig.node_of root = g then false
                    else begin
                      Mig.substitute mig g root;
                      true
                    end
                  end
                end
                else false
            | None -> false)
        [ (a1, a2); (a2, a1) ]
    end
    else false
  in
  List.exists attempt
    [ (f.(0), f.(1), f.(2)); (f.(1), f.(0), f.(2)); (f.(2), f.(0), f.(1)) ]

let compl_fanins mig g =
  let count = ref 0 in
  Array.iter
    (fun s -> if Mig.is_compl s && Mig.node_of s <> 0 then incr count)
    (Mig.fanins mig g);
  !count

(* Ω.I right-to-left (extension of §III-C.3): flip all fanin polarities and
   complement the node's output everywhere. *)
let try_compl_prop ?(min_compl = 2) mig g =
  if compl_fanins mig g >= min_compl then begin
    let f = Mig.fanins mig g in
    let flipped = Mig.maj mig (Mig.not_ f.(0)) (Mig.not_ f.(1)) (Mig.not_ f.(2)) in
    if Mig.node_of flipped = g then false
    else begin
      Mig.substitute mig g (Mig.not_ flipped);
      true
    end
  end
  else false

(* Ψ.R: M(x,y,z) = M(x, y, z[x ↦ ¬y]). *)
let try_relevance ?(max_cone = 64) mig cache g =
  let f = Mig.fanins mig g in
  (* Bounded cone of z: gates only, stop at PIs/constants.  Collection is
     pure and failed attempts only append speculative (unreferenced) nodes,
     so the cone is shared between the attempt orderings with the same [z]. *)
  let cone = Hashtbl.create 64 in
  let cone_nodes = ref [] in
  let too_big = ref false in
  let cone_for = ref (-1) in
  let collect_cone zn =
    if !cone_for <> zn then begin
      Hashtbl.reset cone;
      cone_nodes := [];
      too_big := false;
      cone_for := zn;
      let rec collect n =
        if (not !too_big) && (not (Hashtbl.mem cone n)) && Mig.kind mig n = Mig.Gate
        then begin
          if Hashtbl.length cone >= max_cone then too_big := true
          else begin
            Hashtbl.add cone n ();
            cone_nodes := n :: !cone_nodes;
            Array.iter (fun s -> collect (Mig.node_of s)) (Mig.fanins mig n)
          end
        end
      in
      collect zn
    end
  in
  let attempt (x, y, z) =
    let zn = Mig.node_of z in
    if Mig.kind mig zn <> Mig.Gate then false
    else begin
      collect_cone zn;
      let xn = Mig.node_of x in
      let occurs =
        (not !too_big)
        && List.exists
             (fun n -> Array.exists (fun s -> Mig.node_of s = xn) (Mig.fanins mig n))
             !cone_nodes
      in
      if not occurs then false
      else begin
        let memo = Hashtbl.create 64 in
        let hit_root = ref false in
        (* rebuild_node n = signal equivalent to the positive polarity of n
           with every occurrence of signal [x] replaced by ¬y. *)
        let rec rebuild_node n =
          if n = xn then if Mig.is_compl x then y else Mig.not_ y
          else if not (Hashtbl.mem cone n) then Mig.signal_of n false
          else
            match Hashtbl.find_opt memo n with
            | Some s -> s
            | None ->
                let app s = rebuild_node (Mig.node_of s) lxor (s land 1) in
                let fn = Mig.fanins mig n in
                let s = Mig.maj mig (app fn.(0)) (app fn.(1)) (app fn.(2)) in
                if Mig.node_of s = g then hit_root := true;
                Hashtbl.add memo n s;
                s
        in
        let z' = rebuild_node zn lxor (z land 1) in
        if !hit_root || z' = z || Mig.node_of z' = g then false
        else if Level_cache.level cache mig z' > Level_cache.level cache mig z then false
        else begin
          let root = Mig.maj mig x y z' in
          if Mig.node_of root = g then false
          else begin
            Mig.substitute mig g root;
            true
          end
        end
      end
    end
  in
  List.exists attempt
    [
      (f.(0), f.(1), f.(2)); (f.(1), f.(0), f.(2));
      (f.(0), f.(2), f.(1)); (f.(2), f.(0), f.(1));
      (f.(1), f.(2), f.(0)); (f.(2), f.(1), f.(0));
    ]
