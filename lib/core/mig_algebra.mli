(** The MIG Boolean algebra: the Ω and Ψ transformations as local rewrites.

    Each [try_*] function attempts one rewrite rooted at a given gate and
    returns [true] when it changed the graph.  Commutativity (Ω.C) is
    implicit in the sorted-fanin normal form of {!Mig}; the majority rule
    (Ω.M) is applied eagerly on node creation and during substitution.

    Level queries go through a {!Level_cache}, a thin view over the graph's
    incrementally maintained {!Mig_analysis}: levels are repaired after every
    substitution through the mutation-event interface, so depth-aware rules
    always see current levels at amortized O(1) per query. *)

module Level_cache : sig
  type t

  val make : Mig.t -> t
  (** The graph's attached {!Mig_analysis} (created on first use). *)

  val node_level : t -> Mig.t -> int -> int
  val level : t -> Mig.t -> Mig.signal -> int

  val invalidate : t -> int -> unit
  (** No-op, kept for compatibility: invalidation is event-driven. *)
end

val try_distributivity_rl : Mig.t -> int -> bool
(** Ω.D right-to-left: [M(M(x,y,u), M(x,y,v), r) → M(x, y, M(u,v,r))].
    Applied only when both shared-pair fanins are positive single-fanout
    gates, so the rewrite cannot increase the node count. *)

val try_distributivity_lr :
  ?through_compl:bool -> ?fanout_limit:int -> Mig.t -> Level_cache.t -> int -> bool
(** Ω.D left-to-right: [M(x, y, M(u,v,z)) → M(M(x,y,u), M(x,y,v), z)].
    Applied only when it strictly reduces the root's level (pushes the
    critical signal [z] one level up).  [fanout_limit] bounds how shared the
    inner gate may be: rewriting through a gate with [k] other users
    duplicates it for them, so the area-conscious multi-objective algorithm
    passes a small limit while pure depth/step optimization passes none. *)

val try_associativity :
  ?strict:bool ->
  ?through_compl:bool ->
  ?fanout_limit:int ->
  Mig.t ->
  Level_cache.t ->
  int ->
  bool
(** Ω.A: [M(x, u, M(y,u,z)) → M(z, u, M(y,u,x))] when it strictly reduces
    the root's level; with [strict:false], level-preserving swaps are also
    accepted (used by the reshape phase of area optimization). *)

val try_compl_assoc :
  ?require_gain:bool ->
  ?through_compl:bool ->
  ?fanout_limit:int ->
  Mig.t ->
  Level_cache.t ->
  int ->
  bool
(** Ψ.C: [M(x, u, M(y,¬u,z)) → M(x, u, M(y,x,z))].  Removes one complemented
    edge; with [require_gain] (default) the root's level must not increase. *)

(** The [through_compl] flag on the three rules above controls whether they
    may look through complemented gate edges (by Ω.I, [¬M(u,v,z)] exposes
    the flipped triple).  The conventional Algs. 1–2 run with
    [through_compl:false]; the complement-aware Algs. 3–4 with [true]. *)

val compl_fanins : Mig.t -> int -> int
(** Number of complemented fanins whose source is not the constant node. *)

val try_compl_prop : ?min_compl:int -> Mig.t -> int -> bool
(** Ω.I right-to-left, the extension of §III-C.3: when the gate has at least
    [min_compl] (default 2) complemented non-constant fanins, replace
    [M(a,b,c)] by [¬M(¬a,¬b,¬c)], i.e. flip all fanin polarities and
    complement every fanout/output edge.  Case (1) of the paper is
    [compl_fanins = 3], cases (2)/(3) are [compl_fanins = 2]. *)

val try_relevance : ?max_cone:int -> Mig.t -> Level_cache.t -> int -> bool
(** Ψ.R: [M(x,y,z) → M(x,y, z\[x ↦ ¬y\])]: rebuild the (bounded) cone of [z]
    substituting the reconvergent signal [x] with [¬y].  Applied when [x]
    occurs in the cone and the rebuilt cone's level does not increase. *)
