(** Whole-graph rewriting passes built from the {!Mig_algebra} rules.

    Each pass sweeps the live gates (snapshot taken up front, in topological
    order) once and returns [true] if it changed the graph.  The composite
    algorithms of the paper (Algs. 1–4) are assembled from these passes in
    {!Mig_opt}. *)

val eliminate : Mig.t -> bool
(** Ω.M + Ω.D right-to-left sweeps, repeated to a (bounded) fixpoint —
    the node-count reduction engine of Alg. 1. *)

val reshape : seed:int -> Mig.t -> bool
(** Ω.A + Ψ.C level-preserving perturbation (seeded random subset of
    applicable moves) to expose new elimination opportunities. *)

val push_up : ?through_compl:bool -> ?fanout_limit:int -> Mig.t -> bool
(** The depth-reduction engine: Ω.M; Ω.D left-to-right; Ω.A; Ψ.C applied to
    critical-path gates, accepting only level-reducing rewrites.
    [fanout_limit] bounds the sharing of gates that may be duplicated by a
    rewrite; the multi-objective algorithm uses a small limit to keep level
    widths (hence RRAM counts) from growing. *)

val relevance : Mig.t -> bool
(** One Ψ.R sweep (bounded-cone reconvergence substitution). *)

type compl_criterion =
  | Always  (** apply unconditionally (Alg. 4) *)
  | Weighted of Rram_cost.realization
      (** accept only moves that do not worsen the weighted (R, S) cost
          under the given realization (Alg. 3) *)

val compl_prop : ?min_compl:int -> compl_criterion -> Mig.t -> bool
(** Ω.I right-to-left sweep over gates with ≥ [min_compl] (default 2)
    complemented fanins; see {!Mig_algebra.try_compl_prop}. *)

val balance : Mig.t -> bool
(** Trailing Ω.A; Ω.D right-to-left combination of Alg. 3 that undoes
    level-size growth introduced by push-up. *)

val strash : Mig.t -> Mig.t * bool
(** One topological re-hash sweep: merge structurally identical gates (the
    duplicates substitution and rewriting could in principle leave behind)
    and compact dead node records and unreachable gates out of the id
    space.  Returns [(mig, false)] untouched when the graph is already
    canonical — hash-unique, fully live, densely numbered — so a [cycle]
    containing it converges; otherwise a cleaned copy and [true]. *)

val size_and_depth : Mig.t -> int * int
