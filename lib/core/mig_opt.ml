let default_effort = 40

let src = Logs.Src.create "mig.opt" ~doc:"MIG optimization cycle progress"

module Log = (val Logs.src_log src : Logs.LOG)

(* One (size, depth, R, S) trajectory point per optimization cycle: the
   metrics the paper's Algs. 1–4 are driving down, recorded after the
   cycle's cleanup so the sample reflects the compacted graph. *)
let record_trajectory traj cycle mig =
  if Obs.enabled () then begin
    let size, depth = Mig_passes.size_and_depth mig in
    let imp = Rram_cost.of_mig Rram_cost.Imp mig in
    let maj = Rram_cost.of_mig Rram_cost.Maj mig in
    Obs.sample traj
      [
        ("cycle", float_of_int cycle);
        ("size", float_of_int size);
        ("depth", float_of_int depth);
        ("r_imp", float_of_int imp.Rram_cost.rrams);
        ("s_imp", float_of_int imp.Rram_cost.steps);
        ("r_maj", float_of_int maj.Rram_cost.rrams);
        ("s_maj", float_of_int maj.Rram_cost.steps);
      ]
  end

(* Run [cycle] up to [effort] times on compacted copies, stopping early when
   a cycle reports no change. *)
let drive ?(effort = default_effort) ~name cycle finish mig =
  Obs.with_span ~cat:"mig.opt" ("mig.opt/" ^ name) (fun () ->
      let traj = Obs.series ("mig.opt/" ^ name ^ "/trajectory") in
      let current = ref (Mig.cleanup mig) in
      record_trajectory traj 0 !current;
      let continue_ = ref true in
      let n = ref 0 in
      while !continue_ && !n < effort do
        let changed =
          Obs.with_span ~cat:"mig.opt" ("mig.opt/" ^ name ^ "/cycle") (fun () ->
              cycle !n !current)
        in
        current := Mig.cleanup !current;
        record_trajectory traj (!n + 1) !current;
        Log.debug (fun m ->
            let size, depth = Mig_passes.size_and_depth !current in
            m "cycle %d: %d gates, depth %d%s" !n size depth
              (if changed then "" else " (converged)"));
        if not changed then continue_ := false;
        incr n
      done;
      ignore (finish !current);
      Mig.cleanup !current)

let area ?effort mig =
  drive ?effort ~name:"area"
    (fun cycle m ->
      let c1 = Mig_passes.eliminate m in
      let c2 = Mig_passes.reshape ~seed:(0x5EED + cycle) m in
      let c3 = Mig_passes.eliminate m in
      c1 || c2 || c3)
    Mig_passes.eliminate mig

let depth ?effort mig =
  (* Conventional depth optimization: no Ω.I in the paper's Alg. 2, so its
     push-up cannot look through complemented edges. *)
  let push_up = Mig_passes.push_up ~through_compl:false in
  drive ?effort ~name:"depth"
    (fun cycle m ->
      let c1 = push_up m in
      (* Ψ.R rebuilds reconvergent cones and rarely converges on its own, so
         it is throttled to every third cycle to stay within the paper's
         interactive-runtime envelope. *)
      let c2 = if cycle mod 3 = 0 then Mig_passes.relevance m else false in
      let c3 = push_up m in
      c1 || c2 || c3)
    push_up mig

let rram_costs ?effort realization mig =
  let push_up = Mig_passes.push_up ~fanout_limit:2 in
  let name =
    match realization with Rram_cost.Imp -> "rram-costs-imp" | Rram_cost.Maj -> "rram-costs-maj"
  in
  drive ?effort ~name
    (fun _ m ->
      let c1 = push_up m in
      let c2 = Mig_passes.compl_prop (Mig_passes.Weighted realization) m in
      let c3 = push_up m in
      let c4 = Mig_passes.balance m in
      c1 || c2 || c3 || c4)
    push_up mig

let steps ?effort mig =
  drive ?effort ~name:"steps"
    (fun _ m ->
      let c1 = Mig_passes.push_up m in
      let c2 = Mig_passes.compl_prop ~min_compl:3 Mig_passes.Always m in
      let c3 = Mig_passes.compl_prop ~min_compl:2 Mig_passes.Always m in
      let c4 = Mig_passes.push_up m in
      c1 || c2 || c3 || c4)
    Mig_passes.push_up mig

let boolean ?effort mig =
  (* extension: the paper's area algorithm followed by NPN-cached cut-based
     Boolean rewriting (Mig_cut_rewrite) and a final algebraic clean-up *)
  let algebraic = area ?effort mig in
  let rewritten =
    Obs.with_span ~cat:"mig.opt" "mig.opt/bool-rewrite/cut-rewrite" (fun () ->
        Mig_cut_rewrite.rewrite algebraic)
  in
  ignore (Mig_passes.eliminate rewritten);
  Mig.cleanup rewritten

type algorithm =
  | Area
  | Depth
  | Rram_costs of Rram_cost.realization
  | Steps
  | Boolean  (** extension: area + cut-based Boolean rewriting *)

let run ?effort alg mig =
  match alg with
  | Area -> area ?effort mig
  | Depth -> depth ?effort mig
  | Rram_costs r -> rram_costs ?effort r mig
  | Steps -> steps ?effort mig
  | Boolean -> boolean ?effort mig

let algorithm_name = function
  | Area -> "area"
  | Depth -> "depth"
  | Rram_costs Rram_cost.Imp -> "rram-costs-imp"
  | Rram_costs Rram_cost.Maj -> "rram-costs-maj"
  | Steps -> "steps"
  | Boolean -> "bool-rewrite"
