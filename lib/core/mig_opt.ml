(* The paper's Algs. 1–4 (and the Boolean extension), as thin wrappers over
   the Flow pass manager: each entry point parses its canonical flow script
   (see Mig_flows.canonical_script) and runs it under its legacy
   observability name.  The convergence loop, per-cycle cleanup, trajectory
   sampling and span structure all live in the generic Flow engine now. *)

let default_effort = Flow.default_effort

let run_canonical ~name ?effort mig =
  match Mig_flows.canonical_script ?effort name with
  | Some script -> Mig_flows.run ~name (Mig_flows.parse_exn script) mig
  | None -> invalid_arg ("Mig_opt: unknown canonical flow " ^ name)

let area ?effort mig = run_canonical ~name:"area" ?effort mig
let depth ?effort mig = run_canonical ~name:"depth" ?effort mig

let rram_costs ?effort realization mig =
  let name =
    match realization with
    | Rram_cost.Imp -> "rram-costs-imp"
    | Rram_cost.Maj -> "rram-costs-maj"
  in
  run_canonical ~name ?effort mig

let steps ?effort mig = run_canonical ~name:"steps" ?effort mig
let boolean ?effort mig = run_canonical ~name:"bool-rewrite" ?effort mig

type algorithm =
  | Area
  | Depth
  | Rram_costs of Rram_cost.realization
  | Steps
  | Boolean  (** extension: area + cut-based Boolean rewriting *)

let run ?effort alg mig =
  match alg with
  | Area -> area ?effort mig
  | Depth -> depth ?effort mig
  | Rram_costs r -> rram_costs ?effort r mig
  | Steps -> steps ?effort mig
  | Boolean -> boolean ?effort mig

let algorithm_name = function
  | Area -> "area"
  | Depth -> "depth"
  | Rram_costs Rram_cost.Imp -> "rram-costs-imp"
  | Rram_costs Rram_cost.Maj -> "rram-costs-maj"
  | Steps -> "steps"
  | Boolean -> "bool-rewrite"
