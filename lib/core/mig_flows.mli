(** The MIG instantiation of the generic {!Flow} pass manager.

    This module is the single place where the paper's rewrite sweeps are
    named and registered: every whole-graph pass of {!Mig_passes} (plus the
    Boolean cut rewriter and a compaction step) becomes a [Flow.pass], the
    RRAM cost model becomes the table of [accept_if] guard costs, and
    Algs. 1–4 and the Boolean extension become canonical flow scripts.
    {!Mig_opt}'s entry points are thin wrappers that parse and run those
    scripts; [migsyn flow] exposes the same machinery for user-written
    pipelines. *)

val registry : Mig.t Flow.registry
(** All registered MIG passes, e.g. [eliminate], [reshape], [push_up],
    [push_up_nc], [push_up_f2], [psi_r], [omega_i], [omega_i3],
    [omega_i_w_imp], [omega_i_w_maj], [balance], [cleanup], [strash],
    [cut_rewrite]. *)

val ops : Mig.t Flow.ops
(** Cleanup/copy via {!Mig.cleanup}; the trajectory measure samples
    [(size, depth, r_imp, s_imp, r_maj, s_maj)] exactly as {!Mig_opt}
    always recorded. *)

val costs : (string * (Mig.t -> float)) list
(** [accept_if] guard costs: [size], [depth], [rrams_imp], [steps_imp],
    [rrams_maj], [steps_maj], the scalarized [weighted_imp] /
    [weighted_maj] of {!Rram_cost.weighted}, and the crossbar-aware
    [xbar_devices_imp], [xbar_devices_maj], [xbar_latency_imp],
    [xbar_latency_maj] and [xbar_weighted_maj]
    ({!Rram_cost.triple_of_levels} against the ambient {!set_arch}
    architecture), so flow scripts can optimize for a concrete array. *)

val set_arch : Rram_cost.arch -> unit
(** Set the architecture the [xbar_*] costs are evaluated against
    (default: a 64×64 crossbar).  The CLI's [--arch] calls this before
    parsing flow scripts; scripts themselves name costs, not
    geometries. *)

val parse : string -> (Mig.t Flow.t, Flow.Script.error) result
(** Parse a flow script against {!registry} and {!costs}. *)

val parse_exn : string -> Mig.t Flow.t
(** @raise Invalid_argument with the rendered error on a bad script. *)

val run : ?name:string -> Mig.t Flow.t -> Mig.t -> Mig.t
(** {!Flow.run} with span prefix ["mig.opt"], so scripted flows share the
    observability namespace of the paper's algorithms. *)

val canonical_script : ?effort:int -> string -> string option
(** The flow-script encoding of a named algorithm ([area], [depth],
    [rram-costs-imp], [rram-costs-maj], [steps], [bool-rewrite]) with the
    given cycle effort (default {!Flow.default_effort}); [None] for unknown
    names.  {!Mig_opt.run} executes exactly these scripts. *)

val canonical_names : string list
(** The algorithm names {!canonical_script} accepts, in Table II order. *)

(** {1 Portfolio runs}

    The MIG face of [Flow.portfolio]: race several flow {e scripts} over
    copies of one MIG — on separate domains when the pool has more than one
    worker — and keep the winner under a deterministic
    (lowest cost, then lowest script index) tie-break. *)

val default_cost : string
(** ["weighted_maj"] — the scalarized MAJ-realization (R, S) cost the
    portfolio race minimizes by default. *)

val portfolio :
  ?jobs:int ->
  ?cost:string ->
  (string * string) list ->
  Mig.t ->
  Mig.t * Flow.outcome list
(** [portfolio specs mig] parses each [(label, script)] spec, races the
    flows on independent copies of [mig], and returns the winning MIG plus
    one outcome per spec in spec order.  [cost] names an entry of {!costs}
    (default {!default_cost}); [jobs] defaults to [Par.recommended_jobs ()].
    The winner is identical for every [jobs] value.

    @raise Invalid_argument on a bad script or unknown cost name. *)

val default_portfolio : ?effort:int -> unit -> (string * string) list
(** The five paper algorithms as portfolio specs — the default entrant set
    of [migsyn flow --portfolio] and of the registered [portfolio] pass
    (which fixes the inner effort at 10). *)
