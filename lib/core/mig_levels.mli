(** Level structure of a MIG.

    Levels drive both the depth-oriented rewrites and the RRAM cost model of
    the paper (Table I): constants and primary inputs sit at level 0, a gate
    at 1 + the maximum fanin level.  The statistics collected here are
    exactly the quantities named in Table I: [N_i] (gates per level), [C_i]
    (complemented ingoing edges per level, edges from constants excluded
    because a constant's complement is just the other constant), [D]
    (depth = maximum gate level over the primary outputs) and [L] (number of
    levels with [C_i > 0]).

    Complemented primary-output edges are accounted as a virtual readout
    stage [D+1]: inverting a result before readout costs one extra RRAM per
    complemented output and one extra step if any exist.  This prevents
    optimizers from "hiding" complement attributes on the outputs. *)

type t = {
  level : int array;  (** per node id; 0 for PIs, constants and dead nodes *)
  depth : int;  (** [D]: max gate level over the outputs (0 if PO = PI) *)
  gates_per_level : int array;  (** [N_i], indices 1..depth *)
  compl_per_level : int array;
      (** [C_i], indices 1..depth+1; index depth+1 is the readout stage *)
  order : int list;  (** live gates in topological order *)
}

val compute : Mig.t -> t
(** Materialize the level structure from the incrementally maintained
    {!Mig_analysis} of the graph (attaching one on first use).  The topo
    order and bucket arrays are rebuilt; the levels themselves are not. *)

val compute_scratch : Mig.t -> t
(** Compute everything from a fresh topological traversal, independent of
    {!Mig_analysis}.  Reference implementation for tests. *)

val of_level_assignment : Mig.t -> int array -> t
(** Build the statistics for an explicit gate→level assignment (used by
    {!Mig_schedule}); the assignment must respect dependencies. *)

val num_levels_with_compl : t -> int
(** [L] of Table I, including the virtual readout stage. *)

val critical_fanin_level : t -> Mig.t -> int -> int
(** Maximum fanin level of a gate. *)

val pp : Format.formatter -> t -> unit
