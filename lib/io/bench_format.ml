open Logic

exception Parse_error of int * string

let fail line msg = raise (Parse_error (line, msg))

type def =
  | Gate of string * string list (* kind, operands *)
  | Dff of string (* data operand *)

(* Streaming: [iter_lines] hands over one physical line at a time, so a
   file parse reads straight off the channel instead of materializing the
   whole text. *)
let parse_internal iter_lines =
  let inputs = ref [] and outputs = ref [] and defs = ref [] in
  let lineno = ref 0 in
  iter_lines
    (fun raw ->
      incr lineno;
      let n = !lineno in
      let line =
        match String.index_opt raw '#' with
        | Some j -> String.sub raw 0 j
        | None -> raw
      in
      let line = String.trim line in
      if line <> "" then begin
        let upper = String.uppercase_ascii line in
        let paren_arg () =
          match (String.index_opt line '(', String.rindex_opt line ')') with
          | Some l, Some r when r > l -> String.trim (String.sub line (l + 1) (r - l - 1))
          | _ -> fail n "expected (...)"
        in
        if String.length upper >= 6 && String.sub upper 0 6 = "INPUT(" then
          inputs := paren_arg () :: !inputs
        else if String.length upper >= 7 && String.sub upper 0 7 = "OUTPUT(" then
          outputs := paren_arg () :: !outputs
        else
          match String.index_opt line '=' with
          | None -> fail n "expected assignment"
          | Some eq ->
              let target = String.trim (String.sub line 0 eq) in
              let rhs = String.trim (String.sub line (eq + 1) (String.length line - eq - 1)) in
              let kind, args =
                match String.index_opt rhs '(' with
                | None -> (String.uppercase_ascii rhs, [])
                | Some l ->
                    let r =
                      match String.rindex_opt rhs ')' with
                      | Some r when r > l -> r
                      | _ -> fail n "unbalanced parentheses"
                    in
                    let kind = String.uppercase_ascii (String.trim (String.sub rhs 0 l)) in
                    let inner = String.sub rhs (l + 1) (r - l - 1) in
                    let args =
                      String.split_on_char ',' inner
                      |> List.map String.trim
                      |> List.filter (fun s -> s <> "")
                    in
                    (kind, args)
              in
              if kind = "DFF" then begin
                match args with
                | [ d ] -> defs := (n, target, Dff d) :: !defs
                | _ -> fail n "DFF takes one operand"
              end
              else defs := (n, target, Gate (kind, args)) :: !defs
      end);
  let inputs = List.rev !inputs and outputs = List.rev !outputs and defs = List.rev !defs in
  let net = Network.create () in
  let node_of_name = Hashtbl.create 97 in
  List.iter (fun nm -> Hashtbl.replace node_of_name nm (Network.add_input net nm)) inputs;
  (* DFF outputs become pseudo primary inputs. *)
  List.iter
    (fun (_, target, def) ->
      match def with
      | Dff _ -> Hashtbl.replace node_of_name target (Network.add_input net (target ^ "_q"))
      | Gate _ -> ())
    defs;
  let def_of = Hashtbl.create 97 in
  List.iter
    (fun (n, target, def) ->
      match def with
      | Gate (kind, args) -> Hashtbl.replace def_of target (n, kind, args)
      | Dff _ -> ())
    defs;
  let in_progress = Hashtbl.create 17 in
  (* Iterative dependency walk — same discipline as {!Blif}: [`Visit]
     expands unresolved operands over a deferred [`Emit]; operands are
     pushed in reverse so the leftmost resolves first, preserving the
     recursive resolver's node numbering; stack-safe on deep netlists. *)
  let resolve root =
    let stack = ref [ `Visit root ] in
    while !stack <> [] do
      let fr = List.hd !stack in
      stack := List.tl !stack;
      match fr with
      | `Visit name ->
          if not (Hashtbl.mem node_of_name name) then begin
            match Hashtbl.find_opt def_of name with
            | None -> fail 0 ("undefined signal " ^ name)
            | Some (n, kind, args) ->
                if Hashtbl.mem in_progress name then
                  fail n ("combinational cycle at " ^ name);
                Hashtbl.add in_progress name ();
                stack := `Emit (name, n, kind, args) :: !stack;
                List.iter (fun a -> stack := `Visit a :: !stack) (List.rev args)
          end
      | `Emit (name, n, kind, args) ->
          Hashtbl.remove in_progress name;
          let ids = Array.of_list (List.map (Hashtbl.find node_of_name) args) in
          let id =
            match kind with
            | "AND" -> Network.gate net Network.And ids
            | "OR" -> Network.gate net Network.Or ids
            | "NAND" -> Network.gate net Network.Nand ids
            | "NOR" -> Network.gate net Network.Nor ids
            | "XOR" -> Network.gate net Network.Xor ids
            | "XNOR" -> Network.gate net Network.Xnor ids
            | "NOT" -> Network.gate net Network.Not ids
            | "BUF" | "BUFF" -> Network.gate net Network.Buf ids
            | "GND" -> Network.const net false
            | "VDD" -> Network.const net true
            | "MUX" -> Network.gate net Network.Mux ids
            | "MAJ" -> Network.gate net Network.Maj ids
            | _ -> fail n ("unknown gate " ^ kind)
          in
          Hashtbl.replace node_of_name name id
    done;
    Hashtbl.find node_of_name root
  in
  List.iter (fun name -> Network.add_output net name (resolve name)) outputs;
  (* DFF inputs become pseudo primary outputs. *)
  let dffs = ref 0 in
  List.iter
    (fun (_, target, def) ->
      match def with
      | Dff d ->
          incr dffs;
          Network.add_output net (target ^ "_d") (resolve d)
      | Gate _ -> ())
    defs;
  (net, List.length inputs, List.length outputs, !dffs)

let iter_string_lines text feed = List.iter feed (String.split_on_char '\n' text)

let iter_channel_lines ic feed =
  try
    while true do
      feed (input_line ic)
    done
  with End_of_file -> ()

let parse_string text =
  let net, _, _, _ = parse_internal (iter_string_lines text) in
  net

let parse_sequential_string text =
  let net, pis, pos, dffs = parse_internal (iter_string_lines text) in
  Seq.create net ~num_pis:pis ~num_pos:pos ~init:(Array.make dffs false)

let with_file path f =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> f ic)

let parse_file path =
  with_file path (fun ic ->
      let net, _, _, _ = parse_internal (iter_channel_lines ic) in
      net)

let parse_sequential_file path =
  with_file path (fun ic ->
      let net, pis, pos, dffs = parse_internal (iter_channel_lines ic) in
      Seq.create net ~num_pis:pis ~num_pos:pos ~init:(Array.make dffs false))

let write_string net =
  let buf = Buffer.create 4096 in
  let input_names = Network.input_names net in
  let name_of = Hashtbl.create 97 in
  let gate_name id =
    match Hashtbl.find_opt name_of id with
    | Some n -> n
    | None ->
        let n = Printf.sprintf "n%d" id in
        Hashtbl.replace name_of id n;
        n
  in
  Array.iter (fun n -> Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" n)) input_names;
  List.iter
    (fun (n, _) -> Buffer.add_string buf (Printf.sprintf "OUTPUT(%s)\n" n))
    (Network.outputs net);
  let emit target kind operands =
    Buffer.add_string buf
      (Printf.sprintf "%s = %s(%s)\n" target kind (String.concat ", " operands))
  in
  for id = 0 to Network.num_nodes net - 1 do
    let deps () = Array.to_list (Array.map gate_name (Network.fanins net id)) in
    match Network.kind net id with
    | Network.Input i -> Hashtbl.replace name_of id input_names.(i)
    | Network.Const b ->
        Buffer.add_string buf (Printf.sprintf "%s = %s\n" (gate_name id) (if b then "vdd" else "gnd"))
    | Network.And -> emit (gate_name id) "AND" (deps ())
    | Network.Or -> emit (gate_name id) "OR" (deps ())
    | Network.Nand -> emit (gate_name id) "NAND" (deps ())
    | Network.Nor -> emit (gate_name id) "NOR" (deps ())
    | Network.Xor -> emit (gate_name id) "XOR" (deps ())
    | Network.Xnor -> emit (gate_name id) "XNOR" (deps ())
    | Network.Not -> emit (gate_name id) "NOT" (deps ())
    | Network.Buf -> emit (gate_name id) "BUFF" (deps ())
    | Network.Maj -> emit (gate_name id) "MAJ" (deps ())
    | Network.Mux -> emit (gate_name id) "MUX" (deps ())
    | Network.Table sop ->
        (* .bench has no table construct: expand the cover as OR of ANDs. *)
        let deps = deps () in
        let counter = ref 0 in
        let cube_names =
          List.map
            (fun cube ->
              let lits =
                List.map
                  (fun (v, positive) ->
                    if positive then List.nth deps v
                    else begin
                      incr counter;
                      let inv = Printf.sprintf "%s_i%d" (gate_name id) !counter in
                      emit inv "NOT" [ List.nth deps v ];
                      inv
                    end)
                  (Cube.literals cube)
              in
              match lits with
              | [] ->
                  incr counter;
                  let c = Printf.sprintf "%s_c%d" (gate_name id) !counter in
                  Buffer.add_string buf (Printf.sprintf "%s = vdd\n" c);
                  c
              | [ single ] -> single
              | _ ->
                  incr counter;
                  let c = Printf.sprintf "%s_c%d" (gate_name id) !counter in
                  emit c "AND" lits;
                  c)
            (Sop.cubes sop)
        in
        (match cube_names with
        | [] -> Buffer.add_string buf (Printf.sprintf "%s = gnd\n" (gate_name id))
        | [ single ] -> emit (gate_name id) "BUFF" [ single ]
        | _ -> emit (gate_name id) "OR" cube_names)
  done;
  List.iter
    (fun (name, id) ->
      let inner = gate_name id in
      if inner <> name then emit name "BUFF" [ inner ])
    (Network.outputs net);
  Buffer.contents buf

let write_file path net =
  let oc = open_out path in
  output_string oc (write_string net);
  close_out oc
