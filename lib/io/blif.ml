open Logic

exception Parse_error of int * string

let fail line msg = raise (Parse_error (line, msg))

(* Physical lines -> logical lines (comments stripped, continuations
   joined), each tagged with its starting line number.  Streaming: [iter]
   produces one physical line at a time (from a string or straight off a
   channel, so parsing a file never materializes its whole text) and [k] is
   called per completed logical line. *)
let iter_logical_lines iter k =
  let pending = ref None and pending_line = ref 1 and n = ref 0 in
  let feed line =
    incr n;
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    let line = String.trim line in
    let joined, start =
      match !pending with
      | None -> (line, !n)
      | Some prefix -> (prefix ^ " " ^ line, !pending_line)
    in
    if String.length joined > 0 && joined.[String.length joined - 1] = '\\' then begin
      pending := Some (String.sub joined 0 (String.length joined - 1));
      pending_line := start
    end
    else if String.trim joined = "" then pending := None
    else begin
      pending := None;
      k start joined
    end
  in
  iter feed;
  match !pending with None -> () | Some s -> k !pending_line s

let iter_string_lines text feed = List.iter feed (String.split_on_char '\n' text)

let iter_channel_lines ic feed =
  try
    while true do
      feed (input_line ic)
    done
  with End_of_file -> ()

let tokens line = String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

type names_block = {
  block_line : int;
  deps : string list;
  target : string;
  mutable cover : (string * char) list; (* cube text, output value *)
}

let parse_internal ~sequential iter_lines =
  let inputs = ref [] and outputs = ref [] in
  let latches = ref [] in
  let blocks = ref [] and current = ref None in
  let finish_current () =
    match !current with
    | Some b ->
        blocks := b :: !blocks;
        current := None
    | None -> ()
  in
  iter_logical_lines iter_lines
    (fun n line ->
      match tokens line with
      | [] -> ()
      | cmd :: args when cmd.[0] = '.' -> (
          finish_current ();
          match cmd with
          | ".model" | ".end" | ".exdc" -> ()
          | ".inputs" -> inputs := !inputs @ args
          | ".outputs" -> outputs := !outputs @ args
          | ".names" -> (
              match List.rev args with
              | target :: rev_deps ->
                  current :=
                    Some { block_line = n; deps = List.rev rev_deps; target; cover = [] }
              | [] -> fail n ".names needs a target")
          | ".latch" ->
              if not sequential then
                fail n "sequential BLIF (.latch) is not supported here; use parse_sequential"
              else begin
                match args with
                | data :: out :: rest ->
                    let init =
                      match List.rev rest with
                      | last :: _ when last = "1" -> true
                      | _ -> false
                    in
                    latches := (data, out, init) :: !latches
                | _ -> fail n ".latch needs input and output"
              end
          | _ -> fail n ("unknown directive " ^ cmd))
      | toks -> (
          match !current with
          | None -> fail n "cube line outside of .names"
          | Some b -> (
              match toks with
              | [ out ] when List.length b.deps = 0 ->
                  if String.length out <> 1 then fail n "bad constant cover";
                  b.cover <- ("", out.[0]) :: b.cover
              | [ cube; out ] ->
                  if String.length cube <> List.length b.deps then
                    fail n "cube width does not match .names inputs";
                  if String.length out <> 1 then fail n "bad output column";
                  b.cover <- (cube, out.[0]) :: b.cover
              | _ -> fail n "malformed cover line")));
  finish_current ();
  let blocks = List.rev !blocks in
  (* Build the network, resolving blocks on demand (BLIF order is free). *)
  let latches = List.rev !latches in
  let net = Network.create () in
  let node_of_name = Hashtbl.create 97 in
  List.iter (fun name -> Hashtbl.replace node_of_name name (Network.add_input net name)) !inputs;
  (* latch outputs are pseudo primary inputs of the combinational core *)
  List.iter
    (fun (_, out, _) -> Hashtbl.replace node_of_name out (Network.add_input net out))
    latches;
  let block_of_target = Hashtbl.create 97 in
  List.iter (fun b -> Hashtbl.replace block_of_target b.target b) blocks;
  let in_progress = Hashtbl.create 17 in
  (* Iterative dependency walk (stack-safe on deep netlists): [`Visit]
     expands a block's unresolved deps on top of its deferred [`Emit], which
     builds the gate once every dep id is known.  Deps are pushed in reverse
     so the leftmost resolves first — the order the recursive resolver
     produced, which fixes node numbering. *)
  let resolve root =
    let stack = ref [ `Visit root ] in
    while !stack <> [] do
      let fr = List.hd !stack in
      stack := List.tl !stack;
      match fr with
      | `Visit name ->
          if not (Hashtbl.mem node_of_name name) then begin
            match Hashtbl.find_opt block_of_target name with
            | None -> fail 0 ("undefined signal " ^ name)
            | Some b ->
                if Hashtbl.mem in_progress name then
                  fail b.block_line ("combinational cycle at " ^ name);
                Hashtbl.add in_progress name ();
                stack := `Emit b :: !stack;
                List.iter
                  (fun d -> stack := `Visit d :: !stack)
                  (List.rev b.deps)
          end
      | `Emit b ->
          Hashtbl.remove in_progress b.target;
          let dep_ids = List.map (Hashtbl.find node_of_name) b.deps in
          let k = List.length b.deps in
          let out_values = List.map snd b.cover in
          let polarity =
            match List.sort_uniq compare out_values with
            | [] | [ '1' ] -> `On
            | [ '0' ] -> `Off
            | _ -> fail b.block_line "mixed output polarities in one cover"
          in
          let sop =
            Sop.of_cubes k (List.rev_map (fun (cube, _) -> Cube.of_string cube) b.cover)
          in
          let table = Network.gate net (Network.Table sop) (Array.of_list dep_ids) in
          let id =
            match polarity with `On -> table | `Off -> Network.not_ net table
          in
          Hashtbl.replace node_of_name b.target id
    done;
    Hashtbl.find node_of_name root
  in
  List.iter (fun name -> Network.add_output net name (resolve name)) !outputs;
  (* latch data pins are pseudo primary outputs *)
  List.iter
    (fun (data, out, _) -> Network.add_output net (out ^ "_next") (resolve data))
    latches;
  (net, List.length !inputs, List.length !outputs,
   Array.of_list (List.map (fun (_, _, init) -> init) latches))

let parse_string text =
  let net, _, _, _ = parse_internal ~sequential:false (iter_string_lines text) in
  net

let parse_sequential_string text =
  let net, pis, pos, init = parse_internal ~sequential:true (iter_string_lines text) in
  Seq.create net ~num_pis:pis ~num_pos:pos ~init

let with_file path f =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> f ic)

let parse_file path =
  with_file path (fun ic ->
      let net, _, _, _ = parse_internal ~sequential:false (iter_channel_lines ic) in
      net)

let parse_sequential_file path =
  with_file path (fun ic ->
      let net, pis, pos, init = parse_internal ~sequential:true (iter_channel_lines ic) in
      Seq.create net ~num_pis:pis ~num_pos:pos ~init)

(* ------------------------------------------------------------------ *)
(* Writer                                                               *)
(* ------------------------------------------------------------------ *)

let write_string ?(model_name = "network") net =
  let buf = Buffer.create 4096 in
  let name_of = Hashtbl.create 97 in
  let input_names = Network.input_names net in
  let gate_name id =
    match Hashtbl.find_opt name_of id with
    | Some n -> n
    | None ->
        let n = Printf.sprintf "n%d" id in
        Hashtbl.replace name_of id n;
        n
  in
  Buffer.add_string buf (Printf.sprintf ".model %s\n" model_name);
  Buffer.add_string buf ".inputs";
  Array.iter (fun n -> Buffer.add_string buf (" " ^ n)) input_names;
  Buffer.add_string buf "\n.outputs";
  List.iter (fun (n, _) -> Buffer.add_string buf (" " ^ n)) (Network.outputs net);
  Buffer.add_string buf "\n";
  let emit_names deps target lines =
    Buffer.add_string buf ".names";
    List.iter (fun d -> Buffer.add_string buf (" " ^ d)) deps;
    Buffer.add_string buf (" " ^ target ^ "\n");
    List.iter (fun l -> Buffer.add_string buf (l ^ "\n")) lines
  in
  let dashes k i ch =
    String.init k (fun j -> if j = i then ch else '-')
  in
  for id = 0 to Network.num_nodes net - 1 do
    let deps () =
      Array.to_list (Array.map gate_name (Network.fanins net id))
    in
    let k = Array.length (Network.fanins net id) in
    match Network.kind net id with
    | Network.Input i -> Hashtbl.replace name_of id input_names.(i)
    | Network.Const b -> emit_names [] (gate_name id) (if b then [ "1" ] else [])
    | Network.And -> emit_names (deps ()) (gate_name id) [ String.make k '1' ^ " 1" ]
    | Network.Nand -> emit_names (deps ()) (gate_name id) [ String.make k '1' ^ " 0" ]
    | Network.Or ->
        emit_names (deps ()) (gate_name id) (List.init k (fun i -> dashes k i '1' ^ " 1"))
    | Network.Nor ->
        emit_names (deps ()) (gate_name id) (List.init k (fun i -> dashes k i '1' ^ " 0"))
    | Network.Not -> emit_names (deps ()) (gate_name id) [ "0 1" ]
    | Network.Buf -> emit_names (deps ()) (gate_name id) [ "1 1" ]
    | Network.Maj -> emit_names (deps ()) (gate_name id) [ "11- 1"; "1-1 1"; "-11 1" ]
    | Network.Mux -> emit_names (deps ()) (gate_name id) [ "11- 1"; "0-1 1" ]
    | Network.Xor | Network.Xnor ->
        (* Wide parities are decomposed into a chain of 2-input XORs with
           intermediate names; enumerating 2^k cubes is kept for small k. *)
        let base = match Network.kind net id with Network.Xor -> false | _ -> true in
        let dep_names = deps () in
        if k <= 4 then begin
          let lines = ref [] in
          for m = 0 to (1 lsl k) - 1 do
            let ones = ref 0 in
            let cube =
              String.init k (fun i ->
                  if m land (1 lsl i) <> 0 then begin
                    incr ones;
                    '1'
                  end
                  else '0')
            in
            if (!ones land 1 = 1) <> base then lines := (cube ^ " 1") :: !lines
          done;
          emit_names dep_names (gate_name id) (List.rev !lines)
        end
        else begin
          let counter = ref 0 in
          let rec chain = function
            | [] -> assert false
            | [ x ] -> x
            | x :: y :: rest ->
                incr counter;
                let tmp = Printf.sprintf "%s_x%d" (gate_name id) !counter in
                emit_names [ x; y ] tmp [ "10 1"; "01 1" ];
                chain (tmp :: rest)
          in
          let all = chain dep_names in
          emit_names [ all ] (gate_name id) [ (if base then "0 1" else "1 1") ]
        end
    | Network.Table sop ->
        emit_names (deps ()) (gate_name id)
          (List.map (fun c -> Cube.to_string c ^ " 1") (Sop.cubes sop))
  done;
  (* Output aliases: a .names buffer when the output name differs. *)
  List.iter
    (fun (name, id) ->
      let inner = gate_name id in
      if inner <> name then emit_names [ inner ] name [ "1 1" ])
    (Network.outputs net);
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let write_file ?model_name path net =
  let oc = open_out path in
  output_string oc (write_string ?model_name net);
  close_out oc
