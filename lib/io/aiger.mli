(** AIGER readers and writers: ASCII ([aag]) and binary ([aig]).

    Combinational subset: header [aag/aig M I L O A] with [L = 0] (latches
    are rejected), input literal lines (implicit in the binary format),
    output literal lines, and AND definitions — ASCII [lhs rhs0 rhs1] lines,
    or two 7-bit variable-length deltas per AND in the binary format.
    Literals follow the AIGER convention: [2*var + negation], variable 0 is
    constant false.

    Both readers build bit-identical networks for the same circuit, and both
    writers emit AND operands largest-literal first (the binary [rhs0 >=
    rhs1] normal form), so an [aag] file and its [aig] twin round-trip
    byte-stably through either path. *)

exception Parse_error of int * string
(** Position is a line number for ASCII input, a byte offset for binary. *)

val parse_string : string -> Logic.Network.t
val parse_file : string -> Logic.Network.t

val parse_binary_string : string -> Logic.Network.t
val parse_binary_file : string -> Logic.Network.t

val write_aig : Aig_lib.Aig.t -> string
(** Serialize an AIG directly (the natural producer), ASCII format. *)

val write_aig_binary : Aig_lib.Aig.t -> string
(** Serialize an AIG in the compact binary format. *)

val write_network : Logic.Network.t -> string
(** Convert through {!Aig_lib.Aig_of_network} first (ASCII). *)

val write_network_binary : Logic.Network.t -> string
(** Convert through {!Aig_lib.Aig_of_network} first (binary). *)

val write_file : string -> Aig_lib.Aig.t -> unit
val write_binary_file : string -> Aig_lib.Aig.t -> unit
