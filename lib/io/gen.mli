(** Seeded random circuit generators.

    Used to synthesize deterministic stand-ins for the MCNC/ISCAS benchmark
    netlists that are not redistributable (see DESIGN.md §2): each generator
    is a pure function of its parameters and seed string, so every run of
    the experiments sees the identical circuit. *)

val random_network :
  name:string ->
  inputs:int ->
  gates:int ->
  outputs:int ->
  unit ->
  Logic.Network.t
(** Random DAG of 2–3-input gates (AND/OR/XOR/NAND/NOR/MAJ/MUX/NOT).  Gate
    operands are biased toward recently created nodes, which yields
    multi-level structure (depth grows roughly logarithmically with
    [gates]).  Outputs are drawn from the deepest recent nodes so most of
    the circuit is live. *)

val layered_network :
  name:string ->
  inputs:int ->
  width:int ->
  depth:int ->
  outputs:int ->
  unit ->
  Logic.Network.t
(** Random DAG with a fixed number of layers of a fixed width; operands come
    from the previous two layers.  Produces the wide-and-shallow profile of
    two-level PLA benchmarks. *)

val scale_network : name:string -> gates:int -> unit -> Logic.Network.t
(** The large-N synthetic tier: a {!random_network} with inputs and outputs
    scaled to the gate count (roughly one input per 64 gates, one output per
    128, with small floors), so 10^4- and 10^5-gate circuits keep realistic
    netlist proportions.  Deterministic in [name]; generation is linear in
    [gates]. *)

val random_sop_network :
  name:string ->
  inputs:int ->
  outputs:int ->
  cubes:int ->
  literals:int ->
  unit ->
  Logic.Network.t
(** Random multi-output PLA: each output is a random cover. *)
