open Logic

exception Parse_error of int * string

let fail line msg = raise (Parse_error (line, msg))

(* ------------------------------------------------------------------ *)
(* Shared network construction                                         *)
(* ------------------------------------------------------------------ *)

(* Both readers decode to the same intermediate — output literals plus
   [(lhs, rhs0, rhs1)] AND definitions in file order — and feed it here, so
   an [aag] file and its binary twin build bit-identical networks (same
   node-creation order, same lazily shared negation nodes). *)
let build_network ~fail net node_of_var ~m ~output_lits ~and_defs =
  let negations = Hashtbl.create 97 in
  let literal lit =
    let v = lit / 2 in
    if v > m then fail "literal out of range";
    let base = node_of_var.(v) in
    if base < 0 then fail (Printf.sprintf "undefined variable %d" v);
    if lit land 1 = 0 then base
    else
      match Hashtbl.find_opt negations lit with
      | Some id -> id
      | None ->
          let id = Network.not_ net base in
          Hashtbl.replace negations lit id;
          id
  in
  (* AIGER files are topologically sorted (lhs > rhs), so one pass works. *)
  Array.iter
    (fun (lhs, r0, r1) ->
      let id = Network.and2 net (literal r0) (literal r1) in
      node_of_var.(lhs / 2) <- id)
    and_defs;
  Array.iteri
    (fun k lit -> Network.add_output net (Printf.sprintf "o%d" k) (literal lit))
    output_lits;
  net

(* ------------------------------------------------------------------ *)
(* ASCII reader                                                        *)
(* ------------------------------------------------------------------ *)

let parse_string text =
  let lines = String.split_on_char '\n' text |> Array.of_list in
  if Array.length lines = 0 then fail 1 "empty file";
  let header =
    String.split_on_char ' ' (String.trim lines.(0)) |> List.filter (fun s -> s <> "")
  in
  let m, i, l, o, a =
    match header with
    | [ "aag"; m; i; l; o; a ] ->
        (int_of_string m, int_of_string i, int_of_string l, int_of_string o, int_of_string a)
    | _ -> fail 1 "expected 'aag M I L O A' header"
  in
  if l <> 0 then fail 1 "latches are not supported (combinational subset)";
  let net = Network.create () in
  (* var -> network node of the positive literal *)
  let node_of_var = Array.make (m + 1) (-1) in
  let const0 = Network.const net false in
  node_of_var.(0) <- const0;
  let line_no = ref 1 in
  let next_line () =
    incr line_no;
    if !line_no - 1 >= Array.length lines then fail !line_no "unexpected end of file";
    String.trim lines.(!line_no - 1)
  in
  let ints s =
    String.split_on_char ' ' s
    |> List.filter (fun x -> x <> "")
    |> List.map int_of_string
  in
  (* inputs *)
  for k = 0 to i - 1 do
    let lit =
      match ints (next_line ()) with [ v ] -> v | _ -> fail !line_no "bad input line"
    in
    if lit land 1 = 1 then fail !line_no "negated input definition";
    node_of_var.(lit / 2) <- Network.add_input net (Printf.sprintf "i%d" k)
  done;
  (* outputs (literals resolved after ANDs are read) *)
  let output_lits =
    Array.init o (fun _ ->
        match ints (next_line ()) with
        | [ v ] -> v
        | _ -> fail !line_no "bad output line")
  in
  (* AND definitions *)
  let and_defs =
    Array.init a (fun _ ->
        match ints (next_line ()) with
        | [ lhs; r0; r1 ] ->
            if lhs land 1 = 1 then fail !line_no "negated AND definition";
            (lhs, r0, r1)
        | _ -> fail !line_no "bad AND line")
  in
  build_network ~fail:(fail 0) net node_of_var ~m ~output_lits ~and_defs

(* ------------------------------------------------------------------ *)
(* Binary reader                                                       *)
(* ------------------------------------------------------------------ *)

(* Binary AIGER: same header with tag [aig], inputs implicit (variables
   1..I), ASCII output lines, then A AND definitions as two 7-bit
   variable-length deltas each — [lhs - rhs0] and [rhs0 - rhs1] with
   [lhs = 2*(I+L+k+1)] for the k-th AND and [lhs > rhs0 >= rhs1].  Parse
   errors report the byte offset instead of a line number. *)
let parse_binary_string text =
  let len = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let read_line () =
    if !pos >= len then fail "unexpected end of file";
    let start = !pos in
    let stop = try String.index_from text start '\n' with Not_found -> len in
    pos := min len (stop + 1);
    String.sub text start (stop - start)
  in
  let header =
    String.split_on_char ' ' (String.trim (read_line ()))
    |> List.filter (fun s -> s <> "")
  in
  let m, i, l, o, a =
    match header with
    | [ "aig"; m; i; l; o; a ] -> (
        try
          (int_of_string m, int_of_string i, int_of_string l, int_of_string o,
           int_of_string a)
        with Failure _ -> fail "expected 'aig M I L O A' header")
    | _ -> fail "expected 'aig M I L O A' header"
  in
  if l <> 0 then fail "latches are not supported (combinational subset)";
  if m < i + a then fail "header M smaller than I + A";
  let net = Network.create () in
  let node_of_var = Array.make (m + 1) (-1) in
  node_of_var.(0) <- Network.const net false;
  for k = 0 to i - 1 do
    node_of_var.(k + 1) <- Network.add_input net (Printf.sprintf "i%d" k)
  done;
  let output_lits =
    Array.init o (fun _ ->
        match int_of_string_opt (String.trim (read_line ())) with
        | Some v -> v
        | None -> fail "bad output line")
  in
  let read_delta () =
    let x = ref 0 and shift = ref 0 and fin = ref false in
    while not !fin do
      if !pos >= len then fail "truncated AND delta";
      if !shift > 62 then fail "AND delta overflows";
      let b = Char.code text.[!pos] in
      incr pos;
      x := !x lor ((b land 0x7f) lsl !shift);
      shift := !shift + 7;
      if b < 0x80 then fin := true
    done;
    !x
  in
  let and_defs =
    Array.init a (fun k ->
        let lhs = 2 * (i + k + 1) in
        let rhs0 = lhs - read_delta () in
        if rhs0 < 0 then fail "AND delta out of range";
        let rhs1 = rhs0 - read_delta () in
        if rhs1 < 0 then fail "AND delta out of range";
        (lhs, rhs0, rhs1))
  in
  build_network ~fail net node_of_var ~m ~output_lits ~and_defs

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_file path = parse_string (read_file path)
let parse_binary_file path = parse_binary_string (read_file path)

(* ------------------------------------------------------------------ *)
(* Writers                                                             *)
(* ------------------------------------------------------------------ *)

(* Shared variable numbering: inputs first, then ANDs in topological
   order — the layout the binary format mandates, reused for ASCII so the
   two writers emit the same circuit description. *)
let number_vars aig =
  let open Aig_lib in
  let order = Aig.topo_order aig in
  let var_of = Hashtbl.create 997 in
  Hashtbl.replace var_of 0 0;
  let next = ref 1 in
  for k = 0 to Aig.num_pis aig - 1 do
    Hashtbl.replace var_of (Aig.node_of (Aig.pi aig k)) !next;
    incr next
  done;
  List.iter
    (fun n ->
      Hashtbl.replace var_of n !next;
      incr next)
    order;
  let lit s =
    let v = Hashtbl.find var_of (Aig.node_of s) in
    (2 * v) + if Aig.is_compl s then 1 else 0
  in
  (order, var_of, lit, !next - 1)

let write_aig aig =
  let open Aig_lib in
  let order, var_of, lit, m = number_vars aig in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "aag %d %d 0 %d %d\n" m (Aig.num_pis aig) (Aig.num_pos aig)
       (List.length order));
  for k = 0 to Aig.num_pis aig - 1 do
    Buffer.add_string buf (Printf.sprintf "%d\n" (lit (Aig.pi aig k)))
  done;
  Array.iter (fun s -> Buffer.add_string buf (Printf.sprintf "%d\n" (lit s))) (Aig.pos aig);
  (* Operands largest-literal first — the binary format's [rhs0 >= rhs1]
     normal form — so an [aag] file and its [aig] twin decode to identical
     AND definitions and round-trip byte-stably through either reader. *)
  List.iter
    (fun n ->
      let f0, f1 = Aig.fanins aig n in
      let a = lit f0 and b = lit f1 in
      Buffer.add_string buf
        (Printf.sprintf "%d %d %d\n" (2 * Hashtbl.find var_of n) (max a b) (min a b)))
    order;
  Buffer.contents buf

let encode_delta buf x =
  let x = ref x in
  while !x >= 0x80 do
    Buffer.add_char buf (Char.chr (0x80 lor (!x land 0x7f)));
    x := !x lsr 7
  done;
  Buffer.add_char buf (Char.chr !x)

let write_aig_binary aig =
  let open Aig_lib in
  let order, var_of, lit, m = number_vars aig in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "aig %d %d 0 %d %d\n" m (Aig.num_pis aig) (Aig.num_pos aig)
       (List.length order));
  Array.iter (fun s -> Buffer.add_string buf (Printf.sprintf "%d\n" (lit s))) (Aig.pos aig);
  List.iter
    (fun n ->
      let f0, f1 = Aig.fanins aig n in
      let a = lit f0 and b = lit f1 in
      let lhs = 2 * Hashtbl.find var_of n in
      let rhs0 = max a b and rhs1 = min a b in
      encode_delta buf (lhs - rhs0);
      encode_delta buf (rhs0 - rhs1))
    order;
  Buffer.contents buf

let write_network net = write_aig (Aig_lib.Aig_of_network.convert net)
let write_network_binary net = write_aig_binary (Aig_lib.Aig_of_network.convert net)

let write_file path aig =
  let oc = open_out path in
  output_string oc (write_aig aig);
  close_out oc

let write_binary_file path aig =
  let oc = open_out_bin path in
  output_string oc (write_aig_binary aig);
  close_out oc
