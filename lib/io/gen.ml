open Logic

let binary_kinds =
  [| Network.And; Network.Or; Network.Xor; Network.Nand; Network.Nor |]

(* Both generators use *windowed* connectivity: a gate draws its operands
   from a small neighbourhood of the previous layer (or of recently created
   nodes) around its own position.  Real netlists have exactly this kind of
   locality — bounded-support cones — and it is what keeps their BDDs
   polynomial; fully random connectivity would make the BDD baseline
   overflow on circuits whose originals are BDD-friendly. *)

(* [len] bounds the live prefix of [arr]: generators that grow a pool in
   place pick against the prefix without copying it per draw (copying made
   generation quadratic, which dominated at the 10^4–10^5-gate tier). *)
let window_pick_prefix rng arr ~len center radius =
  let lo = max 0 (center - radius) in
  let hi = min (len - 1) (center + radius) in
  arr.(lo + Prng.int rng (hi - lo + 1))

let window_pick rng arr center radius =
  window_pick_prefix rng arr ~len:(Array.length arr) center radius

let random_network ~name ~inputs ~gates ~outputs () =
  let rng = Prng.of_string name in
  let net = Network.create () in
  let pool = Array.make (inputs + gates) 0 in
  for i = 0 to inputs - 1 do
    pool.(i) <- Network.add_input net (Printf.sprintf "x%d" i)
  done;
  let count = ref inputs in
  for g = 0 to gates - 1 do
    (* anchor the gate over a position that sweeps the pool, so cones stay
       narrow but the whole input space gets covered *)
    let center =
      if !count <= 4 then 0
      else (g * (!count - 1) / max 1 gates) + Prng.int rng 4
    in
    let center = min center (!count - 1) in
    let pick () = window_pick_prefix rng pool ~len:!count center 4 in
    let choice = Prng.int rng 10 in
    let id =
      if choice < 7 then
        Network.gate net (Prng.pick rng binary_kinds) [| pick (); pick () |]
      else if choice < 8 then
        Network.gate net Network.Maj [| pick (); pick (); pick () |]
      else if choice < 9 then
        Network.gate net Network.Mux [| pick (); pick (); pick () |]
      else Network.not_ net (pick ())
    in
    pool.(!count) <- id;
    incr count
  done;
  let last = Array.sub pool (max 0 (!count - max outputs (gates / 3))) (min !count (max outputs (gates / 3))) in
  for o = 0 to outputs - 1 do
    let center = o * (Array.length last - 1) / max 1 outputs in
    Network.add_output net (Printf.sprintf "y%d" o) (window_pick rng last center 3)
  done;
  net

let layered_network ~name ~inputs ~width ~depth ~outputs () =
  let rng = Prng.of_string name in
  let net = Network.create () in
  let layer0 =
    Array.init inputs (fun i -> Network.add_input net (Printf.sprintf "x%d" i))
  in
  let prev = ref layer0 in
  for _ = 1 to depth do
    let sources = !prev in
    let n_src = Array.length sources in
    let layer =
      Array.init width (fun i ->
          let center = i * (n_src - 1) / max 1 width in
          let pick () = window_pick rng sources center 3 in
          if Prng.int rng 8 < 6 then
            Network.gate net (Prng.pick rng binary_kinds) [| pick (); pick () |]
          else Network.gate net Network.Maj [| pick (); pick (); pick () |])
    in
    prev := layer
  done;
  let last = !prev in
  for o = 0 to outputs - 1 do
    let center = o * (Array.length last - 1) / max 1 outputs in
    Network.add_output net (Printf.sprintf "y%d" o) (window_pick rng last center 3)
  done;
  net

(* The large-N tier wants circuits whose *live* size tracks the requested
   gate count: [random_network] leaves a big fraction of its gates dead
   (outputs only tap the tail) or strash-merged (narrow windows repeat
   operand pairs).  Here every layer-k node is consumed by layer k+1 by
   construction (gate i takes operand 0 from source i), a funnel of halving
   layers reduces the last layer onto the outputs, and operand 0 makes each
   in-layer triple distinct, so the whole circuit is reachable and almost
   nothing hash-merges away. *)
let scale_network ~name ~gates () =
  if gates < 1 then invalid_arg "Gen.scale_network: gates must be at least 1";
  (* No XOR/MUX: those explode into several ANDs through the AIGER writer,
     which would detach the on-disk size from the requested tier.  AND-class
     gates are one AND (and one MIG gate) each; the MAJ fraction keeps the
     tier MIG-native without dominating the expansion. *)
  let scale_kinds = [| Network.And; Network.Or; Network.Nand; Network.Nor |] in
  let inputs = max 16 (gates / 64) in
  let outputs = max 8 (gates / 128) in
  let width = max outputs (gates / 48) in
  let rng = Prng.of_string name in
  let net = Network.create () in
  let layer0 =
    Array.init inputs (fun i -> Network.add_input net (Printf.sprintf "x%d" i))
  in
  let prev = ref layer0 in
  let made = ref 0 in
  let make_layer w =
    let sources = !prev in
    let n_src = Array.length sources in
    let layer =
      Array.init w (fun i ->
          let a = sources.(i mod n_src) in
          let center = i * (n_src - 1) / max 1 w in
          let pick () = window_pick rng sources center 8 in
          let choice = Prng.int rng 10 in
          if choice < 8 then
            Network.gate net (Prng.pick rng scale_kinds) [| a; pick () |]
          else Network.gate net Network.Maj [| a; pick (); pick () |])
    in
    made := !made + w;
    prev := layer
  in
  while !made < gates do
    make_layer (min width (max outputs (gates - !made)))
  done;
  (* Funnel: halve until the layer fits the output count, consuming every
     node of each intermediate layer on the way down. *)
  while Array.length !prev > outputs do
    let sources = !prev in
    let n_src = Array.length sources in
    let w = max outputs ((n_src + 1) / 2) in
    let layer =
      Array.init w (fun i ->
          let a = sources.(2 * i mod n_src)
          and b = sources.(min ((2 * i) + 1) (n_src - 1)) in
          Network.gate net (Prng.pick rng scale_kinds) [| a; b |])
    in
    prev := layer
  done;
  Array.iteri
    (fun o id -> Network.add_output net (Printf.sprintf "y%d" o) id)
    !prev;
  net

let random_sop_network ~name ~inputs ~outputs ~cubes ~literals () =
  let rng = Prng.of_string name in
  let sops =
    Array.init outputs (fun _ ->
        let cube () =
          let c = ref (Cube.create inputs) in
          for _ = 1 to literals do
            let v = Prng.int rng inputs in
            c := Cube.set !c v (if Prng.bool rng then Cube.Pos else Cube.Neg)
          done;
          !c
        in
        Sop.of_cubes inputs (List.init cubes (fun _ -> cube ())))
  in
  Pla.of_sops sops
