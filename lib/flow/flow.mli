(** A first-class pass manager for graph-rewriting synthesis flows.

    The paper's Algs. 1–4 are each a fixed sequence of rewrite sweeps driven
    by a converge-or-stop outer loop.  This module turns that shape into an
    open, scriptable subsystem: a {e pass} is a named transformation with
    metadata, and a {e flow} is a combinator tree over passes — sequencing,
    the paper's 40-cycle convergence loop, cycle-gated sub-flows and
    checkpoint/rollback cost guards that generalize Alg. 3's weighted-gain
    acceptance.

    The engine is generic in the graph type ['g]: it only needs an {!ops}
    record (copy, compacting cleanup, and trajectory measurement), so it has
    no dependency on the MIG data structure.  [lib/core]'s [Mig_flows]
    instantiates it for MIGs and registers the paper's passes; [Mig_opt]'s
    entry points are thin wrappers over canonical flow values.

    Observability comes for free: when {!Obs} is enabled, {!run} records one
    span per pass application ([<prefix>/pass/<name>]), one per named
    sub-flow ([<prefix>/<name>]), one per convergence cycle
    ([<prefix>/<name>/cycle]), a [<prefix>/<name>/trajectory] series with one
    sample per cycle, and accept/rollback counters for every cost guard. *)

(** {1 Passes} *)

type 'g pass = {
  name : string;  (** registry key and script-language identifier *)
  category : string;  (** e.g. ["area"], ["depth"], ["boolean"] *)
  doc : string;  (** one-line description for [--list-passes] *)
  preserves : string;  (** what the pass keeps invariant, e.g. ["function"] *)
  run : cycle:int -> 'g -> 'g * bool;
      (** Apply once.  [cycle] is the index of the enclosing convergence
          cycle (0 outside one) — passes like the paper's reshape derive
          their perturbation seed from it.  Returns the (possibly new)
          graph and whether anything changed. *)
}

(** {1 Registries} *)

type 'g registry

val create_registry : unit -> 'g registry

val register : 'g registry -> 'g pass -> unit
(** Add a pass.  @raise Invalid_argument on a duplicate name. *)

val find : 'g registry -> string -> 'g pass option
val passes : 'g registry -> 'g pass list
(** In registration order. *)

val pass_names : 'g registry -> string list

(** {1 Flows} *)

type 'g t =
  | Pass of 'g pass
  | Seq of 'g t list
      (** Run every element (no short-circuiting — later passes often profit
          from the partial progress of earlier ones); changed iff any
          element changed. *)
  | Cycle of { effort : int; body : 'g t }
      (** The paper's outer loop: run [body] up to [effort] times with a
          compacting cleanup and a trajectory sample after each iteration,
          stopping early when an iteration reports no change. *)
  | Every of { period : int; body : 'g t }
      (** Run [body] only on cycles whose index is a multiple of [period]
          (Alg. 2 throttles Ψ.R to every third cycle). *)
  | Accept_if of { cost_name : string; cost : 'g -> float; body : 'g t }
      (** Checkpoint, run [body], and roll back unless the cost did not
          worsen — the flow-level generalization of Alg. 3's weighted-gain
          move acceptance. *)
  | Named of { name : string; body : 'g t }
      (** Scope for spans and the trajectory series name. *)

val default_effort : int
(** 40, the paper's setting for the convergence loop. *)

type 'g ops = {
  copy : 'g -> 'g;  (** snapshot for {!Accept_if} rollback *)
  cleanup : 'g -> 'g;  (** compacting copy run between cycles *)
  measure : 'g -> (string * float) list;
      (** trajectory fields ([(size, depth, …)]); only called when
          observability is enabled *)
}

val run : ops:'g ops -> ?span_prefix:string -> ?name:string -> 'g t -> 'g -> 'g
(** Execute a flow on a cleanup-copy of the input (the input graph is never
    mutated) and return the compacted result.  [span_prefix] (default
    ["flow"]) prefixes every span, series and counter name; [name] wraps the
    flow in {!Named}. *)

val changed_run : ops:'g ops -> ?span_prefix:string -> ?name:string -> 'g t -> 'g -> 'g * bool
(** Like {!run} but also reports whether any pass changed the graph. *)

val suggest : candidates:string list -> string -> string option
(** Closest candidate by edit distance, if any is close enough to be a
    plausible misspelling — powers the did-you-mean hints. *)

(** {1 Portfolio runs}

    CONTRA-style synthesis-as-search: run several complete flows over
    independent copies of the same graph — on separate domains when the
    work-pool has more than one worker — and keep only the best result. *)

type 'g entrant = {
  label : string;  (** span scope ([<prefix>/portfolio/<label>]) and report name *)
  flow : 'g t;
}

type outcome = {
  o_label : string;
  o_index : int;  (** position in the entrant list *)
  o_cost : float;  (** the race cost of this entrant's result *)
  o_seconds : float;  (** wall time of this entrant's run *)
  o_winner : bool;
}

val portfolio :
  ops:'g ops ->
  ?span_prefix:string ->
  ?jobs:int ->
  cost:('g -> float) ->
  'g entrant list ->
  'g ->
  'g * outcome list
(** [portfolio ~ops ~cost entrants g] runs every entrant flow on its own
    copy of [g] (taken on the calling domain) across a throwaway [Par] pool
    of [jobs] workers, evaluates [cost] on each result, and returns the
    winning graph plus one {!outcome} per entrant in entrant order.

    The winner is chosen by {e lowest cost, then lowest entrant index} — a
    total order independent of completion timing, so the result is
    bit-identical for any [jobs] (DESIGN.md §11).  [jobs] defaults to
    [Par.recommended_jobs ()].

    @raise Invalid_argument on an empty entrant list. *)

(** {1 The flow-script language}

    Concrete syntax for flows, used by [migsyn flow --script]:

    {v
    flow   := step (';' step)*
    step   := PASS
            | 'cycle' [ '(' INT ')' ] '{' flow '}'      default effort 40
            | 'every' '(' INT ')' '{' flow '}'
            | 'accept_if' '(' COST ')' '{' flow '}'
            | '{' flow '}'
    v}

    Whitespace is free; ['#'] comments run to end of line.  Pass and cost
    identifiers are resolved against the registry and cost table given to
    {!Script.parse}; unknown names fail with a byte position and a
    did-you-mean suggestion. *)

module Script : sig
  type error = { pos : int; msg : string }
  (** [pos] is a 0-based byte offset into the script text. *)

  val pp_error : Format.formatter -> error -> unit
  (** Renders ["at byte N: MSG"]. *)

  val parse :
    registry:'g registry ->
    costs:(string * ('g -> float)) list ->
    ?default_effort:int ->
    string ->
    ('g t, error) result

  val to_string : 'g t -> string
  (** Canonical script text for a flow ({!Named} wrappers are transparent:
      they have no concrete syntax).  [to_string] output re-parses to a flow
      with identical semantics. *)
end
