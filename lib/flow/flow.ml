let default_effort = 40

let src = Logs.Src.create "flow" ~doc:"Pass-manager flow engine progress"

module Log = (val Logs.src_log src : Logs.LOG)

type 'g pass = {
  name : string;
  category : string;
  doc : string;
  preserves : string;
  run : cycle:int -> 'g -> 'g * bool;
}

type 'g registry = { mutable passes : 'g pass list (* reverse order *) }

let create_registry () = { passes = [] }

let find r name = List.find_opt (fun p -> p.name = name) r.passes

let register r p =
  if find r p.name <> None then
    invalid_arg (Printf.sprintf "Flow.register: duplicate pass %s" p.name);
  r.passes <- p :: r.passes

let passes r = List.rev r.passes
let pass_names r = List.rev_map (fun p -> p.name) r.passes

type 'g t =
  | Pass of 'g pass
  | Seq of 'g t list
  | Cycle of { effort : int; body : 'g t }
  | Every of { period : int; body : 'g t }
  | Accept_if of { cost_name : string; cost : 'g -> float; body : 'g t }
  | Named of { name : string; body : 'g t }

type 'g ops = {
  copy : 'g -> 'g;
  cleanup : 'g -> 'g;
  measure : 'g -> (string * float) list;
}

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let changed_run ~ops ?(span_prefix = "flow") ?name flow g =
  let flow =
    match name with Some n -> Named { name = n; body = flow } | None -> flow
  in
  let record traj cycle g =
    if Obs.enabled () then
      Obs.sample traj (("cycle", float_of_int cycle) :: ops.measure g)
  in
  let rec exec ~name ~cycle g = function
    | Pass p ->
        (* one span per pass invocation, named after the registry entry, so
           the span tree and collapsed stacks attribute time pass-by-pass *)
        let g, changed =
          Obs.with_span ~cat:span_prefix
            ~args:[ ("category", Obs.Json.String p.category) ]
            (span_prefix ^ "/pass/" ^ p.name)
            (fun () -> p.run ~cycle g)
        in
        if changed then
          Obs.incr (Obs.counter (span_prefix ^ "/pass/" ^ p.name ^ ".changed"));
        (g, changed)
    | Seq fs ->
        (* Run every element: later passes profit from the partial progress
           of earlier ones, so there is deliberately no short-circuiting. *)
        List.fold_left
          (fun (g, changed) f ->
            let g, c = exec ~name ~cycle g f in
            (g, changed || c))
          (g, false) fs
    | Every { period; body } ->
        if cycle mod period = 0 then exec ~name ~cycle g body else (g, false)
    | Named { name; body } ->
        Obs.with_span ~cat:span_prefix (span_prefix ^ "/" ^ name) (fun () ->
            exec ~name ~cycle g body)
    | Accept_if { cost_name; cost; body } ->
        let snapshot = ops.copy g in
        let before = cost g in
        let g, changed = exec ~name ~cycle g body in
        if cost g <= before then begin
          Obs.incr
            (Obs.counter (span_prefix ^ "/accept_if/" ^ cost_name ^ ".accepted"));
          (g, changed)
        end
        else begin
          Obs.incr
            (Obs.counter
               (span_prefix ^ "/accept_if/" ^ cost_name ^ ".rolled_back"));
          (snapshot, false)
        end
    | Cycle { effort; body } ->
        (* The paper's converge-or-stop outer loop, with the per-cycle
           cleanup and trajectory sampling previously hardcoded in
           Mig_opt.drive. *)
        let traj = Obs.series (span_prefix ^ "/" ^ name ^ "/trajectory") in
        record traj 0 g;
        let rec loop n g any =
          if n >= effort then (g, any)
          else begin
            let g, changed =
              Obs.with_span ~cat:span_prefix (span_prefix ^ "/" ^ name ^ "/cycle")
                (fun () -> exec ~name ~cycle:n g body)
            in
            let g = ops.cleanup g in
            record traj (n + 1) g;
            Log.debug (fun m ->
                m "%s cycle %d%s" name n (if changed then "" else " (converged)"));
            if changed then loop (n + 1) g true else (g, any)
          end
        in
        loop 0 g false
  in
  let g = ops.cleanup g in
  let g, changed = exec ~name:(Option.value name ~default:"flow") ~cycle:0 g flow in
  (ops.cleanup g, changed)

let run ~ops ?span_prefix ?name flow g =
  fst (changed_run ~ops ?span_prefix ?name flow g)

(* ------------------------------------------------------------------ *)
(* Portfolio                                                           *)
(* ------------------------------------------------------------------ *)

type 'g entrant = { label : string; flow : 'g t }

type outcome = {
  o_label : string;
  o_index : int;
  o_cost : float;
  o_seconds : float;
  o_winner : bool;
}

let portfolio ~ops ?(span_prefix = "flow") ?jobs ~cost entrants g =
  if entrants = [] then invalid_arg "Flow.portfolio: empty entrant list";
  (* Copies are taken on the calling domain, before any worker touches the
     graph, so tasks never share mutable state. *)
  let base = ops.cleanup g in
  let tasks =
    List.mapi (fun i e -> (i, e.label, e.flow, ops.copy base)) entrants
  in
  let raced =
    Par.map ?jobs
      (fun (i, label, flow, g) ->
        let t0 = Obs.now_ns () in
        let result =
          run ~ops ~span_prefix ~name:("portfolio/" ^ label) flow g
        in
        let seconds = Int64.to_float (Int64.sub (Obs.now_ns ()) t0) /. 1e9 in
        (i, label, result, cost result, seconds))
      tasks
  in
  (* Deterministic tie-break: lowest cost first, then lowest entrant index —
     independent of completion order, hence of the worker count. *)
  let winner_index, _ =
    List.fold_left
      (fun (wi, wc) (i, _, _, c, _) ->
        if c < wc || (c = wc && i < wi) then (i, c) else (wi, wc))
      (max_int, infinity) raced
  in
  let outcomes =
    List.map
      (fun (i, label, _, c, seconds) ->
        {
          o_label = label;
          o_index = i;
          o_cost = c;
          o_seconds = seconds;
          o_winner = i = winner_index;
        })
      raced
  in
  let _, _, winner, _, _ = List.nth raced winner_index in
  (winner, outcomes)

(* ------------------------------------------------------------------ *)
(* Did-you-mean                                                        *)
(* ------------------------------------------------------------------ *)

let levenshtein a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) Fun.id in
  let curr = Array.make (lb + 1) 0 in
  for i = 1 to la do
    curr.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      curr.(j) <- min (min (prev.(j) + 1) (curr.(j - 1) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit curr 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let suggest ~candidates word =
  let best =
    List.fold_left
      (fun acc cand ->
        let d = levenshtein word cand in
        match acc with Some (_, bd) when bd <= d -> acc | _ -> Some (cand, d))
      None candidates
  in
  match best with
  | Some (c, d) when d <= max 2 (String.length word / 3) -> Some c
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Script language                                                     *)
(* ------------------------------------------------------------------ *)

module Script = struct
  type error = { pos : int; msg : string }

  let pp_error ppf e = Format.fprintf ppf "at byte %d: %s" e.pos e.msg

  exception Err of error

  let err pos fmt = Format.kasprintf (fun msg -> raise (Err { pos; msg })) fmt

  type state = { src : string; mutable pos : int }

  let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

  let is_ident_char c =
    is_ident_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

  let is_digit c = c >= '0' && c <= '9'

  let rec skip_ws st =
    if st.pos < String.length st.src then
      match st.src.[st.pos] with
      | ' ' | '\t' | '\n' | '\r' ->
          st.pos <- st.pos + 1;
          skip_ws st
      | '#' ->
          while st.pos < String.length st.src && st.src.[st.pos] <> '\n' do
            st.pos <- st.pos + 1
          done;
          skip_ws st
      | _ -> ()

  let peek st =
    skip_ws st;
    if st.pos < String.length st.src then Some st.src.[st.pos] else None

  let expect st c what =
    match peek st with
    | Some d when d = c -> st.pos <- st.pos + 1
    | Some d -> err st.pos "expected '%c' %s, found '%c'" c what d
    | None -> err st.pos "expected '%c' %s, found end of script" c what

  let ident st =
    skip_ws st;
    let start = st.pos in
    while st.pos < String.length st.src && is_ident_char st.src.[st.pos] do
      st.pos <- st.pos + 1
    done;
    if st.pos = start then err start "expected a name";
    (String.sub st.src start (st.pos - start), start)

  let integer st what =
    skip_ws st;
    let start = st.pos in
    while st.pos < String.length st.src && is_digit st.src.[st.pos] do
      st.pos <- st.pos + 1
    done;
    if st.pos = start then err start "expected a number %s" what;
    (int_of_string (String.sub st.src start (st.pos - start)), start)

  let keywords = [ "cycle"; "every"; "accept_if" ]

  let did_you_mean candidates word =
    match suggest ~candidates word with
    | Some s -> Printf.sprintf " (did you mean '%s'?)" s
    | None -> ""

  let parse ~registry ~costs ?(default_effort = default_effort) text =
    let st = { src = text; pos = 0 } in
    let block st parse_seq what =
      expect st '{' what;
      let body = parse_seq st ~closing:true in
      expect st '}' "to close the block";
      body
    in
    let rec parse_seq st ~closing =
      let items = ref [] in
      let rec loop () =
        match peek st with
        | None -> if closing then err st.pos "expected '}' before end of script"
        | Some '}' -> if not closing then err st.pos "unexpected '}'"
        | Some ';' ->
            st.pos <- st.pos + 1;
            loop ()
        | Some _ ->
            items := parse_step st :: !items;
            (match peek st with
            | Some ';' ->
                st.pos <- st.pos + 1;
                loop ()
            | Some '}' when closing -> ()
            | None when not closing -> ()
            | Some c -> err st.pos "expected ';' between steps, found '%c'" c
            | None -> err st.pos "expected '}' before end of script")
      in
      loop ();
      match List.rev !items with
      | [] -> err st.pos "empty flow"
      | [ f ] -> f
      | fs -> Seq fs
    and parse_step st =
      match peek st with
      | Some '{' ->
          st.pos <- st.pos + 1;
          let body = parse_seq st ~closing:true in
          expect st '}' "to close the block";
          body
      | Some c when is_ident_start c -> (
          let name, npos = ident st in
          match name with
          | "cycle" ->
              let effort =
                match peek st with
                | Some '(' ->
                    st.pos <- st.pos + 1;
                    let n, ppos = integer st "of cycles" in
                    if n <= 0 then err ppos "cycle count must be positive";
                    expect st ')' "after the cycle count";
                    n
                | _ -> default_effort
              in
              Cycle { effort; body = block st parse_seq "after cycle" }
          | "every" ->
              expect st '(' "after every";
              let n, ppos = integer st "(the period)" in
              if n <= 0 then err ppos "every period must be positive";
              expect st ')' "after the period";
              Every { period = n; body = block st parse_seq "after every(N)" }
          | "accept_if" ->
              expect st '(' "after accept_if";
              let cost_name, cpos = ident st in
              (match List.assoc_opt cost_name costs with
              | None ->
                  err cpos "unknown cost '%s'%s" cost_name
                    (did_you_mean (List.map fst costs) cost_name)
              | Some cost ->
                  expect st ')' "after the cost name";
                  Accept_if
                    { cost_name; cost; body = block st parse_seq "after accept_if(COST)" })
          | _ -> (
              match find registry name with
              | Some p -> Pass p
              | None ->
                  err npos "unknown pass '%s'%s" name
                    (did_you_mean (keywords @ pass_names registry) name)))
      | Some c -> err st.pos "unexpected character '%c'" c
      | None -> err st.pos "unexpected end of script"
    in
    match parse_seq st ~closing:false with
    | flow -> Ok flow
    | exception Err e -> Error e

  let rec to_string = function
    | Pass p -> p.name
    | Seq fs -> String.concat "; " (List.map to_string fs)
    | Cycle { effort; body } -> Printf.sprintf "cycle(%d){%s}" effort (to_string body)
    | Every { period; body } -> Printf.sprintf "every(%d){%s}" period (to_string body)
    | Accept_if { cost_name; body; _ } ->
        Printf.sprintf "accept_if(%s){%s}" cost_name (to_string body)
    | Named { body; _ } -> to_string body
end
