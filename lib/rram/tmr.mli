(** Triple modular redundancy with resistive-majority voting (extension).

    An opt-in transform that triplicates a compiled program into three
    replicas on disjoint register ranges, runs them in lock-step (each step
    of the protected program is the parallel union of the replicas' steps,
    so the step count grows only by the voting tail), and votes each
    replicated output with the paper's own MAJ primitive — the voter is a
    single RRAM cell receiving one M(a, b, c) pulse sequence, not external
    CMOS logic.

    A single stuck cell lives in exactly one replica, so any single-cell
    defect (and most multi-cell ones, as long as no two replicas break the
    same output) is masked by the vote.  The cost is ~3× the devices and
    three extra steps; {!Faults.yield_comparison} quantifies what that buys
    at a given fault rate. *)

type t = {
  program : Program.t;  (** the protected program *)
  replicas : int;  (** always 3 *)
  voters : int;  (** number of voted outputs (shared outputs vote once) *)
}

val protect : Program.t -> t
(** Constant and primary-input outputs pass through unvoted — there is no
    computation to protect. *)

val overhead : Program.t -> t -> float * float
(** (device ratio, step ratio) of the protected program over the original. *)
