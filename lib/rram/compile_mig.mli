(** Level-by-level compilation of a MIG into an RRAM program (§III-B).

    For each MIG level, the compiler emits: one data-loading step (operand
    copies, FALSE presets), one complement step when the level has
    complemented ingoing edges (all inversions in parallel), and the gate
    steps of the chosen realization — 9 for IMP (steps 02–10 of §III-A.1,
    the load being step 01) or 2 for MAJ (§III-A.2).  Complemented primary
    outputs get a final readout-inversion step.  Thus the measured step
    count equals the Table I formula [S = K·D + L] exactly, which
    [test/test_rram.ml] asserts.

    The measured RRAM count (crossbar size) can exceed the analytic
    [R = max(K·N_i + C_i)] because results whose consumers sit several
    levels higher stay alive across levels, and complemented primary-input
    operands need a staging device; the paper's analytic model ignores
    both.  Both numbers are reported. *)

type result = {
  program : Program.t;
  analytic : Core.Rram_cost.cost;  (** Table I formula *)
  measured_rrams : int;
  measured_steps : int;
  placement : Placement.t option;
      (** the row/column assignment the crossbar backend used; [None] for
          the unbounded-serial target (use {!Placement.place} to derive a
          worst-case report) *)
  cost : Core.Rram_cost.triple;
      (** measured (devices, latency, utilization); under
          [Unbounded_serial] this mirrors [measured_rrams] /
          [measured_steps] with utilization 1 *)
}

val compile :
  ?schedule:Core.Mig_levels.t ->
  ?arch:Arch.t ->
  Core.Rram_cost.realization ->
  Core.Mig.t ->
  result
(** [schedule] overrides the default ASAP level assignment (see
    {!Core.Mig_schedule}); it must be dependency-valid.  [arch] (default
    [Unbounded_serial], which reproduces the historical programs
    bit-identically) selects the execution target; a [Crossbar] geometry
    routes through {!Compile_crossbar}.

    @raise Invalid_argument when a crossbar geometry cannot host the
    circuit (the CLI validates geometries up front; careful callers use
    {!Compile_crossbar.compile} directly for a [result]-typed error). *)
