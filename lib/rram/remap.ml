type t = {
  program : Program.t;
  moves : (Isa.reg * Isa.reg) list;
  spares_left : int;
}

let live_regs (p : Program.t) =
  let live = Array.make (max 1 p.Program.num_regs) false in
  let mark = function Isa.Reg r -> live.(r) <- true | Isa.Input _ | Isa.Const _ -> () in
  List.iter
    (fun step ->
      List.iter
        (fun micro ->
          live.(Isa.micro_dst micro) <- true;
          List.iter mark (Isa.micro_reads micro))
        step)
    p.Program.steps;
  Array.iter mark p.Program.outputs;
  live

let subst_operand f = function
  | Isa.Reg r -> Isa.Reg (f r)
  | (Isa.Input _ | Isa.Const _) as o -> o

let subst_micro f = function
  | Isa.Load (r, o) -> Isa.Load (f r, subst_operand f o)
  | Isa.Reset r -> Isa.Reset (f r)
  | Isa.Imp { src; dst } -> Isa.Imp { src = f src; dst = f dst }
  | Isa.Maj_pulse { p; q; dst } ->
      Isa.Maj_pulse { p = subst_operand f p; q = subst_operand f q; dst = f dst }

let remap ?placement (p : Program.t) ~bad =
  let live = live_regs p in
  let needed =
    List.sort_uniq compare bad
    |> List.filter (fun r -> r >= 0 && r < p.Program.num_regs && live.(r))
  in
  if needed = [] then Ok { program = p; moves = []; spares_left = max_int }
  else begin
    (* Fresh registers are fresh physical cells: the dead cell keeps its index
       (and its defect), the replacement gets a previously untouched index, so
       a physical defect map stays valid across repeated remaps. *)
    let capacity =
      match placement with
      | None -> max_int
      | Some pl -> pl.Placement.rows * pl.Placement.columns
    in
    let num_regs' = p.Program.num_regs + List.length needed in
    if num_regs' > capacity then
      Error
        (Printf.sprintf "out of spare cells: need %d registers, array holds %d"
           num_regs' capacity)
    else begin
      let subst = Hashtbl.create 7 in
      List.iteri
        (fun i r -> Hashtbl.replace subst r (p.Program.num_regs + i))
        needed;
      let f r = try Hashtbl.find subst r with Not_found -> r in
      let program =
        {
          p with
          Program.num_regs = num_regs';
          steps = List.map (List.map (subst_micro f)) p.Program.steps;
          outputs = Array.map (subst_operand f) p.Program.outputs;
        }
      in
      Ok
        {
          program;
          moves = List.map (fun r -> (r, f r)) needed;
          spares_left = (if capacity = max_int then max_int else capacity - num_regs');
        }
    end
  end
