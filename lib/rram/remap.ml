type t = {
  program : Program.t;
  moves : (Isa.reg * Isa.reg) list;
  spares_left : int;
}

let live_regs (p : Program.t) =
  let live = Array.make (max 1 p.Program.num_regs) false in
  let mark = function Isa.Reg r -> live.(r) <- true | Isa.Input _ | Isa.Const _ -> () in
  List.iter
    (fun step ->
      List.iter
        (fun micro ->
          live.(Isa.micro_dst micro) <- true;
          List.iter mark (Isa.micro_reads micro))
        step)
    p.Program.steps;
  Array.iter mark p.Program.outputs;
  live

let subst_operand f = function
  | Isa.Reg r -> Isa.Reg (f r)
  | (Isa.Input _ | Isa.Const _) as o -> o

let subst_micro f = function
  | Isa.Load (r, o) -> Isa.Load (f r, subst_operand f o)
  | Isa.Reset r -> Isa.Reset (f r)
  | Isa.Imp { src; dst } -> Isa.Imp { src = f src; dst = f dst }
  | Isa.Maj_pulse { p; q; dst } ->
      Isa.Maj_pulse { p = subst_operand f p; q = subst_operand f q; dst = f dst }

let apply_moves (p : Program.t) ~num_regs ~moves =
  let subst = Hashtbl.create 7 in
  List.iter (fun (from, to_) -> Hashtbl.replace subst from to_) moves;
  let f r = try Hashtbl.find subst r with Not_found -> r in
  {
    p with
    Program.num_regs;
    steps = List.map (List.map (subst_micro f)) p.Program.steps;
    outputs = Array.map (subst_operand f) p.Program.outputs;
  }

let bad_live_regs (p : Program.t) ~bad =
  let live = live_regs p in
  List.sort_uniq compare bad
  |> List.filter (fun r -> r >= 0 && r < p.Program.num_regs && live.(r))

let remap ?placement (p : Program.t) ~bad =
  let needed = bad_live_regs p ~bad in
  if needed = [] then Ok { program = p; moves = []; spares_left = max_int }
  else begin
    (* Fresh registers are fresh physical cells: the dead cell keeps its index
       (and its defect), the replacement gets a previously untouched index, so
       a physical defect map stays valid across repeated remaps. *)
    let capacity =
      match placement with
      | None -> max_int
      | Some pl -> pl.Placement.rows * pl.Placement.columns
    in
    let num_regs' = p.Program.num_regs + List.length needed in
    if num_regs' > capacity then
      Error
        (Printf.sprintf "out of spare cells: need %d registers, array holds %d"
           num_regs' capacity)
    else begin
      let moves = List.mapi (fun i r -> (r, p.Program.num_regs + i)) needed in
      Ok
        {
          program = apply_moves p ~num_regs:num_regs' ~moves;
          moves;
          spares_left = (if capacity = max_int then max_int else capacity - num_regs');
        }
    end
  end

let remap_wear_aware ?placement ~wear (p : Program.t) ~bad =
  let needed = bad_live_regs p ~bad in
  if needed = [] then Ok { program = p; moves = []; spares_left = max_int }
  else begin
    let universe =
      match placement with
      | None -> Array.length wear
      | Some pl -> min (Array.length wear) (pl.Placement.rows * pl.Placement.columns)
    in
    let live = live_regs p in
    let is_live r = r < Array.length live && live.(r) in
    let bad_set = List.sort_uniq compare bad in
    (* Candidate replacements: every physical cell of the array that the
       program does not currently touch and that is not itself known bad,
       taken in order of least accumulated wear (ties to the lower index,
       keeping the choice deterministic).  Steering repairs toward the
       low-wear region is the wear-leveling half of the policy: the fresh
       cell brings the widest remaining resistance window, and writes
       spread across the crossbar instead of piling onto the same spares. *)
    let candidates =
      List.init universe Fun.id
      |> List.filter (fun r -> (not (is_live r)) && not (List.mem r bad_set))
      |> List.stable_sort (fun a b -> compare (wear.(a), a) (wear.(b), b))
    in
    let n = List.length needed in
    if List.length candidates < n then
      Error
        (Printf.sprintf "out of spare cells: need %d low-wear replacements, %d free"
           n (List.length candidates))
    else begin
      let moves = List.map2 (fun r c -> (r, c)) needed (List.filteri (fun i _ -> i < n) candidates) in
      let num_regs' =
        List.fold_left (fun acc (_, c) -> max acc (c + 1)) p.Program.num_regs moves
      in
      Ok
        {
          program = apply_moves p ~num_regs:num_regs' ~moves;
          moves;
          spares_left = List.length candidates - n;
        }
    end
  end
