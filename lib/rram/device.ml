type defect = Stuck_0 | Stuck_1

type model = {
  write_fail : float;
  read_disturb : float;
  endurance : int;
  rng : Logic.Prng.t;
}

let model ?(write_fail = 0.0) ?(read_disturb = 0.0) ?(endurance = 0) ~seed () =
  if write_fail < 0.0 || write_fail > 1.0 then invalid_arg "Device.model: write_fail";
  if read_disturb < 0.0 || read_disturb > 1.0 then invalid_arg "Device.model: read_disturb";
  { write_fail; read_disturb; endurance; rng = Logic.Prng.create seed }

type physics = {
  r_lrs : float;
  r_hrs : float;
  v_read : float;
  i_ref : float;
  read_noise : float;
  drift : float;
  rng : Logic.Prng.t;
}

type t = {
  mutable state : bool;
  mutable defect : defect option;
  mutable wear : int;
  model : model option;
  phys : physics option;
}

let create () = { state = false; defect = None; wear = 0; model = None; phys = None }

let set_defect d defect =
  d.defect <- Some defect;
  d.state <- (match defect with Stuck_0 -> false | Stuck_1 -> true)

let create_with ?defect m =
  let d = { state = false; defect = None; wear = 0; model = Some m; phys = None } in
  Option.iter (set_defect d) defect;
  d

let create_phys ?defect ?model phys =
  let d = { state = false; defect = None; wear = 0; model; phys = Some phys } in
  Option.iter (set_defect d) defect;
  d

let defect d = d.defect
let wear d = d.wear
let observe d = d.state
let physics d = d.phys

(* Endurance drift closes the resistance window as switching events
   accumulate: the low-resistance state drifts up, the high-resistance state
   down, both linearly in wear (DESIGN.md §12). *)
let effective_resistances p ~wear =
  let f = 1.0 +. (p.drift *. float_of_int wear) in
  (p.r_lrs *. f, p.r_hrs /. f)

let sense_margin p ~wear state =
  let r_lrs, r_hrs = effective_resistances p ~wear in
  let i = p.v_read /. (if state then r_lrs else r_hrs) in
  (* Signed distance of the state's read current from the sense reference,
     in units of the thermal-noise sigma of that current: positive margins
     read correctly with probability Φ(margin). *)
  let signed = if state then i -. p.i_ref else p.i_ref -. i in
  if p.read_noise <= 0.0 then (if signed >= 0.0 then infinity else neg_infinity)
  else signed /. (p.read_noise *. i)

let margin d =
  match d.phys with
  | None -> None
  | Some p ->
      let m s = sense_margin p ~wear:d.wear s in
      Some (Float.min (m true) (m false))

(* Drive the cell toward [v].  A defective cell ignores every pulse; a healthy
   switching event may fail probabilistically, costs one endurance cycle, and
   freezes the cell in place once the endurance budget is spent. *)
let switch d v =
  match d.defect with
  | Some _ -> ()
  | None ->
      if d.state <> v then begin
        let fails =
          match d.model with
          | None -> false
          | Some m -> m.write_fail > 0.0 && Logic.Prng.float m.rng < m.write_fail
        in
        if not fails then begin
          d.state <- v;
          d.wear <- d.wear + 1;
          match d.model with
          | Some m when m.endurance > 0 && d.wear >= m.endurance ->
              d.defect <- Some (if d.state then Stuck_1 else Stuck_0)
          | _ -> ()
        end
      end

let read d =
  match d.phys with
  | Some p ->
      (* Sense the stored resistance against the shared current reference:
         the stored state's read current, degraded by endurance drift and
         jittered by thermal noise, decides the sensed logic level.  The
         failure probability is Φ(-margin) of the sampled window — never a
         flat coin flip. *)
      let r_lrs, r_hrs = effective_resistances p ~wear:d.wear in
      let i = p.v_read /. (if d.state then r_lrs else r_hrs) in
      let sensed = i *. (1.0 +. (p.read_noise *. Logic.Prng.gaussian p.rng)) in
      sensed > p.i_ref
  | None -> (
      match d.model with
      | Some m when m.read_disturb > 0.0 && Logic.Prng.float m.rng < m.read_disturb ->
          not d.state
      | _ -> d.state)

let clear d = switch d false
let set d = switch d true
let write d v = switch d v

let imp_pulse ~p ~q =
  (* V_COND on P cannot switch P; the interaction sets Q when P is 0. *)
  if not p.state then switch q true

let imp_apply ~p q = if not p then switch q true

let maj_pulse r ~p ~q =
  (* Fig. 2: R' = P·Q̄ when R = 0 and P + Q̄ when R = 1, i.e. M(P, ¬Q, R). *)
  let nq = not q in
  switch r ((p && nq) || ((p || nq) && r.state))
