type defect = Stuck_0 | Stuck_1

type model = {
  write_fail : float;
  read_disturb : float;
  endurance : int;
  rng : Logic.Prng.t;
}

let model ?(write_fail = 0.0) ?(read_disturb = 0.0) ?(endurance = 0) ~seed () =
  if write_fail < 0.0 || write_fail > 1.0 then invalid_arg "Device.model: write_fail";
  if read_disturb < 0.0 || read_disturb > 1.0 then invalid_arg "Device.model: read_disturb";
  { write_fail; read_disturb; endurance; rng = Logic.Prng.create seed }

type t = {
  mutable state : bool;
  mutable defect : defect option;
  mutable wear : int;
  model : model option;
}

let create () = { state = false; defect = None; wear = 0; model = None }

let set_defect d defect =
  d.defect <- Some defect;
  d.state <- (match defect with Stuck_0 -> false | Stuck_1 -> true)

let create_with ?defect m =
  let d = { state = false; defect = None; wear = 0; model = Some m } in
  Option.iter (set_defect d) defect;
  d

let defect d = d.defect
let wear d = d.wear
let observe d = d.state

(* Drive the cell toward [v].  A defective cell ignores every pulse; a healthy
   switching event may fail probabilistically, costs one endurance cycle, and
   freezes the cell in place once the endurance budget is spent. *)
let switch d v =
  match d.defect with
  | Some _ -> ()
  | None ->
      if d.state <> v then begin
        let fails =
          match d.model with
          | None -> false
          | Some m -> m.write_fail > 0.0 && Logic.Prng.float m.rng < m.write_fail
        in
        if not fails then begin
          d.state <- v;
          d.wear <- d.wear + 1;
          match d.model with
          | Some m when m.endurance > 0 && d.wear >= m.endurance ->
              d.defect <- Some (if d.state then Stuck_1 else Stuck_0)
          | _ -> ()
        end
      end

let read d =
  match d.model with
  | Some m when m.read_disturb > 0.0 && Logic.Prng.float m.rng < m.read_disturb ->
      not d.state
  | _ -> d.state

let clear d = switch d false
let set d = switch d true
let write d v = switch d v

let imp_pulse ~p ~q =
  (* V_COND on P cannot switch P; the interaction sets Q when P is 0. *)
  if not p.state then switch q true

let imp_apply ~p q = if not p then switch q true

let maj_pulse r ~p ~q =
  (* Fig. 2: R' = P·Q̄ when R = 0 and P + Q̄ when R = 1, i.e. M(P, ¬Q, R). *)
  let nq = not q in
  switch r ((p && nq) || ((p || nq) && r.state))
