open Logic

type params = {
  r_lrs : float;
  r_hrs : float;
  sigma_lrs : float;
  sigma_hrs : float;
  v_read : float;
  read_noise : float;
  drift : float;
}

(* HyperMetric-style HfO2 bipolar device: 2.5 kΩ / 16 kΩ median LRS/HRS
   with lognormal shapes 0.18 / 0.45 — the HRS filament gap is the wider
   spread.  5% relative sense noise; drift closes the window by ~0.2% per
   switching event. *)
let nominal =
  {
    r_lrs = 2500.0;
    r_hrs = 16000.0;
    sigma_lrs = 0.18;
    sigma_hrs = 0.45;
    v_read = 0.9;
    read_noise = 0.05;
    drift = 0.002;
  }

let scaled ?(base = nominal) sigma =
  { base with sigma_lrs = base.sigma_lrs *. sigma; sigma_hrs = base.sigma_hrs *. sigma }

let validate p =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if not (p.r_lrs > 0.0 && p.r_hrs > 0.0) then
    err "resistances must be positive (LRS %g, HRS %g)" p.r_lrs p.r_hrs
  else if p.r_lrs >= p.r_hrs then
    err "LRS median %g must lie below HRS median %g" p.r_lrs p.r_hrs
  else if p.sigma_lrs < 0.0 || p.sigma_hrs < 0.0 then
    err "variability sigma must be non-negative (LRS %g, HRS %g)" p.sigma_lrs
      p.sigma_hrs
  else if not (p.v_read > 0.0) then err "read voltage must be positive (%g)" p.v_read
  else if p.read_noise < 0.0 then err "read noise must be non-negative (%g)" p.read_noise
  else if p.drift < 0.0 then err "drift rate must be non-negative (%g)" p.drift
  else Ok ()

let lognormal rng ~median ~sigma = median *. exp (sigma *. Prng.gaussian rng)

(* The sense amplifier splits the difference between the nominal read
   currents of the two states; every device of an array shares it, so a
   cell whose sampled resistance lands on the wrong side misreads with
   probability > 1/2 no matter how quiet the sensing is. *)
let i_ref p = ((p.v_read /. p.r_lrs) +. (p.v_read /. p.r_hrs)) /. 2.0

let sample params ~seed n =
  let i_ref = i_ref params in
  Array.init n (fun d ->
      (* Per-device stream split off the trial seed: the resistance draws
         and every later read-noise draw of cell [d] are independent of all
         other cells and of how many reads any other cell served. *)
      let rng = Prng.create (Prng.split_seed seed d) in
      let r_lrs = lognormal rng ~median:params.r_lrs ~sigma:params.sigma_lrs in
      let r_hrs = lognormal rng ~median:params.r_hrs ~sigma:params.sigma_hrs in
      {
        Device.r_lrs;
        r_hrs;
        v_read = params.v_read;
        i_ref;
        read_noise = params.read_noise;
        drift = params.drift;
        rng;
      })

let crossbar ?defects params ~seed n =
  Interp.crossbar ~physics:(sample params ~seed n) ?defects n

(* Built-in self-test over controller-visible operations only (write both
   levels, sense them back): a cell whose sampled resistances straddle the
   reference, or whose margin is already noise-limited, betrays itself
   here.  The screen costs real wear (2·passes switching events per cell),
   so the drift penalty of testing is accounted, not assumed away. *)
let screen ?(passes = 3) devices =
  let bad = ref [] in
  Array.iteri
    (fun i d ->
      let ok = ref true in
      for _ = 1 to passes do
        Device.write d false;
        if Device.read d then ok := false;
        Device.write d true;
        if not (Device.read d) then ok := false
      done;
      Device.clear d;
      if not !ok then bad := i :: !bad)
    devices;
  List.rev !bad

type env = {
  devices : Device.t array;
  env : Resilient.env;
  wear : unit -> int array;
}

let env ?defects params ~seed n =
  let devices = crossbar ?defects params ~seed n in
  {
    devices;
    (* One persistent physical array: wear (and with it drift) accumulates
       across every execution the controller issues, which is exactly what
       the wear gauges and the wear-aware remapping policy read. *)
    env = { Resilient.execute = (fun ?trace p v -> Interp.run_on ~devices ?trace p v) };
    wear = (fun () -> Array.map Device.wear devices);
  }
