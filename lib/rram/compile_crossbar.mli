(** Crossbar-constrained MIG compilation: map a MIG onto a fixed
    rows × columns RRAM array, packing independent same-level gates into
    parallel pulse waves across rows.

    {2 Execution model}

    A gate pulse ({!Isa.Imp} or {!Isa.Maj_pulse}) drives the horizontal
    nanowire of its destination device, so {e at most one gate pulse may
    fire per row per step} ({!Program.validate} with [~row_of] checks
    this).  [Load] and [Reset] are column-driver writes and carry no row
    constraint.  Consequences per realization:

    - {b IMP}: every operand device of a gate is an IMP source of its
      pulses and must share the gate's row; complement inversions of one
      gate therefore also sit on its row, and the complement phase of a
      wave rotates over the (at most three) operand positions — one
      row-disjoint sub-step per position in use — where the serial model
      charges a single step.  A complemented fanin from another row is
      staged with an extra copy device so the inversion IMP stays
      row-local.
    - {b MAJ}: pulses read their operands through the top electrodes, so
      inversion devices spread across rows and the complement phase stays
      one parallel step whenever the wave's inversions fit distinct rows.

    {2 Scheduling}

    Levels run in order; a level with more gates than rows spills across
    [ceil(width / rows)] sequential waves, each wave claiming one row per
    gate (lowest-index first-fit — the schedule is deterministic).  Sites
    freed by liveness become reusable at the next wave boundary, never
    inside the wave that freed them.  Readout-inversion devices for
    complemented outputs are reserved on distinct rows (for IMP, on the
    producing gate's row) with their FALSE presets riding along with load
    steps, so the final inversion is a single row-disjoint batch on a
    fitted array.

    On a {!fit}-sized array the MAJ backend reproduces the serial step
    count exactly; the IMP backend adds one sub-step per extra complement
    position in use — a cost the unbounded-serial model understates. *)

exception Too_small of string
(** The geometry cannot host the circuit.  {!compile} turns it into an
    [Error]; {!fit} with an explicit row budget lets it escape. *)

type t = {
  program : Program.t;
  placement : Placement.t;  (** the row/column assignment actually used *)
  serial : Core.Rram_cost.cost;  (** Table I analytic (unbounded serial) *)
  analytic : Core.Rram_cost.triple;
      (** {!Core.Rram_cost.triple_of_levels} wave model for this geometry *)
  measured : Core.Rram_cost.triple;  (** from the compiled program *)
  waves : int;  (** total pulse waves scheduled *)
}

val compile :
  ?schedule:Core.Mig_levels.t ->
  arch:Arch.t ->
  Core.Rram_cost.realization ->
  Core.Mig.t ->
  (t, string) result
(** [Error] when the geometry cannot host the circuit (some gate's working
    set is wider than a row, or live values exhaust every row) — and when
    [arch] is [Unbounded_serial], which belongs to {!Compile_mig}. *)

val fit :
  ?schedule:Core.Mig_levels.t ->
  ?rows:int ->
  Core.Rram_cost.realization ->
  Core.Mig.t ->
  Arch.t
(** The smallest geometry on which the scheduler runs without spilling:
    rows = widest level (for MAJ also the complement and readout demand),
    columns = widest row the unbounded-column schedule actually used.
    Compiling at the fitted geometry reproduces that schedule exactly.

    [rows] overrides the row count (clamped to ≥ 1): the scheduler then
    spills wide levels across extra waves and the returned geometry has
    the minimal column count for that row budget — the knob behind the
    latency/geometry Pareto sweep in [Exp.Crossbar].
    @raise Too_small when [rows] is below the circuit's hard floor (a
    readout demand or gate working set that cannot be rearranged). *)
