open Logic

type injection = { cell : Isa.reg; value : bool }

let random_faults rng ~num_cells ~rate =
  let acc = ref [] in
  for cell = 0 to num_cells - 1 do
    if Prng.float rng < rate then acc := { cell; value = Prng.bool rng } :: !acc
  done;
  !acc

let to_defects faults =
  List.map
    (fun { cell; value } ->
      (cell, if value then Device.Stuck_1 else Device.Stuck_0))
    faults

let survives program ~reference faults vectors =
  let stuck = List.map (fun { cell; value } -> (cell, value)) faults in
  List.for_all
    (fun v -> Interp.run ~stuck program v = reference v)
    vectors

type yield_result = {
  trials : int;
  survivors : int;
  yield : float;
  mean_faults : float;
}

let test_vectors rng ~num_inputs ~vectors =
  Array.make num_inputs false
  :: Array.make num_inputs true
  :: List.init vectors (fun _ -> Array.init num_inputs (fun _ -> Prng.bool rng))

let functional_yield ?(seed = 0xFA17) ?(trials = 200) ?(vectors = 24) ~rate program
    ~reference =
  let rng = Prng.create seed in
  let test_vectors = test_vectors rng ~num_inputs:program.Program.num_inputs ~vectors in
  let survivors = ref 0 and total_faults = ref 0 in
  for _ = 1 to trials do
    let faults = random_faults rng ~num_cells:program.Program.num_regs ~rate in
    total_faults := !total_faults + List.length faults;
    if survives program ~reference faults test_vectors then incr survivors
  done;
  {
    trials;
    survivors = !survivors;
    yield = float_of_int !survivors /. float_of_int trials;
    mean_faults = float_of_int !total_faults /. float_of_int trials;
  }

type comparison = {
  rate : float;
  cells : int;
  tmr_cells : int;
  baseline : yield_result;
  resilient : yield_result;
  tmr : yield_result;
}

let yield_comparison ?(seed = 0xFA17) ?(trials = 200) ?(vectors = 24)
    ?(max_attempts = 4) ~rate program ~reference =
  let rng = Prng.create seed in
  let vecs = test_vectors rng ~num_inputs:program.Program.num_inputs ~vectors in
  let tmr = Tmr.protect program in
  let cells = program.Program.num_regs in
  let tmr_cells = tmr.Tmr.program.Program.num_regs in
  (* One physical defect map per trial, over a cell universe wide enough to
     cover the TMR array and the spare cells remapping may reach for — so
     the three arms face the same broken silicon, and a repair that lands on
     another dead cell is caught and re-repaired rather than assumed away. *)
  let universe = max tmr_cells (cells + 32) in
  let base = Array.make 3 0 and faults_seen = Array.make 3 0 in
  for _ = 1 to trials do
    let faults = random_faults rng ~num_cells:universe ~rate in
    let within n = List.filter (fun f -> f.cell < n) faults in
    let baseline_faults = within cells in
    faults_seen.(0) <- faults_seen.(0) + List.length baseline_faults;
    if survives program ~reference baseline_faults vecs then base.(0) <- base.(0) + 1;
    faults_seen.(1) <- faults_seen.(1) + List.length baseline_faults;
    let env = Resilient.env_of_defects (to_defects faults) in
    let report = Resilient.run ~max_attempts ~vectors:vecs env program ~reference in
    if report.Resilient.ok then base.(1) <- base.(1) + 1;
    let tmr_faults = within tmr_cells in
    faults_seen.(2) <- faults_seen.(2) + List.length tmr_faults;
    if survives tmr.Tmr.program ~reference tmr_faults vecs then base.(2) <- base.(2) + 1
  done;
  let result i =
    {
      trials;
      survivors = base.(i);
      yield = float_of_int base.(i) /. float_of_int trials;
      mean_faults = float_of_int faults_seen.(i) /. float_of_int trials;
    }
  in
  {
    rate;
    cells;
    tmr_cells;
    baseline = result 0;
    resilient = result 1;
    tmr = result 2;
  }
