(** Interpreter: executes an RRAM program on a crossbar of {!Device}s.

    Steps have parallel semantics — every micro-operation in a step reads the
    pre-step device states; this matches the hardware, where all pulses of a
    step are applied in the same clock.  A trace callback can observe every
    executed step (used by the [crossbar_trace] example and the differential
    diagnosis of {!Resilient}).

    {2 Trace-callback contract}

    For both {!run} and {!run_on}, [trace idx step states] is invoked once
    per program step, in program order, {e after} every write of the step
    has landed:

    - [idx] is the 1-based step index ([1 .. Program.num_steps]);
    - [step] is the executed step, physically equal to the program's;
    - [states] holds the {e true} post-step state of every device of the
      crossbar ([Array.length states = Array.length devices], which can
      exceed [num_regs] on an oversized crossbar).  States are read with
      {!Device.observe}: they bypass transient read disturb and reflect
      stuck-at/wear effects exactly.  This noiseless contract is what the
      differential replay of {!Resilient.run} relies on — comparing
      observed traces of an ideal and a faulty crossbar must expose the
      first diverging {e write}, not a read artifact.

    [test/test_rram.ml] (group [interp-trace]) pins this ordering and these
    values.

    When observability is enabled ({!Obs.set_enabled}), every run records
    pulse counters (["rram.interp/pulses.*"]), a micro-ops-per-step
    parallelism histogram, a writes-per-device histogram, wear gauges and a
    ["rram.interp/run"] span.

    The crossbar is ideal by default.  Passing [model] runs the same program
    on non-ideal devices (probabilistic write failure, transient read
    disturb, finite endurance — see {!Device.model}); [defects] pins
    individual cells stuck at 0 or 1 before execution. *)

val crossbar :
  ?model:Device.model ->
  ?physics:Device.physics array ->
  ?defects:(Isa.reg * Device.defect) list ->
  ?stuck:(Isa.reg * bool) list ->
  int ->
  Device.t array
(** [crossbar n] allocates [n] fresh devices with the given non-idealities
    applied.  Defect entries outside [0, n) are ignored (they name physical
    cells the program does not use).  [physics] gives each device its
    sampled statistical physics ({!Variation.sample}); it must cover at
    least [n] cells and takes precedence over [model] for the read path
    ([model] still contributes write failure and endurance when both are
    given). *)

val run_on :
  devices:Device.t array ->
  ?trace:(int -> Isa.step -> bool array -> unit) ->
  Program.t ->
  bool array ->
  bool array
(** Execute on an existing crossbar, preserving its devices' wear and
    acquired defects across runs — the cycle loop of {!Seq_exec} uses this
    so endurance exhaustion accumulates over a stream. *)

val run :
  ?model:Device.model ->
  ?defects:(Isa.reg * Device.defect) list ->
  ?stuck:(Isa.reg * bool) list ->
  ?trace:(int -> Isa.step -> bool array -> unit) ->
  Program.t ->
  bool array ->
  bool array
(** [run program inputs] returns one boolean per program output.  The trace
    callback follows the contract above (1-based step index, executed step,
    noiseless post-step {!Device.observe} states).  [stuck] is the legacy
    boolean spelling of [defects]: the listed cells ignore every pulse and
    always hold the given value (used by {!Faults}). *)

val run_vectors : Program.t -> bool array list -> bool array list
