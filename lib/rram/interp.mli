(** Interpreter: executes an RRAM program on a crossbar of {!Device}s.

    Steps have parallel semantics — every micro-operation in a step reads the
    pre-step device states; this matches the hardware, where all pulses of a
    step are applied in the same clock.  A trace callback can observe every
    executed step (used by the [crossbar_trace] example and the differential
    diagnosis of {!Resilient}).

    The crossbar is ideal by default.  Passing [model] runs the same program
    on non-ideal devices (probabilistic write failure, transient read
    disturb, finite endurance — see {!Device.model}); [defects] pins
    individual cells stuck at 0 or 1 before execution. *)

val crossbar :
  ?model:Device.model ->
  ?defects:(Isa.reg * Device.defect) list ->
  ?stuck:(Isa.reg * bool) list ->
  int ->
  Device.t array
(** [crossbar n] allocates [n] fresh devices with the given non-idealities
    applied.  Defect entries outside [0, n) are ignored (they name physical
    cells the program does not use). *)

val run_on :
  devices:Device.t array ->
  ?trace:(int -> Isa.step -> bool array -> unit) ->
  Program.t ->
  bool array ->
  bool array
(** Execute on an existing crossbar, preserving its devices' wear and
    acquired defects across runs — the cycle loop of {!Seq_exec} uses this
    so endurance exhaustion accumulates over a stream. *)

val run :
  ?model:Device.model ->
  ?defects:(Isa.reg * Device.defect) list ->
  ?stuck:(Isa.reg * bool) list ->
  ?trace:(int -> Isa.step -> bool array -> unit) ->
  Program.t ->
  bool array ->
  bool array
(** [run program inputs] returns one boolean per program output.  The trace
    callback receives the 1-based step index, the step, and the post-step
    device states (noiseless {!Device.observe} values).  [stuck] is the
    legacy boolean spelling of [defects]: the listed cells ignore every pulse
    and always hold the given value (used by {!Faults}). *)

val run_vectors : Program.t -> bool array list -> bool array list
