(** Defect-aware register remapping (extension).

    Given a list of bad cells (stuck-at defects found at test time or
    diagnosed at runtime by {!Resilient}), rewrite a compiled program so it
    no longer touches them: every live bad register is renamed to a fresh
    spare cell, dead bad cells are left alone for free.  Register indices
    are physical cell identities here — the replacement is a {e new} index
    beyond the current register count, never a recycled one, so a physical
    defect map (keyed by cell index) remains meaningful across repeated
    remap rounds.

    When a {!Placement} is supplied, the physical array's [rows × columns]
    geometry bounds the number of spare cells available; without one,
    spares are unlimited (the controller is assumed to re-place the
    program, which {!Placement.place} recomputes from the rewritten
    program). *)

type t = {
  program : Program.t;  (** rewritten program avoiding all bad live cells *)
  moves : (Isa.reg * Isa.reg) list;  (** (bad cell, replacement cell) *)
  spares_left : int;  (** remaining capacity; [max_int] when unbounded *)
}

val live_regs : Program.t -> bool array
(** [live_regs p] marks every register the program reads, writes, or
    outputs.  A stuck cell outside this set cannot affect execution. *)

val remap :
  ?placement:Placement.t -> Program.t -> bad:Isa.reg list -> (t, string) result
(** Rename every live register of [bad] to a fresh spare.  Returns an error
    when the placement's array has too few spare sites.  Bad registers that
    are dead or out of range are ignored; if none remain, the program is
    returned unchanged with no moves. *)

val remap_wear_aware :
  ?placement:Placement.t ->
  wear:int array ->
  Program.t ->
  bad:Isa.reg list ->
  (t, string) result
(** Wear-leveling-aware variant: [wear.(c)] is the accumulated switching
    count of physical cell [c] over the whole array ([Array.length wear]
    cells; a [placement] further caps the usable sites).  Replacements are
    the free cells — not live in the program, not listed bad — of least
    wear, ties to the lower index.  Under endurance drift a low-wear cell
    is the one with the widest remaining resistance window, so repairs
    steer toward the healthy region of the crossbar and write load spreads
    instead of piling onto the same spares.  Deterministic for equal
    inputs; errors when fewer free cells remain than are needed. *)
