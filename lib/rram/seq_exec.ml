open Logic

type t = {
  program : Program.t;
  num_pis : int;
  num_pos : int;
  init : bool array;
}

let compile ?(algorithm = Core.Mig_opt.Steps) ?effort realization seq =
  let mig =
    Core.Mig_opt.run ?effort algorithm (Core.Mig_of_network.convert (Seq.combinational seq))
  in
  let compiled = Compile_mig.compile realization mig in
  {
    program = compiled.Compile_mig.program;
    num_pis = Seq.num_pis seq;
    num_pos = Seq.num_pos seq;
    init = Seq.initial_state seq;
  }

let steps_per_cycle t = Program.num_steps t.program
let rrams t = t.program.Program.num_regs
let program t = t.program

let run ?model ?defects t stream =
  let devices = Interp.crossbar ?model ?defects t.program.Program.num_regs in
  let state = ref (Array.copy t.init) in
  List.map
    (fun inputs ->
      if Array.length inputs <> t.num_pis then invalid_arg "Seq_exec.run: input width";
      let all = Interp.run_on ~devices t.program (Array.append inputs !state) in
      state := Array.sub all t.num_pos (Array.length t.init);
      Array.sub all 0 t.num_pos)
    stream

let verify t seq ?(cycles = 64) ?(seed = 0x5EC) () =
  if Seq.num_pis seq <> t.num_pis then Error "input count mismatch"
  else begin
    let rng = Prng.create seed in
    let stream =
      List.init cycles (fun _ -> Array.init t.num_pis (fun _ -> Prng.bool rng))
    in
    let expect = Seq.simulate seq stream in
    let got = run t stream in
    if expect = got then Ok ()
    else Error "crossbar execution diverged from the sequential reference"
  end
