open Logic

type t = {
  program : Program.t;
  num_pis : int;
  num_pos : int;
  init : bool array;
}

let compile ?(algorithm = Core.Mig_opt.Steps) ?effort ?arch realization seq =
  let mig =
    Core.Mig_opt.run ?effort algorithm (Core.Mig_of_network.convert (Seq.combinational seq))
  in
  let compiled = Compile_mig.compile ?arch realization mig in
  {
    program = compiled.Compile_mig.program;
    num_pis = Seq.num_pis seq;
    num_pos = Seq.num_pos seq;
    init = Seq.initial_state seq;
  }

let steps_per_cycle t = Program.num_steps t.program
let rrams t = t.program.Program.num_regs
let program t = t.program

let c_cycles = Obs.counter "rram.seq_exec/cycles"
let g_wear_max = Obs.gauge "rram.seq_exec/wear.max"
let g_wear_total = Obs.gauge "rram.seq_exec/wear.total"

let run ?model ?defects t stream =
  let devices = Interp.crossbar ?model ?defects t.program.Program.num_regs in
  let state = ref (Array.copy t.init) in
  Obs.with_span ~cat:"rram" "rram.seq_exec/run"
    ~args:[ ("cycles", Obs.Json.Int (List.length stream)) ]
    (fun () ->
      let outputs =
        List.map
          (fun inputs ->
            if Array.length inputs <> t.num_pis then
              invalid_arg "Seq_exec.run: input width";
            Obs.incr c_cycles;
            let all = Interp.run_on ~devices t.program (Array.append inputs !state) in
            state := Array.sub all t.num_pos (Array.length t.init);
            Array.sub all 0 t.num_pos)
          stream
      in
      (* Endurance accounting over the whole stream: the crossbar persists
         across cycles, so wear accumulates (unlike Interp's per-run
         gauges, these reflect the stream total). *)
      if Obs.enabled () then begin
        let wear_max = ref 0 and wear_total = ref 0 in
        Array.iter
          (fun d ->
            let w = Device.wear d in
            wear_total := !wear_total + w;
            if w > !wear_max then wear_max := w)
          devices;
        Obs.set_gauge g_wear_max (float_of_int !wear_max);
        Obs.set_gauge g_wear_total (float_of_int !wear_total)
      end;
      outputs)

let verify t seq ?(cycles = 64) ?(seed = 0x5EC) () =
  if Seq.num_pis seq <> t.num_pis then Error "input count mismatch"
  else begin
    let rng = Prng.create seed in
    let stream =
      List.init cycles (fun _ -> Array.init t.num_pis (fun _ -> Prng.bool rng))
    in
    let expect = Seq.simulate seq stream in
    let got = run t stream in
    if expect = got then Ok ()
    else Error "crossbar execution diverged from the sequential reference"
  end
