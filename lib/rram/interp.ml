let crossbar ?model ?(defects = []) ?(stuck = []) num_regs =
  let devices =
    match model with
    | None -> Array.init num_regs (fun _ -> Device.create ())
    | Some m -> Array.init num_regs (fun _ -> Device.create_with m)
  in
  let pin (r, d) = if r >= 0 && r < num_regs then Device.set_defect devices.(r) d in
  List.iter pin defects;
  List.iter (fun (r, v) -> pin (r, if v then Device.Stuck_1 else Device.Stuck_0)) stuck;
  devices

let run_on ~devices ?trace (program : Program.t) inputs =
  if Array.length inputs <> program.Program.num_inputs then
    invalid_arg "Interp.run: input count";
  if Array.length devices < program.Program.num_regs then
    invalid_arg "Interp.run_on: crossbar too small";
  let operand_value = function
    | Isa.Input i -> inputs.(i)
    | Isa.Reg r -> Device.read devices.(r)
    | Isa.Const b -> b
  in
  List.iteri
    (fun idx step ->
      (* Parallel semantics: latch all source values before any write. *)
      let actions =
        List.map
          (fun micro ->
            match micro with
            | Isa.Load (r, o) ->
                let v = operand_value o in
                fun () -> Device.write devices.(r) v
            | Isa.Reset r -> fun () -> Device.clear devices.(r)
            | Isa.Imp { src; dst } ->
                let p = Device.read devices.(src) in
                fun () -> Device.imp_apply ~p devices.(dst)
            | Isa.Maj_pulse { p; q; dst } ->
                let pv = operand_value p and qv = operand_value q in
                fun () -> Device.maj_pulse devices.(dst) ~p:pv ~q:qv)
          step
      in
      List.iter (fun act -> act ()) actions;
      match trace with
      | Some f -> f (idx + 1) step (Array.map Device.observe devices)
      | None -> ())
    program.Program.steps;
  Array.map
    (fun o ->
      match o with
      | Isa.Input i -> inputs.(i)
      | Isa.Reg r -> Device.read devices.(r)
      | Isa.Const b -> b)
    program.Program.outputs

let run ?model ?defects ?stuck ?trace (program : Program.t) inputs =
  let devices = crossbar ?model ?defects ?stuck program.Program.num_regs in
  run_on ~devices ?trace program inputs

let run_vectors program vectors = List.map (run program) vectors
