let crossbar ?model ?physics ?(defects = []) ?(stuck = []) num_regs =
  let devices =
    match (physics, model) with
    | Some phys, _ ->
        if Array.length phys < num_regs then
          invalid_arg "Interp.crossbar: physics array too small";
        Array.init num_regs (fun i -> Device.create_phys ?model phys.(i))
    | None, None -> Array.init num_regs (fun _ -> Device.create ())
    | None, Some m -> Array.init num_regs (fun _ -> Device.create_with m)
  in
  let pin (r, d) = if r >= 0 && r < num_regs then Device.set_defect devices.(r) d in
  List.iter pin defects;
  List.iter (fun (r, v) -> pin (r, if v then Device.Stuck_1 else Device.Stuck_0)) stuck;
  devices

(* Pulse accounting: one counter per voltage configuration, a write
   histogram per device, step-parallelism stats and wear gauges — all gated
   on the global observability switch, so the only cost on the (hot)
   default path is one boolean load per run. *)
let c_runs = Obs.counter "rram.interp/runs"
and c_steps = Obs.counter "rram.interp/steps"
and c_loads = Obs.counter "rram.interp/pulses.load"
and c_resets = Obs.counter "rram.interp/pulses.reset"
and c_imps = Obs.counter "rram.interp/pulses.imp"
and c_majs = Obs.counter "rram.interp/pulses.maj"

let h_step_width = Obs.histogram "rram.interp/micro_ops_per_step"
let h_writes = Obs.histogram "rram.interp/writes_per_device"
let g_wear_max = Obs.gauge "rram.interp/wear.max"
let g_wear_total = Obs.gauge "rram.interp/wear.total"

let run_on ~devices ?trace (program : Program.t) inputs =
  if Array.length inputs <> program.Program.num_inputs then
    invalid_arg "Interp.run: input count";
  if Array.length devices < program.Program.num_regs then
    invalid_arg "Interp.run_on: crossbar too small";
  let obs = Obs.enabled () in
  let t0 = if obs then Obs.now_ns () else 0L in
  let writes = if obs then Array.make (Array.length devices) 0 else [||] in
  let operand_value = function
    | Isa.Input i -> inputs.(i)
    | Isa.Reg r -> Device.read devices.(r)
    | Isa.Const b -> b
  in
  List.iteri
    (fun idx step ->
      if obs then begin
        Obs.incr c_steps;
        Obs.observe h_step_width (List.length step)
      end;
      (* Parallel semantics: latch all source values before any write. *)
      let actions =
        List.map
          (fun micro ->
            if obs then begin
              (match micro with
              | Isa.Load _ -> Obs.incr c_loads
              | Isa.Reset _ -> Obs.incr c_resets
              | Isa.Imp _ -> Obs.incr c_imps
              | Isa.Maj_pulse _ -> Obs.incr c_majs);
              let dst = Isa.micro_dst micro in
              writes.(dst) <- writes.(dst) + 1
            end;
            match micro with
            | Isa.Load (r, o) ->
                let v = operand_value o in
                fun () -> Device.write devices.(r) v
            | Isa.Reset r -> fun () -> Device.clear devices.(r)
            | Isa.Imp { src; dst } ->
                let p = Device.read devices.(src) in
                fun () -> Device.imp_apply ~p devices.(dst)
            | Isa.Maj_pulse { p; q; dst } ->
                let pv = operand_value p and qv = operand_value q in
                fun () -> Device.maj_pulse devices.(dst) ~p:pv ~q:qv)
          step
      in
      List.iter (fun act -> act ()) actions;
      (* The callback fires after every write of the step has landed; the
         states are the true post-step states (Device.observe, immune to
         read disturb) for all devices of the crossbar. *)
      match trace with
      | Some f -> f (idx + 1) step (Array.map Device.observe devices)
      | None -> ())
    program.Program.steps;
  if obs then begin
    Obs.incr c_runs;
    Array.iteri
      (fun r w -> if r < program.Program.num_regs then Obs.observe h_writes w)
      writes;
    let wear_max = ref 0 and wear_total = ref 0 in
    Array.iter
      (fun d ->
        let w = Device.wear d in
        wear_total := !wear_total + w;
        if w > !wear_max then wear_max := w)
      devices;
    Obs.set_gauge g_wear_max (float_of_int !wear_max);
    Obs.set_gauge g_wear_total (float_of_int !wear_total);
    Obs.emit_span ~cat:"rram" "rram.interp/run" ~t0
      ~args:
        [
          ("steps", Obs.Json.Int (Program.num_steps program));
          ("regs", Obs.Json.Int program.Program.num_regs);
        ]
  end;
  Array.map
    (fun o ->
      match o with
      | Isa.Input i -> inputs.(i)
      | Isa.Reg r -> Device.read devices.(r)
      | Isa.Const b -> b)
    program.Program.outputs

let run ?model ?defects ?stuck ?trace (program : Program.t) inputs =
  let devices = crossbar ?model ?defects ?stuck program.Program.num_regs in
  run_on ~devices ?trace program inputs

let run_vectors program vectors = List.map (run program) vectors
