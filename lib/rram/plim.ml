type operand = Imm of bool | Cell of int

type instr = { p : operand; q : operand; z : int }

type program = {
  cells : int;
  num_inputs : int;
  input_cells : int array;
  instrs : instr list;
  outputs : operand array;
}

type compiled = {
  program : program;
  instructions : int;
  cells_used : int;
  rm3_per_gate : float;
}

let compile mig =
  let instrs = ref [] in
  let count = ref 0 in
  let emit i =
    instrs := i :: !instrs;
    incr count
  in
  let next_cell = ref 0 in
  let fresh () =
    let c = !next_cell in
    incr next_cell;
    c
  in
  (* Freed cells hold stale data and must be re-zeroed (one RM3) on reuse;
     fresh cells start at 0 for free. *)
  let free_list = ref [] in
  let zero_cell () =
    match !free_list with
    | c :: rest ->
        free_list := rest;
        emit { p = Imm false; q = Imm true; z = c };
        c
    | [] -> fresh ()
  in
  let release c = free_list := c :: !free_list in
  (* input cells *)
  let input_cells = Array.init (Core.Mig.num_pis mig) (fun _ -> fresh ()) in
  let cell_of_node = Hashtbl.create 997 in
  for i = 0 to Core.Mig.num_pis mig - 1 do
    Hashtbl.replace cell_of_node (Core.Mig.node_of (Core.Mig.pi mig i)) input_cells.(i)
  done;
  (* reference counts pin operand cells until their last use *)
  let refcount = Hashtbl.create 997 in
  let bump n =
    if n <> 0 then
      Hashtbl.replace refcount n (1 + try Hashtbl.find refcount n with Not_found -> 0)
  in
  let order = Core.Mig.topo_order mig in
  List.iter
    (fun g -> Array.iter (fun s -> bump (Core.Mig.node_of s)) (Core.Mig.fanins mig g))
    order;
  Array.iter (fun s -> bump (Core.Mig.node_of s)) (Core.Mig.pos mig);
  let is_const s = Core.Mig.node_of s = 0 in
  (* Negate a non-const signal source into a fresh zero cell: t = M(1,¬v,0). *)
  let negation_of n =
    let t = zero_cell () in
    emit { p = Imm true; q = Cell (Hashtbl.find cell_of_node n); z = t };
    t
  in
  let gates = List.length order in
  List.iter
    (fun g ->
      let f = Core.Mig.fanins mig g in
      let sigs = [ f.(0); f.(1); f.(2) ] in
      (* account for this gate's uses up front *)
      List.iter
        (fun s ->
          let n = Core.Mig.node_of s in
          if n <> 0 then Hashtbl.replace refcount n (Hashtbl.find refcount n - 1))
        sigs;
      (* q slot: a complemented non-const fanin is free there *)
      let q_sig, rest =
        match List.partition (fun s -> Core.Mig.is_compl s && not (is_const s)) sigs with
        | q :: extra, plain -> (q, extra @ plain)
        | [], s :: plain -> (s, plain)
        | [], [] -> assert false
      in
      let s1, s2 = match rest with [ a; b ] -> (a, b) | _ -> assert false in
      (* z slot: prefer destroying a dead plain operand's cell in place *)
      let destructible s =
        (not (Core.Mig.is_compl s))
        && (not (is_const s))
        && Hashtbl.find refcount (Core.Mig.node_of s) = 0
      in
      let z_sig, p_sig =
        if destructible s1 then (s1, s2)
        else if destructible s2 then (s2, s1)
        else if Core.Mig.is_compl s1 && not (is_const s1) then (s1, s2)
        else if Core.Mig.is_compl s2 && not (is_const s2) then (s2, s1)
        else (s1, s2)
      in
      (* materialize z: a cell holding z_sig's value that we may overwrite *)
      let temps = ref [] in
      let z_cell =
        if destructible z_sig then Hashtbl.find cell_of_node (Core.Mig.node_of z_sig)
        else if is_const z_sig then begin
          let t = zero_cell () in
          (* signal 1 is constant true *)
          if Core.Mig.is_compl z_sig then emit { p = Imm true; q = Imm false; z = t };
          t
        end
        else if Core.Mig.is_compl z_sig then negation_of (Core.Mig.node_of z_sig)
        else begin
          let t = zero_cell () in
          emit { p = Cell (Hashtbl.find cell_of_node (Core.Mig.node_of z_sig)); q = Imm false; z = t };
          t
        end
      in
      (* p operand: must carry p_sig's value *)
      let p_op =
        if is_const p_sig then Imm (Core.Mig.is_compl p_sig)
        else if Core.Mig.is_compl p_sig then begin
          let t = negation_of (Core.Mig.node_of p_sig) in
          temps := t :: !temps;
          Cell t
        end
        else Cell (Hashtbl.find cell_of_node (Core.Mig.node_of p_sig))
      in
      (* q operand: its readout is negated by RM3 *)
      let q_op =
        if is_const q_sig then Imm (not (Core.Mig.is_compl q_sig))
        else if Core.Mig.is_compl q_sig then Cell (Hashtbl.find cell_of_node (Core.Mig.node_of q_sig))
        else begin
          let t = negation_of (Core.Mig.node_of q_sig) in
          temps := t :: !temps;
          Cell t
        end
      in
      emit { p = p_op; q = q_op; z = z_cell };
      Hashtbl.replace cell_of_node g z_cell;
      List.iter release !temps;
      (* release operand cells whose last use has passed (the destroyed one
         now belongs to g) *)
      List.iter
        (fun s ->
          let n = Core.Mig.node_of s in
          if
            n <> 0
            && Core.Mig.kind mig n = Core.Mig.Gate
            && Hashtbl.find refcount n = 0
            && Hashtbl.find cell_of_node n <> z_cell
          then release (Hashtbl.find cell_of_node n))
        sigs)
    order;
  (* outputs *)
  let memo = Hashtbl.create 17 in
  let outputs =
    Array.map
      (fun s ->
        match Hashtbl.find_opt memo s with
        | Some o -> o
        | None ->
            let o =
              if is_const s then Imm (Core.Mig.is_compl s)
              else if Core.Mig.is_compl s then Cell (negation_of (Core.Mig.node_of s))
              else Cell (Hashtbl.find cell_of_node (Core.Mig.node_of s))
            in
            Hashtbl.replace memo s o;
            o)
      (Core.Mig.pos mig)
  in
  let program =
    {
      cells = !next_cell;
      num_inputs = Core.Mig.num_pis mig;
      input_cells;
      instrs = List.rev !instrs;
      outputs;
    }
  in
  {
    program;
    instructions = !count;
    cells_used = !next_cell;
    rm3_per_gate = (if gates = 0 then 0.0 else float_of_int !count /. float_of_int gates);
  }

let run ?model ?(defects = []) program inputs =
  if Array.length inputs <> program.num_inputs then invalid_arg "Plim.run: input count";
  match (model, defects) with
  | None, [] ->
      (* ideal fast path: plain boolean memory *)
      let mem = Array.make (max 1 program.cells) false in
      Array.iteri (fun i c -> mem.(c) <- inputs.(i)) program.input_cells;
      let value = function Imm b -> b | Cell c -> mem.(c) in
      List.iter
        (fun { p; q; z } ->
          let pv = value p and nqv = not (value q) and zv = mem.(z) in
          mem.(z) <- (pv && nqv) || (pv && zv) || (nqv && zv))
        program.instrs;
      Array.map value program.outputs
  | _ ->
      (* every cell is a real device: RM3 is one maj_pulse on it *)
      let mem = Interp.crossbar ?model ~defects (max 1 program.cells) in
      Array.iteri (fun i c -> Device.write mem.(c) inputs.(i)) program.input_cells;
      let value = function Imm b -> b | Cell c -> Device.read mem.(c) in
      List.iter
        (fun { p; q; z } ->
          let pv = value p and qv = value q in
          Device.maj_pulse mem.(z) ~p:pv ~q:qv)
        program.instrs;
      Array.map value program.outputs

let verify program mig =
  if Core.Mig.num_pis mig <> program.num_inputs then Error "input count mismatch"
  else begin
    let vectors = Verify.vectors (Core.Mig.num_pis mig) in
    let rec go = function
      | [] -> Ok ()
      | v :: rest ->
          if run program v = Core.Mig_sim.eval mig v then go rest
          else Error "PLiM program disagrees with the MIG"
    in
    go vectors
  end

let pp_operand ppf = function
  | Imm b -> Format.fprintf ppf "%d" (if b then 1 else 0)
  | Cell c -> Format.fprintf ppf "@%d" c

let pp_instr ppf { p; q; z } =
  Format.fprintf ppf "RM3(%a, %a, @%d)" pp_operand p pp_operand q z

let pp_program ppf t =
  Format.fprintf ppf "@[<v># PLiM: %d cells, %d instructions@," t.cells
    (List.length t.instrs);
  List.iteri (fun i instr -> Format.fprintf ppf "%4d: %a@," i pp_instr instr) t.instrs;
  Format.fprintf ppf "out: %a@]"
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       pp_operand)
    (Array.to_seq t.outputs)
