(** The architecture model the mapping pipeline targets.

    [Unbounded_serial] is the paper's implicit machine — an unbounded
    device pool where every level executes in one batch of shared steps —
    and stays the default of every entry point, reproducing the historical
    programs bit-identically.  [Crossbar] is a fixed rows × columns array:
    {!Compile_crossbar} places each gate's working set on one row, packs
    independent same-level gates into parallel pulse waves across rows,
    and spills a level over several waves when it is wider than the row
    budget.

    The type is an alias of {!Core.Rram_cost.arch} so the analytic cost
    model ([lib/core], no dependency on this library) and the compiled
    backends share one vocabulary. *)

type t = Core.Rram_cost.arch =
  | Unbounded_serial
  | Crossbar of { rows : int; columns : int }

val serial : t
val crossbar : rows:int -> columns:int -> t

val validate : t -> (unit, string) result
(** Crossbar geometry must have at least one row and one column. *)

val parse : string -> (t, string) result
(** ["serial"] (or ["unbounded"]), or ["RxC"] with positive integers
    (e.g. ["32x64"]); the error message names the offending text. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val geometry : t -> (int * int) option
(** [(rows, columns)] of a crossbar, [None] for the unbounded target. *)
