(** Functional model of a single bipolar RRAM device, ideal or non-ideal.

    The state is the internal resistance: [true] = low resistance = logic 1,
    [false] = high resistance = logic 0.  The three operations below are the
    three voltage configurations of the paper:

    - {!clear}: V_CLEAR resets to 0 (the FALSE operation);
    - {!imp_pulse}: V_COND on device P and V_SET on device Q execute material
      implication, [q' = ¬p ∨ q] (Fig. 1, after Borghetti et al.);
    - {!maj_pulse}: driving the two terminals with the voltage levels encoded
      by logic values P and Q switches the device to
      [R' = P·R + ¬Q·R + P·¬Q = M(P, ¬Q, R)] (Fig. 2) — the intrinsic
      resistive-majority operation.

    Devices created with {!create} are ideal: every pulse lands, reads are
    noiseless, endurance is unlimited.  Devices created with {!create_with}
    obey a non-ideal {!model}: manufacturing defects pin the cell at one
    resistance level, a switching pulse can fail to flip the filament,
    a read can transiently return the wrong level, and each successful
    switching event consumes one cycle of a finite endurance budget, after
    which the cell freezes (wears out) in its current state.  All
    randomness is drawn from the model's deterministic PRNG. *)

type defect = Stuck_0 | Stuck_1
(** A cell permanently pinned in the high- (0) or low- (1) resistance
    state — from manufacturing, or from wear-out at runtime. *)

type model
(** Non-ideality parameters shared by the devices of one crossbar. *)

val model :
  ?write_fail:float ->
  ?read_disturb:float ->
  ?endurance:int ->
  seed:int ->
  unit ->
  model
(** [write_fail] is the probability that a switching pulse leaves the state
    unchanged (default 0); [read_disturb] the probability that a read
    returns the complement of the stored state without altering it
    (default 0); [endurance] the number of switching events before the
    cell freezes, 0 meaning unlimited (default). *)

type physics = {
  r_lrs : float;  (** sampled low-resistance-state resistance, Ω *)
  r_hrs : float;  (** sampled high-resistance-state resistance, Ω *)
  v_read : float;  (** read voltage, V *)
  i_ref : float;  (** sense-amplifier current reference, A *)
  read_noise : float;  (** relative sigma of the sensed current *)
  drift : float;  (** window closure per switching event (endurance drift) *)
  rng : Logic.Prng.t;  (** device-local stream for read-noise draws *)
}
(** Statistical device physics ({!Variation} samples these per device): the
    cell's {e sampled} LRS/HRS resistances, the sensing configuration, and
    the endurance-drift law.  A device carrying physics senses reads as a
    current comparison — the stored state's read current, degraded by drift
    in proportion to the accumulated {!wear} and jittered by Gaussian
    thermal noise, against [i_ref] — so its read-failure probability is
    Φ(-margin) of the sampled resistance window, not a flat coin flip. *)

type t

val create : unit -> t
(** A fresh ideal device in the 0 (high-resistance) state. *)

val create_with : ?defect:defect -> model -> t
(** A fresh device governed by a non-ideal model, optionally with a
    manufacturing defect. *)

val create_phys : ?defect:defect -> ?model:model -> physics -> t
(** A fresh device with sampled statistical physics; an optional [model]
    layers the boolean non-idealities (write failure, finite endurance) on
    top — the two compose, with [physics] owning the read path. *)

val physics : t -> physics option

val margin : t -> float option
(** Worst-case sense margin of the two states at the current wear, in
    thermal-noise sigmas ([None] for devices without physics).  Negative
    once drift or an unlucky resistance draw pushes a state's read current
    across the reference — such a cell misreads more often than not. *)

val set_defect : t -> defect -> unit
(** Pin the cell: its state snaps to the defect value and every subsequent
    pulse is ignored.  Works on ideal devices too (used for fault
    injection). *)

val defect : t -> defect option
val wear : t -> int
(** Number of successful switching events so far. *)

val read : t -> bool
(** Sensed value; subject to transient read disturb under a non-ideal
    model. *)

val observe : t -> bool
(** The true stored state, bypassing read noise.  For traces, debugging and
    differential diagnosis — not something the hardware controller has. *)

val clear : t -> unit
val set : t -> unit
val write : t -> bool -> unit
(** Data loading: V_SET or V_CLEAR depending on the value. *)

val imp_pulse : p:t -> q:t -> unit
(** [q ← p IMP q].  [p] is unchanged. *)

val imp_apply : p:bool -> t -> unit
(** [q ← p IMP q] with the source value already latched — the interpreter's
    parallel-step semantics, avoiding a scratch device per pulse. *)

val maj_pulse : t -> p:bool -> q:bool -> unit
(** [r ← M(p, ¬q, r)]. *)
