(** The Programmable Logic-in-Memory (PLiM) computer of Gaillardon et al.
    (DATE 2016) — reference [15] of the paper, and the architecture whose
    native instruction is exactly the intrinsic majority the MAJ-based
    realization exploits.

    The machine is a memory of RRAM cells executing a single instruction,
    {e RM3}: given operands [p], [q] (memory cells or the constant rails)
    and a destination cell [z],

    {v z ← M(p, ¬q, z) v}

    Everything is built from RM3: [z ← 0] is [RM3(0, 1, z)], copy is
    [RM3(v, 0, 0-cell)], negation is [RM3(1, v, 0-cell)], and a majority
    gate [M(x,y,z)] is [RM3(x, ¬y, z-cell)].

    The compiler maps a MIG to a sequential RM3 stream, choosing the operand
    roles so complemented fanins land in the [q] slot (where the built-in
    negation makes them free) and destroying single-use operand cells in
    place.  The instruction count is the PLiM latency metric, directly
    comparable with the step counts of the level-parallel realizations —
    the [bench] ablation section contrasts them. *)

type operand = Imm of bool | Cell of int

type instr = { p : operand; q : operand; z : int }

type program = {
  cells : int;  (** memory size *)
  num_inputs : int;
  input_cells : int array;  (** where the host loads the inputs *)
  instrs : instr list;
  outputs : operand array;
}

type compiled = {
  program : program;
  instructions : int;
  cells_used : int;
  rm3_per_gate : float;
}

val compile : Core.Mig.t -> compiled

val run :
  ?model:Device.model ->
  ?defects:(int * Device.defect) list ->
  program ->
  bool array ->
  bool array
(** Execute the RM3 stream.  Ideal by default (a plain boolean memory, all
    cells 0); with [model] or [defects] every memory cell is a {!Device}
    and each RM3 lands as one {!Device.maj_pulse}, so stuck cells, write
    failures, read disturb and endurance wear all apply. *)

val verify : program -> Core.Mig.t -> (unit, string) result

val pp_instr : Format.formatter -> instr -> unit
val pp_program : Format.formatter -> program -> unit
