type t = {
  program : Program.t;
  replicas : int;
  voters : int;
}

let shift_operand k = function
  | Isa.Reg r -> Isa.Reg (r + k)
  | (Isa.Input _ | Isa.Const _) as o -> o

let shift_micro k = function
  | Isa.Load (r, o) -> Isa.Load (r + k, shift_operand k o)
  | Isa.Reset r -> Isa.Reset (r + k)
  | Isa.Imp { src; dst } -> Isa.Imp { src = src + k; dst = dst + k }
  | Isa.Maj_pulse { p; q; dst } ->
      Isa.Maj_pulse { p = shift_operand k p; q = shift_operand k q; dst = dst + k }

let protect (p : Program.t) =
  let n = p.Program.num_regs in
  (* The three replicas occupy disjoint register ranges and execute in
     lock-step: step k of the protected program is the union of step k of
     each replica, sharing the crossbar's parallel-pulse semantics. *)
  let steps =
    List.map
      (fun step ->
        List.concat_map (fun k -> List.map (shift_micro (k * n)) step) [ 0; 1; 2 ])
      p.Program.steps
  in
  (* Voting uses the paper's own resistive-majority primitive.  For each
     replicated output a: replica 0, b: replica 1, c: replica 2 —
       prep: t ← FALSE, v ← c        (one parallel step)
       inv:  t ← M(1, ¬b, 0) = ¬b
       vote: v ← M(a, ¬t, c) = M(a, b, c). *)
  let next = ref (3 * n) in
  let fresh () =
    let r = !next in
    incr next;
    r
  in
  let prep = ref [] and inv = ref [] and vote = ref [] in
  let memo = Hashtbl.create 7 in
  let voters = ref 0 in
  let outputs =
    Array.map
      (fun o ->
        match o with
        | Isa.Input _ | Isa.Const _ -> o
        | Isa.Reg r -> (
            match Hashtbl.find_opt memo r with
            | Some v -> Isa.Reg v
            | None ->
                let t = fresh () and v = fresh () in
                incr voters;
                prep := Isa.Reset t :: Isa.Load (v, Isa.Reg (r + (2 * n))) :: !prep;
                inv := Isa.Maj_pulse { p = Isa.Const true; q = Isa.Reg (r + n); dst = t } :: !inv;
                vote := Isa.Maj_pulse { p = Isa.Reg r; q = Isa.Reg t; dst = v } :: !vote;
                Hashtbl.replace memo r v;
                Isa.Reg v))
      p.Program.outputs
  in
  let voting_steps =
    List.filter (fun s -> s <> []) [ List.rev !prep; List.rev !inv; List.rev !vote ]
  in
  {
    program =
      {
        p with
        Program.num_regs = !next;
        steps = steps @ voting_steps;
        outputs;
      };
    replicas = 3;
    voters = !voters;
  }

let overhead (p : Program.t) (tmr : t) =
  ( float_of_int tmr.program.Program.num_regs /. float_of_int (max 1 p.Program.num_regs),
    float_of_int (Program.num_steps tmr.program)
    /. float_of_int (max 1 (Program.num_steps p)) )
