type env = {
  execute :
    ?trace:(int -> Isa.step -> bool array -> unit) ->
    Program.t ->
    bool array ->
    bool array;
}

let env_of_defects ?model defects =
  { execute = (fun ?trace p v -> Interp.run ?model ~defects ?trace p v) }

type report = {
  ok : bool;
  attempts : int;
  diagnosed : Isa.reg list;
  moves : (Isa.reg * Isa.reg) list;
  program : Program.t;
  trusted : bool array;
}

let collect_trace
    (execute :
      ?trace:(int -> Isa.step -> bool array -> unit) -> Program.t -> bool array -> bool array)
    program v =
  let acc = ref [] in
  ignore (execute ~trace:(fun _ _ states -> acc := states :: !acc) program v);
  List.rev !acc

(* Differential replay: run the failing vector on an ideal crossbar and on the
   faulty one, and find the first step whose written registers end up in
   different states.  Up to that step every device state matched, so all
   micro-ops latched identical source values — a divergent written register
   can only be a cell that did not take its pulse, i.e. the defect itself.
   Registers that merely diverge without being written (a stuck cell the
   program never drives) are only used as a fallback: they can matter when a
   program reads a register it never wrote. *)
let diagnose env program v =
  let golden = collect_trace (fun ?trace p v -> Interp.run ?trace p v) program v in
  let faulty = collect_trace env.execute program v in
  let diverging g f pred =
    List.filteri (fun _ r -> g.(r) <> f.(r)) (List.init (Array.length g) Fun.id)
    |> List.filter pred
  in
  let rec scan steps traces fallback =
    match (steps, traces) with
    | step :: steps', (g, f) :: traces' ->
        let written r = List.exists (fun m -> Isa.micro_dst m = r) step in
        let hard = diverging g f written in
        if hard <> [] then hard
        else
          let fallback =
            match fallback with
            | Some _ -> fallback
            | None -> ( match diverging g f (fun _ -> true) with [] -> None | ds -> Some ds)
          in
          scan steps' traces' fallback
    | _ -> ( match fallback with Some ds -> ds | None -> [])
  in
  scan program.Program.steps (List.combine golden faulty) None

let run ?(max_attempts = 4) ?placement ?remap ?vectors env program ~reference =
  let vecs =
    match vectors with Some v -> v | None -> Verify.vectors program.Program.num_inputs
  in
  let remap = match remap with Some f -> f | None -> Remap.remap ?placement in
  let diagnosed = ref [] and moves = ref [] in
  let first_failure p = List.find_opt (fun v -> env.execute p v <> reference v) vecs in
  let rec attempt n p =
    match first_failure p with
    | None -> (n, true, p)
    | Some v ->
        if n >= max_attempts then (n, false, p)
        else begin
          match diagnose env p v with
          | [] -> (n, false, p)
          | bad -> (
              (* The policy sees every cell diagnosed so far, not just this
                 round's: earlier casualties are dead in [p] (a plain remap
                 ignores them) but a wear-aware policy must keep them out of
                 its replacement pool. *)
              match remap p ~bad:(bad @ !diagnosed) with
              | Error _ -> (n, false, p)
              | Ok r ->
                  if r.Remap.moves = [] then (n, false, p)
                  else begin
                    diagnosed := !diagnosed @ bad;
                    moves := !moves @ r.Remap.moves;
                    attempt (n + 1) r.Remap.program
                  end)
        end
  in
  let attempts, ok, final = attempt 1 program in
  (* Graceful degradation: even when repair fails, outputs that agree with
     the reference on every test vector remain trusted. *)
  let trusted = Array.make (Array.length final.Program.outputs) true in
  if not ok then
    List.iter
      (fun v ->
        let got = env.execute final v and want = reference v in
        Array.iteri (fun i g -> if g <> want.(i) then trusted.(i) <- false) got)
      vecs;
  { ok; attempts; diagnosed = !diagnosed; moves = !moves; program = final; trusted }
