(** RRAM programs: a step sequence plus output map, with a register
    allocator that models level-by-level RRAM reuse.

    [num_regs] is the size of the crossbar the program needs — the peak of
    concurrently-live devices, i.e. the {e measured} "R".  The compilers also
    report the paper's {e analytic} R (Table I formula); the measured value
    can be larger because results crossing several levels must be kept alive,
    which the analytic model ignores (see DESIGN.md §2). *)

type t = {
  num_inputs : int;
  num_regs : int;
  steps : Isa.step list;
  outputs : Isa.operand array;
      (** post-inversion: reading an output never needs an extra NOT *)
}

val num_steps : t -> int

val validate : ?row_of:int array -> t -> (unit, string) result
(** Structural checks: register bounds, one write per register per step, no
    micro-op reading an input line that does not exist.  With [~row_of]
    (register → row, e.g. {!Placement.t.row_of}) additionally enforces the
    crossbar pulse discipline: a gate pulse ([Imp] or [Maj_pulse]) drives
    the row nanowire of its destination, so no step may fire two gate
    pulses on one row.  Serial programs generally fail this stricter
    check — it is meant for {!Compile_crossbar} output. *)

val pp : Format.formatter -> t -> unit
(** Full listing (one line per step). *)

val pp_summary : Format.formatter -> t -> unit

(** Register allocator with free-list reuse; [peak] is the crossbar size. *)
module Alloc : sig
  type a

  val create : unit -> a
  val get : a -> Isa.reg
  val free : a -> Isa.reg -> unit
  val peak : a -> int
end

(** Incremental program builder. *)
module Builder : sig
  type b

  val create : num_inputs:int -> b
  val alloc : b -> Isa.reg
  val free : b -> Isa.reg -> unit
  val push_step : b -> Isa.step -> unit
  (** Empty steps are dropped. *)

  val finish : b -> outputs:Isa.operand array -> t
end
