(** Crossbar placement (extension).

    Fig. 3 of the paper realizes a gate as devices sharing one horizontal
    nanowire through a load resistor: the devices of one gate must sit on
    the same row, and a row executes one gate at a time.  This module
    assigns the registers of a compiled program to a physical
    rows × columns array under that constraint:

    - registers that interact through {!Isa.Imp} pulses (p and q share the
      nanowire) are grouped into row-clusters by union-find;
    - registers feeding an {!Isa.Maj_pulse} join the pulse destination's
      cluster too — electrically they are row-free (electrode-driven), but
      they form one gate's working set, so MAJ programs report a
      Fig. 3-style gate-per-row layout instead of the degenerate
      one-device-per-row answer;
    - clusters are packed onto rows first-fit-decreasing;
    - {!Isa.Load} is driven through the top electrodes and never
      constrains placement.

    The result reports the array geometry a controller would need —
    rows, row width (columns), utilization.

    Caveat: the compiler's register reuse makes one physical device serve
    many gates over time, so the transitive interaction clusters can merge
    into few long rows.  The numbers are an honest worst case for a
    {e serial} program; {!Compile_crossbar} is the row-aware register
    allocator that splits clusters against a fixed geometry and returns
    the placement it actually used. *)

type t = {
  rows : int;
  columns : int;  (** width of the widest row *)
  row_of : int array;  (** register -> row *)
  column_of : int array;  (** register -> column within its row *)
  utilization : float;  (** registers / (rows × columns) *)
}

val place : Program.t -> t

val validate : Program.t -> t -> (unit, string) result
(** Every IMP pulse's source and destination must share a row, and no two
    registers may share a (row, column) site. *)

val pp : Format.formatter -> t -> unit
