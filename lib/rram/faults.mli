(** Stuck-at fault injection and Monte-Carlo yield estimation (extension).

    RRAM endurance failures manifest as cells stuck in the low- or
    high-resistance state.  This module samples random stuck-at fault sets
    over a compiled program's crossbar and measures the functional yield —
    the fraction of fault configurations under which the program still
    computes its function on a set of test vectors.

    Beyond the raw yield of an unprotected program, {!yield_comparison}
    measures what the two fault-tolerance mechanisms buy on the same broken
    silicon: the {!Resilient} detect–remap–retry controller and the {!Tmr}
    majority-voting transform. *)

type injection = { cell : Isa.reg; value : bool }

val random_faults : Logic.Prng.t -> num_cells:int -> rate:float -> injection list
(** Each cell is independently stuck with probability [rate] (value
    uniform). *)

val to_defects : injection list -> (Isa.reg * Device.defect) list
(** The same fault set in {!Device.defect} form, for {!Interp.run} and
    {!Resilient.env_of_defects}. *)

val survives :
  Program.t -> reference:(bool array -> bool array) -> injection list -> bool array list -> bool
(** Does the faulty program still match the reference on every vector? *)

type yield_result = {
  trials : int;
  survivors : int;
  yield : float;
  mean_faults : float;
}

val functional_yield :
  ?seed:int ->
  ?trials:int ->
  ?vectors:int ->
  rate:float ->
  Program.t ->
  reference:(bool array -> bool array) ->
  yield_result
(** Monte-Carlo yield at the given per-cell fault rate; test vectors are
    random (plus the all-zero and all-one corners). *)

type comparison = {
  rate : float;
  cells : int;  (** devices of the unprotected program *)
  tmr_cells : int;  (** devices of the TMR-protected program *)
  baseline : yield_result;  (** run as compiled, no defense *)
  resilient : yield_result;  (** with the {!Resilient} remap/retry loop *)
  tmr : yield_result;  (** the {!Tmr}-protected program, unassisted *)
}

val yield_comparison :
  ?seed:int ->
  ?trials:int ->
  ?vectors:int ->
  ?max_attempts:int ->
  rate:float ->
  Program.t ->
  reference:(bool array -> bool array) ->
  comparison
(** Each trial draws one stuck-at defect map over a physical universe wide
    enough for the TMR array and the remapper's spare cells, then scores
    all three arms against it.  The per-cell rate is identical across arms;
    TMR and remapping expose more cells, which is exactly the trade being
    measured. *)
