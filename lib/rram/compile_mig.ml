type result = {
  program : Program.t;
  analytic : Core.Rram_cost.cost;
  measured_rrams : int;
  measured_steps : int;
  placement : Placement.t option;
  cost : Core.Rram_cost.triple;
}

let invert_micro realization ~src ~dst =
  match realization with
  | Core.Rram_cost.Imp -> Isa.Imp { src; dst }
  | Core.Rram_cost.Maj -> Isa.Maj_pulse { p = Isa.Const true; q = Isa.Reg src; dst }

let compile_serial ?schedule realization mig =
  let lv = match schedule with Some lv -> lv | None -> Core.Mig_levels.compute mig in
  let depth = lv.Core.Mig_levels.depth in
  let analytic = Core.Rram_cost.of_levels realization lv in
  let b = Program.Builder.create ~num_inputs:(Core.Mig.num_pis mig) in
  (* Gates grouped by level. *)
  let by_level = Array.make (depth + 1) [] in
  List.iter
    (fun g ->
      let l = lv.Core.Mig_levels.level.(g) in
      by_level.(l) <- g :: by_level.(l))
    lv.Core.Mig_levels.order;
  Array.iteri (fun i gates -> by_level.(i) <- List.rev gates) by_level;
  (* Liveness: a gate's result register is freed after the level of its last
     consumer has been emitted; outputs pin results to the readout stage. *)
  let last_use = Hashtbl.create 997 in
  let note_use n l =
    let prev = try Hashtbl.find last_use n with Not_found -> 0 in
    if l > prev then Hashtbl.replace last_use n l
  in
  List.iter
    (fun g ->
      let l = lv.Core.Mig_levels.level.(g) in
      Array.iter (fun s -> note_use (Core.Mig.node_of s) l) (Core.Mig.fanins mig g))
    lv.Core.Mig_levels.order;
  Array.iter
    (fun s -> note_use (Core.Mig.node_of s) (depth + 1))
    (Core.Mig.pos mig);
  let free_after = Array.make (depth + 2) [] in
  let schedule_free l r =
    let l = min l (depth + 1) in
    free_after.(l) <- r :: free_after.(l)
  in
  let result_reg = Hashtbl.create 997 in
  (* Readout plan: complemented primary outputs need an inversion device
     whose FALSE preset rides along with the last level's data loading (the
     paper's "in parallel with the data loading step"), plus one shared
     readout-inversion step at the end. *)
  let po_presets = ref [] in
  let po_memo = Hashtbl.create 17 in
  let po_plans =
    Array.map
      (fun s ->
        match Hashtbl.find_opt po_memo s with
        | Some plan -> plan
        | None ->
            let n = Core.Mig.node_of s and c = Core.Mig.is_compl s in
            let plan =
              match Core.Mig.kind mig n with
              | Core.Mig.Const -> `Direct (Isa.Const c)
              | Core.Mig.Pi i ->
                  if not c then `Direct (Isa.Input i)
                  else begin
                    let h = Program.Builder.alloc b in
                    let inv = Program.Builder.alloc b in
                    po_presets :=
                      Isa.Load (h, Isa.Input i) :: Isa.Reset inv :: !po_presets;
                    `Inv_of_reg (h, inv)
                  end
              | Core.Mig.Gate ->
                  if not c then `Gate_result n
                  else begin
                    let inv = Program.Builder.alloc b in
                    po_presets := Isa.Reset inv :: !po_presets;
                    `Inv_of_gate (n, inv)
                  end
            in
            Hashtbl.replace po_memo s plan;
            plan)
      (Core.Mig.pos mig)
  in
  (* Emit levels. *)
  for l = 1 to depth do
    let load = ref [] and compl_ = ref [] in
    let gate_steps =
      match realization with Core.Rram_cost.Imp -> Array.make 9 [] | Core.Rram_cost.Maj -> Array.make 2 []
    in
    let add_gate_micro i m = gate_steps.(i) <- m :: gate_steps.(i) in
    let temps = ref [] in
    let temp r = temps := r :: !temps in
    (* Materialize one fanin operand into a dedicated device and return the
       register that will hold the operand value once the (optional)
       complement step has run.  Returns [None] when the operand is a
       constant rail (loaded directly, no complement cost). *)
    let operand_reg s =
      let n = Core.Mig.node_of s and c = Core.Mig.is_compl s in
      match Core.Mig.kind mig n with
      | Core.Mig.Const ->
          let r = Program.Builder.alloc b in
          temp r;
          load := Isa.Load (r, Isa.Const c) :: !load;
          (* signal 1 is ¬const0 = true *)
          r
      | Core.Mig.Pi i ->
          if not c then begin
            let r = Program.Builder.alloc b in
            temp r;
            load := Isa.Load (r, Isa.Input i) :: !load;
            r
          end
          else begin
            (* staging copy of the input, then an inversion device *)
            let h = Program.Builder.alloc b in
            let inv = Program.Builder.alloc b in
            temp h;
            temp inv;
            load := Isa.Load (h, Isa.Input i) :: Isa.Reset inv :: !load;
            compl_ := invert_micro realization ~src:h ~dst:inv :: !compl_;
            inv
          end
      | Core.Mig.Gate ->
          let src = Hashtbl.find result_reg n in
          if not c then begin
            let r = Program.Builder.alloc b in
            temp r;
            load := Isa.Load (r, Isa.Reg src) :: !load;
            r
          end
          else begin
            let inv = Program.Builder.alloc b in
            temp inv;
            load := Isa.Reset inv :: !load;
            compl_ := invert_micro realization ~src ~dst:inv :: !compl_;
            inv
          end
    in
    List.iter
      (fun g ->
        let f = Core.Mig.fanins mig g in
        let x = operand_reg f.(0) in
        let y = operand_reg f.(1) in
        let z = operand_reg f.(2) in
        match realization with
        | Core.Rram_cost.Imp ->
            (* registers A, B, C preset to 0 in the load step *)
            let a = Program.Builder.alloc b in
            let c = Program.Builder.alloc b in
            let d = Program.Builder.alloc b in
            load := Isa.Reset a :: Isa.Reset c :: Isa.Reset d :: !load;
            (* steps 02–10 of §III-A.1 (x=X, y=Y, z=Z, a=A, c=B, d=C) *)
            add_gate_micro 0 (Isa.Imp { src = x; dst = a });
            add_gate_micro 1 (Isa.Imp { src = y; dst = c });
            add_gate_micro 2 (Isa.Imp { src = a; dst = y });
            add_gate_micro 3 (Isa.Imp { src = x; dst = c });
            add_gate_micro 4 (Isa.Imp { src = y; dst = d });
            add_gate_micro 5 (Isa.Imp { src = z; dst = d });
            add_gate_micro 6 (Isa.Reset a);
            add_gate_micro 7 (Isa.Imp { src = c; dst = a });
            add_gate_micro 8 (Isa.Imp { src = d; dst = a });
            Hashtbl.replace result_reg g a;
            temp c;
            temp d;
            schedule_free (try Hashtbl.find last_use g with Not_found -> l) a
        | Core.Rram_cost.Maj ->
            let a = Program.Builder.alloc b in
            load := Isa.Reset a :: !load;
            (* step 02: A ← ¬y; step 03: Z ← M(x, y, z) *)
            add_gate_micro 0 (Isa.Maj_pulse { p = Isa.Const true; q = Isa.Reg y; dst = a });
            add_gate_micro 1 (Isa.Maj_pulse { p = Isa.Reg x; q = Isa.Reg a; dst = z });
            Hashtbl.replace result_reg g z;
            temp a;
            (* z doubles as the result: exclude it from the temps *)
            temps := List.filter (fun r -> r <> z) !temps;
            schedule_free (try Hashtbl.find last_use g with Not_found -> l) z)
      by_level.(l);
    (* The readout presets merge into the last level's load step for free. *)
    if l = depth && !po_presets <> [] then begin
      load := !po_presets @ !load;
      po_presets := []
    end;
    Program.Builder.push_step b (List.rev !load);
    Program.Builder.push_step b (List.rev !compl_);
    Array.iter (fun step -> Program.Builder.push_step b (List.rev step)) gate_steps;
    List.iter (Program.Builder.free b) !temps;
    List.iter (Program.Builder.free b) free_after.(l);
    free_after.(l) <- []
  done;
  (* Degenerate case: no gate level to merge the presets into. *)
  if !po_presets <> [] then Program.Builder.push_step b (List.rev !po_presets);
  let final_inv = ref [] in
  let outputs =
    Array.map
      (fun plan ->
        match plan with
        | `Direct o -> o
        | `Gate_result n -> Isa.Reg (Hashtbl.find result_reg n)
        | `Inv_of_reg (h, inv) ->
            final_inv := invert_micro realization ~src:h ~dst:inv :: !final_inv;
            Isa.Reg inv
        | `Inv_of_gate (n, inv) ->
            let src = Hashtbl.find result_reg n in
            final_inv := invert_micro realization ~src ~dst:inv :: !final_inv;
            Isa.Reg inv)
      po_plans
  in
  (* Deduplicate: a shared complemented output signal inverts once. *)
  let final_inv =
    List.sort_uniq compare !final_inv
  in
  Program.Builder.push_step b final_inv;
  let program = Program.Builder.finish b ~outputs in
  {
    program;
    analytic;
    measured_rrams = program.Program.num_regs;
    measured_steps = Program.num_steps program;
    placement = None;
    cost =
      {
        Core.Rram_cost.devices = program.Program.num_regs;
        latency = Program.num_steps program;
        utilization = 1.0;
      };
  }

let compile ?schedule ?(arch = Core.Rram_cost.Unbounded_serial) realization mig
    =
  match arch with
  | Core.Rram_cost.Unbounded_serial -> compile_serial ?schedule realization mig
  | Core.Rram_cost.Crossbar _ -> (
      match Compile_crossbar.compile ?schedule ~arch realization mig with
      | Error e -> invalid_arg ("Compile_mig.compile: " ^ e)
      | Ok r ->
          {
            program = r.Compile_crossbar.program;
            analytic = r.Compile_crossbar.serial;
            measured_rrams = r.Compile_crossbar.measured.Core.Rram_cost.devices;
            measured_steps = r.Compile_crossbar.measured.Core.Rram_cost.latency;
            placement = Some r.Compile_crossbar.placement;
            cost = r.Compile_crossbar.measured;
          })
