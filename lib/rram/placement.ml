type t = {
  rows : int;
  columns : int;
  row_of : int array;
  column_of : int array;
  utilization : float;
}

(* Union-find over registers. *)
let find parent x =
  let rec go x = if parent.(x) = x then x else go parent.(x) in
  let root = go x in
  let rec compress x =
    if parent.(x) <> root then begin
      let next = parent.(x) in
      parent.(x) <- root;
      compress next
    end
  in
  compress x;
  root

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if ra <> rb then parent.(ra) <- rb

let place (p : Program.t) =
  let n = max 1 p.Program.num_regs in
  let parent = Array.init n (fun i -> i) in
  List.iter
    (fun step ->
      List.iter
        (fun micro ->
          match micro with
          | Isa.Imp { src; dst } -> union parent src dst
          | Isa.Maj_pulse { p; q; dst } ->
              (* electrically row-free (electrode-driven), but the registers
                 form one gate's working set: group them so MAJ programs
                 report a Fig. 3-style gate-per-row layout instead of the
                 degenerate one-device-per-row answer *)
              let operand o =
                match o with Isa.Reg r -> union parent r dst | _ -> ()
              in
              operand p;
              operand q
          | Isa.Load _ | Isa.Reset _ -> ())
        step)
    p.Program.steps;
  (* collect clusters *)
  let clusters = Hashtbl.create 97 in
  for r = 0 to p.Program.num_regs - 1 do
    let root = find parent r in
    Hashtbl.replace clusters root (r :: (try Hashtbl.find clusters root with Not_found -> []))
  done;
  let cluster_list =
    Hashtbl.fold (fun _ regs acc -> List.rev regs :: acc) clusters []
    |> List.sort (fun a b -> compare (List.length b) (List.length a))
  in
  (* rows sized to the largest cluster; first-fit-decreasing packing *)
  let columns = List.fold_left (fun acc c -> max acc (List.length c)) 1 cluster_list in
  let row_of = Array.make n 0 and column_of = Array.make n 0 in
  let rows = ref [] in
  (* each row: remaining capacity *)
  List.iter
    (fun cluster ->
      let size = List.length cluster in
      let rec fit i = function
        | [] ->
            rows := !rows @ [ ref (columns - size) ];
            List.length !rows - 1
        | slot :: rest ->
            if !slot >= size then begin
              slot := !slot - size;
              i
            end
            else fit (i + 1) rest
      in
      let row = fit 0 !rows in
      let used =
        columns - !(List.nth !rows row) - size
      in
      List.iteri
        (fun k reg ->
          row_of.(reg) <- row;
          column_of.(reg) <- used + k)
        cluster)
    cluster_list;
  let num_rows = max 1 (List.length !rows) in
  {
    rows = num_rows;
    columns;
    row_of;
    column_of;
    utilization =
      float_of_int p.Program.num_regs /. float_of_int (num_rows * columns);
  }

let validate (p : Program.t) t =
  let errors = ref [] in
  List.iter
    (fun step ->
      List.iter
        (fun micro ->
          match micro with
          | Isa.Imp { src; dst } ->
              if t.row_of.(src) <> t.row_of.(dst) then
                errors := Printf.sprintf "IMP %d->%d crosses rows" src dst :: !errors
          | _ -> ())
        step)
    p.Program.steps;
  let seen = Hashtbl.create 97 in
  for r = 0 to p.Program.num_regs - 1 do
    let site = (t.row_of.(r), t.column_of.(r)) in
    if Hashtbl.mem seen site then
      errors := Printf.sprintf "register %d shares a site" r :: !errors
    else Hashtbl.replace seen site r
  done;
  match !errors with [] -> Ok () | e -> Error (String.concat "; " (List.rev e))

let pp ppf t =
  Format.fprintf ppf "%d x %d array, %.0f%% utilized" t.rows t.columns
    (100.0 *. t.utilization)
