(** Statistical device variability (extension).

    The boolean fault layer ({!Faults}, {!Device.model}) treats a defect as
    a switch: a cell is stuck or it is not.  Real resistive devices fail
    {e statistically}: the programmed LRS/HRS resistances spread
    lognormally from device to device, the sense margin between the two
    read currents collapses when a draw lands near (or across) the sense
    reference, and endurance drift narrows the window further as switching
    events accumulate.  This module samples that physics per device and
    wires it behind the existing {!Device} interface, so every interpreter,
    controller and protection scheme of the fault layer runs unchanged
    against a physically-grounded adversary.

    The model, per device [d] of an array (DESIGN.md §12):

    - LRS/HRS resistances are sampled {e once}, at array creation, from
      lognormal distributions with medians [r_lrs]/[r_hrs] and shapes
      [sigma_lrs]/[sigma_hrs];
    - a read senses the stored state's current [v_read/R] — degraded by
      drift, jittered by Gaussian noise of relative sigma [read_noise] —
      against the shared reference {!i_ref}, so the misread probability is
      Φ(-margin) of the {e sampled} window, not a flat coin flip;
    - each switching event advances the {!Device.wear} gauge, and the
      window closes linearly in wear: LRS drifts up and HRS down by factor
      [1 + drift·wear] (cycle-dependent endurance drift).

    All randomness descends from one campaign seed through
    {!Logic.Prng.split_seed}: the trial owns stream [split(master, trial)],
    device [d] of the trial owns [split(trial_seed, d)].  No draw depends
    on evaluation order across devices, arms or domains — the determinism
    contract [Exp.Montecarlo] and [--jobs] rely on. *)

type params = {
  r_lrs : float;  (** median LRS resistance, Ω *)
  r_hrs : float;  (** median HRS resistance, Ω *)
  sigma_lrs : float;  (** lognormal shape of the LRS spread *)
  sigma_hrs : float;  (** lognormal shape of the HRS spread *)
  v_read : float;  (** read voltage, V *)
  read_noise : float;  (** relative sigma of the sensed current *)
  drift : float;  (** window closure per switching event *)
}

val nominal : params
(** A bipolar HfO2-class device: 2.5 kΩ / 16 kΩ medians, shapes
    0.18 / 0.45, 0.9 V reads, 5% sense noise, 0.2% drift per cycle. *)

val scaled : ?base:params -> float -> params
(** [scaled s] multiplies the two lognormal shapes of [base] (default
    {!nominal}) by [s] — the campaign's variability-σ axis.  [scaled 0.]
    is a perfectly uniform array; [scaled 1.] the nominal spread. *)

val validate : params -> (unit, string) result
(** Rejects non-positive resistances and voltages, an LRS median at or
    above the HRS median, and negative sigmas / noise / drift. *)

val lognormal : Logic.Prng.t -> median:float -> sigma:float -> float
(** [median · exp(sigma · N(0,1))] — mean [median·exp(sigma²/2)]. *)

val i_ref : params -> float
(** The shared sense reference: the midpoint of the two nominal read
    currents. *)

val sample : params -> seed:int -> int -> Device.physics array
(** [sample params ~seed n] draws the physics of an [n]-cell array.  Equal
    [(params, seed, n)] yield identical draws; each cell's subsequent
    read-noise stream is split off [seed] by cell index, so two arrays
    sampled with the same seed replay the same silicon {e and} the same
    noise. *)

val crossbar :
  ?defects:(Isa.reg * Device.defect) list -> params -> seed:int -> int -> Device.t array
(** A fresh crossbar over {!sample}d physics, ready for {!Interp.run_on};
    [defects] additionally pins cells (stuck-at faults compose with
    variability). *)

val screen : ?passes:int -> Device.t array -> Isa.reg list
(** Built-in self-test: write each cell to both levels and sense them back,
    [passes] times (default 3), returning the cells that ever misread —
    ascending, every cell left cleared.  Uses only operations a real
    controller has ({!Device.write}, {!Device.read}); a wrong-side
    resistance draw is caught deterministically, a noise-marginal cell
    probabilistically.  Stored-state differential diagnosis
    ({!Resilient.diagnose}) cannot see read-path faults — the culprit's
    {e state} is correct — so campaigns screen before execution and remap
    proactively.  Costs [2·passes] switching events of wear per cell. *)

type env = {
  devices : Device.t array;  (** the persistent physical array *)
  env : Resilient.env;  (** executes on [devices], wear accumulating *)
  wear : unit -> int array;  (** current wear gauge of every cell *)
}

val env :
  ?defects:(Isa.reg * Device.defect) list -> params -> seed:int -> int -> env
(** One persistent [n]-cell array as the {!Resilient} controller sees it:
    executions share devices, so wear — and with it endurance drift —
    accumulates across the detect/remap/retry loop, and the [wear]
    snapshot is what a wear-aware {!Remap} policy steers by.  [n] bounds
    the registers any (remapped) program may use on this array. *)
