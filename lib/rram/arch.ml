type t = Core.Rram_cost.arch =
  | Unbounded_serial
  | Crossbar of { rows : int; columns : int }

let serial = Unbounded_serial
let crossbar ~rows ~columns = Crossbar { rows; columns }
let validate = Core.Rram_cost.validate_arch
let parse = Core.Rram_cost.parse_arch
let to_string = Core.Rram_cost.arch_to_string
let pp = Core.Rram_cost.pp_arch

let geometry = function
  | Unbounded_serial -> None
  | Crossbar { rows; columns } -> Some (rows, columns)
