(** Resilient execution: detect, diagnose, remap, retry (extension).

    A controller in front of a defective crossbar.  It runs the compiled
    program against a reference on a set of test vectors; on a mismatch it
    diagnoses the faulty cell by differential replay (ideal simulation vs
    the real crossbar, first divergent written register), rewrites the
    program around the dead cell with {!Remap}, and tries again, a bounded
    number of times.  When repair fails — no spare cells, an undiagnosable
    (e.g. probabilistic) fault — the report still says which outputs can be
    trusted, so a partially broken array degrades gracefully instead of
    failing wholesale. *)

type env = {
  execute :
    ?trace:(int -> Isa.step -> bool array -> unit) ->
    Program.t ->
    bool array ->
    bool array;
}
(** The physical crossbar as the controller sees it: execute a program,
    optionally tracing post-step device states.  Defects travel with
    physical cell indices, so the same [env] stays valid as remapping moves
    the program onto fresh cells. *)

val env_of_defects : ?model:Device.model -> (Isa.reg * Device.defect) list -> env
(** Simulated hardware: an {!Interp} crossbar with the given stuck cells
    and (optionally) a non-ideal device model. *)

type report = {
  ok : bool;  (** final program matches the reference on every vector *)
  attempts : int;  (** verification rounds run (1 = passed untouched) *)
  diagnosed : Isa.reg list;  (** cells diagnosed faulty, in discovery order *)
  moves : (Isa.reg * Isa.reg) list;  (** remappings applied *)
  program : Program.t;  (** the final, possibly rewritten program *)
  trusted : bool array;
      (** per output: did it match the reference on every vector?  All
          [true] when [ok]. *)
}

val diagnose : env -> Program.t -> bool array -> Isa.reg list
(** [diagnose env program vector] replays a failing vector on an ideal
    crossbar and on [env], returning the registers of the first divergent
    written step (the defective cells), or a divergent unwritten register
    as a fallback.  Empty when the traces agree everywhere. *)

val run :
  ?max_attempts:int ->
  ?placement:Placement.t ->
  ?remap:(Program.t -> bad:Isa.reg list -> (Remap.t, string) result) ->
  ?vectors:bool array list ->
  env ->
  Program.t ->
  reference:(bool array -> bool array) ->
  report
(** Run the detect → diagnose → remap → retry loop ([max_attempts]
    verification rounds, default 4).  [vectors] defaults to
    {!Verify.vectors} (exhaustive up to 12 inputs); [placement] bounds the
    spare cells available to {!Remap.remap}.

    [remap] is the repair policy, defaulting to [Remap.remap ?placement];
    pass e.g. a closure over {!Remap.remap_wear_aware} with a live wear
    snapshot to steer repairs toward low-wear cells.  The [bad] list a
    policy receives is cumulative — every cell diagnosed so far, not just
    this round's — so a policy choosing replacements from a free-cell pool
    must exclude all of them. *)
