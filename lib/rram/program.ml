type t = {
  num_inputs : int;
  num_regs : int;
  steps : Isa.step list;
  outputs : Isa.operand array;
}

let num_steps t = List.length t.steps

let validate ?row_of t =
  let check_operand = function
    | Isa.Input i when i < 0 || i >= t.num_inputs -> Error "input out of range"
    | Isa.Reg r when r < 0 || r >= t.num_regs -> Error "register out of range"
    | _ -> Ok ()
  in
  let check_step step =
    let written = Hashtbl.create 7 in
    let pulse_rows = Hashtbl.create 7 in
    List.fold_left
      (fun acc micro ->
        match acc with
        | Error _ -> acc
        | Ok () -> (
            let dst = Isa.micro_dst micro in
            if dst < 0 || dst >= t.num_regs then Error "destination out of range"
            else if Hashtbl.mem written dst then
              Error "two writes to one device in a step"
            else begin
              Hashtbl.add written dst ();
              let row_check =
                match (row_of, micro) with
                | Some rows, (Isa.Imp _ | Isa.Maj_pulse _) ->
                    (* a gate pulse drives its destination's row nanowire *)
                    let row = rows.(dst) in
                    if Hashtbl.mem pulse_rows row then
                      Error "two gate pulses on one row in a step"
                    else begin
                      Hashtbl.add pulse_rows row ();
                      Ok ()
                    end
                | _ -> Ok ()
              in
              match row_check with
              | Error _ as e -> e
              | Ok () ->
                  List.fold_left
                    (fun acc o ->
                      match acc with Error _ -> acc | Ok () -> check_operand o)
                    (Ok ()) (Isa.micro_reads micro)
            end))
      (Ok ()) step
  in
  let step_result =
    List.fold_left
      (fun acc step -> match acc with Error _ -> acc | Ok () -> check_step step)
      (Ok ()) t.steps
  in
  match step_result with
  | Error _ as e -> e
  | Ok () ->
      Array.fold_left
        (fun acc o -> match acc with Error _ -> acc | Ok () -> check_operand o)
        (Ok ()) t.outputs

let pp ppf t =
  Format.fprintf ppf "@[<v># inputs=%d rrams=%d steps=%d@," t.num_inputs t.num_regs
    (num_steps t);
  List.iteri (fun i step -> Format.fprintf ppf "%3d: %a@," (i + 1) Isa.pp_step step) t.steps;
  Format.fprintf ppf "out: %a@]"
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Isa.pp_operand)
    (Array.to_seq t.outputs)

let pp_summary ppf t =
  Format.fprintf ppf "rrams=%d steps=%d" t.num_regs (num_steps t)

module Alloc = struct
  type a = { mutable next : int; mutable free_list : int list }

  let create () = { next = 0; free_list = [] }

  let get a =
    match a.free_list with
    | r :: rest ->
        a.free_list <- rest;
        r
    | [] ->
        let r = a.next in
        a.next <- a.next + 1;
        r

  let free a r = a.free_list <- r :: a.free_list
  let peak a = a.next
end

module Builder = struct
  type b = {
    num_inputs : int;
    alloc : Alloc.a;
    mutable rev_steps : Isa.step list;
  }

  let create ~num_inputs = { num_inputs; alloc = Alloc.create (); rev_steps = [] }
  let alloc b = Alloc.get b.alloc
  let free b r = Alloc.free b.alloc r
  let push_step b step = if step <> [] then b.rev_steps <- step :: b.rev_steps

  let finish b ~outputs =
    {
      num_inputs = b.num_inputs;
      num_regs = Alloc.peak b.alloc;
      steps = List.rev b.rev_steps;
      outputs;
    }
end
