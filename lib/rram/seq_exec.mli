(** Cycle-accurate execution of sequential circuits on the crossbar.

    The combinational core of a {!Logic.Seq.t} is compiled once (through the
    MIG flow); each clock tick then runs the compiled program with the
    current primary inputs and the state vector, reads back the outputs and
    the next state, and latches the state for the following tick — an
    in-memory finite-state machine.  The per-cycle latency is exactly the
    program's step count, so the MIG step optimization directly sets the
    machine's clock period. *)

type t

val compile :
  ?algorithm:Core.Mig_opt.algorithm ->
  ?effort:int ->
  ?arch:Arch.t ->
  Core.Rram_cost.realization ->
  Logic.Seq.t ->
  t
(** Optimize (default: Alg. 4) and compile the combinational core.
    [arch] (default unbounded serial) compiles the per-cycle program for a
    concrete crossbar geometry — see {!Compile_mig.compile}; the per-cycle
    latency then reflects the row-constrained wave schedule. *)

val steps_per_cycle : t -> int
val rrams : t -> int
val program : t -> Program.t

val run :
  ?model:Device.model ->
  ?defects:(Isa.reg * Device.defect) list ->
  t ->
  bool array list ->
  bool array list
(** One output vector per input vector, starting from the initial state.
    [model] and [defects] run the whole stream on one persistent non-ideal
    crossbar: the defect map, device wear, and endurance-driven wear-out
    all accumulate across cycles. *)

val verify : t -> Logic.Seq.t -> ?cycles:int -> ?seed:int -> unit -> (unit, string) result
(** Compare against {!Logic.Seq.simulate} on a random input stream. *)
