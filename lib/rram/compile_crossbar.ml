module M = Core.Mig
module L = Core.Mig_levels
module RC = Core.Rram_cost

type t = {
  program : Program.t;
  placement : Placement.t;
  serial : RC.cost;
  analytic : RC.triple;
  measured : RC.triple;
  waves : int;
}

exception Too_small of string

let invert_micro realization ~src ~dst =
  match realization with
  | RC.Imp -> Isa.Imp { src; dst }
  | RC.Maj -> Isa.Maj_pulse { p = Isa.Const true; q = Isa.Reg src; dst }

(* Greedy row-disjoint batching: split a list of (row, pulse) pairs into the
   fewest steps such that no step fires two pulses on one row, preserving
   emission order inside each step. *)
let batch_by_row items =
  let batches = ref [] in
  List.iter
    (fun (row, micro) ->
      let rec go = function
        | [] ->
            let rows_tbl = Hashtbl.create 7 in
            Hashtbl.replace rows_tbl row ();
            batches := !batches @ [ (rows_tbl, ref [ micro ]) ]
        | (rows_tbl, micros) :: rest ->
            if Hashtbl.mem rows_tbl row then go rest
            else begin
              Hashtbl.replace rows_tbl row ();
              micros := micro :: !micros
            end
      in
      go !batches)
    items;
  List.map (fun (_, micros) -> List.rev !micros) !batches

type row_state = { mutable next_col : int; mutable free_cols : int list }

type po_plan =
  | Direct of Isa.operand
  | Gate_result of int
  | Inv_of_reg of { h : Isa.reg; inv : Isa.reg; row : int }
  | Inv_of_gate of { n : int; inv : Isa.reg option ref; row : int option ref }

(* The scheduler proper.  Deterministic: row choice is always the
   lowest-index row satisfying the predicate, site choice the lowest free
   column, so re-running with the measured geometry reproduces the program
   bit for bit (every capacity check that passed under unbounded columns
   passes under the measured maximum).  Raises [Too_small]. *)
let run_waves ~rows ~columns realization mig lv =
  let depth = lv.L.depth in
  let num_inputs = M.num_pis mig in
  let k_s = RC.steps_per_level realization in
  let npulse = k_s - 1 in
  (* ---- site allocation: one register per physical (row, column) site ---- *)
  let row_states : (int, row_state) Hashtbl.t = Hashtbl.create 97 in
  let opened = ref 0 in
  let state r =
    match Hashtbl.find_opt row_states r with
    | Some s -> s
    | None ->
        let s = { next_col = 0; free_cols = [] } in
        Hashtbl.replace row_states r s;
        if r >= !opened then opened := r + 1;
        s
  in
  let has_capacity s need =
    let fresh = columns - s.next_col in
    fresh >= need || fresh + List.length s.free_cols >= need
  in
  let reg_of_site = Hashtbl.create 997 in
  let site_of_reg = Hashtbl.create 997 in
  let next_reg = ref 0 in
  let reg_at (r, c) =
    match Hashtbl.find_opt reg_of_site (r, c) with
    | Some reg -> reg
    | None ->
        let reg = !next_reg in
        incr next_reg;
        Hashtbl.replace reg_of_site (r, c) reg;
        Hashtbl.replace site_of_reg reg (r, c);
        reg
  in
  let take r =
    let s = state r in
    match s.free_cols with
    | c :: rest ->
        s.free_cols <- rest;
        (r, c)
    | [] ->
        if s.next_col >= columns then
          raise (Too_small (Printf.sprintf "row %d overflows %d columns" r columns));
        let c = s.next_col in
        s.next_col <- c + 1;
        (r, c)
  in
  let rec insert_sorted c = function
    | [] -> [ c ]
    | x :: rest as l -> if c < x then c :: l else x :: insert_sorted c rest
  in
  (* Sites released mid-wave become reusable only at the next wave boundary,
     so a step never reads a device another gate rewrote in the same wave. *)
  let pending = ref [] in
  let release_pending () =
    List.iter
      (fun (r, c) ->
        let s = state r in
        s.free_cols <- insert_sorted c s.free_cols)
      (List.rev !pending);
    pending := []
  in
  (* First row (lowest index) satisfying [ok]; opens at most one fresh row. *)
  let scan_rows ok =
    let rec go r =
      if r >= rows then None
      else if r >= !opened then if ok r then Some r else None
      else if ok r then Some r
      else go (r + 1)
    in
    go 0
  in
  (* ---- levels, liveness ---- *)
  let by_level = Array.make (depth + 1) [] in
  List.iter
    (fun g ->
      let l = lv.L.level.(g) in
      by_level.(l) <- g :: by_level.(l))
    lv.L.order;
  Array.iteri (fun i gs -> by_level.(i) <- List.rev gs) by_level;
  let refcount = Hashtbl.create 997 in
  let bump n =
    Hashtbl.replace refcount n
      (1 + Option.value ~default:0 (Hashtbl.find_opt refcount n))
  in
  List.iter
    (fun g ->
      Array.iter
        (fun s ->
          let n = M.node_of s in
          match M.kind mig n with M.Gate -> bump n | _ -> ())
        (M.fanins mig g))
    lv.L.order;
  let pinned = Hashtbl.create 17 in
  Array.iter
    (fun s ->
      let n = M.node_of s in
      match M.kind mig n with M.Gate -> Hashtbl.replace pinned n () | _ -> ())
    (M.pos mig);
  let result_reg = Hashtbl.create 997 in
  let result_site = Hashtbl.create 997 in
  let consumed n =
    match Hashtbl.find_opt refcount n with
    | None -> ()
    | Some k ->
        let k = k - 1 in
        Hashtbl.replace refcount n k;
        if k = 0 && not (Hashtbl.mem pinned n) then
          pending := Hashtbl.find result_site n :: !pending
  in
  (* ---- readout plan ---- *)
  (* Rows already hosting a readout-inversion device; later inversions (and
     IMP producers of complemented outputs) prefer other rows so the final
     inversion step stays a single row-disjoint batch. *)
  let readout_inv_rows = Hashtbl.create 17 in
  let start_presets = ref [] in
  let inv_plans = ref [] in
  let po_memo = Hashtbl.create 17 in
  let compl_po_imp = Hashtbl.create 17 in
  let pick_inv_row need =
    let cap r = has_capacity (state r) need in
    match
      scan_rows (fun r -> (not (Hashtbl.mem readout_inv_rows r)) && cap r)
    with
    | Some r -> r
    | None -> (
        match scan_rows cap with
        | Some r -> r
        | None ->
            raise (Too_small "no row left for a readout inversion device"))
  in
  let po_plans =
    Array.map
      (fun s ->
        match Hashtbl.find_opt po_memo s with
        | Some plan -> plan
        | None ->
            let n = M.node_of s and c = M.is_compl s in
            let plan =
              match M.kind mig n with
              | M.Const -> Direct (Isa.Const c)
              | M.Pi i ->
                  if not c then Direct (Isa.Input i)
                  else begin
                    (* staging copy of the input plus its inversion device,
                       paired on one row so the IMP readout pulse is legal *)
                    let row = pick_inv_row 2 in
                    Hashtbl.replace readout_inv_rows row ();
                    let h = reg_at (take row) in
                    let inv = reg_at (take row) in
                    start_presets :=
                      Isa.Load (h, Isa.Input i) :: Isa.Reset inv :: !start_presets;
                    let plan = Inv_of_reg { h; inv; row } in
                    inv_plans := plan :: !inv_plans;
                    plan
                  end
              | M.Gate ->
                  if not c then Gate_result n
                  else begin
                    let invr = ref None and rowr = ref None in
                    (match realization with
                    | RC.Maj ->
                        (* electrode-read source: the inversion device can sit
                           on any row, reserved up front *)
                        let row = pick_inv_row 1 in
                        Hashtbl.replace readout_inv_rows row ();
                        let inv = reg_at (take row) in
                        invr := Some inv;
                        rowr := Some row;
                        start_presets := Isa.Reset inv :: !start_presets
                    | RC.Imp ->
                        (* the IMP pulse needs src and dst on one row: the
                           device is reserved on the producer's row when the
                           producer is placed *)
                        Hashtbl.replace compl_po_imp n (invr, rowr));
                    let plan = Inv_of_gate { n; inv = invr; row = rowr } in
                    inv_plans := plan :: !inv_plans;
                    plan
                  end
            in
            Hashtbl.replace po_memo s plan;
            plan)
      (M.pos mig)
  in
  (* ---- per-gate row demand (must mirror the emission allocation) ---- *)
  let operand_row_need pos s =
    let n = M.node_of s and c = M.is_compl s in
    match (M.kind mig n, realization) with
    | M.Const, _ -> 1
    | (M.Pi _ | M.Gate), RC.Imp -> if c then 2 else 1
    | M.Pi _, RC.Maj -> if c && pos = 2 then 2 else 1
    | M.Gate, RC.Maj -> if c then (if pos = 2 then 1 else 0) else 1
  in
  let scratch = match realization with RC.Imp -> 3 | RC.Maj -> 1 in
  let row_need g =
    let need = ref scratch in
    Array.iteri
      (fun i s -> need := !need + operand_row_need i s)
      (M.fanins mig g);
    (match Hashtbl.find_opt compl_po_imp g with
    | Some (invr, _) when !invr = None -> incr need
    | _ -> ());
    !need
  in
  (* ---- emission ---- *)
  let steps_rev = ref [] in
  let push_step step = if step <> [] then steps_rev := step :: !steps_rev in
  let first_load_extra = ref (List.rev !start_presets) in
  let waves = ref 0 in
  let emit_wave placed =
    let load = ref [] in
    let wave_inv_rows = Hashtbl.create 17 in
    let maj_inv = ref [] in
    let imp_compl = Array.make 3 [] in
    let gate_steps = Array.make npulse [] in
    let wave_temps = ref [] in
    (* pre-mark gate rows whose third operand is complemented: their
       inversion device is the future pulse destination and must live on the
       gate's own row, so spread inversions avoid those rows *)
    (match realization with
    | RC.Maj ->
        List.iter
          (fun (g, row) ->
            let f = M.fanins mig g in
            let s = f.(2) in
            if M.is_compl s then
              match M.kind mig (M.node_of s) with
              | M.Pi _ | M.Gate -> Hashtbl.replace wave_inv_rows row ()
              | M.Const -> ())
          placed
    | RC.Imp -> ());
    List.iter
      (fun (g, row) ->
        let alloc_here () =
          let site = take row in
          (site, reg_at site)
        in
        let temp site reg = wave_temps := (site, reg) :: !wave_temps in
        let alloc_temp () =
          let site, reg = alloc_here () in
          temp site reg;
          reg
        in
        (* a MAJ inversion reads its source through the electrodes, so its
           device spreads to any row with a free site — preferring rows
           without another inversion this wave keeps the complement phase a
           single parallel step *)
        let alloc_inv_spread () =
          let cap r = has_capacity (state r) 1 in
          let pick =
            match
              scan_rows (fun r -> (not (Hashtbl.mem wave_inv_rows r)) && cap r)
            with
            | Some r -> Some r
            | None -> scan_rows cap
          in
          match pick with
          | None ->
              raise (Too_small "no free device left for a complement inversion")
          | Some r ->
              Hashtbl.replace wave_inv_rows r ();
              let site = take r in
              let reg = reg_at site in
              temp site reg;
              (reg, r)
        in
        let operand_reg pos s =
          let n = M.node_of s and c = M.is_compl s in
          match M.kind mig n with
          | M.Const ->
              let r = alloc_temp () in
              load := Isa.Load (r, Isa.Const c) :: !load;
              (* signal 1 is ¬const0 = true *)
              r
          | M.Pi i ->
              if not c then begin
                let r = alloc_temp () in
                load := Isa.Load (r, Isa.Input i) :: !load;
                r
              end
              else begin
                match realization with
                | RC.Imp ->
                    let h = alloc_temp () in
                    let inv = alloc_temp () in
                    load := Isa.Load (h, Isa.Input i) :: Isa.Reset inv :: !load;
                    imp_compl.(pos) <-
                      Isa.Imp { src = h; dst = inv } :: imp_compl.(pos);
                    inv
                | RC.Maj ->
                    let h = alloc_temp () in
                    let inv, inv_row =
                      if pos = 2 then begin
                        Hashtbl.replace wave_inv_rows row ();
                        (alloc_temp (), row)
                      end
                      else alloc_inv_spread ()
                    in
                    load := Isa.Load (h, Isa.Input i) :: Isa.Reset inv :: !load;
                    maj_inv :=
                      (inv_row, invert_micro realization ~src:h ~dst:inv)
                      :: !maj_inv;
                    inv
              end
          | M.Gate -> (
              let src = Hashtbl.find result_reg n in
              let r =
                if not c then begin
                  let r = alloc_temp () in
                  load := Isa.Load (r, Isa.Reg src) :: !load;
                  r
                end
                else
                  match realization with
                  | RC.Imp ->
                      (* the producer lives on another row: stage a copy on
                         this gate's row so the inversion IMP is row-local *)
                      let h = alloc_temp () in
                      let inv = alloc_temp () in
                      load := Isa.Load (h, Isa.Reg src) :: Isa.Reset inv :: !load;
                      imp_compl.(pos) <-
                        Isa.Imp { src = h; dst = inv } :: imp_compl.(pos);
                      inv
                  | RC.Maj ->
                      let inv, inv_row =
                        if pos = 2 then begin
                          Hashtbl.replace wave_inv_rows row ();
                          (alloc_temp (), row)
                        end
                        else alloc_inv_spread ()
                      in
                      load := Isa.Reset inv :: !load;
                      maj_inv :=
                        (inv_row, invert_micro realization ~src ~dst:inv)
                        :: !maj_inv;
                      inv
              in
              consumed n;
              r)
        in
        let add_gate_micro i m = gate_steps.(i) <- m :: gate_steps.(i) in
        let f = M.fanins mig g in
        let x = operand_reg 0 f.(0) in
        let y = operand_reg 1 f.(1) in
        let z = operand_reg 2 f.(2) in
        (match realization with
        | RC.Imp ->
            let a_site, a = alloc_here () in
            let c = alloc_temp () in
            let d = alloc_temp () in
            load := Isa.Reset a :: Isa.Reset c :: Isa.Reset d :: !load;
            (* steps 02–10 of §III-A.1 (x=X, y=Y, z=Z, a=A, c=B, d=C) *)
            add_gate_micro 0 (Isa.Imp { src = x; dst = a });
            add_gate_micro 1 (Isa.Imp { src = y; dst = c });
            add_gate_micro 2 (Isa.Imp { src = a; dst = y });
            add_gate_micro 3 (Isa.Imp { src = x; dst = c });
            add_gate_micro 4 (Isa.Imp { src = y; dst = d });
            add_gate_micro 5 (Isa.Imp { src = z; dst = d });
            add_gate_micro 6 (Isa.Reset a);
            add_gate_micro 7 (Isa.Imp { src = c; dst = a });
            add_gate_micro 8 (Isa.Imp { src = d; dst = a });
            Hashtbl.replace result_reg g a;
            Hashtbl.replace result_site g a_site
        | RC.Maj ->
            let a = alloc_temp () in
            load := Isa.Reset a :: !load;
            (* step 02: A ← ¬y; step 03: Z ← M(x, y, z) *)
            add_gate_micro 0
              (Isa.Maj_pulse { p = Isa.Const true; q = Isa.Reg y; dst = a });
            add_gate_micro 1
              (Isa.Maj_pulse { p = Isa.Reg x; q = Isa.Reg a; dst = z });
            Hashtbl.replace result_reg g z;
            Hashtbl.replace result_site g (Hashtbl.find site_of_reg z);
            (* z doubles as the result: exclude it from the temps *)
            wave_temps := List.filter (fun (_, r) -> r <> z) !wave_temps);
        (* reserve the readout-inversion device for a complemented output of
           this gate on its own row, preset alongside this wave's loads *)
        (match Hashtbl.find_opt compl_po_imp g with
        | Some (invr, rowr) when !invr = None ->
            let _, inv = alloc_here () in
            invr := Some inv;
            rowr := Some row;
            Hashtbl.replace readout_inv_rows row ();
            load := Isa.Reset inv :: !load
        | _ -> ());
        match Hashtbl.find_opt refcount g with
        | Some k when k > 0 -> ()
        | _ ->
            if not (Hashtbl.mem pinned g) then
              pending := Hashtbl.find result_site g :: !pending)
      placed;
    let extra = !first_load_extra in
    first_load_extra := [];
    push_step (List.rev !load @ extra);
    (match realization with
    | RC.Imp -> Array.iter (fun l -> push_step (List.rev l)) imp_compl
    | RC.Maj -> List.iter push_step (batch_by_row (List.rev !maj_inv)));
    Array.iter (fun st -> push_step (List.rev st)) gate_steps;
    List.iter (fun (site, _) -> pending := site :: !pending) !wave_temps
  in
  for l = 1 to depth do
    let remaining = ref by_level.(l) in
    while !remaining <> [] do
      release_pending ();
      incr waves;
      let used_rows = Hashtbl.create 17 in
      let placed = ref [] and deferred = ref [] in
      List.iter
        (fun g ->
          let need = row_need g in
          if need > columns then
            raise
              (Too_small
                 (Printf.sprintf
                    "gate %d needs %d devices on one row but the crossbar has \
                     only %d columns"
                    g need columns));
          let prefer_unused_by_inv =
            match Hashtbl.find_opt compl_po_imp g with
            | Some (invr, _) -> !invr = None
            | None -> false
          in
          let ok r =
            (not (Hashtbl.mem used_rows r)) && has_capacity (state r) need
          in
          let pick =
            if prefer_unused_by_inv then
              match
                scan_rows (fun r ->
                    ok r && not (Hashtbl.mem readout_inv_rows r))
              with
              | Some r -> Some r
              | None -> scan_rows ok
            else scan_rows ok
          in
          match pick with
          | Some r ->
              Hashtbl.replace used_rows r ();
              placed := (g, r) :: !placed
          | None -> deferred := g :: !deferred)
        !remaining;
      (match !placed with
      | [] ->
          let g = List.hd !remaining in
          raise
            (Too_small
               (Printf.sprintf
                  "level %d: gate %d needs %d devices on one row and no %dx%d \
                   row can host it (live values occupy the array)"
                  l g (row_need g) rows columns))
      | _ -> ());
      emit_wave (List.rev !placed);
      remaining := List.rev !deferred
    done
  done;
  (* Degenerate case: no gate wave to merge the presets into. *)
  if !first_load_extra <> [] then begin
    push_step !first_load_extra;
    first_load_extra := []
  end;
  (* Final readout inversions, batched so each step is row-disjoint (a single
     step whenever the reservations above found distinct rows). *)
  let final_items =
    List.filter_map
      (fun plan ->
        match plan with
        | Inv_of_reg { h; inv; row } ->
            Some (row, invert_micro realization ~src:h ~dst:inv)
        | Inv_of_gate { n; inv; row } ->
            let src = Hashtbl.find result_reg n in
            Some
              ( Option.get !row,
                invert_micro realization ~src ~dst:(Option.get !inv) )
        | Direct _ | Gate_result _ -> None)
      (List.rev !inv_plans)
  in
  List.iter push_step (batch_by_row final_items);
  let outputs =
    Array.map
      (function
        | Direct o -> o
        | Gate_result n -> Isa.Reg (Hashtbl.find result_reg n)
        | Inv_of_reg { inv; _ } -> Isa.Reg inv
        | Inv_of_gate { inv; _ } -> Isa.Reg (Option.get !inv))
      po_plans
  in
  let program =
    {
      Program.num_inputs;
      num_regs = !next_reg;
      steps = List.rev !steps_rev;
      outputs;
    }
  in
  let n = max 1 !next_reg in
  let row_of = Array.make n 0 and column_of = Array.make n 0 in
  for r = 0 to !next_reg - 1 do
    let row, col = Hashtbl.find site_of_reg r in
    row_of.(r) <- row;
    column_of.(r) <- col
  done;
  let max_col =
    let m = ref 0 in
    for r = 0 to !opened - 1 do
      m := max !m (state r).next_col
    done;
    !m
  in
  (program, row_of, column_of, !waves, max_col)

let fit_rows realization mig lv =
  let depth = lv.L.depth in
  let widths = ref 0 and compl_max = ref 0 in
  for i = 1 to depth do
    if i < Array.length lv.L.gates_per_level then
      widths := max !widths lv.L.gates_per_level.(i);
    if i < Array.length lv.L.compl_per_level then
      compl_max := max !compl_max lv.L.compl_per_level.(i)
  done;
  (* one row per distinct complemented output signal keeps the readout
     inversion a single step *)
  let readout = Hashtbl.create 17 in
  Array.iter
    (fun s ->
      if M.is_compl s then
        match M.kind mig (M.node_of s) with
        | M.Pi _ | M.Gate -> Hashtbl.replace readout s ()
        | M.Const -> ())
    (M.pos mig);
  let compl_rows =
    match realization with RC.Imp -> 0 | RC.Maj -> !compl_max
  in
  max 1 (max !widths (max compl_rows (Hashtbl.length readout)))

let fit ?schedule ?rows realization mig =
  let lv = match schedule with Some lv -> lv | None -> L.compute mig in
  let rows =
    match rows with
    | Some r -> max 1 r
    | None -> fit_rows realization mig lv
  in
  let _, _, _, _, max_col =
    run_waves ~rows ~columns:max_int realization mig lv
  in
  RC.Crossbar { rows; columns = max max_col 1 }

let compile ?schedule ~arch realization mig =
  match arch with
  | RC.Unbounded_serial ->
      Error "the crossbar backend needs a crossbar geometry, not 'serial'"
  | RC.Crossbar { rows; columns } -> (
      match RC.validate_arch arch with
      | Error e -> Error e
      | Ok () -> (
          let lv = match schedule with Some lv -> lv | None -> L.compute mig in
          match run_waves ~rows ~columns realization mig lv with
          | exception Too_small msg -> Error msg
          | program, row_of, column_of, waves, _ ->
              let devices = program.Program.num_regs in
              let capacity = rows * columns in
              let utilization =
                float_of_int devices /. float_of_int capacity
              in
              let placement =
                { Placement.rows; columns; row_of; column_of; utilization }
              in
              let measured =
                {
                  RC.devices;
                  latency = Program.num_steps program;
                  utilization;
                }
              in
              Ok
                {
                  program;
                  placement;
                  serial = RC.of_levels realization lv;
                  analytic = RC.triple_of_levels ~arch realization lv;
                  measured;
                  waves;
                }))
