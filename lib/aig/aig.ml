open Logic

type signal = int
type kind = Const | Pi of int | And

type node = { kind : kind; f0 : signal; f1 : signal }

type t = {
  mutable nodes : node array;
  mutable n : int;
  mutable pis : int array;
  mutable npis : int;
  mutable pout : signal array;
  mutable npos : int;
  strash : (int * int, int) Hashtbl.t;
  (* The graph is append-only, so the PO-reachable region only grows and the
     topological order of already-reached nodes never changes: [order] is a
     postorder buffer extended at [add_po], [reached] the visited marks, and
     [nord] doubles as the O(1) live AND count. *)
  mutable reached : bool array;
  mutable order : int array;
  mutable nord : int;
  mutable dstack : int array;
}

let const0 = 0
let const1 = 1
let not_ s = s lxor 1
let node_of s = s lsr 1
let is_compl s = s land 1 = 1
let signal_of n c = (n lsl 1) lor if c then 1 else 0

let dummy = { kind = Const; f0 = 0; f1 = 0 }

let create () =
  let t =
    {
      nodes = Array.make 64 dummy;
      n = 1;
      pis = Array.make 8 0;
      npis = 0;
      pout = Array.make 8 0;
      npos = 0;
      strash = Hashtbl.create 997;
      reached = Array.make 64 false;
      order = Array.make 64 0;
      nord = 0;
      dstack = Array.make 64 0;
    }
  in
  t.nodes.(0) <- dummy;
  t

let grow arr n default =
  if n >= Array.length arr then begin
    let bigger = Array.make (2 * Array.length arr) default in
    Array.blit arr 0 bigger 0 n;
    bigger
  end
  else arr

let push t node =
  t.nodes <- grow t.nodes t.n dummy;
  t.nodes.(t.n) <- node;
  t.n <- t.n + 1;
  t.n - 1

let add_pi t =
  let id = push t { kind = Pi t.npis; f0 = 0; f1 = 0 } in
  t.pis <- grow t.pis t.npis 0;
  t.pis.(t.npis) <- id;
  t.npis <- t.npis + 1;
  signal_of id false

let and_ t a b =
  let a, b = if a <= b then (a, b) else (b, a) in
  if a = const0 then const0
  else if a = const1 then b
  else if a = b then a
  else if a lxor b = 1 then const0
  else
    match Hashtbl.find_opt t.strash (a, b) with
    | Some n -> signal_of n false
    | None ->
        let id = push t { kind = And; f0 = a; f1 = b } in
        Hashtbl.replace t.strash (a, b) id;
        signal_of id false

let or_ t a b = not_ (and_ t (not_ a) (not_ b))
let xor_ t a b = or_ t (and_ t a (not_ b)) (and_ t (not_ a) b)
let mux t s a b = or_ t (and_ t s a) (and_ t (not_ s) b)
let maj3 t a b c = or_ t (and_ t a b) (or_ t (and_ t a c) (and_ t b c))

let ensure_reached t =
  if Array.length t.reached < t.n then begin
    let r = Array.make (max t.n (2 * Array.length t.reached)) false in
    Array.blit t.reached 0 r 0 (Array.length t.reached);
    t.reached <- r
  end

let stack_push t sp v =
  if sp >= Array.length t.dstack then begin
    let bigger = Array.make (2 * Array.length t.dstack) 0 in
    Array.blit t.dstack 0 bigger 0 sp;
    t.dstack <- bigger
  end;
  t.dstack.(sp) <- v

let emit t n =
  t.order <- grow t.order t.nord 0;
  t.order.(t.nord) <- n;
  t.nord <- t.nord + 1

(* Iterative postorder DFS from [n0] extending the maintained order; visits
   [f0] before [f1], the same emission sequence as a recursive traversal.
   Stack states pack [node * 4 + next_child_index]. *)
let reach t n0 =
  ensure_reached t;
  if not t.reached.(n0) then begin
    t.reached.(n0) <- true;
    match t.nodes.(n0).kind with
    | Const | Pi _ -> ()
    | And ->
        stack_push t 0 (n0 * 4);
        let sp = ref 1 in
        while !sp > 0 do
          let v = t.dstack.(!sp - 1) in
          let n = v lsr 2 and idx = v land 3 in
          if idx = 2 then begin
            decr sp;
            emit t n
          end
          else begin
            t.dstack.(!sp - 1) <- v + 1;
            let node = t.nodes.(n) in
            let m = node_of (if idx = 0 then node.f0 else node.f1) in
            if not t.reached.(m) then begin
              t.reached.(m) <- true;
              if t.nodes.(m).kind = And then begin
                stack_push t !sp (m * 4);
                incr sp
              end
            end
          end
        done
  end

let add_po t s =
  t.pout <- grow t.pout t.npos 0;
  t.pout.(t.npos) <- s;
  t.npos <- t.npos + 1;
  reach t (node_of s);
  t.npos - 1

let kind t n = t.nodes.(n).kind
let fanins t n = (t.nodes.(n).f0, t.nodes.(n).f1)
let num_pis t = t.npis
let num_pos t = t.npos
let pi t i = signal_of t.pis.(i) false
let po t i = t.pout.(i)
let pos t = Array.sub t.pout 0 t.npos

let topo_order t =
  let rec build i acc = if i < 0 then acc else build (i - 1) (t.order.(i) :: acc) in
  build (t.nord - 1) []

let size t = t.nord

let levels t =
  let level = Array.make t.n 0 in
  List.iter
    (fun n ->
      let node = t.nodes.(n) in
      level.(n) <- 1 + max level.(node_of node.f0) level.(node_of node.f1))
    (topo_order t);
  let depth =
    Array.fold_left (fun acc s -> max acc level.(node_of s)) 0 (pos t)
  in
  (level, depth)

let simulate t ins =
  if Array.length ins <> t.npis then invalid_arg "Aig.simulate: input count";
  let width = if Array.length ins = 0 then 1 else Bitvec.width ins.(0) in
  let values = Array.make t.n (Bitvec.create width) in
  for i = 0 to t.npis - 1 do
    values.(t.pis.(i)) <- ins.(i)
  done;
  let value_of s =
    let v = values.(node_of s) in
    if is_compl s then Bitvec.bnot v else v
  in
  List.iter
    (fun n ->
      let node = t.nodes.(n) in
      values.(n) <- Bitvec.band (value_of node.f0) (value_of node.f1))
    (topo_order t);
  Array.map value_of (pos t)

let eval t a =
  let ins =
    Array.init t.npis (fun i ->
        let bv = Bitvec.create 1 in
        Bitvec.set bv 0 a.(i);
        bv)
  in
  Array.map (fun bv -> Bitvec.get bv 0) (simulate t ins)

let truth_tables t =
  let n = t.npis in
  if n > Truth_table.max_vars then invalid_arg "Aig.truth_tables";
  let ins = Array.init n (fun i -> Truth_table.bitvec (Truth_table.var n i)) in
  simulate t ins
  |> Array.map (fun bv ->
         let tt = Truth_table.create n in
         for w = 0 to Bitvec.num_words bv - 1 do
           Bitvec.set_word (Truth_table.bitvec tt) w (Bitvec.word bv w)
         done;
         tt)

let pp_stats ppf t =
  let _, depth = levels t in
  Format.fprintf ppf "pis=%d pos=%d ands=%d depth=%d" t.npis t.npos (size t) depth
