(** And-Inverter Graphs.

    The substrate of the AIG-based RRAM-synthesis baseline [12] (Bürger et
    al., Reed-Muller 2013): two-input AND nodes with complemented edges,
    structurally hashed.  Signals follow the same encoding as {!Core.Mig}:
    [2*node + complement], node 0 is constant false. *)

type t
type signal = int

val const0 : signal
val const1 : signal
val not_ : signal -> signal
val node_of : signal -> int
val is_compl : signal -> bool
val signal_of : int -> bool -> signal

val create : unit -> t
val add_pi : t -> signal
val and_ : t -> signal -> signal -> signal
(** Structural hashing plus the standard one-level simplifications
    ([a·a = a], [a·¬a = 0], constants). *)

val or_ : t -> signal -> signal -> signal
val xor_ : t -> signal -> signal -> signal
val mux : t -> signal -> signal -> signal -> signal
val maj3 : t -> signal -> signal -> signal -> signal
val add_po : t -> signal -> int

type kind = Const | Pi of int | And

val kind : t -> int -> kind
val fanins : t -> int -> signal * signal
val num_pis : t -> int
val num_pos : t -> int
val pi : t -> int -> signal
val po : t -> int -> signal
val pos : t -> signal array

val topo_order : t -> int list
(** Live AND nodes reachable from the outputs, fanins first.  Maintained
    incrementally (the graph is append-only, so the reachable region only
    grows at {!add_po}); each call materializes the list in O(size) with an
    iterative, stack-safe traversal underneath. *)

val size : t -> int
(** Live AND-node count, O(1). *)

val levels : t -> int array * int
(** Per-node levels and the depth over outputs. *)

val simulate : t -> Logic.Bitvec.t array -> Logic.Bitvec.t array
val eval : t -> bool array -> bool array
val truth_tables : t -> Logic.Truth_table.t array

val pp_stats : Format.formatter -> t -> unit
