module Json = Json

let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag
let now_ns () = Monotonic_clock.now ()

(* Trace timestamps are reported relative to this origin so they stay small
   and readable in trace viewers. *)
let epoch = ref (now_ns ())

(* ------------------------------------------------------------------ *)
(* Instruments                                                         *)
(* ------------------------------------------------------------------ *)

type counter = { c_name : string; mutable c_count : int }
type gauge = { g_name : string; mutable g_value : float; mutable g_set : bool }

type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  h_buckets : (int, int) Hashtbl.t;
}

type series = {
  s_name : string;
  (* most recent first; each sample keeps its monotonic timestamp so it can
     be exported as a Chrome counter event *)
  mutable s_samples : (int64 * (string * float) list) list;
}

type span_event = {
  e_name : string;
  e_cat : string;
  e_tid : int;  (* owning domain id *)
  e_path : string list;  (* root-first enclosing spans, [e_name] last *)
  e_start : int64;
  e_dur : int64;
  e_args : (string * Json.t) list;
}

(* All instrument state lives in a per-domain [store].  The main domain owns
   the process-global registry that [reset]/export operate on; every other
   domain (a Par worker) records into a domain-local store reachable through
   DLS, which Par hands back to the pool owner at shutdown for merging.
   Handles created at module-initialization time on the main domain are
   shared records, so mutation entry points re-route by instrument *name*
   when running off the main domain — a worker never writes to main-domain
   state, and no lock is needed anywhere on the recording path. *)
type store = {
  counters_tbl : (string, counter) Hashtbl.t;
  gauges_tbl : (string, gauge) Hashtbl.t;
  histograms_tbl : (string, histogram) Hashtbl.t;
  series_tbl : (string, series) Hashtbl.t;
  mutable events : span_event list;
  (* innermost-first names of the spans currently open on this domain *)
  mutable span_stack : string list;
}

let fresh_store () =
  {
    counters_tbl = Hashtbl.create 64;
    gauges_tbl = Hashtbl.create 16;
    histograms_tbl = Hashtbl.create 16;
    series_tbl = Hashtbl.create 16;
    events = [];
    span_stack = [];
  }

let global_store = fresh_store ()
let local_key = Domain.DLS.new_key fresh_store

let store () =
  if Domain.is_main_domain () then global_store else Domain.DLS.get local_key

let registered tbl make name =
  match Hashtbl.find_opt tbl name with
  | Some v -> v
  | None ->
      let v = make name in
      Hashtbl.replace tbl name v;
      v

let make_counter name = { c_name = name; c_count = 0 }
let make_gauge name = { g_name = name; g_value = 0.0; g_set = false }

let make_histogram name =
  {
    h_name = name;
    h_count = 0;
    h_sum = 0;
    h_min = max_int;
    h_max = min_int;
    h_buckets = Hashtbl.create 16;
  }

let make_series name = { s_name = name; s_samples = [] }
let counter name = registered (store ()).counters_tbl make_counter name
let gauge name = registered (store ()).gauges_tbl make_gauge name
let histogram name = registered (store ()).histograms_tbl make_histogram name
let series name = registered (store ()).series_tbl make_series name

(* Route a (possibly main-domain) handle to the calling domain's twin. *)
let own_counter c = if Domain.is_main_domain () then c else counter c.c_name
let own_gauge g = if Domain.is_main_domain () then g else gauge g.g_name
let own_histogram h = if Domain.is_main_domain () then h else histogram h.h_name
let own_series s = if Domain.is_main_domain () then s else series s.s_name

let incr ?(by = 1) c =
  if !enabled_flag then begin
    let c = own_counter c in
    c.c_count <- c.c_count + by
  end

let count c = c.c_count

let set_gauge g v =
  if !enabled_flag then begin
    let g = own_gauge g in
    g.g_value <- v;
    g.g_set <- true
  end

let gauge_value g = g.g_value

let observe_into h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  Hashtbl.replace h.h_buckets v
    (1 + Option.value ~default:0 (Hashtbl.find_opt h.h_buckets v))

let observe h v = if !enabled_flag then observe_into (own_histogram h) v
let histogram_count h = h.h_count

let histogram_buckets h =
  Hashtbl.fold (fun v c acc -> (v, c) :: acc) h.h_buckets []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Exact nearest-rank percentile over the per-value buckets: the smallest
   observed value whose cumulative count reaches ceil(p/100 * n). *)
let histogram_percentile h p =
  if h.h_count = 0 then 0.0
  else begin
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let rank =
      max 1 (int_of_float (Float.ceil (p /. 100.0 *. float_of_int h.h_count)))
    in
    let rec walk cum = function
      | [] -> float_of_int h.h_max
      | (v, c) :: rest -> if cum + c >= rank then float_of_int v else walk (cum + c) rest
    in
    walk 0 (histogram_buckets h)
  end

let sample s fields =
  if !enabled_flag then begin
    let s = own_series s in
    s.s_samples <- (now_ns (), fields) :: s.s_samples
  end

let samples s = List.rev_map snd s.s_samples

let emit_span ?(cat = "") ?(args = []) name ~t0 =
  if !enabled_flag then begin
    let t1 = now_ns () in
    let st = store () in
    st.events <-
      {
        e_name = name;
        e_cat = cat;
        e_tid = (Domain.self () :> int);
        e_path = List.rev (name :: st.span_stack);
        e_start = t0;
        e_dur = Int64.sub t1 t0;
        e_args = args;
      }
      :: st.events
  end

let with_span ?cat ?args name f =
  if not !enabled_flag then f ()
  else begin
    let st = store () in
    let t0 = now_ns () in
    st.span_stack <- name :: st.span_stack;
    let pop () =
      (* the event's own path is stack + name, so pop before emitting *)
      match st.span_stack with
      | top :: rest when top == name -> st.span_stack <- rest
      | stack ->
          (* a nested reset dropped the stack; don't corrupt what's left *)
          st.span_stack <- stack
    in
    match f () with
    | v ->
        pop ();
        emit_span ?cat ?args name ~t0;
        v
    | exception e ->
        pop ();
        emit_span ?cat ?args name ~t0;
        raise e
  end

(* Run [f] with the calling domain's span stack cleared, so the spans it
   records are rooted at top level no matter where the call site sits.  The
   [Par] pool wraps every task in this: a task inlined on the main domain
   (jobs = 1) and the same task on a worker then record identical paths,
   which is what makes the collapsed-stack export identical for every
   [--jobs]. *)
let with_task_root f =
  if not !enabled_flag then f ()
  else begin
    let st = store () in
    let saved = st.span_stack in
    st.span_stack <- [];
    Fun.protect ~finally:(fun () -> (store ()).span_stack <- saved) f
  end

let reset () =
  let st = store () in
  Hashtbl.iter (fun _ c -> c.c_count <- 0) st.counters_tbl;
  Hashtbl.iter
    (fun _ g ->
      g.g_value <- 0.0;
      g.g_set <- false)
    st.gauges_tbl;
  Hashtbl.iter
    (fun _ h ->
      h.h_count <- 0;
      h.h_sum <- 0;
      h.h_min <- max_int;
      h.h_max <- min_int;
      Hashtbl.reset h.h_buckets)
    st.histograms_tbl;
  Hashtbl.iter (fun _ s -> s.s_samples <- []) st.series_tbl;
  st.events <- [];
  st.span_stack <- [];
  epoch := now_ns ()

(* ------------------------------------------------------------------ *)
(* Worker-domain buffers                                               *)
(* ------------------------------------------------------------------ *)

module Worker = struct
  type snapshot = store

  let capture () =
    if Domain.is_main_domain () then fresh_store ()
    else begin
      let s = Domain.DLS.get local_key in
      Domain.DLS.set local_key (fresh_store ());
      s
    end

  let merge snap =
    let dst = store () in
    Hashtbl.iter
      (fun name (c : counter) ->
        let d = registered dst.counters_tbl make_counter name in
        d.c_count <- d.c_count + c.c_count)
      snap.counters_tbl;
    Hashtbl.iter
      (fun name (g : gauge) ->
        if g.g_set then begin
          let d = registered dst.gauges_tbl make_gauge name in
          d.g_value <- g.g_value;
          d.g_set <- true
        end)
      snap.gauges_tbl;
    Hashtbl.iter
      (fun name (h : histogram) ->
        let d = registered dst.histograms_tbl make_histogram name in
        Hashtbl.iter
          (fun v n ->
            Hashtbl.replace d.h_buckets v
              (n + Option.value ~default:0 (Hashtbl.find_opt d.h_buckets v)))
          h.h_buckets;
        d.h_count <- d.h_count + h.h_count;
        d.h_sum <- d.h_sum + h.h_sum;
        if h.h_count > 0 then begin
          d.h_min <- min d.h_min h.h_min;
          d.h_max <- max d.h_max h.h_max
        end)
      snap.histograms_tbl;
    Hashtbl.iter
      (fun name (s : series) ->
        if s.s_samples <> [] then begin
          let d = registered dst.series_tbl make_series name in
          (* keep the newest-first invariant across the interleaved domains *)
          d.s_samples <-
            List.sort
              (fun (a, _) (b, _) -> Int64.compare b a)
              (s.s_samples @ d.s_samples)
        end)
      snap.series_tbl;
    dst.events <- snap.events @ dst.events
end

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

let sorted_names tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare

let counters () =
  let st = store () in
  List.map
    (fun n -> (n, (Hashtbl.find st.counters_tbl n).c_count))
    (sorted_names st.counters_tbl)

(* ------------------------------------------------------------------ *)
(* Span tree                                                           *)
(* ------------------------------------------------------------------ *)

type span_node = {
  sn_name : string;
  sn_path : string list;
  sn_count : int;
  sn_total_ns : int64;  (* inclusive: wall time with children *)
  sn_self_ns : int64;  (* exclusive: inclusive minus direct children *)
  sn_children : span_node list;  (* sorted by name *)
}

let parent_path path =
  match List.rev path with [] | [ _ ] -> None | _ :: rev -> Some (List.rev rev)

(* Aggregate the recorded events into a forest keyed by full span path.
   Implicit nodes (a prefix that never completed as an event of its own,
   e.g. a span still open at export time) get count 0 and inherit their
   children's total, so inclusive >= exclusive holds everywhere. *)
let span_tree () =
  let agg : (string list, int * int64) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let c, t = Option.value ~default:(0, 0L) (Hashtbl.find_opt agg e.e_path) in
      Hashtbl.replace agg e.e_path (c + 1, Int64.add t e.e_dur))
    (store ()).events;
  (* prefix-close the path set and record parent -> children edges *)
  let known : (string list, unit) Hashtbl.t = Hashtbl.create 64 in
  let children : (string list, string list list) Hashtbl.t = Hashtbl.create 64 in
  let rec close path =
    if not (Hashtbl.mem known path) then begin
      Hashtbl.replace known path ();
      match parent_path path with
      | None -> ()
      | Some parent ->
          Hashtbl.replace children parent
            (path :: Option.value ~default:[] (Hashtbl.find_opt children parent));
          close parent
    end
  in
  Hashtbl.iter (fun path _ -> close path) agg;
  let rec build path =
    let count, total = Option.value ~default:(0, 0L) (Hashtbl.find_opt agg path) in
    let kids =
      Option.value ~default:[] (Hashtbl.find_opt children path)
      |> List.sort_uniq compare |> List.map build
    in
    let kids_total =
      List.fold_left (fun acc k -> Int64.add acc k.sn_total_ns) 0L kids
    in
    let total = if count = 0 then kids_total else total in
    {
      sn_name = (match List.rev path with n :: _ -> n | [] -> "");
      sn_path = path;
      sn_count = count;
      sn_total_ns = total;
      sn_self_ns = Int64.max 0L (Int64.sub total kids_total);
      sn_children = kids;
    }
  in
  Hashtbl.fold (fun path _ acc -> match path with [ _ ] -> path :: acc | _ -> acc) known []
  |> List.sort_uniq compare |> List.map build

let rec fold_span_tree f acc node =
  List.fold_left (fold_span_tree f) (f acc node) node.sn_children

(* flamegraph.pl-compatible collapsed stacks: one "a;b;c WEIGHT" line per
   path, lexicographically sorted.  [`Calls] weights by call count and is
   fully deterministic for a deterministic workload — byte-identical for
   every --jobs (the CI pins this); [`Time_us] weights by exclusive self
   time in microseconds, the usual flame-graph view. *)
let collapsed_stacks ?(weight = `Time_us) () =
  let lines =
    List.fold_left
      (fun acc root ->
        fold_span_tree
          (fun acc n ->
            let w =
              match weight with
              | `Calls -> n.sn_count
              | `Time_us -> Int64.to_int (Int64.div n.sn_self_ns 1_000L)
            in
            if w <= 0 then acc
            else Printf.sprintf "%s %d" (String.concat ";" n.sn_path) w :: acc)
          acc root)
      [] (span_tree ())
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun l ->
      Buffer.add_string buf l;
      Buffer.add_char buf '\n')
    (List.sort compare lines);
  Buffer.contents buf

let rec span_node_json n =
  Json.Assoc
    (("name", Json.String n.sn_name)
     :: ("count", Json.Int n.sn_count)
     :: ("total_ns", Json.Int (Int64.to_int n.sn_total_ns))
     :: ("self_ns", Json.Int (Int64.to_int n.sn_self_ns))
     ::
     (if n.sn_children = [] then []
      else [ ("children", Json.List (List.map span_node_json n.sn_children)) ]))

let span_tree_json () = Json.List (List.map span_node_json (span_tree ()))

type span_stat = { st_count : int; st_total : int64; st_self : int64 }

(* Flat per-name aggregates (metrics export, pp_report): totals by event,
   self time by summing the tree nodes that end in the name. *)
let span_stats () =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun e ->
      let prev =
        Option.value
          ~default:{ st_count = 0; st_total = 0L; st_self = 0L }
          (Hashtbl.find_opt tbl e.e_name)
      in
      Hashtbl.replace tbl e.e_name
        {
          prev with
          st_count = prev.st_count + 1;
          st_total = Int64.add prev.st_total e.e_dur;
        })
    (store ()).events;
  List.iter
    (fun root ->
      fold_span_tree
        (fun () n ->
          match Hashtbl.find_opt tbl n.sn_name with
          | None -> ()
          | Some prev ->
              Hashtbl.replace tbl n.sn_name
                { prev with st_self = Int64.add prev.st_self n.sn_self_ns })
        () root)
    (span_tree ());
  Hashtbl.fold (fun name st acc -> (name, st) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b.st_total a.st_total)

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let histogram_summary_json h =
  let mean = if h.h_count = 0 then 0.0 else float_of_int h.h_sum /. float_of_int h.h_count in
  [
    ("count", Json.Int h.h_count);
    ("sum", Json.Int h.h_sum);
    ("min", Json.Int (if h.h_count = 0 then 0 else h.h_min));
    ("max", Json.Int (if h.h_count = 0 then 0 else h.h_max));
    ("mean", Json.Float mean);
    ("p50", Json.Float (histogram_percentile h 50.0));
    ("p90", Json.Float (histogram_percentile h 90.0));
    ("p99", Json.Float (histogram_percentile h 99.0));
  ]

let histogram_json h =
  Json.Assoc
    (histogram_summary_json h
    @ [
        ( "buckets",
          Json.List
            (List.map
               (fun (v, c) -> Json.List [ Json.Int v; Json.Int c ])
               (histogram_buckets h)) );
      ])

let metrics_json () =
  let st = store () in
  let counters_json =
    Json.Assoc (List.map (fun (n, c) -> (n, Json.Int c)) (counters ()))
  in
  let gauges_json =
    Json.Assoc
      (List.filter_map
         (fun n ->
           let g = Hashtbl.find st.gauges_tbl n in
           if g.g_set then Some (n, Json.Float g.g_value) else None)
         (sorted_names st.gauges_tbl))
  in
  let histograms_json =
    Json.Assoc
      (List.map
         (fun n -> (n, histogram_json (Hashtbl.find st.histograms_tbl n)))
         (sorted_names st.histograms_tbl))
  in
  let series_json =
    Json.Assoc
      (List.map
         (fun n ->
           let s = Hashtbl.find st.series_tbl n in
           ( n,
             Json.List
               (List.map
                  (fun fields ->
                    Json.Assoc (List.map (fun (k, v) -> (k, Json.Float v)) fields))
                  (samples s)) ))
         (sorted_names st.series_tbl))
  in
  let spans_json =
    Json.Assoc
      (List.map
         (fun (name, st) ->
           ( name,
             Json.Assoc
               [
                 ("count", Json.Int st.st_count);
                 ("total_ns", Json.Int (Int64.to_int st.st_total));
                 ("self_ns", Json.Int (Int64.to_int st.st_self));
                 ( "mean_ns",
                   Json.Float
                     (if st.st_count = 0 then 0.0
                      else Int64.to_float st.st_total /. float_of_int st.st_count) );
               ] ))
         (span_stats ()))
  in
  Json.Assoc
    [
      ("counters", counters_json);
      ("gauges", gauges_json);
      ("histograms", histograms_json);
      ("series", series_json);
      ("spans", spans_json);
    ]

let us_since_epoch ts = Int64.to_float (Int64.sub ts !epoch) /. 1_000.0

let chrome_trace_json () =
  let st = store () in
  let common name cat tid ts =
    [
      ("name", Json.String name);
      ("cat", Json.String (if cat = "" then "default" else cat));
      ("pid", Json.Int 1);
      ("tid", Json.Int tid);
      ("ts", Json.Float (us_since_epoch ts));
    ]
  in
  let complete_events =
    List.rev_map
      (fun e ->
        Json.Assoc
          (common e.e_name e.e_cat (e.e_tid + 1) e.e_start
          @ [
              ("ph", Json.String "X");
              ("dur", Json.Float (Int64.to_float e.e_dur /. 1_000.0));
            ]
          @ if e.e_args = [] then [] else [ ("args", Json.Assoc e.e_args) ]))
      st.events
  in
  let counter_events =
    List.concat_map
      (fun n ->
        let s = Hashtbl.find st.series_tbl n in
        List.rev_map
          (fun (ts, fields) ->
            Json.Assoc
              (common s.s_name "series" 1 ts
              @ [
                  ("ph", Json.String "C");
                  ( "args",
                    Json.Assoc (List.map (fun (k, v) -> (k, Json.Float v)) fields) );
                ]))
          s.s_samples)
      (sorted_names st.series_tbl)
  in
  let metadata =
    Json.Assoc
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 1);
        ("tid", Json.Int 1);
        ("args", Json.Assoc [ ("name", Json.String "migsyn") ]);
      ]
  in
  Json.Assoc
    [
      ("displayTimeUnit", Json.String "ms");
      ("traceEvents", Json.List ((metadata :: complete_events) @ counter_events));
    ]

let write_json path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string ~pretty:true json);
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Human report                                                        *)
(* ------------------------------------------------------------------ *)

let pp_report ppf () =
  let st = store () in
  let ms i64 = Int64.to_float i64 /. 1.0e6 in
  let spans = span_stats () in
  if spans <> [] then begin
    Format.fprintf ppf "@[<v>timed spans (by total wall time; self = without children):@,";
    List.iter
      (fun (name, st) ->
        Format.fprintf ppf
          "  %-44s %4d call%s  %9.2f ms total  %9.2f ms self  %9.3f ms/call@," name
          st.st_count
          (if st.st_count = 1 then " " else "s")
          (ms st.st_total) (ms st.st_self)
          (ms st.st_total /. float_of_int st.st_count))
      spans;
    Format.fprintf ppf "@]"
  end;
  let nonzero = List.filter (fun (_, c) -> c <> 0) (counters ()) in
  if nonzero <> [] then begin
    Format.fprintf ppf "@[<v>counters:@,";
    List.iter (fun (n, c) -> Format.fprintf ppf "  %-44s %10d@," n c) nonzero;
    Format.fprintf ppf "@]"
  end;
  let set_gauges =
    List.filter_map
      (fun n ->
        let g = Hashtbl.find st.gauges_tbl n in
        if g.g_set then Some (n, g.g_value) else None)
      (sorted_names st.gauges_tbl)
  in
  if set_gauges <> [] then begin
    Format.fprintf ppf "@[<v>gauges:@,";
    List.iter (fun (n, v) -> Format.fprintf ppf "  %-44s %10.1f@," n v) set_gauges;
    Format.fprintf ppf "@]"
  end;
  let live_hists =
    List.filter
      (fun n -> (Hashtbl.find st.histograms_tbl n).h_count > 0)
      (sorted_names st.histograms_tbl)
  in
  if live_hists <> [] then begin
    Format.fprintf ppf "@[<v>histograms:@,";
    List.iter
      (fun n ->
        let h = Hashtbl.find st.histograms_tbl n in
        Format.fprintf ppf
          "  %-44s n=%d min=%d max=%d mean=%.2f p50=%.0f p90=%.0f p99=%.0f@," n
          h.h_count h.h_min h.h_max
          (float_of_int h.h_sum /. float_of_int h.h_count)
          (histogram_percentile h 50.0) (histogram_percentile h 90.0)
          (histogram_percentile h 99.0))
      live_hists;
    Format.fprintf ppf "@]"
  end

(* ------------------------------------------------------------------ *)
(* Run manifests and the on-disk ledger                                *)
(* ------------------------------------------------------------------ *)

module Manifest = struct
  type state = {
    mutable m_tool : string;
    mutable m_sub : string;
    mutable m_argv : string list;
    mutable m_t0 : int64;
    mutable m_context : (string * Json.t) list;  (* reversed *)
    mutable m_results : (string * Json.t) list;  (* reversed *)
  }

  let state =
    { m_tool = "migsyn"; m_sub = ""; m_argv = []; m_t0 = 0L; m_context = []; m_results = [] }

  let start ~tool ~subcommand ?(argv = []) () =
    state.m_tool <- tool;
    state.m_sub <- subcommand;
    state.m_argv <- argv;
    state.m_t0 <- now_ns ();
    state.m_context <- [];
    state.m_results <- []

  let add_context key json = state.m_context <- (key, json) :: state.m_context
  let add_result key json = state.m_results <- (key, json) :: state.m_results

  let finish () =
    let st = store () in
    let wall =
      Int64.to_float (Int64.sub (now_ns ()) state.m_t0) /. 1e9
    in
    let counters_json =
      Json.Assoc
        (List.filter_map
           (fun (n, c) -> if c = 0 then None else Some (n, Json.Int c))
           (counters ()))
    in
    let histograms_json =
      Json.Assoc
        (List.filter_map
           (fun n ->
             let h = Hashtbl.find st.histograms_tbl n in
             if h.h_count = 0 then None
             else Some (n, Json.Assoc (histogram_summary_json h)))
           (sorted_names st.histograms_tbl))
    in
    Json.Assoc
      [
        ("schema", Json.String "migsyn-run/1");
        ("tool", Json.String state.m_tool);
        ("subcommand", Json.String state.m_sub);
        ("argv", Json.List (List.map (fun a -> Json.String a) state.m_argv));
        ("wall_seconds", Json.Float wall);
        ("context", Json.Assoc (List.rev state.m_context));
        ("results", Json.Assoc (List.rev state.m_results));
        ("spans", span_tree_json ());
        ("counters", counters_json);
        ("histograms", histograms_json);
      ]
end

module Ledger = struct
  let append path json =
    let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (Json.to_string ~pretty:false json);
        output_char oc '\n')

  let load path =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec loop lineno acc =
          match input_line ic with
          | exception End_of_file -> List.rev acc
          | line when String.trim line = "" -> loop (lineno + 1) acc
          | line -> (
              match Json.of_string line with
              | json -> loop (lineno + 1) (json :: acc)
              | exception Json.Parse_error msg ->
                  failwith (Printf.sprintf "%s:%d: %s" path lineno msg))
        in
        loop 1 [])
end
