type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    (* shortest representation that still round-trips through float_of_string *)
    let s = Printf.sprintf "%.12g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    (* keep a float marker so the value parses back as Float, not Int *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s else s ^ ".0"

let to_string ?(pretty = false) json =
  let buf = Buffer.create 1024 in
  let indent n = if pretty then Buffer.add_string buf ("\n" ^ String.make (2 * n) ' ') in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List elems ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i e ->
            if i > 0 then Buffer.add_char buf ',';
            indent (depth + 1);
            emit (depth + 1) e)
          elems;
        indent depth;
        Buffer.add_char buf ']'
    | Assoc [] -> Buffer.add_string buf "{}"
    | Assoc fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            indent (depth + 1);
            escape buf k;
            Buffer.add_char buf ':';
            if pretty then Buffer.add_char buf ' ';
            emit (depth + 1) v)
          fields;
        indent depth;
        Buffer.add_char buf '}'
  in
  emit 0 json;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let of_string text =
  let pos = ref 0 in
  let len = String.length text in
  let fail msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" !pos msg)) in
  let peek () = if !pos < len then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < len && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let n = String.length word in
    if !pos + n <= len && String.sub text !pos n = word then begin
      pos := !pos + n;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= len then fail "unterminated string"
      else
        let c = text.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
            if !pos >= len then fail "unterminated escape";
            let e = text.[!pos] in
            advance ();
            match e with
            | '"' | '\\' | '/' ->
                Buffer.add_char buf e;
                loop ()
            | 'n' ->
                Buffer.add_char buf '\n';
                loop ()
            | 't' ->
                Buffer.add_char buf '\t';
                loop ()
            | 'r' ->
                Buffer.add_char buf '\r';
                loop ()
            | 'b' ->
                Buffer.add_char buf '\b';
                loop ()
            | 'f' ->
                Buffer.add_char buf '\012';
                loop ()
            | 'u' ->
                if !pos + 4 > len then fail "truncated \\u escape";
                let hex = String.sub text !pos 4 in
                pos := !pos + 4;
                let code =
                  try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
                in
                (* Encode the code point as UTF-8 (no surrogate-pair
                   handling; the printer never emits them). *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end;
                loop ()
            | _ -> fail "unknown escape")
        | c ->
            Buffer.add_char buf c;
            loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && is_num_char text.[!pos] do
      advance ()
    done;
    let s = String.sub text start (!pos - start) in
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail ("bad number " ^ s))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elems []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Assoc []
        end
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Assoc (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Assoc fields -> ( match List.assoc_opt key fields with Some v -> v | None -> Null)
  | _ -> Null

let to_list = function List l -> l | _ -> []

let to_float = function Int i -> float_of_int i | Float f -> f | _ -> 0.0
