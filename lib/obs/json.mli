(** Minimal JSON tree, printer and parser.

    The observability layer emits two machine-readable artifacts — a Chrome
    trace-event file and a flat metrics file — and the test suite must be
    able to load them back without external dependencies, so this module
    provides both directions.  The printer emits standard JSON (UTF-8
    strings with the mandatory escapes, no trailing commas); the parser
    accepts standard JSON and is used by the round-trip tests. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

exception Parse_error of string
(** Raised by {!of_string} with a position-annotated message. *)

val to_string : ?pretty:bool -> t -> string
(** Non-finite floats are emitted as [null] (JSON has no representation for
    them). *)

val of_string : string -> t
(** @raise Parse_error on malformed input. *)

val member : string -> t -> t
(** [member key json] is the value bound to [key] in an [Assoc], or [Null]
    when absent or when [json] is not an object. *)

val to_list : t -> t list
(** The elements of a [List], or [[]] for any other constructor. *)

val to_float : t -> float
(** Numeric value of [Int] or [Float]; 0.0 otherwise. *)
