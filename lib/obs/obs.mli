(** Observability: spans, counters, gauges, histograms and trajectory
    series for the synthesis flow and the crossbar simulator.

    The layer is a process-global registry, {e disabled by default}: every
    recording entry point first reads one [bool ref], so an instrumented
    hot loop pays a single load-and-branch per event when observability is
    off (measured < 2% on the optimizer bench suite).  Enable it with
    {!set_enabled}[ true] — the CLI does this when [--trace]/[--metrics]
    are given and the [profile] subcommand always does.

    Instruments are created once (typically at module initialization) and
    identified by a slash-separated name, e.g. ["mig.rule/omega_a.hits"].
    Creating an instrument is idempotent: the same name returns the same
    handle, and creation is allowed while disabled — only {e recording} is
    gated.

    Timing uses the monotonic clock (CLOCK_MONOTONIC via bechamel's stub),
    so spans are immune to wall-clock adjustments.

    Two export formats:
    - {!chrome_trace_json}: the Chrome trace-event format (a JSON object
      with a ["traceEvents"] array of complete/counter events), loadable in
      [chrome://tracing] and {{:https://ui.perfetto.dev}Perfetto};
    - {!metrics_json}: a flat snapshot of every counter, gauge, histogram,
      series and per-span aggregate.

    Everything recorded is deterministic except timestamps and durations:
    two runs of the same seeded workload produce identical counters,
    histograms and series (the test suite pins this).

    {b Domains.} The registry above is the {e main domain's}.  Code running
    on any other domain (a [Par] worker) transparently records into a
    domain-local buffer instead — no locks on the recording path, no
    cross-domain writes — and span events remember the recording domain's id
    (exported as the Chrome trace [tid]).  {!Worker.capture} detaches a
    worker's buffer and {!Worker.merge} folds it into the calling domain's
    registry; the [Par] pool does both at shutdown, so after
    [Par.shutdown]/[Par.map] return, main-domain counters, histograms,
    series and span aggregates include everything the workers recorded.
    Counter merges are additive and therefore independent of scheduling;
    a gauge merged from a worker keeps the last value written (which worker
    wins is unspecified when several set the same gauge). *)

module Json = Json

val set_enabled : bool -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Zero every instrument and drop all recorded events/samples.  Handles
    created before the reset remain valid (they are zeroed in place, not
    detached). *)

val now_ns : unit -> int64
(** Monotonic time in nanoseconds (always live, even when disabled). *)

(** {1 Counters} *)

type counter

val counter : string -> counter
val incr : ?by:int -> counter -> unit
val count : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms}

    Exact integer-valued distributions: every observed value keeps its own
    bucket, plus running count/sum/min/max.  Suited to the small discrete
    domains recorded here (writes per device, micro-ops per step). *)

type histogram

val histogram : string -> histogram
val observe : histogram -> int -> unit
val histogram_count : histogram -> int
val histogram_buckets : histogram -> (int * int) list
(** [(value, occurrences)] sorted by value. *)

(** {1 Series}

    Named trajectories: ordered samples of labeled numeric fields, e.g. the
    per-cycle [(size, depth, R, S)] trajectory of an optimizer.  Samples
    are timestamped on entry so they also export as Chrome counter
    events. *)

type series

val series : string -> series
val sample : series -> (string * float) list -> unit
val samples : series -> (string * float) list list
(** In chronological order. *)

(** {1 Spans} *)

val with_span : ?cat:string -> ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** Time [f] and record a complete event.  When disabled this is just
    [f ()].  The event is recorded even when [f] raises. *)

val emit_span : ?cat:string -> ?args:(string * Json.t) list -> string -> t0:int64 -> unit
(** Record a complete event that started at monotonic time [t0] and ends
    now — for call sites that compute their [args] during the timed region.
    No-op when disabled. *)

(** {1 Worker-domain buffers}

    The hand-off half of the domain story above.  Only pool implementations
    need this; instrumented code is oblivious to which domain it runs on. *)

module Worker : sig
  type snapshot
  (** Everything one domain recorded: counters, gauges, histograms, series
      samples and span events. *)

  val capture : unit -> snapshot
  (** Detach and return the calling domain's buffer, leaving it empty.  On
      a worker domain this must be the last observability action before the
      domain exits (the [Par] worker loop calls it on the way out).  On the
      main domain it returns an empty snapshot and touches nothing. *)

  val merge : snapshot -> unit
  (** Fold a captured buffer into the calling domain's registry: counts and
      histogram buckets add, series samples interleave by timestamp, span
      events append with their original domain ids.  Called on the main
      domain this lands in the global registry; called on a worker (a
      nested pool) it lands in that worker's buffer and propagates upward
      at its own capture. *)
end

(** {1 Snapshots and export} *)

val counters : unit -> (string * int) list
(** Every registered counter, sorted by name. *)

val metrics_json : unit -> Json.t
val chrome_trace_json : unit -> Json.t

val write_json : string -> Json.t -> unit
(** Write [to_string ~pretty:true] plus a trailing newline to a file. *)

val pp_report : Format.formatter -> unit -> unit
(** Human-readable profile report: span aggregates sorted by total time,
    then non-zero counters, gauges and histogram summaries. *)
