(** Observability: spans, counters, gauges, histograms and trajectory
    series for the synthesis flow and the crossbar simulator.

    The layer is a process-global registry, {e disabled by default}: every
    recording entry point first reads one [bool ref], so an instrumented
    hot loop pays a single load-and-branch per event when observability is
    off (measured < 2% on the optimizer bench suite).  Enable it with
    {!set_enabled}[ true] — the CLI does this when [--trace]/[--metrics]
    are given and the [profile] subcommand always does.

    Instruments are created once (typically at module initialization) and
    identified by a slash-separated name, e.g. ["mig.rule/omega_a.hits"].
    Creating an instrument is idempotent: the same name returns the same
    handle, and creation is allowed while disabled — only {e recording} is
    gated.

    Timing uses the monotonic clock (CLOCK_MONOTONIC via bechamel's stub),
    so spans are immune to wall-clock adjustments.

    Two export formats:
    - {!chrome_trace_json}: the Chrome trace-event format (a JSON object
      with a ["traceEvents"] array of complete/counter events), loadable in
      [chrome://tracing] and {{:https://ui.perfetto.dev}Perfetto};
    - {!metrics_json}: a flat snapshot of every counter, gauge, histogram,
      series and per-span aggregate.

    Everything recorded is deterministic except timestamps and durations:
    two runs of the same seeded workload produce identical counters,
    histograms and series (the test suite pins this).

    {b Domains.} The registry above is the {e main domain's}.  Code running
    on any other domain (a [Par] worker) transparently records into a
    domain-local buffer instead — no locks on the recording path, no
    cross-domain writes — and span events remember the recording domain's id
    (exported as the Chrome trace [tid]).  {!Worker.capture} detaches a
    worker's buffer and {!Worker.merge} folds it into the calling domain's
    registry; the [Par] pool does both at shutdown, so after
    [Par.shutdown]/[Par.map] return, main-domain counters, histograms,
    series and span aggregates include everything the workers recorded.
    Counter merges are additive and therefore independent of scheduling;
    a gauge merged from a worker keeps the last value written (which worker
    wins is unspecified when several set the same gauge). *)

module Json = Json

val set_enabled : bool -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Zero every instrument and drop all recorded events/samples.  Handles
    created before the reset remain valid (they are zeroed in place, not
    detached). *)

val now_ns : unit -> int64
(** Monotonic time in nanoseconds (always live, even when disabled). *)

(** {1 Counters} *)

type counter

val counter : string -> counter
val incr : ?by:int -> counter -> unit
val count : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms}

    Exact integer-valued distributions: every observed value keeps its own
    bucket, plus running count/sum/min/max.  Suited to the small discrete
    domains recorded here (writes per device, micro-ops per step). *)

type histogram

val histogram : string -> histogram
val observe : histogram -> int -> unit
val histogram_count : histogram -> int
val histogram_buckets : histogram -> (int * int) list
(** [(value, occurrences)] sorted by value. *)

val histogram_percentile : histogram -> float -> float
(** [histogram_percentile h p] is the exact nearest-rank [p]-th percentile
    ([p] clamped to [0, 100]) of the observed values: the smallest value
    whose cumulative count reaches [ceil (p/100 * n)].  [0.0] on an empty
    histogram.  The flat metrics export includes p50/p90/p99 of every
    histogram. *)

(** {1 Series}

    Named trajectories: ordered samples of labeled numeric fields, e.g. the
    per-cycle [(size, depth, R, S)] trajectory of an optimizer.  Samples
    are timestamped on entry so they also export as Chrome counter
    events. *)

type series

val series : string -> series
val sample : series -> (string * float) list -> unit
val samples : series -> (string * float) list list
(** In chronological order. *)

(** {1 Spans}

    Spans nest: each recorded event remembers the names of the spans open
    {e on its domain} when it closed, root-first — its {e path}.  The path
    is what the {!span_tree} aggregation, the collapsed-stack export and
    the run manifests consume. *)

val with_span : ?cat:string -> ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** Time [f] and record a complete event.  When disabled this is just
    [f ()].  The event is recorded even when [f] raises.  The span is
    pushed on the calling domain's stack for the duration of [f], so spans
    recorded inside [f] nest under it. *)

val emit_span : ?cat:string -> ?args:(string * Json.t) list -> string -> t0:int64 -> unit
(** Record a complete event that started at monotonic time [t0] and ends
    now — for call sites that compute their [args] during the timed region.
    The event nests under the spans currently open.  No-op when disabled. *)

val with_task_root : (unit -> 'a) -> 'a
(** Run [f] with the calling domain's span stack cleared (and restored
    afterwards), so spans recorded by [f] are rooted at top level.  The
    {!Par} pool wraps every task in this: a task inlined on the main domain
    ([jobs = 1]) records the same paths as on a worker, making the
    span-tree aggregation independent of the worker count. *)

(** {1 Span-tree aggregation} *)

type span_node = {
  sn_name : string;  (** last element of [sn_path] *)
  sn_path : string list;  (** root-first span names, [sn_name] last *)
  sn_count : int;  (** completed events at exactly this path *)
  sn_total_ns : int64;  (** inclusive wall time (children included) *)
  sn_self_ns : int64;  (** exclusive self time (direct children removed) *)
  sn_children : span_node list;  (** sorted by name *)
}

val span_tree : unit -> span_node list
(** The recorded events aggregated by path into a forest (roots sorted by
    name).  Invariants: [sn_total_ns >= sn_self_ns >= 0], and a parent's
    inclusive time is at least the sum of its children's.  A path prefix
    that never completed as an event of its own (a span still open at
    export time) appears with [sn_count = 0] and its children's total. *)

val fold_span_tree : ('a -> span_node -> 'a) -> 'a -> span_node -> 'a
(** Pre-order fold over a node and its descendants. *)

val collapsed_stacks : ?weight:[ `Calls | `Time_us ] -> unit -> string
(** The span forest in the collapsed-stack format flamegraph.pl consumes:
    one ["a;b;c WEIGHT\n"] line per path, lexicographically sorted, zero
    weights dropped.  [`Time_us] (default) weights by exclusive self time
    in microseconds; [`Calls] weights by call count, which is deterministic
    for a deterministic workload — byte-identical output for every
    [--jobs] (the CI and test suite pin this). *)

val span_tree_json : unit -> Json.t
(** {!span_tree} as nested objects
    [{name; count; total_ns; self_ns; children?}] — the ["spans"] member of
    a run manifest. *)

(** {1 Worker-domain buffers}

    The hand-off half of the domain story above.  Only pool implementations
    need this; instrumented code is oblivious to which domain it runs on. *)

module Worker : sig
  type snapshot
  (** Everything one domain recorded: counters, gauges, histograms, series
      samples and span events. *)

  val capture : unit -> snapshot
  (** Detach and return the calling domain's buffer, leaving it empty.  On
      a worker domain this must be the last observability action before the
      domain exits (the [Par] worker loop calls it on the way out).  On the
      main domain it returns an empty snapshot and touches nothing. *)

  val merge : snapshot -> unit
  (** Fold a captured buffer into the calling domain's registry: counts and
      histogram buckets add, series samples interleave by timestamp, span
      events append with their original domain ids.  Called on the main
      domain this lands in the global registry; called on a worker (a
      nested pool) it lands in that worker's buffer and propagates upward
      at its own capture. *)
end

(** {1 Snapshots and export} *)

val counters : unit -> (string * int) list
(** Every registered counter, sorted by name. *)

val metrics_json : unit -> Json.t
val chrome_trace_json : unit -> Json.t

val write_json : string -> Json.t -> unit
(** Write [to_string ~pretty:true] plus a trailing newline to a file. *)

val pp_report : Format.formatter -> unit -> unit
(** Human-readable profile report: span aggregates (total and exclusive
    self time) sorted by total time, then non-zero counters, gauges and
    histogram summaries with p50/p90/p99. *)

(** {1 Run manifests}

    A {e run manifest} is the self-describing record of one tool run —
    schema ["migsyn-run/1"]: tool, subcommand, full argv, wall time, a
    caller-supplied context (seeds, jobs, circuit, flags), caller-supplied
    results (costs, campaign summaries), the span tree, non-zero counters
    and histogram summaries.  The CLI builds one per run when [--ledger]
    is given and appends it to a JSON-lines ledger; [migsyn report]
    compares ledgers and manifests against each other or against the
    committed baselines. *)

module Manifest : sig
  val start : tool:string -> subcommand:string -> ?argv:string list -> unit -> unit
  (** Begin a run record: note the start time and clear any context or
      results of a previous run.  Call once, before the timed work. *)

  val add_context : string -> Json.t -> unit
  (** Attach an input-side fact (seed, jobs, effort, circuit...). *)

  val add_result : string -> Json.t -> unit
  (** Attach an output-side fact (final costs, campaign summary...). *)

  val finish : unit -> Json.t
  (** The completed ["migsyn-run/1"] record.  Deterministic except
      ["wall_seconds"] and any caller-supplied timing fields. *)
end

(** {1 The run ledger}

    An append-only JSON-lines file: one compact run manifest per line.
    Appends are atomic enough for sequential runs (one [open; write;
    close] per record); the format is greppable and trivially mergeable. *)

module Ledger : sig
  val append : string -> Json.t -> unit
  (** Append one record (compact JSON + newline), creating the file if
      needed. *)

  val load : string -> Json.t list
  (** All records, in file order; blank lines are skipped.
      @raise Failure ["file:line: message"] on a malformed line,
      [Sys_error] if unreadable. *)
end
