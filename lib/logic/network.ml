type id = int

type kind =
  | Const of bool
  | Input of int
  | And
  | Or
  | Xor
  | Nand
  | Nor
  | Xnor
  | Not
  | Buf
  | Maj
  | Mux
  | Table of Sop.t

type node = { kind : kind; fanins : id array }

type t = {
  mutable nodes : node array;
  mutable n : int;
  (* Growable array of input ids in declaration order, so [input_id] is O(1)
     (it used to rebuild the whole array from a reversed list per call,
     which made name resolution quadratic on wide netlists). *)
  mutable inputs : id array;
  mutable input_count : int;
  names : (string, id) Hashtbl.t;
  mutable input_names_rev : string list;
  mutable outputs_rev : (string * id) list;
}

let create () =
  {
    nodes = Array.make 64 { kind = Const false; fanins = [||] };
    n = 0;
    inputs = Array.make 8 0;
    input_count = 0;
    names = Hashtbl.create 97;
    input_names_rev = [];
    outputs_rev = [];
  }

let ensure_capacity t =
  if t.n >= Array.length t.nodes then begin
    let bigger = Array.make (2 * Array.length t.nodes) t.nodes.(0) in
    Array.blit t.nodes 0 bigger 0 t.n;
    t.nodes <- bigger
  end

let push t node =
  ensure_capacity t;
  t.nodes.(t.n) <- node;
  t.n <- t.n + 1;
  t.n - 1

let add_input t name =
  if Hashtbl.mem t.names name then invalid_arg ("Network.add_input: duplicate input " ^ name);
  let id = push t { kind = Input t.input_count; fanins = [||] } in
  if t.input_count >= Array.length t.inputs then begin
    let bigger = Array.make (2 * Array.length t.inputs) 0 in
    Array.blit t.inputs 0 bigger 0 t.input_count;
    t.inputs <- bigger
  end;
  t.inputs.(t.input_count) <- id;
  t.input_count <- t.input_count + 1;
  t.input_names_rev <- name :: t.input_names_rev;
  Hashtbl.add t.names name id;
  id

let const t b = push t { kind = Const b; fanins = [||] }

let arity_ok kind n =
  match kind with
  | Const _ | Input _ -> n = 0
  | Not | Buf -> n = 1
  | Maj | Mux -> n = 3
  | And | Or | Xor | Nand | Nor | Xnor -> n >= 1
  | Table sop -> Sop.num_vars sop = n

let gate t kind fanins =
  if not (arity_ok kind (Array.length fanins)) then
    invalid_arg "Network.gate: bad arity";
  Array.iter
    (fun f -> if f < 0 || f >= t.n then invalid_arg "Network.gate: dangling fanin")
    fanins;
  push t { kind; fanins = Array.copy fanins }

let and2 t a b = gate t And [| a; b |]
let or2 t a b = gate t Or [| a; b |]
let xor2 t a b = gate t Xor [| a; b |]
let not_ t a = gate t Not [| a |]
let maj t a b c = gate t Maj [| a; b; c |]
let mux t s a b = gate t Mux [| s; a; b |]

let add_output t name id =
  if id < 0 || id >= t.n then invalid_arg "Network.add_output: dangling driver";
  t.outputs_rev <- (name, id) :: t.outputs_rev

let num_nodes t = t.n
let num_inputs t = t.input_count
let num_outputs t = List.length t.outputs_rev

let num_gates t =
  let count = ref 0 in
  for i = 0 to t.n - 1 do
    match t.nodes.(i).kind with Const _ | Input _ -> () | _ -> incr count
  done;
  !count

let kind t id = t.nodes.(id).kind
let fanins t id = t.nodes.(id).fanins
let input_names t = Array.of_list (List.rev t.input_names_rev)
let outputs t = List.rev t.outputs_rev

let input_id t i =
  if i < 0 || i >= t.input_count then invalid_arg "Network.input_id: out of range";
  t.inputs.(i)

let find_input t name = Hashtbl.find_opt t.names name

let fold_reduce f init = function
  | [||] -> init
  | arr ->
      let acc = ref arr.(0) in
      for i = 1 to Array.length arr - 1 do
        acc := f !acc arr.(i)
      done;
      !acc

let simulate t ins =
  if Array.length ins <> t.input_count then invalid_arg "Network.simulate: input count";
  let width = if Array.length ins = 0 then 1 else Bitvec.width ins.(0) in
  let values = Array.make t.n (Bitvec.create width) in
  for i = 0 to t.n - 1 do
    let node = t.nodes.(i) in
    let v j = values.(node.fanins.(j)) in
    let all = Array.map (fun f -> values.(f)) node.fanins in
    values.(i) <-
      (match node.kind with
      | Const b -> if b then Bitvec.ones width else Bitvec.create width
      | Input k -> ins.(k)
      | And -> fold_reduce Bitvec.band (Bitvec.ones width) all
      | Or -> fold_reduce Bitvec.bor (Bitvec.create width) all
      | Xor -> fold_reduce Bitvec.bxor (Bitvec.create width) all
      | Nand -> Bitvec.bnot (fold_reduce Bitvec.band (Bitvec.ones width) all)
      | Nor -> Bitvec.bnot (fold_reduce Bitvec.bor (Bitvec.create width) all)
      | Xnor -> Bitvec.bnot (fold_reduce Bitvec.bxor (Bitvec.create width) all)
      | Not -> Bitvec.bnot (v 0)
      | Buf -> v 0
      | Maj -> Bitvec.maj3 (v 0) (v 1) (v 2)
      | Mux -> Bitvec.mux (v 0) (v 1) (v 2)
      | Table sop ->
          (* Evaluate the cover cube by cube over the fanin patterns. *)
          let acc = ref (Bitvec.create width) in
          List.iter
            (fun cube ->
              let term = ref (Bitvec.ones width) in
              List.iter
                (fun (var, pos) ->
                  let pat = all.(var) in
                  term := Bitvec.band !term (if pos then pat else Bitvec.bnot pat))
                (Cube.literals cube);
              acc := Bitvec.bor !acc !term)
            (Sop.cubes sop);
          !acc)
  done;
  (* outputs_rev is in reverse declaration order, so rev_map restores it. *)
  Array.of_list (List.rev_map (fun (_, id) -> values.(id)) t.outputs_rev)

let truth_tables t =
  let n = t.input_count in
  if n > Truth_table.max_vars then invalid_arg "Network.truth_tables: too many inputs";
  let ins = Array.init n (fun i -> Truth_table.bitvec (Truth_table.var n i)) in
  simulate t ins
  |> Array.map (fun bv ->
         let tt = Truth_table.create n in
         for w = 0 to Bitvec.num_words bv - 1 do
           Bitvec.set_word (Truth_table.bitvec tt) w (Bitvec.word bv w)
         done;
         tt)

let eval t a =
  let ins =
    Array.init t.input_count (fun i ->
        let bv = Bitvec.create 1 in
        Bitvec.set bv 0 a.(i);
        bv)
  in
  Array.map (fun bv -> Bitvec.get bv 0) (simulate t ins)

let extract_outputs t which =
  let fresh = create () in
  let map = Array.make t.n (-1) in
  Array.iter
    (fun name -> ignore (add_input fresh name))
    (input_names t);
  (* Iterative DFS copy (stack-safe on 10^5-node-deep netlists).  Entries
     are [2*id + phase]: phase 0 visits the node (expanding unresolved
     fanins on top of a deferred phase-1 entry), phase 1 emits it once every
     fanin is mapped.  Fanins are pushed in reverse so the leftmost resolves
     first — the recursive copy's order, which fixes fresh-graph ids. *)
  let copy root =
    let stack = ref [ root lsl 1 ] in
    while !stack <> [] do
      let v = List.hd !stack in
      stack := List.tl !stack;
      let id = v lsr 1 in
      if v land 1 = 1 then
        let node = t.nodes.(id) in
        map.(id) <- gate fresh node.kind (Array.map (fun f -> map.(f)) node.fanins)
      else if map.(id) < 0 then begin
        let node = t.nodes.(id) in
        match node.kind with
        | Input k -> map.(id) <- input_id fresh k
        | Const b -> map.(id) <- const fresh b
        | _ ->
            stack := ((id lsl 1) lor 1) :: !stack;
            for i = Array.length node.fanins - 1 downto 0 do
              stack := (node.fanins.(i) lsl 1) :: !stack
            done
      end
    done;
    map.(root)
  in
  let outs = Array.of_list (outputs t) in
  List.iter
    (fun o ->
      let name, id = outs.(o) in
      add_output fresh name (copy id))
    which;
  fresh

let pp_stats ppf t =
  Format.fprintf ppf "inputs=%d outputs=%d gates=%d nodes=%d" (num_inputs t)
    (num_outputs t) (num_gates t) (num_nodes t)
