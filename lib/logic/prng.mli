(** Deterministic pseudo-random number generator (splitmix64).

    All randomized components of the library (benchmark generators,
    random-vector simulation, property-test helpers) draw from this PRNG so
    that every experiment is reproducible from a seed.  The state is a single
    mutable 64-bit counter; streams with distinct seeds are independent for
    all practical purposes. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val of_string : string -> t
(** [of_string s] seeds a generator from the FNV-1a hash of [s]; used to give
    each named benchmark its own reproducible stream. *)

val next64 : t -> int64
(** Next raw 64-bit value. *)

val split_seed : int -> int -> int
(** [split_seed master index] derives the seed of an independent child
    stream: a keyed hash (two splitmix64 finalizer rounds) of the pair, so
    [create (split_seed m i)] depends only on [(m, i)] — never on how many
    values were drawn elsewhere, or on which domain asks.  This is what
    makes Monte-Carlo trial [i] bit-reproducible regardless of [--jobs]:
    every trial owns stream [split_seed campaign_seed i]. *)

val split : t -> int -> t
(** [split t i] is [create (split_seed s i)] for the generator's current
    state [s]; the parent stream is not advanced. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val bool : t -> bool
(** Uniform boolean. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller over two uniform draws). *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
