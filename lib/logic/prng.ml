type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let of_string s =
  (* FNV-1a, 64-bit *)
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  { state = !h }

let mix64 z =
  (* splitmix64 finalizer *)
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next64 t =
  (* splitmix64 step *)
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  mix64 t.state

let split_seed master index =
  (* Two finalizer rounds over master ⊕ (γ · (index + 1)): a cheap keyed hash
     whose streams are independent of each other and of the master stream
     itself (the plain counter walk never applies the finalizer twice). *)
  let z =
    Int64.add
      (mix64 (Int64.of_int master))
      (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (index + 1)))
  in
  Int64.to_int (mix64 (mix64 z))

let split t index = { state = Int64.of_int (split_seed (Int64.to_int t.state) index) }

let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
  v mod bound

let bool t = Int64.logand (next64 t) 1L = 1L

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let gaussian t =
  (* Box–Muller; one deviate per pair of uniforms, no state beyond [t].
     [1 - float] lands in (0, 1], keeping the log argument positive. *)
  let u1 = 1.0 -. float t and u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
