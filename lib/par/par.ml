let clamp lo hi n = max lo (min hi n)

let recommended_jobs () =
  match Sys.getenv_opt "MIGSYN_JOBS" with
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some n when n >= 1 -> clamp 1 128 n
      | _ -> clamp 1 128 (Domain.recommended_domain_count ()))
  | None -> clamp 1 128 (Domain.recommended_domain_count ())

let resolve_jobs = function
  | Some n when n >= 1 -> n
  | Some _ | None -> recommended_jobs ()

type 'a state =
  | Pending
  | Done of 'a
  | Raised of exn * Printexc.raw_backtrace

type 'a task = {
  t_mutex : Mutex.t;
  t_cond : Condition.t;
  mutable t_state : 'a state;
}

type t = {
  p_jobs : int;
  p_mutex : Mutex.t;
  p_nonempty : Condition.t;
  p_queue : (unit -> unit) Queue.t;
  mutable p_closed : bool;
  (* joined at shutdown; each worker returns its Obs buffer *)
  mutable p_workers : Obs.Worker.snapshot Domain.t list;
  mutable p_shut : bool;
}

let jobs p = p.p_jobs

(* Worker main loop: take thunks until the pool is closed AND the queue is
   drained, then hand the domain-local Obs buffer back through the join. *)
let worker pool () =
  let rec loop () =
    Mutex.lock pool.p_mutex;
    let rec next () =
      match Queue.take_opt pool.p_queue with
      | Some thunk ->
          Mutex.unlock pool.p_mutex;
          thunk ();
          loop ()
      | None ->
          if pool.p_closed then Mutex.unlock pool.p_mutex
          else begin
            Condition.wait pool.p_nonempty pool.p_mutex;
            next ()
          end
    in
    next ()
  in
  loop ();
  Obs.Worker.capture ()

let create ?jobs () =
  let jobs = max 1 (Option.value jobs ~default:(recommended_jobs ())) in
  let pool =
    {
      p_jobs = jobs;
      p_mutex = Mutex.create ();
      p_nonempty = Condition.create ();
      p_queue = Queue.create ();
      p_closed = false;
      p_workers = [];
      p_shut = false;
    }
  in
  if jobs > 1 then
    pool.p_workers <- List.init jobs (fun _ -> Domain.spawn (worker pool));
  pool

let finish task outcome =
  Mutex.lock task.t_mutex;
  task.t_state <- outcome;
  Condition.broadcast task.t_cond;
  Mutex.unlock task.t_mutex

(* Every task records its spans from a clean root (Obs.with_task_root):
   inlined on the calling domain (jobs = 1) or on a worker, the same task
   produces the same span paths, so the aggregated span tree — and the
   collapsed-stack export — is identical for every worker count. *)
let run_into task f () =
  match Obs.with_task_root f with
  | v -> finish task (Done v)
  | exception e -> finish task (Raised (e, Printexc.get_raw_backtrace ()))

let submit pool f =
  let task =
    { t_mutex = Mutex.create (); t_cond = Condition.create (); t_state = Pending }
  in
  if pool.p_workers = [] then begin
    if pool.p_shut then invalid_arg "Par.submit: pool is shut down";
    run_into task f ()
  end
  else begin
    Mutex.lock pool.p_mutex;
    if pool.p_closed then begin
      Mutex.unlock pool.p_mutex;
      invalid_arg "Par.submit: pool is shut down"
    end;
    Queue.add (run_into task f) pool.p_queue;
    Condition.signal pool.p_nonempty;
    Mutex.unlock pool.p_mutex
  end;
  task

let await task =
  Mutex.lock task.t_mutex;
  let rec wait () =
    match task.t_state with
    | Pending ->
        Condition.wait task.t_cond task.t_mutex;
        wait ()
    | (Done _ | Raised _) as s -> s
  in
  let outcome = wait () in
  Mutex.unlock task.t_mutex;
  match outcome with
  | Done v -> v
  | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

let shutdown pool =
  if not pool.p_shut then begin
    pool.p_shut <- true;
    Mutex.lock pool.p_mutex;
    pool.p_closed <- true;
    Condition.broadcast pool.p_nonempty;
    Mutex.unlock pool.p_mutex;
    let snapshots = List.map Domain.join pool.p_workers in
    pool.p_workers <- [];
    List.iter Obs.Worker.merge snapshots
  end

let with_pool ?jobs f =
  let pool = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let map ?jobs f xs =
  match max 1 (Option.value jobs ~default:(recommended_jobs ())) with
  | 1 -> List.map (fun x -> Obs.with_task_root (fun () -> f x)) xs
  | jobs ->
      with_pool ~jobs (fun pool ->
          let tasks = List.map (fun x -> submit pool (fun () -> f x)) xs in
          List.map await tasks)

let map_seeded ?jobs ~seed f xs =
  map ?jobs
    (fun (i, x) -> f ~seed:(Logic.Prng.split_seed seed i) x)
    (List.mapi (fun i x -> (i, x)) xs)
