(** A minimal fixed-size domain work-pool for the synthesis engine.

    The pool owns a fixed set of worker domains (no Domainslib, no external
    dependencies — just [Domain], [Mutex] and [Condition] from the standard
    library) fed from a single mutex/condition task queue.  Tasks are
    arbitrary closures; a task that raises has its exception (and backtrace)
    captured and re-raised at {!await}, so error behaviour is identical to
    calling the closure directly.

    Three properties make the pool safe for deterministic experiment
    harnesses:

    - {b Ordering.} {!map} submits tasks in list order and awaits them in
      list order, so results are position-stable regardless of which domain
      ran which task, and the first exception to propagate is the one from
      the earliest failing element.
    - {b Sequential fallback.} A pool created with [jobs = 1] spawns no
      domains at all: {!submit} runs the task inline on the caller.  Code
      paths are byte-for-byte the sequential computation, which pins the
      [jobs=1 ≡ jobs=N] determinism contract (DESIGN.md §11).
    - {b Observability merge.} Worker domains record {!Obs} events into
      domain-local buffers; {!shutdown} joins every worker and folds those
      buffers into the caller's registry, so counters and span aggregates
      under [--metrics] are exact whatever the worker count.

    The default worker count comes from the [MIGSYN_JOBS] environment
    variable when set to a positive integer, and otherwise from
    [Domain.recommended_domain_count ()]. *)

val recommended_jobs : unit -> int
(** Worker count used when [?jobs] is omitted: [MIGSYN_JOBS] if it parses
    as a positive integer (clamped to 128), else
    [Domain.recommended_domain_count ()]. *)

val resolve_jobs : int option -> int
(** [resolve_jobs (Some n)] is [max 1 n]; [resolve_jobs None] (and
    [Some 0] or negative values) fall back to {!recommended_jobs}.  The CLI
    uses this to give [--jobs 0] the meaning "auto". *)

(** {1 Pools} *)

type t
(** A pool of worker domains.  Values of this type must only be driven
    (submit/await/shutdown) from the domain that created them. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [max 1 jobs] workers ([jobs] defaults to
    {!recommended_jobs}); [jobs = 1] spawns none and runs tasks inline. *)

val jobs : t -> int
(** The worker count the pool was created with (≥ 1). *)

type 'a task
(** A handle to a submitted computation. *)

val submit : t -> (unit -> 'a) -> 'a task
(** Enqueue a closure.  On a sequential pool the closure runs before
    [submit] returns.  @raise Invalid_argument if the pool is shut down. *)

val await : 'a task -> 'a
(** Block until the task finishes and return its result.  If the task
    raised, the exception is re-raised here with its original backtrace.
    [await] is idempotent. *)

val shutdown : t -> unit
(** Drain the queue, join every worker and merge their domain-local {!Obs}
    buffers into the caller's registry.  Idempotent; after shutdown,
    {!submit} raises. *)

(** {1 Convenience} *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] on a fresh pool and shuts it down afterwards,
    whether [f] returns or raises. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map over a throwaway pool.  With [jobs = 1]
    this is exactly [List.map f xs] (no domains are spawned).  If several
    elements raise, the exception of the earliest one in list order
    propagates. *)

val map_seeded : ?jobs:int -> seed:int -> (seed:int -> 'a -> 'b) -> 'a list -> 'b list
(** {!map} with a deterministic per-element PRNG seed: element [i] receives
    [Logic.Prng.split_seed seed i], a statistically independent stream keyed
    by list {e position} — never by which domain runs the task or in what
    order tasks complete.  This is the seeding half of the [jobs=1 ≡ jobs=N]
    determinism contract for Monte-Carlo campaigns (DESIGN.md §12): equal
    [(seed, xs)] give equal results for every [jobs]. *)
