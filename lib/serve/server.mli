(** The [migsyn serve] daemon loop.

    A long-running Unix-domain-socket server speaking the newline-delimited
    JSON protocol of {!Protocol}.  One accept loop multiplexes every client
    connection with [select]; each readiness round drains the readable
    connections into a {e batch} of requests, answers cache hits from the
    {!Cache} immediately, fans the misses across a shared {!Par} domain
    pool (duplicate keys inside a batch coalesce into one synthesis), and
    writes responses back per connection in request order.

    Failure containment: a malformed line, an oversized payload, an unknown
    schema version, a bad flow script or a failing synthesis each produce a
    structured error envelope on that connection — the loop itself never
    dies on request input.  The daemon stops on a [shutdown] op or when the
    [stop] callback turns true (the CLI wires SIGINT/SIGTERM to it); both
    paths drain pending responses, shut the pool down (merging worker
    observability buffers), record the request/cache totals as manifest
    results, and remove the socket file — so [--ledger] manifests of a
    served session always carry the final counters. *)

type config = {
  socket_path : string;
  jobs : int;  (** worker domains of the shared synthesis pool (≥ 1) *)
  cache_budget_bytes : int;
  max_request_bytes : int;
      (** a request line beyond this answers an [oversized] error and the
          connection is closed (the stream cannot be resynchronized) *)
  stop : unit -> bool;  (** polled between batches; [true] ends the loop *)
  on_listening : unit -> unit;
      (** called once, after the socket is bound and listening *)
}

val default_config : socket_path:string -> config
(** [jobs = Par.recommended_jobs ()], 256 MiB cache budget, 8 MiB request
    cap, never stops on its own, no listening callback. *)

type summary = {
  requests : int;  (** request lines decoded (including errors) *)
  ok : int;
  errors : int;
  batches : int;  (** select rounds that carried at least one request *)
  max_batch : int;
  cache : Cache.stats;
}

val run : config -> summary
(** Bind, listen, serve until stopped, clean up, and return the totals.
    @raise Unix.Unix_error when the socket cannot be created or bound
    (reported by the CLI as [migsyn serve: error: ...]). *)
