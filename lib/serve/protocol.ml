(* Codec for the migsyn-serve/1 line protocol.  See protocol.mli and
   docs/PROTOCOL.md. *)

module Json = Obs.Json

let schema = "migsyn-serve/1"

type circuit =
  | Inline of { format : string; source : string }
  | File of string

type synth = {
  circuit : circuit;
  flows : string list;
  algorithm : string option;
  effort : int option;
  jobs : int option;
  cost : string option;
  arch : string option;
  realization : string;
  verify : bool;
}

type op = Synth of synth | Metrics | Ping | Shutdown

type request = { id : string option; op : op }

type error_code =
  | Parse_error
  | Bad_schema
  | Bad_request
  | Oversized
  | Unsupported_op
  | Synthesis_failed
  | Verification_failed
  | Io_error

let code_name = function
  | Parse_error -> "parse_error"
  | Bad_schema -> "bad_schema"
  | Bad_request -> "bad_request"
  | Oversized -> "oversized"
  | Unsupported_op -> "unsupported_op"
  | Synthesis_failed -> "synthesis_failed"
  | Verification_failed -> "verification_failed"
  | Io_error -> "io_error"

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

exception Bad of error_code * string

let bad fmt = Printf.ksprintf (fun msg -> raise (Bad (Bad_request, msg))) fmt

let formats = [ "blif"; "bench"; "pla"; "aag"; "aig" ]

let opt_string name json =
  match Json.member name json with
  | Json.Null -> None
  | Json.String s -> Some s
  | _ -> bad "\"%s\" must be a string" name

let opt_int name json =
  match Json.member name json with
  | Json.Null -> None
  | Json.Int n -> Some n
  | _ -> bad "\"%s\" must be an integer" name

let opt_bool name json =
  match Json.member name json with
  | Json.Null -> None
  | Json.Bool b -> Some b
  | _ -> bad "\"%s\" must be a boolean" name

let decode_circuit json =
  match Json.member "circuit" json with
  | Json.Null -> bad "synth request is missing the \"circuit\" member"
  | Json.Assoc _ as c -> (
      match (opt_string "path" c, opt_string "format" c, opt_string "source" c) with
      | Some path, None, None -> File path
      | Some _, _, _ ->
          bad "\"circuit\" must carry either \"path\" or \"format\"+\"source\", not both"
      | None, Some format, Some source ->
          if not (List.mem format formats) then
            bad "unknown circuit format %S (expected %s)" format
              (String.concat ", " formats);
          Inline { format; source }
      | None, _, _ ->
          bad "inline \"circuit\" needs both \"format\" and \"source\"")
  | _ -> bad "\"circuit\" must be an object"

let decode_flows json =
  match Json.member "flow" json with
  | Json.Null -> []
  | Json.String s -> [ s ]
  | Json.List elems ->
      if elems = [] then bad "\"flow\" must not be an empty list";
      List.map
        (function
          | Json.String s -> s
          | _ -> bad "\"flow\" list elements must be strings")
        elems
  | _ -> bad "\"flow\" must be a string or a list of strings"

let decode_synth json =
  let circuit = decode_circuit json in
  let flows = decode_flows json in
  let algorithm = opt_string "algorithm" json in
  if flows <> [] && algorithm <> None then
    bad "\"flow\" and \"algorithm\" are mutually exclusive";
  let effort = opt_int "effort" json in
  (match effort with
  | Some e when e < 1 -> bad "\"effort\" must be at least 1 (got %d)" e
  | _ -> ());
  let jobs = opt_int "jobs" json in
  (match jobs with
  | Some j when j < 1 -> bad "\"jobs\" must be at least 1 (got %d)" j
  | _ -> ());
  let realization =
    match opt_string "realization" json with
    | None -> "maj"
    | Some ("imp" | "maj") as r -> Option.get r
    | Some other -> bad "unknown realization %S (expected imp or maj)" other
  in
  Synth
    {
      circuit;
      flows;
      algorithm;
      effort;
      jobs;
      cost = opt_string "cost" json;
      arch = opt_string "arch" json;
      realization;
      verify = Option.value (opt_bool "verify" json) ~default:true;
    }

let decode_request line =
  match Json.of_string line with
  | exception Json.Parse_error msg -> Error (Parse_error, msg)
  | Json.Assoc _ as json -> (
      try
        (match Json.member "schema" json with
        | Json.String s when s = schema -> ()
        | Json.String s ->
            raise
              (Bad
                 ( Bad_schema,
                   Printf.sprintf "unknown schema %S (this server speaks %s)" s
                     schema ))
        | _ ->
            raise
              (Bad
                 ( Bad_schema,
                   Printf.sprintf "missing \"schema\" member (expected %S)" schema
                 )));
        let id =
          match Json.member "id" json with
          | Json.Null -> None
          | Json.String s -> Some s
          | Json.Int n -> Some (string_of_int n)
          | _ -> bad "\"id\" must be a string or an integer"
        in
        let op =
          match Json.member "op" json with
          | Json.Null | Json.String "synth" -> decode_synth json
          | Json.String "metrics" -> Metrics
          | Json.String "ping" -> Ping
          | Json.String "shutdown" -> Shutdown
          | Json.String other ->
              raise
                (Bad
                   ( Unsupported_op,
                     Printf.sprintf
                       "unknown op %S (expected synth, metrics, ping or shutdown)"
                       other ))
          | _ -> bad "\"op\" must be a string"
        in
        Ok { id; op }
      with Bad (code, msg) -> Error (code, msg))
  | _ -> Error (Parse_error, "request must be a JSON object")

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let encode_request { id; op } =
  let base = [ ("schema", Json.String schema) ] in
  let id = match id with Some i -> [ ("id", Json.String i) ] | None -> [] in
  let rest =
    match op with
    | Metrics -> [ ("op", Json.String "metrics") ]
    | Ping -> [ ("op", Json.String "ping") ]
    | Shutdown -> [ ("op", Json.String "shutdown") ]
    | Synth s ->
        let circuit =
          match s.circuit with
          | File path -> Json.Assoc [ ("path", Json.String path) ]
          | Inline { format; source } ->
              Json.Assoc
                [ ("format", Json.String format); ("source", Json.String source) ]
        in
        let opt name = function
          | Some v -> [ (name, Json.String v) ]
          | None -> []
        in
        let opt_i name = function
          | Some v -> [ (name, Json.Int v) ]
          | None -> []
        in
        [ ("op", Json.String "synth"); ("circuit", circuit) ]
        @ (match s.flows with
          | [] -> []
          | [ one ] -> [ ("flow", Json.String one) ]
          | many -> [ ("flow", Json.List (List.map (fun f -> Json.String f) many)) ])
        @ opt "algorithm" s.algorithm @ opt_i "effort" s.effort
        @ opt_i "jobs" s.jobs @ opt "cost" s.cost @ opt "arch" s.arch
        @ [ ("realization", Json.String s.realization) ]
        @ if s.verify then [] else [ ("verify", Json.Bool false) ]
  in
  Json.to_string (Json.Assoc (base @ id @ rest))

let id_member = function
  | Some i -> [ ("id", Json.String i) ]
  | None -> []

let ok_response ~id ~cache ~seconds ~result =
  Json.Assoc
    ([ ("schema", Json.String schema) ]
    @ id_member id
    @ [
        ("status", Json.String "ok");
        ("cache", Json.String cache);
        ("seconds", Json.Float seconds);
        ("result", result);
      ])

let error_response ~id ~code msg =
  Json.Assoc
    ([ ("schema", Json.String schema) ]
    @ id_member id
    @ [
        ("status", Json.String "error");
        ( "error",
          Json.Assoc
            [ ("code", Json.String (code_name code)); ("message", Json.String msg) ]
        );
      ])

let response_line json = Json.to_string json ^ "\n"

let strip_volatile = function
  | Json.Assoc kvs ->
      Json.Assoc
        (List.filter (fun (k, _) -> k <> "cache" && k <> "seconds") kvs)
  | other -> other
