(* Blocking line-oriented client for the serve socket. *)

module Json = Obs.Json

type t = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* bytes read past the last returned line *)
  mutable eof : bool;
}

let connect ?(retries = 40) ?(delay = 0.05) path =
  let rec attempt n =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> { fd; buf = Buffer.create 4096; eof = false }
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when n > 0 ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Unix.sleepf delay;
        attempt (n - 1)
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  in
  try attempt retries
  with Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) ->
    failwith
      (Printf.sprintf "no migsyn serve daemon is listening on %s" path)

let send_line t line =
  let s = line ^ "\n" in
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    pos := !pos + Unix.write_substring t.fd s !pos (len - !pos)
  done

let chunk_bytes = 65536

let recv_line t =
  let take_line () =
    let data = Buffer.contents t.buf in
    match String.index_opt data '\n' with
    | None -> None
    | Some i ->
        Buffer.clear t.buf;
        Buffer.add_substring t.buf data (i + 1) (String.length data - i - 1);
        Some (String.sub data 0 i)
  in
  let bytes = Bytes.create chunk_bytes in
  let rec go () =
    match take_line () with
    | Some line -> line
    | None ->
        if t.eof then failwith "connection closed by migsyn serve";
        (match Unix.read t.fd bytes 0 chunk_bytes with
        | 0 -> t.eof <- true
        | n -> Buffer.add_subbytes t.buf bytes 0 n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        go ()
  in
  go ()

let rpc t request =
  send_line t (Json.to_string request);
  let line = recv_line t in
  match Json.of_string line with
  | json -> json
  | exception Json.Parse_error msg ->
      failwith (Printf.sprintf "invalid response from migsyn serve: %s" msg)

let close t =
  t.eof <- true;
  try Unix.close t.fd with Unix.Unix_error _ -> ()
