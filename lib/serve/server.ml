(* The migsyn serve daemon: select loop, request batching, the strash
   result cache, and synthesis fan-out over a shared Par pool.  See
   server.mli and docs/PROTOCOL.md. *)

module Json = Obs.Json

type config = {
  socket_path : string;
  jobs : int;
  cache_budget_bytes : int;
  max_request_bytes : int;
  stop : unit -> bool;
  on_listening : unit -> unit;
}

let default_config ~socket_path =
  {
    socket_path;
    jobs = Par.recommended_jobs ();
    cache_budget_bytes = 256 * 1024 * 1024;
    max_request_bytes = 8 * 1024 * 1024;
    stop = (fun () -> false);
    on_listening = ignore;
  }

type summary = {
  requests : int;
  ok : int;
  errors : int;
  batches : int;
  max_batch : int;
  cache : Cache.stats;
}

(* Obs instruments (created at module init; recording is gated on enable). *)
let c_requests = Obs.counter "serve/requests"
let c_errors = Obs.counter "serve/errors"
let h_batch = Obs.histogram "serve.batch/requests"

(* ------------------------------------------------------------------ *)
(* Request preparation (main domain)                                   *)
(* ------------------------------------------------------------------ *)

exception Reject of Protocol.error_code * string

let reject code fmt =
  Printf.ksprintf (fun msg -> raise (Reject (code, msg))) fmt

let parse_inline ~format ~source =
  let wrap line msg = reject Protocol.Bad_request "circuit:%d: %s" line msg in
  try
    match format with
    | "blif" -> Io.Blif.parse_string source
    | "bench" -> Io.Bench_format.parse_string source
    | "pla" -> Io.Pla.parse_string source
    | "aag" -> Io.Aiger.parse_string source
    | "aig" -> Io.Aiger.parse_binary_string source
    | _ -> reject Protocol.Bad_request "unknown circuit format %S" format
  with
  | Io.Blif.Parse_error (line, msg) -> wrap line msg
  | Io.Bench_format.Parse_error (line, msg) -> wrap line msg
  | Io.Pla.Parse_error (line, msg) -> wrap line msg
  | Io.Aiger.Parse_error (line, msg) -> wrap line msg
  | Failure msg -> reject Protocol.Bad_request "circuit: %s" msg

let parse_file path =
  let wrap line msg = reject Protocol.Io_error "%s:%d: %s" path line msg in
  try
    match Filename.extension path with
    | ".blif" -> Io.Blif.parse_file path
    | ".bench" -> Io.Bench_format.parse_file path
    | ".pla" -> Io.Pla.parse_file path
    | ".aag" -> Io.Aiger.parse_file path
    | ".aig" -> Io.Aiger.parse_binary_file path
    | ext ->
        reject Protocol.Io_error
          "%s: unsupported netlist extension %S (expected .blif, .bench, .pla, .aag or .aig)"
          path ext
  with
  | Io.Blif.Parse_error (line, msg) -> wrap line msg
  | Io.Bench_format.Parse_error (line, msg) -> wrap line msg
  | Io.Pla.Parse_error (line, msg) -> wrap line msg
  | Io.Aiger.Parse_error (line, msg) -> wrap line msg
  | Sys_error msg -> reject Protocol.Io_error "%s" msg
  | Failure msg -> reject Protocol.Io_error "%s" msg

(* Compile_mig wraps crossbar mapping errors with its own prefix; that is
   noise on the wire. *)
let strip_compile_prefix msg =
  let prefix = "Compile_mig.compile: " in
  let plen = String.length prefix in
  if String.length msg >= plen && String.sub msg 0 plen = prefix then
    String.sub msg plen (String.length msg - plen)
  else msg

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

type sjob = {
  sj_flows : (string * string) list;  (* (label, script) portfolio specs *)
  sj_single : Core.Mig.t Flow.t option;  (* parsed flow when one script *)
  sj_cost : string;
  sj_jobs : int;
  sj_canon : Core.Mig.t;
  sj_net : Logic.Network.t;
  sj_arch : Core.Rram_cost.arch;
  sj_realization : Core.Rram_cost.realization;
  sj_verify : bool;
  sj_flow_text : string;
  sj_fingerprint : string;
}

let uses_xbar job =
  List.exists (fun (_, s) -> contains_sub s "xbar_") job.sj_flows
  || contains_sub job.sj_cost "xbar_"

let prepare ~pool_jobs (synth : Protocol.synth) =
  let net =
    match synth.circuit with
    | Protocol.Inline { format; source } -> parse_inline ~format ~source
    | Protocol.File path -> parse_file path
  in
  let effort =
    Option.value synth.effort ~default:Core.Mig_opt.default_effort
  in
  let labeled =
    match (synth.flows, synth.algorithm) with
    | [], None | [], Some "" -> (
        match Core.Mig_flows.canonical_script ~effort "steps" with
        | Some s -> [ ("steps", s) ]
        | None -> assert false)
    | [], Some alg -> (
        match Core.Mig_flows.canonical_script ~effort alg with
        | Some s -> [ (alg, s) ]
        | None ->
            reject Protocol.Bad_request "unknown algorithm %S (expected %s)" alg
              (String.concat ", " Core.Mig_flows.canonical_names))
    | flows, None ->
        List.mapi (fun i s -> (Printf.sprintf "script%d" (i + 1), s)) flows
    | _ :: _, Some _ -> assert false (* the codec rejects this *)
  in
  let parsed =
    List.map
      (fun (label, s) ->
        match Core.Mig_flows.parse s with
        | Ok flow -> (label, s, flow)
        | Error e ->
            reject Protocol.Bad_request "flow %s: %s" label
              (Format.asprintf "%a" Flow.Script.pp_error e))
      labeled
  in
  let cost = Option.value synth.cost ~default:Core.Mig_flows.default_cost in
  if not (List.mem_assoc cost Core.Mig_flows.costs) then
    reject Protocol.Bad_request "unknown cost %S (expected one of %s)" cost
      (String.concat ", " (List.map fst Core.Mig_flows.costs));
  let arch =
    match synth.arch with
    | None -> Core.Rram_cost.Unbounded_serial
    | Some text -> (
        match Core.Rram_cost.parse_arch text with
        | Ok a -> a
        | Error e -> reject Protocol.Bad_request "%s" e)
  in
  let realization =
    match synth.realization with
    | "imp" -> Core.Rram_cost.Imp
    | _ -> Core.Rram_cost.Maj
  in
  let flow_text =
    match labeled with
    | [ (_, s) ] -> s
    | many ->
        Printf.sprintf "portfolio(%s){%s}" cost
          (String.concat " | " (List.map snd many))
  in
  let mig = Core.Mig_of_network.convert net in
  let canon, key =
    Cache.canonical_key ~flow:flow_text
      ~arch:(Core.Rram_cost.arch_to_string arch)
      ~realization:synth.realization ~verify:synth.verify mig
  in
  let job =
    {
      sj_flows = List.map (fun (l, s, _) -> (l, s)) parsed;
      sj_single =
        (match parsed with [ (_, _, flow) ] -> Some flow | _ -> None);
      sj_cost = cost;
      sj_jobs = min (Option.value synth.jobs ~default:1) pool_jobs;
      sj_canon = canon;
      sj_net = net;
      sj_arch = arch;
      sj_realization = realization;
      sj_verify = synth.verify;
      sj_flow_text = flow_text;
      sj_fingerprint = Cache.fingerprint key;
    }
  in
  (key, job)

(* ------------------------------------------------------------------ *)
(* Synthesis (worker domain, or main for xbar-cost flows)              *)
(* ------------------------------------------------------------------ *)

type outcome = (Json.t * float, Protocol.error_code * string) result

let execute job : outcome =
  let t0 = Obs.now_ns () in
  try
    let optimized =
      Obs.with_span ~cat:"serve" "serve/synth" (fun () ->
          match job.sj_single with
          | Some flow -> Core.Mig_flows.run ~name:"serve" flow job.sj_canon
          | None ->
              let winner, _ =
                Core.Mig_flows.portfolio ~jobs:job.sj_jobs ~cost:job.sj_cost
                  job.sj_flows job.sj_canon
              in
              winner)
    in
    if
      job.sj_verify
      && not (Core.Mig_equiv.equivalent_network optimized job.sj_net)
    then
      Error
        ( Protocol.Verification_failed,
          "optimized network is not equivalent to the request circuit" )
    else begin
      let r = Rram.Compile_mig.compile ~arch:job.sj_arch job.sj_realization optimized in
      let size, depth = Core.Mig_passes.size_and_depth optimized in
      let triple = r.Rram.Compile_mig.cost in
      let analytic = r.Rram.Compile_mig.analytic in
      let blif =
        Io.Blif.write_string ~model_name:"served"
          (Core.Mig_to_network.export optimized)
      in
      let payload =
        Json.Assoc
          [
            ( "network",
              Json.Assoc
                [ ("format", Json.String "blif"); ("source", Json.String blif) ]
            );
            ("size", Json.Int size);
            ("depth", Json.Int depth);
            ( "cost",
              Json.Assoc
                [
                  ("devices", Json.Int triple.Core.Rram_cost.devices);
                  ("latency", Json.Int triple.Core.Rram_cost.latency);
                  ("utilization", Json.Float triple.Core.Rram_cost.utilization);
                ] );
            ( "table1",
              Json.Assoc
                [
                  ("rrams", Json.Int analytic.Core.Rram_cost.rrams);
                  ("steps", Json.Int analytic.Core.Rram_cost.steps);
                ] );
            ( "realization",
              Json.String
                (match job.sj_realization with
                | Core.Rram_cost.Imp -> "imp"
                | Core.Rram_cost.Maj -> "maj") );
            ("arch", Json.String (Core.Rram_cost.arch_to_string job.sj_arch));
            ("flow", Json.String job.sj_flow_text);
            ( "verified",
              if job.sj_verify then Json.Bool true else Json.String "skipped" );
            ("fingerprint", Json.String job.sj_fingerprint);
          ]
      in
      let seconds = Int64.to_float (Int64.sub (Obs.now_ns ()) t0) /. 1e9 in
      Ok (payload, seconds)
    end
  with
  | Invalid_argument msg ->
      Error (Protocol.Synthesis_failed, strip_compile_prefix msg)
  | Failure msg -> Error (Protocol.Synthesis_failed, msg)

(* ------------------------------------------------------------------ *)
(* Connections and the select loop                                     *)
(* ------------------------------------------------------------------ *)

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  out : Buffer.t;
  mutable alive : bool;
  mutable close_after_flush : bool;
}

type state = {
  cfg : config;
  cache : Cache.t;
  pool : Par.t;
  started_ns : int64;
  mutable conns : conn list;
  mutable stopping : bool;
  mutable requests : int;
  mutable ok : int;
  mutable errors : int;
  mutable batches : int;
  mutable max_batch : int;
}

let metrics_json state =
  Json.Assoc
    [
      ( "uptime_seconds",
        Json.Float
          (Int64.to_float (Int64.sub (Obs.now_ns ()) state.started_ns) /. 1e9) );
      ("jobs", Json.Int (Par.jobs state.pool));
      ( "requests",
        Json.Assoc
          [
            ("total", Json.Int state.requests);
            ("ok", Json.Int state.ok);
            ("errors", Json.Int state.errors);
            ("batches", Json.Int state.batches);
            ("max_batch", Json.Int state.max_batch);
          ] );
      ("cache", Cache.stats_json state.cache);
    ]

let enqueue conn json =
  if conn.alive then Buffer.add_string conn.out (Protocol.response_line json)

let flush_conn conn =
  if conn.alive && Buffer.length conn.out > 0 then begin
    let s = Buffer.contents conn.out in
    Buffer.clear conn.out;
    let len = String.length s in
    let pos = ref 0 in
    try
      while !pos < len do
        pos := !pos + Unix.write_substring conn.fd s !pos (len - !pos)
      done
    with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      conn.alive <- false
  end;
  if conn.close_after_flush then conn.alive <- false

let flush_writes state = List.iter flush_conn state.conns

(* ------------------------------------------------------------------ *)
(* Batch processing                                                    *)
(* ------------------------------------------------------------------ *)

type shared = {
  s_key : string;
  s_run : [ `Task of outcome Par.task | `Inline of unit -> outcome ];
  mutable s_outcome : outcome option;
}

type slot =
  | Ready of Json.t
  | Pending of { p_id : string option; p_tag : string; p_shared : shared }

let count_error state =
  state.errors <- state.errors + 1;
  Obs.incr c_errors

let count_request state =
  state.requests <- state.requests + 1;
  Obs.incr c_requests

(* Flows naming xbar_* accept_if costs read the process-global architecture
   (Core.Mig_flows.set_arch); to keep that sound under fan-out, such jobs
   run inline on the accept loop's domain, never on a pool worker. *)
let classify state inflight id (synth : Protocol.synth) =
  match prepare ~pool_jobs:(Par.jobs state.pool) synth with
  | exception Reject (code, msg) ->
      count_error state;
      Ready (Protocol.error_response ~id ~code msg)
  | key, job -> (
      match Cache.find state.cache key with
      | Some payload ->
          state.ok <- state.ok + 1;
          Ready (Protocol.ok_response ~id ~cache:"hit" ~seconds:0.0 ~result:payload)
      | None -> (
          match Hashtbl.find_opt inflight key with
          | Some shared ->
              Cache.note_coalesced state.cache;
              Pending { p_id = id; p_tag = "coalesced"; p_shared = shared }
          | None ->
              Cache.note_miss state.cache;
              let run =
                if uses_xbar job then
                  `Inline
                    (fun () ->
                      Core.Mig_flows.set_arch
                        (match job.sj_arch with
                        | Core.Rram_cost.Crossbar _ as a -> a
                        | Core.Rram_cost.Unbounded_serial ->
                            Core.Rram_cost.Unbounded_serial);
                      execute job)
                else `Task (Par.submit state.pool (fun () -> execute job))
              in
              let shared = { s_key = key; s_run = run; s_outcome = None } in
              Hashtbl.add inflight key shared;
              Pending { p_id = id; p_tag = "miss"; p_shared = shared }))

let resolve state shared =
  match shared.s_outcome with
  | Some o -> o
  | None ->
      let o =
        try
          match shared.s_run with
          | `Task t -> Par.await t
          | `Inline f -> f ()
        with e ->
          Error
            ( Protocol.Synthesis_failed,
              "unexpected exception: " ^ Printexc.to_string e )
      in
      shared.s_outcome <- Some o;
      (match o with
      | Ok (payload, _) -> Cache.store state.cache shared.s_key payload
      | Error _ -> ());
      o

let process_batch state batch =
  state.batches <- state.batches + 1;
  let n = List.length batch in
  if n > state.max_batch then state.max_batch <- n;
  Obs.observe h_batch n;
  let inflight : (string, shared) Hashtbl.t = Hashtbl.create 8 in
  let slots =
    List.map
      (fun (conn, line) ->
        count_request state;
        let slot =
          match Protocol.decode_request line with
          | Error (code, msg) ->
              count_error state;
              Ready (Protocol.error_response ~id:None ~code msg)
          | Ok { Protocol.id; op } -> (
              match op with
              | Protocol.Ping ->
                  state.ok <- state.ok + 1;
                  Ready
                    (Protocol.ok_response ~id ~cache:"none" ~seconds:0.0
                       ~result:
                         (Json.Assoc
                            [
                              ("pong", Json.Bool true);
                              ( "schemas",
                                Json.List [ Json.String Protocol.schema ] );
                            ]))
              | Protocol.Metrics ->
                  state.ok <- state.ok + 1;
                  Ready
                    (Protocol.ok_response ~id ~cache:"none" ~seconds:0.0
                       ~result:(metrics_json state))
              | Protocol.Shutdown ->
                  state.ok <- state.ok + 1;
                  state.stopping <- true;
                  Ready
                    (Protocol.ok_response ~id ~cache:"none" ~seconds:0.0
                       ~result:(Json.Assoc [ ("stopping", Json.Bool true) ]))
              | Protocol.Synth synth -> classify state inflight id synth)
        in
        (conn, slot))
      batch
  in
  List.iter
    (fun (conn, slot) ->
      let json =
        match slot with
        | Ready j -> j
        | Pending { p_id; p_tag; p_shared } -> (
            match resolve state p_shared with
            | Ok (payload, seconds) ->
                state.ok <- state.ok + 1;
                Protocol.ok_response ~id:p_id ~cache:p_tag ~seconds
                  ~result:payload
            | Error (code, msg) ->
                count_error state;
                Protocol.error_response ~id:p_id ~code msg)
      in
      enqueue conn json)
    slots;
  flush_writes state

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

let chunk_bytes = 65536

let trim_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let read_conn state conn batch =
  let buf = Bytes.create chunk_bytes in
  match Unix.read conn.fd buf 0 chunk_bytes with
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      conn.alive <- false
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | 0 -> conn.alive <- false
  | n ->
      let chunk = Bytes.sub_string buf 0 n in
      Buffer.add_string conn.inbuf chunk;
      if String.contains chunk '\n' then begin
        let data = Buffer.contents conn.inbuf in
        Buffer.clear conn.inbuf;
        let rec go = function
          | [] -> ()
          | [ rest ] -> Buffer.add_string conn.inbuf rest
          | line :: tl ->
              let line = trim_cr line in
              (if line <> "" then
                 if String.length line > state.cfg.max_request_bytes then begin
                   count_request state;
                   count_error state;
                   enqueue conn
                     (Protocol.error_response ~id:None ~code:Protocol.Oversized
                        (Printf.sprintf
                           "request line of %d bytes exceeds the server cap of %d"
                           (String.length line) state.cfg.max_request_bytes))
                 end
                 else batch := (conn, line) :: !batch);
              go tl
        in
        go (String.split_on_char '\n' data)
      end;
      (* an unterminated line beyond the cap can never become a request;
         answer once and drop the connection (the stream cannot resync) *)
      if
        conn.alive
        && (not conn.close_after_flush)
        && Buffer.length conn.inbuf > state.cfg.max_request_bytes
      then begin
        count_request state;
        count_error state;
        enqueue conn
          (Protocol.error_response ~id:None ~code:Protocol.Oversized
             (Printf.sprintf
                "request line exceeds the server cap of %d bytes"
                state.cfg.max_request_bytes));
        conn.close_after_flush <- true
      end

(* ------------------------------------------------------------------ *)
(* The loop                                                            *)
(* ------------------------------------------------------------------ *)

let accept_ready state srv =
  let rec go () =
    match Unix.accept srv with
    | fd, _ ->
        state.conns <-
          {
            fd;
            inbuf = Buffer.create 256;
            out = Buffer.create 256;
            alive = true;
            close_after_flush = false;
          }
          :: state.conns;
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let round state srv =
  let fds = srv :: List.map (fun c -> c.fd) state.conns in
  match Unix.select fds [] [] 0.25 with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | ready, _, _ ->
      if List.memq srv ready then accept_ready state srv;
      let batch = ref [] in
      List.iter
        (fun conn ->
          if conn.alive && List.memq conn.fd ready then
            read_conn state conn batch)
        state.conns;
      let batch = List.rev !batch in
      if batch <> [] then process_batch state batch else flush_writes state;
      state.conns <-
        List.filter
          (fun c ->
            if c.alive then true
            else begin
              (try Unix.close c.fd with Unix.Unix_error _ -> ());
              false
            end)
          state.conns

let record_manifest state =
  if Obs.enabled () then begin
    Obs.Manifest.add_result "requests" (Json.Int state.requests);
    Obs.Manifest.add_result "ok" (Json.Int state.ok);
    Obs.Manifest.add_result "request_errors" (Json.Int state.errors);
    Obs.Manifest.add_result "batches" (Json.Int state.batches);
    Obs.Manifest.add_result "max_batch" (Json.Int state.max_batch);
    Obs.Manifest.add_result "cache" (Cache.stats_json state.cache)
  end

let summary_of state =
  {
    requests = state.requests;
    ok = state.ok;
    errors = state.errors;
    batches = state.batches;
    max_batch = state.max_batch;
    cache = Cache.stats state.cache;
  }

let run cfg =
  if cfg.jobs < 1 then invalid_arg "Serve.Server.run: jobs must be >= 1";
  if cfg.max_request_bytes < 1 then
    invalid_arg "Serve.Server.run: max_request_bytes must be positive";
  (* a client that vanished mid-write must surface as EPIPE, not kill us *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  if Sys.file_exists cfg.socket_path then (
    try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let cleanup_socket () =
    (try Unix.close srv with Unix.Unix_error _ -> ());
    try Unix.unlink cfg.socket_path with Unix.Unix_error _ | Sys_error _ -> ()
  in
  match
    Unix.bind srv (Unix.ADDR_UNIX cfg.socket_path);
    Unix.listen srv 64;
    Unix.set_nonblock srv
  with
  | exception e ->
      cleanup_socket ();
      raise e
  | () ->
      cfg.on_listening ();
      let state =
        {
          cfg;
          cache = Cache.create ~budget_bytes:cfg.cache_budget_bytes ();
          pool = Par.create ~jobs:cfg.jobs ();
          started_ns = Obs.now_ns ();
          conns = [];
          stopping = false;
          requests = 0;
          ok = 0;
          errors = 0;
          batches = 0;
          max_batch = 0;
        }
      in
      let finish () =
        List.iter
          (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
          state.conns;
        state.conns <- [];
        Par.shutdown state.pool;
        cleanup_socket ();
        record_manifest state;
        summary_of state
      in
      (try
         while not (state.stopping || cfg.stop ()) do
           round state srv
         done
       with e ->
         ignore (finish ());
         raise e);
      finish ()
