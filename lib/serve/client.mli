(** A small blocking client for the [migsyn serve] socket.

    This is the test-harness side of the protocol: it powers
    [migsyn client], the serve load driver and the end-to-end tests.
    One {!t} wraps one connection; {!rpc} writes a request line and
    blocks for the matching response line (the server answers each
    connection in request order, so pairing is positional). *)

type t

val connect : ?retries:int -> ?delay:float -> string -> t
(** [connect path] dials the Unix-domain socket at [path].  While the
    socket is missing or refusing — the daemon may still be binding —
    the attempt is retried [retries] times (default 40) every [delay]
    seconds (default 0.05).
    @raise Failure when the server never comes up. *)

val rpc : t -> Obs.Json.t -> Obs.Json.t
(** Send one request object (a newline is appended) and read one
    response line.
    @raise Failure on EOF or a response that is not valid JSON. *)

val send_line : t -> string -> unit
(** Write a raw line verbatim (plus the newline).  For protocol tests
    that need to send malformed framing on purpose. *)

val recv_line : t -> string
(** Read the next newline-terminated line.
    @raise Failure on EOF. *)

val close : t -> unit
