(** The [migsyn-serve/1] wire protocol.

    Framing is newline-delimited JSON: a client sends one request object
    per line and the server answers one response object per line, in the
    order the requests arrived on that connection.  The full operator-facing
    specification — schemas, error envelopes, cache semantics, versioning
    rules, captured transcripts — lives in docs/PROTOCOL.md; this module is
    the single codec both the server and the bundled client use, built on
    the dependency-free {!Obs.Json} printer/parser.

    Decoding is total: any byte sequence maps either to a [request] or to
    an [error_code] the server turns into a structured error envelope, so a
    malformed line can never take the daemon down. *)

val schema : string
(** ["migsyn-serve/1"].  Requests must carry it verbatim; responses always
    do.  See docs/PROTOCOL.md for the versioning rules. *)

(** How the circuit travels: inline source text in one of the five
    supported formats ([blif], [bench], [pla], [aag], [aig]), or a
    filesystem path the {e server} resolves (extension-dispatched like the
    CLI; requires a shared filesystem). *)
type circuit =
  | Inline of { format : string; source : string }
  | File of string

type synth = {
  circuit : circuit;
  flows : string list;
      (** flow scripts: one runs directly; several race as a portfolio *)
  algorithm : string option;
      (** a canonical algorithm name instead of explicit scripts *)
  effort : int option;  (** cycle effort for [algorithm] requests *)
  jobs : int option;  (** per-request parallelism budget (portfolio race) *)
  cost : string option;  (** portfolio race cost name *)
  arch : string option;  (** ["serial"] or ["ROWSxCOLUMNS"] *)
  realization : string;  (** ["imp"] or ["maj"] (default) *)
  verify : bool;  (** equivalence-check the result (default [true]) *)
}

type op =
  | Synth of synth
  | Metrics  (** server + cache counters as a JSON object *)
  | Ping  (** liveness + schema discovery *)
  | Shutdown  (** acknowledge, then stop the daemon cleanly *)

type request = { id : string option; op : op }

(** Machine-readable error classes of the error envelope; the daemon stays
    alive whatever the class. *)
type error_code =
  | Parse_error  (** the line is not valid JSON *)
  | Bad_schema  (** missing/unknown ["schema"] member *)
  | Bad_request  (** a field is missing, malformed or contradictory *)
  | Oversized  (** the request line exceeds the server's byte cap *)
  | Unsupported_op  (** unknown ["op"] *)
  | Synthesis_failed  (** the flow or the mapping backend failed *)
  | Verification_failed  (** the optimized network is not equivalent *)
  | Io_error  (** a [File] circuit could not be read or parsed *)

val code_name : error_code -> string
(** The snake_case wire name, e.g. ["bad_request"]. *)

val decode_request : string -> (request, error_code * string) result
(** Decode one request line (without the trailing newline). *)

val encode_request : request -> string
(** One compact JSON line (no trailing newline) — the client side. *)

(** {1 Responses} *)

val ok_response :
  id:string option -> cache:string -> seconds:float -> result:Obs.Json.t -> Obs.Json.t
(** [cache] is ["hit"], ["miss"], ["coalesced"] or ["none"] (non-synth
    ops); [result] is the op-specific payload — for cache hits it is the
    {e same} stored tree the cold response serialized, so the two renders
    are byte-identical. *)

val error_response : id:string option -> code:error_code -> string -> Obs.Json.t

val response_line : Obs.Json.t -> string
(** Compact JSON plus the terminating newline. *)

val strip_volatile : Obs.Json.t -> Obs.Json.t
(** Drop the envelope members that legitimately differ between repeat
    answers (["cache"], ["seconds"]) — the stable view the CI smoke test
    byte-compares between a cold and a hot response. *)
