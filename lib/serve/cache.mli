(** The hash-consed synthesis result cache.

    The cache key is the {e strash-canonical} form of the request: the
    input MIG is re-canonicalized with the registered strash pass
    (duplicate gates merged, dead id ranges compacted — DESIGN.md §14), and
    the key serializes the canonical graph's signed fanin triples and PO
    literals together with the flow-script text, the architecture, the
    realization and the verification switch.  Two structurally equivalent
    circuits — equal up to dead nodes, duplicate gates and order-preserving
    renumbering — therefore collide to one key however they were built or
    which of the five input formats carried them, so a million equivalent
    requests cost one synthesis.  Functionally different circuits (or the
    same circuit under a different flow/arch) get distinct keys.

    Values are the served result payloads as {!Obs.Json} trees; a hit
    serializes the {e same} tree the cold response did, which is what makes
    hot answers bit-identical to cold ones (CI-asserted).  The store is an
    LRU bounded by a byte budget (keys + rendered payloads), with hit /
    miss / coalesced / eviction counters mirrored into the {!Obs} registry
    (names [serve.cache/*]) so they surface in [--metrics] exports and
    run-ledger manifests.

    The cache is {e not} thread-safe: the server drives it from the accept
    loop's domain only — worker domains synthesize, the main domain stores. *)

type t

type stats = {
  hits : int;
  misses : int;
  coalesced : int;
      (** duplicate keys answered from one in-batch synthesis *)
  evictions : int;
  entries : int;
  bytes : int;  (** current footprint (keys + rendered payloads) *)
  budget_bytes : int;
}

val create : ?budget_bytes:int -> unit -> t
(** [budget_bytes] defaults to 256 MiB; it must be positive.  The newest
    entry is never evicted, so one oversized result can exceed the budget
    momentarily rather than thrash. *)

val canonical_key :
  flow:string ->
  arch:string ->
  realization:string ->
  verify:bool ->
  Core.Mig.t ->
  Core.Mig.t * string
(** [(canon, key)]: the strash-canonical graph (the server synthesizes
    {e this} graph, so equal keys imply bit-identical synthesis inputs)
    and the cache key. *)

val fingerprint : string -> string
(** Short hex digest of a key — the observable name of an equivalence
    class in responses and transcripts (the full key is megabytes for
    large circuits). *)

val find : t -> string -> Obs.Json.t option
(** Counts a hit and refreshes recency on success; counts nothing on a
    miss (the server decides whether the miss leads to a synthesis or
    coalesces into one already running — see {!note_miss} /
    {!note_coalesced}). *)

val store : t -> string -> Obs.Json.t -> unit
(** Insert (or refresh) an entry, then evict least-recently-used entries
    until the byte budget holds. *)

val note_miss : t -> unit

val note_coalesced : t -> unit

val stats : t -> stats

val stats_json : t -> Obs.Json.t
(** The {!stats} record as the ["cache"] object of metrics responses. *)
