(* Strash-keyed LRU result cache.  See cache.mli for the contract. *)

module Json = Obs.Json

(* Obs mirrors: visible in --metrics exports and run manifests. *)
let c_hits = Obs.counter "serve.cache/hits"
let c_misses = Obs.counter "serve.cache/misses"
let c_coalesced = Obs.counter "serve.cache/coalesced"
let c_evictions = Obs.counter "serve.cache/evictions"

type stats = {
  hits : int;
  misses : int;
  coalesced : int;
  evictions : int;
  entries : int;
  bytes : int;
  budget_bytes : int;
}

type entry = {
  key : string;
  payload : Json.t;
  bytes : int;
  mutable prev : entry option;  (* towards MRU *)
  mutable next : entry option;  (* towards LRU *)
}

type t = {
  table : (string, entry) Hashtbl.t;
  budget_bytes : int;
  mutable head : entry option;  (* most recently used *)
  mutable tail : entry option;  (* least recently used *)
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable coalesced : int;
  mutable evictions : int;
}

let default_budget = 256 * 1024 * 1024

let create ?(budget_bytes = default_budget) () =
  if budget_bytes <= 0 then
    invalid_arg "Serve.Cache.create: budget_bytes must be positive";
  {
    table = Hashtbl.create 256;
    budget_bytes;
    head = None;
    tail = None;
    bytes = 0;
    hits = 0;
    misses = 0;
    coalesced = 0;
    evictions = 0;
  }

(* ---------------- intrusive LRU list ---------------- *)

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.head <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.prev <- None;
  e.next <- t.head;
  (match t.head with Some h -> h.prev <- Some e | None -> t.tail <- Some e);
  t.head <- Some e

let remove_entry t e =
  unlink t e;
  Hashtbl.remove t.table e.key;
  t.bytes <- t.bytes - e.bytes

(* ---------------- canonical key ---------------- *)

(* Per-entry bookkeeping overhead charged against the byte budget, so a
   flood of tiny entries cannot grow the table unboundedly. *)
let entry_overhead = 128

let canonical_key ~flow ~arch ~realization ~verify mig =
  let canon, _changed = Core.Mig_passes.strash mig in
  let buf = Buffer.create (32 * (Core.Mig.num_nodes canon + 16)) in
  Buffer.add_string buf "migsyn-serve-key/1\n";
  Printf.bprintf buf "pis=%d\n" (Core.Mig.num_pis canon);
  (* The canonical graph is densely numbered and fully live (strash's
     postcondition), so an id-order scan is a complete, deterministic
     serialization of the signed fanin triples. *)
  for n = 0 to Core.Mig.num_nodes canon - 1 do
    match Core.Mig.kind canon n with
    | Core.Mig.Gate when not (Core.Mig.is_dead canon n) ->
        let f = Core.Mig.fanins canon n in
        Printf.bprintf buf "g%d:%d,%d,%d\n" n f.(0) f.(1) f.(2)
    | _ -> ()
  done;
  Array.iter (fun s -> Printf.bprintf buf "o%d\n" s) (Core.Mig.pos canon);
  Printf.bprintf buf "flow=%s\n" flow;
  Printf.bprintf buf "arch=%s\n" arch;
  Printf.bprintf buf "realization=%s\n" realization;
  Printf.bprintf buf "verify=%b\n" verify;
  (canon, Buffer.contents buf)

let fingerprint key = Digest.to_hex (Digest.string key)

(* ---------------- operations ---------------- *)

let find t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some e ->
      t.hits <- t.hits + 1;
      Obs.incr c_hits;
      unlink t e;
      push_front t e;
      Some e.payload

let note_miss t =
  t.misses <- t.misses + 1;
  Obs.incr c_misses

let note_coalesced t =
  t.coalesced <- t.coalesced + 1;
  Obs.incr c_coalesced

let evict_to_budget t =
  (* Never evict the single newest entry: an oversized result passes
     through rather than thrashing the whole cache. *)
  while t.bytes > t.budget_bytes && Hashtbl.length t.table > 1 do
    match t.tail with
    | None -> assert false
    | Some lru ->
        remove_entry t lru;
        t.evictions <- t.evictions + 1;
        Obs.incr c_evictions
  done

let store t key payload =
  (match Hashtbl.find_opt t.table key with
  | Some old -> remove_entry t old
  | None -> ());
  let bytes =
    String.length key + String.length (Json.to_string payload) + entry_overhead
  in
  let e = { key; payload; bytes; prev = None; next = None } in
  Hashtbl.replace t.table key e;
  push_front t e;
  t.bytes <- t.bytes + bytes;
  evict_to_budget t

let stats t : stats =
  {
    hits = t.hits;
    misses = t.misses;
    coalesced = t.coalesced;
    evictions = t.evictions;
    entries = Hashtbl.length t.table;
    bytes = t.bytes;
    budget_bytes = t.budget_bytes;
  }

let stats_json t =
  let s = stats t in
  Json.Assoc
    [
      ("hits", Json.Int s.hits);
      ("misses", Json.Int s.misses);
      ("coalesced", Json.Int s.coalesced);
      ("evictions", Json.Int s.evictions);
      ("entries", Json.Int s.entries);
      ("bytes", Json.Int s.bytes);
      ("budget_bytes", Json.Int s.budget_bytes);
    ]
