let mig_of (e : Io.Benchmarks.entry) = Core.Mig_of_network.convert (e.Io.Benchmarks.build ())

let maj_cost mig = Core.Rram_cost.of_mig Core.Rram_cost.Maj mig

let effort_sweep ?(efforts = [ 0; 2; 5; 10; 20; 40 ]) e =
  let mig = mig_of e in
  List.map
    (fun effort ->
      let optimized = if effort = 0 then Core.Mig.cleanup mig else Core.Mig_opt.steps ~effort mig in
      (effort, maj_cost optimized))
    efforts

type rule_variant = { variant : string; cost : Core.Rram_cost.cost; gates : int }

(* Hand-rolled optimizer loops that disable one mechanism each. *)
let rule_ablation ?(effort = 20) e =
  let source = mig_of e in
  let drive cycle =
    let current = ref (Core.Mig.cleanup source) in
    let continue_ = ref true and n = ref 0 in
    while !continue_ && !n < effort do
      if not (cycle !current) then continue_ := false;
      current := Core.Mig.cleanup !current;
      incr n
    done;
    !current
  in
  let variants =
    [
      ("none (initial MIG)", fun () -> Core.Mig.cleanup source);
      ( "push-up only, complement-blind",
        fun () -> drive (fun m -> Core.Mig_passes.push_up ~through_compl:false m) );
      ("push-up only", fun () -> drive (fun m -> Core.Mig_passes.push_up m));
      ( "push-up + Ω.I (full Alg. 4)",
        fun () -> Core.Mig_opt.steps ~effort source );
      ( "Alg. 4 without the Ω.I passes",
        fun () ->
          drive (fun m ->
              let a = Core.Mig_passes.push_up m in
              let b = Core.Mig_passes.push_up m in
              a || b) );
      ( "Alg. 2 (depth, with Ψ.R)",
        fun () -> Core.Mig_opt.depth ~effort source );
    ]
  in
  List.map
    (fun (variant, run) ->
      let m = run () in
      { variant; cost = maj_cost m; gates = Core.Mig.size m })
    variants

let fanout_limit_sweep ?(effort = 20) ?(limits = [ 1; 2; 4; 1000000 ]) e =
  let source = mig_of e in
  List.map
    (fun limit ->
      let push_up = Core.Mig_passes.push_up ~fanout_limit:limit in
      let current = ref (Core.Mig.cleanup source) in
      let continue_ = ref true and n = ref 0 in
      while !continue_ && !n < effort do
        let c1 = push_up !current in
        let c2 =
          Core.Mig_passes.compl_prop (Core.Mig_passes.Weighted Core.Rram_cost.Maj) !current
        in
        let c3 = push_up !current in
        let c4 = Core.Mig_passes.balance !current in
        if not (c1 || c2 || c3 || c4) then continue_ := false;
        current := Core.Mig.cleanup !current;
        incr n
      done;
      (limit, maj_cost !current))
    limits

let bdd_order_sweep e =
  let net = e.Io.Benchmarks.build () in
  List.map
    (fun (name, heuristic) ->
      match
        Bdd_lib.Bdd_of_network.build ~max_nodes:500_000
          ~perm:(Bdd_lib.Bdd_order.order heuristic net)
          net
      with
      | built ->
          let c = Rram.Compile_bdd.compile ~mode:`Levelized built in
          (name, c.Rram.Compile_bdd.bdd_nodes, c.Rram.Compile_bdd.measured_steps)
      | exception Bdd_lib.Bdd.Limit_exceeded -> (name, -1, -1))
    [
      ("natural", Bdd_lib.Bdd_order.Natural);
      ("dfs", Bdd_lib.Bdd_order.Dfs);
      ("force-20", Bdd_lib.Bdd_order.Force 20);
    ]

type plim_comparison = {
  gates : int;
  plim_instructions : int;
  plim_cells : int;
  maj_steps : int;
  imp_steps : int;
}

let plim_row ?(effort = 20) e =
  let mig = Core.Mig_opt.steps ~effort (mig_of e) in
  let plim = Rram.Plim.compile mig in
  let maj = Rram.Compile_mig.compile Core.Rram_cost.Maj mig in
  let imp = Rram.Compile_mig.compile Core.Rram_cost.Imp mig in
  {
    gates = Core.Mig.size mig;
    plim_instructions = plim.Rram.Plim.instructions;
    plim_cells = plim.Rram.Plim.cells_used;
    maj_steps = maj.Rram.Compile_mig.measured_steps;
    imp_steps = imp.Rram.Compile_mig.measured_steps;
  }

let schedule_row ?(effort = 20) e =
  let mig = Core.Mig_opt.steps ~effort (mig_of e) in
  let asap = Core.Rram_cost.of_levels Core.Rram_cost.Maj (Core.Mig_schedule.asap mig) in
  let bal =
    Core.Rram_cost.of_levels Core.Rram_cost.Maj (Core.Mig_schedule.balanced mig)
  in
  (asap, bal)

let yield_curve ?seed ?(effort = 10) ?(realization = Core.Rram_cost.Maj)
    ?(rates = [ 0.003; 0.01; 0.03 ]) ?(trials = 150) e =
  let mig = Core.Mig_opt.steps ~effort (mig_of e) in
  let compiled = Rram.Compile_mig.compile realization mig in
  let reference = Core.Mig_sim.eval mig in
  List.map
    (fun rate ->
      Rram.Faults.yield_comparison ?seed ~trials ~rate compiled.Rram.Compile_mig.program
        ~reference)
    rates

let boolean_rewrite_row ?(effort = 10) e =
  let mig = mig_of e in
  let area = Core.Mig_opt.area ~effort mig in
  let boolean = Core.Mig_opt.boolean ~effort mig in
  (Core.Mig.size mig, Core.Mig.size area, Core.Mig.size boolean)

let pp_effort_sweep ppf rows =
  List.iter
    (fun (effort, cost) ->
      Format.fprintf ppf "    effort %3d: %a@," effort Core.Rram_cost.pp cost)
    rows

let pp_rule_ablation ppf rows =
  List.iter
    (fun { variant; cost; gates } ->
      Format.fprintf ppf "    %-34s %a gates=%d@," variant Core.Rram_cost.pp cost gates)
    rows

let pp_yield_curve ppf rows =
  List.iter
    (fun (c : Rram.Faults.comparison) ->
      Format.fprintf ppf
        "    rate %.4f: baseline %.2f | remap+retry %.2f | TMR %.2f   (%4.1f faults over %d cells; TMR array %d)@,"
        c.Rram.Faults.rate c.Rram.Faults.baseline.Rram.Faults.yield
        c.Rram.Faults.resilient.Rram.Faults.yield c.Rram.Faults.tmr.Rram.Faults.yield
        c.Rram.Faults.baseline.Rram.Faults.mean_faults c.Rram.Faults.cells
        c.Rram.Faults.tmr_cells)
    rows

let pp_fanout_sweep ppf rows =
  List.iter
    (fun (limit, cost) ->
      if limit >= 1000000 then Format.fprintf ppf "    limit ∞  : %a@," Core.Rram_cost.pp cost
      else Format.fprintf ppf "    limit %2d : %a@," limit Core.Rram_cost.pp cost)
    rows
