(* Massive Monte-Carlo yield campaigns over the statistical device model
   (DESIGN.md §12).  Every trial is an independent piece of silicon sampled
   by Rram.Variation; the per-trial seed is split off the campaign master by
   trial index, so the campaign is bit-reproducible for any --jobs. *)

type config = {
  trials : int;
  sigmas : float list;
  seed : int;
  jobs : int option;
  effort : int;
  algorithm : Core.Mig_opt.algorithm;
  realization : Core.Rram_cost.realization;
  vectors : int;
  max_attempts : int;
  spares : int;
  base : Rram.Variation.params;
}

let default =
  {
    trials = 200;
    sigmas = [ 0.25; 0.5; 1.0; 1.5 ];
    seed = 0xCA4E;
    jobs = None;
    effort = 10;
    algorithm = Core.Mig_opt.Steps;
    realization = Core.Rram_cost.Maj;
    vectors = 32;
    max_attempts = 4;
    spares = 32;
    base = Rram.Variation.nominal;
  }

let validate c =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if c.trials < 1 then err "trials must be at least 1 (got %d)" c.trials
  else if c.sigmas = [] then err "at least one sigma point is required"
  else begin
    match
      List.find_opt
        (fun s -> (not (Float.is_finite s)) || s < 0.0)
        c.sigmas
    with
    | Some s -> err "sigma must be a finite non-negative number (got %g)" s
    | None ->
        if c.vectors < 1 then err "vectors must be at least 1 (got %d)" c.vectors
        else if c.max_attempts < 1 then
          err "max-attempts must be at least 1 (got %d)" c.max_attempts
        else if c.spares < 0 then err "spares must be non-negative (got %d)" c.spares
        else if c.effort < 0 then err "effort must be non-negative (got %d)" c.effort
        else Rram.Variation.validate c.base
  end

type estimate = { successes : int; trials : int; yield : float; lo : float; hi : float }

(* Wilson score interval at 95%: well-behaved at yields of exactly 0 or 1,
   where the normal approximation collapses to a zero-width interval. *)
let wilson ~successes ~trials =
  let z = 1.959964 in
  let n = float_of_int trials in
  let p = float_of_int successes /. n in
  let z2 = z *. z in
  let denom = 1.0 +. (z2 /. n) in
  let center = (p +. (z2 /. (2.0 *. n))) /. denom in
  let half =
    z /. denom *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n)))
  in
  {
    successes;
    trials;
    yield = p;
    lo = Float.max 0.0 (center -. half);
    hi = Float.min 1.0 (center +. half);
  }

type arm_result = {
  arm : string;
  cells : int;
  outcomes : bool array;  (* outcome of trial [t] at index [t] *)
  estimate : estimate;
}

type point = { sigma : float; arms : arm_result list }

type t = {
  benchmark : string;
  realization : Core.Rram_cost.realization;
  trials : int;
  seed : int;
  universe : int;
  num_vectors : int;
  points : point list;
  wall_seconds : float;
}

(* Obs instruments (recording is gated on the global enable; worker-domain
   events merge into the caller's registry at pool shutdown). *)
let arm_names = [ "imp"; "maj"; "resilient"; "wear"; "tmr" ]
let trials_c = Obs.counter "exp.montecarlo/trials"

let survive_c =
  List.map (fun a -> (a, Obs.counter ("exp.montecarlo/survivals." ^ a))) arm_names
let attempts_res_h = Obs.histogram "exp.montecarlo/attempts.resilient"
let attempts_wear_h = Obs.histogram "exp.montecarlo/attempts.wear"
let moves_wear_h = Obs.histogram "exp.montecarlo/moves.wear"

let survived arm ok =
  if ok then Obs.incr (List.assoc arm survive_c);
  (arm, ok)

(* A synthetic placement whose only role is to cap the spare cells plain
   remapping may allocate at the sampled array size — a replacement beyond
   the crossbar would make Interp.run_on reject the program outright. *)
let capacity_placement universe =
  {
    Rram.Placement.rows = 1;
    columns = universe;
    row_of = [||];
    column_of = [||];
    utilization = 0.0;
  }

let run ?(config = default) ~name net =
  (match validate config with
  | Ok () -> ()
  | Error e -> invalid_arg ("Montecarlo.run: " ^ e));
  let t0 = Obs.now_ns () in
  let mig =
    Core.Mig_opt.run ~effort:config.effort config.algorithm
      (Core.Mig_of_network.convert net)
  in
  let compile r = (Rram.Compile_mig.compile r mig).Rram.Compile_mig.program in
  let imp = compile Core.Rram_cost.Imp and maj = compile Core.Rram_cost.Maj in
  let primary =
    match config.realization with Core.Rram_cost.Imp -> imp | Core.Rram_cost.Maj -> maj
  in
  let tmr = (Rram.Tmr.protect primary).Rram.Tmr.program in
  let vectors =
    List.filteri
      (fun i _ -> i < config.vectors)
      (Rram.Verify.vectors ~seed:config.seed primary.Rram.Program.num_inputs)
  in
  (* Tabulate the reference before fanning out: Mig_sim.eval walks the MIG
     with scratch marks inside the graph record, so calling it from worker
     domains would race.  Every reference lookup of a trial hits this
     table — campaigns only ever evaluate the fixed vector set. *)
  let reference =
    let table = Hashtbl.create (List.length vectors) in
    List.iter (fun v -> Hashtbl.replace table v (Core.Mig_sim.eval mig v)) vectors;
    fun v -> Hashtbl.find table v
  in
  (* One cell universe for every arm of a trial: equal seeds then sample
     equal silicon, so the arms are compared on the same broken devices. *)
  let universe =
    List.fold_left max 1
      [
        imp.Rram.Program.num_regs;
        maj.Rram.Program.num_regs;
        tmr.Rram.Program.num_regs;
        primary.Rram.Program.num_regs + config.spares;
      ]
  in
  let placement = capacity_placement universe in
  let trial params ~seed =
    Obs.incr trials_c;
    let bare arm prog =
      let devices = Rram.Variation.crossbar params ~seed universe in
      survived arm
        (List.for_all
           (fun v -> Rram.Interp.run_on ~devices prog v = reference v)
           vectors)
    in
    let controller arm ~wear_aware =
      let e = Rram.Variation.env params ~seed universe in
      (* BIST first: read-path faults never show up in stored-state
         differential diagnosis (the culprit's state is correct — only
         downstream writes diverge), so the controller screens every cell
         and repairs proactively before the retry loop handles the
         marginal stragglers. *)
      let screened = Rram.Variation.screen e.Rram.Variation.devices in
      let remap =
        if wear_aware then fun p ~bad ->
          (* The screen verdicts also prune the replacement pool — the
             wear-aware policy never repairs onto a cell it knows is bad,
             where plain remapping may land on a dead spare and burn a
             retry round discovering it. *)
          Rram.Remap.remap_wear_aware
            ~wear:(e.Rram.Variation.wear ())
            p ~bad:(bad @ screened)
        else fun p ~bad -> Rram.Remap.remap ~placement p ~bad
      in
      let start =
        match remap primary ~bad:screened with
        | Ok r -> r.Rram.Remap.program
        | Error _ -> primary
      in
      let report =
        Rram.Resilient.run ~max_attempts:config.max_attempts ~remap ~vectors
          e.Rram.Variation.env start ~reference
      in
      Obs.observe
        (if wear_aware then attempts_wear_h else attempts_res_h)
        report.Rram.Resilient.attempts;
      if wear_aware then
        Obs.observe moves_wear_h (List.length report.Rram.Resilient.moves);
      survived arm report.Rram.Resilient.ok
    in
    [
      bare "imp" imp;
      bare "maj" maj;
      controller "resilient" ~wear_aware:false;
      controller "wear" ~wear_aware:true;
      bare "tmr" tmr;
    ]
  in
  let cells_of = function
    | "imp" -> imp.Rram.Program.num_regs
    | "maj" -> maj.Rram.Program.num_regs
    | "tmr" -> tmr.Rram.Program.num_regs
    | _ -> primary.Rram.Program.num_regs
  in
  let points =
    List.map
      (fun sigma ->
        let params = Rram.Variation.scaled ~base:config.base sigma in
        (* Common random numbers: trial [t]'s seed depends only on the
           campaign master and [t], so every sigma point replays the same
           underlying draws and the curves are smoothly comparable. *)
        let rows =
          Par.map_seeded ?jobs:config.jobs ~seed:config.seed
            (fun ~seed () -> trial params ~seed)
            (List.init config.trials (fun _ -> ()))
        in
        let arms =
          List.map
            (fun arm ->
              let outcomes =
                Array.of_list (List.map (fun row -> List.assoc arm row) rows)
              in
              let successes =
                Array.fold_left (fun n ok -> if ok then n + 1 else n) 0 outcomes
              in
              {
                arm;
                cells = cells_of arm;
                outcomes;
                estimate = wilson ~successes ~trials:config.trials;
              })
            arm_names
        in
        { sigma; arms })
      config.sigmas
  in
  {
    benchmark = name;
    realization = config.realization;
    trials = config.trials;
    seed = config.seed;
    universe;
    num_vectors = List.length vectors;
    points;
    wall_seconds =
      Int64.to_float (Int64.sub (Obs.now_ns ()) t0) /. 1e9;
  }

let bits outcomes =
  String.init (Array.length outcomes) (fun i -> if outcomes.(i) then '1' else '0')

(* Note for the CI golden diff: [wall_seconds] is the only non-deterministic
   field and lives at top level, so `jq 'del(.wall_seconds)'` normalizes. *)
let to_json t =
  let open Obs.Json in
  Assoc
    [
      ("schema", String "migsyn-montecarlo/1");
      ("benchmark", String t.benchmark);
      ( "realization",
        String (Format.asprintf "%a" Core.Rram_cost.pp_realization t.realization) );
      ("trials", Int t.trials);
      ("seed", Int t.seed);
      ("universe", Int t.universe);
      ("vectors", Int t.num_vectors);
      ( "points",
        List
          (List.map
             (fun p ->
               Assoc
                 [
                   ("sigma", Float p.sigma);
                   ( "arms",
                     List
                       (List.map
                          (fun a ->
                            Assoc
                              [
                                ("arm", String a.arm);
                                ("cells", Int a.cells);
                                ("successes", Int a.estimate.successes);
                                ("yield", Float a.estimate.yield);
                                ("ci95", List [ Float a.estimate.lo; Float a.estimate.hi ]);
                                ("outcomes", String (bits a.outcomes));
                              ])
                          p.arms) );
                 ])
             t.points) );
      ("wall_seconds", Float t.wall_seconds);
    ]

let pp ppf t =
  Format.fprintf ppf
    "@[<v>Monte-Carlo yield campaign: %s, %d trials/sigma, seed %#x, %a primary@,\
     %d-cell universe, %d test vectors, %.2f s@,"
    t.benchmark t.trials t.seed Core.Rram_cost.pp_realization t.realization t.universe
    t.num_vectors t.wall_seconds;
  List.iter
    (fun p ->
      Format.fprintf ppf "  sigma %-5.2f" p.sigma;
      List.iter
        (fun a ->
          Format.fprintf ppf " | %s %.3f [%.3f,%.3f]" a.arm a.estimate.yield
            a.estimate.lo a.estimate.hi)
        p.arms;
      Format.fprintf ppf "@,")
    t.points;
  Format.fprintf ppf "@]"
