(** Ablation studies for the design choices DESIGN.md calls out.

    Each study isolates one mechanism of the synthesis flow and measures its
    contribution on benchmark circuits:

    - {!effort_sweep}: the outer-loop cycle count (the paper fixes 40 —
      where does the benefit saturate?);
    - {!rule_ablation}: what each ingredient of the step optimizer buys
      (push-up alone, + Ω.I complement propagation, + crossing complemented
      edges);
    - {!fanout_limit_sweep}: the duplication bound of the multi-objective
      algorithm — the knob that trades RRAM count against step count;
    - {!bdd_order_sweep}: variable-ordering heuristics for the BDD baseline;
    - {!plim_row}: sequential PLiM (RM3) execution versus the
      level-parallel MAJ/IMP realizations;
    - {!yield_curve}: functional yield under stuck-at defects — unprotected
      vs defect-aware remapping vs TMR majority voting. *)

val effort_sweep :
  ?efforts:int list -> Io.Benchmarks.entry -> (int * Core.Rram_cost.cost) list
(** (effort, MAJ-realization cost after step optimization). *)

type rule_variant = {
  variant : string;
  cost : Core.Rram_cost.cost;  (** MAJ realization *)
  gates : int;
}

val rule_ablation : ?effort:int -> Io.Benchmarks.entry -> rule_variant list

val fanout_limit_sweep :
  ?effort:int ->
  ?limits:int list ->
  Io.Benchmarks.entry ->
  (int * Core.Rram_cost.cost) list
(** (limit, MAJ cost after the multi-objective algorithm with that
    duplication bound). *)

val bdd_order_sweep :
  Io.Benchmarks.entry -> (string * int * int) list
(** (heuristic, BDD nodes, levelized steps); entries whose BDD overflows
    report [(name, -1, -1)]. *)

type plim_comparison = {
  gates : int;
  plim_instructions : int;
  plim_cells : int;
  maj_steps : int;
  imp_steps : int;
}

val plim_row : ?effort:int -> Io.Benchmarks.entry -> plim_comparison

val schedule_row : ?effort:int -> Io.Benchmarks.entry -> Core.Rram_cost.cost * Core.Rram_cost.cost
(** (ASAP cost, slack-balanced cost) of the step-optimized MIG under the MAJ
    realization — the free RRAM reduction that level scheduling provides at
    unchanged (or better) step count. *)

val yield_curve :
  ?seed:int ->
  ?effort:int ->
  ?realization:Core.Rram_cost.realization ->
  ?rates:float list ->
  ?trials:int ->
  Io.Benchmarks.entry ->
  Rram.Faults.comparison list
(** Monte-Carlo functional yield versus per-cell stuck-at rate for the
    step-optimized program, comparing three execution regimes on the same
    defect maps: as compiled, with the {!Rram.Resilient} remap/retry
    controller, and under {!Rram.Tmr} majority voting.  One comparison per
    rate.  [seed] pins the defect-map streams (default
    {!Rram.Faults.yield_comparison}'s), making the whole curve
    reproducible. *)

val boolean_rewrite_row :
  ?effort:int -> Io.Benchmarks.entry -> int * int * int
(** (initial gates, after Alg. 1, after Alg. 1 + cut-based Boolean
    rewriting) — what the beyond-paper Boolean pass adds over the paper's
    algebraic area optimization. *)

val pp_effort_sweep : Format.formatter -> (int * Core.Rram_cost.cost) list -> unit
val pp_rule_ablation : Format.formatter -> rule_variant list -> unit
val pp_fanout_sweep : Format.formatter -> (int * Core.Rram_cost.cost) list -> unit
val pp_yield_curve : Format.formatter -> Rram.Faults.comparison list -> unit
