(** Longitudinal regression analysis over run records and baselines.

    [migsyn report] (and CI) compare two {e sources} — a run ledger, a
    single run manifest, or one of the committed baseline documents — row
    by row and metric by metric:

    - rows carry a {e stable key} (circuit × algorithm for the bench-opt
      baseline, σ × arm for Monte-Carlo campaigns, span path for run
      manifests) so the same measurement is matched across runs whatever
      the file order;
    - {e noisy} metrics (wall-clock derived: ["seconds"], ["wall_seconds"],
      any ["*_ns"] or ["*_rps"]) compare under a relative threshold plus an
      absolute floor, because timing jitter is not a regression;
    - every other metric is {e exact}: gate counts, Table I costs,
      Monte-Carlo outcomes and span call counts are deterministic, so any
      difference is a real behavioral change and is flagged regardless of
      direction.

    A regression is: an exact mismatch, a noisy metric past the threshold
    in the slow direction, or a baseline row/metric missing from the
    current source.  Rows only present in the current source are
    informational (new coverage).  [migsyn report] exits 2 when
    {!regressed}, 1 on usage errors, 0 otherwise. *)

type value = Num of float | Text of string

type row = {
  r_key : string list;  (** stable identity, e.g. [["bench-opt"; "alu4"; "steps"]] *)
  r_metrics : (string * value) list;  (** metric name -> measured value *)
}

type source = {
  src_path : string;
  src_schema : string;  (** the document schema, or ["migsyn-ledger"] *)
  src_runs : int;  (** ledger records folded in; 1 for plain documents *)
  src_rows : row list;  (** unique keys; for ledgers the last run wins *)
}

val noisy_metric : string -> bool
(** Whether a metric name denotes a wall-time measurement (threshold
    comparison) rather than a deterministic quantity (exact comparison). *)

val rows_of_json : path:string -> Obs.Json.t -> source
(** Flatten one parsed document into comparable rows.  Supported schemas:
    ["migsyn-bench-opt/1"], ["migsyn-montecarlo/1"], ["migsyn-crossbar/1"],
    ["migsyn-bench/2"], ["migsyn-serve-bench/1"] and ["migsyn-run/1"].
    @raise Failure on an unknown or missing schema. *)

val load : string -> source
(** Read [path] and flatten it: a single JSON document is dispatched on its
    ["schema"]; a file that does not parse as one document is loaded as a
    JSON-lines ledger of ["migsyn-run/1"] records ({!Obs.Ledger.load}),
    with rows of later records superseding earlier ones under the same key.
    @raise Failure on unreadable, empty or unrecognized input. *)

type kind =
  | Exact_mismatch  (** deterministic metric changed value *)
  | Slower  (** noisy metric past the threshold, slow direction *)
  | Faster  (** noisy metric past the threshold, fast direction *)
  | Missing_metric  (** baseline metric absent from the current row *)
  | Missing_row  (** baseline row absent from the current source *)
  | Added_row  (** current row absent from the baseline (informational) *)

type finding = {
  f_key : string list;
  f_metric : string;  (** [""] for row-level findings *)
  f_baseline : value option;
  f_current : value option;
  f_delta_pct : float option;  (** for noisy comparisons with baseline > 0 *)
  f_kind : kind;
}

type t = {
  rp_baseline : source;
  rp_current : source;
  rp_threshold : float;
  rp_min_time : float;
  rp_ignored : string list;
  rp_regressions : finding list;  (** sorted worst-first (by |delta|, then key) *)
  rp_improvements : finding list;
  rp_added : finding list;
  rp_matched : int;  (** rows present in both sources *)
  rp_unchanged : int;  (** metrics equal or within noise *)
}

val compare :
  ?threshold:float ->
  ?min_time:float ->
  ?ignore_metrics:string list ->
  baseline:source ->
  current:source ->
  unit ->
  t
(** Match rows by key and compare every baseline metric.  [threshold]
    (default [0.25]) is the relative slow-down a noisy metric may show
    before it is a regression; [min_time] (default [0.005]) is the
    absolute floor in seconds (scaled to ns for [*_ns] metrics) below
    which noisy deltas are ignored — microsecond jitter on a microsecond
    pass is not signal.  [ignore_metrics] drops the named metrics from the
    comparison entirely (e.g. [["seconds"]] when checking determinism of a
    parallel run against a sequential one).
    @raise Invalid_argument on a negative or non-finite threshold,
    min_time, or an unknown metric classification request. *)

val regressed : t -> bool
val exit_code : t -> int
(** [2] when {!regressed}, [0] otherwise — [migsyn report]'s contract. *)

val to_markdown : t -> string
(** The human report: sources, thresholds, and one table per section
    (regressions / improvements / new rows), truncated past 50 rows. *)

val to_json : t -> Obs.Json.t
(** Schema ["migsyn-report/1"]: verdict, thresholds, and every finding. *)
