type cost = Core.Rram_cost.cost

let cost_pair (c : cost) = (c.Core.Rram_cost.rrams, c.Core.Rram_cost.steps)

(* ------------------------------------------------------------------ *)
(* Table II                                                             *)
(* ------------------------------------------------------------------ *)

type t2_row = {
  name : string;
  inputs : int;
  exact : bool;
  initial_gates : int;
  area_imp : cost;
  depth_imp : cost;
  rram_imp : cost;
  rram_maj : cost;
  step_imp : cost;
  step_maj : cost;
  paper : Io.Benchmarks.table2_ref;
}

let paper_t2 (e : Io.Benchmarks.entry) =
  match e.Io.Benchmarks.reference with
  | Io.Benchmarks.Table2_ref r -> r
  | Io.Benchmarks.Table3_ref _ -> invalid_arg "not a Table II entry"

let paper_t3 (e : Io.Benchmarks.entry) =
  match e.Io.Benchmarks.reference with
  | Io.Benchmarks.Table3_ref r -> r
  | Io.Benchmarks.Table2_ref _ -> invalid_arg "not a Table III entry"

let table2_row ?effort (e : Io.Benchmarks.entry) =
  Obs.with_span ~cat:"exp" ("exp/table2/" ^ e.Io.Benchmarks.name) @@ fun () ->
  let net = e.Io.Benchmarks.build () in
  let mig = Core.Mig_of_network.convert net in
  let cost realization m = Core.Rram_cost.of_mig realization m in
  let area = Core.Mig_opt.area ?effort mig in
  let depth = Core.Mig_opt.depth ?effort mig in
  let rram_i = Core.Mig_opt.rram_costs ?effort Core.Rram_cost.Imp mig in
  let rram_m = Core.Mig_opt.rram_costs ?effort Core.Rram_cost.Maj mig in
  let step = Core.Mig_opt.steps ?effort mig in
  {
    name = e.Io.Benchmarks.name;
    inputs = e.Io.Benchmarks.inputs;
    exact = e.Io.Benchmarks.exact;
    initial_gates = Core.Mig.size mig;
    area_imp = cost Core.Rram_cost.Imp area;
    depth_imp = cost Core.Rram_cost.Imp depth;
    rram_imp = cost Core.Rram_cost.Imp rram_i;
    rram_maj = cost Core.Rram_cost.Maj rram_m;
    step_imp = cost Core.Rram_cost.Imp step;
    step_maj = cost Core.Rram_cost.Maj step;
    paper = paper_t2 e;
  }

(* Suite-level fan-out: every [table*]/[profile] driver takes [?jobs] and
   maps its per-circuit row function over a Par pool.  Par.map collects
   results by index, so row order — and, the wall-time fields aside, row
   content — is bit-identical to the sequential run (DESIGN.md §11). *)
let table2 ?effort ?(jobs = 1) () =
  Par.map ~jobs (table2_row ?effort) Io.Benchmarks.table2

let pp_cell ppf (measured, paper) = Format.fprintf ppf "%5d/%-5d" measured paper

let pp_cost_cells ppf (c, (pp : Io.Benchmarks.pair)) =
  let r, s = cost_pair c in
  Format.fprintf ppf "%a %a" pp_cell (r, pp.Io.Benchmarks.r) pp_cell (s, pp.Io.Benchmarks.s)

let sum f rows = List.fold_left (fun acc r -> acc + f r) 0 rows

let pp_table2 ppf rows =
  Format.fprintf ppf
    "@[<v>Table II reproduction — measured/paper per cell (R then S per column)@,";
  Format.fprintf ppf
    "%-10s %3s | %-23s | %-23s | %-23s | %-23s | %-23s | %-23s@," "bench" "in"
    "Area-IMP" "Depth-IMP" "RRAM-IMP" "RRAM-MAJ" "Step-IMP" "Step-MAJ";
  List.iter
    (fun row ->
      let p = row.paper in
      Format.fprintf ppf "%-10s %3d | %a | %a | %a | %a | %a | %a%s@," row.name
        row.inputs pp_cost_cells
        (row.area_imp, p.Io.Benchmarks.area_imp)
        pp_cost_cells
        (row.depth_imp, p.Io.Benchmarks.depth_imp)
        pp_cost_cells
        (row.rram_imp, p.Io.Benchmarks.rram_imp)
        pp_cost_cells
        (row.rram_maj, p.Io.Benchmarks.rram_maj)
        pp_cost_cells
        (row.step_imp, p.Io.Benchmarks.step_imp)
        pp_cost_cells
        (row.step_maj, p.Io.Benchmarks.step_maj)
        (if row.exact then "" else "  (substitute)"))
    rows;
  let col f pf =
    ( sum (fun r -> fst (cost_pair (f r))) rows,
      sum (fun r -> snd (cost_pair (f r))) rows,
      sum (fun r -> (pf r.paper).Io.Benchmarks.r) rows,
      sum (fun r -> (pf r.paper).Io.Benchmarks.s) rows )
  in
  let print_sum label (mr, ms, pr, ps) =
    Format.fprintf ppf "  %-10s  measured R=%6d S=%6d   paper R=%6d S=%6d@," label mr
      ms pr ps
  in
  Format.fprintf ppf "@,Column sums:@,";
  print_sum "Area-IMP" (col (fun r -> r.area_imp) (fun p -> p.Io.Benchmarks.area_imp));
  print_sum "Depth-IMP" (col (fun r -> r.depth_imp) (fun p -> p.Io.Benchmarks.depth_imp));
  print_sum "RRAM-IMP" (col (fun r -> r.rram_imp) (fun p -> p.Io.Benchmarks.rram_imp));
  print_sum "RRAM-MAJ" (col (fun r -> r.rram_maj) (fun p -> p.Io.Benchmarks.rram_maj));
  print_sum "Step-IMP" (col (fun r -> r.step_imp) (fun p -> p.Io.Benchmarks.step_imp));
  print_sum "Step-MAJ" (col (fun r -> r.step_maj) (fun p -> p.Io.Benchmarks.step_maj));
  (* The paper's headline shape statements for Table II. *)
  let s_of f = float_of_int (sum (fun r -> snd (cost_pair (f r))) rows) in
  let r_of f = float_of_int (sum (fun r -> fst (cost_pair (f r))) rows) in
  Format.fprintf ppf "@,Shape checks (measured, paper's claim in parentheses):@,";
  Format.fprintf ppf
    "  Step-MAJ vs Depth-IMP steps: %.2fx fewer (paper: ~3.9x, 'almost one fourth')@,"
    (s_of (fun r -> r.depth_imp) /. s_of (fun r -> r.step_maj));
  Format.fprintf ppf
    "  RRAM-IMP vs Depth-IMP steps: %.1f%% fewer (paper: 30.43%%)@,"
    (100.0 *. (1.0 -. (s_of (fun r -> r.rram_imp) /. s_of (fun r -> r.depth_imp))));
  Format.fprintf ppf
    "  RRAM-IMP vs Area-IMP steps: %.1f%% fewer (paper: 35.39%%)@,"
    (100.0 *. (1.0 -. (s_of (fun r -> r.rram_imp) /. s_of (fun r -> r.area_imp))));
  Format.fprintf ppf
    "  RRAM-MAJ vs Step-MAJ RRAMs: %.1f%% fewer (paper: 19.78%%) at %.1f%% more steps (paper: 21.09%%)@]@,"
    (100.0 *. (1.0 -. (r_of (fun r -> r.rram_maj) /. r_of (fun r -> r.step_maj))))
    (100.0 *. ((s_of (fun r -> r.rram_maj) /. s_of (fun r -> r.step_maj)) -. 1.0))

(* ------------------------------------------------------------------ *)
(* Table III (left): versus the BDD flow [11]                          *)
(* ------------------------------------------------------------------ *)

type bdd_row = {
  name : string;
  bdd_nodes : int;
  bdd_levelized : int * int;
  bdd_sequential_steps : int;
  mig_imp : cost;
  mig_maj : cost;
  paper : Io.Benchmarks.table2_ref;
}

let table3_bdd_row ?effort ?(bdd_max_nodes = 2_000_000) (e : Io.Benchmarks.entry) =
  Obs.with_span ~cat:"exp" ("exp/table3_bdd/" ^ e.Io.Benchmarks.name) @@ fun () ->
  let net = e.Io.Benchmarks.build () in
  let perm = Bdd_lib.Bdd_order.order Bdd_lib.Bdd_order.Dfs net in
  let built = Bdd_lib.Bdd_of_network.build ~max_nodes:bdd_max_nodes ~perm net in
  let lev = Rram.Compile_bdd.compile ~mode:`Levelized built in
  let seq = Rram.Compile_bdd.compile ~mode:`Sequential built in
  let mig = Core.Mig_of_network.convert net in
  let rram_i = Core.Mig_opt.rram_costs ?effort Core.Rram_cost.Imp mig in
  let rram_m = Core.Mig_opt.rram_costs ?effort Core.Rram_cost.Maj mig in
  {
    name = e.Io.Benchmarks.name;
    bdd_nodes = lev.Rram.Compile_bdd.bdd_nodes;
    bdd_levelized =
      (lev.Rram.Compile_bdd.measured_rrams, lev.Rram.Compile_bdd.measured_steps);
    bdd_sequential_steps = seq.Rram.Compile_bdd.measured_steps;
    mig_imp = Core.Rram_cost.of_mig Core.Rram_cost.Imp rram_i;
    mig_maj = Core.Rram_cost.of_mig Core.Rram_cost.Maj rram_m;
    paper = paper_t2 e;
  }

let table3_bdd ?effort ?(jobs = 1) () =
  Par.map ~jobs (table3_bdd_row ?effort) Io.Benchmarks.table2

let pp_table3_bdd ppf rows =
  Format.fprintf ppf
    "@[<v>Table III (vs BDD flow [11]) — measured/paper where the paper reports@,";
  Format.fprintf ppf "%-10s | %6s %18s %8s | %-23s | %-23s@," "bench" "nodes"
    "BDD R/paper S/paper" "seq-S" "MIG-IMP (R S)" "MIG-MAJ (R S)";
  List.iter
    (fun row ->
      let p = row.paper in
      let br, bs = row.bdd_levelized in
      Format.fprintf ppf "%-10s | %6d %a %a %8d | %a | %a@," row.name row.bdd_nodes
        pp_cell
        (br, p.Io.Benchmarks.bdd.Io.Benchmarks.r)
        pp_cell
        (bs, p.Io.Benchmarks.bdd.Io.Benchmarks.s)
        row.bdd_sequential_steps pp_cost_cells
        (row.mig_imp, p.Io.Benchmarks.rram_imp)
        pp_cost_cells
        (row.mig_maj, p.Io.Benchmarks.rram_maj))
    rows;
  let total f = float_of_int (sum f rows) in
  let maj_steps = total (fun r -> snd (cost_pair r.mig_maj)) in
  let imp_steps = total (fun r -> snd (cost_pair r.mig_imp)) in
  let bdd_lev_steps = total (fun r -> snd r.bdd_levelized) in
  let bdd_seq_steps = total (fun r -> float_of_int r.bdd_sequential_steps |> int_of_float) in
  Format.fprintf ppf
    "@,Sums: BDD levelized S=%.0f, BDD sequential S=%.0f, MIG-IMP S=%.0f, MIG-MAJ S=%.0f@,"
    bdd_lev_steps bdd_seq_steps imp_steps maj_steps;
  Format.fprintf ppf
    "Shape: MIG-MAJ vs BDD steps %.1fx (levelized) / %.1fx (sequential) fewer — paper: ~8x@,"
    (bdd_lev_steps /. maj_steps)
    (bdd_seq_steps /. maj_steps);
  Format.fprintf ppf
    "       MIG-IMP vs BDD steps %.1fx (levelized) / %.1fx (sequential) fewer — paper: ~4.5x@,"
    (bdd_lev_steps /. imp_steps)
    (bdd_seq_steps /. imp_steps);
  (* the 135-input headline pair *)
  let largest = List.filter (fun r -> r.name = "apex6" || r.name = "x3") rows in
  if List.length largest = 2 then begin
    let bdd = sum (fun r -> snd r.bdd_levelized) largest in
    let bdd_seq = sum (fun r -> r.bdd_sequential_steps) largest in
    let maj = sum (fun r -> snd (cost_pair r.mig_maj)) largest in
    Format.fprintf ppf
      "Largest (apex6+x3, 135 inputs): MIG-MAJ %.1fx (lev) / %.1fx (seq) fewer steps — paper: 26.5x@,"
      (float_of_int bdd /. float_of_int maj)
      (float_of_int bdd_seq /. float_of_int maj)
  end;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Table III (right): versus the AIG flow [12]                         *)
(* ------------------------------------------------------------------ *)

type aig_row = {
  name : string;
  aig_nodes : int;
  aig_steps : int;
  mig_imp : cost;
  mig_maj : cost;
  paper : Io.Benchmarks.table3_ref;
}

let table3_aig_row ?effort (e : Io.Benchmarks.entry) =
  Obs.with_span ~cat:"exp" ("exp/table3_aig/" ^ e.Io.Benchmarks.name) @@ fun () ->
  let net = e.Io.Benchmarks.build () in
  let aig =
    Aig_lib.Aig_balance.balance (Aig_lib.Aig_rewrite.rewrite (Aig_lib.Aig_of_network.convert net))
  in
  let compiled = Rram.Compile_aig.compile ~mode:`Sequential aig in
  let mig = Core.Mig_of_network.convert net in
  let rram_i = Core.Mig_opt.rram_costs ?effort Core.Rram_cost.Imp mig in
  let rram_m = Core.Mig_opt.rram_costs ?effort Core.Rram_cost.Maj mig in
  {
    name = e.Io.Benchmarks.name;
    aig_nodes = compiled.Rram.Compile_aig.aig_nodes;
    aig_steps = compiled.Rram.Compile_aig.measured_steps;
    mig_imp = Core.Rram_cost.of_mig Core.Rram_cost.Imp rram_i;
    mig_maj = Core.Rram_cost.of_mig Core.Rram_cost.Maj rram_m;
    paper = paper_t3 e;
  }

let table3_aig ?effort ?(jobs = 1) () =
  Par.map ~jobs (table3_aig_row ?effort) Io.Benchmarks.table3_aig

let pp_table3_aig ppf rows =
  Format.fprintf ppf
    "@[<v>Table III (vs AIG flow [12]) — measured/paper@,";
  Format.fprintf ppf "%-10s | %5s %11s | %-23s | %-23s@," "bench" "ands" "AIG S/paper"
    "MIG-IMP (R S)" "MIG-MAJ (R S)";
  List.iter
    (fun row ->
      let p = row.paper in
      Format.fprintf ppf "%-10s | %5d %a | %a | %a@," row.name row.aig_nodes pp_cell
        (row.aig_steps, p.Io.Benchmarks.aig_steps)
        pp_cost_cells
        (row.mig_imp, p.Io.Benchmarks.mig_imp)
        pp_cost_cells
        (row.mig_maj, p.Io.Benchmarks.mig_maj))
    rows;
  let aig = float_of_int (sum (fun r -> r.aig_steps) rows) in
  let imp = float_of_int (sum (fun r -> snd (cost_pair r.mig_imp)) rows) in
  let maj = float_of_int (sum (fun r -> snd (cost_pair r.mig_maj)) rows) in
  Format.fprintf ppf
    "@,Sums: AIG S=%.0f, MIG-IMP S=%.0f, MIG-MAJ S=%.0f@,Shape: MIG-MAJ %.1fx fewer steps (paper: 7.1x), MIG-IMP %.1fx (paper: 2.57x)@]@,"
    aig imp maj (aig /. maj) (aig /. imp)

(* ------------------------------------------------------------------ *)
(* Profiled suite run and JSON export (bench --json)                   *)
(* ------------------------------------------------------------------ *)

type flow_spec = { flow_name : string; script : string }

let default_flows ?effort () =
  List.filter_map
    (fun name ->
      (* table2's five columns; bool-rewrite is the beyond-paper extra *)
      if name = "bool-rewrite" then None
      else
        Option.map
          (fun script -> { flow_name = name; script })
          (Core.Mig_flows.canonical_script ?effort name))
    Core.Mig_flows.canonical_names

let run_flow spec mig =
  Core.Mig_flows.run ~name:spec.flow_name (Core.Mig_flows.parse_exn spec.script) mig

type timed_alg = {
  flow : flow_spec;
  size : int;
  depth : int;
  imp : cost;
  maj : cost;
  seconds : float;
}

type profile_row = {
  bench : string;
  inputs : int;
  exact : bool;
  initial_size : int;
  initial_depth : int;
  algs : timed_alg list;
}

let profile_row ?effort ?flows (e : Io.Benchmarks.entry) =
  Obs.with_span ~cat:"exp" ("exp/profile/" ^ e.Io.Benchmarks.name) @@ fun () ->
  let flows = match flows with Some fs -> fs | None -> default_flows ?effort () in
  let mig = Core.Mig_of_network.convert (e.Io.Benchmarks.build ()) in
  let initial_size, initial_depth = Core.Mig_passes.size_and_depth mig in
  let algs =
    List.map
      (fun flow ->
        let t0 = Obs.now_ns () in
        let optimized = run_flow flow mig in
        let seconds = Int64.to_float (Int64.sub (Obs.now_ns ()) t0) /. 1e9 in
        let size, depth = Core.Mig_passes.size_and_depth optimized in
        {
          flow;
          size;
          depth;
          imp = Core.Rram_cost.of_mig Core.Rram_cost.Imp optimized;
          maj = Core.Rram_cost.of_mig Core.Rram_cost.Maj optimized;
          seconds;
        })
      flows
  in
  {
    bench = e.Io.Benchmarks.name;
    inputs = e.Io.Benchmarks.inputs;
    exact = e.Io.Benchmarks.exact;
    initial_size;
    initial_depth;
    algs;
  }

let profile ?effort ?flows ?(jobs = 1) ?(entries = Io.Benchmarks.table2) () =
  Par.map ~jobs (profile_row ?effort ?flows) entries

let cost_json (c : cost) =
  Obs.Json.Assoc
    [
      ("rrams", Obs.Json.Int c.Core.Rram_cost.rrams);
      ("steps", Obs.Json.Int c.Core.Rram_cost.steps);
    ]

let profile_json ~effort ~elapsed_seconds rows =
  let open Obs.Json in
  Assoc
    [
      ("schema", String "migsyn-bench/2");
      ("effort", Int effort);
      ("elapsed_seconds", Float elapsed_seconds);
      ( "benchmarks",
        List
          (List.map
             (fun (r : profile_row) ->
               Assoc
                 [
                   ("name", String r.bench);
                   ("inputs", Int r.inputs);
                   ("exact", Bool r.exact);
                   ( "initial",
                     Assoc
                       [ ("size", Int r.initial_size); ("depth", Int r.initial_depth) ]
                   );
                   ( "algorithms",
                     List
                       (List.map
                          (fun (a : timed_alg) ->
                            Assoc
                              [
                                ("algorithm", String a.flow.flow_name);
                                ("script", String a.flow.script);
                                ("size", Int a.size);
                                ("depth", Int a.depth);
                                ("imp", cost_json a.imp);
                                ("maj", cost_json a.maj);
                                ("seconds", Float a.seconds);
                              ])
                          r.algs) );
                 ])
             rows) );
    ]

(* ------------------------------------------------------------------ *)
(* Verification and the Table I cross-check                            *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let verify_entry ?(effort = 8) (e : Io.Benchmarks.entry) =
  let net = e.Io.Benchmarks.build () in
  let mig = Core.Mig_of_network.convert net in
  let optimized = Core.Mig_opt.rram_costs ~effort Core.Rram_cost.Maj mig in
  if not (Core.Mig_equiv.equivalent_network ~rounds:8 optimized net) then
    Error "optimized MIG differs from source network"
  else
    let* () =
      Rram.Verify.against_network
        (Rram.Compile_mig.compile Core.Rram_cost.Maj optimized).Rram.Compile_mig.program
        net
    in
    let* () =
      Rram.Verify.against_network
        (Rram.Compile_mig.compile Core.Rram_cost.Imp optimized).Rram.Compile_mig.program
        net
    in
    let* () =
      match
        Bdd_lib.Bdd_of_network.build ~max_nodes:1_000_000
          ~perm:(Bdd_lib.Bdd_order.order Bdd_lib.Bdd_order.Dfs net)
          net
      with
      | built ->
          Rram.Verify.against_network (Rram.Compile_bdd.compile built).Rram.Compile_bdd.program net
      | exception Bdd_lib.Bdd.Limit_exceeded -> Ok () (* BDD check skipped *)
    in
    Rram.Verify.against_network
      (Rram.Compile_aig.compile (Aig_lib.Aig_of_network.convert net)).Rram.Compile_aig.program
      net

let pp_table1_check ppf () =
  let single () =
    let mig = Core.Mig.create () in
    let a = Core.Mig.add_pi mig in
    let b = Core.Mig.add_pi mig in
    let c = Core.Mig.add_pi mig in
    ignore (Core.Mig.add_po mig (Core.Mig.maj mig a b c));
    mig
  in
  Format.fprintf ppf "@[<v>Table I cost model — formula vs executed program@,";
  List.iter
    (fun realization ->
      let r = Rram.Compile_mig.compile realization (single ()) in
      Format.fprintf ppf
        "  single majority gate, %a: formula %a, program rrams=%d steps=%d@,"
        Core.Rram_cost.pp_realization realization Core.Rram_cost.pp
        r.Rram.Compile_mig.analytic r.Rram.Compile_mig.measured_rrams
        r.Rram.Compile_mig.measured_steps)
    [ Core.Rram_cost.Imp; Core.Rram_cost.Maj ];
  List.iter
    (fun (name, net) ->
      let mig = Core.Mig_of_network.convert net in
      List.iter
        (fun realization ->
          let r = Rram.Compile_mig.compile realization mig in
          let ok =
            match Rram.Verify.against_network r.Rram.Compile_mig.program net with
            | Ok () -> "verified"
            | Error e -> "MISMATCH: " ^ e
          in
          Format.fprintf ppf
            "  %-12s %a: formula %a, program rrams=%d steps=%d (%s)@," name
            Core.Rram_cost.pp_realization realization Core.Rram_cost.pp
            r.Rram.Compile_mig.analytic r.Rram.Compile_mig.measured_rrams
            r.Rram.Compile_mig.measured_steps ok)
        [ Core.Rram_cost.Imp; Core.Rram_cost.Maj ])
    [
      ("full_adder", Logic.Funcgen.full_adder ());
      ("rd53", Logic.Funcgen.rd 5 3);
      ("comparator4", Logic.Funcgen.comparator 4);
      ("clip", Logic.Funcgen.clip ());
    ];
  Format.fprintf ppf "@]"
