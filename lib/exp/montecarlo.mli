(** Monte-Carlo yield campaigns over statistical device variability.

    Where {!Ablation.yield_curve} flips a coin per cell (stuck-at faults at
    a flat rate), this driver samples the {e physics} of every device with
    {!Rram.Variation} — lognormal LRS/HRS spreads, sense noise, endurance
    drift — and measures functional yield versus the variability scale σ
    for five execution arms on the {e same} sampled silicon:

    - ["imp"], ["maj"]: the two realizations run bare;
    - ["resilient"]: the primary realization behind the
      {!Rram.Resilient} detect/diagnose/remap/retry controller;
    - ["wear"]: the same controller steering repairs with
      {!Rram.Remap.remap_wear_aware} over live wear gauges;
    - ["tmr"]: {!Rram.Tmr} triple modular redundancy with MAJ-pulse voters.

    {b Determinism.} Trial [t] draws from PRNG stream
    [Logic.Prng.split_seed config.seed t] (via {!Par.map_seeded}) whatever
    the worker count, and every arm of a trial re-samples the same seed —
    identical silicon, identical noise.  Equal [(config, net)] give
    bit-identical campaigns for every [jobs]; sigma points share trial
    seeds (common random numbers), so curves compare smoothly across σ.

    Campaigns fan trials across the {!Par} domain pool; {!Obs} counters
    ([exp.montecarlo/*]) and attempt/move histograms are recorded per trial
    and merged exactly at pool shutdown. *)

type config = {
  trials : int;  (** Monte-Carlo trials per sigma point (≥ 1) *)
  sigmas : float list;  (** variability scales, each ≥ 0; [1.0] = nominal *)
  seed : int;  (** campaign master seed *)
  jobs : int option;  (** worker domains; [None] = {!Par.recommended_jobs} *)
  effort : int;  (** optimization effort before compiling *)
  algorithm : Core.Mig_opt.algorithm;
  realization : Core.Rram_cost.realization;  (** primary (protected) arm *)
  vectors : int;  (** test vectors evaluated per execution (≥ 1) *)
  max_attempts : int;  (** controller verification rounds (≥ 1) *)
  spares : int;  (** spare cells beyond the primary program (≥ 0) *)
  base : Rram.Variation.params;  (** device model scaled by each sigma *)
}

val default : config
(** 200 trials at σ ∈ {0.25, 0.5, 1.0, 1.5}, seed [0xCA4E], auto jobs,
    effort 10 [steps] optimization, MAJ primary, 32 vectors, 4 attempts,
    32 spares, {!Rram.Variation.nominal} devices. *)

val validate : config -> (unit, string) result
(** Rejects non-positive trial/vector/attempt counts, an empty or negative
    (or non-finite) sigma axis, negative spares or effort, and any
    {!Rram.Variation.validate} failure of [base]. *)

type estimate = {
  successes : int;
  trials : int;
  yield : float;  (** successes / trials *)
  lo : float;  (** Wilson 95% lower bound *)
  hi : float;  (** Wilson 95% upper bound *)
}

val wilson : successes:int -> trials:int -> estimate
(** Wilson score interval at 95% confidence — non-degenerate even at
    observed yields of exactly 0 or 1. *)

type arm_result = {
  arm : string;  (** one of imp / maj / resilient / wear / tmr *)
  cells : int;  (** registers of that arm's program (before remapping) *)
  outcomes : bool array;  (** per-trial success, index = trial number *)
  estimate : estimate;
}

type point = { sigma : float; arms : arm_result list }

type t = {
  benchmark : string;
  realization : Core.Rram_cost.realization;
  trials : int;
  seed : int;
  universe : int;  (** sampled cells per trial, shared by all arms *)
  num_vectors : int;
  points : point list;  (** one per sigma, in [config.sigmas] order *)
  wall_seconds : float;  (** the only non-deterministic field *)
}

val run : ?config:config -> name:string -> Logic.Network.t -> t
(** Optimize, compile and campaign the network.  [name] labels the report.
    @raise Invalid_argument when {!validate} rejects [config]. *)

val to_json : t -> Obs.Json.t
(** Schema ["migsyn-montecarlo/1"].  Deterministic except the top-level
    ["wall_seconds"] member — strip that one field and equal campaigns
    diff byte-identical (the CI smoke job does exactly this). *)

val pp : Format.formatter -> t -> unit
