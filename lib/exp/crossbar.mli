(** Serial-vs-crossbar Pareto comparison over the paper's benchmark set.

    For each Table II function, the step-optimized MIG (Alg. 4, the
    [Step-*] columns) is compiled twice: once with the historical
    unbounded-serial backend (one device per register, one micro-op per
    step — the Table I model) and once per crossbar geometry with
    {!Rram.Compile_crossbar}.  Three geometries are swept per function:
    the {!Rram.Compile_crossbar.fit}ted array (minimum latency), and the
    half- and quarter-row arrays (wide levels spill across extra waves —
    latency traded for a narrower array at higher utilization).  Every
    compiled program is re-verified against its MIG on the device
    simulator, and each point is marked Pareto-optimal or dominated
    within its row's {devices, latency, utilization} set (serial
    included as a competitor).

    On the fitted geometry the MAJ realization reproduces the serial
    step count exactly, so the headline check — crossbar latency never
    exceeds serial latency — holds with equality there; the constrained
    points show what the serial model hides: the latency cost of a real,
    bounded array. *)

type point = {
  p_arch : Core.Rram_cost.arch;
  p_analytic : Core.Rram_cost.triple;  (** wave-model prediction *)
  p_measured : Core.Rram_cost.triple;  (** from the compiled program *)
  p_waves : int;
  p_verified : bool;  (** simulator equivalence vs the source MIG *)
  p_pareto : bool;
      (** not dominated by any other point of this row (serial included) *)
}

type row = {
  name : string;
  inputs : int;
  exact : bool;  (** see {!Io.Benchmarks.entry} *)
  serial_analytic : Core.Rram_cost.cost;  (** Table I formula *)
  serial_devices : int;  (** measured, unbounded-serial backend *)
  serial_latency : int;
  points : point list;  (** widest geometry first (the fitted array) *)
}

type t = {
  realization : Core.Rram_cost.realization;
  effort : int option;
  rows : row list;
  elapsed_seconds : float;
}

val row : ?effort:int -> realization:Core.Rram_cost.realization -> Io.Benchmarks.entry -> row

val run :
  ?effort:int ->
  ?realization:Core.Rram_cost.realization ->
  ?jobs:int ->
  ?entries:Io.Benchmarks.entry list ->
  unit ->
  t
(** The Table II sweep (default MAJ realization, [jobs = 1], all 25
    functions).  Row content is deterministic; [elapsed_seconds] is the
    only wall-clock field. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Obs.Json.t
(** Schema ["migsyn-crossbar/1"]; [wall_seconds] is the only
    non-deterministic member.  [Exp.Report] flattens these documents for
    golden-file regression gating. *)
