(** The paper's experiments, as reusable drivers.

    Each [table*] function runs the full flow for one suite entry —
    build → MIG → the optimization algorithms of §III-C/D → Table I
    costs (and for Table III, the BDD/AIG baseline compilers) — and pairs
    the measured numbers with the paper's, so the report printers can show
    them side by side.  [bench/main.ml] regenerates every table and figure
    through this module; the [benchmark_sweep] example and the CLI use it
    too. *)

type cost = Core.Rram_cost.cost

type t2_row = {
  name : string;
  inputs : int;
  exact : bool;
  initial_gates : int;
  area_imp : cost;
  depth_imp : cost;
  rram_imp : cost;
  rram_maj : cost;
  step_imp : cost;
  step_maj : cost;
  paper : Io.Benchmarks.table2_ref;
}

val table2_row : ?effort:int -> Io.Benchmarks.entry -> t2_row

val table2 : ?effort:int -> ?jobs:int -> unit -> t2_row list
(** Runs {!table2_row} over the Table II suite.  [jobs] (default [1]) fans
    the circuits out over a {!Par} work-pool; rows come back in suite order
    and are bit-identical to the sequential run for any [jobs] (only the
    scheduling changes — see DESIGN.md §11). *)

val pp_table2 : Format.formatter -> t2_row list -> unit
(** Prints the Table II reproduction: measured and paper value per cell,
    per-column sums and measured/paper shape summaries. *)

type bdd_row = {
  name : string;
  bdd_nodes : int;
  bdd_levelized : int * int;  (** (RRAMs, steps) of the parallel variant *)
  bdd_sequential_steps : int;
  mig_imp : cost;
  mig_maj : cost;
  paper : Io.Benchmarks.table2_ref;
}

val table3_bdd_row : ?effort:int -> ?bdd_max_nodes:int -> Io.Benchmarks.entry -> bdd_row

val table3_bdd : ?effort:int -> ?jobs:int -> unit -> bdd_row list
(** Suite driver for {!table3_bdd_row}; [jobs] as in {!table2}. *)

val pp_table3_bdd : Format.formatter -> bdd_row list -> unit

type aig_row = {
  name : string;
  aig_nodes : int;
  aig_steps : int;  (** sequential AIG→IMP compilation, the [12] accounting *)
  mig_imp : cost;
  mig_maj : cost;
  paper : Io.Benchmarks.table3_ref;
}

val table3_aig_row : ?effort:int -> Io.Benchmarks.entry -> aig_row

val table3_aig : ?effort:int -> ?jobs:int -> unit -> aig_row list
(** Suite driver for {!table3_aig_row}; [jobs] as in {!table2}. *)

val pp_table3_aig : Format.formatter -> aig_row list -> unit

type flow_spec = {
  flow_name : string;  (** display/JSON name, e.g. ["area"] or ["custom/x"] *)
  script : string;  (** the flow-script text; parsed by {!Core.Mig_flows} *)
}
(** A named, scriptable optimization pipeline.  The experiment drivers take
    flows rather than a closed algorithm variant, so custom pipelines are
    benchable side-by-side with the paper's. *)

val default_flows : ?effort:int -> unit -> flow_spec list
(** The five paper algorithms (Table II order) as their canonical flow
    scripts at the given effort. *)

val run_flow : flow_spec -> Core.Mig.t -> Core.Mig.t
(** Parse and run a flow on a MIG.  @raise Invalid_argument on a script
    error (the CLI validates scripts before reaching this). *)

type timed_alg = {
  flow : flow_spec;  (** the pipeline this row measured *)
  size : int;  (** MIG gate count after the flow *)
  depth : int;  (** MIG depth after the flow *)
  imp : cost;
  maj : cost;
  seconds : float;  (** wall time of this optimization run (monotonic clock) *)
}

type profile_row = {
  bench : string;
  inputs : int;
  exact : bool;
  initial_size : int;
  initial_depth : int;
  algs : timed_alg list;  (** one entry per flow, in the given order *)
}

val profile_row : ?effort:int -> ?flows:flow_spec list -> Io.Benchmarks.entry -> profile_row

val profile :
  ?effort:int ->
  ?flows:flow_spec list ->
  ?jobs:int ->
  ?entries:Io.Benchmarks.entry list ->
  unit ->
  profile_row list
(** Per-benchmark before/after shape and per-flow wall time over [entries]
    (default: the Table II suite) — the machine-readable counterpart of
    [table2], used by [bench --json].  [flows] defaults to {!default_flows};
    extra named custom flows appear as additional rows, distinguishable in
    the perf trajectory by their recorded name and script.  [jobs] (default
    [1]) fans benchmarks out over a {!Par} pool; rows are identical to the
    sequential run except for the [seconds] wall-time fields. *)

val profile_json : effort:int -> elapsed_seconds:float -> profile_row list -> Obs.Json.t
(** Serializes [profile] rows as the [BENCH_results.json] document
    (schema ["migsyn-bench/2"]); every algorithm row records the flow's
    name and script string. *)

val verify_entry : ?effort:int -> Io.Benchmarks.entry -> (unit, string) result
(** End-to-end check for one benchmark: optimize (multi-objective, MAJ),
    compile both realizations, execute on the device simulator against the
    source network, and also check the BDD and AIG baseline programs. *)

val pp_table1_check : Format.formatter -> unit -> unit
(** Prints the Table I cost-model cross-check: formula vs measured program
    costs for a single majority gate and for a sample of circuits. *)
