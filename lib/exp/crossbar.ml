(* Serial-vs-crossbar Pareto comparison over the Table II suite.  See
   crossbar.mli for the experimental design. *)

module RC = Core.Rram_cost

type point = {
  p_arch : RC.arch;
  p_analytic : RC.triple;
  p_measured : RC.triple;
  p_waves : int;
  p_verified : bool;
  p_pareto : bool;
}

type row = {
  name : string;
  inputs : int;
  exact : bool;
  serial_analytic : RC.cost;
  serial_devices : int;
  serial_latency : int;
  points : point list;
}

type t = {
  realization : RC.realization;
  effort : int option;
  rows : row list;
  elapsed_seconds : float;
}

let geometry_of arch =
  match arch with
  | RC.Crossbar { rows; columns } -> (rows, columns)
  | RC.Unbounded_serial -> invalid_arg "Crossbar.geometry_of: serial"

(* The serial program is a point of the same trade-off space: it needs one
   device per register and pays one step per micro-op, and with every
   device addressed individually there is no idle capacity. *)
let serial_triple ~devices ~latency =
  { RC.devices; latency; utilization = 1.0 }

let mark_pareto ~serial points =
  let triples = serial :: List.map (fun p -> p.p_measured) points in
  List.map
    (fun p ->
      let dominated =
        List.exists
          (fun other ->
            other <> p.p_measured && RC.triple_pareto_better other p.p_measured)
          triples
      in
      { p with p_pareto = not dominated })
    points

let row ?effort ~realization (e : Io.Benchmarks.entry) =
  Obs.with_span ~cat:"exp" ("exp/crossbar/" ^ e.Io.Benchmarks.name) @@ fun () ->
  let mig =
    Core.Mig_opt.steps ?effort (Core.Mig_of_network.convert (e.Io.Benchmarks.build ()))
  in
  let serial = Rram.Compile_mig.compile realization mig in
  let fitted = Rram.Compile_crossbar.fit realization mig in
  let fitted_rows = fst (geometry_of fitted) in
  (* The fitted geometry is the minimum-latency end of the sweep; halving
     the rows (then halving again) trades waves for a narrower array.  A
     divisor that lands on the fitted row count, or below the circuit's
     hard floor, contributes nothing and is dropped. *)
  let geometries =
    fitted
    :: List.filter_map
         (fun divisor ->
           let budget = fitted_rows / divisor in
           if budget < 1 || budget >= fitted_rows then None
           else
             match Rram.Compile_crossbar.fit ~rows:budget realization mig with
             | arch -> Some arch
             | exception Rram.Compile_crossbar.Too_small _ -> None)
         [ 2; 4 ]
  in
  let geometries = List.sort_uniq compare geometries in
  let points =
    List.filter_map
      (fun arch ->
        match Rram.Compile_crossbar.compile ~arch realization mig with
        | Error _ -> None
        | Ok c ->
            let verified =
              Result.is_ok
                (Rram.Verify.against_mig c.Rram.Compile_crossbar.program mig)
            in
            Some
              {
                p_arch = arch;
                p_analytic = c.Rram.Compile_crossbar.analytic;
                p_measured = c.Rram.Compile_crossbar.measured;
                p_waves = c.Rram.Compile_crossbar.waves;
                p_verified = verified;
                p_pareto = false;
              })
      geometries
  in
  let serial_devices = serial.Rram.Compile_mig.measured_rrams in
  let serial_latency = serial.Rram.Compile_mig.measured_steps in
  let points =
    mark_pareto
      ~serial:(serial_triple ~devices:serial_devices ~latency:serial_latency)
      points
  in
  (* Points sorted widest-first so the table reads fitted → constrained. *)
  let points =
    List.sort
      (fun a b -> compare (fst (geometry_of b.p_arch)) (fst (geometry_of a.p_arch)))
      points
  in
  {
    name = e.Io.Benchmarks.name;
    inputs = e.Io.Benchmarks.inputs;
    exact = e.Io.Benchmarks.exact;
    serial_analytic = serial.Rram.Compile_mig.analytic;
    serial_devices;
    serial_latency;
    points;
  }

let run ?effort ?(realization = RC.Maj) ?(jobs = 1)
    ?(entries = Io.Benchmarks.table2) () =
  Obs.with_span ~cat:"exp" "exp/crossbar" @@ fun () ->
  let t0 = Obs.now_ns () in
  let rows = Par.map ~jobs (row ?effort ~realization) entries in
  {
    realization;
    effort;
    rows;
    elapsed_seconds = Int64.to_float (Int64.sub (Obs.now_ns ()) t0) /. 1e9;
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>Crossbar mapping vs unbounded-serial (%a realization) — latency in steps@,"
    RC.pp_realization t.realization;
  Format.fprintf ppf "%-10s %3s | %13s | %-44s@," "bench" "in" "serial R/S"
    "crossbar points: RxC lat waves util (P=pareto)";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s %3d | %6d/%-6d |" r.name r.inputs r.serial_devices
        r.serial_latency;
      List.iter
        (fun p ->
          let rows, columns = geometry_of p.p_arch in
          Format.fprintf ppf " %dx%d %d/%dw %.2f%s%s" rows columns
            p.p_measured.RC.latency p.p_waves p.p_measured.RC.utilization
            (if p.p_pareto then " P" else "")
            (if p.p_verified then "" else " UNVERIFIED"))
        r.points;
      Format.fprintf ppf "@,")
    t.rows;
  let fitted_ok =
    List.for_all
      (fun r ->
        match r.points with
        | p :: _ -> p.p_measured.RC.latency <= r.serial_latency
        | [] -> false)
      t.rows
  in
  let all_verified =
    List.for_all (fun r -> List.for_all (fun p -> p.p_verified) r.points) t.rows
  in
  Format.fprintf ppf
    "@,Fitted-crossbar latency <= serial steps on every benchmark: %b@," fitted_ok;
  Format.fprintf ppf "All crossbar programs simulator-verified: %b@," all_verified;
  Format.fprintf ppf "(%.2f s)@]@." t.elapsed_seconds

let to_json t =
  let open Obs.Json in
  Assoc
    ([ ("schema", String "migsyn-crossbar/1") ]
    @ (match t.effort with Some e -> [ ("effort", Int e) ] | None -> [])
    @ [
        ( "realization",
          String (Format.asprintf "%a" RC.pp_realization t.realization) );
        ( "rows",
          List
            (List.map
               (fun r ->
                 Assoc
                   [
                     ("name", String r.name);
                     ("inputs", Int r.inputs);
                     ("exact", Bool r.exact);
                     ( "serial",
                       Assoc
                         [
                           ("rrams", Int r.serial_devices);
                           ("steps", Int r.serial_latency);
                           ("analytic_rrams", Int r.serial_analytic.RC.rrams);
                           ("analytic_steps", Int r.serial_analytic.RC.steps);
                         ] );
                     ( "points",
                       List
                         (List.map
                            (fun p ->
                              let rows, columns = geometry_of p.p_arch in
                              Assoc
                                [
                                  ("arch", String (RC.arch_to_string p.p_arch));
                                  ("rows", Int rows);
                                  ("columns", Int columns);
                                  ("devices", Int p.p_measured.RC.devices);
                                  ("latency", Int p.p_measured.RC.latency);
                                  ( "utilization",
                                    Float p.p_measured.RC.utilization );
                                  ( "analytic_latency",
                                    Int p.p_analytic.RC.latency );
                                  ("waves", Int p.p_waves);
                                  ("verified", Bool p.p_verified);
                                  ("pareto", Bool p.p_pareto);
                                ])
                            r.points) );
                   ])
               t.rows) );
        ("wall_seconds", Float t.elapsed_seconds);
      ])
