(* Regression analysis over run ledgers, run manifests and the committed
   baseline documents.  See report.mli for the comparison semantics. *)

module Json = Obs.Json

type value = Num of float | Text of string

type row = { r_key : string list; r_metrics : (string * value) list }

type source = {
  src_path : string;
  src_schema : string;
  src_runs : int;
  src_rows : row list;
}

let noisy_metric name =
  String.ends_with ~suffix:"seconds" name
  || String.ends_with ~suffix:"_ns" name
  || String.ends_with ~suffix:"_rps" name

(* ------------------------------------------------------------------ *)
(* Flattening documents into keyed rows                                *)
(* ------------------------------------------------------------------ *)

let str_member key json =
  match Json.member key json with Json.String s -> s | _ -> ""

let num_member key json =
  match Json.member key json with
  | Json.Int n -> Some (Num (float_of_int n))
  | Json.Float f -> Some (Num f)
  | _ -> None

(* Collect the named members that are present, numbers as [Num]. *)
let pick_metrics names json =
  List.filter_map
    (fun name ->
      match Json.member name json with
      | Json.Int n -> Some (name, Num (float_of_int n))
      | Json.Float f -> Some (name, Num f)
      | Json.String s -> Some (name, Text s)
      | Json.Bool b -> Some (name, Text (string_of_bool b))
      | _ -> None)
    names

let bench_opt_rows json =
  let head = { r_key = [ "bench-opt" ]; r_metrics = pick_metrics [ "effort" ] json } in
  let rows =
    List.map
      (fun r ->
        {
          r_key = [ "bench-opt"; str_member "circuit" r; str_member "algorithm" r ];
          r_metrics = pick_metrics [ "gates"; "seconds" ] r;
        })
      (Json.to_list (Json.member "rows" json))
  in
  head :: rows

(* [wall_seconds] is skipped: it is the campaign's only non-deterministic
   field and the committed golden file does not carry it, so extracting it
   would turn every golden comparison into a missing-metric regression. *)
let montecarlo_rows json =
  let bench = str_member "benchmark" json in
  let head =
    {
      r_key = [ "montecarlo"; bench ];
      r_metrics =
        pick_metrics [ "realization"; "trials"; "seed"; "universe"; "vectors" ] json;
    }
  in
  let arm_rows =
    List.concat_map
      (fun point ->
        let sigma = Printf.sprintf "sigma=%g" (Json.to_float (Json.member "sigma" point)) in
        List.map
          (fun a ->
            let ci =
              match Json.to_list (Json.member "ci95" a) with
              | [ lo; hi ] ->
                  [ ("ci95_lo", Num (Json.to_float lo)); ("ci95_hi", Num (Json.to_float hi)) ]
              | _ -> []
            in
            {
              r_key = [ "montecarlo"; bench; sigma; str_member "arm" a ];
              r_metrics =
                pick_metrics [ "cells"; "successes"; "yield"; "outcomes" ] a @ ci;
            })
          (Json.to_list (Json.member "arms" point)))
      (Json.to_list (Json.member "points" json))
  in
  head :: arm_rows

(* [wall_seconds] is skipped for the same reason as the Monte-Carlo rows:
   golden comparisons must not regress on wall-clock noise. *)
let crossbar_rows json =
  let head =
    {
      r_key = [ "crossbar" ];
      r_metrics = pick_metrics [ "effort"; "realization" ] json;
    }
  in
  let rows =
    List.concat_map
      (fun r ->
        let name = str_member "name" r in
        let bench_row =
          {
            r_key = [ "crossbar"; name ];
            r_metrics =
              pick_metrics [ "inputs"; "exact" ] r
              @ List.filter_map
                  (fun key ->
                    Option.map
                      (fun v -> ("serial_" ^ key, v))
                      (num_member key (Json.member "serial" r)))
                  [ "rrams"; "steps"; "analytic_rrams"; "analytic_steps" ];
          }
        in
        let point_rows =
          List.map
            (fun p ->
              {
                r_key = [ "crossbar"; name; str_member "arch" p ];
                r_metrics =
                  pick_metrics
                    [
                      "rows";
                      "columns";
                      "devices";
                      "latency";
                      "utilization";
                      "analytic_latency";
                      "waves";
                      "verified";
                      "pareto";
                    ]
                    p;
              })
            (Json.to_list (Json.member "points" r))
        in
        bench_row :: point_rows)
      (Json.to_list (Json.member "rows" json))
  in
  head :: rows

let bench2_rows json =
  let head =
    {
      r_key = [ "bench" ];
      r_metrics = pick_metrics [ "effort"; "elapsed_seconds" ] json;
    }
  in
  let rows =
    List.concat_map
      (fun b ->
        let name = str_member "name" b in
        let initial = Json.member "initial" b in
        let bench_row =
          {
            r_key = [ "bench"; name ];
            r_metrics =
              pick_metrics [ "inputs"; "exact" ] b
              @ List.filter_map
                  (fun (label, key) ->
                    Option.map (fun v -> (label, v)) (num_member key initial))
                  [ ("initial_size", "size"); ("initial_depth", "depth") ];
          }
        in
        let alg_rows =
          List.map
            (fun a ->
              let cost label j =
                List.filter_map
                  (fun key ->
                    Option.map
                      (fun v -> (label ^ "_" ^ key, v))
                      (num_member key (Json.member label j)))
                  [ "rrams"; "steps" ]
              in
              {
                r_key = [ "bench"; name; str_member "algorithm" a ];
                r_metrics =
                  pick_metrics [ "size"; "depth"; "seconds" ] a @ cost "imp" a
                  @ cost "maj" a;
              })
            (Json.to_list (Json.member "algorithms" b))
        in
        bench_row :: alg_rows)
      (Json.to_list (Json.member "benchmarks" json))
  in
  head :: rows

let serve_bench_rows json =
  let head =
    {
      r_key = [ "serve-bench" ];
      r_metrics =
        pick_metrics
          [
            "classes";
            "requests";
            "repeats";
            "unique";
            "error_requests";
            "clients";
            "effort";
          ]
          json;
    }
  in
  let totals =
    {
      r_key = [ "serve-bench"; "totals" ];
      r_metrics =
        pick_metrics
          [ "ok"; "errors"; "hits"; "misses"; "coalesced"; "evictions" ]
          (Json.member "totals" json);
    }
  in
  let latency =
    {
      r_key = [ "serve-bench"; "latency" ];
      r_metrics =
        pick_metrics [ "throughput_rps" ] json
        @ pick_metrics
            [
              "p50_seconds";
              "p90_seconds";
              "p99_seconds";
              "mean_seconds";
              "max_seconds";
            ]
            (Json.member "latency" json);
    }
  in
  let mix =
    List.map
      (fun m ->
        {
          r_key = [ "serve-bench"; str_member "class" m ];
          r_metrics =
            pick_metrics [ "requests"; "p50_seconds"; "p99_seconds" ] m;
        })
      (Json.to_list (Json.member "mix" json))
  in
  head :: totals :: latency :: mix

(* Scalars become metrics under dotted names; structured values are kept
   as their compact JSON text so they still compare exactly. *)
let rec flatten_json prefix json =
  match json with
  | Json.Int n -> [ (prefix, Num (float_of_int n)) ]
  | Json.Float f -> [ (prefix, Num f) ]
  | Json.String s -> [ (prefix, Text s) ]
  | Json.Bool b -> [ (prefix, Text (string_of_bool b)) ]
  | Json.Null -> []
  | Json.Assoc kvs ->
      List.concat_map (fun (k, v) -> flatten_json (prefix ^ "." ^ k) v) kvs
  | Json.List _ -> [ (prefix, Text (Json.to_string json)) ]

let run_rows json =
  (* The key distinguishes runs of the same subcommand by their salient
     context (which circuit, which algorithm) so a ledger holding a sweep
     keeps one row per configuration, not just the last run. *)
  let context = Json.member "context" json in
  let discriminators =
    List.filter_map
      (fun key ->
        match Json.member key context with
        | Json.String "" -> None
        | Json.String s -> Some (if key = "input" then Filename.basename s else s)
        | _ -> None)
      [ "input"; "algorithm" ]
  in
  let base =
    [ "run"; str_member "tool" json; str_member "subcommand" json ]
    @ discriminators
  in
  let head =
    {
      r_key = base;
      r_metrics =
        pick_metrics [ "wall_seconds" ] json
        @ List.concat_map
            (fun (prefix, member) ->
              match Json.member member json with
              | Json.Assoc kvs ->
                  List.concat_map (fun (k, v) -> flatten_json (prefix ^ k) v) kvs
              | _ -> [])
            [ ("ctx.", "context"); ("res.", "results") ];
    }
  in
  let rec span_rows path node =
    let path = path @ [ str_member "name" node ] in
    {
      r_key = (base @ ("span" :: path));
      r_metrics = pick_metrics [ "count"; "total_ns"; "self_ns" ] node;
    }
    :: List.concat_map (span_rows path) (Json.to_list (Json.member "children" node))
  in
  let spans = List.concat_map (span_rows []) (Json.to_list (Json.member "spans" json)) in
  let counters =
    match Json.member "counters" json with
    | Json.Assoc ((_ :: _) as kvs) ->
        [
          {
            r_key = base @ [ "counters" ];
            r_metrics =
              List.filter_map
                (fun (k, v) ->
                  match v with
                  | Json.Int n -> Some (k, Num (float_of_int n))
                  | _ -> None)
                kvs;
          };
        ]
    | _ -> []
  in
  let histograms =
    match Json.member "histograms" json with
    | Json.Assoc kvs ->
        List.map
          (fun (k, v) ->
            {
              r_key = base @ [ "hist"; k ];
              r_metrics =
                pick_metrics [ "count"; "sum"; "min"; "max"; "p50"; "p90"; "p99" ] v;
            })
          kvs
    | _ -> []
  in
  (head :: spans) @ counters @ histograms

let rows_of_json ~path json =
  let schema = str_member "schema" json in
  let rows =
    match schema with
    | "migsyn-bench-opt/1" -> bench_opt_rows json
    | "migsyn-montecarlo/1" -> montecarlo_rows json
    | "migsyn-crossbar/1" -> crossbar_rows json
    | "migsyn-bench/2" -> bench2_rows json
    | "migsyn-serve-bench/1" -> serve_bench_rows json
    | "migsyn-run/1" -> run_rows json
    | "" -> failwith (path ^ ": no \"schema\" member; not a comparable document")
    | s -> failwith (path ^ ": unsupported schema " ^ s)
  in
  { src_path = path; src_schema = schema; src_runs = 1; src_rows = rows }

(* Later records supersede earlier ones row-by-row; output sorted by key
   so the comparison (and the report) is independent of file order. *)
let merge_runs ~path sources =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun src -> List.iter (fun r -> Hashtbl.replace tbl r.r_key r) src.src_rows)
    sources;
  let rows = Hashtbl.fold (fun _ r acc -> r :: acc) tbl [] in
  {
    src_path = path;
    src_schema = "migsyn-ledger";
    src_runs = List.length sources;
    src_rows = List.sort (fun a b -> compare a.r_key b.r_key) rows;
  }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path =
  let text = read_file path in
  match Json.of_string text with
  | json -> rows_of_json ~path json
  | exception Json.Parse_error _ -> (
      match Obs.Ledger.load path with
      | [] -> failwith (path ^ ": empty ledger")
      | records -> merge_runs ~path (List.map (rows_of_json ~path) records))

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

type kind =
  | Exact_mismatch
  | Slower
  | Faster
  | Missing_metric
  | Missing_row
  | Added_row

type finding = {
  f_key : string list;
  f_metric : string;
  f_baseline : value option;
  f_current : value option;
  f_delta_pct : float option;
  f_kind : kind;
}

type t = {
  rp_baseline : source;
  rp_current : source;
  rp_threshold : float;
  rp_min_time : float;
  rp_ignored : string list;
  rp_regressions : finding list;
  rp_improvements : finding list;
  rp_added : finding list;
  rp_matched : int;
  rp_unchanged : int;
}

let delta_pct base cur =
  if base <> 0.0 then Some ((cur -. base) /. Float.abs base *. 100.0) else None

let compare_metric ~threshold ~min_time key name base cur =
  let finding kind dpct =
    {
      f_key = key;
      f_metric = name;
      f_baseline = Some base;
      f_current = Some cur;
      f_delta_pct = dpct;
      f_kind = kind;
    }
  in
  match (base, cur) with
  | Num b, Num c when noisy_metric name ->
      let floor =
        if String.ends_with ~suffix:"_ns" name then min_time *. 1e9 else min_time
      in
      let delta = c -. b in
      if delta > (Float.abs b *. threshold) && delta > floor then
        `Regression (finding Slower (delta_pct b c))
      else if -.delta > (Float.abs b *. threshold) && -.delta > floor then
        `Improvement (finding Faster (delta_pct b c))
      else `Unchanged
  | Num b, Num c ->
      if b = c then `Unchanged else `Regression (finding Exact_mismatch (delta_pct b c))
  | Text b, Text c ->
      if String.equal b c then `Unchanged else `Regression (finding Exact_mismatch None)
  | _ -> `Regression (finding Exact_mismatch None)

(* Worst first: row-level and exact findings ahead of threshold breaches,
   then by |delta|, then by key so ties are stable. *)
let severity f =
  match f.f_delta_pct with
  | Some d when f.f_kind = Slower || f.f_kind = Faster -> -.Float.abs d
  | _ -> Float.neg_infinity

let sort_findings fs =
  List.sort
    (fun a b ->
      match Float.compare (severity a) (severity b) with
      | 0 -> compare (a.f_key, a.f_metric) (b.f_key, b.f_metric)
      | c -> c)
    fs

let compare ?(threshold = 0.25) ?(min_time = 0.005) ?(ignore_metrics = [])
    ~baseline ~current () =
  if not (Float.is_finite threshold) || threshold < 0.0 then
    invalid_arg "Report.compare: threshold must be finite and non-negative";
  if not (Float.is_finite min_time) || min_time < 0.0 then
    invalid_arg "Report.compare: min_time must be finite and non-negative";
  let cur_tbl = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace cur_tbl r.r_key r) current.src_rows;
  let base_keys = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace base_keys r.r_key ()) baseline.src_rows;
  let regressions = ref [] in
  let improvements = ref [] in
  let matched = ref 0 in
  let unchanged = ref 0 in
  List.iter
    (fun brow ->
      match Hashtbl.find_opt cur_tbl brow.r_key with
      | None ->
          regressions :=
            {
              f_key = brow.r_key;
              f_metric = "";
              f_baseline = None;
              f_current = None;
              f_delta_pct = None;
              f_kind = Missing_row;
            }
            :: !regressions
      | Some crow ->
          incr matched;
          List.iter
            (fun (name, bval) ->
              if not (List.mem name ignore_metrics) then
                match List.assoc_opt name crow.r_metrics with
                | None ->
                    regressions :=
                      {
                        f_key = brow.r_key;
                        f_metric = name;
                        f_baseline = Some bval;
                        f_current = None;
                        f_delta_pct = None;
                        f_kind = Missing_metric;
                      }
                      :: !regressions
                | Some cval -> (
                    match
                      compare_metric ~threshold ~min_time brow.r_key name bval cval
                    with
                    | `Unchanged -> incr unchanged
                    | `Regression f -> regressions := f :: !regressions
                    | `Improvement f -> improvements := f :: !improvements))
            brow.r_metrics)
    baseline.src_rows;
  let added =
    List.filter_map
      (fun crow ->
        if Hashtbl.mem base_keys crow.r_key then None
        else
          Some
            {
              f_key = crow.r_key;
              f_metric = "";
              f_baseline = None;
              f_current = None;
              f_delta_pct = None;
              f_kind = Added_row;
            })
      current.src_rows
  in
  {
    rp_baseline = baseline;
    rp_current = current;
    rp_threshold = threshold;
    rp_min_time = min_time;
    rp_ignored = ignore_metrics;
    rp_regressions = sort_findings !regressions;
    rp_improvements = sort_findings !improvements;
    rp_added = sort_findings added;
    rp_matched = !matched;
    rp_unchanged = !unchanged;
  }

let regressed t = t.rp_regressions <> []
let exit_code t = if regressed t then 2 else 0

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let value_text = function
  | Some (Num f) ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Printf.sprintf "%.0f" f
      else Printf.sprintf "%g" f
  | Some (Text s) ->
      if String.length s > 32 then String.sub s 0 29 ^ "..." else s
  | None -> "-"

let kind_text = function
  | Exact_mismatch -> "exact mismatch"
  | Slower -> "slower"
  | Faster -> "faster"
  | Missing_metric -> "missing metric"
  | Missing_row -> "missing row"
  | Added_row -> "added row"

let kind_tag = function
  | Exact_mismatch -> "exact_mismatch"
  | Slower -> "slower"
  | Faster -> "faster"
  | Missing_metric -> "missing_metric"
  | Missing_row -> "missing_row"
  | Added_row -> "added_row"

let key_text key = String.concat " > " key

let max_table_rows = 50

let md_section buf title findings =
  Printf.bprintf buf "## %s (%d)\n\n" title (List.length findings);
  if findings = [] then Buffer.add_string buf "None.\n\n"
  else begin
    Buffer.add_string buf "| key | metric | baseline | current | delta | kind |\n";
    Buffer.add_string buf "|---|---|---:|---:|---:|---|\n";
    let shown = ref 0 in
    List.iter
      (fun f ->
        if !shown < max_table_rows then begin
          incr shown;
          let delta =
            match f.f_delta_pct with
            | Some d -> Printf.sprintf "%+.1f%%" d
            | None -> "-"
          in
          Printf.bprintf buf "| %s | %s | %s | %s | %s | %s |\n" (key_text f.f_key)
            (if f.f_metric = "" then "-" else f.f_metric)
            (value_text f.f_baseline) (value_text f.f_current) delta
            (kind_text f.f_kind)
        end)
      findings;
    let hidden = List.length findings - !shown in
    if hidden > 0 then Printf.bprintf buf "\n... and %d more.\n" hidden;
    Buffer.add_char buf '\n'
  end

let md_source buf role src =
  Printf.bprintf buf "- %s: `%s` (%s, %d run%s, %d rows)\n" role src.src_path
    src.src_schema src.src_runs
    (if src.src_runs = 1 then "" else "s")
    (List.length src.src_rows)

let to_markdown t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "# migsyn report\n\n";
  md_source buf "baseline" t.rp_baseline;
  md_source buf "current" t.rp_current;
  Printf.bprintf buf
    "- noise threshold: %.0f%% relative on wall-time metrics, absolute floor %g s\n"
    (t.rp_threshold *. 100.0) t.rp_min_time;
  if t.rp_ignored <> [] then
    Printf.bprintf buf "- ignored metrics: %s\n" (String.concat ", " t.rp_ignored);
  Printf.bprintf buf "- matched rows: %d; metrics equal or within noise: %d\n\n"
    t.rp_matched t.rp_unchanged;
  Printf.bprintf buf "**Verdict: %s**\n\n"
    (if regressed t then "REGRESSED" else "OK");
  md_section buf "Regressions" t.rp_regressions;
  md_section buf "Improvements" t.rp_improvements;
  md_section buf "New rows" t.rp_added;
  Buffer.contents buf

let value_json = function
  | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then Json.Int (int_of_float f)
      else Json.Float f
  | Text s -> Json.String s

let finding_json f =
  let opt name = function Some v -> [ (name, value_json v) ] | None -> [] in
  Json.Assoc
    ([
       ("key", Json.List (List.map (fun k -> Json.String k) f.f_key));
       ("metric", Json.String f.f_metric);
       ("kind", Json.String (kind_tag f.f_kind));
     ]
    @ opt "baseline" f.f_baseline @ opt "current" f.f_current
    @
    match f.f_delta_pct with
    | Some d -> [ ("delta_pct", Json.Float d) ]
    | None -> [])

let source_json src =
  Json.Assoc
    [
      ("path", Json.String src.src_path);
      ("schema", Json.String src.src_schema);
      ("runs", Json.Int src.src_runs);
      ("rows", Json.Int (List.length src.src_rows));
    ]

let to_json t =
  Json.Assoc
    [
      ("schema", Json.String "migsyn-report/1");
      ("verdict", Json.String (if regressed t then "regressed" else "ok"));
      ("baseline", source_json t.rp_baseline);
      ("current", source_json t.rp_current);
      ("threshold", Json.Float t.rp_threshold);
      ("min_time", Json.Float t.rp_min_time);
      ("ignored", Json.List (List.map (fun m -> Json.String m) t.rp_ignored));
      ("matched_rows", Json.Int t.rp_matched);
      ("unchanged_metrics", Json.Int t.rp_unchanged);
      ("regressions", Json.List (List.map finding_json t.rp_regressions));
      ("improvements", Json.List (List.map finding_json t.rp_improvements));
      ("added", Json.List (List.map finding_json t.rp_added));
    ]
