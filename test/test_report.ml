(* The regression-analysis engine (lib/exp/report.ml): source loading for
   every supported schema (single documents and JSON-lines ledgers), noisy
   vs exact metric classification, threshold + floor semantics, missing /
   added rows, the ignore list, exit codes and report rendering. *)

module Json = Obs.Json
module Report = Exp.Report

let write_tmp ?(suffix = ".json") text =
  let path = Filename.temp_file "migsyn_report" suffix in
  let oc = open_out path in
  output_string oc text;
  close_out oc;
  path

let with_tmp ?suffix text f =
  let path = write_tmp ?suffix text in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let bench_opt_doc ?(gates = 143) ?(seconds = 0.02) () =
  Json.to_string
    (Json.Assoc
       [
         ("schema", Json.String "migsyn-bench-opt/1");
         ("effort", Json.Int 40);
         ( "rows",
           Json.List
             [
               Json.Assoc
                 [
                   ("circuit", Json.String "alu4");
                   ("gates", Json.Int gates);
                   ("algorithm", Json.String "steps");
                   ("seconds", Json.Float seconds);
                 ];
               Json.Assoc
                 [
                   ("circuit", Json.String "alu4");
                   ("gates", Json.Int gates);
                   ("algorithm", Json.String "area");
                   ("seconds", Json.Float 0.01);
                 ];
             ] );
       ])

let montecarlo_doc ?(yield_ = 0.9) () =
  Json.to_string
    (Json.Assoc
       [
         ("schema", Json.String "migsyn-montecarlo/1");
         ("benchmark", Json.String "c17.bench");
         ("realization", Json.String "MAJ");
         ("trials", Json.Int 10);
         ("seed", Json.Int 7);
         ("universe", Json.Int 20);
         ("vectors", Json.Int 8);
         ( "points",
           Json.List
             [
               Json.Assoc
                 [
                   ("sigma", Json.Float 0.5);
                   ( "arms",
                     Json.List
                       [
                         Json.Assoc
                           [
                             ("arm", Json.String "maj");
                             ("cells", Json.Int 15);
                             ("successes", Json.Int 9);
                             ("yield", Json.Float yield_);
                             ("ci95", Json.List [ Json.Float 0.6; Json.Float 0.98 ]);
                             ("outcomes", Json.String "1111111110");
                           ];
                       ] );
                 ];
             ] );
         ("wall_seconds", Json.Float 0.123);
       ])

let load_str text = with_tmp text Report.load

let compare_docs ?threshold ?min_time ?ignore_metrics base cur =
  Report.compare ?threshold ?min_time ?ignore_metrics ~baseline:(load_str base)
    ~current:(load_str cur) ()

(* ------------------------------------------------------------------ *)
(* Loading                                                             *)
(* ------------------------------------------------------------------ *)

let load_tests =
  [
    Alcotest.test_case "bench-opt rows keyed by circuit x algorithm" `Quick
      (fun () ->
        let src = load_str (bench_opt_doc ()) in
        Alcotest.(check string) "schema" "migsyn-bench-opt/1" src.Report.src_schema;
        Alcotest.(check int) "head + 2 rows" 3 (List.length src.Report.src_rows);
        let row =
          List.find
            (fun r -> r.Report.r_key = [ "bench-opt"; "alu4"; "steps" ])
            src.Report.src_rows
        in
        Alcotest.(check bool)
          "gates exact metric" true
          (List.assoc "gates" row.Report.r_metrics = Report.Num 143.0));
    Alcotest.test_case "montecarlo rows skip wall_seconds" `Quick (fun () ->
        let src = load_str (montecarlo_doc ()) in
        List.iter
          (fun r ->
            Alcotest.(check bool)
              "no wall_seconds anywhere" true
              (not (List.mem_assoc "wall_seconds" r.Report.r_metrics)))
          src.Report.src_rows;
        let arm =
          List.find
            (fun r ->
              r.Report.r_key = [ "montecarlo"; "c17.bench"; "sigma=0.5"; "maj" ])
            src.Report.src_rows
        in
        Alcotest.(check bool)
          "outcomes string kept (exact)" true
          (List.assoc "outcomes" arm.Report.r_metrics = Report.Text "1111111110"));
    Alcotest.test_case "run manifests flatten context, results and spans" `Quick
      (fun () ->
        Obs.reset ();
        Obs.set_enabled true;
        Fun.protect ~finally:(fun () ->
            Obs.set_enabled false;
            Obs.reset ())
        @@ fun () ->
        Obs.Manifest.start ~tool:"migsyn" ~subcommand:"optimize" ();
        Obs.with_span "test/outer" (fun () ->
            Obs.with_span "test/inner" (fun () -> ()));
        Obs.Manifest.add_context "input" (Json.String "/tmp/alu4.blif");
        Obs.Manifest.add_context "algorithm" (Json.String "steps");
        Obs.Manifest.add_result "gates" (Json.Int 99);
        let src = load_str (Json.to_string (Obs.Manifest.finish ())) in
        Alcotest.(check string) "schema" "migsyn-run/1" src.Report.src_schema;
        let base = [ "run"; "migsyn"; "optimize"; "alu4.blif"; "steps" ] in
        let head =
          List.find (fun r -> r.Report.r_key = base) src.Report.src_rows
        in
        Alcotest.(check bool)
          "results flattened" true
          (List.assoc "res.gates" head.Report.r_metrics = Report.Num 99.0);
        Alcotest.(check bool)
          "span rows present" true
          (List.exists
             (fun r ->
               r.Report.r_key = base @ [ "span"; "test/outer"; "test/inner" ])
             src.Report.src_rows));
    Alcotest.test_case "a ledger merges records, last run wins per key" `Quick
      (fun () ->
        let record n =
          Json.to_string
            (Json.Assoc
               [
                 ("schema", Json.String "migsyn-run/1");
                 ("tool", Json.String "migsyn");
                 ("subcommand", Json.String "optimize");
                 ("context", Json.Assoc [ ("algorithm", Json.String "steps") ]);
                 ("results", Json.Assoc [ ("gates", Json.Int n) ]);
               ])
        in
        let text = record 10 ^ "\n" ^ record 7 ^ "\n" in
        let src = with_tmp ~suffix:".jsonl" text Report.load in
        Alcotest.(check string) "ledger schema" "migsyn-ledger" src.Report.src_schema;
        Alcotest.(check int) "two records folded" 2 src.Report.src_runs;
        let row = List.hd src.Report.src_rows in
        Alcotest.(check bool)
          "last record wins" true
          (List.assoc "res.gates" row.Report.r_metrics = Report.Num 7.0));
    Alcotest.test_case "unsupported input is a Failure" `Quick (fun () ->
        List.iter
          (fun text ->
            match load_str text with
            | exception Failure _ -> ()
            | _ -> Alcotest.failf "accepted %S" text)
          [ "{\"schema\": \"bogus/9\"}"; "{\"rows\": []}"; "" ]);
  ]

(* ------------------------------------------------------------------ *)
(* Comparison semantics                                                *)
(* ------------------------------------------------------------------ *)

let kinds report = List.map (fun f -> f.Report.f_kind) report.Report.rp_regressions

let compare_tests =
  [
    Alcotest.test_case "identical sources are clean, exit 0" `Quick (fun () ->
        let r = compare_docs (bench_opt_doc ()) (bench_opt_doc ()) in
        Alcotest.(check bool) "no regressions" false (Report.regressed r);
        Alcotest.(check int) "exit 0" 0 (Report.exit_code r);
        Alcotest.(check int) "all rows matched" 3 r.Report.rp_matched);
    Alcotest.test_case "a slowed pass regresses, exit 2" `Quick (fun () ->
        let r =
          compare_docs ~threshold:0.25
            (bench_opt_doc ~seconds:0.02 ())
            (bench_opt_doc ~seconds:0.2 ())
        in
        Alcotest.(check int) "exit 2" 2 (Report.exit_code r);
        Alcotest.(check bool) "kind slower" true (List.mem Report.Slower (kinds r)));
    Alcotest.test_case "within threshold or floor is noise" `Quick (fun () ->
        (* +20% < 25% threshold *)
        let r =
          compare_docs ~threshold:0.25
            (bench_opt_doc ~seconds:0.05 ())
            (bench_opt_doc ~seconds:0.06 ())
        in
        Alcotest.(check int) "relative noise" 0 (Report.exit_code r);
        (* +900% but only +0.9 ms, under the 5 ms floor *)
        let r =
          compare_docs ~threshold:0.25
            (bench_opt_doc ~seconds:0.0001 ())
            (bench_opt_doc ~seconds:0.001 ())
        in
        Alcotest.(check int) "absolute floor" 0 (Report.exit_code r));
    Alcotest.test_case "exact metrics flag any change, both directions" `Quick
      (fun () ->
        List.iter
          (fun gates ->
            let r =
              compare_docs (bench_opt_doc ~gates:143 ()) (bench_opt_doc ~gates ())
            in
            Alcotest.(check int) "exit 2" 2 (Report.exit_code r);
            Alcotest.(check bool)
              "exact mismatch" true
              (List.mem Report.Exact_mismatch (kinds r)))
          [ 150; 120 ]);
    Alcotest.test_case "faster wall time is an improvement, not a regression"
      `Quick (fun () ->
        let r =
          compare_docs
            (bench_opt_doc ~seconds:0.2 ())
            (bench_opt_doc ~seconds:0.02 ())
        in
        Alcotest.(check int) "exit 0" 0 (Report.exit_code r);
        Alcotest.(check bool)
          "recorded as improvement" true
          (List.exists
             (fun f -> f.Report.f_kind = Report.Faster)
             r.Report.rp_improvements));
    Alcotest.test_case "missing baseline rows regress; new rows inform" `Quick
      (fun () ->
        let r = compare_docs (bench_opt_doc ()) (montecarlo_doc ()) in
        Alcotest.(check int) "exit 2" 2 (Report.exit_code r);
        Alcotest.(check bool)
          "missing rows" true
          (List.mem Report.Missing_row (kinds r));
        Alcotest.(check bool)
          "added rows informational" true
          (List.for_all
             (fun f -> f.Report.f_kind = Report.Added_row)
             r.Report.rp_added
          && r.Report.rp_added <> []));
    Alcotest.test_case "--ignore drops a metric from the comparison" `Quick
      (fun () ->
        let r =
          compare_docs ~ignore_metrics:[ "gates" ]
            (bench_opt_doc ~gates:143 ())
            (bench_opt_doc ~gates:150 ())
        in
        Alcotest.(check int) "exit 0 with gates ignored" 0 (Report.exit_code r));
    Alcotest.test_case "montecarlo yields compare exactly" `Quick (fun () ->
        let r =
          compare_docs (montecarlo_doc ~yield_:0.9 ()) (montecarlo_doc ~yield_:0.8 ())
        in
        Alcotest.(check int) "exit 2" 2 (Report.exit_code r);
        let f = List.hd r.Report.rp_regressions in
        Alcotest.(check string) "metric" "yield" f.Report.f_metric);
    Alcotest.test_case "invalid thresholds are rejected" `Quick (fun () ->
        let b = load_str (bench_opt_doc ()) in
        List.iter
          (fun (threshold, min_time) ->
            match
              Report.compare ~threshold ~min_time ~baseline:b ~current:b ()
            with
            | exception Invalid_argument _ -> ()
            | _ -> Alcotest.failf "accepted threshold=%g min_time=%g" threshold min_time)
          [ (-0.1, 0.005); (Float.nan, 0.005); (0.25, -1.0); (0.25, Float.infinity) ]);
  ]

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let render_tests =
  [
    Alcotest.test_case "markdown states the verdict and findings" `Quick
      (fun () ->
        let r = compare_docs (bench_opt_doc ~gates:143 ()) (bench_opt_doc ~gates:150 ()) in
        let md = Report.to_markdown r in
        let contains needle =
          let n = String.length needle and h = String.length md in
          let rec go i = i + n <= h && (String.sub md i n = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "verdict" true (contains "**Verdict: REGRESSED**");
        Alcotest.(check bool) "key rendered" true (contains "bench-opt > alu4 > steps");
        Alcotest.(check bool) "kind rendered" true (contains "exact mismatch");
        let clean = compare_docs (bench_opt_doc ()) (bench_opt_doc ()) in
        let md_ok = Report.to_markdown clean in
        Alcotest.(check bool)
          "clean verdict" true
          (let n = String.length "**Verdict: OK**" and h = String.length md_ok in
           let rec go i =
             i + n <= h && (String.sub md_ok i n = "**Verdict: OK**" || go (i + 1))
           in
           go 0));
    Alcotest.test_case "json report round-trips with every finding" `Quick
      (fun () ->
        let r = compare_docs (bench_opt_doc ~seconds:0.02 ()) (bench_opt_doc ~seconds:0.2 ()) in
        let doc = Report.to_json r in
        let parsed = Json.of_string (Json.to_string ~pretty:true doc) in
        Alcotest.(check bool) "round-trips" true (parsed = doc);
        Alcotest.(check bool)
          "schema" true
          (Json.member "schema" parsed = Json.String "migsyn-report/1");
        Alcotest.(check bool)
          "verdict" true
          (Json.member "verdict" parsed = Json.String "regressed");
        Alcotest.(check int)
          "findings serialized"
          (List.length r.Report.rp_regressions)
          (List.length (Json.to_list (Json.member "regressions" parsed))));
  ]

let () =
  Alcotest.run "report"
    [
      ("load", load_tests); ("compare", compare_tests); ("render", render_tests);
    ]
