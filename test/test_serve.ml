(* The serve layer: the migsyn-serve/1 codec, the strash-keyed LRU result
   cache (including the QCheck canonicalization-collision property), and
   end-to-end daemon tests over a real Unix-domain socket — cache-hit
   bit-identity, --jobs key stability, error containment, metrics and
   clean shutdown. *)

open Logic
module Json = Obs.Json
module P = Serve.Protocol

let json = Alcotest.testable (Fmt.of_to_string Json.to_string) ( = )

(* ------------------------------------------------------------------ *)
(* Protocol codec                                                      *)
(* ------------------------------------------------------------------ *)

let maj_blif =
  ".model t\n.inputs a b c\n.outputs f\n.names a b c f\n11- 1\n1-1 1\n-11 1\n.end\n"

let synth_op ?(flows = []) ?algorithm ?effort ?jobs ?cost ?arch
    ?(realization = "maj") ?(verify = true) circuit =
  P.Synth
    { circuit; flows; algorithm; effort; jobs; cost; arch; realization; verify }

let decode_err line =
  match P.decode_request line with
  | Error (code, _) -> P.code_name code
  | Ok _ -> "ok"

let protocol_tests =
  let open Alcotest in
  let roundtrip name op =
    test_case (name ^ " round-trips") `Quick (fun () ->
        let req = { P.id = Some "r1"; op } in
        match P.decode_request (P.encode_request req) with
        | Ok got -> check bool "same request" true (got = req)
        | Error (_, msg) -> fail msg)
  in
  [
    roundtrip "ping" P.Ping;
    roundtrip "metrics" P.Metrics;
    roundtrip "shutdown" P.Shutdown;
    roundtrip "minimal synth"
      (synth_op (P.Inline { format = "blif"; source = maj_blif }));
    roundtrip "full synth"
      (synth_op
         ~flows:[ "push_up"; "omega_i; push_up" ]
         ~effort:7 ~jobs:3 ~cost:"weighted_maj" ~arch:"32x32"
         ~realization:"imp" ~verify:false (P.File "a.blif"));
    roundtrip "algorithm synth"
      (synth_op ~algorithm:"steps" ~effort:2
         (P.Inline { format = "bench"; source = "INPUT(a)\nOUTPUT(a)\n" }));
    test_case "id defaults to absent and accepts integers" `Quick (fun () ->
        (match P.decode_request "{\"schema\":\"migsyn-serve/1\",\"op\":\"ping\"}" with
        | Ok { P.id = None; op = P.Ping } -> ()
        | _ -> fail "expected anonymous ping");
        match
          P.decode_request "{\"schema\":\"migsyn-serve/1\",\"op\":\"ping\",\"id\":7}"
        with
        | Ok { P.id = Some "7"; op = P.Ping } -> ()
        | _ -> fail "expected id \"7\"");
    test_case "malformed JSON is parse_error" `Quick (fun () ->
        check string "code" "parse_error" (decode_err "{nope");
        check string "code" "parse_error" (decode_err "[1,2]"));
    test_case "missing or unknown schema is bad_schema" `Quick (fun () ->
        check string "code" "bad_schema" (decode_err "{\"op\":\"ping\"}");
        check string "code" "bad_schema"
          (decode_err "{\"schema\":\"migsyn-serve/9\",\"op\":\"ping\"}"));
    test_case "unknown op is unsupported_op" `Quick (fun () ->
        check string "code" "unsupported_op"
          (decode_err "{\"schema\":\"migsyn-serve/1\",\"op\":\"dance\"}"));
    test_case "circuit validation is bad_request" `Quick (fun () ->
        let req body =
          "{\"schema\":\"migsyn-serve/1\",\"op\":\"synth\"," ^ body ^ "}"
        in
        check string "missing circuit" "bad_request"
          (decode_err (req "\"flow\":\"push_up\""));
        check string "path+source" "bad_request"
          (decode_err
             (req
                "\"circuit\":{\"path\":\"a.blif\",\"format\":\"blif\",\"source\":\"x\"}"));
        check string "unknown format" "bad_request"
          (decode_err (req "\"circuit\":{\"format\":\"vhdl\",\"source\":\"x\"}"));
        check string "flow+algorithm" "bad_request"
          (decode_err
             (req
                "\"circuit\":{\"path\":\"a.blif\"},\"flow\":\"push_up\",\"algorithm\":\"steps\""));
        check string "empty flow list" "bad_request"
          (decode_err (req "\"circuit\":{\"path\":\"a.blif\"},\"flow\":[]"));
        check string "effort < 1" "bad_request"
          (decode_err (req "\"circuit\":{\"path\":\"a.blif\"},\"effort\":0"));
        check string "bad realization" "bad_request"
          (decode_err
             (req "\"circuit\":{\"path\":\"a.blif\"},\"realization\":\"cmos\"")));
    test_case "responses carry the envelope members" `Quick (fun () ->
        let ok =
          P.ok_response ~id:(Some "x") ~cache:"hit" ~seconds:1.5
            ~result:(Json.Assoc [ ("a", Json.Int 1) ])
        in
        check json "schema" (Json.String "migsyn-serve/1") (Json.member "schema" ok);
        check json "cache" (Json.String "hit") (Json.member "cache" ok);
        let err = P.error_response ~id:None ~code:P.Oversized "too big" in
        check json "status" (Json.String "error") (Json.member "status" err);
        check json "code" (Json.String "oversized")
          (Json.member "code" (Json.member "error" err)));
    test_case "strip_volatile drops cache and seconds only" `Quick (fun () ->
        let ok =
          P.ok_response ~id:(Some "x") ~cache:"hit" ~seconds:1.5
            ~result:(Json.Int 3)
        in
        let s = P.strip_volatile ok in
        check json "cache gone" Json.Null (Json.member "cache" s);
        check json "seconds gone" Json.Null (Json.member "seconds" s);
        check json "result kept" (Json.Int 3) (Json.member "result" s);
        check json "id kept" (Json.String "x") (Json.member "id" s));
  ]

(* ------------------------------------------------------------------ *)
(* Cache units                                                         *)
(* ------------------------------------------------------------------ *)

let payload tag bytes = Json.Assoc [ (tag, Json.String (String.make bytes 'x')) ]

let cache_tests =
  let open Alcotest in
  [
    test_case "store then find, with counters" `Quick (fun () ->
        let c = Serve.Cache.create () in
        Serve.Cache.note_miss c;
        Serve.Cache.store c "k1" (payload "a" 10);
        check json "hit payload" (payload "a" 10)
          (match Serve.Cache.find c "k1" with Some p -> p | None -> Json.Null);
        check bool "miss on absent" true (Serve.Cache.find c "k2" = None);
        let s = Serve.Cache.stats c in
        check int "hits" 1 s.Serve.Cache.hits;
        check int "misses" 1 s.Serve.Cache.misses;
        check int "entries" 1 s.Serve.Cache.entries);
    test_case "restore of a key replaces, not duplicates" `Quick (fun () ->
        let c = Serve.Cache.create () in
        Serve.Cache.store c "k" (payload "a" 10);
        Serve.Cache.store c "k" (payload "b" 500);
        let s = Serve.Cache.stats c in
        check int "one entry" 1 s.Serve.Cache.entries;
        check json "latest payload" (payload "b" 500)
          (match Serve.Cache.find c "k" with Some p -> p | None -> Json.Null));
    test_case "LRU eviction respects recency" `Quick (fun () ->
        (* each entry is ~1180 bytes; budget fits three of them *)
        let c = Serve.Cache.create ~budget_bytes:3600 () in
        Serve.Cache.store c "a" (payload "p" 1000);
        Serve.Cache.store c "b" (payload "p" 1000);
        Serve.Cache.store c "c" (payload "p" 1000);
        ignore (Serve.Cache.find c "a");
        (* "b" is now least recently used *)
        Serve.Cache.store c "d" (payload "p" 1000);
        check bool "a survives (refreshed)" true (Serve.Cache.find c "a" <> None);
        check bool "b evicted (LRU)" true (Serve.Cache.find c "b" = None);
        check bool "c survives" true (Serve.Cache.find c "c" <> None);
        check bool "d survives" true (Serve.Cache.find c "d" <> None);
        let s = Serve.Cache.stats c in
        check int "one eviction" 1 s.Serve.Cache.evictions;
        check int "three entries" 3 s.Serve.Cache.entries;
        check bool "within budget" true (s.Serve.Cache.bytes <= 3600));
    test_case "the sole newest entry is never evicted" `Quick (fun () ->
        let c = Serve.Cache.create ~budget_bytes:64 () in
        Serve.Cache.store c "big1" (payload "p" 4000);
        check bool "oversized survives alone" true
          (Serve.Cache.find c "big1" <> None);
        Serve.Cache.store c "big2" (payload "p" 4000);
        check bool "older one evicted" true (Serve.Cache.find c "big1" = None);
        check bool "newest survives" true (Serve.Cache.find c "big2" <> None));
    test_case "stats_json mirrors stats" `Quick (fun () ->
        let c = Serve.Cache.create ~budget_bytes:1024 () in
        Serve.Cache.store c "k" (payload "a" 10);
        ignore (Serve.Cache.find c "k");
        Serve.Cache.note_coalesced c;
        let j = Serve.Cache.stats_json c in
        check json "hits" (Json.Int 1) (Json.member "hits" j);
        check json "coalesced" (Json.Int 1) (Json.member "coalesced" j);
        check json "budget" (Json.Int 1024) (Json.member "budget_bytes" j));
  ]

(* ------------------------------------------------------------------ *)
(* Canonical keys                                                      *)
(* ------------------------------------------------------------------ *)

let random_mig rng ~pis ~gates ~pos =
  let mig = Core.Mig.create () in
  let signals = ref [| Core.Mig.const0 |] in
  let add s = signals := Array.append !signals [| s |] in
  for _ = 1 to pis do
    add (Core.Mig.add_pi mig)
  done;
  for _ = 1 to gates do
    let pick () =
      let s = Prng.pick rng !signals in
      if Prng.bool rng then Core.Mig.not_ s else s
    in
    add (Core.Mig.maj mig (pick ()) (pick ()) (pick ()))
  done;
  for _ = 1 to pos do
    let s = Prng.pick rng !signals in
    ignore (Core.Mig.add_po mig (if Prng.bool rng then Core.Mig.not_ s else s))
  done;
  mig

(* Rebuild [mig], translating the live cone 1:1 but interleaving junk gates
   that nothing references: ids shift monotonically and dead nodes appear —
   exactly the degrees of freedom the strash canonicalization must erase. *)
let junk_variant ?(flip_po = false) seed mig =
  let rng = Prng.create ((seed * 2) + 1) in
  let out = Core.Mig.create () in
  let map = Hashtbl.create 97 in
  let created = ref [| Core.Mig.const0 |] in
  Hashtbl.add map (Core.Mig.node_of Core.Mig.const0) Core.Mig.const0;
  for i = 0 to Core.Mig.num_pis mig - 1 do
    let s = Core.Mig.add_pi out in
    created := Array.append !created [| s |];
    Hashtbl.add map (Core.Mig.node_of (Core.Mig.pi mig i)) s
  done;
  let translate s =
    let base = Hashtbl.find map (Core.Mig.node_of s) in
    if Core.Mig.is_compl s then Core.Mig.not_ base else base
  in
  (* id order keeps the live gates' relative order, so the renumbering from
     [mig] to [out] is monotone — the invariance the cache key guarantees *)
  for n = 0 to Core.Mig.num_nodes mig - 1 do
    match Core.Mig.kind mig n with
    | Core.Mig.Gate ->
        if Prng.bool rng then begin
          (* junk: a gate nothing will reference *)
          let pick () = Prng.pick rng !created in
          ignore (Core.Mig.maj out (pick ()) (pick ()) (Core.Mig.not_ (pick ())))
        end;
        let f = Core.Mig.fanins mig n in
        let s =
          Core.Mig.maj out (translate f.(0)) (translate f.(1)) (translate f.(2))
        in
        created := Array.append !created [| s |];
        Hashtbl.add map n s
    | _ -> ()
  done;
  for i = 0 to Core.Mig.num_pos mig - 1 do
    let s = translate (Core.Mig.po mig i) in
    ignore (Core.Mig.add_po out (if flip_po && i = 0 then Core.Mig.not_ s else s))
  done;
  out

let key_of mig =
  snd
    (Serve.Cache.canonical_key ~flow:"push_up" ~arch:"serial"
       ~realization:"maj" ~verify:true mig)

let key_props =
  [
    QCheck.Test.make ~name:"strash-equivalent variants collide to one key"
      ~count:60
      (QCheck.make QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let a = random_mig (Prng.create seed) ~pis:5 ~gates:30 ~pos:3 in
        let b = junk_variant seed a in
        key_of a = key_of b);
    QCheck.Test.make ~name:"functionally different graphs get distinct keys"
      ~count:60
      (QCheck.make QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let a = random_mig (Prng.create seed) ~pis:5 ~gates:30 ~pos:3 in
        let c = junk_variant ~flip_po:true seed a in
        key_of a <> key_of c);
  ]

let key_unit_tests =
  let open Alcotest in
  [
    test_case "key covers flow, arch, realization and verify" `Quick (fun () ->
        let mig = random_mig (Prng.create 42) ~pis:4 ~gates:20 ~pos:2 in
        let key ~flow ~arch ~realization ~verify =
          snd (Serve.Cache.canonical_key ~flow ~arch ~realization ~verify mig)
        in
        let base = key ~flow:"push_up" ~arch:"serial" ~realization:"maj" ~verify:true in
        check bool "stable" true
          (base = key ~flow:"push_up" ~arch:"serial" ~realization:"maj" ~verify:true);
        check bool "flow" true
          (base <> key ~flow:"omega_i" ~arch:"serial" ~realization:"maj" ~verify:true);
        check bool "arch" true
          (base <> key ~flow:"push_up" ~arch:"32x32" ~realization:"maj" ~verify:true);
        check bool "realization" true
          (base <> key ~flow:"push_up" ~arch:"serial" ~realization:"imp" ~verify:true);
        check bool "verify" true
          (base <> key ~flow:"push_up" ~arch:"serial" ~realization:"maj" ~verify:false));
    test_case "dead logic in the source text does not split the key" `Quick
      (fun () ->
        (* same circuit, plus an internal node nothing references: the
           parsed networks differ structurally, the canonical keys agree *)
        let with_junk =
          ".model t\n.inputs a b c\n.outputs f\n\
           .names a b junk\n11 1\n\
           .names a b c f\n11- 1\n1-1 1\n-11 1\n.end\n"
        in
        let a = Core.Mig_of_network.convert (Io.Blif.parse_string maj_blif) in
        let b = Core.Mig_of_network.convert (Io.Blif.parse_string with_junk) in
        Alcotest.(check bool) "same key" true (key_of a = key_of b));
    test_case "fingerprint is a 32-char hex digest" `Quick (fun () ->
        let fp = Serve.Cache.fingerprint "some key" in
        check int "length" 32 (String.length fp);
        String.iter
          (fun ch ->
            check bool "hex" true
              ((ch >= '0' && ch <= '9') || (ch >= 'a' && ch <= 'f')))
          fp);
  ]

(* ------------------------------------------------------------------ *)
(* End-to-end over a real socket                                       *)
(* ------------------------------------------------------------------ *)

let fresh_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "migsyn-test-%d-%d.sock" (Unix.getpid ()) !n)

let encode op = Json.of_string (P.encode_request { P.id = None; op })

(* Run a daemon on its own domain, hand the socket path to [f], always shut
   the daemon down, and return (f's result, the daemon summary). *)
let with_server ?(jobs = 2) ?max_request_bytes ?budget f =
  let path = fresh_socket () in
  let base = Serve.Server.default_config ~socket_path:path in
  let cfg =
    {
      base with
      Serve.Server.jobs;
      max_request_bytes =
        Option.value max_request_bytes
          ~default:base.Serve.Server.max_request_bytes;
      cache_budget_bytes =
        Option.value budget ~default:base.Serve.Server.cache_budget_bytes;
    }
  in
  let dom = Domain.spawn (fun () -> Serve.Server.run cfg) in
  let result =
    Fun.protect
      ~finally:(fun () ->
        try
          let c = Serve.Client.connect ~retries:5 path in
          (try ignore (Serve.Client.rpc c (encode P.Shutdown))
           with Failure _ -> ());
          Serve.Client.close c
        with Failure _ | Unix.Unix_error _ -> ())
      (fun () -> f path)
  in
  let summary = Domain.join dom in
  (result, summary)

let inline_blif = P.Inline { format = "blif"; source = maj_blif }

let quick_synth = synth_op ~flows:[ "push_up" ] inline_blif

let member_str name j =
  match Json.member name j with Json.String s -> s | _ -> "?"

let error_code j = member_str "code" (Json.member "error" j)

let c17_path () =
  if Sys.file_exists "examples/c17.bench" then "examples/c17.bench"
  else "../examples/c17.bench"

let e2e_tests =
  let open Alcotest in
  [
    test_case "cache hit is bit-identical to the cold response" `Quick
      (fun () ->
        let (), summary =
          with_server (fun path ->
              let c = Serve.Client.connect path in
              let cold = Serve.Client.rpc c (encode quick_synth) in
              let hot = Serve.Client.rpc c (encode quick_synth) in
              check string "cold is a miss" "miss" (member_str "cache" cold);
              check string "hot is a hit" "hit" (member_str "cache" hot);
              check string "stable bytes equal"
                (Json.to_string (P.strip_volatile cold))
                (Json.to_string (P.strip_volatile hot));
              check json "verified" (Json.Bool true)
                (Json.member "verified" (Json.member "result" hot));
              Serve.Client.close c)
        in
        check int "two requests + shutdown" 3 summary.Serve.Server.requests;
        check int "one hit" 1 summary.Serve.Server.cache.Serve.Cache.hits;
        check int "one miss" 1 summary.Serve.Server.cache.Serve.Cache.misses);
    test_case "responses are identical whatever the server --jobs" `Quick
      (fun () ->
        let run jobs =
          fst
            (with_server ~jobs (fun path ->
                 let c = Serve.Client.connect path in
                 let ops =
                   [
                     quick_synth;
                     synth_op ~algorithm:"steps" ~effort:2 inline_blif;
                     synth_op
                       ~flows:[ "push_up"; "omega_i; push_up" ]
                       ~jobs:2 inline_blif;
                   ]
                 in
                 let rs =
                   List.map
                     (fun op ->
                       Json.to_string
                         (P.strip_volatile (Serve.Client.rpc c (encode op))))
                     ops
                 in
                 Serve.Client.close c;
                 rs))
        in
        check (list string) "jobs=1 equals jobs=3" (run 1) (run 3));
    test_case "file and inline circuits share one cache line" `Quick (fun () ->
        let (), _ =
          with_server (fun path ->
              let file = c17_path () in
              let ic = open_in file in
              let source =
                Fun.protect
                  ~finally:(fun () -> close_in_noerr ic)
                  (fun () -> really_input_string ic (in_channel_length ic))
              in
              let c = Serve.Client.connect path in
              let r1 =
                Serve.Client.rpc c (encode (synth_op ~flows:[ "push_up" ] (P.File file)))
              in
              let r2 =
                Serve.Client.rpc c
                  (encode
                     (synth_op ~flows:[ "push_up" ]
                        (P.Inline { format = "bench"; source })))
              in
              check string "file request is a miss" "miss" (member_str "cache" r1);
              check string "inline request hits the same key" "hit"
                (member_str "cache" r2);
              check string "same stable bytes"
                (Json.to_string (P.strip_volatile r1))
                (Json.to_string (P.strip_volatile r2));
              Serve.Client.close c)
        in
        ());
    test_case "malformed input gets structured errors, daemon survives" `Quick
      (fun () ->
        let (), summary =
          with_server (fun path ->
              let c = Serve.Client.connect path in
              let roundtrip line =
                Serve.Client.send_line c line;
                Json.of_string (Serve.Client.recv_line c)
              in
              check string "garbage" "parse_error" (error_code (roundtrip "{nope"));
              check string "bad schema" "bad_schema"
                (error_code (roundtrip "{\"schema\":\"migsyn-serve/9\",\"op\":\"ping\"}"));
              check string "unknown op" "unsupported_op"
                (error_code
                   (roundtrip "{\"schema\":\"migsyn-serve/1\",\"op\":\"dance\"}"));
              let bad_flow =
                Serve.Client.rpc c
                  (encode (synth_op ~flows:[ "cycle(oops" ] inline_blif))
              in
              check string "bad flow script" "bad_request" (error_code bad_flow);
              let bad_alg =
                Serve.Client.rpc c
                  (encode (synth_op ~algorithm:"quantum" inline_blif))
              in
              check string "unknown algorithm" "bad_request" (error_code bad_alg);
              let bad_file =
                Serve.Client.rpc c
                  (encode (synth_op ~flows:[ "push_up" ] (P.File "no/such.blif")))
              in
              check string "missing file" "io_error" (error_code bad_file);
              let bad_xbar =
                Serve.Client.rpc c
                  (encode (synth_op ~algorithm:"steps" ~arch:"1x1" inline_blif))
              in
              check string "impossible crossbar" "synthesis_failed"
                (error_code bad_xbar);
              (* the daemon is still alive and serving *)
              let pong = Serve.Client.rpc c (encode P.Ping) in
              check string "still serving" "ok" (member_str "status" pong);
              Serve.Client.close c)
        in
        check bool "errors were counted" true (summary.Serve.Server.errors >= 6));
    test_case "oversized request lines answer oversized" `Quick (fun () ->
        let (), _ =
          with_server ~max_request_bytes:4096 (fun path ->
              let c = Serve.Client.connect path in
              let big =
                Printf.sprintf
                  "{\"schema\":\"migsyn-serve/1\",\"op\":\"ping\",\"id\":\"%s\"}"
                  (String.make 8000 'x')
              in
              Serve.Client.send_line c big;
              let r = Json.of_string (Serve.Client.recv_line c) in
              check string "oversized" "oversized" (error_code r);
              Serve.Client.close c;
              (* a fresh connection still works *)
              let c2 = Serve.Client.connect path in
              let pong = Serve.Client.rpc c2 (encode P.Ping) in
              check string "still serving" "ok" (member_str "status" pong);
              Serve.Client.close c2)
        in
        ());
    test_case "metrics expose request and cache counters" `Quick (fun () ->
        let (), _ =
          with_server (fun path ->
              let c = Serve.Client.connect path in
              ignore (Serve.Client.rpc c (encode quick_synth));
              ignore (Serve.Client.rpc c (encode quick_synth));
              let m = Serve.Client.rpc c (encode P.Metrics) in
              let result = Json.member "result" m in
              let cache = Json.member "cache" result in
              check json "hits" (Json.Int 1) (Json.member "hits" cache);
              check json "misses" (Json.Int 1) (Json.member "misses" cache);
              check json "entries" (Json.Int 1) (Json.member "entries" cache);
              (match Json.member "jobs" result with
              | Json.Int j -> check int "pool jobs" 2 j
              | _ -> fail "no jobs member");
              Serve.Client.close c)
        in
        ());
    test_case "shutdown op stops the daemon and unlinks the socket" `Quick
      (fun () ->
        let path_seen, summary =
          with_server (fun path ->
              let c = Serve.Client.connect path in
              let r = Serve.Client.rpc c (encode P.Shutdown) in
              check string "acknowledged" "ok" (member_str "status" r);
              Serve.Client.close c;
              path)
        in
        check bool "socket removed" false (Sys.file_exists path_seen);
        check int "one request" 1 summary.Serve.Server.requests;
        check int "ok" 1 summary.Serve.Server.ok);
  ]

let () =
  Alcotest.run "serve"
    [
      ("protocol", protocol_tests);
      ("cache", cache_tests);
      ("canonical-keys", key_unit_tests);
      ("key-props", List.map QCheck_alcotest.to_alcotest key_props);
      ("e2e", e2e_tests);
    ]
