open Logic

let equal_networks a b =
  Network.num_inputs a = Network.num_inputs b
  && Network.num_outputs a = Network.num_outputs b
  &&
  if Network.num_inputs a <= 12 then
    Array.for_all2 Truth_table.equal (Network.truth_tables a) (Network.truth_tables b)
  else begin
    let rng = Prng.create 77 in
    List.for_all
      (fun _ ->
        let ins =
          Array.init (Network.num_inputs a) (fun _ ->
              let bv = Bitvec.create 64 in
              Bitvec.randomize rng bv;
              bv)
        in
        let oa = Network.simulate a ins and ob = Network.simulate b ins in
        Array.for_all2 Bitvec.equal oa ob)
      (List.init 16 (fun i -> i))
  end

let sample_nets () =
  [
    ("full_adder", Funcgen.full_adder ());
    ("ripple4", Funcgen.ripple_adder 4);
    ("rd53", Funcgen.rd 5 3);
    ("parity9", Funcgen.parity 9);
    ("mux3", Funcgen.mux_tree 3);
    ("clip", Funcgen.clip ());
    ("comparator5", Funcgen.comparator 5);
    ("alu4", Funcgen.alu4 ());
  ]

let blif_tests =
  let open Alcotest in
  [
    test_case "parse a hand-written model" `Quick (fun () ->
        let text =
          {|# a full adder
.model fa
.inputs a b cin
.outputs sum cout
.names a b cin sum
100 1
010 1
001 1
111 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end|}
        in
        let net = Io.Blif.parse_string text in
        check bool "equals reference" true (equal_networks net (Funcgen.full_adder ())));
    test_case "off-set cover (output 0)" `Quick (fun () ->
        let text =
          {|.model inv
.inputs a
.outputs y
.names a y
1 0
.end|}
        in
        let net = Io.Blif.parse_string text in
        let tt = (Network.truth_tables net).(0) in
        check string "y = not a" "10" (Truth_table.to_bits tt));
    test_case "constant covers" `Quick (fun () ->
        let text = ".model c\n.inputs a\n.outputs one zero\n.names one\n1\n.names zero\n.end" in
        let net = Io.Blif.parse_string text in
        let tts = Network.truth_tables net in
        check string "one" "11" (Truth_table.to_bits tts.(0));
        check string "zero" "00" (Truth_table.to_bits tts.(1)));
    test_case "out-of-order definitions" `Quick (fun () ->
        let text =
          ".model o\n.inputs a b\n.outputs y\n.names t y\n1 1\n.names a b t\n11 1\n.end"
        in
        let net = Io.Blif.parse_string text in
        check string "and" "0001" (Truth_table.to_bits (Network.truth_tables net).(0)));
    test_case "latch rejected" `Quick (fun () ->
        match Io.Blif.parse_string ".model l\n.inputs a\n.outputs q\n.latch a q\n.end" with
        | exception Io.Blif.Parse_error _ -> ()
        | _ -> fail "expected Parse_error");
    test_case "continuation lines" `Quick (fun () ->
        let text = ".model k\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end" in
        let net = Io.Blif.parse_string text in
        check int "two inputs" 2 (Network.num_inputs net));
  ]
  @ List.map
      (fun (name, net) ->
        Alcotest.test_case ("round-trip " ^ name) `Quick (fun () ->
            let text = Io.Blif.write_string net in
            let back = Io.Blif.parse_string text in
            Alcotest.(check bool) "same function" true (equal_networks net back)))
      (sample_nets ())

let bench_tests =
  let open Alcotest in
  [
    test_case "parse ISCAS-89 style netlist" `Quick (fun () ->
        let text =
          {|# tiny
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(s)
OUTPUT(co)
x1 = XOR(a, b)
s = XOR(x1, c)
a1 = AND(a, b)
a2 = AND(x1, c)
co = OR(a1, a2)|}
        in
        let net = Io.Bench_format.parse_string text in
        check bool "full adder" true (equal_networks net (Funcgen.full_adder ())));
    test_case "DFF is cut into pseudo PI/PO" `Quick (fun () ->
        let text = "INPUT(a)\nOUTPUT(y)\nq = DFF(d)\nd = AND(a, q)\ny = NOT(q)\n" in
        let net = Io.Bench_format.parse_string text in
        check int "inputs" 2 (Network.num_inputs net);
        check int "outputs" 2 (Network.num_outputs net));
    test_case "constants" `Quick (fun () ->
        let net = Io.Bench_format.parse_string "OUTPUT(y)\nk = vdd\ny = NOT(k)\n" in
        check string "y" "0" (Truth_table.to_bits (Network.truth_tables net).(0)));
  ]
  @ List.map
      (fun (name, net) ->
        Alcotest.test_case ("round-trip " ^ name) `Quick (fun () ->
            let text = Io.Bench_format.write_string net in
            let back = Io.Bench_format.parse_string text in
            Alcotest.(check bool) "same function" true (equal_networks net back)))
      (sample_nets ())

let pla_tests =
  let open Alcotest in
  [
    test_case "parse espresso file" `Quick (fun () ->
        let text = ".i 3\n.o 2\n.p 3\n11- 10\n--1 01\n111 11\n.e\n" in
        let net = Io.Pla.parse_string text in
        let tts = Network.truth_tables net in
        let a = Truth_table.var 3 0 and b = Truth_table.var 3 1 and c = Truth_table.var 3 2 in
        check bool "y0 = a&b" true (Truth_table.equal tts.(0) (Truth_table.band a b));
        check bool "y1 = c" true (Truth_table.equal tts.(1) c));
    test_case "ilb/ob names" `Quick (fun () ->
        let text = ".i 2\n.o 1\n.ilb p q\n.ob f\n11 1\n.e\n" in
        let net = Io.Pla.parse_string text in
        check (array string) "names" [| "p"; "q" |] (Network.input_names net));
  ]
  @ List.filter_map
      (fun (name, net) ->
        if Network.num_inputs net > 10 then None
        else
          Some
            (Alcotest.test_case ("round-trip " ^ name) `Quick (fun () ->
                 let text = Io.Pla.write_string net in
                 let back = Io.Pla.parse_string text in
                 Alcotest.(check bool) "same function" true (equal_networks net back))))
      (sample_nets ())

let aiger_tests =
  let open Alcotest in
  [
    test_case "parse aag" `Quick (fun () ->
        (* and of two inputs, output negated: aag 3 2 0 1 1 *)
        let text = "aag 3 2 0 1 1\n2\n4\n7\n6 2 4\n" in
        let net = Io.Aiger.parse_string text in
        check string "nand" "1110" (Truth_table.to_bits (Network.truth_tables net).(0)));
    test_case "latches rejected" `Quick (fun () ->
        match Io.Aiger.parse_string "aag 1 0 1 0 0\n2 3\n" with
        | exception Io.Aiger.Parse_error _ -> ()
        | _ -> fail "expected Parse_error");
    test_case "binary: latches rejected" `Quick (fun () ->
        match Io.Aiger.parse_binary_string "aig 1 0 1 0 0\n2\n" with
        | exception Io.Aiger.Parse_error _ -> ()
        | _ -> fail "expected Parse_error");
    test_case "binary: truncated deltas rejected" `Quick (fun () ->
        match Io.Aiger.parse_binary_string "aig 3 2 0 1 1\n6\n\x82" with
        | exception Io.Aiger.Parse_error (pos, _) ->
            check bool "byte offset past header" true (pos > 0)
        | _ -> fail "expected Parse_error");
  ]
  @ List.concat_map
      (fun (name, net) ->
        [
          Alcotest.test_case ("round-trip " ^ name) `Quick (fun () ->
              let aig = Aig_lib.Aig_of_network.convert net in
              let text = Io.Aiger.write_aig aig in
              let back = Io.Aiger.parse_string text in
              Alcotest.(check bool) "same function" true (equal_networks net back));
          Alcotest.test_case ("binary round-trip " ^ name) `Quick (fun () ->
              let aig = Aig_lib.Aig_of_network.convert net in
              let bin = Io.Aiger.write_aig_binary aig in
              let back = Io.Aiger.parse_binary_string bin in
              Alcotest.(check bool) "same function" true (equal_networks net back));
          Alcotest.test_case ("aag/aig twins byte-stable " ^ name) `Quick (fun () ->
              (* The ASCII file and its binary twin must describe the same
                 circuit so precisely that re-serializing either parse
                 reproduces both byte streams. *)
              let aig = Aig_lib.Aig_of_network.convert net in
              let ascii = Io.Aiger.write_aig aig in
              let bin = Io.Aiger.write_aig_binary aig in
              let via_ascii = Aig_lib.Aig_of_network.convert (Io.Aiger.parse_string ascii) in
              let via_bin = Aig_lib.Aig_of_network.convert (Io.Aiger.parse_binary_string bin) in
              Alcotest.(check string) "ascii via ascii" ascii (Io.Aiger.write_aig via_ascii);
              Alcotest.(check string) "ascii via binary" ascii (Io.Aiger.write_aig via_bin);
              Alcotest.(check string) "binary via ascii" bin (Io.Aiger.write_aig_binary via_ascii);
              Alcotest.(check string) "binary via binary" bin (Io.Aiger.write_aig_binary via_bin));
        ])
      (sample_nets ())

let gen_tests =
  let open Alcotest in
  [
    test_case "random_network is deterministic" `Quick (fun () ->
        let a = Io.Gen.random_network ~name:"z" ~inputs:10 ~gates:50 ~outputs:5 () in
        let b = Io.Gen.random_network ~name:"z" ~inputs:10 ~gates:50 ~outputs:5 () in
        check bool "equal" true (equal_networks a b));
    test_case "different names differ" `Quick (fun () ->
        let a = Io.Gen.random_network ~name:"z1" ~inputs:8 ~gates:40 ~outputs:4 () in
        let b = Io.Gen.random_network ~name:"z2" ~inputs:8 ~gates:40 ~outputs:4 () in
        check bool "not equal" false (equal_networks a b));
    test_case "layered_network shape" `Quick (fun () ->
        let net = Io.Gen.layered_network ~name:"l" ~inputs:12 ~width:20 ~depth:5 ~outputs:6 () in
        check int "inputs" 12 (Network.num_inputs net);
        check int "outputs" 6 (Network.num_outputs net);
        check bool "gates" true (Network.num_gates net >= 5 * 20));
    test_case "scale_network is deterministic and full-sized" `Quick (fun () ->
        let a = Io.Gen.scale_network ~name:"tier" ~gates:2000 () in
        let b = Io.Gen.scale_network ~name:"tier" ~gates:2000 () in
        check bool "equal" true (equal_networks a b);
        check bool "at least the requested gates" true (Network.num_gates a >= 2000);
        (* every gate is live: the MIG conversion keeps ~ the nominal size *)
        let mig = Core.Mig_of_network.convert a in
        check bool "conversion keeps the tier live" true
          (Core.Mig.size mig > 2000 * 3 / 4));
  ]

(* ------------------------------------------------------------------ *)
(* Scale: 10^5-node structures through every traversal that used to    *)
(* recurse (parsers, extract_outputs, conversion, cleanup)             *)
(* ------------------------------------------------------------------ *)

let scale_tests =
  let open Alcotest in
  let deep = 100_000 in
  [
    test_case "100k-deep bench chain parses and copies" `Slow (fun () ->
        (* A single AND chain: resolving output "g<deep>" walks the whole
           chain; so does the extract_outputs cone copy. *)
        let buf = Buffer.create (16 * deep) in
        Buffer.add_string buf "INPUT(x)\nINPUT(y)\n";
        Buffer.add_string buf (Printf.sprintf "OUTPUT(g%d)\n" deep);
        Buffer.add_string buf "g1 = AND(x, y)\n";
        for i = 2 to deep do
          Buffer.add_string buf (Printf.sprintf "g%d = AND(g%d, x)\n" i (i - 1))
        done;
        let net = Io.Bench_format.parse_string (Buffer.contents buf) in
        check int "gates" deep (Network.num_gates net);
        let cone = Network.extract_outputs net [ 0 ] in
        check int "copied cone" deep (Network.num_gates cone);
        let mig = Core.Mig_of_network.convert net in
        check int "mig size" deep (Core.Mig.size mig);
        check int "cleanup keeps it" deep (Core.Mig.size (Core.Mig.cleanup mig)));
    test_case "100k-deep blif chain parses" `Slow (fun () ->
        let buf = Buffer.create (16 * deep) in
        Buffer.add_string buf ".model chain\n.inputs x y\n";
        Buffer.add_string buf (Printf.sprintf ".outputs g%d\n" deep);
        Buffer.add_string buf ".names x y g1\n11 1\n";
        for i = 2 to deep do
          Buffer.add_string buf (Printf.sprintf ".names g%d x g%d\n11 1\n" (i - 1) i)
        done;
        Buffer.add_string buf ".end\n";
        let net = Io.Blif.parse_string (Buffer.contents buf) in
        check int "outputs" 1 (Network.num_outputs net));
    test_case "100k-gate tier generates, serializes, and strashes" `Slow (fun () ->
        let net = Io.Gen.scale_network ~name:"smoke100k" ~gates:deep () in
        check bool "nominal size" true (Network.num_gates net >= deep);
        let bin = Io.Aiger.write_network_binary net in
        let back = Io.Aiger.parse_binary_string bin in
        let mig = Core.Mig_of_network.convert back in
        check bool "live size tracks the tier" true (Core.Mig.size mig > deep);
        let strashed, _ = Core.Mig_passes.strash mig in
        check int "strash preserves reachable size" (Core.Mig.size mig)
          (Core.Mig.size strashed));
  ]

let benchmark_tests =
  let open Alcotest in
  [
    test_case "suite sizes" `Quick (fun () ->
        check int "table2" 25 (List.length Io.Benchmarks.table2);
        check int "table3" 25 (List.length Io.Benchmarks.table3_aig));
    test_case "input counts match the paper" `Quick (fun () ->
        List.iter
          (fun e ->
            let net = e.Io.Benchmarks.build () in
            check int e.Io.Benchmarks.name e.Io.Benchmarks.inputs (Network.num_inputs net))
          Io.Benchmarks.all);
    test_case "every benchmark converts to an equivalent MIG" `Quick (fun () ->
        List.iter
          (fun e ->
            let net = e.Io.Benchmarks.build () in
            let mig = Core.Mig_of_network.convert net in
            check bool
              (e.Io.Benchmarks.name ^ " equivalent")
              true
              (Core.Mig_equiv.equivalent_network ~rounds:8 mig net))
          Io.Benchmarks.all);
    test_case "exact flags" `Quick (fun () ->
        let exact = List.filter (fun e -> e.Io.Benchmarks.exact) Io.Benchmarks.all in
        check bool "at least 20 exact entries" true (List.length exact >= 20));
    test_case "rd53f1 is the parity slice" `Quick (fun () ->
        match Io.Benchmarks.find "rd53f1" with
        | None -> fail "missing"
        | Some e ->
            let net = e.Io.Benchmarks.build () in
            let tt = (Network.truth_tables net).(0) in
            let expect =
              Truth_table.of_function 5 (fun a ->
                  Array.fold_left (fun acc b -> acc <> b) false a)
            in
            check bool "parity" true (Truth_table.equal tt expect));
  ]

let error_tests =
  let open Alcotest in
  let blif_fails text =
    match Io.Blif.parse_string text with
    | exception Io.Blif.Parse_error _ -> ()
    | _ -> Alcotest.fail "expected Parse_error"
  in
  let bench_fails text =
    match Io.Bench_format.parse_string text with
    | exception Io.Bench_format.Parse_error _ -> ()
    | _ -> Alcotest.fail "expected Parse_error"
  in
  let pla_fails text =
    match Io.Pla.parse_string text with
    | exception Io.Pla.Parse_error _ -> ()
    | _ -> Alcotest.fail "expected Parse_error"
  in
  [
    test_case "blif: cube width mismatch" `Quick (fun () ->
        blif_fails ".model m\n.inputs a b\n.outputs y\n.names a b y\n111 1\n.end");
    test_case "blif: undefined signal" `Quick (fun () ->
        blif_fails ".model m\n.inputs a\n.outputs y\n.names ghost y\n1 1\n.end");
    test_case "blif: combinational cycle" `Quick (fun () ->
        blif_fails
          ".model m\n.inputs a\n.outputs y\n.names y2 y\n1 1\n.names y y2\n1 1\n.end");
    test_case "blif: mixed cover polarities" `Quick (fun () ->
        blif_fails ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n00 0\n.end");
    test_case "blif: unknown directive" `Quick (fun () ->
        blif_fails ".model m\n.wavelength 42\n.end");
    test_case "bench: unknown gate" `Quick (fun () ->
        bench_fails "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n");
    test_case "bench: cycle" `Quick (fun () ->
        bench_fails "INPUT(a)\nOUTPUT(y)\ny = AND(a, z)\nz = NOT(y)\n");
    test_case "bench: missing assignment" `Quick (fun () ->
        bench_fails "INPUT(a)\nOUTPUT(y)\njust some words\n");
    test_case "pla: cube before header" `Quick (fun () -> pla_fails "11 1\n.i 2\n.o 1\n");
    test_case "pla: wrong input plane width" `Quick (fun () ->
        pla_fails ".i 3\n.o 1\n11 1\n.e");
    test_case "pla: wrong output plane width" `Quick (fun () ->
        pla_fails ".i 2\n.o 2\n11 1\n.e");
    test_case "aiger: truncated file" `Quick (fun () ->
        match Io.Aiger.parse_string "aag 3 2 0 1 1\n2\n4\n" with
        | exception Io.Aiger.Parse_error _ -> ()
        | _ -> Alcotest.fail "expected Parse_error");
    test_case "aiger: bad header" `Quick (fun () ->
        match Io.Aiger.parse_string "aig 1 1 0 0 0\n" with
        | exception Io.Aiger.Parse_error _ -> ()
        | _ -> Alcotest.fail "expected Parse_error");
  ]

let export_tests =
  let open Alcotest in
  [
    test_case "mig dot output well-formed" `Quick (fun () ->
        let mig = Core.Mig_of_network.convert (Funcgen.full_adder ()) in
        let dot = Io.Export.mig_to_dot mig in
        check bool "digraph" true (String.length dot > 20 && String.sub dot 0 7 = "digraph");
        (* one node line per gate *)
        let count_occurrences needle hay =
          let n = String.length needle in
          let rec go i acc =
            if i + n > String.length hay then acc
            else if String.sub hay i n = needle then go (i + 1) (acc + 1)
            else go (i + 1) acc
          in
          go 0 0
        in
        check int "gates drawn" (Core.Mig.size mig)
          (count_occurrences "shape=circle" dot));
    test_case "mig verilog references all ports" `Quick (fun () ->
        let mig = Core.Mig_of_network.convert (Funcgen.rd 5 3) in
        let v = Io.Export.mig_to_verilog mig in
        let contains needle =
          let n = String.length needle in
          let rec go i =
            i + n <= String.length v && (String.sub v i n = needle || go (i + 1))
          in
          go 0
        in
        check bool "module" true (contains "module mig(");
        check bool "inputs" true (contains "input  x4");
        check bool "outputs" true (contains "assign y2");
        check bool "endmodule" true (contains "endmodule"));
    test_case "network dot output well-formed" `Quick (fun () ->
        let dot = Io.Export.network_to_dot (Funcgen.full_adder ()) in
        check bool "digraph" true (String.sub dot 0 7 = "digraph"));
    test_case "verilog semantics via blif comparison" `Quick (fun () ->
        (* the Verilog writer mirrors the MIG exactly; compare through the
           BLIF export of the same graph *)
        let mig = Core.Mig_of_network.convert (Funcgen.comparator 3) in
        let back = Io.Blif.parse_string (Io.Blif.write_string (Core.Mig_to_network.export mig)) in
        check bool "blif export preserves function" true
          (Core.Mig_equiv.equivalent_network mig back));
  ]

let () =
  Alcotest.run "io"
    [
      ("blif", blif_tests);
      ("bench-format", bench_tests);
      ("pla", pla_tests);
      ("aiger", aiger_tests);
      ("gen", gen_tests);
      ("scale", scale_tests);
      ("benchmarks", benchmark_tests);
      ("export", export_tests);
      ("errors", error_tests);
    ]
