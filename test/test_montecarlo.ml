(* Statistical device variability and Monte-Carlo yield campaigns
   (DESIGN.md §12): the splittable PRNG's stability and stream separation,
   the lognormal/Gaussian samplers' moments, the Variation device model
   (validation, perfect σ=0 arrays, drift-collapsed margins, the BIST
   screen), wear-aware remapping, and the campaign driver's determinism
   contract — jobs=1 and jobs=N produce identical per-trial outcomes — plus
   the protection-dominance shape of the yield curves. *)

let c17 () =
  let path =
    if Sys.file_exists "examples/c17.bench" then "examples/c17.bench"
    else "../examples/c17.bench"
  in
  Io.Bench_format.parse_file path

let compiled_c17 () =
  let mig = Core.Mig_opt.steps ~effort:2 (Core.Mig_of_network.convert (c17 ())) in
  let r = Rram.Compile_mig.compile Core.Rram_cost.Maj mig in
  (r.Rram.Compile_mig.program, Core.Mig_sim.eval mig)

(* ------------------------------------------------------------------ *)
(* Splittable PRNG                                                     *)
(* ------------------------------------------------------------------ *)

let prng_tests =
  let open Alcotest in
  [
    test_case "split_seed is stable across runs (pinned values)" `Quick (fun () ->
        check int "split_seed 42 0" 2320198762179089453 (Logic.Prng.split_seed 42 0);
        check int "split_seed 42 1" (-2591998252750549019) (Logic.Prng.split_seed 42 1);
        check int "split_seed 7 0" 3610735443005674341 (Logic.Prng.split_seed 7 0));
    test_case "split_seed separates indices and masters" `Quick (fun () ->
        let seeds = List.init 1000 (Logic.Prng.split_seed 42) in
        check int "1000 indices, 1000 distinct seeds" 1000
          (List.length (List.sort_uniq compare seeds));
        List.iteri
          (fun i a ->
            check bool "masters 42 and 43 disagree at every index" true
              (a <> Logic.Prng.split_seed 43 i))
          seeds);
    test_case "split streams diverge immediately" `Quick (fun () ->
        let master = Logic.Prng.create 0xBEEF in
        let a = Logic.Prng.split master 0 and b = Logic.Prng.split master 1 in
        let draws t = List.init 10 (fun _ -> Logic.Prng.float t) in
        check bool "first ten draws differ" true (draws a <> draws b));
    test_case "gaussian moments" `Quick (fun () ->
        let t = Logic.Prng.create 1234 in
        let n = 20_000 in
        let xs = List.init n (fun _ -> Logic.Prng.gaussian t) in
        let mean = List.fold_left ( +. ) 0.0 xs /. float_of_int n in
        let var =
          List.fold_left (fun a x -> a +. ((x -. mean) ** 2.0)) 0.0 xs
          /. float_of_int n
        in
        check bool "mean near 0" true (Float.abs mean < 0.03);
        check bool "variance near 1" true (Float.abs (var -. 1.0) < 0.05));
    test_case "lognormal median and mean" `Quick (fun () ->
        let t = Logic.Prng.create 99 in
        let n = 20_000 and median = 2500.0 and sigma = 0.4 in
        let xs =
          List.init n (fun _ -> Rram.Variation.lognormal t ~median ~sigma)
        in
        let sorted = List.sort compare xs in
        let observed_median = List.nth sorted (n / 2) in
        let mean = List.fold_left ( +. ) 0.0 xs /. float_of_int n in
        let expected_mean = median *. exp (sigma *. sigma /. 2.0) in
        check bool "median within 3%" true
          (Float.abs (observed_median /. median -. 1.0) < 0.03);
        check bool "mean within 3%" true
          (Float.abs (mean /. expected_mean -. 1.0) < 0.03));
  ]

(* ------------------------------------------------------------------ *)
(* Variation device model                                              *)
(* ------------------------------------------------------------------ *)

let is_error = function Error _ -> true | Ok () -> false

let variation_tests =
  let open Alcotest in
  [
    test_case "validate rejects unphysical parameters" `Quick (fun () ->
        let n = Rram.Variation.nominal in
        check bool "negative LRS" true
          (is_error (Rram.Variation.validate { n with r_lrs = -1.0 }));
        check bool "LRS above HRS" true
          (is_error (Rram.Variation.validate { n with r_lrs = 1e6 }));
        check bool "negative sigma" true
          (is_error (Rram.Variation.validate { n with sigma_hrs = -0.1 }));
        check bool "negative noise" true
          (is_error (Rram.Variation.validate { n with read_noise = -0.01 }));
        check bool "negative drift" true
          (is_error (Rram.Variation.validate { n with drift = -0.001 }));
        check bool "zero read voltage" true
          (is_error (Rram.Variation.validate { n with v_read = 0.0 }));
        check bool "nominal is fine" false (is_error (Rram.Variation.validate n)));
    test_case "sigma 0 array computes the reference exactly" `Quick (fun () ->
        let program, reference = compiled_c17 () in
        let params = Rram.Variation.scaled 0.0 in
        let devices =
          Rram.Variation.crossbar params ~seed:5 program.Rram.Program.num_regs
        in
        List.iter
          (fun v ->
            check (list bool) "outputs match"
              (Array.to_list (reference v))
              (Array.to_list (Rram.Interp.run_on ~devices program v)))
          (Rram.Verify.vectors program.Rram.Program.num_inputs));
    test_case "sample is deterministic and seed-sensitive" `Quick (fun () ->
        let p = Rram.Variation.nominal in
        let rs seed =
          Array.map (fun d -> d.Rram.Device.r_lrs) (Rram.Variation.sample p ~seed 32)
        in
        check bool "same seed, same silicon" true (rs 11 = rs 11);
        check bool "different seed, different silicon" true (rs 11 <> rs 12));
    test_case "endurance drift collapses the sense margin" `Quick (fun () ->
        let d =
          (Rram.Variation.crossbar (Rram.Variation.scaled 0.0) ~seed:3 1).(0)
        in
        let margin0 =
          match Rram.Device.margin d with Some m -> m | None -> Alcotest.fail "physics"
        in
        check bool "fresh cell has positive margin" true (margin0 > 1.0);
        for i = 1 to 1000 do
          Rram.Device.write d (i mod 2 = 0)
        done;
        let margin1 =
          match Rram.Device.margin d with Some m -> m | None -> Alcotest.fail "physics"
        in
        check bool "worn cell's margin is below the fresh one" true (margin1 < margin0);
        check bool "1000 switching events push the margin negative" true (margin1 < 0.0));
    test_case "BIST screen flags wrong-side and stuck cells" `Quick (fun () ->
        let params = Rram.Variation.scaled 0.0 in
        let good = Rram.Variation.sample params ~seed:1 3 in
        (* Cell 1's LRS draw lands above the sense reference: it reads as 0
           in both states.  Cell 2 is manufactured stuck. *)
        let phys = Array.copy good in
        phys.(1) <- { phys.(1) with Rram.Device.r_lrs = phys.(1).Rram.Device.r_hrs };
        let devices =
          Rram.Interp.crossbar ~physics:phys
            ~defects:[ (2, Rram.Device.Stuck_1) ]
            3
        in
        check (list int) "screen verdict" [ 1; 2 ] (Rram.Variation.screen devices);
        let healthy = Rram.Interp.crossbar ~physics:good 3 in
        check (list int) "healthy array screens clean" []
          (Rram.Variation.screen healthy));
  ]

(* ------------------------------------------------------------------ *)
(* Wear-aware remapping                                                *)
(* ------------------------------------------------------------------ *)

let remap_tests =
  let open Alcotest in
  [
    test_case "replacement is the least-worn free cell" `Quick (fun () ->
        let program, _ = compiled_c17 () in
        let n = program.Rram.Program.num_regs in
        let wear = Array.make (n + 8) 0 in
        (* Free cells are n..n+7; make n+3 the clear winner. *)
        Array.iteri (fun i _ -> if i >= n then wear.(i) <- 50 + i) wear;
        wear.(n + 3) <- 1;
        (match Rram.Remap.remap_wear_aware ~wear program ~bad:[ 0 ] with
        | Error e -> fail e
        | Ok r ->
            check (list (pair int int)) "moves" [ (0, n + 3) ] r.Rram.Remap.moves);
        (* Equal wear everywhere: ties break to the lowest index. *)
        (match Rram.Remap.remap_wear_aware ~wear:(Array.make (n + 8) 7) program ~bad:[ 0 ] with
        | Error e -> fail e
        | Ok r -> check (list (pair int int)) "tie-break" [ (0, n) ] r.Rram.Remap.moves));
    test_case "known-bad cells never re-enter the pool" `Quick (fun () ->
        let program, _ = compiled_c17 () in
        let n = program.Rram.Program.num_regs in
        let wear = Array.make (n + 3) 0 in
        let bad = [ 0; n; n + 1 ] in
        (match Rram.Remap.remap_wear_aware ~wear program ~bad with
        | Error e -> fail e
        | Ok r ->
            check (list (pair int int)) "only the clean spare is used"
              [ (0, n + 2) ]
              r.Rram.Remap.moves);
        match Rram.Remap.remap_wear_aware ~wear:(Array.make n 0) program ~bad:[ 0 ] with
        | Error _ -> ()
        | Ok _ -> fail "expected out-of-spares error");
    test_case "resilient controller accepts the wear-aware policy" `Quick
      (fun () ->
        let program, reference = compiled_c17 () in
        let n = program.Rram.Program.num_regs in
        let wear = Array.make (n + 8) 0 in
        let env = Rram.Resilient.env_of_defects [ (1, Rram.Device.Stuck_1) ] in
        let remap p ~bad = Rram.Remap.remap_wear_aware ~wear p ~bad in
        let report = Rram.Resilient.run ~remap env program ~reference in
        check bool "repaired" true report.Rram.Resilient.ok;
        List.iter
          (fun (_, to_) -> check bool "repairs land on free cells" true (to_ >= n))
          report.Rram.Resilient.moves);
  ]

(* ------------------------------------------------------------------ *)
(* Campaign driver                                                     *)
(* ------------------------------------------------------------------ *)

let campaign ?(jobs = 1) ?(trials = 40) ?(sigmas = [ 0.0; 1.5 ]) () =
  let config =
    {
      Exp.Montecarlo.default with
      trials;
      sigmas;
      jobs = Some jobs;
      effort = 2;
      vectors = 16;
      seed = 0xCA4E;
    }
  in
  Exp.Montecarlo.run ~config ~name:"c17.bench" (c17 ())

(* Everything except the wall clock. *)
let fingerprint (t : Exp.Montecarlo.t) =
  ( t.Exp.Montecarlo.benchmark,
    t.Exp.Montecarlo.trials,
    t.Exp.Montecarlo.seed,
    t.Exp.Montecarlo.universe,
    t.Exp.Montecarlo.num_vectors,
    t.Exp.Montecarlo.points )

let yield_of point arm =
  let a =
    List.find (fun r -> r.Exp.Montecarlo.arm = arm) point.Exp.Montecarlo.arms
  in
  a.Exp.Montecarlo.estimate.Exp.Montecarlo.yield

let montecarlo_tests =
  let open Alcotest in
  [
    test_case "config validation rejects campaign nonsense" `Quick (fun () ->
        let bad c = is_error (Exp.Montecarlo.validate c) in
        let d = Exp.Montecarlo.default in
        check bool "trials 0" true (bad { d with trials = 0 });
        check bool "no sigmas" true (bad { d with sigmas = [] });
        check bool "negative sigma" true (bad { d with sigmas = [ 0.5; -1.0 ] });
        check bool "nan sigma" true (bad { d with sigmas = [ Float.nan ] });
        check bool "zero vectors" true (bad { d with vectors = 0 });
        check bool "zero attempts" true (bad { d with max_attempts = 0 });
        check bool "unphysical base" true
          (bad { d with base = { d.base with r_lrs = -5.0 } });
        check bool "default is valid" false (bad d));
    test_case "sigma 0 yields 1.0 on every arm" `Quick (fun () ->
        let t = campaign ~sigmas:[ 0.0 ] () in
        let p = List.hd t.Exp.Montecarlo.points in
        List.iter
          (fun arm -> check (float 0.0) arm 1.0 (yield_of p arm))
          [ "imp"; "maj"; "resilient"; "wear"; "tmr" ]);
    test_case "protection dominates unprotected at high sigma" `Quick (fun () ->
        let t = campaign ~trials:120 ~sigmas:[ 1.5 ] () in
        let p = List.hd t.Exp.Montecarlo.points in
        let maj = yield_of p "maj" and imp = yield_of p "imp" in
        check bool "TMR strictly beats bare MAJ" true (yield_of p "tmr" > maj);
        check bool "TMR strictly beats bare IMP" true (yield_of p "tmr" > imp);
        check bool "wear-aware strictly beats bare MAJ" true (yield_of p "wear" > maj);
        check bool "wear-aware strictly beats bare IMP" true (yield_of p "wear" > imp);
        check bool "wear-aware at least matches plain remapping" true
          (yield_of p "wear" >= yield_of p "resilient"));
    test_case "campaigns replay bit-identically at a fixed seed" `Quick (fun () ->
        check bool "equal fingerprints" true
          (fingerprint (campaign ()) = fingerprint (campaign ())));
  ]

let campaign_props =
  [
    QCheck.Test.make ~count:3
      ~name:"per-trial outcomes identical for jobs=1 and jobs=N"
      QCheck.(int_range 2 4)
      (fun jobs ->
        fingerprint (campaign ~jobs:1 ()) = fingerprint (campaign ~jobs ()));
  ]

let () =
  Alcotest.run "montecarlo"
    [
      ("prng", prng_tests);
      ("variation", variation_tests);
      ("remap-wear", remap_tests);
      ("campaign", montecarlo_tests);
      ("campaign-props", List.map QCheck_alcotest.to_alcotest campaign_props);
    ]
