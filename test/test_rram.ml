open Logic

(* ------------------------------------------------------------------ *)
(* Device physics: Fig. 1 and Fig. 2 truth tables                      *)
(* ------------------------------------------------------------------ *)

let device_tests =
  let open Alcotest in
  [
    test_case "IMP truth table (Fig. 1b)" `Quick (fun () ->
        (* q' = p IMP q = ¬p ∨ q *)
        List.iter
          (fun (p, q, expect) ->
            let dp = Rram.Device.create () and dq = Rram.Device.create () in
            Rram.Device.write dp p;
            Rram.Device.write dq q;
            Rram.Device.imp_pulse ~p:dp ~q:dq;
            check bool (Printf.sprintf "p=%b q=%b" p q) expect (Rram.Device.read dq);
            check bool "p unchanged" p (Rram.Device.read dp))
          [ (false, false, true); (false, true, true); (true, false, false); (true, true, true) ]);
    test_case "MAJ pulse truth table (Fig. 2)" `Quick (fun () ->
        (* R' = M(P, ¬Q, R): for R=0, R' = P·¬Q; for R=1, R' = P ∨ ¬Q *)
        List.iter
          (fun (p, q, r, expect) ->
            let d = Rram.Device.create () in
            Rram.Device.write d r;
            Rram.Device.maj_pulse d ~p ~q;
            check bool (Printf.sprintf "P=%b Q=%b R=%b" p q r) expect (Rram.Device.read d))
          [
            (false, false, false, false);
            (false, true, false, false);
            (true, false, false, true);
            (true, true, false, false);
            (false, false, true, true);
            (false, true, true, false);
            (true, false, true, true);
            (true, true, true, true);
          ]);
    test_case "FALSE clears" `Quick (fun () ->
        let d = Rram.Device.create () in
        Rram.Device.set d;
        Rram.Device.clear d;
        check bool "cleared" false (Rram.Device.read d));
    test_case "MAJ pulse is the majority of P, ~Q, R" `Quick (fun () ->
        for m = 0 to 7 do
          let p = m land 1 <> 0 and q = m land 2 <> 0 and r = m land 4 <> 0 in
          let d = Rram.Device.create () in
          Rram.Device.write d r;
          Rram.Device.maj_pulse d ~p ~q;
          let count = (if p then 1 else 0) + (if not q then 1 else 0) + if r then 1 else 0 in
          Alcotest.(check bool) "majority" (count >= 2) (Rram.Device.read d)
        done);
  ]

(* ------------------------------------------------------------------ *)
(* The paper's hand-derived gate sequences                              *)
(* ------------------------------------------------------------------ *)

let single_maj_mig () =
  let mig = Core.Mig.create () in
  let a = Core.Mig.add_pi mig in
  let b = Core.Mig.add_pi mig in
  let c = Core.Mig.add_pi mig in
  ignore (Core.Mig.add_po mig (Core.Mig.maj mig a b c));
  mig

let sequence_tests =
  let open Alcotest in
  [
    test_case "IMP majority gate: 6 RRAMs, 10 steps, correct" `Quick (fun () ->
        let mig = single_maj_mig () in
        let r = Rram.Compile_mig.compile Core.Rram_cost.Imp mig in
        check int "steps" 10 r.Rram.Compile_mig.measured_steps;
        check int "rrams" 6 r.Rram.Compile_mig.measured_rrams;
        (match Rram.Program.validate r.Rram.Compile_mig.program with
        | Ok () -> ()
        | Error e -> fail e);
        match Rram.Verify.against_mig r.Rram.Compile_mig.program mig with
        | Ok () -> ()
        | Error e -> fail e);
    test_case "MAJ majority gate: 4 RRAMs, 3 steps, correct" `Quick (fun () ->
        let mig = single_maj_mig () in
        let r = Rram.Compile_mig.compile Core.Rram_cost.Maj mig in
        check int "steps" 3 r.Rram.Compile_mig.measured_steps;
        check int "rrams" 4 r.Rram.Compile_mig.measured_rrams;
        match Rram.Verify.against_mig r.Rram.Compile_mig.program mig with
        | Ok () -> ()
        | Error e -> fail e);
  ]

(* ------------------------------------------------------------------ *)
(* MIG compiler: formula cross-check + functional verification         *)
(* ------------------------------------------------------------------ *)

let check_mig_compile ?(realizations = [ Core.Rram_cost.Imp; Core.Rram_cost.Maj ]) mig =
  List.iter
    (fun realization ->
      let r = Rram.Compile_mig.compile realization mig in
      (match Rram.Program.validate r.Rram.Compile_mig.program with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("invalid program: " ^ e));
      Alcotest.(check int)
        "measured steps = Table I formula" r.Rram.Compile_mig.analytic.Core.Rram_cost.steps
        r.Rram.Compile_mig.measured_steps;
      Alcotest.(check bool)
        "measured rrams >= analytic" true
        (r.Rram.Compile_mig.measured_rrams >= r.Rram.Compile_mig.analytic.Core.Rram_cost.rrams);
      match Rram.Verify.against_mig r.Rram.Compile_mig.program mig with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    realizations

let mig_compile_tests =
  let open Alcotest in
  let of_net net = Core.Mig_of_network.convert net in
  [
    test_case "full adder" `Quick (fun () -> check_mig_compile (of_net (Funcgen.full_adder ())));
    test_case "ripple adder 4" `Quick (fun () ->
        check_mig_compile (of_net (Funcgen.ripple_adder 4)));
    test_case "cla adder 3" `Quick (fun () ->
        check_mig_compile (of_net (Funcgen.carry_lookahead_adder 3)));
    test_case "multiplier 3" `Quick (fun () -> check_mig_compile (of_net (Funcgen.multiplier 3)));
    test_case "rd53" `Quick (fun () -> check_mig_compile (of_net (Funcgen.rd 5 3)));
    test_case "9sym" `Quick (fun () -> check_mig_compile (of_net (Funcgen.sym_range 9 3 6)));
    test_case "parity 8" `Quick (fun () -> check_mig_compile (of_net (Funcgen.parity 8)));
    test_case "comparator 4" `Quick (fun () -> check_mig_compile (of_net (Funcgen.comparator 4)));
    test_case "clip" `Quick (fun () -> check_mig_compile (of_net (Funcgen.clip ())));
    test_case "t481" `Quick (fun () -> check_mig_compile (of_net (Funcgen.t481 ())));
    test_case "complemented PO" `Quick (fun () ->
        let mig = Core.Mig.create () in
        let a = Core.Mig.add_pi mig and b = Core.Mig.add_pi mig and c = Core.Mig.add_pi mig in
        ignore (Core.Mig.add_po mig (Core.Mig.not_ (Core.Mig.maj mig a b c)));
        check_mig_compile mig);
    test_case "PO is a PI / constant" `Quick (fun () ->
        let mig = Core.Mig.create () in
        let a = Core.Mig.add_pi mig in
        ignore (Core.Mig.add_po mig a);
        ignore (Core.Mig.add_po mig Core.Mig.const1);
        List.iter
          (fun realization ->
            let r = Rram.Compile_mig.compile realization mig in
            match Rram.Verify.against_mig r.Rram.Compile_mig.program mig with
            | Ok () -> ()
            | Error e -> fail e)
          [ Core.Rram_cost.Imp; Core.Rram_cost.Maj ]);
    test_case "optimized MIGs still compile correctly" `Quick (fun () ->
        let mig = of_net (Funcgen.rd 5 3) in
        List.iter
          (fun alg ->
            let optimized = Core.Mig_opt.run ~effort:8 alg mig in
            check_mig_compile optimized)
          [
            Core.Mig_opt.Area;
            Core.Mig_opt.Depth;
            Core.Mig_opt.Rram_costs Core.Rram_cost.Maj;
            Core.Mig_opt.Steps;
          ]);
  ]

let mig_compile_props =
  let random_mig seed =
    let rng = Prng.create seed in
    let mig = Core.Mig.create () in
    let signals = ref [| Core.Mig.const0 |] in
    let add s = signals := Array.append !signals [| s |] in
    for _ = 1 to 5 do
      add (Core.Mig.add_pi mig)
    done;
    for _ = 1 to 25 do
      let pick () =
        let s = Prng.pick rng !signals in
        if Prng.bool rng then Core.Mig.not_ s else s
      in
      add (Core.Mig.maj mig (pick ()) (pick ()) (pick ()))
    done;
    for _ = 1 to 3 do
      ignore (Core.Mig.add_po mig (Prng.pick rng !signals))
    done;
    Core.Mig.cleanup mig
  in
  [
    QCheck.Test.make ~name:"random MIGs: program = MIG function (IMP)" ~count:40
      (QCheck.make QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let mig = random_mig seed in
        let r = Rram.Compile_mig.compile Core.Rram_cost.Imp mig in
        Rram.Verify.against_mig r.Rram.Compile_mig.program mig = Ok ());
    QCheck.Test.make ~name:"random MIGs: program = MIG function (MAJ)" ~count:40
      (QCheck.make QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let mig = random_mig seed in
        let r = Rram.Compile_mig.compile Core.Rram_cost.Maj mig in
        Rram.Verify.against_mig r.Rram.Compile_mig.program mig = Ok ());
    QCheck.Test.make ~name:"random MIGs: steps match Table I (both)" ~count:40
      (QCheck.make QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let mig = random_mig seed in
        let depth = (Core.Mig_levels.compute mig).Core.Mig_levels.depth in
        List.for_all
          (fun realization ->
            let r = Rram.Compile_mig.compile realization mig in
            let analytic = r.Rram.Compile_mig.analytic.Core.Rram_cost.steps in
            (* A depth-0 graph with complemented input outputs has no gate
               level whose load step can absorb the staging copies, costing
               one extra step over the formula (documented corner). *)
            if depth = 0 then
              r.Rram.Compile_mig.measured_steps <= analytic + 1
            else r.Rram.Compile_mig.measured_steps = analytic)
          [ Core.Rram_cost.Imp; Core.Rram_cost.Maj ]);
  ]

(* ------------------------------------------------------------------ *)
(* Baseline compilers                                                   *)
(* ------------------------------------------------------------------ *)

let check_bdd mode net =
  let built = Bdd_lib.Bdd_of_network.build net in
  let r = Rram.Compile_bdd.compile ~mode built in
  (match Rram.Program.validate r.Rram.Compile_bdd.program with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("invalid BDD program: " ^ e));
  match Rram.Verify.against_network r.Rram.Compile_bdd.program net with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let check_aig mode net =
  let aig = Aig_lib.Aig_of_network.convert net in
  let r = Rram.Compile_aig.compile ~mode aig in
  (match Rram.Program.validate r.Rram.Compile_aig.program with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("invalid AIG program: " ^ e));
  match Rram.Verify.against_network r.Rram.Compile_aig.program net with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let baseline_tests =
  let open Alcotest in
  let nets =
    [
      ("full adder", Funcgen.full_adder ());
      ("ripple 4", Funcgen.ripple_adder 4);
      ("rd53", Funcgen.rd 5 3);
      ("comparator 3", Funcgen.comparator 3);
      ("parity 6", Funcgen.parity 6);
      ("mux tree 2", Funcgen.mux_tree 2);
      ("clip", Funcgen.clip ());
    ]
  in
  List.concat_map
    (fun (name, net) ->
      [
        test_case (name ^ " / BDD sequential") `Quick (fun () -> check_bdd `Sequential net);
        test_case (name ^ " / BDD levelized") `Quick (fun () -> check_bdd `Levelized net);
        test_case (name ^ " / AIG sequential") `Quick (fun () -> check_aig `Sequential net);
        test_case (name ^ " / AIG levelized") `Quick (fun () -> check_aig `Levelized net);
      ])
    nets
  @ [
      test_case "BDD sequential steps scale with nodes" `Quick (fun () ->
          let net = Funcgen.rd 7 3 in
          let built = Bdd_lib.Bdd_of_network.build net in
          let nodes = Bdd_lib.Bdd_of_network.node_count built in
          let r = Rram.Compile_bdd.compile ~mode:`Sequential built in
          check bool "at least 5 steps per node" true
            (r.Rram.Compile_bdd.measured_steps >= 5 * nodes));
      test_case "MAJ-MIG beats sequential BDD on steps" `Quick (fun () ->
          (* the headline comparison, in miniature *)
          let net = Funcgen.rd 7 3 in
          let mig = Core.Mig_opt.steps ~effort:8 (Core.Mig_of_network.convert net) in
          let mig_r = Rram.Compile_mig.compile Core.Rram_cost.Maj mig in
          let bdd_r =
            Rram.Compile_bdd.compile ~mode:`Sequential (Bdd_lib.Bdd_of_network.build net)
          in
          check bool "MIG-MAJ faster" true
            (mig_r.Rram.Compile_mig.measured_steps < bdd_r.Rram.Compile_bdd.measured_steps));
    ]

(* ------------------------------------------------------------------ *)
(* Energy accounting and crossbar placement                            *)
(* ------------------------------------------------------------------ *)

let energy_tests =
  let open Alcotest in
  [
    test_case "single-gate pulse counts" `Quick (fun () ->
        let r = Rram.Compile_mig.compile Core.Rram_cost.Imp (single_maj_mig ()) in
        let c = Rram.Energy.static_counts r.Rram.Compile_mig.program in
        (* the 10-step sequence: 3 loads + 3 presets + 1 mid-FALSE + 8 imps *)
        check int "loads" 3 c.Rram.Energy.loads;
        check int "resets" 4 c.Rram.Energy.resets;
        check int "imps" 8 c.Rram.Energy.imps;
        check int "maj" 0 c.Rram.Energy.maj_pulses);
    test_case "maj realization uses fewer pulses" `Quick (fun () ->
        let mig = Core.Mig_of_network.convert (Logic.Funcgen.rd 5 3) in
        let imp = Rram.Compile_mig.compile Core.Rram_cost.Imp mig in
        let maj = Rram.Compile_mig.compile Core.Rram_cost.Maj mig in
        check bool "fewer" true
          (Rram.Energy.total_pulses (Rram.Energy.static_counts maj.Rram.Compile_mig.program)
          < Rram.Energy.total_pulses (Rram.Energy.static_counts imp.Rram.Compile_mig.program)));
    test_case "switching activity bounded by pulses" `Quick (fun () ->
        let r = Rram.Compile_mig.compile Core.Rram_cost.Maj (single_maj_mig ()) in
        let flips = Rram.Energy.switching_activity r.Rram.Compile_mig.program in
        let pulses = Rram.Energy.total_pulses (Rram.Energy.static_counts r.Rram.Compile_mig.program) in
        check bool "bounded" true (flips <= float_of_int pulses));
    test_case "static energy positive and weight-sensitive" `Quick (fun () ->
        let r = Rram.Compile_mig.compile Core.Rram_cost.Imp (single_maj_mig ()) in
        let e1 = Rram.Energy.static_energy r.Rram.Compile_mig.program in
        let w = { Rram.Energy.default_weights with imp = 2.4 } in
        let e2 = Rram.Energy.static_energy ~weights:w r.Rram.Compile_mig.program in
        check bool "positive" true (e1 > 0.0);
        check bool "sensitive" true (e2 > e1));
  ]

let placement_tests =
  let open Alcotest in
  let programs () =
    List.concat_map
      (fun net ->
        let mig = Core.Mig_of_network.convert net in
        [
          (Rram.Compile_mig.compile Core.Rram_cost.Imp mig).Rram.Compile_mig.program;
          (Rram.Compile_mig.compile Core.Rram_cost.Maj mig).Rram.Compile_mig.program;
        ])
      [ Logic.Funcgen.full_adder (); Logic.Funcgen.rd 5 3; Logic.Funcgen.comparator 4 ]
  in
  [
    test_case "placements are valid" `Quick (fun () ->
        List.iter
          (fun p ->
            let placement = Rram.Placement.place p in
            match Rram.Placement.validate p placement with
            | Ok () -> ()
            | Error e -> fail e)
          (programs ()));
    test_case "utilization in (0, 1]" `Quick (fun () ->
        List.iter
          (fun p ->
            let t = Rram.Placement.place p in
            check bool "util" true (t.Rram.Placement.utilization > 0.0 && t.Rram.Placement.utilization <= 1.0))
          (programs ()));
    test_case "imp gate devices share a row" `Quick (fun () ->
        let r = Rram.Compile_mig.compile Core.Rram_cost.Imp (single_maj_mig ()) in
        let t = Rram.Placement.place r.Rram.Compile_mig.program in
        (* all 6 devices of the single gate interact through IMP: one row *)
        check bool "at most 2 rows" true (t.Rram.Placement.rows <= 2));
  ]

(* ------------------------------------------------------------------ *)
(* Crossbar-constrained compilation                                     *)
(* ------------------------------------------------------------------ *)

(* Full contract of the crossbar backend on a fitted geometry: the program
   is structurally valid under the per-step row discipline, the placement
   is consistent, the parallel-wave execution computes the same function as
   the MIG, and the latency matches the serial compiler (exactly for MAJ;
   IMP pays one complement sub-step per extra operand position in use,
   which the serial model understates). *)
let crossbar_check mig =
  List.iter
    (fun realization ->
      let serial = Rram.Compile_mig.compile realization mig in
      let arch = Rram.Compile_crossbar.fit realization mig in
      match Rram.Compile_crossbar.compile ~arch realization mig with
      | Error e -> Alcotest.fail ("fit geometry rejected: " ^ e)
      | Ok r ->
          let p = r.Rram.Compile_crossbar.program in
          let placement = r.Rram.Compile_crossbar.placement in
          (match
             Rram.Program.validate ~row_of:placement.Rram.Placement.row_of p
           with
          | Ok () -> ()
          | Error e -> Alcotest.fail ("row discipline: " ^ e));
          (match Rram.Placement.validate p placement with
          | Ok () -> ()
          | Error e -> Alcotest.fail ("placement: " ^ e));
          (match Rram.Verify.against_mig p mig with
          | Ok () -> ()
          | Error e -> Alcotest.fail ("crossbar program diverges: " ^ e));
          let latency = r.Rram.Compile_crossbar.measured.Core.Rram_cost.latency in
          let serial_steps = serial.Rram.Compile_mig.measured_steps in
          (match realization with
          | Core.Rram_cost.Maj ->
              Alcotest.(check int)
                "MAJ fitted latency = serial steps" serial_steps latency
          | Core.Rram_cost.Imp ->
              let depth = (Core.Mig_levels.compute mig).Core.Mig_levels.depth in
              Alcotest.(check bool)
                "IMP fitted latency within complement-rotation slack" true
                (latency <= serial_steps + (2 * depth) + 2));
          Alcotest.(check bool)
            "devices within capacity" true
            (match arch with
            | Core.Rram_cost.Crossbar { rows; columns } ->
                r.Rram.Compile_crossbar.measured.Core.Rram_cost.devices
                <= rows * columns
            | Core.Rram_cost.Unbounded_serial -> false))
    [ Core.Rram_cost.Imp; Core.Rram_cost.Maj ]

(* Halving the row budget must still produce an equivalent program — waves
   just serialize — and can only increase latency. *)
let crossbar_constrained_check mig =
  let realization = Core.Rram_cost.Maj in
  match Rram.Compile_crossbar.fit realization mig with
  | Core.Rram_cost.Unbounded_serial -> ()
  | Core.Rram_cost.Crossbar { rows; columns = _ } ->
      if rows > 1 then begin
        let fitted =
          match
            Rram.Compile_crossbar.compile
              ~arch:(Rram.Compile_crossbar.fit realization mig)
              realization mig
          with
          | Ok r -> r
          | Error e -> Alcotest.fail e
        in
        let arch =
          Core.Rram_cost.Crossbar { rows = (rows + 1) / 2; columns = 256 }
        in
        match Rram.Compile_crossbar.compile ~arch realization mig with
        | Error e -> Alcotest.fail ("halved rows rejected: " ^ e)
        | Ok r ->
            let p = r.Rram.Compile_crossbar.program in
            (match
               Rram.Program.validate
                 ~row_of:r.Rram.Compile_crossbar.placement.Rram.Placement.row_of
                 p
             with
            | Ok () -> ()
            | Error e -> Alcotest.fail ("row discipline: " ^ e));
            (match Rram.Verify.against_mig p mig with
            | Ok () -> ()
            | Error e -> Alcotest.fail ("constrained program diverges: " ^ e));
            Alcotest.(check bool)
              "halving rows never speeds the program up" true
              (r.Rram.Compile_crossbar.measured.Core.Rram_cost.latency
              >= fitted.Rram.Compile_crossbar.measured.Core.Rram_cost.latency);
            Alcotest.(check bool)
              "spilled levels need more waves" true
              (r.Rram.Compile_crossbar.waves >= fitted.Rram.Compile_crossbar.waves)
      end

let crossbar_tests =
  let open Alcotest in
  let of_net net = Core.Mig_of_network.convert net in
  [
    test_case "single MAJ gate fits a 1x4 array in 3 steps" `Quick (fun () ->
        let mig = single_maj_mig () in
        let arch = Rram.Compile_crossbar.fit Core.Rram_cost.Maj mig in
        (match arch with
        | Core.Rram_cost.Crossbar { rows; columns } ->
            check int "rows" 1 rows;
            check int "columns" 4 columns
        | Core.Rram_cost.Unbounded_serial -> fail "expected a crossbar");
        match Rram.Compile_crossbar.compile ~arch Core.Rram_cost.Maj mig with
        | Error e -> fail e
        | Ok r ->
            check int "latency" 3
              r.Rram.Compile_crossbar.measured.Core.Rram_cost.latency;
            check int "devices" 4
              r.Rram.Compile_crossbar.measured.Core.Rram_cost.devices;
            check int "waves" 1 r.Rram.Compile_crossbar.waves);
    test_case "fitted geometry runs one wave per level" `Quick (fun () ->
        let mig = of_net (Funcgen.ripple_adder 4) in
        let arch = Rram.Compile_crossbar.fit Core.Rram_cost.Maj mig in
        match Rram.Compile_crossbar.compile ~arch Core.Rram_cost.Maj mig with
        | Error e -> fail e
        | Ok r ->
            check int "waves = depth"
              (Core.Mig_levels.compute mig).Core.Mig_levels.depth
              r.Rram.Compile_crossbar.waves);
    test_case "benchmarks map on fitted geometries" `Quick (fun () ->
        List.iter
          (fun net -> crossbar_check (of_net net))
          [
            Funcgen.full_adder ();
            Funcgen.ripple_adder 4;
            Funcgen.rd 5 3;
            Funcgen.parity 8;
            Funcgen.comparator 4;
            Funcgen.clip ();
          ]);
    test_case "complemented primary outputs read out correctly" `Quick (fun () ->
        let mig = Core.Mig.create () in
        let a = Core.Mig.add_pi mig
        and b = Core.Mig.add_pi mig
        and c = Core.Mig.add_pi mig in
        let g = Core.Mig.maj mig a b c in
        ignore (Core.Mig.add_po mig (Core.Mig.not_ g));
        ignore (Core.Mig.add_po mig (Core.Mig.not_ a));
        ignore (Core.Mig.add_po mig g);
        crossbar_check mig);
    test_case "row budget forces extra waves" `Quick (fun () ->
        crossbar_constrained_check (of_net (Funcgen.ripple_adder 4));
        crossbar_constrained_check (of_net (Funcgen.rd 5 3)));
    test_case "the serial target is rejected by the backend" `Quick (fun () ->
        match
          Rram.Compile_crossbar.compile ~arch:Core.Rram_cost.Unbounded_serial
            Core.Rram_cost.Maj (single_maj_mig ())
        with
        | Error _ -> ()
        | Ok _ -> fail "expected an error");
    test_case "a too-narrow crossbar is rejected with a reason" `Quick
      (fun () ->
        match
          Rram.Compile_crossbar.compile
            ~arch:(Core.Rram_cost.Crossbar { rows = 4; columns = 2 })
            Core.Rram_cost.Imp (single_maj_mig ())
        with
        | Error e ->
            check bool "mentions the column budget" true
              (String.length e > 0)
        | Ok _ -> fail "expected an error");
    test_case "architecture parsing" `Quick (fun () ->
        (match Core.Rram_cost.parse_arch "32x64" with
        | Ok (Core.Rram_cost.Crossbar { rows = 32; columns = 64 }) -> ()
        | _ -> fail "32x64 should parse");
        (match Core.Rram_cost.parse_arch "serial" with
        | Ok Core.Rram_cost.Unbounded_serial -> ()
        | _ -> fail "serial should parse");
        List.iter
          (fun text ->
            match Core.Rram_cost.parse_arch text with
            | Error _ -> ()
            | Ok _ -> fail (text ^ " should be rejected"))
          [ "0x8"; "8x0"; "-2x8"; "ax8"; "8"; "x"; "" ]);
    test_case "serial compile is bit-identical under the default arch" `Quick
      (fun () ->
        let mig = of_net (Funcgen.rd 5 3) in
        let a = Rram.Compile_mig.compile Core.Rram_cost.Maj mig in
        let b =
          Rram.Compile_mig.compile ~arch:Core.Rram_cost.Unbounded_serial
            Core.Rram_cost.Maj mig
        in
        check bool "same program" true
          (a.Rram.Compile_mig.program = b.Rram.Compile_mig.program));
  ]

let crossbar_props =
  let random_mig seed =
    let rng = Prng.create seed in
    let mig = Core.Mig.create () in
    let signals = ref [| Core.Mig.const0 |] in
    let add s = signals := Array.append !signals [| s |] in
    for _ = 1 to 5 do
      add (Core.Mig.add_pi mig)
    done;
    for _ = 1 to 25 do
      let pick () =
        let s = Prng.pick rng !signals in
        if Prng.bool rng then Core.Mig.not_ s else s
      in
      add (Core.Mig.maj mig (pick ()) (pick ()) (pick ()))
    done;
    for _ = 1 to 3 do
      ignore (Core.Mig.add_po mig (Prng.pick rng !signals))
    done;
    Core.Mig.cleanup mig
  in
  [
    QCheck.Test.make
      ~name:"random MIGs: crossbar waves = MIG function, rows disjoint (both)"
      ~count:40
      (QCheck.make QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let mig = random_mig seed in
        crossbar_check mig;
        true);
    QCheck.Test.make ~name:"random MIGs: halved row budget stays equivalent"
      ~count:40
      (QCheck.make QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let mig = random_mig seed in
        crossbar_constrained_check mig;
        true);
  ]

(* ------------------------------------------------------------------ *)
(* Non-ideal devices, fault semantics, remapping, TMR                   *)
(* ------------------------------------------------------------------ *)

let nonideal_device_tests =
  let open Alcotest in
  [
    test_case "zeroed model behaves ideally" `Quick (fun () ->
        let m = Rram.Device.model ~seed:1 () in
        let d = Rram.Device.create_with m in
        Rram.Device.set d;
        check bool "set" true (Rram.Device.read d);
        Rram.Device.clear d;
        check bool "clear" false (Rram.Device.read d));
    test_case "write_fail = 1.0 never switches" `Quick (fun () ->
        let m = Rram.Device.model ~write_fail:1.0 ~seed:2 () in
        let d = Rram.Device.create_with m in
        Rram.Device.set d;
        Rram.Device.write d true;
        check bool "still 0" false (Rram.Device.read d);
        check int "no wear" 0 (Rram.Device.wear d));
    test_case "read_disturb = 1.0 flips every read but not the state" `Quick (fun () ->
        let m = Rram.Device.model ~read_disturb:1.0 ~seed:3 () in
        let d = Rram.Device.create_with m in
        check bool "reads 1" true (Rram.Device.read d);
        check bool "stores 0" false (Rram.Device.observe d));
    test_case "endurance exhaustion freezes the cell" `Quick (fun () ->
        let m = Rram.Device.model ~endurance:3 ~seed:4 () in
        let d = Rram.Device.create_with m in
        Rram.Device.set d;
        Rram.Device.clear d;
        Rram.Device.set d;
        (* three switching events: the cell wears out stuck at 1 *)
        check bool "worn out" true (Rram.Device.defect d = Some Rram.Device.Stuck_1);
        Rram.Device.clear d;
        check bool "frozen" true (Rram.Device.read d));
    test_case "defective cell ignores every pulse" `Quick (fun () ->
        let d = Rram.Device.create () in
        Rram.Device.set_defect d Rram.Device.Stuck_0;
        Rram.Device.set d;
        Rram.Device.maj_pulse d ~p:true ~q:false;
        Rram.Device.imp_apply ~p:false d;
        check bool "still 0" false (Rram.Device.read d));
    test_case "only state changes wear the cell" `Quick (fun () ->
        let d = Rram.Device.create () in
        Rram.Device.clear d;
        Rram.Device.write d false;
        check int "no-op writes are free" 0 (Rram.Device.wear d);
        Rram.Device.set d;
        check int "one switch" 1 (Rram.Device.wear d));
  ]

let fault_reference_setup () =
  let net = Funcgen.rd 5 3 in
  let mig = Core.Mig_opt.steps ~effort:8 (Core.Mig_of_network.convert net) in
  (mig, Core.Mig_sim.eval mig)

(* A single stuck-at fault that flips at least one output on some vector. *)
let find_breaking_fault program ~reference vectors =
  let result = ref None in
  (try
     for cell = 0 to program.Rram.Program.num_regs - 1 do
       List.iter
         (fun value ->
           let f = { Rram.Faults.cell; value } in
           if not (Rram.Faults.survives program ~reference [ f ] vectors) then begin
             result := Some f;
             raise Exit
           end)
         [ true; false ]
     done
   with Exit -> ());
  !result

let fault_semantics_tests =
  let open Alcotest in
  [
    test_case "yield at rate 0.0 is exactly 1.0 (both realizations)" `Quick (fun () ->
        let mig, reference = fault_reference_setup () in
        List.iter
          (fun realization ->
            let r = Rram.Compile_mig.compile realization mig in
            let y =
              Rram.Faults.functional_yield ~trials:50 ~rate:0.0
                r.Rram.Compile_mig.program ~reference
            in
            check (float 0.0) "yield" 1.0 y.Rram.Faults.yield;
            check (float 0.0) "mean faults" 0.0 y.Rram.Faults.mean_faults)
          [ Core.Rram_cost.Imp; Core.Rram_cost.Maj ]);
    test_case "a stuck cell that is never live cannot change outputs" `Quick (fun () ->
        let mig, reference = fault_reference_setup () in
        let r = Rram.Compile_mig.compile Core.Rram_cost.Maj mig in
        let p = r.Rram.Compile_mig.program in
        (* a spare physical cell beyond every register the program touches *)
        let widened = { p with Rram.Program.num_regs = p.Rram.Program.num_regs + 1 } in
        let spare = p.Rram.Program.num_regs in
        let vectors = Rram.Verify.vectors p.Rram.Program.num_inputs in
        List.iter
          (fun value ->
            check bool "outputs unchanged" true
              (Rram.Faults.survives widened ~reference
                 [ { Rram.Faults.cell = spare; value } ]
                 vectors))
          [ true; false ];
        (* the resilient executor agrees: nothing to detect, nothing remapped *)
        let env = Rram.Resilient.env_of_defects [ (spare, Rram.Device.Stuck_1) ] in
        let report = Rram.Resilient.run env widened ~reference in
        check bool "ok" true report.Rram.Resilient.ok;
        check int "first attempt" 1 report.Rram.Resilient.attempts;
        check int "no moves" 0 (List.length report.Rram.Resilient.moves));
    test_case "repair succeeds where the unrepaired program fails" `Quick (fun () ->
        let mig, reference = fault_reference_setup () in
        let r = Rram.Compile_mig.compile Core.Rram_cost.Maj mig in
        let p = r.Rram.Compile_mig.program in
        let vectors = Rram.Verify.vectors p.Rram.Program.num_inputs in
        match find_breaking_fault p ~reference vectors with
        | None -> fail "expected a breaking single stuck-at fault"
        | Some f ->
            (* unrepaired: fails by construction *)
            check bool "unrepaired fails" false
              (Rram.Faults.survives p ~reference [ f ] vectors);
            let env = Rram.Resilient.env_of_defects (Rram.Faults.to_defects [ f ]) in
            let report = Rram.Resilient.run env p ~reference in
            check bool "repaired" true report.Rram.Resilient.ok;
            check bool "needed a retry" true (report.Rram.Resilient.attempts > 1);
            check bool "diagnosed the injected cell" true
              (List.mem f.Rram.Faults.cell report.Rram.Resilient.diagnosed);
            (* the repaired program no longer touches the dead cell *)
            let live = Rram.Remap.live_regs report.Rram.Resilient.program in
            check bool "dead cell abandoned" false live.(f.Rram.Faults.cell));
    test_case "remapped program verifies and grows only by the moves" `Quick (fun () ->
        let mig, _ = fault_reference_setup () in
        let r = Rram.Compile_mig.compile Core.Rram_cost.Imp mig in
        let p = r.Rram.Compile_mig.program in
        match Rram.Remap.remap p ~bad:[ 0; 3 ] with
        | Error e -> fail e
        | Ok m ->
            check int "two moves" 2 (List.length m.Rram.Remap.moves);
            check int "regs grew by 2" (p.Rram.Program.num_regs + 2)
              m.Rram.Remap.program.Rram.Program.num_regs;
            (match Rram.Program.validate m.Rram.Remap.program with
            | Ok () -> ()
            | Error e -> fail e);
            (match Rram.Verify.against_mig m.Rram.Remap.program mig with
            | Ok () -> ()
            | Error e -> fail e));
    test_case "remap refuses when the placement has no spares" `Quick (fun () ->
        let mig, _ = fault_reference_setup () in
        let r = Rram.Compile_mig.compile Core.Rram_cost.Maj mig in
        let p = r.Rram.Compile_mig.program in
        let placement = Rram.Placement.place p in
        (* a fully-utilized array has capacity = num_regs: no spare sites *)
        let full = { placement with Rram.Placement.rows = 1; columns = p.Rram.Program.num_regs } in
        match Rram.Remap.remap ~placement:full p ~bad:[ 0 ] with
        | Error _ -> ()
        | Ok _ -> fail "expected an out-of-spares error");
  ]

let tmr_tests =
  let open Alcotest in
  [
    test_case "TMR program is valid and fault-free correct" `Quick (fun () ->
        let mig, reference = fault_reference_setup () in
        List.iter
          (fun realization ->
            let r = Rram.Compile_mig.compile realization mig in
            let p = r.Rram.Compile_mig.program in
            let tmr = Rram.Tmr.protect p in
            (match Rram.Program.validate tmr.Rram.Tmr.program with
            | Ok () -> ()
            | Error e -> fail e);
            List.iter
              (fun v ->
                check bool "matches reference" true
                  (Rram.Interp.run tmr.Rram.Tmr.program v = reference v))
              (Rram.Verify.vectors p.Rram.Program.num_inputs))
          [ Core.Rram_cost.Imp; Core.Rram_cost.Maj ]);
    test_case "TMR with one faulty replica still verifies" `Quick (fun () ->
        let mig, reference = fault_reference_setup () in
        let r = Rram.Compile_mig.compile Core.Rram_cost.Maj mig in
        let p = r.Rram.Compile_mig.program in
        let vectors = Rram.Verify.vectors p.Rram.Program.num_inputs in
        match find_breaking_fault p ~reference vectors with
        | None -> fail "expected a breaking single stuck-at fault"
        | Some f ->
            let tmr = Rram.Tmr.protect p in
            let n = p.Rram.Program.num_regs in
            (* the same defect in each replica in turn: always voted out *)
            List.iter
              (fun k ->
                let shifted = { f with Rram.Faults.cell = f.Rram.Faults.cell + (k * n) } in
                check bool
                  (Printf.sprintf "replica %d masked" k)
                  true
                  (Rram.Faults.survives tmr.Rram.Tmr.program ~reference [ shifted ]
                     vectors))
              [ 0; 1; 2 ]);
    test_case "TMR beats baseline yield at rate 0.01" `Quick (fun () ->
        let mig, reference = fault_reference_setup () in
        let r = Rram.Compile_mig.compile Core.Rram_cost.Maj mig in
        let c =
          Rram.Faults.yield_comparison ~trials:150 ~rate:0.01 r.Rram.Compile_mig.program
            ~reference
        in
        check bool "tmr > baseline" true
          (c.Rram.Faults.tmr.Rram.Faults.yield
          > c.Rram.Faults.baseline.Rram.Faults.yield);
        check bool "resilient >= tmr" true
          (c.Rram.Faults.resilient.Rram.Faults.yield
          >= c.Rram.Faults.tmr.Rram.Faults.yield));
  ]

(* ------------------------------------------------------------------ *)
(* Trace-callback contract (see the Interp.mli doc): 1-based indices,  *)
(* post-step states, noiseless observes, pre-step latching visible     *)
(* ------------------------------------------------------------------ *)

let interp_trace_tests =
  let open Alcotest in
  let collect ?model program inputs =
    let acc = ref [] in
    ignore
      (Rram.Interp.run ?model
         ~trace:(fun idx step states -> acc := (idx, step, Array.copy states) :: !acc)
         program inputs);
    List.rev !acc
  in
  [
    test_case "exact ordering and post-step values" `Quick (fun () ->
        (* Step 2 pairs [Reset 0] with an IMP reading register 0: the IMP
           must latch the pre-step value (parallel semantics) while the
           trace shows the post-step state of both cells. *)
        let program =
          {
            Rram.Program.num_inputs = 1;
            num_regs = 2;
            steps =
              [
                [ Rram.Isa.Load (0, Rram.Isa.Input 0); Rram.Isa.Load (1, Rram.Isa.Const false) ];
                [ Rram.Isa.Reset 0; Rram.Isa.Imp { src = 0; dst = 1 } ];
                [
                  Rram.Isa.Maj_pulse
                    { p = Rram.Isa.Input 0; q = Rram.Isa.Reg 1; dst = 0 };
                ];
              ];
            outputs = [| Rram.Isa.Reg 0 |];
          }
        in
        List.iter
          (fun i ->
            let entries = collect program [| i |] in
            check (list int) "1-based step indices" [ 1; 2; 3 ]
              (List.map (fun (idx, _, _) -> idx) entries);
            List.iteri
              (fun k (_, step, _) ->
                check bool
                  (Printf.sprintf "step %d is the program's" (k + 1))
                  true
                  (step == List.nth program.Rram.Program.steps k))
              entries;
            (* after step 1: [|i; false|]; after step 2 (Reset 0 in
               parallel with dst1 <- ¬i ∨ false): [|false; ¬i|]; after
               step 3 (dst0 <- M(i, ¬(¬i), false) = i): [|i; ¬i|] *)
            let expect =
              [ [| i; false |]; [| false; not i |]; [| i; not i |] ]
            in
            List.iteri
              (fun k (_, _, states) ->
                check (array bool)
                  (Printf.sprintf "i=%b post-step states of step %d" i (k + 1))
                  (List.nth expect k) states)
              entries)
          [ true; false ]);
    test_case "states are noiseless observes under full read disturb" `Quick (fun () ->
        (* read_disturb = 1.0 complements every sensed read; the program
           avoids Reg reads so execution is unaffected, and the trace must
           show the true stored states (Device.observe), not reads. *)
        let program =
          {
            Rram.Program.num_inputs = 1;
            num_regs = 2;
            steps =
              [
                [ Rram.Isa.Load (0, Rram.Isa.Input 0); Rram.Isa.Load (1, Rram.Isa.Const true) ];
                [ Rram.Isa.Reset 1 ];
                [
                  Rram.Isa.Maj_pulse
                    { p = Rram.Isa.Input 0; q = Rram.Isa.Const false; dst = 1 };
                ];
              ];
            outputs = [| Rram.Isa.Input 0 |];
          }
        in
        let model = Rram.Device.model ~read_disturb:1.0 ~seed:0xD157 () in
        let entries = collect ~model program [| true |] in
        let expect = [ [| true; true |]; [| true; false |]; [| true; true |] ] in
        check (list int) "indices" [ 1; 2; 3 ] (List.map (fun (i, _, _) -> i) entries);
        List.iteri
          (fun k (_, _, states) ->
            check (array bool)
              (Printf.sprintf "noiseless states of step %d" (k + 1))
              (List.nth expect k) states)
          entries);
    test_case "Resilient differential replay sees the defect, not noise" `Quick
      (fun () ->
        (* End-to-end guard for the diagnose contract: a stuck cell is found
           by comparing golden and faulty observe traces. *)
        let program =
          {
            Rram.Program.num_inputs = 1;
            num_regs = 2;
            steps =
              [
                [ Rram.Isa.Load (0, Rram.Isa.Input 0) ];
                [ Rram.Isa.Load (1, Rram.Isa.Reg 0) ];
              ];
            outputs = [| Rram.Isa.Reg 1 |];
          }
        in
        let env =
          Rram.Resilient.env_of_defects [ (1, Rram.Device.Stuck_0) ]
        in
        let reference v = [| v.(0) |] in
        let report =
          Rram.Resilient.run ~max_attempts:2 ~vectors:[ [| true |] ] env program
            ~reference
        in
        check (list int) "diagnosed the stuck cell" [ 1 ] report.Rram.Resilient.diagnosed;
        check bool "repaired" true report.Rram.Resilient.ok);
  ]

let () =
  Alcotest.run "rram"
    [
      ("device", device_tests);
      ("nonideal-device", nonideal_device_tests);
      ("paper-sequences", sequence_tests);
      ("mig-compile", mig_compile_tests);
      ("mig-compile-props", List.map QCheck_alcotest.to_alcotest mig_compile_props);
      ("baselines", baseline_tests);
      ("energy", energy_tests);
      ("placement", placement_tests);
      ("crossbar", crossbar_tests);
      ("crossbar-props", List.map QCheck_alcotest.to_alcotest crossbar_props);
      ("fault-semantics", fault_semantics_tests);
      ("tmr", tmr_tests);
      ("interp-trace", interp_trace_tests);
    ]
