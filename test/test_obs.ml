(* The observability layer (lib/obs): JSON round-trips, disabled-mode
   silence, determinism of the recorded counters/histograms/series across
   identical seeded workloads, Chrome trace export, and the optimizer
   trajectory invariant (Alg. 1 never grows the graph). *)

module Json = Obs.Json

(* ------------------------------------------------------------------ *)
(* A fixed seeded workload touching every instrumented layer            *)
(* ------------------------------------------------------------------ *)

let run_workload () =
  let net = Logic.Funcgen.full_adder () in
  let mig = Core.Mig_of_network.convert net in
  let optimized = Core.Mig_opt.area ~effort:4 mig in
  let compiled = Rram.Compile_mig.compile Core.Rram_cost.Maj optimized in
  let program = compiled.Rram.Compile_mig.program in
  List.iter
    (fun v -> ignore (Rram.Interp.run program v))
    (Rram.Verify.vectors program.Rram.Program.num_inputs)

(* Every test leaves the registry disabled and empty so the other suites
   (and later tests in this file) start from a clean slate. *)
let with_obs_enabled f =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

(* ------------------------------------------------------------------ *)
(* JSON printer / parser                                                *)
(* ------------------------------------------------------------------ *)

let sample_doc =
  Json.Assoc
    [
      ("null", Json.Null);
      ("bools", Json.List [ Json.Bool true; Json.Bool false ]);
      ("ints", Json.List [ Json.Int 0; Json.Int (-42); Json.Int 1_000_000_007 ]);
      ("floats", Json.List [ Json.Float 1.5; Json.Float (-0.25); Json.Float 1e-9 ]);
      ("escapes", Json.String "a\"b\\c\nd\te\r\x0c\x08 unicode: \xc3\xa9");
      ("empty_list", Json.List []);
      ("empty_obj", Json.Assoc []);
      ("nested", Json.Assoc [ ("k", Json.List [ Json.Assoc [ ("x", Json.Int 1) ] ]) ]);
    ]

let json_tests =
  [
    Alcotest.test_case "printer/parser round-trip" `Quick (fun () ->
        List.iter
          (fun pretty ->
            let s = Json.to_string ~pretty sample_doc in
            Alcotest.(check bool)
              (Printf.sprintf "round-trip pretty:%b" pretty)
              true
              (Json.of_string s = sample_doc))
          [ true; false ]);
    Alcotest.test_case "parser accepts standard syntax" `Quick (fun () ->
        Alcotest.(check bool)
          "whitespace + \\u escapes" true
          (Json.of_string " { \"k\" : [ 1 , 2.5 , \"\\u00e9\\n\" , true ] } "
          = Json.Assoc
              [
                ( "k",
                  Json.List
                    [ Json.Int 1; Json.Float 2.5; Json.String "\xc3\xa9\n"; Json.Bool true ]
                );
              ]));
    Alcotest.test_case "parse errors are reported" `Quick (fun () ->
        List.iter
          (fun bad ->
            match Json.of_string bad with
            | exception Json.Parse_error _ -> ()
            | _ -> Alcotest.failf "parser accepted %S" bad)
          [ "{"; "[1,]"; "nul"; "\"unterminated"; "{} trailing"; "" ]);
    Alcotest.test_case "non-finite floats print as null" `Quick (fun () ->
        List.iter
          (fun f ->
            Alcotest.(check string) "null" "null" (Json.to_string (Json.Float f)))
          [ Float.nan; Float.infinity; Float.neg_infinity ]);
    Alcotest.test_case "accessors" `Quick (fun () ->
        let j = Json.of_string "{\"a\": [1, 2], \"b\": 3.5}" in
        Alcotest.(check int) "member+to_list" 2 (List.length (Json.to_list (Json.member "a" j)));
        Alcotest.(check (float 0.0)) "to_float" 3.5 (Json.to_float (Json.member "b" j));
        Alcotest.(check bool) "missing member is Null" true (Json.member "zz" j = Json.Null));
  ]

(* ------------------------------------------------------------------ *)
(* The Obs registry                                                     *)
(* ------------------------------------------------------------------ *)

let obs_tests =
  [
    Alcotest.test_case "disabled mode records nothing" `Quick (fun () ->
        Obs.reset ();
        Obs.set_enabled false;
        run_workload ();
        ignore (Obs.with_span "test/should-not-record" (fun () -> 42));
        Alcotest.(check bool)
          "all counters zero" true
          (List.for_all (fun (_, n) -> n = 0) (Obs.counters ()));
        Alcotest.(check int)
          "write histogram empty" 0
          (Obs.histogram_count (Obs.histogram "rram.interp/writes_per_device"));
        Alcotest.(check bool)
          "trajectory empty" true
          (Obs.samples (Obs.series "mig.opt/area/trajectory") = []);
        Alcotest.(check bool)
          "no spans in metrics" true
          (Json.member "spans" (Obs.metrics_json ()) = Json.Assoc []));
    Alcotest.test_case "identical workloads record identical data" `Quick (fun () ->
        with_obs_enabled @@ fun () ->
        let snapshot () =
          ( Obs.counters (),
            Obs.histogram_buckets (Obs.histogram "rram.interp/writes_per_device"),
            Obs.histogram_buckets (Obs.histogram "rram.interp/micro_ops_per_step"),
            Obs.samples (Obs.series "mig.opt/area/trajectory") )
        in
        run_workload ();
        let first = snapshot () in
        Obs.reset ();
        run_workload ();
        Alcotest.(check bool) "snapshots equal" true (snapshot () = first);
        let counters, writes, widths, traj = first in
        Alcotest.(check bool)
          "rule counters moved" true
          (List.exists (fun (n, c) -> c > 0 && String.length n > 9 && String.sub n 0 9 = "mig.rule/") counters);
        Alcotest.(check bool) "write histogram populated" true (writes <> []);
        Alcotest.(check bool) "step-width histogram populated" true (widths <> []);
        Alcotest.(check bool) "trajectory recorded" true (traj <> []));
    Alcotest.test_case "chrome trace JSON round-trips" `Quick (fun () ->
        with_obs_enabled @@ fun () ->
        run_workload ();
        let doc = Obs.chrome_trace_json () in
        let s = Json.to_string ~pretty:true doc in
        let parsed = Json.of_string s in
        Alcotest.(check bool) "parses back to the same tree" true (parsed = doc);
        let events = Json.to_list (Json.member "traceEvents" parsed) in
        Alcotest.(check bool) "has events" true (events <> []);
        let phases =
          List.filter_map
            (fun e -> match Json.member "ph" e with Json.String p -> Some p | _ -> None)
            events
        in
        Alcotest.(check int) "every event has a phase" (List.length events) (List.length phases);
        Alcotest.(check bool) "has complete events" true (List.mem "X" phases);
        Alcotest.(check bool) "has counter events" true (List.mem "C" phases);
        List.iter
          (fun e ->
            if Json.member "ph" e = Json.String "X" then begin
              (match Json.member "name" e with
              | Json.String _ -> ()
              | _ -> Alcotest.fail "X event without a name");
              if Json.to_float (Json.member "dur" e) < 0.0 then
                Alcotest.fail "negative duration";
              if Json.to_float (Json.member "ts" e) < 0.0 then
                Alcotest.fail "negative timestamp"
            end)
          events);
    Alcotest.test_case "metrics JSON round-trips and is complete" `Quick (fun () ->
        with_obs_enabled @@ fun () ->
        run_workload ();
        let doc = Obs.metrics_json () in
        let parsed = Json.of_string (Json.to_string ~pretty:true doc) in
        Alcotest.(check bool) "parses back" true (parsed = doc);
        List.iter
          (fun key ->
            Alcotest.(check bool)
              (key ^ " present and non-empty") true
              (match Json.member key parsed with
              | Json.Assoc l -> l <> []
              | Json.List l -> l <> []
              | _ -> false))
          [ "counters"; "histograms"; "series"; "spans" ]);
    Alcotest.test_case "area trajectory is monotone non-increasing" `Quick (fun () ->
        with_obs_enabled @@ fun () ->
        List.iter
          (fun net ->
            Obs.reset ();
            ignore (Core.Mig_opt.area ~effort:6 (Core.Mig_of_network.convert net));
            let traj = Obs.samples (Obs.series "mig.opt/area/trajectory") in
            Alcotest.(check bool) "at least initial + one cycle" true (List.length traj >= 2);
            let sizes = List.map (fun s -> List.assoc "size" s) traj in
            let rec non_increasing = function
              | a :: (b :: _ as rest) -> a >= b && non_increasing rest
              | _ -> true
            in
            Alcotest.(check bool) "sizes never grow" true (non_increasing sizes))
          [ Logic.Funcgen.clip (); Logic.Funcgen.rd 5 3; Logic.Funcgen.full_adder () ]);
    Alcotest.test_case "span records on exception" `Quick (fun () ->
        with_obs_enabled @@ fun () ->
        (try Obs.with_span "test/raising" (fun () -> failwith "boom")
         with Failure _ -> ());
        let spans = Json.member "spans" (Obs.metrics_json ()) in
        Alcotest.(check bool)
          "raising span present" true
          (Json.member "count" (Json.member "test/raising" spans) = Json.Int 1));
    Alcotest.test_case "reset keeps handles live" `Quick (fun () ->
        with_obs_enabled @@ fun () ->
        let c = Obs.counter "test/reset-counter" in
        Obs.incr ~by:3 c;
        Alcotest.(check int) "before reset" 3 (Obs.count c);
        Obs.reset ();
        Alcotest.(check int) "zeroed in place" 0 (Obs.count c);
        Obs.incr c;
        Alcotest.(check int) "still records" 1 (Obs.count c));
  ]

let () = Alcotest.run "obs" [ ("json", json_tests); ("obs", obs_tests) ]
