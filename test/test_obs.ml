(* The observability layer (lib/obs): JSON round-trips, disabled-mode
   silence, determinism of the recorded counters/histograms/series across
   identical seeded workloads, Chrome trace export, and the optimizer
   trajectory invariant (Alg. 1 never grows the graph). *)

module Json = Obs.Json

(* ------------------------------------------------------------------ *)
(* A fixed seeded workload touching every instrumented layer            *)
(* ------------------------------------------------------------------ *)

let run_workload () =
  let net = Logic.Funcgen.full_adder () in
  let mig = Core.Mig_of_network.convert net in
  let optimized = Core.Mig_opt.area ~effort:4 mig in
  let compiled = Rram.Compile_mig.compile Core.Rram_cost.Maj optimized in
  let program = compiled.Rram.Compile_mig.program in
  List.iter
    (fun v -> ignore (Rram.Interp.run program v))
    (Rram.Verify.vectors program.Rram.Program.num_inputs)

(* Every test leaves the registry disabled and empty so the other suites
   (and later tests in this file) start from a clean slate. *)
let with_obs_enabled f =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

(* ------------------------------------------------------------------ *)
(* JSON printer / parser                                                *)
(* ------------------------------------------------------------------ *)

let sample_doc =
  Json.Assoc
    [
      ("null", Json.Null);
      ("bools", Json.List [ Json.Bool true; Json.Bool false ]);
      ("ints", Json.List [ Json.Int 0; Json.Int (-42); Json.Int 1_000_000_007 ]);
      ("floats", Json.List [ Json.Float 1.5; Json.Float (-0.25); Json.Float 1e-9 ]);
      ("escapes", Json.String "a\"b\\c\nd\te\r\x0c\x08 unicode: \xc3\xa9");
      ("empty_list", Json.List []);
      ("empty_obj", Json.Assoc []);
      ("nested", Json.Assoc [ ("k", Json.List [ Json.Assoc [ ("x", Json.Int 1) ] ]) ]);
    ]

let json_tests =
  [
    Alcotest.test_case "printer/parser round-trip" `Quick (fun () ->
        List.iter
          (fun pretty ->
            let s = Json.to_string ~pretty sample_doc in
            Alcotest.(check bool)
              (Printf.sprintf "round-trip pretty:%b" pretty)
              true
              (Json.of_string s = sample_doc))
          [ true; false ]);
    Alcotest.test_case "parser accepts standard syntax" `Quick (fun () ->
        Alcotest.(check bool)
          "whitespace + \\u escapes" true
          (Json.of_string " { \"k\" : [ 1 , 2.5 , \"\\u00e9\\n\" , true ] } "
          = Json.Assoc
              [
                ( "k",
                  Json.List
                    [ Json.Int 1; Json.Float 2.5; Json.String "\xc3\xa9\n"; Json.Bool true ]
                );
              ]));
    Alcotest.test_case "parse errors are reported" `Quick (fun () ->
        List.iter
          (fun bad ->
            match Json.of_string bad with
            | exception Json.Parse_error _ -> ()
            | _ -> Alcotest.failf "parser accepted %S" bad)
          [ "{"; "[1,]"; "nul"; "\"unterminated"; "{} trailing"; "" ]);
    Alcotest.test_case "non-finite floats print as null" `Quick (fun () ->
        List.iter
          (fun f ->
            Alcotest.(check string) "null" "null" (Json.to_string (Json.Float f)))
          [ Float.nan; Float.infinity; Float.neg_infinity ]);
    Alcotest.test_case "accessors" `Quick (fun () ->
        let j = Json.of_string "{\"a\": [1, 2], \"b\": 3.5}" in
        Alcotest.(check int) "member+to_list" 2 (List.length (Json.to_list (Json.member "a" j)));
        Alcotest.(check (float 0.0)) "to_float" 3.5 (Json.to_float (Json.member "b" j));
        Alcotest.(check bool) "missing member is Null" true (Json.member "zz" j = Json.Null));
  ]

(* ------------------------------------------------------------------ *)
(* The Obs registry                                                     *)
(* ------------------------------------------------------------------ *)

let obs_tests =
  [
    Alcotest.test_case "disabled mode records nothing" `Quick (fun () ->
        Obs.reset ();
        Obs.set_enabled false;
        run_workload ();
        ignore (Obs.with_span "test/should-not-record" (fun () -> 42));
        Alcotest.(check bool)
          "all counters zero" true
          (List.for_all (fun (_, n) -> n = 0) (Obs.counters ()));
        Alcotest.(check int)
          "write histogram empty" 0
          (Obs.histogram_count (Obs.histogram "rram.interp/writes_per_device"));
        Alcotest.(check bool)
          "trajectory empty" true
          (Obs.samples (Obs.series "mig.opt/area/trajectory") = []);
        Alcotest.(check bool)
          "no spans in metrics" true
          (Json.member "spans" (Obs.metrics_json ()) = Json.Assoc []));
    Alcotest.test_case "identical workloads record identical data" `Quick (fun () ->
        with_obs_enabled @@ fun () ->
        let snapshot () =
          ( Obs.counters (),
            Obs.histogram_buckets (Obs.histogram "rram.interp/writes_per_device"),
            Obs.histogram_buckets (Obs.histogram "rram.interp/micro_ops_per_step"),
            Obs.samples (Obs.series "mig.opt/area/trajectory") )
        in
        run_workload ();
        let first = snapshot () in
        Obs.reset ();
        run_workload ();
        Alcotest.(check bool) "snapshots equal" true (snapshot () = first);
        let counters, writes, widths, traj = first in
        Alcotest.(check bool)
          "rule counters moved" true
          (List.exists (fun (n, c) -> c > 0 && String.length n > 9 && String.sub n 0 9 = "mig.rule/") counters);
        Alcotest.(check bool) "write histogram populated" true (writes <> []);
        Alcotest.(check bool) "step-width histogram populated" true (widths <> []);
        Alcotest.(check bool) "trajectory recorded" true (traj <> []));
    Alcotest.test_case "chrome trace JSON round-trips" `Quick (fun () ->
        with_obs_enabled @@ fun () ->
        run_workload ();
        let doc = Obs.chrome_trace_json () in
        let s = Json.to_string ~pretty:true doc in
        let parsed = Json.of_string s in
        Alcotest.(check bool) "parses back to the same tree" true (parsed = doc);
        let events = Json.to_list (Json.member "traceEvents" parsed) in
        Alcotest.(check bool) "has events" true (events <> []);
        let phases =
          List.filter_map
            (fun e -> match Json.member "ph" e with Json.String p -> Some p | _ -> None)
            events
        in
        Alcotest.(check int) "every event has a phase" (List.length events) (List.length phases);
        Alcotest.(check bool) "has complete events" true (List.mem "X" phases);
        Alcotest.(check bool) "has counter events" true (List.mem "C" phases);
        List.iter
          (fun e ->
            if Json.member "ph" e = Json.String "X" then begin
              (match Json.member "name" e with
              | Json.String _ -> ()
              | _ -> Alcotest.fail "X event without a name");
              if Json.to_float (Json.member "dur" e) < 0.0 then
                Alcotest.fail "negative duration";
              if Json.to_float (Json.member "ts" e) < 0.0 then
                Alcotest.fail "negative timestamp"
            end)
          events);
    Alcotest.test_case "metrics JSON round-trips and is complete" `Quick (fun () ->
        with_obs_enabled @@ fun () ->
        run_workload ();
        let doc = Obs.metrics_json () in
        let parsed = Json.of_string (Json.to_string ~pretty:true doc) in
        Alcotest.(check bool) "parses back" true (parsed = doc);
        List.iter
          (fun key ->
            Alcotest.(check bool)
              (key ^ " present and non-empty") true
              (match Json.member key parsed with
              | Json.Assoc l -> l <> []
              | Json.List l -> l <> []
              | _ -> false))
          [ "counters"; "histograms"; "series"; "spans" ]);
    Alcotest.test_case "area trajectory is monotone non-increasing" `Quick (fun () ->
        with_obs_enabled @@ fun () ->
        List.iter
          (fun net ->
            Obs.reset ();
            ignore (Core.Mig_opt.area ~effort:6 (Core.Mig_of_network.convert net));
            let traj = Obs.samples (Obs.series "mig.opt/area/trajectory") in
            Alcotest.(check bool) "at least initial + one cycle" true (List.length traj >= 2);
            let sizes = List.map (fun s -> List.assoc "size" s) traj in
            let rec non_increasing = function
              | a :: (b :: _ as rest) -> a >= b && non_increasing rest
              | _ -> true
            in
            Alcotest.(check bool) "sizes never grow" true (non_increasing sizes))
          [ Logic.Funcgen.clip (); Logic.Funcgen.rd 5 3; Logic.Funcgen.full_adder () ]);
    Alcotest.test_case "span records on exception" `Quick (fun () ->
        with_obs_enabled @@ fun () ->
        (try Obs.with_span "test/raising" (fun () -> failwith "boom")
         with Failure _ -> ());
        let spans = Json.member "spans" (Obs.metrics_json ()) in
        Alcotest.(check bool)
          "raising span present" true
          (Json.member "count" (Json.member "test/raising" spans) = Json.Int 1));
    Alcotest.test_case "reset keeps handles live" `Quick (fun () ->
        with_obs_enabled @@ fun () ->
        let c = Obs.counter "test/reset-counter" in
        Obs.incr ~by:3 c;
        Alcotest.(check int) "before reset" 3 (Obs.count c);
        Obs.reset ();
        Alcotest.(check int) "zeroed in place" 0 (Obs.count c);
        Obs.incr c;
        Alcotest.(check int) "still records" 1 (Obs.count c));
    Alcotest.test_case "histogram percentiles are exact nearest-rank" `Quick
      (fun () ->
        with_obs_enabled @@ fun () ->
        let h = Obs.histogram "test/percentiles" in
        Alcotest.(check (float 0.0)) "empty -> 0" 0.0 (Obs.histogram_percentile h 50.0);
        List.iter (fun v -> Obs.observe h v) [ 5; 1; 3; 2; 4; 3; 3; 2; 1; 5 ];
        (* sorted: 1 1 2 2 3 3 3 4 5 5 *)
        Alcotest.(check (float 0.0)) "p50" 3.0 (Obs.histogram_percentile h 50.0);
        Alcotest.(check (float 0.0)) "p90" 5.0 (Obs.histogram_percentile h 90.0);
        Alcotest.(check (float 0.0)) "p99" 5.0 (Obs.histogram_percentile h 99.0);
        Alcotest.(check (float 0.0)) "p0 clamps to min" 1.0 (Obs.histogram_percentile h 0.0);
        Alcotest.(check (float 0.0)) "p100 is max" 5.0 (Obs.histogram_percentile h 100.0);
        Alcotest.(check (float 0.0)) "p10 lands on rank 1" 1.0 (Obs.histogram_percentile h 10.0);
        let summary = Json.member "test/percentiles" (Json.member "histograms" (Obs.metrics_json ())) in
        Alcotest.(check (float 0.0)) "p50 exported" 3.0 (Json.to_float (Json.member "p50" summary));
        Alcotest.(check (float 0.0)) "p99 exported" 5.0 (Json.to_float (Json.member "p99" summary)));
  ]

(* ------------------------------------------------------------------ *)
(* Span trees, collapsed stacks, manifests and the run ledger           *)
(* ------------------------------------------------------------------ *)

let rec check_node_invariants (n : Obs.span_node) =
  Alcotest.(check bool)
    (String.concat ";" n.Obs.sn_path ^ ": self >= 0")
    true
    (Int64.compare n.Obs.sn_self_ns 0L >= 0);
  Alcotest.(check bool)
    (String.concat ";" n.Obs.sn_path ^ ": inclusive >= exclusive")
    true
    (Int64.compare n.Obs.sn_total_ns n.Obs.sn_self_ns >= 0);
  let kids_total =
    List.fold_left
      (fun acc k -> Int64.add acc k.Obs.sn_total_ns)
      0L n.Obs.sn_children
  in
  Alcotest.(check bool)
    (String.concat ";" n.Obs.sn_path ^ ": parent covers children")
    true
    (Int64.compare n.Obs.sn_total_ns kids_total >= 0);
  List.iter check_node_invariants n.Obs.sn_children

let span_tests =
  [
    Alcotest.test_case "span tree aggregates by path with invariants" `Quick
      (fun () ->
        with_obs_enabled @@ fun () ->
        for _ = 1 to 2 do
          Obs.with_span "test/a" (fun () ->
              Obs.with_span "test/b" (fun () -> ());
              Obs.with_span "test/b" (fun () -> ());
              Obs.with_span "test/c" (fun () -> ()))
        done;
        let roots = Obs.span_tree () in
        Alcotest.(check int) "one root" 1 (List.length roots);
        let a = List.hd roots in
        Alcotest.(check string) "root name" "test/a" a.Obs.sn_name;
        Alcotest.(check int) "root count" 2 a.Obs.sn_count;
        Alcotest.(check int) "two children" 2 (List.length a.Obs.sn_children);
        let b = List.find (fun n -> n.Obs.sn_name = "test/b") a.Obs.sn_children in
        let c = List.find (fun n -> n.Obs.sn_name = "test/c") a.Obs.sn_children in
        Alcotest.(check int) "b count" 4 b.Obs.sn_count;
        Alcotest.(check int) "c count" 2 c.Obs.sn_count;
        List.iter check_node_invariants roots;
        (* the per-name aggregate view also carries self time *)
        let stats = Json.member "spans" (Obs.metrics_json ()) in
        Alcotest.(check bool)
          "self_ns exported" true
          (Json.member "self_ns" (Json.member "test/a" stats) <> Json.Null));
    Alcotest.test_case "span stack is clean after an exception" `Quick (fun () ->
        with_obs_enabled @@ fun () ->
        (try Obs.with_span "test/raiser" (fun () -> failwith "boom")
         with Failure _ -> ());
        Obs.with_span "test/after" (fun () -> ());
        let roots = List.map (fun n -> n.Obs.sn_name) (Obs.span_tree ()) in
        Alcotest.(check (list string))
          "both spans are roots" [ "test/after"; "test/raiser" ] roots);
    Alcotest.test_case "collapsed stacks identical for jobs 1/2/8" `Quick
      (fun () ->
        let stacks jobs =
          with_obs_enabled @@ fun () ->
          ignore
            (Par.map ~jobs
               (fun i ->
                 Obs.with_span "test/task" (fun () ->
                     Obs.with_span
                       (if i mod 2 = 0 then "test/even" else "test/odd")
                       (fun () -> i * i)))
               [ 1; 2; 3; 4; 5; 6; 7; 8 ]);
          Obs.collapsed_stacks ~weight:`Calls ()
        in
        let s1 = stacks 1 in
        Alcotest.(check string) "jobs 2 = jobs 1" s1 (stacks 2);
        Alcotest.(check string) "jobs 8 = jobs 1" s1 (stacks 8);
        Alcotest.(check bool)
          "even branch counted" true
          (List.mem "test/task;test/even 4" (String.split_on_char '\n' s1));
        Alcotest.(check bool)
          "task root counted" true
          (List.mem "test/task 8" (String.split_on_char '\n' s1)));
    Alcotest.test_case "time-weighted collapsed stacks drop zero weights" `Quick
      (fun () ->
        with_obs_enabled @@ fun () ->
        Obs.with_span "test/alone" (fun () -> ());
        String.split_on_char '\n' (Obs.collapsed_stacks ~weight:`Time_us ())
        |> List.iter (fun line ->
               if line <> "" then
                 match String.rindex_opt line ' ' with
                 | None -> Alcotest.failf "malformed line %S" line
                 | Some i ->
                     let w =
                       int_of_string
                         (String.sub line (i + 1) (String.length line - i - 1))
                     in
                     if w <= 0 then Alcotest.failf "non-positive weight in %S" line));
    Alcotest.test_case "manifest is a self-describing run record" `Quick
      (fun () ->
        with_obs_enabled @@ fun () ->
        Obs.Manifest.start ~tool:"test" ~subcommand:"unit"
          ~argv:[ "test"; "unit"; "--flag" ] ();
        Obs.with_span "test/work" (fun () -> Obs.incr (Obs.counter "test/count"));
        Obs.Manifest.add_context "seed" (Json.Int 42);
        Obs.Manifest.add_result "gates" (Json.Int 7);
        let m = Obs.Manifest.finish () in
        let m' = Json.of_string (Json.to_string m) in
        Alcotest.(check bool) "round-trips" true (m = m');
        Alcotest.(check bool)
          "schema" true
          (Json.member "schema" m = Json.String "migsyn-run/1");
        Alcotest.(check bool)
          "subcommand" true
          (Json.member "subcommand" m = Json.String "unit");
        Alcotest.(check int) "argv kept" 3 (List.length (Json.to_list (Json.member "argv" m)));
        Alcotest.(check bool)
          "context" true
          (Json.member "seed" (Json.member "context" m) = Json.Int 42);
        Alcotest.(check bool)
          "results" true
          (Json.member "gates" (Json.member "results" m) = Json.Int 7);
        Alcotest.(check bool)
          "span tree embedded" true
          (Json.to_list (Json.member "spans" m) <> []);
        Alcotest.(check bool)
          "wall time non-negative" true
          (Json.to_float (Json.member "wall_seconds" m) >= 0.0));
    Alcotest.test_case "ledger appends and loads records in order" `Quick
      (fun () ->
        let path = Filename.temp_file "migsyn_ledger" ".jsonl" in
        Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
        Sys.remove path;
        let r1 = Json.Assoc [ ("schema", Json.String "migsyn-run/1"); ("n", Json.Int 1) ] in
        let r2 = Json.Assoc [ ("schema", Json.String "migsyn-run/1"); ("n", Json.Int 2) ] in
        Obs.Ledger.append path r1;
        Obs.Ledger.append path r2;
        Alcotest.(check bool) "round-trip" true (Obs.Ledger.load path = [ r1; r2 ]);
        let oc = open_out_gen [ Open_append ] 0o644 path in
        output_string oc "not json\n";
        close_out oc;
        match Obs.Ledger.load path with
        | exception Failure msg ->
            Alcotest.(check bool)
              "error names file and line" true
              (String.length msg > String.length path
              && String.sub msg 0 (String.length path) = path)
        | _ -> Alcotest.fail "malformed line accepted");
  ]

let () =
  Alcotest.run "obs"
    [ ("json", json_tests); ("obs", obs_tests); ("spans", span_tests) ]
