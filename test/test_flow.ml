(* The Flow pass manager: generic engine semantics (on a toy graph type),
   the flow-script parser (positions, suggestions, round-trips), the MIG
   pass registry (equivalence preservation, structural integrity), and the
   golden regression pinning the flow-script encodings of Algs. 1-4 to the
   pre-refactor Mig_opt results. *)

open Logic

(* ------------------------------------------------------------------ *)
(* Toy graphs: the engine is generic, so its control flow is testable   *)
(* without MIGs.                                                        *)
(* ------------------------------------------------------------------ *)

type toy = { mutable v : int; mutable trace : string list (* reversed *) }

let toy_ops =
  {
    Flow.copy = (fun t -> { v = t.v; trace = t.trace });
    cleanup = (fun t -> t);
    measure = (fun _ -> []);
  }

let toy_pass name run =
  { Flow.name; category = "toy"; doc = ""; preserves = ""; run }

let log_pass name changed =
  toy_pass name (fun ~cycle:_ t ->
      t.trace <- name :: t.trace;
      (t, changed))

let engine_tests =
  let open Alcotest in
  [
    test_case "seq runs every element (no short-circuit)" `Quick (fun () ->
        let t = { v = 0; trace = [] } in
        let flow =
          Flow.Seq
            [
              Pass (log_pass "a" true);
              Pass (log_pass "b" false);
              Pass (log_pass "c" true);
            ]
        in
        let _, changed = Flow.changed_run ~ops:toy_ops flow t in
        check (list string) "order" [ "a"; "b"; "c" ] (List.rev t.trace);
        check bool "changed" true changed);
    test_case "cycle stops on convergence" `Quick (fun () ->
        let t = { v = 0; trace = [] } in
        let inc =
          toy_pass "inc" (fun ~cycle:_ t ->
              t.v <- t.v + 1;
              (t, t.v < 3))
        in
        let r = Flow.run ~ops:toy_ops (Cycle { effort = 10; body = Pass inc }) t in
        check int "converged after three iterations" 3 r.v);
    test_case "cycle respects the effort bound" `Quick (fun () ->
        let t = { v = 0; trace = [] } in
        let inc =
          toy_pass "inc" (fun ~cycle:_ t ->
              t.v <- t.v + 1;
              (t, true))
        in
        let r = Flow.run ~ops:toy_ops (Cycle { effort = 5; body = Pass inc }) t in
        check int "exactly effort iterations" 5 r.v);
    test_case "every(3) fires on cycles 0, 3, 6" `Quick (fun () ->
        let t = { v = 0; trace = [] } in
        let tick = toy_pass "tick" (fun ~cycle:_ t -> (t, true)) in
        let record =
          toy_pass "record" (fun ~cycle t ->
              t.trace <- string_of_int cycle :: t.trace;
              (t, false))
        in
        let body = Flow.Seq [ Pass tick; Every { period = 3; body = Pass record } ] in
        ignore (Flow.run ~ops:toy_ops (Cycle { effort = 7; body }) t);
        check (list string) "fired cycles" [ "0"; "3"; "6" ] (List.rev t.trace));
    test_case "accept_if rolls back a worsening body" `Quick (fun () ->
        let t = { v = 5; trace = [] } in
        let bump =
          toy_pass "bump" (fun ~cycle:_ t ->
              t.v <- t.v + 10;
              (t, true))
        in
        let flow =
          Flow.Accept_if
            { cost_name = "v"; cost = (fun t -> float_of_int t.v); body = Pass bump }
        in
        let r, changed = Flow.changed_run ~ops:toy_ops flow t in
        check int "rolled back" 5 r.v;
        check bool "reported unchanged" false changed);
    test_case "accept_if keeps an improving body" `Quick (fun () ->
        let t = { v = 5; trace = [] } in
        let dec =
          toy_pass "dec" (fun ~cycle:_ t ->
              t.v <- t.v - 1;
              (t, true))
        in
        let flow =
          Flow.Accept_if
            { cost_name = "v"; cost = (fun t -> float_of_int t.v); body = Pass dec }
        in
        let r, changed = Flow.changed_run ~ops:toy_ops flow t in
        check int "kept" 4 r.v;
        check bool "reported changed" true changed);
    test_case "run never mutates the input graph" `Quick (fun () ->
        (* cleanup is a real copy here, like Mig.cleanup *)
        let copying_ops = { toy_ops with Flow.cleanup = toy_ops.Flow.copy } in
        let t = { v = 0; trace = [] } in
        let inc =
          toy_pass "inc" (fun ~cycle:_ t ->
              t.v <- t.v + 1;
              (t, true))
        in
        let r = Flow.run ~ops:copying_ops (Cycle { effort = 4; body = Pass inc }) t in
        check int "input untouched" 0 t.v;
        check int "result advanced" 4 r.v);
  ]

(* ------------------------------------------------------------------ *)
(* Script parser                                                       *)
(* ------------------------------------------------------------------ *)

let parse_ok script =
  match Core.Mig_flows.parse script with
  | Ok flow -> flow
  | Error e -> Alcotest.failf "unexpected parse error %a" Flow.Script.pp_error e

let parse_err script =
  match Core.Mig_flows.parse script with
  | Ok _ -> Alcotest.failf "expected a parse error for %S" script
  | Error e -> e

let check_err script ~pos ~msg =
  let e = parse_err script in
  Alcotest.(check int) ("position of " ^ script) pos e.Flow.Script.pos;
  Alcotest.(check string) ("message of " ^ script) msg e.Flow.Script.msg

let parser_tests =
  let open Alcotest in
  [
    test_case "canonical scripts parse and round-trip" `Quick (fun () ->
        List.iter
          (fun name ->
            let script = Option.get (Core.Mig_flows.canonical_script name) in
            let flow = parse_ok script in
            check string ("round-trip " ^ name) script (Flow.Script.to_string flow))
          Core.Mig_flows.canonical_names);
    test_case "structure of a composite script" `Quick (fun () ->
        match parse_ok "cycle(3){eliminate; every(2){psi_r}}; accept_if(size){balance}" with
        | Flow.Seq
            [
              Cycle
                {
                  effort = 3;
                  body = Seq [ Pass p1; Every { period = 2; body = Pass p2 } ];
                };
              Accept_if { cost_name = "size"; body = Pass p3; _ };
            ] ->
            check string "p1" "eliminate" p1.Flow.name;
            check string "p2" "psi_r" p2.Flow.name;
            check string "p3" "balance" p3.Flow.name
        | _ -> fail "unexpected flow structure");
    test_case "cycle without a count uses the default effort" `Quick (fun () ->
        (match parse_ok "cycle{eliminate}" with
        | Flow.Cycle { effort; _ } ->
            check int "default effort" Flow.default_effort effort
        | _ -> fail "expected a cycle");
        match
          Flow.Script.parse ~registry:Core.Mig_flows.registry
            ~costs:Core.Mig_flows.costs ~default_effort:7 "cycle{eliminate}"
        with
        | Ok (Flow.Cycle { effort; _ }) -> check int "overridden default" 7 effort
        | _ -> fail "expected a cycle");
    test_case "comments, newlines and braces group" `Quick (fun () ->
        match
          parse_ok "# warm-up\n{ eliminate;\n  reshape }; # tail\n eliminate;"
        with
        | Flow.Seq [ Seq [ Pass _; Pass _ ]; Pass _ ] -> ()
        | _ -> fail "unexpected structure");
    test_case "unknown pass: position and suggestion" `Quick (fun () ->
        check_err "cycle(5){pushup}" ~pos:9
          ~msg:"unknown pass 'pushup' (did you mean 'push_up'?)";
        check_err "eliminate; funky" ~pos:11 ~msg:"unknown pass 'funky'";
        check_err "elimnate" ~pos:0
          ~msg:"unknown pass 'elimnate' (did you mean 'eliminate'?)");
    test_case "unknown cost: position and suggestion" `Quick (fun () ->
        check_err "accept_if(sized){eliminate}" ~pos:10
          ~msg:"unknown cost 'sized' (did you mean 'size'?)");
    test_case "syntax errors carry byte positions" `Quick (fun () ->
        check_err "" ~pos:0 ~msg:"empty flow";
        check_err "cycle(5){eliminate" ~pos:18
          ~msg:"expected '}' before end of script";
        check_err "eliminate}" ~pos:9 ~msg:"expected ';' between steps, found '}'";
        check_err "cycle(0){eliminate}" ~pos:6 ~msg:"cycle count must be positive";
        check_err "cycle(x){eliminate}" ~pos:6 ~msg:"expected a number of cycles";
        check_err "eliminate reshape" ~pos:10
          ~msg:"expected ';' between steps, found 'r'");
    test_case "the CLI error line format" `Quick (fun () ->
        let e = parse_err "cycle(5){pushup}" in
        check string "migsyn flow convention"
          "migsyn flow: error: at byte 9: unknown pass 'pushup' (did you mean \
           'push_up'?)"
          (Format.asprintf "migsyn flow: error: %a" Flow.Script.pp_error e));
  ]

(* ------------------------------------------------------------------ *)
(* Registry: every pass preserves equivalence and structural integrity  *)
(* ------------------------------------------------------------------ *)

let funcgen_nets =
  [|
    ("full_adder", Funcgen.full_adder ());
    ("rd53", Funcgen.rd 5 3);
    ("comparator4", Funcgen.comparator 4);
    ("parity6", Funcgen.parity 6);
    ("mux_tree2", Funcgen.mux_tree 2);
  |]

let arb_seed = QCheck.make QCheck.Gen.(int_bound 1000000)

let registry_props =
  [
    QCheck.Test.make ~name:"every registered pass preserves equivalence and integrity"
      ~count:20 arb_seed (fun seed ->
        let rng = Prng.create seed in
        let name, net = Prng.pick rng funcgen_nets in
        List.for_all
          (fun (p : Core.Mig.t Flow.pass) ->
            let mig = ref (Core.Mig_of_network.convert net) in
            for cycle = 0 to 2 do
              let m, _changed = p.Flow.run ~cycle !mig in
              mig := m
            done;
            (match Core.Mig_check.check !mig with
            | Ok () -> ()
            | Error e ->
                QCheck.Test.fail_reportf "pass %s broke %s: %s" p.Flow.name name e);
            Core.Mig_equiv.equivalent_network !mig net
            || QCheck.Test.fail_reportf "pass %s changed the function of %s"
                 p.Flow.name name)
          (Flow.passes Core.Mig_flows.registry));
  ]

let registry_tests =
  let open Alcotest in
  [
    test_case "pass metadata is complete" `Quick (fun () ->
        let ps = Flow.passes Core.Mig_flows.registry in
        check bool "has the paper's vocabulary" true (List.length ps >= 13);
        List.iter
          (fun (p : Core.Mig.t Flow.pass) ->
            check bool (p.Flow.name ^ " has doc") true (p.Flow.doc <> "");
            check bool (p.Flow.name ^ " has category") true (p.Flow.category <> "");
            check bool
              (p.Flow.name ^ " preserves the function")
              true
              (String.length p.Flow.preserves >= 8))
          ps);
    test_case "duplicate registration is rejected" `Quick (fun () ->
        let r = Flow.create_registry () in
        Flow.register r (log_pass "x" true);
        check_raises "duplicate"
          (Invalid_argument "Flow.register: duplicate pass x") (fun () ->
            Flow.register r (log_pass "x" true)));
  ]

(* ------------------------------------------------------------------ *)
(* accept_if on real MIGs                                              *)
(* ------------------------------------------------------------------ *)

let guard_tests =
  let open Alcotest in
  [
    test_case "accept_if(size) caps growth of push_up" `Quick (fun () ->
        let net = Funcgen.rd 5 3 in
        let mig = Core.Mig_of_network.convert net in
        let initial = Core.Mig.size (Core.Mig.cleanup mig) in
        let guarded =
          Core.Mig_flows.run
            (Core.Mig_flows.parse_exn "cycle(10){accept_if(size){push_up}}")
            mig
        in
        check bool "size never grows past the checkpoint" true
          (Core.Mig.size guarded <= initial);
        check bool "still equivalent" true
          (Core.Mig_equiv.equivalent_network guarded net);
        (* the guard is not vacuous: unguarded push_up does grow rd53 *)
        let unguarded =
          Core.Mig_flows.run (Core.Mig_flows.parse_exn "cycle(10){push_up}") mig
        in
        check bool "unguarded comparison run is equivalent too" true
          (Core.Mig_equiv.equivalent_network unguarded net));
  ]

(* ------------------------------------------------------------------ *)
(* Golden regression: flow scripts == the pre-refactor Mig_opt results  *)
(* ------------------------------------------------------------------ *)

(* (size, depth, R_imp, S_imp, R_maj, S_maj) at effort 40, captured from the
   legacy hardcoded Mig_opt.drive implementation before the pass-manager
   refactor.  Both the Mig_opt wrappers and the canonical flow scripts must
   keep reproducing these numbers bit-for-bit. *)
let golden =
  [
    (* c17 *)
    ("c17/area", (6, 3, 16, 33, 12, 12));
    ("c17/depth", (8, 3, 21, 34, 15, 13));
    ("c17/rram-costs-imp", (8, 3, 21, 32, 15, 11));
    ("c17/rram-costs-maj", (8, 3, 21, 32, 15, 11));
    ("c17/steps", (8, 3, 21, 32, 15, 11));
    ("c17/bool-rewrite", (6, 3, 16, 33, 12, 12));
    (* full_adder *)
    ("full_adder/area", (7, 4, 18, 42, 12, 14));
    ("full_adder/depth", (7, 4, 14, 43, 10, 15));
    ("full_adder/rram-costs-imp", (9, 4, 26, 43, 18, 15));
    ("full_adder/rram-costs-maj", (9, 4, 26, 43, 18, 15));
    ("full_adder/steps", (8, 4, 18, 42, 12, 14));
    ("full_adder/bool-rewrite", (7, 4, 18, 42, 12, 14));
    (* rd53 *)
    ("rd53/area", (17, 7, 30, 74, 20, 25));
    ("rd53/depth", (25, 6, 53, 65, 37, 23));
    ("rd53/rram-costs-imp", (22, 6, 44, 64, 30, 22));
    ("rd53/rram-costs-maj", (22, 6, 44, 64, 30, 22));
    ("rd53/steps", (22, 6, 45, 63, 31, 21));
    ("rd53/bool-rewrite", (17, 7, 30, 74, 20, 25));
    (* comparator4 *)
    ("comparator4/area", (26, 8, 76, 87, 52, 31));
    ("comparator4/depth", (26, 6, 76, 64, 52, 22));
    ("comparator4/rram-costs-imp", (27, 6, 76, 64, 52, 22));
    ("comparator4/rram-costs-maj", (27, 6, 76, 64, 52, 22));
    ("comparator4/steps", (27, 6, 76, 65, 52, 23));
    ("comparator4/bool-rewrite", (26, 8, 76, 87, 52, 31));
  ]

let shape mig =
  let size, depth = Core.Mig_passes.size_and_depth mig in
  let i = Core.Rram_cost.of_mig Core.Rram_cost.Imp mig in
  let m = Core.Rram_cost.of_mig Core.Rram_cost.Maj mig in
  ( size,
    depth,
    i.Core.Rram_cost.rrams,
    i.Core.Rram_cost.steps,
    m.Core.Rram_cost.rrams,
    m.Core.Rram_cost.steps )

let golden_nets () =
  [
    ( "c17",
      let path =
        if Sys.file_exists "examples/c17.bench" then "examples/c17.bench"
        else "../examples/c17.bench"
      in
      Io.Bench_format.parse_file path );
    ("full_adder", Funcgen.full_adder ());
    ("rd53", Funcgen.rd 5 3);
    ("comparator4", Funcgen.comparator 4);
  ]

let legacy_entry name =
  match name with
  | "area" -> Core.Mig_opt.area ?effort:None
  | "depth" -> Core.Mig_opt.depth ?effort:None
  | "rram-costs-imp" -> Core.Mig_opt.rram_costs Core.Rram_cost.Imp
  | "rram-costs-maj" -> Core.Mig_opt.rram_costs Core.Rram_cost.Maj
  | "steps" -> Core.Mig_opt.steps ?effort:None
  | "bool-rewrite" -> Core.Mig_opt.boolean ?effort:None
  | _ -> assert false

let tuple6 = Alcotest.(pair int (pair int (pair int (pair int (pair int int)))))
let nest (a, b, c, d, e, f) = (a, (b, (c, (d, (e, f)))))

let golden_tests =
  let open Alcotest in
  [
    test_case "Mig_opt entry points and flow scripts match the legacy results"
      `Slow
      (fun () ->
        List.iter
          (fun (bench, net) ->
            let mig = Core.Mig_of_network.convert net in
            List.iter
              (fun alg ->
                let expected = List.assoc (bench ^ "/" ^ alg) golden in
                check tuple6
                  (bench ^ "/" ^ alg ^ " via Mig_opt")
                  (nest expected)
                  (nest (shape (legacy_entry alg mig)));
                let script = Option.get (Core.Mig_flows.canonical_script alg) in
                check tuple6
                  (bench ^ "/" ^ alg ^ " via flow script")
                  (nest expected)
                  (nest (shape (Core.Mig_flows.run (Core.Mig_flows.parse_exn script) mig))))
              Core.Mig_flows.canonical_names)
          (golden_nets ()));
    test_case "area golden is unchanged with strash inserted" `Slow (fun () ->
        (* At every cycle boundary the engine has just run Mig.cleanup, so
           the graph is canonical and strash must be an exact no-op there:
           the §9 table rows reproduce bit-for-bit with it spliced in. *)
        let script = "cycle(40){strash; eliminate; reshape; eliminate}; strash; eliminate" in
        List.iter
          (fun (bench, net) ->
            let mig = Core.Mig_of_network.convert net in
            let expected = List.assoc (bench ^ "/area") golden in
            check tuple6 (bench ^ "/area with strash") (nest expected)
              (nest (shape (Core.Mig_flows.run (Core.Mig_flows.parse_exn script) mig))))
          (golden_nets ()));
  ]

(* ------------------------------------------------------------------ *)
(* Experiment threading                                                *)
(* ------------------------------------------------------------------ *)

let experiment_tests =
  let open Alcotest in
  [
    test_case "profile rows record flow name and script" `Quick (fun () ->
        let entry = Option.get (Io.Benchmarks.find "b9") in
        let flows =
          Exp.Experiments.default_flows ~effort:1 ()
          @ [
              {
                Exp.Experiments.flow_name = "custom/tiny";
                script = "cycle(1){eliminate}; eliminate";
              };
            ]
        in
        let row = Exp.Experiments.profile_row ~flows entry in
        check int "one timed entry per flow" 6
          (List.length row.Exp.Experiments.algs);
        let json =
          Exp.Experiments.profile_json ~effort:1 ~elapsed_seconds:0.0 [ row ]
        in
        let rec count_scripts = function
          | Obs.Json.Assoc kvs ->
              List.fold_left
                (fun acc (k, v) ->
                  acc + (if k = "script" then 1 else 0) + count_scripts v)
                0 kvs
          | Obs.Json.List vs ->
              List.fold_left (fun acc v -> acc + count_scripts v) 0 vs
          | _ -> 0
        in
        check int "every algorithm row carries its script" 6 (count_scripts json);
        match json with
        | Obs.Json.Assoc kvs ->
            check bool "schema bumped" true
              (List.assoc "schema" kvs = Obs.Json.String "migsyn-bench/2")
        | _ -> fail "profile_json is not an object");
  ]

let () =
  Alcotest.run "flow"
    [
      ("engine", engine_tests);
      ("script", parser_tests);
      ("registry", registry_tests);
      ("registry-props", List.map QCheck_alcotest.to_alcotest registry_props);
      ("guards", guard_tests);
      ("golden", golden_tests);
      ("experiments", experiment_tests);
    ]
