(* The Par work-pool and the determinism contract built on it: pool
   semantics (ordering, stress, exception propagation, sequential
   fallback), the portfolio race's jobs-independent winner, the Obs
   per-domain merge, and a QCheck property pinning parallel experiment
   rows to the sequential run modulo wall-time fields (DESIGN.md §11). *)

let default_effort = 3

let c17 () =
  let path =
    if Sys.file_exists "examples/c17.bench" then "examples/c17.bench"
    else "../examples/c17.bench"
  in
  Core.Mig_of_network.convert (Io.Bench_format.parse_file path)

(* ------------------------------------------------------------------ *)
(* Pool semantics                                                      *)
(* ------------------------------------------------------------------ *)

exception Boom of int

let pool_tests =
  let open Alcotest in
  [
    test_case "map preserves order under stress (tasks >> workers)" `Quick
      (fun () ->
        let xs = List.init 500 Fun.id in
        let f x = (x * x) + 7 in
        check (list int) "rows in submission order" (List.map f xs)
          (Par.map ~jobs:4 f xs));
    test_case "jobs=1 is the sequential computation" `Quick (fun () ->
        let xs = List.init 50 Fun.id in
        let f x = x * 3 in
        check (list int) "identical to List.map" (List.map f xs)
          (Par.map ~jobs:1 f xs));
    test_case "jobs=1 and jobs=N agree" `Quick (fun () ->
        let xs = List.init 100 Fun.id in
        let f x = Hashtbl.hash (x, "salt") in
        check (list int) "same rows" (Par.map ~jobs:1 f xs)
          (Par.map ~jobs:8 f xs));
    test_case "exception re-raised at await" `Quick (fun () ->
        check_raises "raises Boom" (Boom 3) (fun () ->
            ignore (Par.map ~jobs:4 (fun x -> if x = 3 then raise (Boom 3) else x)
                      (List.init 10 Fun.id))));
    test_case "earliest failing element wins when several raise" `Quick
      (fun () ->
        check_raises "first in list order" (Boom 2) (fun () ->
            ignore
              (Par.map ~jobs:4
                 (fun x -> if x >= 2 then raise (Boom x) else x)
                 (List.init 20 Fun.id))));
    test_case "submit after shutdown raises" `Quick (fun () ->
        let pool = Par.create ~jobs:2 () in
        Par.shutdown pool;
        Par.shutdown pool (* idempotent *);
        check bool "rejected" true
          (try
             ignore (Par.submit pool (fun () -> ()));
             false
           with Invalid_argument _ -> true));
    test_case "await is idempotent" `Quick (fun () ->
        Par.with_pool ~jobs:2 (fun pool ->
            let t = Par.submit pool (fun () -> 41 + 1) in
            check int "first" 42 (Par.await t);
            check int "second" 42 (Par.await t)));
    test_case "resolve_jobs semantics" `Quick (fun () ->
        check int "Some n" 5 (Par.resolve_jobs (Some 5));
        check bool "None is >= 1" true (Par.resolve_jobs None >= 1);
        check bool "Some 0 falls back" true (Par.resolve_jobs (Some 0) >= 1));
  ]

(* ------------------------------------------------------------------ *)
(* Portfolio determinism                                               *)
(* ------------------------------------------------------------------ *)

let portfolio_tests =
  let open Alcotest in
  let specs = Core.Mig_flows.default_portfolio ~effort:default_effort () in
  let race jobs =
    let mig = c17 () in
    let winner, outcomes = Core.Mig_flows.portfolio ~jobs specs mig in
    let w = List.find (fun o -> o.Flow.o_winner) outcomes in
    ( w.Flow.o_index,
      w.Flow.o_cost,
      Core.Mig_passes.size_and_depth winner,
      List.map (fun o -> (o.Flow.o_label, o.Flow.o_cost)) outcomes )
  in
  [
    test_case "winner identical for jobs 1 / 2 / 8" `Quick (fun () ->
        let i1, c1, sd1, costs1 = race 1 in
        List.iter
          (fun jobs ->
            let i, c, sd, costs = race jobs in
            check int "winner index" i1 i;
            check (float 0.0) "winner cost" c1 c;
            check (pair int int) "winner shape" sd1 sd;
            check (list (pair string (float 0.0))) "entrant costs" costs1 costs)
          [ 2; 8 ]);
    test_case "tie-break picks the earliest entrant" `Quick (fun () ->
        (* two identical entrants: equal costs, so index decides *)
        let mig = c17 () in
        let _, outcomes =
          Core.Mig_flows.portfolio ~jobs:4
            [ ("first", "cycle(2){eliminate}"); ("twin", "cycle(2){eliminate}") ]
            mig
        in
        let w = List.find (fun o -> o.Flow.o_winner) outcomes in
        check int "earliest of the tie" 0 w.Flow.o_index);
    test_case "unknown cost name is a clean Invalid_argument" `Quick (fun () ->
        check bool "raises" true
          (try
             ignore (Core.Mig_flows.portfolio ~jobs:1 ~cost:"bogus" specs (c17 ()));
             false
           with Invalid_argument _ -> true));
    test_case "empty entrant list is rejected" `Quick (fun () ->
        check bool "raises" true
          (try
             ignore (Core.Mig_flows.portfolio ~jobs:1 [] (c17 ()));
             false
           with Invalid_argument _ -> true));
  ]

(* ------------------------------------------------------------------ *)
(* Obs merge                                                           *)
(* ------------------------------------------------------------------ *)

let obs_tests =
  let open Alcotest in
  [
    test_case "worker counter increments merge into the global registry"
      `Quick (fun () ->
        Obs.set_enabled true;
        Obs.reset ();
        let c = Obs.counter "par.test/ticks" in
        ignore
          (Par.map ~jobs:4
             (fun x ->
               Obs.incr ~by:x c;
               x)
             (List.init 100 Fun.id));
        (* 0 + 1 + ... + 99 *)
        check int "exact total after shutdown merge" 4950 (Obs.count c);
        Obs.reset ();
        Obs.set_enabled false);
    test_case "sequential pool leaves counters on the caller" `Quick (fun () ->
        Obs.set_enabled true;
        Obs.reset ();
        let c = Obs.counter "par.test/seq" in
        ignore (Par.map ~jobs:1 (fun _ -> Obs.incr c) (List.init 7 Fun.id));
        check int "counted inline" 7 (Obs.count c);
        Obs.reset ();
        Obs.set_enabled false);
  ]

(* ------------------------------------------------------------------ *)
(* Parallel experiments == sequential experiments (modulo wall time)   *)
(* ------------------------------------------------------------------ *)

(* Zero out the only nondeterministic field so rows compare exactly. *)
let detimed (row : Exp.Experiments.profile_row) =
  {
    row with
    Exp.Experiments.algs =
      List.map
        (fun a -> { a with Exp.Experiments.seconds = 0.0 })
        row.Exp.Experiments.algs;
  }

let experiment_props =
  [
    QCheck.Test.make ~count:3 ~name:"parallel profile rows == sequential"
      QCheck.(int_range 2 4)
      (fun jobs ->
        let entries =
          List.filteri (fun i _ -> i < 2) Io.Benchmarks.table2
        in
        let run jobs =
          List.map detimed
            (Exp.Experiments.profile ~effort:2 ~jobs ~entries ())
        in
        run 1 = run jobs);
  ]

let () =
  Alcotest.run "par"
    [
      ("pool", pool_tests);
      ("portfolio", portfolio_tests);
      ("obs-merge", obs_tests);
      ("experiments-props", List.map QCheck_alcotest.to_alcotest experiment_props);
    ]
