open Logic

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

(* Random MIG: [pis] inputs, about [gates] majority nodes over random
   (possibly complemented) existing signals, [pos] outputs. *)
let random_mig rng ~pis ~gates ~pos =
  let mig = Core.Mig.create () in
  let signals = ref [| Core.Mig.const0 |] in
  let add s = signals := Array.append !signals [| s |] in
  for _ = 1 to pis do
    add (Core.Mig.add_pi mig)
  done;
  for _ = 1 to gates do
    let pick () =
      let s = Prng.pick rng !signals in
      if Prng.bool rng then Core.Mig.not_ s else s
    in
    add (Core.Mig.maj mig (pick ()) (pick ()) (pick ()))
  done;
  for _ = 1 to pos do
    let s = Prng.pick rng !signals in
    ignore (Core.Mig.add_po mig (if Prng.bool rng then Core.Mig.not_ s else s))
  done;
  mig

let mig_of_seed ?(pis = 6) ?(gates = 40) ?(pos = 4) seed =
  random_mig (Prng.create seed) ~pis ~gates ~pos

let check_equiv msg a b = Alcotest.(check bool) msg true (Core.Mig_equiv.equivalent a b)

let full_adder_mig () =
  let mig = Core.Mig.create () in
  let a = Core.Mig.add_pi mig in
  let b = Core.Mig.add_pi mig in
  let c = Core.Mig.add_pi mig in
  let carry = Core.Mig.maj mig a b c in
  let sum = Core.Mig.xor_ mig (Core.Mig.xor_ mig a b) c in
  ignore (Core.Mig.add_po mig sum);
  ignore (Core.Mig.add_po mig carry);
  mig

(* ------------------------------------------------------------------ *)
(* Node-store unit tests                                               *)
(* ------------------------------------------------------------------ *)

let store_tests =
  let open Alcotest in
  [
    test_case "constants" `Quick (fun () ->
        check int "const1 = not const0" Core.Mig.const1 (Core.Mig.not_ Core.Mig.const0));
    test_case "majority rule M(x,x,z) = x" `Quick (fun () ->
        let mig = Core.Mig.create () in
        let x = Core.Mig.add_pi mig and z = Core.Mig.add_pi mig in
        check int "simplifies" x (Core.Mig.maj mig x x z));
    test_case "majority rule M(x,~x,z) = z" `Quick (fun () ->
        let mig = Core.Mig.create () in
        let x = Core.Mig.add_pi mig and z = Core.Mig.add_pi mig in
        check int "simplifies" z (Core.Mig.maj mig x (Core.Mig.not_ x) z));
    test_case "M(0,1,z) = z" `Quick (fun () ->
        let mig = Core.Mig.create () in
        let z = Core.Mig.add_pi mig in
        check int "simplifies" z (Core.Mig.maj mig Core.Mig.const0 Core.Mig.const1 z));
    test_case "structural hashing shares" `Quick (fun () ->
        let mig = Core.Mig.create () in
        let a = Core.Mig.add_pi mig and b = Core.Mig.add_pi mig and c = Core.Mig.add_pi mig in
        let g1 = Core.Mig.maj mig a b c in
        let g2 = Core.Mig.maj mig c a b in
        check int "same node" g1 g2);
    test_case "polarity is not canonicalized" `Quick (fun () ->
        let mig = Core.Mig.create () in
        let a = Core.Mig.add_pi mig and b = Core.Mig.add_pi mig and c = Core.Mig.add_pi mig in
        let g1 = Core.Mig.maj mig a b c in
        let g2 =
          Core.Mig.maj mig (Core.Mig.not_ a) (Core.Mig.not_ b) (Core.Mig.not_ c)
        in
        check bool "different nodes" true (Core.Mig.node_of g1 <> Core.Mig.node_of g2));
    test_case "and/or semantics" `Quick (fun () ->
        let mig = Core.Mig.create () in
        let a = Core.Mig.add_pi mig and b = Core.Mig.add_pi mig in
        ignore (Core.Mig.add_po mig (Core.Mig.and_ mig a b));
        ignore (Core.Mig.add_po mig (Core.Mig.or_ mig a b));
        ignore (Core.Mig.add_po mig (Core.Mig.xor_ mig a b));
        let tts = Core.Mig_sim.truth_tables mig in
        check string "and" "0001" (Truth_table.to_bits tts.(0));
        check string "or" "0111" (Truth_table.to_bits tts.(1));
        check string "xor" "0110" (Truth_table.to_bits tts.(2)));
    test_case "mux semantics" `Quick (fun () ->
        let mig = Core.Mig.create () in
        let s = Core.Mig.add_pi mig and a = Core.Mig.add_pi mig and b = Core.Mig.add_pi mig in
        ignore (Core.Mig.add_po mig (Core.Mig.mux mig s a b));
        let tt = (Core.Mig_sim.truth_tables mig).(0) in
        let expect = Truth_table.mux (Truth_table.var 3 0) (Truth_table.var 3 1) (Truth_table.var 3 2) in
        check bool "mux tt" true (Truth_table.equal tt expect));
    test_case "fanout tracking" `Quick (fun () ->
        let mig = Core.Mig.create () in
        let a = Core.Mig.add_pi mig and b = Core.Mig.add_pi mig and c = Core.Mig.add_pi mig in
        let g = Core.Mig.maj mig a b c in
        let h = Core.Mig.maj mig g a b in
        ignore (Core.Mig.add_po mig h);
        check int "fanout of g" 1 (Core.Mig.fanout_size mig (Core.Mig.node_of g));
        check int "po refs of h" 1 (Core.Mig.po_refs mig (Core.Mig.node_of h)));
    test_case "substitute rewires and kills" `Quick (fun () ->
        let mig = Core.Mig.create () in
        let a = Core.Mig.add_pi mig and b = Core.Mig.add_pi mig and c = Core.Mig.add_pi mig in
        let g = Core.Mig.maj mig a b c in
        let h = Core.Mig.maj mig g a Core.Mig.const0 in
        ignore (Core.Mig.add_po mig h);
        (* replace g by just [a]: h becomes M(a,a,0) = a *)
        Core.Mig.substitute mig (Core.Mig.node_of g) a;
        check bool "g dead" true (Core.Mig.is_dead mig (Core.Mig.node_of g));
        check int "po collapsed to a" a (Core.Mig.po mig 0));
    test_case "substitute cascades strash merge" `Quick (fun () ->
        let mig = Core.Mig.create () in
        let a = Core.Mig.add_pi mig and b = Core.Mig.add_pi mig and c = Core.Mig.add_pi mig in
        let d = Core.Mig.add_pi mig in
        let g1 = Core.Mig.maj mig a b c in
        let g2 = Core.Mig.maj mig a b d in
        let up1 = Core.Mig.maj mig g1 a Core.Mig.const1 in
        let up2 = Core.Mig.maj mig g2 a Core.Mig.const1 in
        ignore (Core.Mig.add_po mig up1);
        ignore (Core.Mig.add_po mig up2);
        (* replacing d by c makes g2 = g1, which must merge up2 into up1 *)
        Core.Mig.substitute mig (Core.Mig.node_of d) c;
        check int "pos equal" (Core.Mig.po mig 0) (Core.Mig.po mig 1));
    test_case "cleanup drops dead logic" `Quick (fun () ->
        let mig = Core.Mig.create () in
        let a = Core.Mig.add_pi mig and b = Core.Mig.add_pi mig and c = Core.Mig.add_pi mig in
        let _dead = Core.Mig.maj mig a b c in
        let live = Core.Mig.maj mig a b Core.Mig.const0 in
        ignore (Core.Mig.add_po mig live);
        let compact = Core.Mig.cleanup mig in
        check int "one gate" 1 (Core.Mig.size compact);
        check_equiv "same function" mig compact);
    test_case "topo order respects fanins" `Quick (fun () ->
        let mig = mig_of_seed 11 in
        let seen = Hashtbl.create 64 in
        List.iter
          (fun g ->
            Array.iter
              (fun s ->
                let n = Core.Mig.node_of s in
                if Core.Mig.kind mig n = Core.Mig.Gate then
                  Alcotest.(check bool) "fanin first" true (Hashtbl.mem seen n))
              (Core.Mig.fanins mig g);
            Hashtbl.add seen g ())
          (Core.Mig.topo_order mig));
  ]

(* ------------------------------------------------------------------ *)
(* Level / cost model                                                  *)
(* ------------------------------------------------------------------ *)

let level_tests =
  let open Alcotest in
  [
    test_case "full adder levels" `Quick (fun () ->
        let mig = full_adder_mig () in
        let lv = Core.Mig_levels.compute mig in
        check bool "depth >= 1" true (lv.Core.Mig_levels.depth >= 1);
        (* carry node is at level 1 *)
        let carry = Core.Mig.po mig 1 in
        check int "carry level" 1 lv.Core.Mig_levels.level.(Core.Mig.node_of carry));
    test_case "table I formulas" `Quick (fun () ->
        let mig = full_adder_mig () in
        let lv = Core.Mig_levels.compute mig in
        let imp = Core.Rram_cost.of_levels Core.Rram_cost.Imp lv in
        let maj = Core.Rram_cost.of_levels Core.Rram_cost.Maj lv in
        let l = Core.Mig_levels.num_levels_with_compl lv in
        check int "imp steps" ((10 * lv.Core.Mig_levels.depth) + l) imp.Core.Rram_cost.steps;
        check int "maj steps" ((3 * lv.Core.Mig_levels.depth) + l) maj.Core.Rram_cost.steps;
        check bool "imp rrams >= maj rrams" true
          (imp.Core.Rram_cost.rrams >= maj.Core.Rram_cost.rrams));
    test_case "single gate costs" `Quick (fun () ->
        let mig = Core.Mig.create () in
        let a = Core.Mig.add_pi mig and b = Core.Mig.add_pi mig and c = Core.Mig.add_pi mig in
        ignore (Core.Mig.add_po mig (Core.Mig.maj mig a b c));
        let imp = Core.Rram_cost.of_mig Core.Rram_cost.Imp mig in
        let maj = Core.Rram_cost.of_mig Core.Rram_cost.Maj mig in
        (* exactly the paper's single-gate numbers: 6 RRAMs / 10 steps (IMP),
           4 RRAMs / 3 steps (MAJ) *)
        check int "imp R" 6 imp.Core.Rram_cost.rrams;
        check int "imp S" 10 imp.Core.Rram_cost.steps;
        check int "maj R" 4 maj.Core.Rram_cost.rrams;
        check int "maj S" 3 maj.Core.Rram_cost.steps);
    test_case "complement adds a step" `Quick (fun () ->
        let mig = Core.Mig.create () in
        let a = Core.Mig.add_pi mig and b = Core.Mig.add_pi mig and c = Core.Mig.add_pi mig in
        ignore (Core.Mig.add_po mig (Core.Mig.maj mig (Core.Mig.not_ a) b c));
        let maj = Core.Rram_cost.of_mig Core.Rram_cost.Maj mig in
        check int "maj R" 5 maj.Core.Rram_cost.rrams;
        check int "maj S" 4 maj.Core.Rram_cost.steps);
    test_case "complemented po counts as readout stage" `Quick (fun () ->
        let mig = Core.Mig.create () in
        let a = Core.Mig.add_pi mig and b = Core.Mig.add_pi mig and c = Core.Mig.add_pi mig in
        ignore (Core.Mig.add_po mig (Core.Mig.not_ (Core.Mig.maj mig a b c)));
        let maj = Core.Rram_cost.of_mig Core.Rram_cost.Maj mig in
        check int "maj S with po inversion" 4 maj.Core.Rram_cost.steps);
  ]

(* ------------------------------------------------------------------ *)
(* Algebra rules preserve the function                                 *)
(* ------------------------------------------------------------------ *)

let preserves name transform =
  QCheck.Test.make ~name ~count:60
    (QCheck.make QCheck.Gen.(int_bound 100000))
    (fun seed ->
      let mig = mig_of_seed seed in
      let reference = Core.Mig.cleanup mig in
      let _ = transform mig in
      Core.Mig_equiv.equivalent reference mig)

let algebra_props =
  [
    preserves "dist R->L preserves" (fun m ->
        Core.Mig.foreach_gate m (fun g ->
            if not (Core.Mig.is_dead m g) then
              ignore (Core.Mig_algebra.try_distributivity_rl m g)));
    preserves "dist L->R preserves" (fun m ->
        let cache = Core.Mig_algebra.Level_cache.make m in
        Core.Mig.foreach_gate m (fun g ->
            if not (Core.Mig.is_dead m g) then
              ignore (Core.Mig_algebra.try_distributivity_lr m cache g)));
    preserves "associativity preserves" (fun m ->
        let cache = Core.Mig_algebra.Level_cache.make m in
        Core.Mig.foreach_gate m (fun g ->
            if not (Core.Mig.is_dead m g) then
              ignore (Core.Mig_algebra.try_associativity m cache g)));
    preserves "assoc non-strict preserves" (fun m ->
        let cache = Core.Mig_algebra.Level_cache.make m in
        Core.Mig.foreach_gate m (fun g ->
            if not (Core.Mig.is_dead m g) then
              ignore (Core.Mig_algebra.try_associativity ~strict:false m cache g)));
    preserves "compl assoc preserves" (fun m ->
        let cache = Core.Mig_algebra.Level_cache.make m in
        Core.Mig.foreach_gate m (fun g ->
            if not (Core.Mig.is_dead m g) then
              ignore (Core.Mig_algebra.try_compl_assoc m cache g)));
    preserves "compl prop preserves" (fun m ->
        Core.Mig.foreach_gate m (fun g ->
            if not (Core.Mig.is_dead m g) then
              ignore (Core.Mig_algebra.try_compl_prop m g)));
    preserves "relevance preserves" (fun m ->
        let cache = Core.Mig_algebra.Level_cache.make m in
        Core.Mig.foreach_gate m (fun g ->
            if not (Core.Mig.is_dead m g) then
              ignore (Core.Mig_algebra.try_relevance m cache g)));
    preserves "substitute-based cleanup is stable" (fun m -> ignore (Core.Mig.cleanup m));
  ]

(* ------------------------------------------------------------------ *)
(* Passes and optimizers                                               *)
(* ------------------------------------------------------------------ *)

let pass_props =
  [
    preserves "eliminate pass preserves" (fun m -> ignore (Core.Mig_passes.eliminate m));
    preserves "reshape pass preserves" (fun m ->
        ignore (Core.Mig_passes.reshape ~seed:1 m));
    preserves "push_up pass preserves" (fun m -> ignore (Core.Mig_passes.push_up m));
    preserves "relevance pass preserves" (fun m -> ignore (Core.Mig_passes.relevance m));
    preserves "compl_prop Always preserves" (fun m ->
        ignore (Core.Mig_passes.compl_prop Core.Mig_passes.Always m));
    preserves "compl_prop Weighted preserves" (fun m ->
        ignore
          (Core.Mig_passes.compl_prop
             (Core.Mig_passes.Weighted Core.Rram_cost.Maj)
             m));
    preserves "balance pass preserves" (fun m -> ignore (Core.Mig_passes.balance m));
  ]

(* ------------------------------------------------------------------ *)
(* Strash pass                                                         *)
(* ------------------------------------------------------------------ *)

(* strash must (a) preserve the function, (b) be idempotent: a second
   application finds a canonical graph and returns it untouched (physical
   equality, changed = false). *)
let strash_canonicalizes mig reference =
  let once, _ = Core.Mig_passes.strash mig in
  let twice, changed_again = Core.Mig_passes.strash once in
  Core.Mig_equiv.equivalent reference once
  && (not changed_again)
  && twice == once

let strash_props =
  [
    QCheck.Test.make ~name:"strash preserves equivalence and is idempotent"
      ~count:60
      (QCheck.make QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let mig = mig_of_seed seed in
        let reference = Core.Mig.cleanup mig in
        (* dirty the graph: elimination leaves dead node records behind *)
        ignore (Core.Mig_passes.eliminate mig);
        strash_canonicalizes mig reference);
  ]

let strash_tests =
  let open Alcotest in
  [
    test_case "no-op on a canonical graph returns it untouched" `Quick (fun () ->
        let mig = Core.Mig.cleanup (full_adder_mig ()) in
        let out, changed = Core.Mig_passes.strash mig in
        check bool "same graph" true (out == mig);
        check bool "unchanged" false changed);
    test_case "compacts abandoned speculative gates" `Quick (fun () ->
        let mig = Core.Mig.create () in
        let a = Core.Mig.add_pi mig and b = Core.Mig.add_pi mig and c = Core.Mig.add_pi mig in
        let keep = Core.Mig.maj mig a b c in
        (* speculative node never wired to an output *)
        ignore (Core.Mig.maj mig a (Core.Mig.not_ b) c);
        ignore (Core.Mig.add_po mig keep);
        let out, changed = Core.Mig_passes.strash mig in
        check bool "changed" true changed;
        check int "one live gate" 1 (Core.Mig.num_gates out);
        check int "dense ids" (1 + 3 + 1) (Core.Mig.num_nodes out);
        let again, changed_again = Core.Mig_passes.strash out in
        check bool "idempotent" true (again == out && not changed_again));
    test_case "strash canonicalizes Funcgen circuits" `Quick (fun () ->
        List.iter
          (fun (name, net) ->
            let mig = Core.Mig_of_network.convert net in
            let reference = Core.Mig.cleanup mig in
            ignore (Core.Mig_passes.eliminate mig);
            check bool name true (strash_canonicalizes mig reference))
          [
            ("full_adder", Funcgen.full_adder ());
            ("rd53", Funcgen.rd 5 3);
            ("comparator4", Funcgen.comparator 4);
            ("parity9", Funcgen.parity 9);
            ("mux_tree3", Funcgen.mux_tree 3);
            ("alu4", Funcgen.alu4 ());
          ]);
  ]

let optimizer_props =
  let check_opt name alg =
    QCheck.Test.make ~name ~count:25
      (QCheck.make QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let mig = mig_of_seed ~gates:30 seed in
        let optimized = Core.Mig_opt.run ~effort:6 alg mig in
        Core.Mig_equiv.equivalent mig optimized)
  in
  [
    check_opt "area optimization preserves" Core.Mig_opt.Area;
    check_opt "depth optimization preserves" Core.Mig_opt.Depth;
    check_opt "rram-costs(IMP) preserves" (Core.Mig_opt.Rram_costs Core.Rram_cost.Imp);
    check_opt "rram-costs(MAJ) preserves" (Core.Mig_opt.Rram_costs Core.Rram_cost.Maj);
    check_opt "step optimization preserves" Core.Mig_opt.Steps;
  ]

let optimizer_tests =
  let open Alcotest in
  [
    test_case "depth optimization reduces a chain" `Quick (fun () ->
        (* An unbalanced AND chain has depth n-1; push-up should shrink it. *)
        let mig = Core.Mig.create () in
        let pis = Array.init 8 (fun _ -> Core.Mig.add_pi mig) in
        let acc = ref pis.(0) in
        for i = 1 to 7 do
          acc := Core.Mig.and_ mig !acc pis.(i)
        done;
        ignore (Core.Mig.add_po mig !acc);
        let before = Core.Rram_cost.of_mig Core.Rram_cost.Maj mig in
        let optimized = Core.Mig_opt.depth ~effort:10 mig in
        let after = Core.Rram_cost.of_mig Core.Rram_cost.Maj optimized in
        check bool "fewer steps" true (after.Core.Rram_cost.steps < before.Core.Rram_cost.steps);
        check_equiv "equivalent" mig optimized);
    test_case "step optimization removes complement levels" `Quick (fun () ->
        (* A chain of NANDs creates complemented edges on every level. *)
        let mig = Core.Mig.create () in
        let pis = Array.init 6 (fun _ -> Core.Mig.add_pi mig) in
        let acc = ref pis.(0) in
        for i = 1 to 5 do
          acc := Core.Mig.not_ (Core.Mig.and_ mig !acc pis.(i))
        done;
        ignore (Core.Mig.add_po mig !acc);
        let lv_before = Core.Mig_levels.compute mig in
        let optimized = Core.Mig_opt.steps ~effort:10 mig in
        let lv_after = Core.Mig_levels.compute optimized in
        check bool "fewer complement levels" true
          (Core.Mig_levels.num_levels_with_compl lv_after
          <= Core.Mig_levels.num_levels_with_compl lv_before);
        check_equiv "equivalent" mig optimized);
    test_case "area optimization shrinks shared-pair structure" `Quick (fun () ->
        (* M(M(x,y,u), M(x,y,v), z) is the textbook Ω.D R→L target. *)
        let mig = Core.Mig.create () in
        let x = Core.Mig.add_pi mig and y = Core.Mig.add_pi mig in
        let u = Core.Mig.add_pi mig and v = Core.Mig.add_pi mig in
        let z = Core.Mig.add_pi mig in
        let a = Core.Mig.maj mig x y u in
        let b = Core.Mig.maj mig x y v in
        ignore (Core.Mig.add_po mig (Core.Mig.maj mig a b z));
        let optimized = Core.Mig_opt.area ~effort:5 mig in
        check bool "size reduced" true (Core.Mig.size optimized < Core.Mig.size mig);
        check_equiv "equivalent" mig optimized);
  ]

(* ------------------------------------------------------------------ *)
(* Conversion from networks                                            *)
(* ------------------------------------------------------------------ *)

let conversion_tests =
  let open Alcotest in
  let check_net name net =
    test_case name `Quick (fun () ->
        let mig = Core.Mig_of_network.convert net in
        check bool "equivalent to source network" true
          (Core.Mig_equiv.equivalent_network mig net))
  in
  [
    check_net "full adder" (Funcgen.full_adder ());
    check_net "ripple adder 4" (Funcgen.ripple_adder 4);
    check_net "cla adder 4" (Funcgen.carry_lookahead_adder 4);
    check_net "multiplier 3" (Funcgen.multiplier 3);
    check_net "comparator 4" (Funcgen.comparator 4);
    check_net "rd53" (Funcgen.rd 5 3);
    check_net "9sym" (Funcgen.sym_range 9 3 6);
    check_net "parity 9" (Funcgen.parity 9);
    check_net "mux tree 3" (Funcgen.mux_tree 3);
    check_net "alu4" (Funcgen.alu4 ());
    check_net "clip" (Funcgen.clip ());
    check_net "t481" (Funcgen.t481 ());
    test_case "of_truth_table" `Quick (fun () ->
        let tt =
          Truth_table.bxor (Truth_table.var 4 0)
            (Truth_table.maj3 (Truth_table.var 4 1) (Truth_table.var 4 2)
               (Truth_table.var 4 3))
        in
        let mig = Core.Mig_of_network.of_truth_table tt in
        let got = (Core.Mig_sim.truth_tables mig).(0) in
        check bool "tt preserved" true (Truth_table.equal tt got));
  ]

let equiv_tests =
  let open Alcotest in
  [
    test_case "detects inequivalence" `Quick (fun () ->
        let a = full_adder_mig () in
        let b = full_adder_mig () in
        Core.Mig.set_po b 0 (Core.Mig.not_ (Core.Mig.po b 0));
        check bool "not equivalent" false (Core.Mig_equiv.equivalent a b));
    test_case "counterexample found" `Quick (fun () ->
        let a = full_adder_mig () in
        let b = full_adder_mig () in
        Core.Mig.set_po b 1 (Core.Mig.not_ (Core.Mig.po b 1));
        match Core.Mig_equiv.counterexample a b with
        | Some vec ->
            let oa = Core.Mig_sim.eval a vec and ob = Core.Mig_sim.eval b vec in
            check bool "distinguishes" true (oa <> ob)
        | None -> Alcotest.fail "expected counterexample");
  ]

(* ------------------------------------------------------------------ *)
(* Level scheduling                                                     *)
(* ------------------------------------------------------------------ *)

let schedule_props =
  [
    QCheck.Test.make ~name:"alap and balanced schedules are dependency-valid" ~count:60
      (QCheck.make QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let mig = Core.Mig.cleanup (mig_of_seed seed) in
        Core.Mig_schedule.is_valid mig (Core.Mig_schedule.asap mig)
        && Core.Mig_schedule.is_valid mig (Core.Mig_schedule.alap mig)
        && Core.Mig_schedule.is_valid mig (Core.Mig_schedule.balanced mig));
    QCheck.Test.make ~name:"balanced schedule never deeper than ASAP" ~count:60
      (QCheck.make QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let mig = Core.Mig.cleanup (mig_of_seed seed) in
        let a = Core.Mig_schedule.asap mig in
        let b = Core.Mig_schedule.balanced mig in
        b.Core.Mig_levels.depth <= a.Core.Mig_levels.depth);
    QCheck.Test.make ~name:"balanced schedule never uses more RRAMs" ~count:60
      (QCheck.make QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let mig = Core.Mig.cleanup (mig_of_seed ~gates:60 seed) in
        let a = Core.Rram_cost.of_levels Core.Rram_cost.Maj (Core.Mig_schedule.asap mig) in
        let b =
          Core.Rram_cost.of_levels Core.Rram_cost.Maj (Core.Mig_schedule.balanced mig)
        in
        (* width smoothing may shuffle complement levels, so allow a tiny
           slack on R from the C_i terms while requiring the dominant
           gate-width term not to regress *)
        b.Core.Rram_cost.rrams <= a.Core.Rram_cost.rrams + 8);
  ]

let schedule_tests =
  let open Alcotest in
  [
    test_case "balancing narrows a diamond" `Quick (fun () ->
        (* wide ASAP level 1, empty later levels: balancing spreads it *)
        let mig = Core.Mig.create () in
        let pis = Array.init 9 (fun _ -> Core.Mig.add_pi mig) in
        let g i = Core.Mig.maj mig pis.(3 * i) pis.((3 * i) + 1) pis.((3 * i) + 2) in
        let a = g 0 and b = g 1 and c = g 2 in
        let d = Core.Mig.maj mig a b c in
        let e = Core.Mig.maj mig d pis.(0) pis.(1) in
        ignore (Core.Mig.add_po mig e);
        let asap = Core.Mig_schedule.asap mig in
        let bal = Core.Mig_schedule.balanced mig in
        let width lv = Array.fold_left max 0 lv.Core.Mig_levels.gates_per_level in
        check bool "narrower or equal" true (width bal <= width asap);
        check bool "same depth" true
          (bal.Core.Mig_levels.depth = asap.Core.Mig_levels.depth));
    test_case "compiled program with balanced schedule verifies" `Quick (fun () ->
        let net = Funcgen.rd 5 3 in
        let mig = Core.Mig_of_network.convert net in
        let schedule = Core.Mig_schedule.balanced mig in
        List.iter
          (fun realization ->
            let r = Rram.Compile_mig.compile ~schedule realization mig in
            match Rram.Verify.against_network r.Rram.Compile_mig.program net with
            | Ok () -> ()
            | Error e -> Alcotest.fail e)
          [ Core.Rram_cost.Imp; Core.Rram_cost.Maj ]);
    test_case "balanced schedule reduces R on a wide-then-thin MIG" `Quick (fun () ->
        let net = Funcgen.multiplier 4 in
        let mig = Core.Mig_of_network.convert net in
        let asap_cost = Core.Rram_cost.of_levels Core.Rram_cost.Maj (Core.Mig_schedule.asap mig) in
        let bal_cost =
          Core.Rram_cost.of_levels Core.Rram_cost.Maj (Core.Mig_schedule.balanced mig)
        in
        check bool "R reduced" true
          (bal_cost.Core.Rram_cost.rrams <= asap_cost.Core.Rram_cost.rrams));
  ]

(* ------------------------------------------------------------------ *)
(* Structural integrity under rewrite storms                           *)
(* ------------------------------------------------------------------ *)

let integrity_props =
  let storm mig seed =
    (* a randomized barrage of every rewrite kind *)
    let rng = Prng.create seed in
    let cache = Core.Mig_algebra.Level_cache.make mig in
    for _ = 1 to 3 do
      Core.Mig.foreach_gate mig (fun g ->
          if not (Core.Mig.is_dead mig g) then
            ignore
              (match Prng.int rng 6 with
              | 0 -> Core.Mig_algebra.try_distributivity_rl mig g
              | 1 -> Core.Mig_algebra.try_distributivity_lr mig cache g
              | 2 -> Core.Mig_algebra.try_associativity ~strict:false mig cache g
              | 3 -> Core.Mig_algebra.try_compl_assoc mig cache g
              | 4 -> Core.Mig_algebra.try_compl_prop mig g
              | _ -> Core.Mig_algebra.try_relevance mig cache g))
    done
  in
  [
    QCheck.Test.make ~name:"graph invariants survive rewrite storms" ~count:60
      (QCheck.make QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let mig = mig_of_seed seed in
        storm mig (seed + 1);
        Core.Mig_check.check mig = Ok ());
    QCheck.Test.make ~name:"storms preserve the function" ~count:60
      (QCheck.make QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let mig = mig_of_seed seed in
        let reference = Core.Mig.cleanup mig in
        storm mig (seed + 1);
        Core.Mig_equiv.equivalent reference mig);
    QCheck.Test.make ~name:"cleanup is idempotent on size" ~count:60
      (QCheck.make QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let mig = mig_of_seed seed in
        storm mig (seed + 1);
        let once = Core.Mig.cleanup mig in
        let twice = Core.Mig.cleanup once in
        Core.Mig.size once = Core.Mig.size twice
        && Core.Mig_check.check once = Ok ());
    QCheck.Test.make ~name:"optimizers leave valid graphs" ~count:20
      (QCheck.make QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let mig = mig_of_seed ~gates:30 seed in
        List.for_all
          (fun alg -> Core.Mig_check.check (Core.Mig_opt.run ~effort:4 alg mig) = Ok ())
          [ Core.Mig_opt.Area; Core.Mig_opt.Depth; Core.Mig_opt.Steps ]);
  ]

(* ------------------------------------------------------------------ *)
(* Incremental analysis                                                *)
(* ------------------------------------------------------------------ *)

let analysis_tests =
  let open Alcotest in
  [
    test_case "level cache tracks substitutions (staleness regression)" `Quick
      (fun () ->
        (* A chain g1..g3 under the root puts the root at level 4.  The old
           Level_cache memoized levels at first query and was never
           invalidated by [substitute], so after collapsing the chain
           mid-sweep it still reported 4 and depth-gated rules compared
           against a graph that no longer existed. *)
        let mig = Core.Mig.create () in
        let a = Core.Mig.add_pi mig and b = Core.Mig.add_pi mig in
        let c = Core.Mig.add_pi mig and d = Core.Mig.add_pi mig in
        let g1 = Core.Mig.maj mig a b c in
        let g2 = Core.Mig.maj mig g1 c d in
        let g3 = Core.Mig.maj mig g2 a d in
        let root = Core.Mig.maj mig g3 b d in
        ignore (Core.Mig.add_po mig root);
        let cache = Core.Mig_algebra.Level_cache.make mig in
        let rn = Core.Mig.node_of root in
        check int "root level before" 4
          (Core.Mig_algebra.Level_cache.node_level cache mig rn);
        (* collapse the chain: root becomes M(a,b,d), level 1 *)
        Core.Mig.substitute mig (Core.Mig.node_of g3) a;
        check int "root level after substitute" 1
          (Core.Mig_algebra.Level_cache.node_level cache mig rn);
        check (pair int int) "size and depth follow" (1, 1)
          (Core.Mig_passes.size_and_depth mig));
    test_case "maintained statistics equal from-scratch on a hand graph" `Quick
      (fun () ->
        let mig = full_adder_mig () in
        let an = Core.Mig_analysis.of_mig mig in
        Core.Mig_analysis.check an;
        let lv = Core.Mig_levels.compute_scratch mig in
        check int "size" (List.length lv.Core.Mig_levels.order)
          (Core.Mig_analysis.size an);
        check int "depth" lv.Core.Mig_levels.depth (Core.Mig_analysis.depth an));
  ]

let analysis_props =
  let nets =
    [|
      (fun () -> Funcgen.full_adder ());
      (fun () -> Funcgen.ripple_adder 4);
      (fun () -> Funcgen.multiplier 3);
      (fun () -> Funcgen.rd 5 3);
      (fun () -> Funcgen.parity 9);
      (fun () -> Funcgen.mux_tree 3);
      (fun () -> Funcgen.comparator 4);
    |]
  in
  let barrage mig seed =
    let rng = Prng.create seed in
    let cache = Core.Mig_algebra.Level_cache.make mig in
    for _ = 1 to 3 do
      Core.Mig.foreach_gate mig (fun g ->
          if not (Core.Mig.is_dead mig g) then
            ignore
              (match Prng.int rng 6 with
              | 0 -> Core.Mig_algebra.try_distributivity_rl mig g
              | 1 -> Core.Mig_algebra.try_distributivity_lr mig cache g
              | 2 -> Core.Mig_algebra.try_associativity ~strict:false mig cache g
              | 3 -> Core.Mig_algebra.try_compl_assoc mig cache g
              | 4 -> Core.Mig_algebra.try_compl_prop mig g
              | _ -> Core.Mig_algebra.try_relevance mig cache g))
    done
  in
  [
    QCheck.Test.make
      ~name:"incremental analysis equals from-scratch after rewrite storms"
      ~count:60
      (QCheck.make QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let mig =
          Core.Mig_of_network.convert (nets.(seed mod Array.length nets) ())
        in
        let an = Core.Mig_analysis.of_mig mig in
        barrage mig (seed + 1);
        (* internal invariants: refcounts, buckets, queue discipline *)
        Core.Mig_analysis.check an;
        (* external agreement with the reference implementation *)
        let lv = Core.Mig_levels.compute_scratch mig in
        let depth_ok = Core.Mig_analysis.depth an = lv.Core.Mig_levels.depth in
        let size_ok =
          Core.Mig_analysis.size an = List.length lv.Core.Mig_levels.order
        in
        let levels_ok =
          List.for_all
            (fun g -> Core.Mig_analysis.level an g = lv.Core.Mig_levels.level.(g))
            lv.Core.Mig_levels.order
        in
        let buckets_ok =
          let ok = ref true in
          Array.iteri
            (fun l n -> if Core.Mig_analysis.gates_at_level an l <> n then ok := false)
            lv.Core.Mig_levels.gates_per_level;
          Array.iteri
            (fun l c ->
              let got =
                if l = lv.Core.Mig_levels.depth + 1 then Core.Mig_analysis.po_compl an
                else Core.Mig_analysis.compl_at_level an l
              in
              if got <> c then ok := false)
            lv.Core.Mig_levels.compl_per_level;
          !ok
        in
        let costs_ok =
          List.for_all
            (fun r ->
              Core.Rram_cost.of_mig r mig = Core.Rram_cost.of_levels r lv)
            [ Core.Rram_cost.Imp; Core.Rram_cost.Maj ]
        in
        depth_ok && size_ok && levels_ok && buckets_ok && costs_ok);
    QCheck.Test.make ~name:"analysis survives cleanup and re-attaches" ~count:40
      (QCheck.make QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let mig = mig_of_seed seed in
        let _ = Core.Mig_analysis.of_mig mig in
        barrage mig (seed + 1);
        let compact = Core.Mig.cleanup mig in
        let an = Core.Mig_analysis.of_mig compact in
        Core.Mig_analysis.check an;
        Core.Mig_analysis.size an = Core.Mig.size compact);
  ]

let () =
  Alcotest.run "mig"
    [
      ("store", store_tests);
      ("levels-cost", level_tests);
      ("analysis", analysis_tests);
      ("analysis-props", List.map QCheck_alcotest.to_alcotest analysis_props);
      ("algebra-props", List.map QCheck_alcotest.to_alcotest algebra_props);
      ("pass-props", List.map QCheck_alcotest.to_alcotest pass_props);
      ("strash", strash_tests);
      ("strash-props", List.map QCheck_alcotest.to_alcotest strash_props);
      ("optimizer-props", List.map QCheck_alcotest.to_alcotest optimizer_props);
      ("optimizers", optimizer_tests);
      ("conversion", conversion_tests);
      ("equiv", equiv_tests);
      ("integrity-props", List.map QCheck_alcotest.to_alcotest integrity_props);
      ("schedule", schedule_tests);
      ("schedule-props", List.map QCheck_alcotest.to_alcotest schedule_props);
    ]
