(* Functional yield under stuck-at device faults (extension).

   RRAM cells wear out and get stuck in the low- or high-resistance state.
   Part 1 compiles the same circuit to both realizations, injects random
   stuck-at faults at increasing per-cell rates, and Monte-Carlo estimates
   the probability that the program still computes its function: the MAJ
   realization uses fewer devices and fewer pulses per gate, giving it a
   visibly smaller fault surface.

   Part 2 measures what the two fault-tolerance mechanisms buy on the same
   defect maps: the resilient detect-diagnose-remap-retry controller
   (Rram.Resilient) and triple modular redundancy voted with the paper's
   own MAJ primitive (Rram.Tmr). *)

let () =
  Format.printf "Functional yield under stuck-at faults (Monte-Carlo, 200 trials)@.@.";
  let net = Logic.Funcgen.rd 5 3 in
  let mig = Core.Mig_opt.steps ~effort:10 (Core.Mig_of_network.convert net) in
  let reference = Core.Mig_sim.eval mig in
  Format.printf "circuit: rd53 (%d gates after step optimization)@.@." (Core.Mig.size mig);
  Format.printf "%-10s | %-22s | %-22s@." "fault rate" "IMP (6 dev/gate)" "MAJ (4 dev/gate)";
  List.iter
    (fun rate ->
      let cell r =
        let compiled = Rram.Compile_mig.compile r mig in
        let y =
          Rram.Faults.functional_yield ~rate compiled.Rram.Compile_mig.program ~reference
        in
        Format.asprintf "yield %.2f (%4.1f faults)" y.Rram.Faults.yield
          y.Rram.Faults.mean_faults
      in
      Format.printf "%-10s | %-22s | %-22s@."
        (Printf.sprintf "%.3f" rate)
        (cell Core.Rram_cost.Imp) (cell Core.Rram_cost.Maj))
    [ 0.001; 0.003; 0.01; 0.03 ];
  Format.printf
    "@.A stuck cell only matters if it is live during the computation; the MAJ@.";
  Format.printf
    "realization's smaller crossbar (and shorter programs) survives more faults.@.";

  (* ---- Part 2: fault-tolerance mechanisms on the MAJ realization ---- *)
  let compiled = Rram.Compile_mig.compile Core.Rram_cost.Maj mig in
  let program = compiled.Rram.Compile_mig.program in
  let tmr = Rram.Tmr.protect program in
  let dev_ratio, step_ratio = Rram.Tmr.overhead program tmr in
  Format.printf
    "@.Protection (MAJ realization, %d RRAMs; TMR: %d RRAMs = %.1fx, steps %.2fx):@.@."
    program.Rram.Program.num_regs tmr.Rram.Tmr.program.Rram.Program.num_regs dev_ratio
    step_ratio;
  Format.printf "%-10s | %-8s | %-11s | %-8s@." "fault rate" "baseline" "remap+retry"
    "TMR";
  let comparisons =
    List.map
      (fun rate ->
        Rram.Faults.yield_comparison ~trials:200 ~rate program ~reference)
      [ 0.003; 0.01; 0.03 ]
  in
  List.iter
    (fun (c : Rram.Faults.comparison) ->
      Format.printf "%-10s | %8.2f | %11.2f | %8.2f@."
        (Printf.sprintf "%.3f" c.Rram.Faults.rate)
        c.Rram.Faults.baseline.Rram.Faults.yield
        c.Rram.Faults.resilient.Rram.Faults.yield c.Rram.Faults.tmr.Rram.Faults.yield)
    comparisons;
  Format.printf
    "@.Remapping routes the program around diagnosed dead cells onto spares, so it@.";
  Format.printf
    "repairs almost everything while spares last.  TMR pays ~3x devices to mask any@.";
  Format.printf
    "single-replica fault passively, and loses that bet once simultaneous faults in@.";
  Format.printf "two replicas become likely (the 0.03 row).@.";
  (* The headline check: protection must actually help at the 1%% rate. *)
  let at_001 =
    List.find (fun (c : Rram.Faults.comparison) -> c.Rram.Faults.rate = 0.01) comparisons
  in
  assert (
    at_001.Rram.Faults.tmr.Rram.Faults.yield
    > at_001.Rram.Faults.baseline.Rram.Faults.yield);
  assert (
    at_001.Rram.Faults.resilient.Rram.Faults.yield
    > at_001.Rram.Faults.baseline.Rram.Faults.yield)
