(* migsyn — MIG-based logic synthesis for RRAM in-memory computing.

   Subcommands:
     stats     parse a netlist and print representation statistics
     optimize  run one of the paper's four algorithms, write BLIF out
     flow      run a user-written flow script (scriptable pass pipelines)
     map       compile to an RRAM program, report costs, verify, dump
     compare   MIG flow vs the BDD [11] and AIG [12] baselines on one file
     bench     run the paper's experiment rows for named benchmarks
     crossbar  unbounded-serial vs crossbar-constrained mapping comparison
     plim      compile to an RM3 instruction stream for the PLiM computer
     export    write the optimized MIG as DOT/Verilog/BLIF/bench/AIGER
     gen       generate a seeded synthetic netlist (large-N tiers included)
     faults    stuck-at repair demo + baseline/resilient/TMR yield experiment
     montecarlo  yield-vs-variability campaign over the statistical device model
     profile   optimize + compile + execute with a timing/counter report
     report    compare two ledgers/manifests/baselines, exit 2 on regression
     serve     synthesis daemon on a Unix socket with a strash result cache
     client    send one migsyn-serve/1 request to a running daemon

   Every subcommand accepts --trace FILE (Chrome trace-event JSON, loadable
   in chrome://tracing or Perfetto), --metrics FILE (flat metrics JSON),
   --flame FILE (collapsed stacks for flamegraph.pl) and --ledger FILE
   (append a migsyn-run/1 manifest to a JSON-lines run ledger; also set by
   $MIGSYN_LEDGER); any of them switches the Obs layer on for the run. *)

open Cmdliner

(* ---------------- observability plumbing ---------------- *)

type obs_opts = {
  o_trace : string option;
  o_metrics : string option;
  o_flame : string option;
  o_flame_weight : [ `Time_us | `Calls ];
  o_ledger : string option;
}

let obs_term =
  let trace_arg =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event JSON of this run (open in \
             chrome://tracing or https://ui.perfetto.dev). Enables the \
             observability layer.")
  in
  let metrics_arg =
    Arg.(
      value & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write a flat metrics JSON (counters, gauges, histograms, \
             optimization trajectories, span aggregates) of this run. \
             Enables the observability layer.")
  in
  let flame_arg =
    Arg.(
      value & opt (some string) None
      & info [ "flame" ] ~docv:"FILE"
          ~doc:
            "Write the aggregated span tree in the collapsed-stack format \
             flamegraph.pl consumes (one 'a;b;c weight' line per span \
             path). Enables the observability layer.")
  in
  let flame_weight_arg =
    Arg.(
      value
      & opt (enum [ ("time", `Time_us); ("calls", `Calls) ]) `Time_us
      & info [ "flame-weight" ] ~docv:"W"
          ~doc:
            "Collapsed-stack weight: $(b,time) (exclusive self time in \
             microseconds, the flame view) or $(b,calls) (call counts — \
             deterministic, byte-identical for every --jobs).")
  in
  let ledger_arg =
    Arg.(
      value & opt (some string) None
      & info [ "ledger" ] ~docv:"FILE"
          ~env:(Cmd.Env.info "MIGSYN_LEDGER")
          ~doc:
            "Append a self-describing run manifest (schema migsyn-run/1: \
             subcommand, argv, context, results, span tree, counters, \
             histogram summaries) to this JSON-lines run ledger. Enables \
             the observability layer. Compare ledgers with $(b,migsyn \
             report).")
  in
  let make o_trace o_metrics o_flame o_flame_weight o_ledger =
    { o_trace; o_metrics; o_flame; o_flame_weight; o_ledger }
  in
  Term.(
    const make $ trace_arg $ metrics_arg $ flame_arg $ flame_weight_arg
    $ ledger_arg)

let write_text path text =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc text)

(* Run [f] with the Obs layer switched on when any export flag was given,
   and write the requested artifacts even if [f] fails partway.  The run
   manifest is started whenever the layer is on (the profile subcommand
   enables it with no flags), so `--ledger` always records a complete
   record — including for failed runs, which is when the ledger is most
   interesting. *)
let with_obs ~sub opts f =
  if
    opts.o_trace <> None || opts.o_metrics <> None || opts.o_flame <> None
    || opts.o_ledger <> None
  then begin
    Obs.set_enabled true;
    Obs.reset ()
  end;
  if Obs.enabled () then
    Obs.Manifest.start ~tool:"migsyn" ~subcommand:sub
      ~argv:(Array.to_list Sys.argv) ();
  let export () =
    (match opts.o_trace with
    | Some path ->
        Obs.write_json path (Obs.chrome_trace_json ());
        Format.printf "wrote trace %s@." path
    | None -> ());
    (match opts.o_metrics with
    | Some path ->
        Obs.write_json path (Obs.metrics_json ());
        Format.printf "wrote metrics %s@." path
    | None -> ());
    (match opts.o_flame with
    | Some path ->
        write_text path (Obs.collapsed_stacks ~weight:opts.o_flame_weight ());
        Format.printf "wrote flame %s@." path
    | None -> ());
    match opts.o_ledger with
    | Some path ->
        Obs.Ledger.append path (Obs.Manifest.finish ());
        Format.printf "appended run to %s@." path
    | None -> ()
  in
  match f () with
  | v ->
      export ();
      v
  | exception e ->
      export ();
      raise e

let ctx = Obs.Manifest.add_context
let res = Obs.Manifest.add_result

let parse_netlist path =
  let wrap line msg = failwith (Printf.sprintf "%s:%d: %s" path line msg) in
  try
    match Filename.extension path with
    | ".blif" -> Io.Blif.parse_file path
    | ".bench" -> Io.Bench_format.parse_file path
    | ".pla" -> Io.Pla.parse_file path
    | ".aag" -> Io.Aiger.parse_file path
    | ".aig" -> Io.Aiger.parse_binary_file path
    | "" ->
        failwith
          (path ^ ": missing extension (expected .blif, .bench, .pla, .aag or .aig)")
    | ext ->
        failwith
          (Printf.sprintf
             "%s: unsupported netlist extension %s (expected .blif, .bench, .pla, .aag or .aig)"
             path ext)
  with
  | Io.Blif.Parse_error (line, msg) -> wrap line msg
  | Io.Bench_format.Parse_error (line, msg) -> wrap line msg
  | Io.Pla.Parse_error (line, msg) -> wrap line msg
  | Io.Aiger.Parse_error (line, msg) -> wrap line msg

let input_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"NETLIST"
        ~doc:"Input netlist (.blif, .bench, .pla, .aag or .aig).")

let effort_arg =
  Arg.(
    value & opt int Core.Mig_opt.default_effort
    & info [ "e"; "effort" ] ~docv:"N" ~doc:"Optimization effort (cycles).")

let algorithm_conv =
  let parse = function
    | "area" -> Ok Core.Mig_opt.Area
    | "depth" -> Ok Core.Mig_opt.Depth
    | "rram-imp" -> Ok (Core.Mig_opt.Rram_costs Core.Rram_cost.Imp)
    | "rram-maj" -> Ok (Core.Mig_opt.Rram_costs Core.Rram_cost.Maj)
    | "steps" -> Ok Core.Mig_opt.Steps
    | "bool-rewrite" -> Ok Core.Mig_opt.Boolean
    | s -> Error (`Msg ("unknown algorithm " ^ s))
  in
  Arg.conv (parse, fun ppf a -> Format.pp_print_string ppf (Core.Mig_opt.algorithm_name a))

let algorithm_arg =
  Arg.(
    value
    & opt algorithm_conv Core.Mig_opt.Steps
    & info [ "a"; "algorithm" ] ~docv:"ALG"
        ~doc:
          "Optimization algorithm: area, depth, rram-imp, rram-maj, steps, or \
           the beyond-paper bool-rewrite.")

let realization_conv =
  let parse = function
    | "imp" -> Ok Core.Rram_cost.Imp
    | "maj" -> Ok Core.Rram_cost.Maj
    | s -> Error (`Msg ("unknown realization " ^ s))
  in
  Arg.conv (parse, fun ppf r -> Core.Rram_cost.pp_realization ppf r)

let realization_arg =
  Arg.(
    value
    & opt realization_conv Core.Rram_cost.Maj
    & info [ "r"; "realization" ] ~docv:"R" ~doc:"RRAM realization: imp or maj.")

(* --arch stays a raw string through cmdliner and is validated inside each
   subcommand so the diagnostic follows the `migsyn <sub>: error: ...`
   convention (cmdliner's conv errors carry only the tool name). *)
let arch_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "arch" ] ~docv:"ARCH"
        ~doc:
          "Execution architecture: $(b,serial) (the default unbounded-serial \
           target, one device per register and one micro-operation per step) \
           or a crossbar geometry $(b,ROWSxCOLUMNS), e.g. $(b,64x64). A \
           crossbar geometry packs independent same-level gates into \
           parallel pulse waves, one gate pulse per row per step.")

(* Compile_mig.compile wraps crossbar mapping errors as
   [Invalid_argument "Compile_mig.compile: ..."]; the internal prefix is
   noise in a user-facing diagnostic. *)
let strip_compile_prefix msg =
  let prefix = "Compile_mig.compile: " in
  let plen = String.length prefix in
  if String.length msg >= plen && String.sub msg 0 plen = prefix then
    String.sub msg plen (String.length msg - plen)
  else msg

let parse_arch_or_fail ~sub arch =
  match arch with
  | None -> Core.Rram_cost.Unbounded_serial
  | Some text -> (
      match Core.Rram_cost.parse_arch text with
      | Ok a -> a
      | Error e ->
          prerr_endline ("migsyn " ^ sub ^ ": error: " ^ e);
          exit 1)

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel sections. 0 (the default) picks \
           automatically: $(b,MIGSYN_JOBS) if set, else the recommended \
           domain count of this machine. 1 runs sequentially on the \
           calling domain. Results are identical for every value; only \
           the wall time changes.")

let resolve_jobs n = Par.resolve_jobs (if n <= 0 then None else Some n)

(* ---------------- stats ---------------- *)

let stats_cmd =
  let run obs path =
    with_obs ~sub:"stats" obs @@ fun () ->
    ctx "input" (Obs.Json.String path);
    let net = parse_netlist path in
    Format.printf "network: %a@." Logic.Network.pp_stats net;
    let mig = Core.Mig_of_network.convert net in
    let lv = Core.Mig_levels.compute mig in
    Format.printf "MIG:     %a depth=%d@." Core.Mig.pp_stats mig lv.Core.Mig_levels.depth;
    let aig = Aig_lib.Aig_of_network.convert net in
    Format.printf "AIG:     %a@." Aig_lib.Aig.pp_stats aig;
    (try
       let bdd =
         Bdd_lib.Bdd_of_network.build ~max_nodes:1_000_000
           ~perm:(Bdd_lib.Bdd_order.order Bdd_lib.Bdd_order.Dfs net)
           net
       in
       Format.printf "BDD:     %a@." Bdd_lib.Bdd_stats.pp (Bdd_lib.Bdd_stats.of_result bdd)
     with Bdd_lib.Bdd.Limit_exceeded -> Format.printf "BDD:     > 1M nodes (skipped)@.");
    Format.printf "Table I: IMP %a   MAJ %a@." Core.Rram_cost.pp
      (Core.Rram_cost.of_mig Core.Rram_cost.Imp mig)
      Core.Rram_cost.pp
      (Core.Rram_cost.of_mig Core.Rram_cost.Maj mig)
  in
  Cmd.v (Cmd.info "stats" ~doc:"Print representation statistics for a netlist")
    Term.(const run $ obs_term $ input_arg)

(* ---------------- optimize ---------------- *)

let optimize_cmd =
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the optimized MIG as BLIF.")
  in
  let run obs path alg effort out =
    with_obs ~sub:"optimize" obs @@ fun () ->
    ctx "input" (Obs.Json.String path);
    ctx "algorithm" (Obs.Json.String (Core.Mig_opt.algorithm_name alg));
    ctx "effort" (Obs.Json.Int effort);
    let net = parse_netlist path in
    let mig = Core.Mig_of_network.convert net in
    let before_imp = Core.Rram_cost.of_mig Core.Rram_cost.Imp mig in
    let optimized = Core.Mig_opt.run ~effort alg mig in
    if not (Core.Mig_equiv.equivalent_network optimized net) then
      failwith "internal error: optimization changed the function";
    let imp = Core.Rram_cost.of_mig Core.Rram_cost.Imp optimized in
    let maj = Core.Rram_cost.of_mig Core.Rram_cost.Maj optimized in
    res "gates" (Obs.Json.Int (Core.Mig.size optimized));
    res "imp_rrams" (Obs.Json.Int imp.Core.Rram_cost.rrams);
    res "imp_steps" (Obs.Json.Int imp.Core.Rram_cost.steps);
    res "maj_rrams" (Obs.Json.Int maj.Core.Rram_cost.rrams);
    res "maj_steps" (Obs.Json.Int maj.Core.Rram_cost.steps);
    Format.printf "%s (effort %d): %a@." (Core.Mig_opt.algorithm_name alg) effort
      Core.Mig.pp_stats optimized;
    Format.printf "  IMP %a (initial %a)@." Core.Rram_cost.pp imp Core.Rram_cost.pp
      before_imp;
    Format.printf "  MAJ %a@." Core.Rram_cost.pp maj;
    match out with
    | None -> ()
    | Some f ->
        Io.Blif.write_file ~model_name:"optimized" f (Core.Mig_to_network.export optimized);
        Format.printf "wrote %s@." f
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Optimize a netlist with one of the paper's algorithms")
    Term.(const run $ obs_term $ input_arg $ algorithm_arg $ effort_arg $ out_arg)

(* ---------------- flow ---------------- *)

let flow_cmd =
  let script_arg =
    Arg.(
      value & opt_all string []
      & info [ "s"; "script" ] ~docv:"STR"
          ~doc:
            "Flow script to run, e.g. \
             'cycle(40){push_up; psi_r; push_up}; push_up'. With \
             $(b,--portfolio) the option may be repeated: each script \
             becomes one entrant of the race.")
  in
  let portfolio_arg =
    Arg.(
      value & flag
      & info [ "portfolio" ]
          ~doc:
            "Race several flows on independent copies of the MIG (one per \
             worker domain, see $(b,--jobs)) and keep the best result under \
             $(b,--cost). Entrants are the repeated $(b,--script) values, or \
             — when none are given — the five canonical paper algorithms at \
             $(b,--effort). The winner is chosen by lowest cost, ties to the \
             earliest entrant, so it is identical for every $(b,--jobs).")
  in
  let cost_arg =
    Arg.(
      value & opt string Core.Mig_flows.default_cost
      & info [ "cost" ] ~docv:"NAME"
          ~doc:
            "Portfolio race cost: one of the accept_if cost names \
             (see $(b,--list-passes)).")
  in
  let file_arg =
    Arg.(
      value & opt (some file) None
      & info [ "f"; "file" ] ~docv:"FILE"
          ~doc:"Read the flow script from a file ('#' comments allowed).")
  in
  let list_arg =
    Arg.(
      value & flag
      & info [ "list-passes" ]
          ~doc:"List every registered pass and accept_if cost, then exit.")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the optimized MIG as BLIF.")
  in
  let no_verify_arg =
    Arg.(value & flag & info [ "no-verify" ] ~doc:"Skip simulator verification.")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print the final size, depth and Table I cost pairs of the \
             optimized MIG (from the maintained analysis) as one \
             machine-friendly line.")
  in
  let input_opt_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"NETLIST"
          ~doc:
            "Input netlist (.blif, .bench, .pla, .aag or .aig); not needed \
             with --list-passes.")
  in
  (* Flow-script problems are user errors, not internal ones: report them as
     `migsyn flow: error: ...` (with the byte position and a did-you-mean
     suggestion from the parser) and exit 1, per the CLI error convention. *)
  let fail fmt =
    Format.kasprintf
      (fun msg ->
        prerr_endline ("migsyn flow: error: " ^ msg);
        exit 1)
      fmt
  in
  let list_passes () =
    Format.printf "passes (usable in flow scripts; see also 'cycle', 'every', \
                   'accept_if'):@.";
    List.iter
      (fun (p : Core.Mig.t Flow.pass) ->
        Format.printf "  %-14s %-10s preserves %-20s %s@." p.Flow.name
          p.Flow.category p.Flow.preserves p.Flow.doc)
      (Flow.passes Core.Mig_flows.registry);
    Format.printf "@.accept_if costs (checkpoint/rollback guards):@.";
    List.iter
      (fun (name, _) -> Format.printf "  %s@." name)
      Core.Mig_flows.costs;
    Format.printf
      "@.canonical algorithm scripts (what 'migsyn optimize -a NAME' runs):@.";
    List.iter
      (fun name ->
        match Core.Mig_flows.canonical_script name with
        | Some s -> Format.printf "  %-14s %s@." name s
        | None -> ())
      Core.Mig_flows.canonical_names
  in
  let run obs scripts file list portfolio cost effort jobs arch dump_out
      no_verify stats input =
    with_obs ~sub:"flow" obs @@ fun () ->
    if list then list_passes ()
    else begin
      let script_of_file f =
        let ic = open_in_bin f in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let path = match input with Some p -> p | None -> fail "missing NETLIST argument" in
      ctx "input" (Obs.Json.String path);
      ctx "effort" (Obs.Json.Int effort);
      let arch = parse_arch_or_fail ~sub:"flow" arch in
      ctx "arch" (Obs.Json.String (Core.Rram_cost.arch_to_string arch));
      (* The xbar_* accept_if costs read the flow-level architecture, so it
         must be set before any script is parsed or raced. *)
      (match arch with
      | Core.Rram_cost.Crossbar _ -> Core.Mig_flows.set_arch arch
      | Core.Rram_cost.Unbounded_serial -> ());
      let net = parse_netlist path in
      let mig = Core.Mig_of_network.convert net in
      let before_size, before_depth = Core.Mig_passes.size_and_depth mig in
      let optimized =
        if portfolio then begin
          let specs =
            match (scripts, file) with
            | [], None -> Core.Mig_flows.default_portfolio ~effort ()
            | [], Some f -> [ (Filename.basename f, script_of_file f) ]
            | scripts, None ->
                List.mapi
                  (fun i s -> (Printf.sprintf "script%d" (i + 1), s))
                  scripts
            | _ :: _, Some _ -> fail "--script and --file are mutually exclusive"
          in
          let jobs = resolve_jobs jobs in
          ctx "jobs" (Obs.Json.Int jobs);
          ctx "portfolio" (Obs.Json.Int (List.length specs));
          ctx "cost" (Obs.Json.String cost);
          let winner, outcomes =
            try Core.Mig_flows.portfolio ~jobs ~cost specs mig
            with Invalid_argument msg -> fail "%s" msg
          in
          (match List.find_opt (fun o -> o.Flow.o_winner) outcomes with
          | Some o ->
              res "winner" (Obs.Json.String o.Flow.o_label);
              res "winner_cost" (Obs.Json.Float o.Flow.o_cost)
          | None -> ());
          Format.printf "portfolio: %d entrants, cost %s, %d worker domain%s@."
            (List.length specs) cost jobs (if jobs = 1 then "" else "s");
          List.iter
            (fun o ->
              Format.printf "  %-18s cost %10.1f  %6.2f s%s@." o.Flow.o_label
                o.Flow.o_cost o.Flow.o_seconds
                (if o.Flow.o_winner then "  <- winner" else ""))
            outcomes;
          winner
        end
        else begin
          let text =
            match (scripts, file) with
            | [ s ], None -> s
            | [], Some f -> script_of_file f
            | _ :: _ :: _, _ -> fail "repeated --script requires --portfolio"
            | _ :: _, Some _ -> fail "--script and --file are mutually exclusive"
            | [], None -> fail "one of --script, --file or --list-passes is required"
          in
          let flow =
            match Core.Mig_flows.parse text with
            | Ok flow -> flow
            | Error e -> fail "%a" Flow.Script.pp_error e
          in
          let result = Core.Mig_flows.run ~name:"script" flow mig in
          Format.printf "flow: %s@." (Flow.Script.to_string flow);
          result
        end
      in
      if not (Core.Mig_equiv.equivalent_network optimized net) then
        failwith "internal error: the flow changed the function";
      let size, depth = Core.Mig_passes.size_and_depth optimized in
      res "size" (Obs.Json.Int size);
      res "depth" (Obs.Json.Int depth);
      Format.printf "  MIG: %d -> %d gates, depth %d -> %d@." before_size size
        before_depth depth;
      List.iter
        (fun realization ->
          let r =
            try Rram.Compile_mig.compile ~arch realization optimized
            with Invalid_argument msg -> fail "%s" (strip_compile_prefix msg)
          in
          let verdict =
            if no_verify then ""
            else
              match Rram.Verify.against_network r.Rram.Compile_mig.program net with
              | Ok () -> " (verified against the source netlist)"
              | Error e -> failwith ("verification failed: " ^ e)
          in
          Format.printf "  %a: %a, program %d RRAMs %d steps%s@."
            Core.Rram_cost.pp_realization realization Core.Rram_cost.pp
            r.Rram.Compile_mig.analytic r.Rram.Compile_mig.measured_rrams
            r.Rram.Compile_mig.measured_steps verdict)
        [ Core.Rram_cost.Imp; Core.Rram_cost.Maj ];
      if stats then begin
        (* O(1) reads off the maintained analysis of the result graph *)
        let an = Core.Mig_analysis.of_mig optimized in
        let imp = Core.Rram_cost.of_mig Core.Rram_cost.Imp optimized in
        let maj = Core.Rram_cost.of_mig Core.Rram_cost.Maj optimized in
        Format.printf
          "stats: size=%d depth=%d r_imp=%d s_imp=%d r_maj=%d s_maj=%d@."
          (Core.Mig_analysis.size an) (Core.Mig_analysis.depth an)
          imp.Core.Rram_cost.rrams imp.Core.Rram_cost.steps
          maj.Core.Rram_cost.rrams maj.Core.Rram_cost.steps
      end;
      match dump_out with
      | None -> ()
      | Some f ->
          Io.Blif.write_file ~model_name:"flow" f (Core.Mig_to_network.export optimized);
          Format.printf "wrote %s@." f
    end
  in
  Cmd.v
    (Cmd.info "flow"
       ~doc:
         "Optimize a netlist with a user-written flow script composed from \
          the registered passes (cycle / every / accept_if combinators), or \
          race several scripts with --portfolio; --list-passes prints the \
          vocabulary.")
    Term.(
      const run $ obs_term $ script_arg $ file_arg $ list_arg $ portfolio_arg
      $ cost_arg $ effort_arg $ jobs_arg $ arch_arg $ out_arg $ no_verify_arg
      $ stats_arg $ input_opt_arg)

(* ---------------- map ---------------- *)

let map_cmd =
  let dump_arg =
    Arg.(value & flag & info [ "p"; "program" ] ~doc:"Dump the full program listing.")
  in
  let no_verify_arg =
    Arg.(value & flag & info [ "no-verify" ] ~doc:"Skip simulator verification.")
  in
  let run obs path alg effort realization arch dump no_verify =
    with_obs ~sub:"map" obs @@ fun () ->
    ctx "input" (Obs.Json.String path);
    ctx "algorithm" (Obs.Json.String (Core.Mig_opt.algorithm_name alg));
    ctx "effort" (Obs.Json.Int effort);
    let arch = parse_arch_or_fail ~sub:"map" arch in
    ctx "arch" (Obs.Json.String (Core.Rram_cost.arch_to_string arch));
    let net = parse_netlist path in
    let mig = Core.Mig_opt.run ~effort alg (Core.Mig_of_network.convert net) in
    let program, placement =
      match arch with
      | Core.Rram_cost.Unbounded_serial ->
          let r = Rram.Compile_mig.compile realization mig in
          res "rrams" (Obs.Json.Int r.Rram.Compile_mig.measured_rrams);
          res "steps" (Obs.Json.Int r.Rram.Compile_mig.measured_steps);
          Format.printf
            "%a realization after %s optimization:@.  Table I: %a@.  program: %d RRAMs, %d steps@."
            Core.Rram_cost.pp_realization realization
            (Core.Mig_opt.algorithm_name alg) Core.Rram_cost.pp
            r.Rram.Compile_mig.analytic r.Rram.Compile_mig.measured_rrams
            r.Rram.Compile_mig.measured_steps;
          (r.Rram.Compile_mig.program, Rram.Placement.place r.Rram.Compile_mig.program)
      | Core.Rram_cost.Crossbar _ -> (
          match Rram.Compile_crossbar.compile ~arch realization mig with
          | Error e ->
              prerr_endline ("migsyn map: error: " ^ e);
              exit 1
          | Ok c ->
              let m = c.Rram.Compile_crossbar.measured in
              res "rrams" (Obs.Json.Int m.Core.Rram_cost.devices);
              res "steps" (Obs.Json.Int m.Core.Rram_cost.latency);
              res "waves" (Obs.Json.Int c.Rram.Compile_crossbar.waves);
              Format.printf
                "%a realization after %s optimization, %s crossbar:@.  Table I (serial): %a@.  analytic: %a@.  measured: %a, %d waves@."
                Core.Rram_cost.pp_realization realization
                (Core.Mig_opt.algorithm_name alg)
                (Core.Rram_cost.arch_to_string arch) Core.Rram_cost.pp
                c.Rram.Compile_crossbar.serial Core.Rram_cost.pp_triple
                c.Rram.Compile_crossbar.analytic Core.Rram_cost.pp_triple m
                c.Rram.Compile_crossbar.waves;
              let placement = c.Rram.Compile_crossbar.placement in
              (match
                 Rram.Program.validate
                   ~row_of:placement.Rram.Placement.row_of
                   c.Rram.Compile_crossbar.program
               with
              | Ok () -> Format.printf "  row discipline: one gate pulse per row per step@."
              | Error e -> failwith ("internal error: " ^ e));
              (c.Rram.Compile_crossbar.program, placement))
    in
    let counts = Rram.Energy.static_counts program in
    Format.printf
      "  pulses: %d loads, %d resets, %d IMP, %d MAJ (static energy %.1f a.u.)@."
      counts.Rram.Energy.loads counts.Rram.Energy.resets counts.Rram.Energy.imps
      counts.Rram.Energy.maj_pulses
      (Rram.Energy.static_energy program);
    Format.printf "  placement: %a@." Rram.Placement.pp placement;
    if not no_verify then begin
      match Rram.Verify.against_network program net with
      | Ok () -> Format.printf "  verified against the source netlist@."
      | Error e -> failwith ("verification failed: " ^ e)
    end;
    if dump then Format.printf "@.%a@." Rram.Program.pp program
  in
  Cmd.v (Cmd.info "map" ~doc:"Compile a netlist to an RRAM program")
    Term.(
      const run $ obs_term $ input_arg $ algorithm_arg $ effort_arg
      $ realization_arg $ arch_arg $ dump_arg $ no_verify_arg)

(* ---------------- compare ---------------- *)

let compare_cmd =
  let run obs path effort =
    with_obs ~sub:"compare" obs @@ fun () ->
    ctx "input" (Obs.Json.String path);
    ctx "effort" (Obs.Json.Int effort);
    let net = parse_netlist path in
    let mig = Core.Mig_of_network.convert net in
    let rram_maj = Core.Mig_opt.rram_costs ~effort Core.Rram_cost.Maj mig in
    let rram_imp = Core.Mig_opt.rram_costs ~effort Core.Rram_cost.Imp mig in
    let maj = Rram.Compile_mig.compile Core.Rram_cost.Maj rram_maj in
    let imp = Rram.Compile_mig.compile Core.Rram_cost.Imp rram_imp in
    Format.printf "MIG-MAJ: %d RRAMs %d steps@.MIG-IMP: %d RRAMs %d steps@."
      maj.Rram.Compile_mig.measured_rrams maj.Rram.Compile_mig.measured_steps
      imp.Rram.Compile_mig.measured_rrams imp.Rram.Compile_mig.measured_steps;
    (try
       let built =
         Bdd_lib.Bdd_of_network.build ~max_nodes:1_000_000
           ~perm:(Bdd_lib.Bdd_order.order Bdd_lib.Bdd_order.Dfs net)
           net
       in
       let lev = Rram.Compile_bdd.compile ~mode:`Levelized built in
       let seq = Rram.Compile_bdd.compile ~mode:`Sequential built in
       Format.printf "BDD [11]: %d nodes, %d RRAMs %d steps (levelized), %d steps (sequential)@."
         lev.Rram.Compile_bdd.bdd_nodes lev.Rram.Compile_bdd.measured_rrams
         lev.Rram.Compile_bdd.measured_steps seq.Rram.Compile_bdd.measured_steps
     with Bdd_lib.Bdd.Limit_exceeded -> Format.printf "BDD [11]: overflow (> 1M nodes)@.");
    let aig =
      Aig_lib.Aig_balance.balance
        (Aig_lib.Aig_rewrite.rewrite (Aig_lib.Aig_of_network.convert net))
    in
    let a = Rram.Compile_aig.compile ~mode:`Sequential aig in
    Format.printf "AIG [12]: %d ANDs, %d RRAMs %d steps (sequential)@."
      a.Rram.Compile_aig.aig_nodes a.Rram.Compile_aig.measured_rrams
      a.Rram.Compile_aig.measured_steps
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Compare the MIG flow against the BDD and AIG baselines")
    Term.(const run $ obs_term $ input_arg $ effort_arg)

(* ---------------- plim ---------------- *)

let plim_cmd =
  let dump_arg =
    Arg.(value & flag & info [ "p"; "program" ] ~doc:"Dump the RM3 instruction stream.")
  in
  let run obs path alg effort dump =
    with_obs ~sub:"plim" obs @@ fun () ->
    ctx "input" (Obs.Json.String path);
    let net = parse_netlist path in
    let mig = Core.Mig_opt.run ~effort alg (Core.Mig_of_network.convert net) in
    let c = Rram.Plim.compile mig in
    res "rm3_instructions" (Obs.Json.Int c.Rram.Plim.instructions);
    res "cells_used" (Obs.Json.Int c.Rram.Plim.cells_used);
    Format.printf
      "PLiM compilation after %s optimization:@.  %d RM3 instructions, %d cells (%.2f RM3/gate over %d gates)@."
      (Core.Mig_opt.algorithm_name alg) c.Rram.Plim.instructions c.Rram.Plim.cells_used
      c.Rram.Plim.rm3_per_gate (Core.Mig.size mig);
    (match Rram.Plim.verify c.Rram.Plim.program mig with
    | Ok () -> Format.printf "  verified on the PLiM machine model@."
    | Error e -> failwith ("verification failed: " ^ e));
    if dump then Format.printf "@.%a@." Rram.Plim.pp_program c.Rram.Plim.program
  in
  Cmd.v
    (Cmd.info "plim"
       ~doc:"Compile to an RM3 instruction stream for the PLiM computer [15]")
    Term.(const run $ obs_term $ input_arg $ algorithm_arg $ effort_arg $ dump_arg)

(* ---------------- export ---------------- *)

let export_cmd =
  let format_conv =
    let parse = function
      | ("dot" | "verilog" | "blif" | "bench" | "aag" | "aig") as s -> Ok s
      | s -> Error (`Msg ("unknown export format " ^ s))
    in
    Arg.conv (parse, Format.pp_print_string)
  in
  let format_arg =
    Arg.(
      value & opt format_conv "dot"
      & info [ "f"; "format" ] ~docv:"FMT"
          ~doc:"Output format: dot, verilog, blif, bench, aag or aig.")
  in
  let out_arg =
    Arg.(
      required & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let run obs path alg effort fmt out =
    with_obs ~sub:"export" obs @@ fun () ->
    ctx "input" (Obs.Json.String path);
    ctx "format" (Obs.Json.String fmt);
    let net = parse_netlist path in
    let mig = Core.Mig_opt.run ~effort alg (Core.Mig_of_network.convert net) in
    let contents =
      match fmt with
      | "dot" -> Io.Export.mig_to_dot mig
      | "verilog" -> Io.Export.mig_to_verilog ~module_name:"mig" mig
      | "blif" -> Io.Blif.write_string ~model_name:"mig" (Core.Mig_to_network.export mig)
      | "bench" -> Io.Bench_format.write_string (Core.Mig_to_network.export mig)
      | "aag" ->
          Io.Aiger.write_aig
            (Aig_lib.Aig_of_network.convert (Core.Mig_to_network.export mig))
      | "aig" ->
          Io.Aiger.write_aig_binary
            (Aig_lib.Aig_of_network.convert (Core.Mig_to_network.export mig))
      | _ -> assert false
    in
    Io.Export.write_file out contents;
    Format.printf "wrote %s (%s) after %s optimization@." out fmt
      (Core.Mig_opt.algorithm_name alg)
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Export the optimized MIG as DOT/Verilog/BLIF/bench/AIGER (aag or aig)")
    Term.(
      const run $ obs_term $ input_arg $ algorithm_arg $ effort_arg $ format_arg
      $ out_arg)

(* ---------------- gen ---------------- *)

let gen_cmd =
  let gates_arg =
    Arg.(
      value & opt int 10_000
      & info [ "gates" ] ~docv:"N"
          ~doc:
            "Gate count of the generated circuit. The large-N tiers used by \
             the scale benchmarks are 10000 and 100000; generation is \
             linear in N.")
  in
  let seed_arg =
    Arg.(
      value & opt string "scale"
      & info [ "seed" ] ~docv:"NAME"
          ~doc:
            "Generator seed string. Equal seeds (with equal shape options) \
             produce byte-identical circuits on every machine.")
  in
  let inputs_arg =
    Arg.(
      value & opt int 0
      & info [ "inputs" ] ~docv:"N"
          ~doc:
            "Primary inputs. 0 (the default) generates the scale-tier \
             layered circuit with about N/64 inputs; an explicit shape \
             switches to the windowed random generator.")
  in
  let outputs_arg =
    Arg.(
      value & opt int 0
      & info [ "outputs" ] ~docv:"N"
          ~doc:
            "Primary outputs. 0 (the default) generates the scale-tier \
             layered circuit with about N/128 outputs; an explicit shape \
             switches to the windowed random generator.")
  in
  let out_arg =
    Arg.(
      required & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Output netlist; the extension picks the format (.blif, .bench, .aag or .aig).")
  in
  let run obs gates seed inputs outputs out =
    if gates < 1 then
      failwith (Printf.sprintf "--gates must be at least 1 (got %d)" gates);
    if inputs < 0 then
      failwith (Printf.sprintf "--inputs must be non-negative (got %d)" inputs);
    if outputs < 0 then
      failwith (Printf.sprintf "--outputs must be non-negative (got %d)" outputs);
    with_obs ~sub:"gen" obs @@ fun () ->
    ctx "seed" (Obs.Json.String seed);
    ctx "gates" (Obs.Json.Int gates);
    let net =
      Obs.with_span ~cat:"gen" "gen/generate" (fun () ->
          if inputs = 0 && outputs = 0 then
            Io.Gen.scale_network ~name:seed ~gates ()
          else
            let inputs = if inputs = 0 then max 16 (gates / 64) else inputs in
            let outputs = if outputs = 0 then max 8 (gates / 128) else outputs in
            Io.Gen.random_network ~name:seed ~inputs ~gates ~outputs ())
    in
    let contents =
      match Filename.extension out with
      | ".blif" -> Io.Blif.write_string ~model_name:seed net
      | ".bench" -> Io.Bench_format.write_string net
      | ".aag" -> Io.Aiger.write_network net
      | ".aig" -> Io.Aiger.write_network_binary net
      | ext ->
          failwith
            (Printf.sprintf
               "%s: unsupported output extension %s (expected .blif, .bench, .aag or .aig)"
               out ext)
    in
    write_text out contents;
    res "gates" (Obs.Json.Int (Logic.Network.num_gates net));
    res "inputs" (Obs.Json.Int (Logic.Network.num_inputs net));
    res "outputs" (Obs.Json.Int (Logic.Network.num_outputs net));
    Format.printf "wrote %s (seed %s: %a)@." out seed Logic.Network.pp_stats net
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:
         "Generate a seeded synthetic netlist (deterministic in --seed), \
          including the 10^4/10^5-gate large-N tiers used by the scale \
          benchmarks")
    Term.(
      const run $ obs_term $ gates_arg $ seed_arg $ inputs_arg $ outputs_arg
      $ out_arg)

(* ---------------- faults ---------------- *)

let faults_cmd =
  let rate_arg =
    Arg.(
      value & opt float 0.01
      & info [ "rate" ] ~docv:"R"
          ~doc:"Center per-cell stuck-at probability for the yield experiment.")
  in
  let trials_arg =
    Arg.(
      value & opt int 200
      & info [ "trials" ] ~docv:"N" ~doc:"Monte-Carlo trials per fault rate.")
  in
  let seed_arg =
    Arg.(value & opt int 0xFA17 & info [ "seed" ] ~docv:"S" ~doc:"PRNG seed.")
  in
  let attempts_arg =
    Arg.(
      value & opt int 4
      & info [ "max-attempts" ] ~docv:"N"
          ~doc:"Verification rounds of the resilient executor's remap/retry loop.")
  in
  let run obs path alg effort realization rate trials seed attempts =
    if not (Float.is_finite rate && rate >= 0.0 && rate <= 1.0) then
      failwith (Printf.sprintf "--rate must be a probability in [0, 1] (got %g)" rate);
    if trials < 1 then
      failwith (Printf.sprintf "--trials must be at least 1 (got %d)" trials);
    if attempts < 1 then
      failwith (Printf.sprintf "--max-attempts must be at least 1 (got %d)" attempts);
    with_obs ~sub:"faults" obs @@ fun () ->
    ctx "input" (Obs.Json.String path);
    ctx "rate" (Obs.Json.Float rate);
    ctx "trials" (Obs.Json.Int trials);
    ctx "seed" (Obs.Json.Int seed);
    let net = parse_netlist path in
    let mig = Core.Mig_opt.run ~effort alg (Core.Mig_of_network.convert net) in
    let r = Rram.Compile_mig.compile realization mig in
    let program = r.Rram.Compile_mig.program in
    let reference = Core.Mig_sim.eval mig in
    let tmr = Rram.Tmr.protect program in
    Format.printf
      "%a realization after %s optimization: %d RRAMs, %d steps@.TMR-protected: %d RRAMs, %d steps (%d voted outputs)@."
      Core.Rram_cost.pp_realization realization (Core.Mig_opt.algorithm_name alg)
      program.Rram.Program.num_regs (Rram.Program.num_steps program)
      tmr.Rram.Tmr.program.Rram.Program.num_regs
      (Rram.Program.num_steps tmr.Rram.Tmr.program)
      tmr.Rram.Tmr.voters;
    (* Single-defect repair demo: find a stuck-at fault that breaks the
       program, then let the resilient executor repair it.  The vectors
       follow --seed so the whole run replays under the same flag. *)
    let vectors = Rram.Verify.vectors ~seed program.Rram.Program.num_inputs in
    let breaking = ref None in
    (try
       for cell = 0 to program.Rram.Program.num_regs - 1 do
         List.iter
           (fun value ->
             let f = { Rram.Faults.cell; value } in
             if not (Rram.Faults.survives program ~reference [ f ] vectors) then begin
               breaking := Some f;
               raise Exit
             end)
           [ true; false ]
       done
     with Exit -> ());
    Format.printf "@.Repair demo (resilient executor, max %d attempts):@." attempts;
    (match !breaking with
    | None ->
        Format.printf
          "  no single stuck-at defect changes the outputs — nothing to repair@."
    | Some ({ Rram.Faults.cell; value } as f) ->
        Format.printf "  injected defect: cell %d stuck-at-%d@." cell
          (if value then 1 else 0);
        let env = Rram.Resilient.env_of_defects (Rram.Faults.to_defects [ f ]) in
        let report =
          Rram.Resilient.run ~max_attempts:attempts ~vectors env program ~reference
        in
        Format.printf "  mismatch detected against the reference@.";
        Format.printf "  diagnosed faulty cell(s): %s@."
          (String.concat ", " (List.map string_of_int report.Rram.Resilient.diagnosed));
        List.iter
          (fun (from, to_) -> Format.printf "  remapped cell %d -> spare %d@." from to_)
          report.Rram.Resilient.moves;
        if report.Rram.Resilient.ok then
          Format.printf "  re-verified OK after %d attempt(s)@."
            report.Rram.Resilient.attempts
        else begin
          let trusted =
            report.Rram.Resilient.trusted |> Array.to_list
            |> List.mapi (fun i t -> (i, t))
            |> List.filter_map (fun (i, t) -> if t then Some (string_of_int i) else None)
          in
          Format.printf "  repair FAILED after %d attempts; trusted outputs: %s@."
            report.Rram.Resilient.attempts
            (if trusted = [] then "none" else String.concat ", " trusted)
        end);
    let rates = [ rate /. 3.0; rate; rate *. 3.0 ] in
    Format.printf
      "@.Monte-Carlo functional yield (%d trials per rate, %d test vectors, seed %#x):@."
      trials (List.length vectors) seed;
    let rows =
      List.map
        (fun rate ->
          Rram.Faults.yield_comparison ~seed ~trials ~max_attempts:attempts ~rate program
            ~reference)
        rates
    in
    Format.printf "@[<v>%a@]@." Exp.Ablation.pp_yield_curve rows
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Fault-tolerance experiment: repair a stuck-at defect by remapping, and \
          compare Monte-Carlo yield of baseline vs resilient vs TMR execution")
    Term.(
      const run $ obs_term $ input_arg $ algorithm_arg $ effort_arg
      $ realization_arg $ rate_arg $ trials_arg $ seed_arg $ attempts_arg)

(* ---------------- montecarlo ---------------- *)

let montecarlo_cmd =
  let open Exp.Montecarlo in
  let trials_arg =
    Arg.(
      value & opt int default.trials
      & info [ "trials" ] ~docv:"N" ~doc:"Monte-Carlo trials per sigma point.")
  in
  let sigma_arg =
    Arg.(
      value & opt_all float []
      & info [ "sigma" ] ~docv:"S"
          ~doc:
            "Variability scale (repeatable): multiplies the lognormal \
             LRS/HRS shapes of the device model. 0 is a uniform array, 1 \
             the nominal spread. Default: 0.25 0.5 1.0 1.5.")
  in
  let seed_arg =
    Arg.(
      value & opt int default.seed
      & info [ "seed" ] ~docv:"S"
          ~doc:
            "Campaign master seed. Trial $(i,t) draws from the split \
             stream $(i,split(S, t)) whatever $(b,--jobs) is, so equal \
             seeds replay bit-identical campaigns.")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the campaign as JSON (schema migsyn-montecarlo/1). \
             Deterministic except the top-level wall_seconds member.")
  in
  let vectors_arg =
    Arg.(
      value & opt int default.vectors
      & info [ "vectors" ] ~docv:"N" ~doc:"Test vectors evaluated per execution.")
  in
  let attempts_arg =
    Arg.(
      value & opt int default.max_attempts
      & info [ "max-attempts" ] ~docv:"N"
          ~doc:"Verification rounds of the resilient controller's remap/retry loop.")
  in
  let run obs path alg effort realization trials sigmas seed jobs json vectors
      attempts =
    let config =
      {
        default with
        trials;
        sigmas = (if sigmas = [] then default.sigmas else sigmas);
        seed;
        jobs = Some (resolve_jobs jobs);
        effort;
        algorithm = alg;
        realization;
        vectors;
        max_attempts = attempts;
      }
    in
    (match validate config with Ok () -> () | Error e -> failwith e);
    with_obs ~sub:"montecarlo" obs @@ fun () ->
    ctx "input" (Obs.Json.String path);
    ctx "trials" (Obs.Json.Int config.trials);
    ctx "seed" (Obs.Json.Int config.seed);
    ctx "jobs" (Obs.Json.Int (Option.value config.jobs ~default:1));
    ctx "sigmas"
      (Obs.Json.List (List.map (fun s -> Obs.Json.Float s) config.sigmas));
    let net = parse_netlist path in
    let campaign = run ~config ~name:(Filename.basename path) net in
    (* Manifest summary: per-sigma yield of every arm — the campaign's
       deterministic signature, comparable across runs by migsyn report. *)
    res "universe" (Obs.Json.Int campaign.universe);
    List.iter
      (fun p ->
        List.iter
          (fun a ->
            res
              (Printf.sprintf "yield.sigma=%g.%s" p.sigma a.arm)
              (Obs.Json.Float a.estimate.yield))
          p.arms)
      campaign.points;
    Format.printf "%a@." pp campaign;
    match json with
    | None -> ()
    | Some file ->
        Obs.write_json file (to_json campaign);
        Format.printf "wrote campaign %s@." file
  in
  Cmd.v
    (Cmd.info "montecarlo"
       ~doc:
         "Monte-Carlo yield campaign over statistical device variability: \
          sample lognormal LRS/HRS spreads, sense noise and endurance drift \
          per device, and measure functional yield vs sigma for bare IMP/MAJ \
          execution, the resilient controller (plain and wear-aware \
          remapping) and TMR, with Wilson 95% confidence intervals. \
          Bit-reproducible for any --jobs at a fixed --seed.")
    Term.(
      const run $ obs_term $ input_arg $ algorithm_arg $ effort_arg
      $ realization_arg $ trials_arg $ sigma_arg $ seed_arg $ jobs_arg $ json_arg
      $ vectors_arg $ attempts_arg)

(* ---------------- profile ---------------- *)

let profile_cmd =
  let vectors_arg =
    Arg.(
      value & opt int 64
      & info [ "vectors" ] ~docv:"N"
          ~doc:"Maximum number of input vectors executed on the device simulator.")
  in
  let flow_arg =
    Arg.(
      value & opt (some string) None
      & info [ "flow" ] ~docv:"SCRIPT"
          ~doc:
            "Optimize with a flow script instead of the named algorithm \
             (see $(b,migsyn flow --list-passes)).")
  in
  let run obs path alg effort realization arch max_vectors flow_script =
    (* profile always observes, with or without export flags *)
    Obs.set_enabled true;
    Obs.reset ();
    with_obs ~sub:"profile" obs @@ fun () ->
    ctx "input" (Obs.Json.String path);
    ctx "effort" (Obs.Json.Int effort);
    let arch = parse_arch_or_fail ~sub:"profile" arch in
    ctx "arch" (Obs.Json.String (Core.Rram_cost.arch_to_string arch));
    let flow =
      Option.map
        (fun text ->
          match Core.Mig_flows.parse text with
          | Ok flow -> flow
          | Error e ->
              Format.eprintf "migsyn profile: error: %a@." Flow.Script.pp_error e;
              exit 1)
        flow_script
    in
    let net =
      Obs.with_span ~cat:"profile" "profile/parse" (fun () -> parse_netlist path)
    in
    let mig = Core.Mig_of_network.convert net in
    let initial_size, initial_depth = Core.Mig.size mig, (Core.Mig_levels.compute mig).Core.Mig_levels.depth in
    let optimized =
      Obs.with_span ~cat:"profile" "profile/optimize" (fun () ->
          match flow with
          | Some flow -> Core.Mig_flows.run ~name:"script" flow mig
          | None -> Core.Mig_opt.run ~effort alg mig)
    in
    let size, depth =
      (Core.Mig.size optimized, (Core.Mig_levels.compute optimized).Core.Mig_levels.depth)
    in
    res "size" (Obs.Json.Int size);
    res "depth" (Obs.Json.Int depth);
    let compiled =
      Obs.with_span ~cat:"profile" "profile/compile" (fun () ->
          try Rram.Compile_mig.compile ~arch realization optimized
          with Invalid_argument msg ->
            prerr_endline
              ("migsyn profile: error: " ^ strip_compile_prefix msg);
            exit 1)
    in
    let program = compiled.Rram.Compile_mig.program in
    let reference = Core.Mig_sim.eval optimized in
    let vectors =
      List.filteri (fun i _ -> i < max_vectors)
        (Rram.Verify.vectors program.Rram.Program.num_inputs)
    in
    let mismatches =
      Obs.with_span ~cat:"profile" "profile/execute"
        ~args:[ ("vectors", Obs.Json.Int (List.length vectors)) ]
        (fun () ->
          List.fold_left
            (fun bad v ->
              if Rram.Interp.run program v = reference v then bad else bad + 1)
            0 vectors)
    in
    Format.printf
      "profile: %s, %s optimization (effort %d), %a realization@.  MIG: %d -> %d gates, depth %d -> %d@.  program: %d RRAMs, %d steps (analytic %a)@.  executed %d vectors on the device simulator: %s@.@."
      (Filename.basename path)
      (match flow_script with
      | Some script -> "flow '" ^ script ^ "'"
      | None -> Core.Mig_opt.algorithm_name alg)
      effort Core.Rram_cost.pp_realization realization initial_size size initial_depth
      depth program.Rram.Program.num_regs
      (Rram.Program.num_steps program)
      Core.Rram_cost.pp compiled.Rram.Compile_mig.analytic (List.length vectors)
      (if mismatches = 0 then "all match the MIG semantics"
       else Printf.sprintf "%d MISMATCHES" mismatches);
    Format.printf "%a@." Obs.pp_report ();
    if mismatches > 0 then failwith "profiled program diverged from the MIG semantics"
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run the optimize + compile + execute pipeline with the observability \
          layer on and print a timing/counter report. Combine with --trace and \
          --metrics for machine-readable output.")
    Term.(
      const run $ obs_term $ input_arg $ algorithm_arg $ effort_arg
      $ realization_arg $ arch_arg $ vectors_arg $ flow_arg)

(* ---------------- bench ---------------- *)

let bench_cmd =
  let names_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"NAME" ~doc:"Benchmark names.")
  in
  let run obs effort jobs names =
    with_obs ~sub:"bench" obs @@ fun () ->
    ctx "effort" (Obs.Json.Int effort);
    ctx "jobs" (Obs.Json.Int (resolve_jobs jobs));
    let entries =
      match names with
      | [] -> Io.Benchmarks.table2
      | names ->
          List.filter_map
            (fun n ->
              match Io.Benchmarks.find n with
              | Some e -> Some e
              | None ->
                  Format.printf "unknown benchmark %s@." n;
                  None)
            names
    in
    let rows =
      Par.map ~jobs:(resolve_jobs jobs) (Exp.Experiments.table2_row ~effort) entries
    in
    Format.printf "%a@." Exp.Experiments.pp_table2 rows
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Run the paper's Table II flow for named benchmarks")
    Term.(const run $ obs_term $ effort_arg $ jobs_arg $ names_arg)

(* ---------------- crossbar ---------------- *)

let crossbar_cmd =
  let names_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"NAME"
          ~doc:"Benchmark names (default: the whole Table II suite).")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the comparison as JSON (schema migsyn-crossbar/1, \
             consumable by $(b,migsyn report)).")
  in
  let run obs effort jobs realization names json =
    with_obs ~sub:"crossbar" obs @@ fun () ->
    ctx "effort" (Obs.Json.Int effort);
    let jobs = resolve_jobs jobs in
    ctx "jobs" (Obs.Json.Int jobs);
    let entries =
      match names with
      | [] -> Io.Benchmarks.table2
      | names ->
          List.map
            (fun n ->
              match Io.Benchmarks.find n with
              | Some e -> e
              | None ->
                  prerr_endline ("migsyn crossbar: error: unknown benchmark " ^ n);
                  exit 1)
            names
    in
    let t = Exp.Crossbar.run ~effort ~realization ~jobs ~entries () in
    Format.printf "%a@." Exp.Crossbar.pp t;
    let unverified =
      List.concat_map
        (fun r ->
          List.filter_map
            (fun p ->
              if p.Exp.Crossbar.p_verified then None
              else
                Some
                  (r.Exp.Crossbar.name ^ " @ "
                  ^ Core.Rram_cost.arch_to_string p.Exp.Crossbar.p_arch))
            r.Exp.Crossbar.points)
        t.Exp.Crossbar.rows
    in
    res "benchmarks" (Obs.Json.Int (List.length t.Exp.Crossbar.rows));
    res "unverified" (Obs.Json.Int (List.length unverified));
    (match json with
    | Some file ->
        Obs.write_json file (Exp.Crossbar.to_json t);
        Format.printf "wrote %s@." file
    | None -> ());
    if unverified <> [] then
      failwith ("crossbar programs failed verification: " ^ String.concat ", " unverified)
  in
  Cmd.v
    (Cmd.info "crossbar"
       ~doc:
         "Compare the unbounded-serial target against crossbar-constrained \
          mapping on the paper's benchmarks: the fitted (minimum-latency) \
          array plus half- and quarter-row geometries, every program \
          re-verified on the device simulator and marked Pareto-optimal or \
          dominated in the (devices, latency, utilization) space.")
    Term.(
      const run $ obs_term $ effort_arg $ jobs_arg $ realization_arg
      $ names_arg $ json_arg)

(* ---------------- report ---------------- *)

let report_cmd =
  let baseline_arg =
    Arg.(
      required & opt (some file) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Baseline source: a run ledger, a run manifest, or a committed \
             baseline document (BENCH_opt.json, MONTECARLO_golden.json, a \
             bench --json profile).")
  in
  let current_arg =
    Arg.(
      required & opt (some file) None
      & info [ "current" ] ~docv:"FILE"
          ~doc:"Current source to judge against the baseline (same formats).")
  in
  let threshold_arg =
    Arg.(
      value & opt float 0.25
      & info [ "threshold" ] ~docv:"T"
          ~doc:
            "Relative slow-down a wall-time metric may show before it \
             counts as a regression (0.25 = 25%). Deterministic metrics \
             always compare exactly.")
  in
  let min_time_arg =
    Arg.(
      value & opt float 0.005
      & info [ "min-time" ] ~docv:"SECONDS"
          ~doc:
            "Absolute floor under which wall-time deltas are ignored \
             (scaled to nanoseconds for *_ns metrics): microsecond jitter \
             on a microsecond pass is not signal.")
  in
  let ignore_arg =
    Arg.(
      value & opt_all string []
      & info [ "ignore" ] ~docv:"METRIC"
          ~doc:
            "Drop this metric from the comparison (repeatable), e.g. \
             $(b,--ignore seconds) when diffing a parallel run against a \
             sequential one for determinism only.")
  in
  let md_arg =
    Arg.(
      value & opt (some string) None
      & info [ "md" ] ~docv:"FILE" ~doc:"Also write the Markdown report to FILE.")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the report as JSON (schema migsyn-report/1).")
  in
  let run obs baseline current threshold min_time ignores md json =
    if not (Float.is_finite threshold) || threshold < 0.0 then
      failwith
        (Printf.sprintf "--threshold must be finite and non-negative (got %g)"
           threshold);
    if not (Float.is_finite min_time) || min_time < 0.0 then
      failwith
        (Printf.sprintf "--min-time must be finite and non-negative (got %g)"
           min_time);
    let code =
      with_obs ~sub:"report" obs @@ fun () ->
      ctx "baseline" (Obs.Json.String baseline);
      ctx "current" (Obs.Json.String current);
      let report =
        Exp.Report.compare ~threshold ~min_time ~ignore_metrics:ignores
          ~baseline:(Exp.Report.load baseline) ~current:(Exp.Report.load current)
          ()
      in
      print_string (Exp.Report.to_markdown report);
      res "verdict"
        (Obs.Json.String (if Exp.Report.regressed report then "regressed" else "ok"));
      res "regressions"
        (Obs.Json.Int (List.length report.Exp.Report.rp_regressions));
      (match md with
      | Some file ->
          write_text file (Exp.Report.to_markdown report);
          Format.printf "wrote report %s@." file
      | None -> ());
      (match json with
      | Some file ->
          Obs.write_json file (Exp.Report.to_json report);
          Format.printf "wrote report %s@." file
      | None -> ());
      Exp.Report.exit_code report
    in
    if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Compare two run ledgers, run manifests or committed baseline \
          documents row by row: deterministic metrics must match exactly, \
          wall times may drift within --threshold. Prints a Markdown \
          report and exits 2 on regression, 1 on usage errors, 0 \
          otherwise.")
    Term.(
      const run $ obs_term $ baseline_arg $ current_arg $ threshold_arg
      $ min_time_arg $ ignore_arg $ md_arg $ json_arg)

(* ---------------- serve ---------------- *)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Unix-domain socket path of the daemon. $(b,migsyn serve) binds \
           it (replacing a stale file), $(b,migsyn client) dials it.")

let serve_cmd =
  let jobs_serve_arg =
    Arg.(
      value & opt int 0
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains of the shared synthesis pool. 0 (the default) \
             picks automatically: $(b,MIGSYN_JOBS) if set, else the \
             recommended domain count of this machine.")
  in
  let cache_mb_arg =
    Arg.(
      value & opt int 256
      & info [ "cache-mb" ] ~docv:"MB"
          ~doc:
            "Byte budget of the strash result cache in MiB; least-recently \
             used results are evicted beyond it.")
  in
  let max_request_mb_arg =
    Arg.(
      value & opt int 8
      & info [ "max-request-mb" ] ~docv:"MB"
          ~doc:
            "Request lines beyond this many MiB are answered with an \
             $(b,oversized) error instead of being parsed.")
  in
  let run obs socket jobs cache_mb max_request_mb =
    try
      with_obs ~sub:"serve" obs @@ fun () ->
      if cache_mb < 1 then
        failwith
          (Printf.sprintf "--cache-mb must be at least 1 (got %d)" cache_mb);
      if max_request_mb < 1 then
        failwith
          (Printf.sprintf "--max-request-mb must be at least 1 (got %d)"
             max_request_mb);
      let jobs = resolve_jobs jobs in
      ctx "socket" (Obs.Json.String socket);
      ctx "jobs" (Obs.Json.Int jobs);
      ctx "cache_mb" (Obs.Json.Int cache_mb);
      let stop = ref false in
      let on_signal _ = stop := true in
      (try Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal)
       with Invalid_argument _ | Sys_error _ -> ());
      (try Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal)
       with Invalid_argument _ | Sys_error _ -> ());
      let cfg =
        {
          Serve.Server.socket_path = socket;
          jobs;
          cache_budget_bytes = cache_mb * 1024 * 1024;
          max_request_bytes = max_request_mb * 1024 * 1024;
          stop = (fun () -> !stop);
          on_listening =
            (fun () ->
              Format.printf "migsyn serve: listening on %s (jobs=%d)@." socket
                jobs;
              (* tools waiting for readiness watch stdout *)
              flush stdout);
        }
      in
      let s =
        try Serve.Server.run cfg
        with Unix.Unix_error (err, fn, arg) ->
          failwith
            (Printf.sprintf "%s: %s%s" fn (Unix.error_message err)
               (if arg = "" then "" else " (" ^ arg ^ ")"))
      in
      let c = s.Serve.Server.cache in
      Format.printf
        "migsyn serve: shutting down: %d requests (%d ok, %d errors) in %d \
         batches (max batch %d)@."
        s.Serve.Server.requests s.Serve.Server.ok s.Serve.Server.errors
        s.Serve.Server.batches s.Serve.Server.max_batch;
      Format.printf
        "migsyn serve: cache: %d hits, %d misses, %d coalesced, %d evictions, \
         %d entries, %d bytes@."
        c.Serve.Cache.hits c.Serve.Cache.misses c.Serve.Cache.coalesced
        c.Serve.Cache.evictions c.Serve.Cache.entries c.Serve.Cache.bytes
    with Failure msg ->
      prerr_endline ("migsyn serve: error: " ^ msg);
      exit 1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the synthesis daemon: a Unix-domain-socket server speaking \
          newline-delimited JSON (schema migsyn-serve/1, spec in \
          docs/PROTOCOL.md). Requests carry a circuit in any of the five \
          input formats plus a flow script or algorithm; responses carry \
          the optimized network, the cost triple and the verification \
          status. Results are cached by strash-canonical form, so repeated \
          equivalent requests are answered from memory, bit-identical to a \
          cold synthesis. Stop with SIGINT/SIGTERM or a shutdown request; \
          both flush --ledger manifests with the final request and cache \
          counters.")
    Term.(
      const run $ obs_term $ socket_arg $ jobs_serve_arg $ cache_mb_arg
      $ max_request_mb_arg)

(* ---------------- client ---------------- *)

let client_cmd =
  let op_arg =
    Arg.(
      value
      & opt (enum [ ("synth", `Synth); ("ping", `Ping); ("metrics", `Metrics); ("shutdown", `Shutdown) ]) `Synth
      & info [ "op" ] ~docv:"OP"
          ~doc:"Request op: $(b,synth) (default), $(b,ping), $(b,metrics) or \
                $(b,shutdown).")
  in
  let netlist_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"NETLIST"
          ~doc:"Input netlist for synth requests (.blif, .bench, .pla, .aag \
                or .aig).")
  in
  let flow_args =
    Arg.(
      value & opt_all string []
      & info [ "f"; "flow" ] ~docv:"SCRIPT"
          ~doc:
            "Flow script to run (see $(b,migsyn flow --list-passes)). \
             Repeatable: several scripts race as a portfolio under the \
             request's --cost, exactly like $(b,migsyn flow --portfolio).")
  in
  let algorithm_str_arg =
    Arg.(
      value & opt (some string) None
      & info [ "a"; "algorithm" ] ~docv:"ALG"
          ~doc:
            "Canonical algorithm name instead of --flow (area, depth, \
             rram-costs-imp, rram-costs-maj, steps, bool-rewrite).")
  in
  let effort_opt_arg =
    Arg.(
      value & opt (some int) None
      & info [ "e"; "effort" ] ~docv:"N"
          ~doc:"Optimization effort for --algorithm requests.")
  in
  let cost_arg =
    Arg.(
      value & opt (some string) None
      & info [ "cost" ] ~docv:"COST"
          ~doc:"Portfolio selection cost for multi---flow requests.")
  in
  let inline_arg =
    Arg.(
      value & flag
      & info [ "inline" ]
          ~doc:
            "Send the netlist text inline in the request instead of its \
             path, so the daemon needs no access to the client's \
             filesystem.")
  in
  let repeat_arg =
    Arg.(
      value & opt int 1
      & info [ "repeat" ] ~docv:"N"
          ~doc:
            "Send the request N times over one connection (the second and \
             later responses exercise the daemon's result cache).")
  in
  let stable_arg =
    Arg.(
      value & flag
      & info [ "stable" ]
          ~doc:
            "Strip the volatile envelope members (cache disposition, wall \
             seconds) from each response before printing, leaving only \
             bytes that are identical for hot and cold answers.")
  in
  let id_arg =
    Arg.(
      value & opt (some string) None
      & info [ "id" ] ~docv:"ID" ~doc:"Correlation id echoed in responses.")
  in
  let jobs_req_arg =
    Arg.(
      value & opt int 0
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Per-request worker budget for portfolio requests (capped by \
             the daemon's own --jobs).")
  in
  let no_verify_arg =
    Arg.(
      value & flag
      & info [ "no-verify" ]
          ~doc:"Ask the daemon to skip equivalence verification.")
  in
  let run obs socket op netlist flows algorithm effort jobs cost arch
      realization no_verify inline repeat stable id =
    try
      with_obs ~sub:"client" obs @@ fun () ->
      if repeat < 1 then
        failwith (Printf.sprintf "--repeat must be at least 1 (got %d)" repeat);
      let request =
        match op with
        | `Ping -> { Serve.Protocol.id; op = Serve.Protocol.Ping }
        | `Metrics -> { Serve.Protocol.id; op = Serve.Protocol.Metrics }
        | `Shutdown -> { Serve.Protocol.id; op = Serve.Protocol.Shutdown }
        | `Synth ->
            let path =
              match netlist with
              | Some p -> p
              | None -> failwith "synth requests need a NETLIST argument"
            in
            let circuit =
              if inline then begin
                let format =
                  match Filename.extension path with
                  | "" -> failwith (path ^ ": missing extension")
                  | ext -> String.sub ext 1 (String.length ext - 1)
                in
                let ic = open_in_bin path in
                let source =
                  Fun.protect
                    ~finally:(fun () -> close_in_noerr ic)
                    (fun () -> really_input_string ic (in_channel_length ic))
                in
                Serve.Protocol.Inline { format; source }
              end
              else Serve.Protocol.File path
            in
            {
              Serve.Protocol.id;
              op =
                Serve.Protocol.Synth
                  {
                    circuit;
                    flows;
                    algorithm;
                    effort;
                    jobs = (if jobs <= 0 then None else Some jobs);
                    cost;
                    arch;
                    realization =
                      (match realization with
                      | Core.Rram_cost.Imp -> "imp"
                      | Core.Rram_cost.Maj -> "maj");
                    verify = not no_verify;
                  };
            }
      in
      let line = Serve.Protocol.encode_request request in
      let conn =
        try Serve.Client.connect socket
        with Unix.Unix_error (err, fn, _) ->
          failwith (socket ^ ": " ^ fn ^ ": " ^ Unix.error_message err)
      in
      let saw_error = ref false in
      for _ = 1 to repeat do
        Serve.Client.send_line conn line;
        let response =
          match Obs.Json.of_string (Serve.Client.recv_line conn) with
          | json -> json
          | exception Obs.Json.Parse_error msg ->
              failwith ("invalid response from migsyn serve: " ^ msg)
        in
        (match Obs.Json.member "status" response with
        | Obs.Json.String "ok" -> ()
        | _ -> saw_error := true);
        let shown =
          if stable then Serve.Protocol.strip_volatile response else response
        in
        print_endline (Obs.Json.to_string shown)
      done;
      Serve.Client.close conn;
      if !saw_error then exit 1
    with Failure msg ->
      prerr_endline ("migsyn client: error: " ^ msg);
      exit 1
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send one request to a running $(b,migsyn serve) daemon and print \
          each response line (JSON, schema migsyn-serve/1). The test-harness \
          side of the wire protocol: --repeat demonstrates cache hits, \
          --stable strips the volatile envelope members so hot and cold \
          responses byte-compare equal. Exits 1 if any response carries an \
          error status.")
    Term.(
      const run $ obs_term $ socket_arg $ op_arg $ netlist_arg $ flow_args
      $ algorithm_str_arg $ effort_opt_arg $ jobs_req_arg $ cost_arg
      $ arch_arg $ realization_arg $ no_verify_arg $ inline_arg
      $ repeat_arg $ stable_arg $ id_arg)

let subcommands =
  [
    stats_cmd;
    optimize_cmd;
    flow_cmd;
    map_cmd;
    compare_cmd;
    bench_cmd;
    crossbar_cmd;
    plim_cmd;
    export_cmd;
    gen_cmd;
    faults_cmd;
    montecarlo_cmd;
    profile_cmd;
    report_cmd;
    serve_cmd;
    client_cmd;
  ]

let () =
  let info =
    Cmd.info "migsyn" ~version:"1.0.0"
      ~doc:"MIG-based logic synthesis for RRAM in-memory computing (DATE 2016)"
  in
  (* Bare `migsyn` (or `migsyn --help`) prints the subcommand overview
     instead of a missing-COMMAND error. *)
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let group = Cmd.group ~default info subcommands in
  (* Cmdliner prefixes its diagnostics with the tool name only; capture them
     and name the offending subcommand too, so `migsyn map --bogus` fails
     with `migsyn map: unknown option '--bogus'`. *)
  let err_buf = Buffer.create 256 in
  let err_fmt = Format.formatter_of_buffer err_buf in
  let flush_err () =
    Format.pp_print_flush err_fmt ();
    let msg = Buffer.contents err_buf in
    Buffer.clear err_buf;
    if msg <> "" then begin
      let sub_names = List.map Cmd.name subcommands in
      let renamed =
        if Array.length Sys.argv > 1 && List.mem Sys.argv.(1) sub_names then
          let prefix = "migsyn: " in
          let plen = String.length prefix in
          if String.length msg >= plen && String.sub msg 0 plen = prefix then
            Printf.sprintf "migsyn %s: %s" Sys.argv.(1)
              (String.sub msg plen (String.length msg - plen))
          else msg
        else msg
      in
      prerr_string renamed;
      flush stderr
    end
  in
  (* Expected failures (bad netlists, verification mismatches) exit with a
     one-line diagnostic instead of an OCaml backtrace. *)
  match Cmd.eval ~catch:false ~err:err_fmt group with
  | code ->
      flush_err ();
      exit code
  | exception Failure msg ->
      flush_err ();
      prerr_endline ("migsyn: error: " ^ msg);
      exit 1
  | exception Sys_error msg ->
      flush_err ();
      prerr_endline ("migsyn: error: " ^ msg);
      exit 1
