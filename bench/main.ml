(* Benchmark harness: regenerates every table of the paper's evaluation
   section (§IV) and times the flows with Bechamel.

   Sections:
     1. Table I   — cost-model cross-check (formula vs executed programs)
     2. Table II  — the six optimization columns over the 25-benchmark suite
     3. Table III — comparison with the BDD flow [11] and the AIG flow [12]
     4. §IV-A     — runtime claim ("each algorithm < 3 s for the whole set")
     5. Bechamel  — one Test.make per table

   EFFORT (env var) overrides the paper's effort = 40.
   --json [FILE] additionally writes a machine-readable per-benchmark
   summary (default FILE: BENCH_results.json); CI uploads it as an
   artifact.
   --jobs N fans the per-circuit work of each table over N domains
   (default 1 — the stable-timing baseline).  Row content is bit-identical
   to the sequential run except for the wall-time fields; only the
   elapsed time changes (DESIGN.md §11).
   --ledger FILE (or $MIGSYN_LEDGER) appends a migsyn-run/1 manifest of
   the whole harness run — effort, jobs, table timings, the per-cell
   BENCH_opt measurements and the aggregated span tree — to a JSON-lines
   run ledger, comparable across runs with `migsyn report`. *)

open Bechamel
open Toolkit

let effort =
  match Sys.getenv_opt "EFFORT" with
  | Some v -> int_of_string v
  | None -> Core.Mig_opt.default_effort

let json_path =
  let rec scan = function
    | [] -> None
    | "--json" :: p :: _ when String.length p > 0 && p.[0] <> '-' -> Some p
    | "--json" :: _ -> Some "BENCH_results.json"
    | _ :: rest -> scan rest
  in
  scan (Array.to_list Sys.argv)

let jobs =
  let rec scan = function
    | [] -> 1
    | "--jobs" :: n :: _ -> (
        match int_of_string_opt n with
        | Some n when n >= 1 -> n
        | _ -> failwith "bench: --jobs expects a positive integer")
    | _ :: rest -> scan rest
  in
  scan (Array.to_list Sys.argv)

let ledger_path =
  let rec scan = function
    | [] -> Sys.getenv_opt "MIGSYN_LEDGER"
    | "--ledger" :: p :: _ when String.length p > 0 && p.[0] <> '-' -> Some p
    | "--ledger" :: _ -> failwith "bench: --ledger expects a file path"
    | _ :: rest -> scan rest
  in
  scan (Array.to_list Sys.argv)

(* Custom flows benched side-by-side with the paper's five: named
   flow-script pipelines built from the same pass registry.  The guarded
   variant wraps each Alg. 4 cycle in a weighted-(R,S) acceptance test, the
   flow-level generalization of Alg. 3's move-level criterion. *)
let custom_flows =
  [
    {
      Exp.Experiments.flow_name = "custom/guarded-steps";
      script =
        Printf.sprintf
          "cycle(%d){accept_if(weighted_maj){push_up; omega_i3; omega_i; push_up}}; \
           push_up"
          effort;
    };
    {
      Exp.Experiments.flow_name = "custom/area-then-balance";
      script =
        Printf.sprintf
          "cycle(%d){eliminate; reshape; eliminate}; cycle(%d){balance}; eliminate"
          effort (max 1 (effort / 4));
    };
  ]

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  Printf.printf "MIG-based RRAM synthesis — evaluation harness (effort = %d, jobs = %d)\n"
    effort jobs;

  if ledger_path <> None then begin
    Obs.set_enabled true;
    Obs.reset ();
    Obs.Manifest.start ~tool:"bench" ~subcommand:"harness"
      ~argv:(Array.to_list Sys.argv) ();
    Obs.Manifest.add_context "effort" (Obs.Json.Int effort);
    Obs.Manifest.add_context "jobs" (Obs.Json.Int jobs)
  end;

  section "Table I: cost model cross-check";
  Format.printf "%a@." Exp.Experiments.pp_table1_check ();

  section "Table II: optimization results (25 benchmarks, 6 columns)";
  let t2, t2_time = wall (fun () -> Exp.Experiments.table2 ~effort ~jobs ()) in
  Format.printf "%a@." Exp.Experiments.pp_table2 t2;
  Printf.printf "(Table II computed in %.2f s — all six algorithms over the suite)\n" t2_time;
  Obs.Manifest.add_result "table2_rows" (Obs.Json.Int (List.length t2));
  Obs.Manifest.add_result "table2_seconds" (Obs.Json.Float t2_time);

  section "Table III (left): MIG vs the BDD-based flow [11]";
  let t3b, t3b_time = wall (fun () -> Exp.Experiments.table3_bdd ~effort ~jobs ()) in
  Format.printf "%a@." Exp.Experiments.pp_table3_bdd t3b;
  Printf.printf "(computed in %.2f s)\n" t3b_time;

  section "Table III (right): MIG vs the AIG-based flow [12]";
  let t3a, t3a_time = wall (fun () -> Exp.Experiments.table3_aig ~effort ~jobs ()) in
  Format.printf "%a@." Exp.Experiments.pp_table3_aig t3a;
  Printf.printf "(computed in %.2f s)\n" t3a_time;

  section "End-to-end verification (device simulator vs source networks)";
  Par.map ~jobs
    (fun name ->
      match Io.Benchmarks.find name with
      | None -> Printf.sprintf "  %-10s missing!" name
      | Some e -> (
          match Exp.Experiments.verify_entry e with
          | Ok () -> Printf.sprintf "  %-10s all four compiled programs verified" name
          | Error msg -> Printf.sprintf "  %-10s FAILED: %s" name msg))
    [ "5xp1"; "alu4"; "b9"; "clip"; "cm150a"; "cordic"; "t481"; "rd53f2"; "9sym_d"; "xor5_d" ]
  |> List.iter print_endline;

  section "Runtime claim (paper §IV-A: each algorithm < 3 s on the whole suite)";
  let time_algorithm name run =
    let _, dt =
      wall (fun () ->
          List.iter
            (fun e ->
              let mig = Core.Mig_of_network.convert (e.Io.Benchmarks.build ()) in
              ignore (run mig))
            Io.Benchmarks.table2)
    in
    Printf.printf "  %-24s %.2f s (paper bound: < 3 s)\n%!" name dt
  in
  time_algorithm "area (Alg. 1)" (Core.Mig_opt.area ~effort);
  time_algorithm "depth (Alg. 2)" (Core.Mig_opt.depth ~effort);
  time_algorithm "rram-costs IMP (Alg. 3)"
    (Core.Mig_opt.rram_costs ~effort Core.Rram_cost.Imp);
  time_algorithm "rram-costs MAJ (Alg. 3)"
    (Core.Mig_opt.rram_costs ~effort Core.Rram_cost.Maj);
  time_algorithm "steps (Alg. 4)" (Core.Mig_opt.steps ~effort);
  List.iter
    (fun spec ->
      time_algorithm
        (spec.Exp.Experiments.flow_name ^ " (flow script)")
        (Exp.Experiments.run_flow spec))
    custom_flows;

  (match json_path with
  | None -> ()
  | Some path ->
      section "JSON export (--json)";
      let flows = Exp.Experiments.default_flows ~effort () @ custom_flows in
      let rows, dt = wall (fun () -> Exp.Experiments.profile ~effort ~flows ~jobs ()) in
      Obs.write_json path (Exp.Experiments.profile_json ~effort ~elapsed_seconds:dt rows);
      Printf.printf "  wrote %s (%d benchmarks, per-algorithm wall times; %.2f s)\n" path
        (List.length rows) dt;
      (* Per-algorithm wall times on the largest bundled and generated
         circuits: the perf-regression smoke for the incremental analysis
         core.  The committed BENCH_opt.json is the local baseline; CI
         regenerates it (at its own EFFORT) and uploads it as an artifact. *)
      let opt_path = "BENCH_opt.json" in
      let bundled =
        List.filter_map
          (fun name ->
            Option.map
              (fun e -> (name, fun () -> Core.Mig_of_network.convert (e.Io.Benchmarks.build ())))
              (Io.Benchmarks.find name))
          [ "alu4"; "apex4"; "misex3"; "seq"; "apex6"; "x3" ]
      in
      let generated =
        [
          ("mult8", fun () -> Core.Mig_of_network.convert (Logic.Funcgen.multiplier 8));
          ("mult12", fun () -> Core.Mig_of_network.convert (Logic.Funcgen.multiplier 12));
          ("cla64", fun () -> Core.Mig_of_network.convert (Logic.Funcgen.carry_lookahead_adder 64));
        ]
      in
      (* The large-N tier: seeded Io.Gen synthetics at 10^4 and 10^5 gates.
         These rows are what catches an accidentally reintroduced quadratic
         hot path — on bundled circuits (hundreds of gates) an O(n^2) walk
         is invisible, at 10^5 it is the whole runtime.  The 10^4 tier runs
         the five paper algorithms; the 10^5 tier runs only the canonical
         area flow to keep the harness bounded. *)
      let scale_build gates () =
        Core.Mig_of_network.convert
          (Io.Gen.scale_network ~name:(Printf.sprintf "scale%d" gates) ~gates ())
      in
      let algorithms =
        [
          ("area", fun m -> ignore (Core.Mig_opt.area ~effort m));
          ("depth", fun m -> ignore (Core.Mig_opt.depth ~effort m));
          ("rram-imp", fun m -> ignore (Core.Mig_opt.rram_costs ~effort Core.Rram_cost.Imp m));
          ("rram-maj", fun m -> ignore (Core.Mig_opt.rram_costs ~effort Core.Rram_cost.Maj m));
          ("steps", fun m -> ignore (Core.Mig_opt.steps ~effort m));
          (* Wave scheduling on the fitted geometry: times the crossbar
             backend itself (fit = one unbounded-column scheduling pass,
             then the real compile), not the optimization in front of it. *)
          ( "crossbar-maj",
            fun m ->
              let arch = Rram.Compile_crossbar.fit Core.Rram_cost.Maj m in
              ignore (Rram.Compile_crossbar.compile ~arch Core.Rram_cost.Maj m) );
        ]
        @ List.map
            (fun spec ->
              (spec.Exp.Experiments.flow_name, fun m -> ignore (Exp.Experiments.run_flow spec m)))
            custom_flows
      in
      let paper_algorithms =
        List.filter (fun (alg, _) -> not (String.contains alg '/')) algorithms
      in
      let area_only = List.filter (fun (alg, _) -> alg = "area") algorithms in
      (* One pool task per (circuit, algorithm) cell, in the same order the
         sequential concat_map produced — Par.map keeps that order, so the
         row list differs from a --jobs 1 run only in the "seconds" field. *)
      let tiers =
        List.map (fun (c, b) -> (c, b, algorithms)) (bundled @ generated)
        @ [
            ("scale10k", scale_build 10_000, paper_algorithms);
            ("scale100k", scale_build 100_000, area_only);
          ]
      in
      let cells =
        List.concat_map
          (fun (circuit, build, algs) ->
            List.map (fun (alg, run) -> (circuit, build, alg, run)) algs)
          tiers
      in
      let opt_rows, opt_dt =
        wall (fun () ->
            Par.map ~jobs
              (fun (circuit, build, alg, run) ->
                let gates = Core.Mig.size (build ()) in
                let _, dt = wall (fun () -> run (build ())) in
                Obs.Json.Assoc
                  [
                    ("circuit", Obs.Json.String circuit);
                    ("gates", Obs.Json.Int gates);
                    ("algorithm", Obs.Json.String alg);
                    ("seconds", Obs.Json.Float dt);
                  ])
              cells)
      in
      Obs.write_json opt_path
        (Obs.Json.Assoc
           [
             ("schema", Obs.Json.String "migsyn-bench-opt/1");
             ("effort", Obs.Json.Int effort);
             ("rows", Obs.Json.List opt_rows);
           ]);
      Printf.printf
        "  wrote %s (%d rows: optimization wall times on the largest circuits; %.2f s)\n"
        opt_path (List.length opt_rows) opt_dt;
      (* Mirror the BENCH_opt cells into the run manifest so a ledgered
         harness run is directly comparable to the committed baseline. *)
      List.iter
        (fun row ->
          let s k =
            match Obs.Json.member k row with Obs.Json.String s -> s | _ -> ""
          in
          Obs.Manifest.add_result
            (Printf.sprintf "opt.%s.%s.seconds" (s "circuit") (s "algorithm"))
            (Obs.Json.member "seconds" row))
        opt_rows);

  section "Ablations (design-choice studies; see DESIGN.md)";
  let pick name = Option.get (Io.Benchmarks.find name) in
  Format.printf "@[<v>Effort sweep (Alg. 4, MAJ costs) — where effort=40 saturates:@,";
  List.iter
    (fun name ->
      Format.printf "  %s:@,%a" name Exp.Ablation.pp_effort_sweep
        (Exp.Ablation.effort_sweep (pick name)))
    [ "b9"; "cordic"; "alu4" ];
  Format.printf "@,Rule ablation (what each mechanism of Alg. 4 buys, MAJ costs):@,";
  List.iter
    (fun name ->
      Format.printf "  %s:@,%a" name Exp.Ablation.pp_rule_ablation
        (Exp.Ablation.rule_ablation (pick name)))
    [ "b9"; "cordic"; "parity" ];
  Format.printf
    "@,Duplication bound of the multi-objective algorithm (R-vs-S trade-off):@,";
  List.iter
    (fun name ->
      Format.printf "  %s:@,%a" name Exp.Ablation.pp_fanout_sweep
        (Exp.Ablation.fanout_limit_sweep (pick name)))
    [ "b9"; "alu4" ];
  Format.printf "@,BDD variable order (baseline sensitivity; nodes / levelized steps):@,";
  List.iter
    (fun name ->
      Format.printf "  %-8s" name;
      List.iter
        (fun (h, nodes, steps) ->
          if nodes < 0 then Format.printf "  %s: overflow" h
          else Format.printf "  %s: %d/%d" h nodes steps)
        (Exp.Ablation.bdd_order_sweep (pick name));
      Format.printf "@,")
    [ "alu4"; "cm150a"; "t481" ];
  Format.printf
    "@,Level scheduling (ASAP vs slack-balanced; MAJ costs — R drops for free):@,";
  List.iter
    (fun name ->
      let asap, bal = Exp.Ablation.schedule_row (pick name) in
      Format.printf "  %-10s ASAP %a   balanced %a@," name Core.Rram_cost.pp asap
        Core.Rram_cost.pp bal)
    [ "5xp1"; "alu4"; "apex4"; "misex3"; "seq" ];
  Format.printf
    "@,Boolean cut rewriting (extension; gates: initial / Alg.1 / Alg.1+Boolean):@,";
  List.iter
    (fun name ->
      let init, area, boolean = Exp.Ablation.boolean_rewrite_row (pick name) in
      Format.printf "  %-10s %4d / %4d / %4d@," name init area boolean)
    [ "5xp1"; "cordic"; "misex1"; "x2"; "apex4" ];
  Format.printf
    "@,PLiM computer [15] (sequential RM3 stream) vs level-parallel realizations:@,";
  List.iter
    (fun name ->
      let r = Exp.Ablation.plim_row (pick name) in
      Format.printf
        "  %-8s gates=%4d  PLiM %5d RM3 / %4d cells   MAJ %4d steps   IMP %4d steps@,"
        name r.Exp.Ablation.gates r.Exp.Ablation.plim_instructions
        r.Exp.Ablation.plim_cells r.Exp.Ablation.maj_steps r.Exp.Ablation.imp_steps)
    [ "5xp1"; "alu4"; "b9"; "clip"; "cordic"; "t481" ];
  Format.printf
    "@,Fault tolerance (functional yield vs stuck-at rate; baseline / remap / TMR):@,";
  List.iter
    (fun name ->
      Format.printf "  %s:@,%a" name Exp.Ablation.pp_yield_curve
        (Exp.Ablation.yield_curve ~trials:100 (pick name)))
    [ "5xp1"; "b9" ];
  Format.printf
    "@,Statistical variability (Monte-Carlo yield vs sigma over the sampled@,\
     device physics; Wilson 95%% CIs; campaign fans across the Par pool):@,";
  List.iter
    (fun name ->
      let config =
        {
          Exp.Montecarlo.default with
          trials = 100;
          sigmas = [ 0.5; 1.0; 1.5 ];
          jobs = Some jobs;
        }
      in
      let t =
        Exp.Montecarlo.run ~config ~name ((pick name).Io.Benchmarks.build ())
      in
      let executions =
        float_of_int (t.Exp.Montecarlo.trials * List.length t.Exp.Montecarlo.points)
      in
      Format.printf "  %a  (%.0f trials/s, --jobs %d)@," Exp.Montecarlo.pp t
        (executions /. t.Exp.Montecarlo.wall_seconds)
        jobs)
    [ "5xp1"; "b9" ];
  Format.printf
    "@,Pulse energy (static pulse counts, arbitrary units) and crossbar geometry:@,";
  List.iter
    (fun name ->
      let mig =
        Core.Mig_opt.steps ~effort:20
          (Core.Mig_of_network.convert ((pick name).Io.Benchmarks.build ()))
      in
      let line realization =
        let r = Rram.Compile_mig.compile realization mig in
        let e = Rram.Energy.static_energy r.Rram.Compile_mig.program in
        let place = Rram.Placement.place r.Rram.Compile_mig.program in
        Format.asprintf "%a %7.0f a.u., %a" Core.Rram_cost.pp_realization realization e
          Rram.Placement.pp place
      in
      Format.printf "  %-8s %s | %s@," name (line Core.Rram_cost.Imp)
        (line Core.Rram_cost.Maj))
    [ "alu4"; "b9"; "cordic"; "t481" ];
  Format.printf "@]@.";

  section "Crossbar-constrained mapping (serial vs parallel pulse waves)";
  let xbar_entries =
    List.filter_map Io.Benchmarks.find
      [ "5xp1"; "alu4"; "b9"; "clip"; "cordic"; "t481" ]
  in
  let xbar, xbar_time =
    wall (fun () -> Exp.Crossbar.run ~effort ~jobs ~entries:xbar_entries ())
  in
  Format.printf "%a" Exp.Crossbar.pp xbar;
  Printf.printf "(crossbar sweep computed in %.2f s; full suite: migsyn crossbar)\n"
    xbar_time;
  Obs.Manifest.add_result "crossbar_rows"
    (Obs.Json.Int (List.length xbar.Exp.Crossbar.rows));
  Obs.Manifest.add_result "crossbar_seconds" (Obs.Json.Float xbar_time);

  section "Bechamel micro-benchmarks (one per table)";
  let table1_test =
    Test.make ~name:"table1/maj-gate-compile+execute"
      (Staged.stage (fun () ->
           let mig = Core.Mig.create () in
           let a = Core.Mig.add_pi mig in
           let b = Core.Mig.add_pi mig in
           let c = Core.Mig.add_pi mig in
           ignore (Core.Mig.add_po mig (Core.Mig.maj mig a b c));
           let r = Rram.Compile_mig.compile Core.Rram_cost.Maj mig in
           Rram.Interp.run r.Rram.Compile_mig.program [| true; false; true |]))
  in
  let alu4 = (Option.get (Io.Benchmarks.find "alu4")).Io.Benchmarks.build () in
  let alu4_mig = Core.Mig_of_network.convert alu4 in
  let table2_test =
    Test.make ~name:"table2/steps-optimization-alu4"
      (Staged.stage (fun () -> Core.Mig_opt.steps ~effort:10 alu4_mig))
  in
  let b9 = (Option.get (Io.Benchmarks.find "b9")).Io.Benchmarks.build () in
  let b9_perm = Bdd_lib.Bdd_order.order Bdd_lib.Bdd_order.Dfs b9 in
  let table3_bdd_test =
    Test.make ~name:"table3/bdd-flow-b9"
      (Staged.stage (fun () ->
           Rram.Compile_bdd.compile (Bdd_lib.Bdd_of_network.build ~perm:b9_perm b9)))
  in
  let rd73 = Logic.Funcgen.rd 7 3 in
  let table3_aig_test =
    Test.make ~name:"table3/aig-flow-rd73"
      (Staged.stage (fun () ->
           Rram.Compile_aig.compile (Aig_lib.Aig_of_network.convert rd73)))
  in
  let tests = [ table1_test; table2_test; table3_bdd_test; table3_aig_test ] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols (List.hd instances) raw in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "  %-40s %12.0f ns/run\n" name est
          | _ -> Printf.printf "  %-40s (no estimate)\n" name)
        results)
    tests;
  (match ledger_path with
  | None -> ()
  | Some path ->
      Obs.Ledger.append path (Obs.Manifest.finish ());
      Printf.printf "\nappended run to %s\n" path);
  Printf.printf "\nDone.\n"
