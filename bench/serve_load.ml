(* Load driver for the migsyn serve daemon.

   Forks a daemon on a private socket, then replays a fixed, deterministic
   request mix against it from several concurrent client domains:

     prime    one request per class, sequential — every class is a cache
              miss exactly once, so the later counters are deterministic
     repeats  REQUESTS requests cycling over the classes — all cache hits
     unique   UNIQUE seeded one-off circuits — misses, one each
     errors   ERRBAD malformed / bad-schema / unknown-op lines — answered
              with structured error envelopes, daemon must survive

   The driver asserts the daemon's request and cache counters against the
   closed-form expectations (any drift is a caching or batching bug and
   exits 1), then writes a migsyn-serve-bench/1 document (default
   BENCH_serve.json) with the deterministic mix counts plus throughput and
   client-side latency quantiles.  Wall-clock fields are named *_seconds /
   *_rps so `migsyn report` treats them as noisy or they are --ignore'd;
   everything else must reproduce bit-exactly.

   Usage: serve_load.exe [--socket PATH] [--json FILE] [--requests N]
                         [--clients N] [--jobs N] *)

module Json = Obs.Json

let arg_val name default parse =
  let rec scan = function
    | [] -> default
    | a :: v :: _ when a = name -> parse v
    | _ :: rest -> scan rest
  in
  scan (Array.to_list Sys.argv)

let int_arg name default =
  arg_val name default (fun v ->
      match int_of_string_opt v with
      | Some n when n >= 1 -> n
      | _ -> failwith (Printf.sprintf "serve_load: %s expects a positive integer" name))

let socket_path =
  arg_val "--socket"
    (Filename.concat (Filename.get_temp_dir_name ())
       (Printf.sprintf "migsyn-serve-load-%d.sock" (Unix.getpid ())))
    Fun.id

let json_path = arg_val "--json" "BENCH_serve.json" Fun.id
let requests = int_arg "--requests" 1000
let clients = int_arg "--clients" 4
let server_jobs = int_arg "--jobs" 2
let unique = 64
let err_per_kind = 8

(* ---------------- the request mix ---------------- *)

let effort = 2

let blif_of entry =
  Io.Blif.write_string ~model_name:entry.Io.Benchmarks.name
    (entry.Io.Benchmarks.build ())

let inline source = Serve.Protocol.Inline { format = "blif"; source }

let synth ?(flows = []) ?algorithm ?arch ?cost ?jobs ?(verify = true) circuit =
  Serve.Protocol.Synth
    {
      circuit;
      flows;
      algorithm;
      effort = Some effort;
      jobs;
      cost;
      arch;
      realization = "maj";
      verify;
    }

(* Twelve deterministic request classes over four paper benchmarks:
   canonical algorithms, explicit flow scripts, a portfolio, a crossbar
   target and a verify-off variant. *)
let classes () =
  let pick name =
    match Io.Benchmarks.find name with
    | Some e -> blif_of e
    | None -> failwith ("serve_load: unknown benchmark " ^ name)
  in
  let xor5 = pick "xor5_d" in
  let rd53 = pick "rd53f1" in
  let misex1 = pick "misex1" in
  let con1 = pick "con1f1" in
  [
    ("xor5_d/steps", synth ~algorithm:"steps" (inline xor5));
    ("rd53f1/steps", synth ~algorithm:"steps" (inline rd53));
    ("misex1/steps", synth ~algorithm:"steps" (inline misex1));
    ("con1f1/steps", synth ~algorithm:"steps" (inline con1));
    ("xor5_d/area", synth ~algorithm:"area" (inline xor5));
    ("rd53f1/area", synth ~algorithm:"area" (inline rd53));
    ("misex1/depth", synth ~algorithm:"depth" (inline misex1));
    ("con1f1/depth", synth ~algorithm:"depth" (inline con1));
    ( "xor5_d/script",
      synth ~flows:[ "push_up; omega_i; push_up" ] (inline xor5) );
    ( "rd53f1/portfolio",
      synth
        ~flows:[ "push_up"; "cycle(2){omega_i3; push_up}" ]
        ~cost:"weighted_maj" ~jobs:2 (inline rd53) );
    ( "misex1/xbar",
      synth ~algorithm:"steps" ~arch:"32x32" (inline misex1) );
    ("con1f1/noverify", synth ~algorithm:"steps" ~verify:false (inline con1));
  ]

let unique_request i =
  let name = Printf.sprintf "load%04d" i in
  let net = Io.Gen.random_network ~name ~inputs:8 ~gates:40 ~outputs:4 () in
  synth ~algorithm:"area"
    (inline (Io.Blif.write_string ~model_name:name net))

let bad_lines =
  [
    "{\"schema\":\"migsyn-serve/1\", truncated";
    "{\"schema\":\"migsyn-serve/9\",\"op\":\"ping\"}";
    "{\"schema\":\"migsyn-serve/1\",\"op\":\"dance\"}";
  ]

(* ---------------- helpers ---------------- *)

let encode op = Serve.Protocol.encode_request { Serve.Protocol.id = None; op }

let status json =
  match Json.member "status" json with Json.String s -> s | _ -> "?"

let check_ok label json =
  if status json <> "ok" then
    failwith
      (Printf.sprintf "serve_load: %s answered %s" label (Json.to_string json))

let seconds_since t0 = Int64.to_float (Int64.sub (Obs.now_ns ()) t0) /. 1e9

let quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(int_of_float (q *. float_of_int (n - 1) +. 0.5))

(* ---------------- the run ---------------- *)

let () =
  if Sys.file_exists socket_path then Sys.remove socket_path;
  let pid = Unix.fork () in
  if pid = 0 then begin
    (* the daemon child: defaults except the request mix's pool size *)
    let cfg = Serve.Server.default_config ~socket_path in
    ignore (Serve.Server.run { cfg with Serve.Server.jobs = server_jobs });
    exit 0
  end;
  let finished = ref false in
  Fun.protect
    ~finally:(fun () ->
      if not !finished then (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
  @@ fun () ->
  let classes = classes () in
  let n_classes = List.length classes in
  let class_lines = Array.of_list (List.map (fun (_, op) -> encode op) classes) in
  let class_names = Array.of_list (List.map fst classes) in

  (* prime: every class misses exactly once *)
  let c0 = Serve.Client.connect socket_path in
  List.iter
    (fun (label, op) -> check_ok label (Serve.Client.rpc c0 (Json.of_string (encode op))))
    classes;

  (* load: [clients] domains replay repeats + uniques + error lines *)
  let t_load = Obs.now_ns () in
  let worker w =
    let conn = Serve.Client.connect socket_path in
    let lat = ref [] in
    let by_class = Array.make n_classes [] in
    (* repeats: global indices w, w+clients, ... -> class (i mod n_classes) *)
    let i = ref w in
    while !i < requests do
      let c = !i mod n_classes in
      let t0 = Obs.now_ns () in
      let resp = Serve.Client.rpc conn (Json.of_string class_lines.(c)) in
      let dt = seconds_since t0 in
      check_ok class_names.(c) resp;
      lat := dt :: !lat;
      by_class.(c) <- dt :: by_class.(c);
      i := !i + clients
    done;
    (* uniques: one-off circuits, each a miss *)
    let u = ref w in
    while !u < unique do
      let line = encode (unique_request !u) in
      let t0 = Obs.now_ns () in
      let resp = Serve.Client.rpc conn (Json.of_string line) in
      let dt = seconds_since t0 in
      check_ok (Printf.sprintf "load%04d" !u) resp;
      lat := dt :: !lat;
      u := !u + clients
    done;
    (* errors: the daemon must answer structured envelopes and stay up *)
    let e = ref w in
    while !e < err_per_kind * List.length bad_lines do
      let line = List.nth bad_lines (!e mod List.length bad_lines) in
      Serve.Client.send_line conn line;
      let resp = Json.of_string (Serve.Client.recv_line conn) in
      if status resp <> "error" then
        failwith
          (Printf.sprintf "serve_load: bad line answered %s" (Json.to_string resp));
      e := !e + clients
    done;
    Serve.Client.close conn;
    (!lat, by_class)
  in
  let domains = List.init clients (fun w -> Domain.spawn (fun () -> worker w)) in
  let results = List.map Domain.join domains in
  let load_seconds = seconds_since t_load in

  (* totals from the daemon, then shut it down *)
  let metrics =
    Serve.Client.rpc c0 (Json.of_string (encode Serve.Protocol.Metrics))
  in
  check_ok "metrics" metrics;
  check_ok "shutdown"
    (Serve.Client.rpc c0 (Json.of_string (encode Serve.Protocol.Shutdown)));
  Serve.Client.close c0;
  finished := true;
  ignore (Unix.waitpid [] pid);

  (* closed-form expectations: any drift is a caching/batching bug *)
  let result = Json.member "result" metrics in
  let counters = Json.member "requests" result in
  let cache = Json.member "cache" result in
  let geti j name =
    match Json.member name j with
    | Json.Int n -> n
    | _ -> failwith ("serve_load: metrics missing " ^ name)
  in
  let errors_sent = err_per_kind * List.length bad_lines in
  let expect label got want =
    if got <> want then
      failwith
        (Printf.sprintf "serve_load: %s = %d, expected %d" label got want)
  in
  expect "requests.total" (geti counters "total")
    (n_classes + requests + unique + errors_sent + 1);
  expect "requests.ok" (geti counters "ok") (n_classes + requests + unique + 1);
  expect "requests.errors" (geti counters "errors") errors_sent;
  expect "cache.hits" (geti cache "hits") requests;
  expect "cache.misses" (geti cache "misses") (n_classes + unique);
  expect "cache.coalesced" (geti cache "coalesced") 0;
  expect "cache.evictions" (geti cache "evictions") 0;

  (* latency quantiles over every timed load request *)
  let all = Array.of_list (List.concat_map fst results) in
  Array.sort compare all;
  let mean =
    if Array.length all = 0 then 0.0
    else Array.fold_left ( +. ) 0.0 all /. float_of_int (Array.length all)
  in
  let per_class c =
    let samples =
      List.concat_map (fun (_, by) -> by.(c)) results |> Array.of_list
    in
    Array.sort compare samples;
    Json.Assoc
      [
        ("class", Json.String class_names.(c));
        ("requests", Json.Int (Array.length samples));
        ("p50_seconds", Json.Float (quantile samples 0.5));
        ("p99_seconds", Json.Float (quantile samples 0.99));
      ]
  in
  let doc =
    Json.Assoc
      [
        ("schema", Json.String "migsyn-serve-bench/1");
        ("classes", Json.Int n_classes);
        ("requests", Json.Int (geti counters "total"));
        ("repeats", Json.Int requests);
        ("unique", Json.Int unique);
        ("error_requests", Json.Int errors_sent);
        ("clients", Json.Int clients);
        ("effort", Json.Int effort);
        ( "totals",
          Json.Assoc
            [
              ("ok", Json.Int (geti counters "ok"));
              ("errors", Json.Int (geti counters "errors"));
              ("hits", Json.Int (geti cache "hits"));
              ("misses", Json.Int (geti cache "misses"));
              ("coalesced", Json.Int (geti cache "coalesced"));
              ("evictions", Json.Int (geti cache "evictions"));
            ] );
        ( "throughput_rps",
          Json.Float
            (float_of_int (requests + unique + errors_sent) /. load_seconds) );
        ( "latency",
          Json.Assoc
            [
              ("p50_seconds", Json.Float (quantile all 0.5));
              ("p90_seconds", Json.Float (quantile all 0.9));
              ("p99_seconds", Json.Float (quantile all 0.99));
              ("mean_seconds", Json.Float mean);
              ( "max_seconds",
                Json.Float
                  (if Array.length all = 0 then 0.0
                   else all.(Array.length all - 1)) );
            ] );
        ("mix", Json.List (List.init n_classes per_class));
      ]
  in
  Obs.write_json json_path doc;
  Printf.printf
    "serve_load: %d requests over %d clients: %.0f req/s, p50 %.2f ms, p90 %.2f \
     ms, p99 %.2f ms (hits=%d misses=%d) -> %s\n"
    (requests + unique + errors_sent)
    clients
    (float_of_int (requests + unique + errors_sent) /. load_seconds)
    (1000.0 *. quantile all 0.5)
    (1000.0 *. quantile all 0.9)
    (1000.0 *. quantile all 0.99)
    (geti cache "hits") (geti cache "misses") json_path
