(* Run the paper's full flow over a selection of the benchmark suite and
   print a Table-II-style report.  Pass benchmark names as arguments, or
   nothing for a representative subset; pass "all" for the whole Table II
   suite (equivalent to the bench harness section, at reduced effort). *)

let default = [ "alu4"; "b9"; "clip"; "cm150a"; "cordic"; "parity"; "t481" ]

let () =
  let names =
    match Array.to_list Sys.argv with
    | [] | [ _ ] -> default
    | _ :: [ "all" ] -> List.map (fun e -> e.Io.Benchmarks.name) Io.Benchmarks.table2
    | _ :: names -> names
  in
  let entries =
    List.filter_map
      (fun n ->
        match Io.Benchmarks.find n with
        | Some e -> Some e
        | None ->
            Format.printf "unknown benchmark %s (skipped)@." n;
            None)
      names
  in
  let rows = List.map (Exp.Experiments.table2_row ~effort:15) entries in
  Format.printf "%a@." Exp.Experiments.pp_table2 rows;
  Format.printf
    "Cells are measured/paper; substitutes are marked (see DESIGN.md for the@.";
  Format.printf "substitution policy).  Run bench/main.exe for the full evaluation.@."
