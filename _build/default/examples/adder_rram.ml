(* In-memory adders: how MIG optimization turns a ripple-carry adder into a
   shallow structure, and what that does to RRAM latency.

   For each width the example builds both a ripple-carry and a
   carry-lookahead adder, optimizes each for steps, and reports the step
   counts of the MAJ-based realization.  The punchline is the paper's: step
   count follows MIG depth, so flattening the carry chain (which the MIG
   axioms do algebraically) is what makes in-memory addition fast. *)

let report name net =
  let mig = Core.Mig_of_network.convert net in
  let before = Core.Rram_cost.of_mig Core.Rram_cost.Maj mig in
  let optimized = Core.Mig_opt.steps ~effort:15 mig in
  assert (Core.Mig_equiv.equivalent_network optimized net);
  let maj = Rram.Compile_mig.compile Core.Rram_cost.Maj optimized in
  let imp = Rram.Compile_mig.compile Core.Rram_cost.Imp optimized in
  (match Rram.Verify.against_network maj.Rram.Compile_mig.program net with
  | Ok () -> ()
  | Error e -> failwith (name ^ ": " ^ e));
  Format.printf "%-14s | %5d -> %5d steps (MAJ) | %5d steps (IMP) | %5d RRAMs (MAJ)@."
    name before.Core.Rram_cost.steps maj.Rram.Compile_mig.measured_steps
    imp.Rram.Compile_mig.measured_steps maj.Rram.Compile_mig.measured_rrams

let () =
  Format.printf "RRAM in-memory adders (steps before -> after step optimization)@.@.";
  List.iter
    (fun width ->
      report (Printf.sprintf "ripple %2d-bit" width) (Logic.Funcgen.ripple_adder width);
      report (Printf.sprintf "CLA    %2d-bit" width)
        (Logic.Funcgen.carry_lookahead_adder width))
    [ 4; 8; 16; 24 ];
  Format.printf
    "@.The optimizer flattens the ripple carry chain to near the CLA's depth:@.";
  Format.printf
    "latency on the crossbar is set by MIG depth (S = 3D + L), not gate count.@."
