examples/voter.mli:
