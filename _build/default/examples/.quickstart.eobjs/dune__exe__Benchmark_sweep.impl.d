examples/benchmark_sweep.ml: Array Exp Format Io List Sys
