examples/crossbar_trace.ml: Array Bool Core Format List Rram String
