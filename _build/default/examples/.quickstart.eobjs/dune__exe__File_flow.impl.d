examples/file_flow.ml: Array Core Filename Format Io List Logic Rram Sys
