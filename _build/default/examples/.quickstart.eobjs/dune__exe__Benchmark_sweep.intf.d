examples/benchmark_sweep.mli:
