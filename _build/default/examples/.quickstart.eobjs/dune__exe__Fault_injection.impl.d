examples/fault_injection.ml: Core Format List Logic Printf Rram
