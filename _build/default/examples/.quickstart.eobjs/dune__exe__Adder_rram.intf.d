examples/adder_rram.mli:
