examples/voter.ml: Array Bool Core Format List Rram
