examples/sequential_fsm.ml: Array Core Format Io List Logic Network Printf Rram Seq String
