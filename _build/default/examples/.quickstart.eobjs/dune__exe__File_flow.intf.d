examples/file_flow.mli:
