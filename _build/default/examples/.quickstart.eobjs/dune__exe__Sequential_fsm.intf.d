examples/sequential_fsm.mli:
