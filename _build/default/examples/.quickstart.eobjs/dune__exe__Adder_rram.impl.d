examples/adder_rram.ml: Core Format List Logic Printf Rram
