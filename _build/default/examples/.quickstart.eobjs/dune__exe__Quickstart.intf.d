examples/quickstart.mli:
