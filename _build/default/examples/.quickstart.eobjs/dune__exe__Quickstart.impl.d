examples/quickstart.ml: Array Bool Core Format List Rram
