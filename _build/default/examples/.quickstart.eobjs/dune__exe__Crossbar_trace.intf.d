examples/crossbar_trace.mli:
