(* In-memory finite-state machines: the crossbar as a sequential computer.

   Two machines are built as sequential circuits (combinational core +
   registers), their cores are step-optimized and compiled, and the
   resulting RRAM programs are clocked on the device simulator:

   - a "101" pattern detector (Mealy machine, 2 state bits);
   - a 4-bit counter with enable and synchronous clear.

   The per-cycle latency of the in-memory machine is exactly the compiled
   step count, so Alg. 4 sets its clock period. *)

open Logic

(* 101-detector: states S0 (reset), S1 (saw 1), S2 (saw 10); output pulses
   when input completes 1-0-1. *)
let detector () =
  let net = Network.create () in
  let x = Network.add_input net "x" in
  let s0 = Network.add_input net "s0" in
  let s1 = Network.add_input net "s1" in
  (* state encoding: (s1 s0) = 00 -> S0, 01 -> S1, 10 -> S2 *)
  let in_s0 = Network.gate net Network.Nor [| s0; s1 |] in
  let in_s1 = Network.and2 net s0 (Network.not_ net s1) in
  let in_s2 = Network.and2 net s1 (Network.not_ net s0) in
  let nx = Network.not_ net x in
  (* next S1 when we see a 1 (from any state: 1 always starts/extends) *)
  let next_s0 = Network.and2 net x (Network.gate net Network.Or [| in_s0; in_s1; in_s2 |]) in
  (* next S2 when in S1 and seeing 0 *)
  let next_s1 = Network.and2 net in_s1 nx in
  (* output: in S2 and seeing 1 *)
  let detect = Network.and2 net in_s2 x in
  Network.add_output net "detect" detect;
  Network.add_output net "s0_next" next_s0;
  Network.add_output net "s1_next" next_s1;
  Seq.create net ~num_pis:1 ~num_pos:1 ~init:[| false; false |]

let counter width =
  let net = Network.create () in
  let enable = Network.add_input net "en" in
  let clear = Network.add_input net "clr" in
  let state = Array.init width (fun i -> Network.add_input net (Printf.sprintf "q%d" i)) in
  let keep = Network.not_ net clear in
  for i = 0 to width - 1 do
    Network.add_output net (Printf.sprintf "c%d" i) state.(i)
  done;
  (* next state: cleared, or toggled by the ripple carry *)
  let carry = ref enable in
  for i = 0 to width - 1 do
    let toggled = Network.xor2 net state.(i) !carry in
    carry := Network.and2 net state.(i) !carry;
    Network.add_output net (Printf.sprintf "q%d_next" i) (Network.and2 net keep toggled)
  done;
  Seq.create net ~num_pis:2 ~num_pos:width ~init:(Array.make width false)

let () =
  Format.printf "In-memory FSMs on the RRAM crossbar@.@.";

  (* --- pattern detector --- *)
  let det = detector () in
  Format.printf "101-detector: %a@." Seq.pp_stats det;
  let machine = Rram.Seq_exec.compile Core.Rram_cost.Maj det in
  Format.printf "  compiled: %d RRAMs, %d steps per clock cycle@."
    (Rram.Seq_exec.rrams machine)
    (Rram.Seq_exec.steps_per_cycle machine);
  (match Rram.Seq_exec.verify machine det () with
  | Ok () -> Format.printf "  verified against the sequential reference over 64 random cycles@."
  | Error e -> Format.printf "  FAILED: %s@." e);
  let stream = [ 1; 0; 1; 1; 0; 1; 0; 0; 1; 0; 1 ] in
  let outs =
    Rram.Seq_exec.run machine (List.map (fun b -> [| b = 1 |]) stream)
  in
  Format.printf "  input : %s@." (String.concat "" (List.map string_of_int stream));
  Format.printf "  detect: %s@."
    (String.concat "" (List.map (fun o -> if o.(0) then "1" else "0") outs));

  (* --- counter --- *)
  Format.printf "@.4-bit counter with enable/clear:@.";
  let cnt = counter 4 in
  let machine = Rram.Seq_exec.compile Core.Rram_cost.Maj cnt in
  Format.printf "  compiled: %d RRAMs, %d steps per clock cycle@."
    (Rram.Seq_exec.rrams machine)
    (Rram.Seq_exec.steps_per_cycle machine);
  (match Rram.Seq_exec.verify machine cnt () with
  | Ok () -> Format.printf "  verified over 64 random cycles@."
  | Error e -> Format.printf "  FAILED: %s@." e);
  let ticks =
    List.init 10 (fun i -> [| true; i = 6 (* clear on cycle 6 *) |])
  in
  let outs = Rram.Seq_exec.run machine ticks in
  Format.printf "  counting (clear at cycle 6):";
  List.iter
    (fun o ->
      let v = ref 0 in
      Array.iteri (fun i b -> if b then v := !v lor (1 lsl i)) o;
      Format.printf " %d" !v)
    outs;
  Format.printf "@.";

  (* --- sequential BLIF round trip --- *)
  Format.printf "@.Sequential BLIF (.latch) parsing:@.";
  let text =
    {|.model toggler
.inputs en
.outputs out
.latch next q 0
.names en q next
10 1
01 1
.names q out
1 1
.end|}
  in
  let seq = Io.Blif.parse_sequential_string text in
  Format.printf "  %a@." Seq.pp_stats seq;
  let machine = Rram.Seq_exec.compile Core.Rram_cost.Maj seq in
  let outs = Rram.Seq_exec.run machine (List.init 6 (fun _ -> [| true |])) in
  Format.printf "  toggling under enable: %s@."
    (String.concat "" (List.map (fun o -> if o.(0) then "1" else "0") outs))
