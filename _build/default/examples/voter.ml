(* Triple-modular-redundancy voter — the workload where MIGs are the native
   representation.  An n-bit TMR system compares three redundant copies of a
   word and votes bitwise; each vote IS a majority gate, so the MAJ-based
   RRAM realization executes it in its intrinsic switching operation.

   The example sweeps word widths, compares the IMP and MAJ realizations,
   and shows the constant step count (independent of width — all bit votes
   run in one level). *)

let voter width =
  let mig = Core.Mig.create () in
  let copy () = Array.init width (fun _ -> Core.Mig.add_pi mig) in
  let m0 = copy () and m1 = copy () and m2 = copy () in
  for i = 0 to width - 1 do
    ignore (Core.Mig.add_po mig (Core.Mig.maj mig m0.(i) m1.(i) m2.(i)))
  done;
  mig

(* A fault-detection variant: vote plus per-module disagreement flags
   (disagree_k = 1 iff module k differs from the voted word anywhere). *)
let voter_with_disagreement width =
  let mig = Core.Mig.create () in
  let copy () = Array.init width (fun _ -> Core.Mig.add_pi mig) in
  (* sequential lets: an array literal would evaluate right-to-left and
     scramble the input order *)
  let m0 = copy () in
  let m1 = copy () in
  let m2 = copy () in
  let modules = [| m0; m1; m2 |] in
  let voted =
    Array.init width (fun i ->
        Core.Mig.maj mig modules.(0).(i) modules.(1).(i) modules.(2).(i))
  in
  Array.iter (fun s -> ignore (Core.Mig.add_po mig s)) voted;
  Array.iter
    (fun m ->
      let differs =
        Array.to_list (Array.mapi (fun i bit -> Core.Mig.xor_ mig bit voted.(i)) m)
      in
      let any =
        List.fold_left (fun acc d -> Core.Mig.or_ mig acc d) Core.Mig.const0 differs
      in
      ignore (Core.Mig.add_po mig any))
    modules;
  mig

let () =
  Format.printf "TMR majority voter on an RRAM crossbar@.@.";
  Format.printf "width | IMP R  IMP S | MAJ R  MAJ S@.";
  List.iter
    (fun width ->
      let mig = voter width in
      let imp = Rram.Compile_mig.compile Core.Rram_cost.Imp mig in
      let maj = Rram.Compile_mig.compile Core.Rram_cost.Maj mig in
      Format.printf "%5d | %5d %6d | %5d %6d@." width
        imp.Rram.Compile_mig.measured_rrams imp.Rram.Compile_mig.measured_steps
        maj.Rram.Compile_mig.measured_rrams maj.Rram.Compile_mig.measured_steps;
      (match Rram.Verify.against_mig maj.Rram.Compile_mig.program mig with
      | Ok () -> ()
      | Error e -> Format.printf "  MAJ verification failed: %s@." e))
    [ 1; 4; 8; 16; 32 ];
  Format.printf
    "@.Steps are width-independent: every bit votes in the same level, and the@.";
  Format.printf "MAJ realization needs just 3 of them (1 load, 1 negate, 1 majority pulse).@.";

  Format.printf "@.Fault-detecting voter (vote + per-module disagreement flags), width 8:@.";
  let mig = voter_with_disagreement 8 in
  Format.printf "  initial: %a@." Core.Mig.pp_stats mig;
  let optimized = Core.Mig_opt.steps ~effort:10 mig in
  assert (Core.Mig_equiv.equivalent mig optimized);
  List.iter
    (fun realization ->
      let r = Rram.Compile_mig.compile realization optimized in
      Format.printf "  %a: %d RRAMs, %d steps (Table I: %a)@."
        Core.Rram_cost.pp_realization realization r.Rram.Compile_mig.measured_rrams
        r.Rram.Compile_mig.measured_steps Core.Rram_cost.pp r.Rram.Compile_mig.analytic)
    [ Core.Rram_cost.Imp; Core.Rram_cost.Maj ];
  (* inject a fault and watch the flags on the simulator *)
  let program = (Rram.Compile_mig.compile Core.Rram_cost.Maj optimized).Rram.Compile_mig.program in
  let word = [| true; false; true; true; false; false; true; false |] in
  let faulty = Array.copy word in
  faulty.(3) <- not faulty.(3);
  let inputs = Array.concat [ word; word; faulty ] in
  let out = Rram.Interp.run program inputs in
  let voted = Array.sub out 0 8 in
  Format.printf "  fault injected in module 2 bit 3: voted word correct = %b, flags = (%d %d %d)@."
    (voted = word)
    (Bool.to_int out.(8)) (Bool.to_int out.(9)) (Bool.to_int out.(10))
