(* Full file-based flow: parse a netlist (BLIF, .bench, PLA or ASCII AIGER,
   auto-detected by extension), optimize with all four algorithms, map to
   RRAMs, verify on the device simulator, and write the best result back
   out as a majority-gate BLIF.

   Usage:  dune exec examples/file_flow.exe -- [netlist]
   Without an argument, a demo BLIF is written to /tmp and used. *)

let demo_path = "/tmp/mig_rram_demo.blif"

let demo () =
  Io.Blif.write_file ~model_name:"demo_rd73" demo_path (Logic.Funcgen.rd 7 3);
  demo_path

let parse path =
  match Filename.extension path with
  | ".blif" -> Io.Blif.parse_file path
  | ".bench" -> Io.Bench_format.parse_file path
  | ".pla" -> Io.Pla.parse_file path
  | ".aag" -> Io.Aiger.parse_file path
  | ext -> failwith ("unknown netlist extension " ^ ext)

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else demo () in
  Format.printf "reading %s@." path;
  let net = parse path in
  Format.printf "network: %a@." Logic.Network.pp_stats net;
  let mig = Core.Mig_of_network.convert net in
  Format.printf "initial MIG: %a@.@." Core.Mig.pp_stats mig;
  List.iter
    (fun alg ->
      let optimized = Core.Mig_opt.run ~effort:15 alg mig in
      let imp = Core.Rram_cost.of_mig Core.Rram_cost.Imp optimized in
      let maj = Core.Rram_cost.of_mig Core.Rram_cost.Maj optimized in
      Format.printf "%-16s %-28s IMP %a   MAJ %a@."
        (Core.Mig_opt.algorithm_name alg ^ ":")
        (Format.asprintf "%a" Core.Mig.pp_stats optimized)
        Core.Rram_cost.pp imp Core.Rram_cost.pp maj)
    [
      Core.Mig_opt.Area;
      Core.Mig_opt.Depth;
      Core.Mig_opt.Rram_costs Core.Rram_cost.Maj;
      Core.Mig_opt.Steps;
    ];
  let best = Core.Mig_opt.steps ~effort:15 mig in
  let compiled = Rram.Compile_mig.compile Core.Rram_cost.Maj best in
  (match Rram.Verify.against_network compiled.Rram.Compile_mig.program net with
  | Ok () -> Format.printf "@.compiled MAJ program verified on the device simulator@."
  | Error e -> Format.printf "@.VERIFICATION FAILED: %s@." e);
  let out = Filename.remove_extension path ^ "_opt.blif" in
  Io.Blif.write_file ~model_name:"optimized" out (Core.Mig_to_network.export best);
  Format.printf "wrote optimized majority netlist to %s@." out
