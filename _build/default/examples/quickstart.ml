(* Quickstart: build a full adder as a MIG, optimize it for step count,
   map it to both RRAM realizations, execute the compiled programs on the
   device simulator, and print the Table-I-style costs.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. Build the MIG directly from the public API: a full adder is one
     majority gate (the carry) plus a 3-input XOR (the sum). *)
  let mig = Core.Mig.create () in
  let a = Core.Mig.add_pi mig in
  let b = Core.Mig.add_pi mig in
  let cin = Core.Mig.add_pi mig in
  let carry = Core.Mig.maj mig a b cin in
  let sum = Core.Mig.xor_ mig (Core.Mig.xor_ mig a b) cin in
  ignore (Core.Mig.add_po mig sum);
  ignore (Core.Mig.add_po mig carry);
  Format.printf "initial MIG: %a@." Core.Mig.pp_stats mig;

  (* 2. Optimize for computational steps (Alg. 4 of the paper). *)
  let optimized = Core.Mig_opt.steps mig in
  Format.printf "after step optimization: %a@." Core.Mig.pp_stats optimized;
  assert (Core.Mig_equiv.equivalent mig optimized);

  (* 3. Map to RRAM programs: IMP-based and MAJ-based realizations. *)
  List.iter
    (fun realization ->
      let r = Rram.Compile_mig.compile realization optimized in
      Format.printf "@.%a realization: Table I cost %a; compiled program uses %d RRAMs, %d steps@."
        Core.Rram_cost.pp_realization realization Core.Rram_cost.pp
        r.Rram.Compile_mig.analytic r.Rram.Compile_mig.measured_rrams
        r.Rram.Compile_mig.measured_steps;
      (* 4. Execute the program on the crossbar simulator for all 8 inputs. *)
      Format.printf "  a b c | sum carry@.";
      for m = 0 to 7 do
        let input = [| m land 1 <> 0; m land 2 <> 0; m land 4 <> 0 |] in
        let out = Rram.Interp.run r.Rram.Compile_mig.program input in
        Format.printf "  %d %d %d |  %d    %d@."
          (Bool.to_int input.(0)) (Bool.to_int input.(1)) (Bool.to_int input.(2))
          (Bool.to_int out.(0)) (Bool.to_int out.(1))
      done;
      match Rram.Verify.against_mig r.Rram.Compile_mig.program optimized with
      | Ok () -> Format.printf "  exhaustively verified against the MIG semantics@."
      | Error e -> Format.printf "  VERIFICATION FAILED: %s@." e)
    [ Core.Rram_cost.Imp; Core.Rram_cost.Maj ]
