(* Functional yield under stuck-at device faults (extension).

   RRAM cells wear out and get stuck in the low- or high-resistance state.
   The experiment compiles the same circuit to both realizations, injects
   random stuck-at faults at increasing per-cell rates, and Monte-Carlo
   estimates the probability that the program still computes its function.

   The MAJ realization uses fewer devices and fewer pulses per gate, giving
   it a visibly smaller fault surface. *)

let () =
  Format.printf "Functional yield under stuck-at faults (Monte-Carlo, 200 trials)@.@.";
  let net = Logic.Funcgen.rd 5 3 in
  let mig = Core.Mig_opt.steps ~effort:10 (Core.Mig_of_network.convert net) in
  let reference = Core.Mig_sim.eval mig in
  Format.printf "circuit: rd53 (%d gates after step optimization)@.@." (Core.Mig.size mig);
  Format.printf "%-10s | %-22s | %-22s@." "fault rate" "IMP (6 dev/gate)" "MAJ (4 dev/gate)";
  List.iter
    (fun rate ->
      let cell r =
        let compiled = Rram.Compile_mig.compile r mig in
        let y =
          Rram.Faults.functional_yield ~rate compiled.Rram.Compile_mig.program ~reference
        in
        Format.asprintf "yield %.2f (%4.1f faults)" y.Rram.Faults.yield
          y.Rram.Faults.mean_faults
      in
      Format.printf "%-10s | %-22s | %-22s@."
        (Printf.sprintf "%.3f" rate)
        (cell Core.Rram_cost.Imp) (cell Core.Rram_cost.Maj))
    [ 0.001; 0.003; 0.01; 0.03 ];
  Format.printf
    "@.A stuck cell only matters if it is live during the computation; the MAJ@.";
  Format.printf
    "realization's smaller crossbar (and shorter programs) survives more faults.@."
