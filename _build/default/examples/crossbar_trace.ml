(* Watch an RRAM program execute, pulse by pulse.

   Prints the paper's 10-step IMP-based majority-gate sequence (§III-A.1)
   and the 3-step MAJ-based sequence (§III-A.2) with the full device state
   after every step, for the input x=1 y=0 z=1. *)

let single_maj () =
  let mig = Core.Mig.create () in
  let a = Core.Mig.add_pi mig in
  let b = Core.Mig.add_pi mig in
  let c = Core.Mig.add_pi mig in
  ignore (Core.Mig.add_po mig (Core.Mig.maj mig a b c));
  mig

let show realization =
  let mig = single_maj () in
  let r = Rram.Compile_mig.compile realization mig in
  Format.printf "@.%a-based majority gate — program listing:@.%a@.@."
    Core.Rram_cost.pp_realization realization Rram.Program.pp
    r.Rram.Compile_mig.program;
  let input = [| true; false; true |] in
  Format.printf "execution trace for x=1 y=0 z=1 (device states after each step):@.";
  let out =
    Rram.Interp.run
      ~trace:(fun i step states ->
        let bits =
          String.concat ""
            (List.map (fun b -> if b then "1" else "0") (Array.to_list states))
        in
        Format.printf "  step %2d: %-40s  [%s]@." i
          (Format.asprintf "%a" Rram.Isa.pp_step step)
          bits)
      r.Rram.Compile_mig.program input
  in
  Format.printf "  result: M(1,0,1) = %d (expected 1)@." (Bool.to_int out.(0))

let () =
  Format.printf "RRAM crossbar execution traces for the paper's two realizations@.";
  show Core.Rram_cost.Imp;
  show Core.Rram_cost.Maj
