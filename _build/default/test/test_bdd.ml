open Logic
module B = Bdd_lib.Bdd

let tt_of man root = B.truth_table man root

let basic_tests =
  let open Alcotest in
  [
    test_case "terminals" `Quick (fun () ->
        check bool "false terminal" true (B.is_terminal B.bfalse);
        check bool "true terminal" true (B.is_terminal B.btrue);
        check bool "distinct" true (B.bfalse <> B.btrue));
    test_case "var cofactors" `Quick (fun () ->
        let man = B.create 3 in
        let x = B.var man 1 in
        check int "low" B.bfalse (B.low man x);
        check int "high" B.btrue (B.high man x);
        check int "level" 1 (B.level man x));
    test_case "canonicity: same function, same node" `Quick (fun () ->
        let man = B.create 3 in
        let a = B.var man 0 and b = B.var man 1 in
        let f1 = B.bor man (B.band man a b) (B.band man a (B.bnot man b)) in
        check int "f1 = a" a f1;
        let f2 = B.bnot man (B.bnot man (B.band man a b)) in
        check int "double negation" (B.band man a b) f2);
    test_case "ite truth" `Quick (fun () ->
        let man = B.create 3 in
        let s = B.var man 0 and a = B.var man 1 and b = B.var man 2 in
        let f = B.ite man s a b in
        let expect =
          Truth_table.mux (Truth_table.var 3 0) (Truth_table.var 3 1) (Truth_table.var 3 2)
        in
        check bool "mux" true (Truth_table.equal (tt_of man f) expect));
    test_case "maj3" `Quick (fun () ->
        let man = B.create 3 in
        let f = B.maj3 man (B.var man 0) (B.var man 1) (B.var man 2) in
        let expect =
          Truth_table.maj3 (Truth_table.var 3 0) (Truth_table.var 3 1) (Truth_table.var 3 2)
        in
        check bool "maj" true (Truth_table.equal (tt_of man f) expect));
    test_case "count_nodes shares" `Quick (fun () ->
        let man = B.create 2 in
        let a = B.var man 0 and b = B.var man 1 in
        let f = B.band man a b and g = B.bor man a b in
        let both = B.count_nodes man [ f; g ] in
        let fo = B.count_nodes man [ f ] and go = B.count_nodes man [ g ] in
        check bool "sharing" true (both <= fo + go));
    test_case "of/to truth table" `Quick (fun () ->
        let tt =
          Truth_table.bxor (Truth_table.var 4 0)
            (Truth_table.band (Truth_table.var 4 1) (Truth_table.var 4 3))
        in
        let man = B.create 4 in
        let f = B.of_truth_table man tt in
        check bool "round" true (Truth_table.equal tt (tt_of man f)));
    test_case "limit exceeded" `Quick (fun () ->
        let man = B.create ~max_nodes:4 8 in
        match
          for i = 0 to 7 do
            ignore (B.var man i)
          done
        with
        | () -> Alcotest.fail "expected Limit_exceeded"
        | exception B.Limit_exceeded -> ());
    test_case "parity BDD is linear" `Quick (fun () ->
        let net = Funcgen.parity 10 in
        let r = Bdd_lib.Bdd_of_network.build net in
        check int "nodes" 19 (Bdd_lib.Bdd_of_network.node_count r));
    test_case "mux order sensitivity" `Quick (fun () ->
        (* select-lines-first is exponentially better for a mux than
           data-first; check the orders actually differ in size *)
        let net = Funcgen.mux_tree 3 in
        let natural = Bdd_lib.Bdd_of_network.build net in
        let sel_last_perm =
          (* data inputs (3..10), enable (11), then selects (0..2) *)
          Array.of_list ([ 3; 4; 5; 6; 7; 8; 9; 10; 11 ] @ [ 0; 1; 2 ])
        in
        let sel_last = Bdd_lib.Bdd_of_network.build ~perm:sel_last_perm net in
        check bool "order matters" true
          (Bdd_lib.Bdd_of_network.node_count natural
          < Bdd_lib.Bdd_of_network.node_count sel_last));
  ]

let order_tests =
  let open Alcotest in
  [
    test_case "dfs covers all inputs" `Quick (fun () ->
        let net = Funcgen.alu4 () in
        let perm = Bdd_lib.Bdd_order.order Bdd_lib.Bdd_order.Dfs net in
        let sorted = Array.copy perm in
        Array.sort compare sorted;
        check (array int) "permutation" (Array.init 14 (fun i -> i)) sorted);
    test_case "force covers all inputs" `Quick (fun () ->
        let net = Funcgen.rd 7 3 in
        let perm = Bdd_lib.Bdd_order.order (Bdd_lib.Bdd_order.Force 10) net in
        let sorted = Array.copy perm in
        Array.sort compare sorted;
        check (array int) "permutation" (Array.init 7 (fun i -> i)) sorted);
    test_case "best_of no worse than each candidate" `Quick (fun () ->
        let net = Funcgen.mux_tree 3 in
        let candidates = [ Bdd_lib.Bdd_order.Natural; Bdd_lib.Bdd_order.Dfs ] in
        let best = Bdd_lib.Bdd_order.order (Bdd_lib.Bdd_order.Best_of candidates) net in
        let size perm =
          Bdd_lib.Bdd_of_network.node_count (Bdd_lib.Bdd_of_network.build ~perm net)
        in
        List.iter
          (fun h ->
            check bool "not worse" true
              (size best <= size (Bdd_lib.Bdd_order.order h net)))
          candidates);
    test_case "apply reindexes" `Quick (fun () ->
        let perm = [| 2; 0; 1 |] in
        let a = [| true; false; true |] in
        check (array bool) "apply" [| true; true; false |] (Bdd_lib.Bdd_order.apply perm a));
  ]

let build_props =
  let nets =
    [|
      ("fa", Funcgen.full_adder ());
      ("rd53", Funcgen.rd 5 3);
      ("cmp4", Funcgen.comparator 4);
      ("clip", Funcgen.clip ());
      ("par7", Funcgen.parity 7);
      ("alu4", Funcgen.alu4 ());
    |]
  in
  [
    QCheck.Test.make ~name:"BDD matches network semantics" ~count:60
      (QCheck.make QCheck.Gen.(pair (int_bound (Array.length nets - 1)) int))
      (fun (i, seed) ->
        let _, net = nets.(i) in
        let r = Bdd_lib.Bdd_of_network.build net in
        let rng = Prng.create seed in
        let n = Network.num_inputs net in
        List.for_all
          (fun _ ->
            let a = Array.init n (fun _ -> Prng.bool rng) in
            let expect = Network.eval net a in
            let got =
              List.map
                (fun root ->
                  Bdd_lib.Bdd.eval r.Bdd_lib.Bdd_of_network.manager root
                    (Bdd_lib.Bdd_order.apply r.Bdd_lib.Bdd_of_network.perm a))
                r.Bdd_lib.Bdd_of_network.roots
            in
            got = Array.to_list expect)
          (List.init 20 (fun x -> x)));
    QCheck.Test.make ~name:"BDD canonical across permutation of build ops" ~count:40
      (QCheck.make QCheck.Gen.(int_bound 1000))
      (fun seed ->
        (* two structurally different networks with the same function build
           the same BDD roots *)
        let rng = Prng.create seed in
        ignore rng;
        let a = Funcgen.ripple_adder 4 in
        let b = Funcgen.carry_lookahead_adder 4 in
        let ra = Bdd_lib.Bdd_of_network.build a in
        let man = ra.Bdd_lib.Bdd_of_network.manager in
        (* rebuild b inside the same manager by evaluating through tt *)
        let tts = Network.truth_tables b in
        let roots_b = Array.map (fun tt -> Bdd_lib.Bdd.of_truth_table man tt) tts in
        List.for_all2
          (fun ra rb -> ra = rb)
          ra.Bdd_lib.Bdd_of_network.roots
          (Array.to_list roots_b));
  ]

let sift_tests =
  let open Alcotest in
  [
    test_case "sift not worse than dfs" `Quick (fun () ->
        let net = Funcgen.mux_tree 3 in
        let size perm =
          Bdd_lib.Bdd_of_network.node_count (Bdd_lib.Bdd_of_network.build ~perm net)
        in
        let dfs = size (Bdd_lib.Bdd_order.order Bdd_lib.Bdd_order.Dfs net) in
        let sift = size (Bdd_lib.Bdd_order.order (Bdd_lib.Bdd_order.Sift 4) net) in
        check bool "sift <= dfs" true (sift <= dfs));
    test_case "sift improves a bad natural order" `Quick (fun () ->
        (* ripple adder with a-then-b declaration order: interleaving wins *)
        let net = Funcgen.ripple_adder 6 in
        let size perm =
          Bdd_lib.Bdd_of_network.node_count (Bdd_lib.Bdd_of_network.build ~perm net)
        in
        let natural = size (Bdd_lib.Bdd_order.order Bdd_lib.Bdd_order.Natural net) in
        let sift = size (Bdd_lib.Bdd_order.order (Bdd_lib.Bdd_order.Sift 6) net) in
        check bool "sift < natural" true (sift < natural));
    test_case "sift falls back above 24 inputs" `Quick (fun () ->
        let net = Funcgen.parity 25 in
        let sift = Bdd_lib.Bdd_order.order (Bdd_lib.Bdd_order.Sift 4) net in
        let dfs = Bdd_lib.Bdd_order.order Bdd_lib.Bdd_order.Dfs net in
        check (array int) "same as dfs" dfs sift);
  ]

let stats_tests =
  let open Alcotest in
  [
    test_case "stats of parity" `Quick (fun () ->
        let r = Bdd_lib.Bdd_of_network.build (Funcgen.parity 8) in
        let s = Bdd_lib.Bdd_stats.of_result r in
        check int "nodes" 15 s.Bdd_lib.Bdd_stats.nodes;
        check int "widest" 2 s.Bdd_lib.Bdd_stats.widest_level);
  ]

let () =
  Alcotest.run "bdd"
    [
      ("basic", basic_tests);
      ("order", order_tests);
      ("props", List.map QCheck_alcotest.to_alcotest build_props);
      ("stats", stats_tests);
      ("sift", sift_tests);
    ]
