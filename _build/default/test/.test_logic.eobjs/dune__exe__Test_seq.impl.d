test/test_seq.ml: Alcotest Array Core Funcgen Io List Logic Network Printf Prng QCheck QCheck_alcotest Rram Seq
