test/test_mig.ml: Alcotest Array Core Funcgen Hashtbl List Logic Prng QCheck QCheck_alcotest Rram Truth_table
