test/test_mig.mli:
