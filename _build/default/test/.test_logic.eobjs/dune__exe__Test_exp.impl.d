test/test_exp.ml: Alcotest Array Core Exp Io List Logic Option QCheck QCheck_alcotest Rram
