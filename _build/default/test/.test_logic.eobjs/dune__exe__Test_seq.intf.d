test/test_seq.mli:
