test/test_rram.ml: Aig_lib Alcotest Array Bdd_lib Core Funcgen List Logic Printf Prng QCheck QCheck_alcotest Rram
