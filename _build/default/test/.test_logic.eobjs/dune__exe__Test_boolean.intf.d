test/test_boolean.mli:
