test/test_io.ml: Aig_lib Alcotest Array Bitvec Core Funcgen Io List Logic Network Prng String Truth_table
