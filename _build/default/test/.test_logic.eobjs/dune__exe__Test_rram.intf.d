test/test_rram.mli:
