test/test_aig.ml: Aig_lib Alcotest Array Io List Logic Network Printf Prng QCheck QCheck_alcotest Truth_table
