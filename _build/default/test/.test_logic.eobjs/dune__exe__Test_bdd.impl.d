test/test_bdd.ml: Alcotest Array Bdd_lib Funcgen List Logic Network Prng QCheck QCheck_alcotest Truth_table
