test/test_logic.ml: Alcotest Array Bitvec Cube Funcgen List Logic Network Printf Prng QCheck QCheck_alcotest Sop Truth_table
