test/test_boolean.ml: Alcotest Array Core Cube Espresso Funcgen Hashtbl List Logic Npn Prng QCheck QCheck_alcotest Sop Truth_table
