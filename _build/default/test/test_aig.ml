open Logic
module A = Aig_lib.Aig

let random_aig seed ~pis ~gates ~pos =
  let rng = Prng.create seed in
  let aig = A.create () in
  let signals = ref [| A.const0 |] in
  let add s = signals := Array.append !signals [| s |] in
  for _ = 1 to pis do
    add (A.add_pi aig)
  done;
  for _ = 1 to gates do
    let pick () =
      let s = Prng.pick rng !signals in
      if Prng.bool rng then A.not_ s else s
    in
    add (A.and_ aig (pick ()) (pick ()))
  done;
  for _ = 1 to pos do
    let s = Prng.pick rng !signals in
    ignore (A.add_po aig (if Prng.bool rng then A.not_ s else s))
  done;
  aig

let equal_aig a b =
  A.num_pis a = A.num_pis b
  && A.num_pos a = A.num_pos b
  && Array.for_all2 Truth_table.equal (A.truth_tables a) (A.truth_tables b)

let basic_tests =
  let open Alcotest in
  [
    test_case "and simplifications" `Quick (fun () ->
        let aig = A.create () in
        let a = A.add_pi aig in
        check int "a & 0" A.const0 (A.and_ aig a A.const0);
        check int "a & 1" a (A.and_ aig a A.const1);
        check int "a & a" a (A.and_ aig a a);
        check int "a & ~a" A.const0 (A.and_ aig a (A.not_ a)));
    test_case "strashing shares" `Quick (fun () ->
        let aig = A.create () in
        let a = A.add_pi aig and b = A.add_pi aig in
        check int "commutative" (A.and_ aig a b) (A.and_ aig b a));
    test_case "or/xor/mux semantics" `Quick (fun () ->
        let aig = A.create () in
        let a = A.add_pi aig and b = A.add_pi aig and c = A.add_pi aig in
        ignore (A.add_po aig (A.or_ aig a b));
        ignore (A.add_po aig (A.xor_ aig a b));
        ignore (A.add_po aig (A.mux aig a b c));
        ignore (A.add_po aig (A.maj3 aig a b c));
        let tts = A.truth_tables aig in
        let va = Truth_table.var 3 0 and vb = Truth_table.var 3 1 and vc = Truth_table.var 3 2 in
        check bool "or" true (Truth_table.equal tts.(0) (Truth_table.bor va vb));
        check bool "xor" true (Truth_table.equal tts.(1) (Truth_table.bxor va vb));
        check bool "mux" true (Truth_table.equal tts.(2) (Truth_table.mux va vb vc));
        check bool "maj" true (Truth_table.equal tts.(3) (Truth_table.maj3 va vb vc)));
    test_case "levels of a chain" `Quick (fun () ->
        let aig = A.create () in
        let pis = Array.init 5 (fun _ -> A.add_pi aig) in
        let acc = ref pis.(0) in
        for i = 1 to 4 do
          acc := A.and_ aig !acc pis.(i)
        done;
        ignore (A.add_po aig !acc);
        let _, depth = A.levels aig in
        check int "depth" 4 depth);
    test_case "size counts only live nodes" `Quick (fun () ->
        let aig = A.create () in
        let a = A.add_pi aig and b = A.add_pi aig in
        let _dead = A.and_ aig a b in
        let live = A.or_ aig a b in
        ignore (A.add_po aig live);
        check int "live ands" 1 (A.size aig));
  ]

let balance_tests =
  let open Alcotest in
  [
    test_case "balance flattens an AND chain" `Quick (fun () ->
        let aig = A.create () in
        let pis = Array.init 8 (fun _ -> A.add_pi aig) in
        let acc = ref pis.(0) in
        for i = 1 to 7 do
          acc := A.and_ aig !acc pis.(i)
        done;
        ignore (A.add_po aig !acc);
        let balanced = Aig_lib.Aig_balance.balance aig in
        let _, d0 = A.levels aig and _, d1 = A.levels balanced in
        check int "before" 7 d0;
        check int "after" 3 d1;
        check bool "same function" true (equal_aig aig balanced));
    test_case "balance respects complemented edges" `Quick (fun () ->
        let aig = A.create () in
        let pis = Array.init 6 (fun _ -> A.add_pi aig) in
        let acc = ref pis.(0) in
        for i = 1 to 5 do
          acc := A.not_ (A.and_ aig !acc pis.(i))
        done;
        ignore (A.add_po aig !acc);
        let balanced = Aig_lib.Aig_balance.balance aig in
        check bool "same function" true (equal_aig aig balanced));
  ]

let rewrite_tests =
  let open Alcotest in
  [
    test_case "absorption" `Quick (fun () ->
        let aig = A.create () in
        let a = A.add_pi aig and b = A.add_pi aig in
        let ab = A.and_ aig a b in
        ignore (A.add_po aig (A.and_ aig ab a));
        let rewritten = Aig_lib.Aig_rewrite.rewrite aig in
        check bool "same function" true (equal_aig aig rewritten);
        check bool "not larger" true (A.size rewritten <= A.size aig));
    test_case "contradiction" `Quick (fun () ->
        let aig = A.create () in
        let a = A.add_pi aig and b = A.add_pi aig in
        let ab = A.and_ aig a b in
        ignore (A.add_po aig (A.and_ aig ab (A.not_ a)));
        let rewritten = Aig_lib.Aig_rewrite.rewrite aig in
        check bool "same function" true (equal_aig aig rewritten);
        check int "constant detected" 0 (A.size rewritten));
  ]

let props =
  [
    QCheck.Test.make ~name:"balance preserves function" ~count:80
      (QCheck.make QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let aig = random_aig seed ~pis:6 ~gates:40 ~pos:4 in
        equal_aig aig (Aig_lib.Aig_balance.balance aig));
    QCheck.Test.make ~name:"balance does not increase depth" ~count:80
      (QCheck.make QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let aig = random_aig seed ~pis:6 ~gates:40 ~pos:4 in
        let _, d0 = A.levels aig in
        let _, d1 = A.levels (Aig_lib.Aig_balance.balance aig) in
        d1 <= d0);
    QCheck.Test.make ~name:"rewrite preserves function" ~count:80
      (QCheck.make QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let aig = random_aig seed ~pis:6 ~gates:40 ~pos:4 in
        equal_aig aig (Aig_lib.Aig_rewrite.rewrite aig));
    QCheck.Test.make ~name:"rewrite does not grow" ~count:80
      (QCheck.make QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let aig = random_aig seed ~pis:6 ~gates:40 ~pos:4 in
        A.size (Aig_lib.Aig_rewrite.rewrite aig) <= A.size aig);
    QCheck.Test.make ~name:"network conversion preserves function" ~count:40
      (QCheck.make QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let net =
          Io.Gen.random_network
            ~name:(Printf.sprintf "aig-conv-%d" seed)
            ~inputs:7 ~gates:30 ~outputs:3 ()
        in
        let aig = Aig_lib.Aig_of_network.convert net in
        Array.for_all2 Truth_table.equal (A.truth_tables aig) (Network.truth_tables net));
  ]

let () =
  Alcotest.run "aig"
    [
      ("basic", basic_tests);
      ("balance", balance_tests);
      ("rewrite", rewrite_tests);
      ("props", List.map QCheck_alcotest.to_alcotest props);
    ]
