(* Espresso-style two-level minimization, NPN canonization, cut enumeration
   and cut-based Boolean rewriting. *)

open Logic

let random_tt rng n =
  Truth_table.of_function n (fun a ->
      let h = ref (Prng.int rng 1000) in
      Array.iter (fun b -> h := (!h * 31) + if b then 7 else 3) a;
      !h land 3 = 0)

let arb_seed = QCheck.make QCheck.Gen.(int_bound 1000000)

let espresso_tests =
  let open Alcotest in
  [
    test_case "tautology of universal cube" `Quick (fun () ->
        check bool "taut" true (Espresso.tautology (Sop.const 3 true));
        check bool "not taut" false (Espresso.tautology (Sop.const 3 false)));
    test_case "x + ~x is a tautology" `Quick (fun () ->
        let sop =
          Sop.of_cubes 2 [ Cube.of_string "1-"; Cube.of_string "0-" ]
        in
        check bool "taut" true (Espresso.tautology sop));
    test_case "complement of AND" `Quick (fun () ->
        let sop = Sop.of_cubes 2 [ Cube.of_string "11" ] in
        let comp = Espresso.complement sop in
        check bool "semantics" true
          (Truth_table.equal
             (Sop.to_truth_table comp)
             (Truth_table.bnot (Sop.to_truth_table sop))));
    test_case "covers" `Quick (fun () ->
        let sop = Sop.of_cubes 3 [ Cube.of_string "1--"; Cube.of_string "-1-" ] in
        check bool "covered" true (Espresso.covers sop (Cube.of_string "11-"));
        check bool "covered single" true (Espresso.covers sop (Cube.of_string "1-0"));
        check bool "not covered" false (Espresso.covers sop (Cube.of_string "--1")));
    test_case "expand grows cubes" `Quick (fun () ->
        (* f = x&y + x&~y = x: both cubes should expand to x *)
        let sop = Sop.of_cubes 2 [ Cube.of_string "11"; Cube.of_string "10" ] in
        let e = Espresso.expand sop in
        check int "one cube" 1 (Sop.num_cubes e);
        check bool "same function" true (Sop.equal_semantics sop e));
    test_case "irredundant drops covered cube" `Quick (fun () ->
        let sop =
          Sop.of_cubes 3
            [ Cube.of_string "1--"; Cube.of_string "-1-"; Cube.of_string "11-" ]
        in
        let r = Espresso.irredundant sop in
        check int "two cubes" 2 (Sop.num_cubes r);
        check bool "same function" true (Sop.equal_semantics sop r));
    test_case "classic minimization example" `Quick (fun () ->
        (* minterm list of f = a'b' + ab (xnor on 2 vars): irreducible *)
        let tt = Truth_table.bnot (Truth_table.bxor (Truth_table.var 2 0) (Truth_table.var 2 1)) in
        let minimized = Espresso.minimize (Sop.of_truth_table tt) in
        check int "two cubes" 2 (Sop.num_cubes minimized));
  ]

let espresso_props =
  [
    QCheck.Test.make ~name:"complement is involutive on semantics" ~count:100 arb_seed
      (fun seed ->
        let tt = random_tt (Prng.create seed) 5 in
        let sop = Sop.of_truth_table tt in
        Truth_table.equal (Truth_table.bnot tt)
          (Sop.to_truth_table (Espresso.complement sop)));
    QCheck.Test.make ~name:"tautology agrees with the truth table" ~count:100 arb_seed
      (fun seed ->
        let tt = random_tt (Prng.create seed) 4 in
        let sop = Sop.of_truth_table tt in
        Espresso.tautology sop = Truth_table.equal tt (Truth_table.const 4 true));
    QCheck.Test.make ~name:"minimize preserves the function" ~count:100 arb_seed
      (fun seed ->
        let tt = random_tt (Prng.create seed) 5 in
        let sop = Sop.of_truth_table tt in
        Truth_table.equal tt (Sop.to_truth_table (Espresso.minimize sop)));
    QCheck.Test.make ~name:"minimize never has more cubes" ~count:100 arb_seed
      (fun seed ->
        let tt = random_tt (Prng.create seed) 5 in
        let sop = Sop.of_truth_table tt in
        Sop.num_cubes (Espresso.minimize sop) <= max 1 (Sop.num_cubes sop));
  ]

let npn_tests =
  let open Alcotest in
  [
    test_case "and/or are NPN equivalent" `Quick (fun () ->
        let a = Truth_table.var 2 0 and b = Truth_table.var 2 1 in
        let c1, _ = Npn.canonize (Truth_table.band a b) in
        let c2, _ = Npn.canonize (Truth_table.bor a b) in
        check string "same class" (Truth_table.to_bits c1) (Truth_table.to_bits c2));
    test_case "xor and xnor are NPN equivalent" `Quick (fun () ->
        let a = Truth_table.var 2 0 and b = Truth_table.var 2 1 in
        let c1, _ = Npn.canonize (Truth_table.bxor a b) in
        let c2, _ = Npn.canonize (Truth_table.bnot (Truth_table.bxor a b)) in
        check string "same class" (Truth_table.to_bits c1) (Truth_table.to_bits c2));
    test_case "and is not NPN equivalent to xor" `Quick (fun () ->
        let a = Truth_table.var 2 0 and b = Truth_table.var 2 1 in
        let c1, _ = Npn.canonize (Truth_table.band a b) in
        let c2, _ = Npn.canonize (Truth_table.bxor a b) in
        check bool "different" true (Truth_table.to_bits c1 <> Truth_table.to_bits c2));
  ]

let npn_props =
  [
    QCheck.Test.make ~name:"canonize transform maps f to canonical" ~count:200 arb_seed
      (fun seed ->
        let tt = random_tt (Prng.create seed) 4 in
        let canonical, t = Npn.canonize tt in
        Truth_table.equal canonical (Npn.apply t tt));
    QCheck.Test.make ~name:"NPN-equivalent functions share the canonical form" ~count:100
      arb_seed (fun seed ->
        let rng = Prng.create seed in
        let tt = random_tt rng 4 in
        (* random transform of tt *)
        let perm = [| 0; 1; 2; 3 |] in
        Prng.shuffle rng perm;
        let t =
          {
            Npn.perm;
            input_neg = Array.init 4 (fun _ -> Prng.bool rng);
            output_neg = Prng.bool rng;
          }
        in
        let variant = Npn.apply t tt in
        let c1, _ = Npn.canonize tt in
        let c2, _ = Npn.canonize variant in
        Truth_table.equal c1 c2);
    QCheck.Test.make ~name:"signals_for rewires correctly" ~count:100 arb_seed (fun seed ->
        (* build canonical as an MIG, rewire via signals_for, compare to f *)
        let tt = random_tt (Prng.create seed) 4 in
        let canonical, t = Npn.canonize tt in
        let mig = Core.Mig.create () in
        let pis = Array.init 4 (fun _ -> Core.Mig.add_pi mig) in
        let sop = Sop.of_truth_table canonical in
        (* canonical implementation over fresh "ports" *)
        let implement operands =
          List.fold_left
            (fun acc cube ->
              let term =
                List.fold_left
                  (fun acc (v, positive) ->
                    let s = if positive then operands.(v) else Core.Mig.not_ operands.(v) in
                    Core.Mig.and_ mig acc s)
                  Core.Mig.const1 (Cube.literals cube)
              in
              Core.Mig.or_ mig acc term)
            Core.Mig.const0 (Sop.cubes sop)
        in
        let operands, out_neg = Npn.signals_for t pis Core.Mig.not_ in
        let s = implement operands in
        let s = if out_neg then Core.Mig.not_ s else s in
        ignore (Core.Mig.add_po mig s);
        Truth_table.equal tt (Core.Mig_sim.truth_tables mig).(0));
  ]

let cuts_tests =
  let open Alcotest in
  [
    test_case "cuts of a two-level structure" `Quick (fun () ->
        let mig = Core.Mig.create () in
        let a = Core.Mig.add_pi mig and b = Core.Mig.add_pi mig in
        let c = Core.Mig.add_pi mig and d = Core.Mig.add_pi mig in
        let g1 = Core.Mig.and_ mig a b in
        let g2 = Core.Mig.and_ mig c d in
        let root = Core.Mig.or_ mig g1 g2 in
        ignore (Core.Mig.add_po mig root);
        let cuts = Core.Mig_cuts.enumerate ~k:4 mig in
        let root_cuts = Core.Mig_cuts.cuts_of cuts (Core.Mig.node_of root) in
        (* the 4-leaf cut {a,b,c,d,const?}: and_ uses const0 as third input,
           so leaves include node 0; just require a cut covering all PIs *)
        check bool "has a wide cut" true
          (List.exists (fun cut -> Array.length cut >= 3) root_cuts));
    test_case "cut function matches simulation" `Quick (fun () ->
        let mig = Core.Mig.create () in
        let a = Core.Mig.add_pi mig and b = Core.Mig.add_pi mig and c = Core.Mig.add_pi mig in
        let g = Core.Mig.maj mig a (Core.Mig.not_ b) c in
        ignore (Core.Mig.add_po mig g);
        let cut = Array.of_list (List.sort compare (List.map Core.Mig.node_of [ a; b; c ])) in
        let tt = Core.Mig_cuts.cut_function mig (Core.Mig.node_of g) cut in
        let expect =
          Truth_table.maj3 (Truth_table.var 3 0)
            (Truth_table.bnot (Truth_table.var 3 1))
            (Truth_table.var 3 2)
        in
        check bool "tt" true (Truth_table.equal tt expect));
    test_case "mffc of a private cone" `Quick (fun () ->
        let mig = Core.Mig.create () in
        let a = Core.Mig.add_pi mig and b = Core.Mig.add_pi mig and c = Core.Mig.add_pi mig in
        let g1 = Core.Mig.and_ mig a b in
        let root = Core.Mig.or_ mig g1 c in
        ignore (Core.Mig.add_po mig root);
        let cut = Array.of_list (List.sort compare (List.map Core.Mig.node_of [ a; b; c ])) in
        check int "both gates private" 2
          (Core.Mig_cuts.mffc_size mig (Core.Mig.node_of root) cut));
    test_case "mffc excludes shared node" `Quick (fun () ->
        let mig = Core.Mig.create () in
        let a = Core.Mig.add_pi mig and b = Core.Mig.add_pi mig and c = Core.Mig.add_pi mig in
        let g1 = Core.Mig.and_ mig a b in
        let root = Core.Mig.or_ mig g1 c in
        ignore (Core.Mig.add_po mig root);
        ignore (Core.Mig.add_po mig g1);
        (* g1 is shared with an output *)
        let cut = Array.of_list (List.sort compare (List.map Core.Mig.node_of [ a; b; c ])) in
        check int "only the root" 1
          (Core.Mig_cuts.mffc_size mig (Core.Mig.node_of root) cut));
  ]

let rewrite_tests =
  let open Alcotest in
  [
    test_case "collapses a redundant mux structure" `Quick (fun () ->
        (* mux(s, a, a) built without simplification-aware construction *)
        let mig = Core.Mig.create () in
        let s = Core.Mig.add_pi mig and a = Core.Mig.add_pi mig in
        let t1 = Core.Mig.maj mig s a Core.Mig.const0 in
        let t2 = Core.Mig.maj mig (Core.Mig.not_ s) a Core.Mig.const0 in
        ignore (Core.Mig.add_po mig (Core.Mig.maj mig t1 t2 Core.Mig.const1));
        let rewritten = Core.Mig_cut_rewrite.rewrite mig in
        check bool "shrank" true (Core.Mig.size rewritten < Core.Mig.size mig);
        Alcotest.(check bool) "equivalent" true (Core.Mig_equiv.equivalent mig rewritten));
    test_case "improves on SOP-heavy structures" `Quick (fun () ->
        let net = Funcgen.rd 5 3 in
        let mig = Core.Mig_of_network.convert net in
        let rewritten = Core.Mig_cut_rewrite.rewrite mig in
        check bool "not larger" true (Core.Mig.size rewritten <= Core.Mig.size mig);
        check bool "equivalent" true (Core.Mig_equiv.equivalent_network rewritten net));
  ]

let rewrite_props =
  let random_mig seed =
    let rng = Prng.create seed in
    let mig = Core.Mig.create () in
    let signals = ref [| Core.Mig.const0 |] in
    let add s = signals := Array.append !signals [| s |] in
    for _ = 1 to 6 do
      add (Core.Mig.add_pi mig)
    done;
    for _ = 1 to 40 do
      let pick () =
        let s = Prng.pick rng !signals in
        if Prng.bool rng then Core.Mig.not_ s else s
      in
      add (Core.Mig.maj mig (pick ()) (pick ()) (pick ()))
    done;
    for _ = 1 to 4 do
      ignore (Core.Mig.add_po mig (Prng.pick rng !signals))
    done;
    Core.Mig.cleanup mig
  in
  [
    QCheck.Test.make ~name:"cut rewriting preserves the function" ~count:50 arb_seed
      (fun seed ->
        let mig = random_mig seed in
        Core.Mig_equiv.equivalent mig (Core.Mig_cut_rewrite.rewrite mig));
    QCheck.Test.make ~name:"cut rewriting never grows the graph" ~count:50 arb_seed
      (fun seed ->
        let mig = random_mig seed in
        Core.Mig.size (Core.Mig_cut_rewrite.rewrite mig) <= Core.Mig.size mig);
    QCheck.Test.make ~name:"cut rewriting leaves valid graphs" ~count:50 arb_seed
      (fun seed ->
        let mig = random_mig seed in
        Core.Mig_check.check (Core.Mig_cut_rewrite.rewrite mig) = Ok ());
    QCheck.Test.make ~name:"cut functions agree with cone simulation" ~count:50 arb_seed
      (fun seed ->
        let mig = random_mig seed in
        let cuts = Core.Mig_cuts.enumerate mig in
        List.for_all
          (fun g ->
            List.for_all
              (fun cut ->
                Array.length cut > Npn.max_vars
                ||
                let tt = Core.Mig_cuts.cut_function mig g cut in
                (* validate on a few random leaf assignments against a fresh
                   MIG built over the cut cone *)
                let rng = Prng.create (seed + g) in
                List.for_all
                  (fun _ ->
                    let leaf_vals = Array.map (fun _ -> Prng.bool rng) cut in
                    let values = Hashtbl.create 7 in
                    Array.iteri (fun i l -> Hashtbl.replace values l leaf_vals.(i)) cut;
                    let rec eval n =
                      match Hashtbl.find_opt values n with
                      | Some v -> v
                      | None ->
                          let f = Core.Mig.fanins mig n in
                          let v s =
                            let x = eval (Core.Mig.node_of s) in
                            if Core.Mig.is_compl s then not x else x
                          in
                          let a = v f.(0) and b = v f.(1) and c = v f.(2) in
                          let r = (a && b) || (a && c) || (b && c) in
                          Hashtbl.replace values n r;
                          r
                    in
                    let direct = eval g in
                    let m = ref 0 in
                    Array.iteri (fun i b -> if b then m := !m lor (1 lsl i)) leaf_vals;
                    direct = Truth_table.get tt !m)
                  (List.init 8 (fun x -> x)))
              (Core.Mig_cuts.cuts_of cuts g))
          (Core.Mig.topo_order mig));
  ]

let () =
  Alcotest.run "boolean"
    [
      ("espresso", espresso_tests);
      ("espresso-props", List.map QCheck_alcotest.to_alcotest espresso_props);
      ("npn", npn_tests);
      ("npn-props", List.map QCheck_alcotest.to_alcotest npn_props);
      ("cuts", cuts_tests);
      ("cut-rewrite", rewrite_tests);
      ("cut-rewrite-props", List.map QCheck_alcotest.to_alcotest rewrite_props);
    ]
