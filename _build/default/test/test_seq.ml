(* Sequential circuits: the Seq wrapper, sequential parsing, the crossbar
   FSM executor, and fault injection. *)

open Logic

(* Deterministic random sequential machine: random combinational core over
   pis + regs inputs. *)
let random_seq seed ~pis ~regs ~pos =
  let name = Printf.sprintf "seq-%d" seed in
  let core =
    Io.Gen.random_network ~name ~inputs:(pis + regs) ~gates:30 ~outputs:(pos + regs) ()
  in
  let rng = Prng.create seed in
  Seq.create core ~num_pis:pis ~num_pos:pos ~init:(Array.init regs (fun _ -> Prng.bool rng))

let seq_tests =
  let open Alcotest in
  [
    test_case "create validates shapes" `Quick (fun () ->
        let net = Funcgen.full_adder () in
        (* 3 inputs, 2 outputs: pis=2/regs=1 works, pis=3/regs=1 does not *)
        (match Seq.create net ~num_pis:2 ~num_pos:1 ~init:[| false |] with
        | _ -> ()
        | exception Invalid_argument _ -> fail "should accept 2+1/1+1");
        match Seq.create net ~num_pis:3 ~num_pos:2 ~init:[| false |] with
        | exception Invalid_argument _ -> ()
        | _ -> fail "should reject mismatched shapes");
    test_case "toggle flip-flop semantics" `Quick (fun () ->
        (* next = q xor en; out = q *)
        let net = Network.create () in
        let en = Network.add_input net "en" in
        let q = Network.add_input net "q" in
        Network.add_output net "out" q;
        Network.add_output net "next" (Network.xor2 net en q);
        let seq = Seq.create net ~num_pis:1 ~num_pos:1 ~init:[| false |] in
        let outs = Seq.simulate seq (List.init 5 (fun _ -> [| true |])) in
        check (list bool) "toggles" [ false; true; false; true; false ]
          (List.map (fun o -> o.(0)) outs));
    test_case "initial state respected" `Quick (fun () ->
        let net = Network.create () in
        let _en = Network.add_input net "en" in
        let q = Network.add_input net "q" in
        Network.add_output net "out" q;
        Network.add_output net "next" q;
        let seq = Seq.create net ~num_pis:1 ~num_pos:1 ~init:[| true |] in
        let outs = Seq.simulate seq [ [| false |]; [| false |] ] in
        check (list bool) "holds one" [ true; true ] (List.map (fun o -> o.(0)) outs));
  ]

let parse_tests =
  let open Alcotest in
  [
    test_case "sequential BLIF with .latch" `Quick (fun () ->
        let text =
          ".model t\n.inputs en\n.outputs out\n.latch next q 1\n.names en q next\n10 1\n01 1\n.names q out\n1 1\n.end"
        in
        let seq = Io.Blif.parse_sequential_string text in
        check int "pis" 1 (Seq.num_pis seq);
        check int "pos" 1 (Seq.num_pos seq);
        check int "regs" 1 (Seq.num_regs seq);
        check (array bool) "init" [| true |] (Seq.initial_state seq);
        (* toggles down from 1 *)
        let outs = Seq.simulate seq (List.init 4 (fun _ -> [| true |])) in
        check (list bool) "toggle from 1" [ true; false; true; false ]
          (List.map (fun o -> o.(0)) outs));
    test_case "combinational parse still rejects .latch" `Quick (fun () ->
        match Io.Blif.parse_string ".model l\n.inputs a\n.outputs q\n.latch a q\n.end" with
        | exception Io.Blif.Parse_error _ -> ()
        | _ -> fail "expected Parse_error");
    test_case "sequential bench with DFF" `Quick (fun () ->
        let text = "INPUT(en)\nOUTPUT(out)\nq = DFF(next)\nnext = XOR(en, q)\nout = BUFF(q)\n" in
        let seq = Io.Bench_format.parse_sequential_string text in
        check int "regs" 1 (Seq.num_regs seq);
        let outs = Seq.simulate seq (List.init 4 (fun _ -> [| true |])) in
        check (list bool) "toggles" [ false; true; false; true ]
          (List.map (fun o -> o.(0)) outs));
  ]

let exec_tests =
  let open Alcotest in
  [
    test_case "crossbar FSM matches reference (both realizations)" `Quick (fun () ->
        let seq = random_seq 42 ~pis:3 ~regs:2 ~pos:2 in
        List.iter
          (fun realization ->
            let machine = Rram.Seq_exec.compile ~effort:4 realization seq in
            match Rram.Seq_exec.verify machine seq () with
            | Ok () -> ()
            | Error e -> fail e)
          [ Core.Rram_cost.Imp; Core.Rram_cost.Maj ]);
    test_case "steps per cycle follows the cost model" `Quick (fun () ->
        (* toggle flip-flop: one XOR -> 3 MIG gates at depth 2-3 *)
        let net = Network.create () in
        let en = Network.add_input net "en" in
        let q = Network.add_input net "q" in
        Network.add_output net "out" q;
        Network.add_output net "next" (Network.xor2 net en q);
        let seq = Seq.create net ~num_pis:1 ~num_pos:1 ~init:[| false |] in
        let machine = Rram.Seq_exec.compile ~effort:4 Core.Rram_cost.Maj seq in
        check bool "positive" true (Rram.Seq_exec.steps_per_cycle machine > 0);
        (* MAJ realization: S = 3D + L, so a depth-2 core stays under 10 *)
        check bool "small" true (Rram.Seq_exec.steps_per_cycle machine <= 10));
  ]

let exec_props =
  [
    QCheck.Test.make ~name:"random FSMs: crossbar = reference" ~count:25
      (QCheck.make QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let seq = random_seq seed ~pis:3 ~regs:3 ~pos:2 in
        let machine = Rram.Seq_exec.compile ~effort:2 Core.Rram_cost.Maj seq in
        Rram.Seq_exec.verify machine seq ~cycles:32 () = Ok ());
  ]

let fault_tests =
  let open Alcotest in
  [
    test_case "no faults = full yield" `Quick (fun () ->
        let mig = Core.Mig_of_network.convert (Funcgen.full_adder ()) in
        let compiled = Rram.Compile_mig.compile Core.Rram_cost.Maj mig in
        let y =
          Rram.Faults.functional_yield ~trials:20 ~rate:0.0
            compiled.Rram.Compile_mig.program ~reference:(Core.Mig_sim.eval mig)
        in
        check (float 0.001) "yield 1" 1.0 y.Rram.Faults.yield);
    test_case "saturating fault rate kills the yield" `Quick (fun () ->
        let mig = Core.Mig_of_network.convert (Funcgen.rd 5 3) in
        let compiled = Rram.Compile_mig.compile Core.Rram_cost.Maj mig in
        let y =
          Rram.Faults.functional_yield ~trials:20 ~rate:1.0
            compiled.Rram.Compile_mig.program ~reference:(Core.Mig_sim.eval mig)
        in
        check bool "yield < 0.5" true (y.Rram.Faults.yield < 0.5));
    test_case "a single stuck output register corrupts results" `Quick (fun () ->
        let mig = Core.Mig.create () in
        let a = Core.Mig.add_pi mig and b = Core.Mig.add_pi mig and c = Core.Mig.add_pi mig in
        ignore (Core.Mig.add_po mig (Core.Mig.maj mig a b c));
        let compiled = Rram.Compile_mig.compile Core.Rram_cost.Maj mig in
        let vectors = Rram.Verify.vectors 3 in
        (* find the output register and stick it at 0 *)
        let out_reg =
          match compiled.Rram.Compile_mig.program.Rram.Program.outputs.(0) with
          | Rram.Isa.Reg r -> r
          | _ -> fail "expected register output"
        in
        check bool "corrupts" false
          (Rram.Faults.survives compiled.Rram.Compile_mig.program
             ~reference:(Core.Mig_sim.eval mig)
             [ { Rram.Faults.cell = out_reg; value = false } ]
             vectors));
    test_case "yield is monotone in fault rate (statistically)" `Quick (fun () ->
        let mig = Core.Mig_of_network.convert (Funcgen.comparator 3) in
        let compiled = Rram.Compile_mig.compile Core.Rram_cost.Maj mig in
        let reference = Core.Mig_sim.eval mig in
        let y rate =
          (Rram.Faults.functional_yield ~trials:100 ~rate
             compiled.Rram.Compile_mig.program ~reference)
            .Rram.Faults.yield
        in
        check bool "monotone-ish" true (y 0.001 >= y 0.05));
  ]

let () =
  Alcotest.run "seq"
    [
      ("seq", seq_tests);
      ("parsing", parse_tests);
      ("exec", exec_tests);
      ("exec-props", List.map QCheck_alcotest.to_alcotest exec_props);
      ("faults", fault_tests);
    ]
