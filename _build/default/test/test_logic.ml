open Logic

let bitvec_tests =
  let open Alcotest in
  [
    test_case "create zero" `Quick (fun () ->
        let v = Bitvec.create 100 in
        check bool "is_zero" true (Bitvec.is_zero v);
        check int "width" 100 (Bitvec.width v));
    test_case "set/get round-trip" `Quick (fun () ->
        let v = Bitvec.create 130 in
        Bitvec.set v 0 true;
        Bitvec.set v 64 true;
        Bitvec.set v 129 true;
        Alcotest.(check bool) "bit 0" true (Bitvec.get v 0);
        Alcotest.(check bool) "bit 64" true (Bitvec.get v 64);
        Alcotest.(check bool) "bit 129" true (Bitvec.get v 129);
        Alcotest.(check bool) "bit 1" false (Bitvec.get v 1);
        Alcotest.(check int) "popcount" 3 (Bitvec.popcount v));
    test_case "bnot keeps padding clear" `Quick (fun () ->
        let v = Bitvec.create 70 in
        let n = Bitvec.bnot v in
        check int "popcount" 70 (Bitvec.popcount n));
    test_case "maj3 truth" `Quick (fun () ->
        let mk bits = Bitvec.of_string bits in
        (* columns are the 8 input combinations of (a, b, c) *)
        let a = mk "11110000" and b = mk "11001100" and c = mk "10101010" in
        let expect = mk "11101000" in
        check bool "maj" true (Bitvec.equal (Bitvec.maj3 a b c) expect));
    test_case "mux truth" `Quick (fun () ->
        let mk = Bitvec.of_string in
        let s = mk "1100" and a = mk "1010" and b = mk "0110" in
        check bool "mux" true (Bitvec.equal (Bitvec.mux s a b) (mk "1010")));
    test_case "string round-trip" `Quick (fun () ->
        let s = "1011001110001" in
        check string "round" s (Bitvec.to_string (Bitvec.of_string s)));
  ]

let bitvec_props =
  let gen_width = QCheck.Gen.int_range 1 200 in
  let arb =
    QCheck.make
      QCheck.Gen.(
        gen_width >>= fun w ->
        int >>= fun seed ->
        return (w, seed))
  in
  let vec (w, seed) =
    let v = Bitvec.create w in
    Bitvec.randomize (Prng.create seed) v;
    v
  in
  [
    QCheck.Test.make ~name:"double negation" ~count:200 arb (fun p ->
        let v = vec p in
        Bitvec.equal v (Bitvec.bnot (Bitvec.bnot v)));
    QCheck.Test.make ~name:"xor self is zero" ~count:200 arb (fun p ->
        let v = vec p in
        Bitvec.is_zero (Bitvec.bxor v v));
    QCheck.Test.make ~name:"maj(a,a,b) = a" ~count:200 arb (fun (w, seed) ->
        let rng = Prng.create seed in
        let a = Bitvec.create w and b = Bitvec.create w in
        Bitvec.randomize rng a;
        Bitvec.randomize rng b;
        Bitvec.equal (Bitvec.maj3 a a b) a);
    QCheck.Test.make ~name:"maj(a,~a,b) = b" ~count:200 arb (fun (w, seed) ->
        let rng = Prng.create seed in
        let a = Bitvec.create w and b = Bitvec.create w in
        Bitvec.randomize rng a;
        Bitvec.randomize rng b;
        Bitvec.equal (Bitvec.maj3 a (Bitvec.bnot a) b) b);
  ]

let tt_tests =
  let open Alcotest in
  [
    test_case "var projections" `Quick (fun () ->
        let t = Truth_table.var 3 1 in
        (* variable 1 is true on minterms with bit 1 set *)
        List.iter
          (fun m -> check bool (string_of_int m) (m land 2 <> 0) (Truth_table.get t m))
          [ 0; 1; 2; 3; 4; 5; 6; 7 ]);
    test_case "var beyond word boundary" `Quick (fun () ->
        let t = Truth_table.var 8 7 in
        check bool "m=127" false (Truth_table.get t 127);
        check bool "m=128" true (Truth_table.get t 128));
    test_case "cofactor removes dependence" `Quick (fun () ->
        let x = Truth_table.var 3 0 and y = Truth_table.var 3 1 in
        let f = Truth_table.band x y in
        let c = Truth_table.cofactor f 0 true in
        check bool "depends" false (Truth_table.depends_on c 0);
        check bool "equals y" true (Truth_table.equal c y));
    test_case "of_function majority" `Quick (fun () ->
        let f =
          Truth_table.of_function 3 (fun a ->
              (if a.(0) then 1 else 0) + (if a.(1) then 1 else 0) + (if a.(2) then 1 else 0)
              >= 2)
        in
        let g =
          Truth_table.maj3 (Truth_table.var 3 0) (Truth_table.var 3 1) (Truth_table.var 3 2)
        in
        check bool "equal" true (Truth_table.equal f g));
    test_case "bits round-trip" `Quick (fun () ->
        let s = "0110100110010110" in
        check string "round" s (Truth_table.to_bits (Truth_table.of_bits s)));
  ]

let cube_sop_tests =
  let open Alcotest in
  [
    test_case "cube parse/print" `Quick (fun () ->
        check string "round" "1-0" (Cube.to_string (Cube.of_string "1-0")));
    test_case "cube eval" `Quick (fun () ->
        let c = Cube.of_string "1-0" in
        check bool "101" false (Cube.eval c [| true; false; true |]);
        check bool "100" true (Cube.eval c [| true; false; false |]);
        check bool "110" true (Cube.eval c [| true; true; false |]));
    test_case "cube containment" `Quick (fun () ->
        let big = Cube.of_string "1--" and small = Cube.of_string "1-0" in
        check bool "big contains small" true (Cube.contains big small);
        check bool "small contains big" false (Cube.contains small big));
    test_case "sop of/to truth table" `Quick (fun () ->
        let tt =
          Truth_table.bxor (Truth_table.var 4 0)
            (Truth_table.band (Truth_table.var 4 1) (Truth_table.var 4 2))
        in
        let sop = Sop.of_truth_table tt in
        check bool "semantics" true (Truth_table.equal tt (Sop.to_truth_table sop)));
    test_case "minimize merges distance-1" `Quick (fun () ->
        let sop = Sop.of_cubes 2 [ Cube.of_string "10"; Cube.of_string "11" ] in
        let m = Sop.minimize sop in
        check int "cubes" 1 (Sop.num_cubes m);
        check bool "same function" true (Sop.equal_semantics sop m));
    test_case "complement of xor" `Quick (fun () ->
        let tt = Truth_table.bxor (Truth_table.var 2 0) (Truth_table.var 2 1) in
        let sop = Sop.of_truth_table tt in
        let comp = Sop.complement_naive sop in
        check bool "complement semantics" true
          (Truth_table.equal (Truth_table.bnot tt) (Sop.to_truth_table comp)));
  ]

let sop_props =
  let arb_tt n =
    QCheck.make
      QCheck.Gen.(
        int >>= fun seed ->
        return
          (Truth_table.of_function n (fun a ->
               let h = ref seed in
               Array.iter (fun b -> h := (!h * 31) + if b then 7 else 3) a;
               !h land 8 = 0)))
  in
  [
    QCheck.Test.make ~name:"sop round-trip preserves function" ~count:100 (arb_tt 5)
      (fun tt ->
        Truth_table.equal tt (Sop.to_truth_table (Sop.of_truth_table tt)));
    QCheck.Test.make ~name:"minimize preserves function" ~count:100 (arb_tt 5) (fun tt ->
        let sop = Sop.of_truth_table tt in
        Sop.equal_semantics sop (Sop.minimize sop));
    QCheck.Test.make ~name:"complement_naive correct" ~count:50 (arb_tt 4) (fun tt ->
        let sop = Sop.of_truth_table tt in
        Truth_table.equal (Truth_table.bnot tt)
          (Sop.to_truth_table (Sop.complement_naive sop)));
  ]

let network_tests =
  let open Alcotest in
  [
    test_case "full adder truth" `Quick (fun () ->
        let net = Funcgen.full_adder () in
        for m = 0 to 7 do
          let a = [| m land 1 <> 0; m land 2 <> 0; m land 4 <> 0 |] in
          let outs = Network.eval net a in
          let ones = Array.fold_left (fun acc b -> acc + if b then 1 else 0) 0 a in
          check bool "sum" (ones land 1 = 1) outs.(0);
          check bool "carry" (ones >= 2) outs.(1)
        done);
    test_case "ripple = CLA" `Quick (fun () ->
        let r = Funcgen.ripple_adder 5 and c = Funcgen.carry_lookahead_adder 5 in
        let tr = Network.truth_tables r and tc = Network.truth_tables c in
        check int "outputs" (Array.length tr) (Array.length tc);
        Array.iteri
          (fun i t -> check bool (Printf.sprintf "out%d" i) true (Truth_table.equal t tc.(i)))
          tr);
    test_case "multiplier small" `Quick (fun () ->
        let net = Funcgen.multiplier 3 in
        for a = 0 to 7 do
          for b = 0 to 7 do
            let ins = Array.init 6 (fun i -> if i < 3 then a land (1 lsl i) <> 0 else b land (1 lsl (i - 3)) <> 0) in
            let outs = Network.eval net ins in
            let p = ref 0 in
            Array.iteri (fun i v -> if v then p := !p lor (1 lsl i)) outs;
            check int (Printf.sprintf "%d*%d" a b) (a * b) !p
          done
        done);
    test_case "comparator" `Quick (fun () ->
        let net = Funcgen.comparator 4 in
        for a = 0 to 15 do
          for b = 0 to 15 do
            let ins = Array.init 8 (fun i -> if i < 4 then a land (1 lsl i) <> 0 else b land (1 lsl (i - 4)) <> 0) in
            let outs = Network.eval net ins in
            check bool "lt" (a < b) outs.(0);
            check bool "eq" (a = b) outs.(1);
            check bool "gt" (a > b) outs.(2)
          done
        done);
    test_case "rd53 counts ones" `Quick (fun () ->
        let net = Funcgen.rd 5 3 in
        for m = 0 to 31 do
          let ins = Array.init 5 (fun i -> m land (1 lsl i) <> 0) in
          let outs = Network.eval net ins in
          let ones = Array.fold_left (fun acc b -> acc + if b then 1 else 0) 0 ins in
          let v = ref 0 in
          Array.iteri (fun i b -> if b then v := !v lor (1 lsl i)) outs;
          check int (Printf.sprintf "m=%d" m) ones !v
        done);
    test_case "9sym symmetric window" `Quick (fun () ->
        let net = Funcgen.sym_range 9 3 6 in
        let rng = Prng.create 42 in
        for _ = 1 to 200 do
          let ins = Array.init 9 (fun _ -> Prng.bool rng) in
          let ones = Array.fold_left (fun acc b -> acc + if b then 1 else 0) 0 ins in
          let outs = Network.eval net ins in
          Alcotest.(check bool) "sym" (ones >= 3 && ones <= 6) outs.(0)
        done);
    test_case "mux_tree selects" `Quick (fun () ->
        let net = Funcgen.mux_tree 3 in
        let rng = Prng.create 7 in
        for _ = 1 to 100 do
          let sel = Prng.int rng 8 in
          let data = Array.init 8 (fun _ -> Prng.bool rng) in
          let ins = Array.init 12 (fun i ->
              if i < 3 then sel land (1 lsl i) <> 0
              else if i < 11 then data.(i - 3)
              else true)
          in
          let outs = Network.eval net ins in
          Alcotest.(check bool) "mux" data.(sel) outs.(0)
        done);
    test_case "parity" `Quick (fun () ->
        let net = Funcgen.parity 7 in
        let tts = Network.truth_tables net in
        let expect =
          Truth_table.of_function 7 (fun a ->
              Array.fold_left (fun acc b -> acc <> b) false a)
        in
        check bool "parity tt" true (Truth_table.equal tts.(0) expect));
    test_case "majority_n = popcount ge" `Quick (fun () ->
        let net = Funcgen.majority_n 7 in
        let rng = Prng.create 99 in
        for _ = 1 to 200 do
          let ins = Array.init 7 (fun _ -> Prng.bool rng) in
          let ones = Array.fold_left (fun acc b -> acc + if b then 1 else 0) 0 ins in
          Alcotest.(check bool) "maj" (ones >= 4) (Network.eval net ins).(0)
        done);
    test_case "alu4 logic mode AND" `Quick (fun () ->
        let net = Funcgen.alu4 () in
        (* m=1, s=1000 (s3=1 others 0): f_i = s[2a+b] = a AND b *)
        let rng = Prng.create 5 in
        for _ = 1 to 100 do
          let a = Prng.int rng 16 and b = Prng.int rng 16 in
          let ins =
            Array.concat
              [
                [| true |];
                [| false; false; false; true |];
                Array.init 4 (fun i -> a land (1 lsl i) <> 0);
                Array.init 4 (fun i -> b land (1 lsl i) <> 0);
                [| false |];
              ]
          in
          let outs = Network.eval net ins in
          for i = 0 to 3 do
            Alcotest.(check bool) "and bit"
              (a land b land (1 lsl i) <> 0)
              outs.(i)
          done
        done);
    test_case "alu4 arithmetic add" `Quick (fun () ->
        let net = Funcgen.alu4 () in
        (* m=0, s1=s0=1 selects op2 = b and s3=s2=0 keeps a' = a: f = a+b *)
        let rng = Prng.create 6 in
        for _ = 1 to 100 do
          let a = Prng.int rng 16 and b = Prng.int rng 16 in
          let ins =
            Array.concat
              [
                [| false |];
                [| true; true; false; false |];
                Array.init 4 (fun i -> a land (1 lsl i) <> 0);
                Array.init 4 (fun i -> b land (1 lsl i) <> 0);
                [| false |];
              ]
          in
          let outs = Network.eval net ins in
          let sum = a + b in
          for i = 0 to 3 do
            Alcotest.(check bool) "sum bit" (sum land (1 lsl i) <> 0) outs.(i)
          done;
          Alcotest.(check bool) "cout" (sum >= 16) outs.(4)
        done);
    test_case "square low bits" `Quick (fun () ->
        let net = Funcgen.square 7 10 in
        for v = 0 to 127 do
          let ins = Array.init 7 (fun i -> v land (1 lsl i) <> 0) in
          let outs = Network.eval net ins in
          let p = ref 0 in
          Array.iteri (fun i b -> if b then p := !p lor (1 lsl i)) outs;
          Alcotest.(check int) (Printf.sprintf "%d^2" v) (v * v mod 1024) !p
        done);
    test_case "cordic stage adds and subtracts" `Quick (fun () ->
        let net = Funcgen.cordic_stage 11 2 in
        let rng = Prng.create 12 in
        for _ = 1 to 200 do
          let x = Prng.int rng 2048 and y = Prng.int rng 2048 in
          let d = Prng.bool rng in
          let ins =
            Array.concat
              [
                Array.init 11 (fun i -> x land (1 lsl i) <> 0);
                Array.init 11 (fun i -> y land (1 lsl i) <> 0);
                [| d |];
              ]
          in
          let outs = Network.eval net ins in
          let r = ref 0 in
          Array.iteri (fun i b -> if b then r := !r lor (1 lsl i)) (Array.sub outs 0 11);
          (* arithmetic shift of the unsigned-held two's complement value *)
          let z = (y asr 2) lor (if y land 0x400 <> 0 then 0x700 else 0) in
          let expect = (if d then x + z else x - z) land 0x7FF in
          Alcotest.(check int) "rotate" expect !r
        done);
    test_case "t481 substitute is deterministic" `Quick (fun () ->
        let t1 = Network.truth_tables (Funcgen.t481 ()) in
        let t2 = Network.truth_tables (Funcgen.t481 ()) in
        Alcotest.(check bool) "same" true (Truth_table.equal t1.(0) t2.(0)));
    test_case "clip saturates" `Quick (fun () ->
        let net = Funcgen.clip () in
        let eval_signed x =
          let ux = x land 0x1FF in
          let ins = Array.init 9 (fun i -> ux land (1 lsl i) <> 0) in
          let outs = Network.eval net ins in
          let v = ref 0 in
          Array.iteri (fun i b -> if b then v := !v lor (1 lsl i)) outs;
          if !v >= 16 then !v - 32 else !v
        in
        Alcotest.(check int) "in range" 7 (eval_signed 7);
        Alcotest.(check int) "in range neg" (-9) (eval_signed (-9));
        Alcotest.(check int) "saturate high" 15 (eval_signed 100);
        Alcotest.(check int) "saturate low" (-16) (eval_signed (-200)));
  ]

let prng_tests =
  let open Alcotest in
  [
    test_case "determinism" `Quick (fun () ->
        let a = Prng.create 1 and b = Prng.create 1 in
        for _ = 1 to 100 do
          check int64 "same stream" (Prng.next64 a) (Prng.next64 b)
        done);
    test_case "of_string differs by name" `Quick (fun () ->
        let a = Prng.of_string "apex1" and b = Prng.of_string "apex2" in
        check bool "different" true (Prng.next64 a <> Prng.next64 b));
    test_case "int bounds" `Quick (fun () ->
        let rng = Prng.create 3 in
        for _ = 1 to 1000 do
          let v = Prng.int rng 17 in
          check bool "in range" true (v >= 0 && v < 17)
        done);
  ]

let () =
  Alcotest.run "logic"
    [
      ("bitvec", bitvec_tests);
      ("bitvec-props", List.map QCheck_alcotest.to_alcotest bitvec_props);
      ("truth-table", tt_tests);
      ("cube-sop", cube_sop_tests);
      ("sop-props", List.map QCheck_alcotest.to_alcotest sop_props);
      ("network", network_tests);
      ("prng", prng_tests);
    ]
