(* Experiment-driver and PLiM tests: the pieces the bench harness runs. *)

let find name = Option.get (Io.Benchmarks.find name)

let experiments_tests =
  let open Alcotest in
  [
    test_case "table2 row fields populated" `Quick (fun () ->
        let row = Exp.Experiments.table2_row ~effort:4 (find "clip") in
        check string "name" "clip" row.Exp.Experiments.name;
        check int "inputs" 9 row.Exp.Experiments.inputs;
        check bool "exact" true row.Exp.Experiments.exact;
        check bool "gates > 0" true (row.Exp.Experiments.initial_gates > 0);
        (* the MAJ columns must be no worse than IMP on steps *)
        check bool "maj steps < imp steps" true
          (row.Exp.Experiments.step_maj.Core.Rram_cost.steps
          < row.Exp.Experiments.step_imp.Core.Rram_cost.steps));
    test_case "table2 MAJ always beats IMP on steps" `Quick (fun () ->
        List.iter
          (fun name ->
            let row = Exp.Experiments.table2_row ~effort:4 (find name) in
            check bool (name ^ " maj < imp") true
              (row.Exp.Experiments.rram_maj.Core.Rram_cost.steps
              < row.Exp.Experiments.rram_imp.Core.Rram_cost.steps))
          [ "cm150a"; "t481"; "parity" ]);
    test_case "table3 bdd row: steps scale with nodes" `Quick (fun () ->
        let row = Exp.Experiments.table3_bdd_row ~effort:4 (find "cm162a") in
        check bool "sequential > levelized" true
          (row.Exp.Experiments.bdd_sequential_steps > snd row.Exp.Experiments.bdd_levelized);
        check bool "nodes > 0" true (row.Exp.Experiments.bdd_nodes > 0));
    test_case "table3 aig row" `Quick (fun () ->
        let row = Exp.Experiments.table3_aig_row ~effort:4 (find "xor5_d") in
        check bool "aig steps positive" true (row.Exp.Experiments.aig_steps > 0);
        check bool "MIG-MAJ beats AIG" true
          (row.Exp.Experiments.mig_maj.Core.Rram_cost.steps < row.Exp.Experiments.aig_steps));
    test_case "verify_entry on exact benchmarks" `Slow (fun () ->
        List.iter
          (fun name ->
            match Exp.Experiments.verify_entry ~effort:4 (find name) with
            | Ok () -> ()
            | Error e -> fail (name ^ ": " ^ e))
          [ "clip"; "cm162a"; "t481"; "rd53f1"; "xor5_d"; "exam1_d" ]);
  ]

let ablation_tests =
  let open Alcotest in
  [
    test_case "effort sweep is monotone at the start" `Quick (fun () ->
        let rows = Exp.Ablation.effort_sweep ~efforts:[ 0; 8 ] (find "cordic") in
        match rows with
        | [ (0, c0); (8, c8) ] ->
            check bool "optimization helps" true
              (c8.Core.Rram_cost.steps <= c0.Core.Rram_cost.steps)
        | _ -> fail "unexpected shape");
    test_case "rule ablation produces all variants" `Quick (fun () ->
        let rows = Exp.Ablation.rule_ablation ~effort:4 (find "clip") in
        check int "variants" 6 (List.length rows));
    test_case "fanout sweep trades R for S" `Quick (fun () ->
        let rows =
          Exp.Ablation.fanout_limit_sweep ~effort:8 ~limits:[ 1; 1000000 ] (find "b9")
        in
        match rows with
        | [ (_, tight); (_, loose) ] ->
            check bool "tight limit uses fewer RRAMs" true
              (tight.Core.Rram_cost.rrams <= loose.Core.Rram_cost.rrams);
            check bool "loose limit uses fewer steps" true
              (loose.Core.Rram_cost.steps <= tight.Core.Rram_cost.steps)
        | _ -> fail "unexpected shape");
    test_case "bdd order sweep covers heuristics" `Quick (fun () ->
        let rows = Exp.Ablation.bdd_order_sweep (find "alu4") in
        check int "three heuristics" 3 (List.length rows);
        List.iter (fun (_, nodes, _) -> check bool "built" true (nodes > 0)) rows);
  ]

let plim_tests =
  let open Alcotest in
  let mig_of name = Core.Mig_of_network.convert ((find name).Io.Benchmarks.build ()) in
  [
    test_case "RM3 identities" `Quick (fun () ->
        (* z <- 0 via RM3(0,1,z); set via RM3(1,0,z); copy via RM3(v,0,0);
           negate via RM3(1,v,0) — exercised through a tiny program *)
        let program =
          {
            Rram.Plim.cells = 3;
            num_inputs = 1;
            input_cells = [| 0 |];
            instrs =
              [
                { Rram.Plim.p = Rram.Plim.Cell 0; q = Rram.Plim.Imm false; z = 1 };
                (* cell1 = copy of input *)
                { Rram.Plim.p = Rram.Plim.Imm true; q = Rram.Plim.Cell 0; z = 2 };
                (* cell2 = not input *)
              ];
            outputs = [| Rram.Plim.Cell 1; Rram.Plim.Cell 2 |];
          }
        in
        check (array bool) "v=1" [| true; false |] (Rram.Plim.run program [| true |]);
        check (array bool) "v=0" [| false; true |] (Rram.Plim.run program [| false |]));
    test_case "compiled programs verified" `Quick (fun () ->
        List.iter
          (fun name ->
            let mig = mig_of name in
            let c = Rram.Plim.compile mig in
            match Rram.Plim.verify c.Rram.Plim.program mig with
            | Ok () -> ()
            | Error e -> fail (name ^ ": " ^ e))
          [ "clip"; "cm150a"; "t481"; "rd53f2"; "xor5_d" ]);
    test_case "optimized MIGs compile correctly" `Quick (fun () ->
        let mig = Core.Mig_opt.steps ~effort:6 (mig_of "cm162a") in
        let c = Rram.Plim.compile mig in
        match Rram.Plim.verify c.Rram.Plim.program mig with
        | Ok () -> ()
        | Error e -> fail e);
    test_case "instruction economy" `Quick (fun () ->
        (* the operand-role selection keeps RM3-per-gate low *)
        let mig = mig_of "clip" in
        let c = Rram.Plim.compile mig in
        check bool "under 3 RM3 per gate" true (c.Rram.Plim.rm3_per_gate < 3.0));
    test_case "cell reuse bounds memory" `Quick (fun () ->
        let mig = mig_of "alu4" in
        let c = Rram.Plim.compile mig in
        check bool "fewer cells than gates" true
          (c.Rram.Plim.cells_used < Core.Mig.size mig));
  ]

let plim_props =
  [
    QCheck.Test.make ~name:"random MIGs: PLiM = MIG semantics" ~count:40
      (QCheck.make QCheck.Gen.(int_bound 100000))
      (fun seed ->
        let rng = Logic.Prng.create seed in
        let mig = Core.Mig.create () in
        let signals = ref [| Core.Mig.const0 |] in
        let add s = signals := Array.append !signals [| s |] in
        for _ = 1 to 5 do
          add (Core.Mig.add_pi mig)
        done;
        for _ = 1 to 25 do
          let pick () =
            let s = Logic.Prng.pick rng !signals in
            if Logic.Prng.bool rng then Core.Mig.not_ s else s
          in
          add (Core.Mig.maj mig (pick ()) (pick ()) (pick ()))
        done;
        for _ = 1 to 3 do
          ignore (Core.Mig.add_po mig (Logic.Prng.pick rng !signals))
        done;
        let mig = Core.Mig.cleanup mig in
        let c = Rram.Plim.compile mig in
        Rram.Plim.verify c.Rram.Plim.program mig = Ok ());
  ]

let () =
  Alcotest.run "exp"
    [
      ("experiments", experiments_tests);
      ("ablation", ablation_tests);
      ("plim", plim_tests);
      ("plim-props", List.map QCheck_alcotest.to_alcotest plim_props);
    ]
