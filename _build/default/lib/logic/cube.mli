(** Cubes (product terms) over a fixed variable count.

    A cube assigns each variable one of three literals: positive, negative or
    don't-care.  This is the cube calculus used by PLA files and BLIF
    [.names] covers. *)

type literal = Pos | Neg | DC

type t

val create : int -> t
(** The universal cube (all don't-care) over [n] variables. *)

val num_vars : t -> int
val get : t -> int -> literal
val set : t -> int -> literal -> t
(** Functional update. *)

val of_string : string -> t
(** From PLA notation: ['1'] = positive, ['0'] = negative, ['-'] = DC. *)

val to_string : t -> string

val eval : t -> bool array -> bool
(** Does the assignment satisfy the cube? *)

val contains : t -> t -> bool
(** [contains a b] iff every minterm of [b] is a minterm of [a]. *)

val intersects : t -> t -> bool
(** Do the two cubes share a minterm? *)

val literals : t -> (int * bool) list
(** Non-DC literals as [(var, positive?)] pairs, ascending by variable. *)

val num_literals : t -> int

val to_truth_table : t -> Truth_table.t

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
