lib/logic/truth_table.mli: Bitvec Format
