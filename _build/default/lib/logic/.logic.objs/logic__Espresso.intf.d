lib/logic/espresso.mli: Cube Sop
