lib/logic/prng.mli:
