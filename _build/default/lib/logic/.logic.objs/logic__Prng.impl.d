lib/logic/prng.ml: Array Char Int64 String
