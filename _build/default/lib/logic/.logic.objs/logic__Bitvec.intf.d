lib/logic/bitvec.mli: Format Prng
