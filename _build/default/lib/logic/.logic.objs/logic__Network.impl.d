lib/logic/network.ml: Array Bitvec Cube Format Hashtbl List Sop Truth_table
