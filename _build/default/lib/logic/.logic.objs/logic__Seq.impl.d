lib/logic/seq.ml: Array Format List Network
