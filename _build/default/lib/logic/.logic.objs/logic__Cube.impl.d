lib/logic/cube.ml: Array Bitvec Format List Stdlib String Truth_table
