lib/logic/cube.mli: Format Truth_table
