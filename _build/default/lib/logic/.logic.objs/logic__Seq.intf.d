lib/logic/seq.mli: Format Network
