lib/logic/funcgen.mli: Network
