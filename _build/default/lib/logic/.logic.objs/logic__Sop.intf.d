lib/logic/sop.mli: Cube Format Truth_table
