lib/logic/npn.ml: Array List Truth_table
