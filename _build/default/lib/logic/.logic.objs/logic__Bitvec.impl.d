lib/logic/bitvec.ml: Array Format Int64 Prng String
