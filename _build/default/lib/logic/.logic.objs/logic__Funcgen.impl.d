lib/logic/funcgen.ml: Array Hashtbl Lazy List Network Printf
