lib/logic/npn.mli: Truth_table
