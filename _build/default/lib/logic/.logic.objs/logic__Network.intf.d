lib/logic/network.mli: Bitvec Format Sop Truth_table
