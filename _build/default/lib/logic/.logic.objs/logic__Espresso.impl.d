lib/logic/espresso.ml: Array Cube List Option Sop
