lib/logic/truth_table.ml: Array Bitvec Format Int64 String
