lib/logic/sop.ml: Array Cube Format List Truth_table
