type literal = Pos | Neg | DC

(* Two bitsets: [care] marks bound variables, [value] their polarity. *)
type t = { n : int; care : Bitvec.t; value : Bitvec.t }

let create n = { n; care = Bitvec.create n; value = Bitvec.create n }

let num_vars t = t.n

let get t i =
  if not (Bitvec.get t.care i) then DC
  else if Bitvec.get t.value i then Pos
  else Neg

let set t i lit =
  let care = Bitvec.copy t.care and value = Bitvec.copy t.value in
  (match lit with
  | DC ->
      Bitvec.set care i false;
      Bitvec.set value i false
  | Pos ->
      Bitvec.set care i true;
      Bitvec.set value i true
  | Neg ->
      Bitvec.set care i true;
      Bitvec.set value i false);
  { t with care; value }

let of_string s =
  let n = String.length s in
  let t = create n in
  String.iteri
    (fun i c ->
      match c with
      | '1' ->
          Bitvec.set t.care i true;
          Bitvec.set t.value i true
      | '0' -> Bitvec.set t.care i true
      | '-' | '~' | '2' -> ()
      | _ -> invalid_arg "Cube.of_string: expected '0', '1' or '-'")
    s;
  t

let to_string t =
  String.init t.n (fun i ->
      match get t i with Pos -> '1' | Neg -> '0' | DC -> '-')

let eval t a =
  let ok = ref true in
  for i = 0 to t.n - 1 do
    (match get t i with
    | DC -> ()
    | Pos -> if not a.(i) then ok := false
    | Neg -> if a.(i) then ok := false)
  done;
  !ok

let contains a b =
  (* a ⊇ b: every bound literal of a must be bound identically in b. *)
  assert (a.n = b.n);
  let ok = ref true in
  for i = 0 to a.n - 1 do
    match (get a i, get b i) with
    | DC, _ -> ()
    | Pos, Pos | Neg, Neg -> ()
    | _ -> ok := false
  done;
  !ok

let intersects a b =
  assert (a.n = b.n);
  let ok = ref true in
  for i = 0 to a.n - 1 do
    match (get a i, get b i) with
    | Pos, Neg | Neg, Pos -> ok := false
    | _ -> ()
  done;
  !ok

let literals t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    match get t i with
    | Pos -> acc := (i, true) :: !acc
    | Neg -> acc := (i, false) :: !acc
    | DC -> ()
  done;
  !acc

let num_literals t = Bitvec.popcount t.care

let to_truth_table t =
  let tt = ref (Truth_table.const t.n true) in
  List.iter
    (fun (i, pos) ->
      let v = Truth_table.var t.n i in
      let v = if pos then v else Truth_table.bnot v in
      tt := Truth_table.band !tt v)
    (literals t);
  !tt

let compare a b = Stdlib.compare (to_string a) (to_string b)
let equal a b = compare a b = 0
let pp ppf t = Format.pp_print_string ppf (to_string t)
