(** Fixed-width bit vectors backed by [int64] words.

    Used as parallel simulation patterns (64 test vectors per word) and as
    the storage of truth tables.  All binary operations require operands of
    equal width; bits beyond [width] are kept zero as an invariant. *)

type t

val create : int -> t
(** [create width] is the all-zero vector of [width] bits. *)

val width : t -> int
(** Number of bits. *)

val copy : t -> t

val get : t -> int -> bool
val set : t -> int -> bool -> unit

val fill : t -> bool -> unit
(** Set every bit to the given value. *)

val ones : int -> t
(** All-one vector of the given width. *)

val band : t -> t -> t
val bor : t -> t -> t
val bxor : t -> t -> t
val bnot : t -> t

val maj3 : t -> t -> t -> t
(** Bitwise 3-input majority. *)

val mux : t -> t -> t -> t
(** [mux s a b] selects bitwise [a] where [s] is 1 and [b] where [s] is 0. *)

val equal : t -> t -> bool
val is_zero : t -> bool
val popcount : t -> int

val randomize : Prng.t -> t -> unit
(** Fill with pseudo-random bits from the generator. *)

val word : t -> int -> int64
(** [word t i] is the i-th backing word (for fast custom kernels). *)

val set_word : t -> int -> int64 -> unit
(** Set the i-th backing word; bits beyond [width] are masked off. *)

val num_words : t -> int

val to_string : t -> string
(** Bit [width-1] first, bit 0 last (conventional binary notation). *)

val of_string : string -> t
(** Inverse of {!to_string}; accepts only ['0'] and ['1']. *)

val pp : Format.formatter -> t -> unit
