type t = { width : int; words : int64 array }

let num_words_for width = (width + 63) / 64

let create width =
  assert (width >= 0);
  { width; words = Array.make (max 1 (num_words_for width)) 0L }

let width t = t.width
let num_words t = Array.length t.words
let copy t = { width = t.width; words = Array.copy t.words }

(* Mask for the last (possibly partial) word. *)
let last_mask t =
  let rem = t.width land 63 in
  if rem = 0 then Int64.minus_one else Int64.sub (Int64.shift_left 1L rem) 1L

let normalize t =
  if t.width > 0 then begin
    let last = num_words_for t.width - 1 in
    t.words.(last) <- Int64.logand t.words.(last) (last_mask t)
  end
  else t.words.(0) <- 0L

let get t i =
  assert (i >= 0 && i < t.width);
  Int64.logand (Int64.shift_right_logical t.words.(i lsr 6) (i land 63)) 1L = 1L

let set t i b =
  assert (i >= 0 && i < t.width);
  let w = i lsr 6 and bit = Int64.shift_left 1L (i land 63) in
  if b then t.words.(w) <- Int64.logor t.words.(w) bit
  else t.words.(w) <- Int64.logand t.words.(w) (Int64.lognot bit)

let fill t b =
  Array.fill t.words 0 (Array.length t.words) (if b then Int64.minus_one else 0L);
  normalize t

let ones w =
  let t = create w in
  fill t true;
  t

let map2 f a b =
  assert (a.width = b.width);
  let r = create a.width in
  for i = 0 to Array.length r.words - 1 do
    r.words.(i) <- f a.words.(i) b.words.(i)
  done;
  normalize r;
  r

let band = map2 Int64.logand
let bor = map2 Int64.logor
let bxor = map2 Int64.logxor

let bnot a =
  let r = create a.width in
  for i = 0 to Array.length r.words - 1 do
    r.words.(i) <- Int64.lognot a.words.(i)
  done;
  normalize r;
  r

let maj3 a b c =
  assert (a.width = b.width && b.width = c.width);
  let r = create a.width in
  for i = 0 to Array.length r.words - 1 do
    let x = a.words.(i) and y = b.words.(i) and z = c.words.(i) in
    r.words.(i) <-
      Int64.logor
        (Int64.logand x y)
        (Int64.logor (Int64.logand x z) (Int64.logand y z))
  done;
  normalize r;
  r

let mux s a b =
  assert (s.width = a.width && a.width = b.width);
  let r = create a.width in
  for i = 0 to Array.length r.words - 1 do
    r.words.(i) <-
      Int64.logor
        (Int64.logand s.words.(i) a.words.(i))
        (Int64.logand (Int64.lognot s.words.(i)) b.words.(i))
  done;
  normalize r;
  r

let equal a b = a.width = b.width && a.words = b.words

let is_zero a = Array.for_all (fun w -> w = 0L) a.words

let popcount a =
  let count64 x =
    let rec go x acc = if x = 0L then acc else go (Int64.logand x (Int64.sub x 1L)) (acc + 1) in
    go x 0
  in
  Array.fold_left (fun acc w -> acc + count64 w) 0 a.words

let randomize rng t =
  for i = 0 to Array.length t.words - 1 do
    t.words.(i) <- Prng.next64 rng
  done;
  normalize t

let word t i = t.words.(i)

let set_word t i w =
  t.words.(i) <- w;
  normalize t

let to_string t =
  String.init t.width (fun i -> if get t (t.width - 1 - i) then '1' else '0')

let of_string s =
  let w = String.length s in
  let t = create w in
  String.iteri
    (fun i c ->
      match c with
      | '1' -> set t (w - 1 - i) true
      | '0' -> ()
      | _ -> invalid_arg "Bitvec.of_string: expected '0' or '1'")
    s;
  t

let pp ppf t = Format.pp_print_string ppf (to_string t)
