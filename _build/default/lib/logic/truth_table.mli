(** Truth tables over a fixed number of variables.

    A table over [n] variables stores [2^n] bits; bit [m] is the value of the
    function on the minterm whose variable [i] equals bit [i] of [m].
    Variable 0 is the fastest-toggling one, matching the usual simulation
    convention.  Arity is limited to {!max_vars} (24) to bound memory. *)

type t

val max_vars : int

val num_vars : t -> int

val create : int -> t
(** Constant-false table over the given number of variables. *)

val const : int -> bool -> t
val var : int -> int -> t
(** [var n i] is the projection of variable [i] among [n] variables. *)

val get : t -> int -> bool
(** Value on a minterm index. *)

val set : t -> int -> bool -> unit

val band : t -> t -> t
val bor : t -> t -> t
val bxor : t -> t -> t
val bnot : t -> t
val maj3 : t -> t -> t -> t
val mux : t -> t -> t -> t

val equal : t -> t -> bool
val count_ones : t -> int

val cofactor : t -> int -> bool -> t
(** [cofactor t i v] fixes variable [i] to [v]; the result still ranges over
    [n] variables but no longer depends on variable [i]. *)

val depends_on : t -> int -> bool

val of_function : int -> (bool array -> bool) -> t
(** [of_function n f] tabulates [f] over all [2^n] input assignments; the
    array passed to [f] has [a.(i)] = value of variable [i]. *)

val of_bits : string -> t
(** [of_bits s] takes the function column with minterm [0] first, i.e.
    [s.[m]] is the value on minterm [m]; length must be a power of two. *)

val to_bits : t -> string

val bitvec : t -> Bitvec.t
(** Underlying bit-vector (shared, do not mutate unless you own it). *)

val pp : Format.formatter -> t -> unit
