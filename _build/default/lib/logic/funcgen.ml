let n_ary_gate net kind = function
  | [] -> invalid_arg "Funcgen: empty operand list"
  | [ x ] -> x
  | xs -> Network.gate net kind (Array.of_list xs)

let and_list net xs = n_ary_gate net Network.And xs
let or_list net xs = n_ary_gate net Network.Or xs
let xor_list net xs = n_ary_gate net Network.Xor xs

let inputs net prefix n = List.init n (fun i -> Network.add_input net (Printf.sprintf "%s%d" prefix i))

let full_adder_bits net x y c =
  let sum = xor_list net [ x; y; c ] in
  let carry = Network.maj net x y c in
  (sum, carry)

let half_adder_bits net x y =
  let sum = Network.xor2 net x y in
  let carry = Network.and2 net x y in
  (sum, carry)

(* Binary count of ones using a full-adder (carry-save) tree.  [columns] maps
   bit weight -> list of wires of that weight; reduce until each column has at
   most one wire. *)
let ones_counter net bits =
  let columns = Hashtbl.create 7 in
  let push w wire = Hashtbl.replace columns w (wire :: (try Hashtbl.find columns w with Not_found -> [])) in
  List.iter (push 0) bits;
  let max_weight = ref 0 in
  let rec reduce w =
    if w > !max_weight then ()
    else begin
      (match Hashtbl.find_opt columns w with
      | Some (x :: y :: c :: rest) ->
          Hashtbl.replace columns w rest;
          let sum, carry = full_adder_bits net x y c in
          push w sum;
          push (w + 1) carry;
          max_weight := max !max_weight (w + 1);
          reduce w
      | Some [ x; y ] ->
          Hashtbl.replace columns w [];
          let sum, carry = half_adder_bits net x y in
          push w sum;
          push (w + 1) carry;
          max_weight := max !max_weight (w + 1);
          reduce w
      | Some _ | None -> reduce (w + 1))
    end
  in
  reduce 0;
  (* Collect one wire per weight, substituting constant 0 for empty columns. *)
  let zero = lazy (Network.const net false) in
  List.init (!max_weight + 1) (fun w ->
      match Hashtbl.find_opt columns w with
      | Some [ wire ] -> wire
      | Some [] | None -> Lazy.force zero
      | Some _ -> assert false)

(* count >= threshold for a little-endian wire list and integer constant. *)
let count_ge net count threshold =
  let bits = Array.of_list count in
  let k = Array.length bits in
  if threshold <= 0 then Network.const net true
  else if threshold >= 1 lsl k then Network.const net false
  else begin
    (* From MSB down: ge = (bit > t) or (bit = t and ge_rest). *)
    let ge = ref (Network.const net true) in
    for i = 0 to k - 1 do
      let b = bits.(i) and t = threshold land (1 lsl i) <> 0 in
      if t then
        (* need b = 1 and rest ge *)
        ge := Network.and2 net b !ge
      else
        (* b = 1 makes this prefix strictly greater *)
        ge := Network.or2 net b !ge
    done;
    !ge
  end

let parity n =
  let net = Network.create () in
  let xs = inputs net "x" n in
  Network.add_output net "parity" (xor_list net xs);
  net

let majority_n n =
  if n land 1 = 0 then invalid_arg "Funcgen.majority_n: n must be odd";
  let net = Network.create () in
  let xs = inputs net "x" n in
  let count = ones_counter net xs in
  Network.add_output net "maj" (count_ge net count ((n + 1) / 2));
  net

let rd n k =
  let net = Network.create () in
  let xs = inputs net "x" n in
  let count = Array.of_list (ones_counter net xs) in
  for i = 0 to k - 1 do
    let bit = if i < Array.length count then count.(i) else Network.const net false in
    Network.add_output net (Printf.sprintf "c%d" i) bit
  done;
  net

let sym_range n lo hi =
  let net = Network.create () in
  let xs = inputs net "x" n in
  let count = ones_counter net xs in
  let ge_lo = count_ge net count lo in
  let ge_hi1 = count_ge net count (hi + 1) in
  Network.add_output net "sym" (Network.and2 net ge_lo (Network.not_ net ge_hi1));
  net

let mux_tree k =
  let net = Network.create () in
  let sels = Array.of_list (inputs net "s" k) in
  let data = Array.of_list (inputs net "d" (1 lsl k)) in
  let enable = Network.add_input net "en" in
  (* Recursive 2^k:1 mux; level i selects on sels.(i). *)
  let rec build lo len level =
    if len = 1 then data.(lo)
    else
      let half = len / 2 in
      let low = build lo half (level - 1) in
      let high = build (lo + half) half (level - 1) in
      Network.mux net sels.(level) high low
  in
  let out = build 0 (1 lsl k) (k - 1) in
  Network.add_output net "y" (Network.and2 net enable out);
  net

let alu4 () =
  (* A genuine 14-input, 8-output 4-bit ALU in the spirit of the 74181:
     mode m = 1 selects one of the 16 two-variable logic functions encoded by
     s3..s0 applied bitwise; m = 0 selects an arithmetic operation
     a + op2 + cin where op2 in {b, not b, 0, 1111} is chosen by s1 s0 and the
     a operand is pre-combined with b (and/or/identity) by s3 s2. *)
  let net = Network.create () in
  let m = Network.add_input net "m" in
  let s = Array.of_list (inputs net "s" 4) in
  let a = Array.of_list (inputs net "a" 4) in
  let b = Array.of_list (inputs net "b" 4) in
  let cin = Network.add_input net "cin" in
  let one = Network.const net true and zero = Network.const net false in
  (* Logic mode: f_i = s[2*a_i + b_i]. *)
  let logic_bit i =
    Network.mux net a.(i) (Network.mux net b.(i) s.(3) s.(2)) (Network.mux net b.(i) s.(1) s.(0))
  in
  (* Arithmetic mode operands. *)
  let op2_bit i =
    Network.mux net s.(1) (Network.mux net s.(0) b.(i) (Network.not_ net b.(i))) (Network.mux net s.(0) one zero)
  in
  let a_pre i =
    Network.mux net s.(3) (Network.and2 net a.(i) b.(i)) (Network.mux net s.(2) (Network.or2 net a.(i) b.(i)) a.(i))
  in
  let carry = ref cin in
  let arith = Array.init 4 (fun i ->
      let x = a_pre i and y = op2_bit i in
      let sum, cy = full_adder_bits net x y !carry in
      carry := cy;
      sum)
  in
  let f = Array.init 4 (fun i -> Network.mux net m (logic_bit i) arith.(i)) in
  let cout = Network.and2 net (Network.not_ net m) !carry in
  let props = List.init 4 (fun i -> Network.xor2 net a.(i) b.(i)) in
  let gens = List.init 4 (fun i -> Network.and2 net a.(i) b.(i)) in
  let p = and_list net props in
  let g = or_list net gens in
  let aeqb = and_list net (Array.to_list f) in
  Array.iteri (fun i fi -> Network.add_output net (Printf.sprintf "f%d" i) fi) f;
  Network.add_output net "cout" cout;
  Network.add_output net "p" p;
  Network.add_output net "g" g;
  Network.add_output net "aeqb" aeqb;
  net

let clip () =
  (* 9-bit signed input clipped into 5-bit signed output: the value fits iff
     bits 8..4 agree; otherwise saturate to 01111 / 10000. *)
  let net = Network.create () in
  let x = Array.of_list (inputs net "x" 9) in
  let sign = x.(8) in
  let agree i = Network.not_ net (Network.xor2 net x.(i) sign) in
  let fit = and_list net [ agree 7; agree 6; agree 5; agree 4 ] in
  for i = 0 to 3 do
    Network.add_output net
      (Printf.sprintf "y%d" i)
      (Network.mux net fit x.(i) (Network.not_ net sign))
  done;
  Network.add_output net "y4" sign;
  net

let ripple_adder w =
  let net = Network.create () in
  let a = Array.of_list (inputs net "a" w) in
  let b = Array.of_list (inputs net "b" w) in
  let cin = Network.add_input net "cin" in
  let carry = ref cin in
  for i = 0 to w - 1 do
    let sum, cy = full_adder_bits net a.(i) b.(i) !carry in
    carry := cy;
    Network.add_output net (Printf.sprintf "s%d" i) sum
  done;
  Network.add_output net "cout" !carry;
  net

let carry_lookahead_adder w =
  let net = Network.create () in
  let a = Array.of_list (inputs net "a" w) in
  let b = Array.of_list (inputs net "b" w) in
  let cin = Network.add_input net "cin" in
  let p = Array.init w (fun i -> Network.xor2 net a.(i) b.(i)) in
  let g = Array.init w (fun i -> Network.and2 net a.(i) b.(i)) in
  (* Kogge–Stone prefix of the (g, p) semigroup. *)
  let gp = Array.init w (fun i -> (g.(i), p.(i))) in
  let combine (g2, p2) (g1, p1) =
    (Network.or2 net g2 (Network.and2 net p2 g1), Network.and2 net p2 p1)
  in
  let dist = ref 1 in
  while !dist < w do
    for i = w - 1 downto !dist do
      gp.(i) <- combine gp.(i) gp.(i - !dist)
    done;
    dist := !dist * 2
  done;
  (* carry into bit i: c0 = cin; c_i = G[i-1:0] or (P[i-1:0] and cin). *)
  let carry_into = Array.make (w + 1) cin in
  for i = 1 to w do
    let gg, pp = gp.(i - 1) in
    carry_into.(i) <- Network.or2 net gg (Network.and2 net pp cin)
  done;
  for i = 0 to w - 1 do
    Network.add_output net (Printf.sprintf "s%d" i) (Network.xor2 net p.(i) carry_into.(i))
  done;
  Network.add_output net "cout" carry_into.(w);
  net

let multiplier w =
  let net = Network.create () in
  let a = Array.of_list (inputs net "a" w) in
  let b = Array.of_list (inputs net "b" w) in
  (* Column list of partial products, reduced with the ones-counter machinery
     per column (carry-save array reduction). *)
  let columns = Array.make (2 * w) [] in
  for i = 0 to w - 1 do
    for j = 0 to w - 1 do
      columns.(i + j) <- Network.and2 net a.(i) b.(j) :: columns.(i + j)
    done
  done;
  let carry_in = ref [] in
  for col = 0 to (2 * w) - 1 do
    let wires = ref (columns.(col) @ !carry_in) in
    carry_in := [];
    while List.length !wires > 1 do
      match !wires with
      | x :: y :: c :: rest ->
          let sum, carry = full_adder_bits net x y c in
          wires := sum :: rest;
          carry_in := carry :: !carry_in
      | [ x; y ] ->
          let sum, carry = half_adder_bits net x y in
          wires := [ sum ];
          carry_in := carry :: !carry_in
      | _ -> assert false
    done;
    let bit = match !wires with [ x ] -> x | [] -> Network.const net false | _ -> assert false in
    Network.add_output net (Printf.sprintf "p%d" col) bit
  done;
  net

let comparator w =
  let net = Network.create () in
  let a = Array.of_list (inputs net "a" w) in
  let b = Array.of_list (inputs net "b" w) in
  let lt = ref (Network.const net false) in
  let eq = ref (Network.const net true) in
  for i = 0 to w - 1 do
    (* From LSB to MSB: at each step the higher bit dominates. *)
    let bit_lt = Network.and2 net (Network.not_ net a.(i)) b.(i) in
    let bit_eq = Network.not_ net (Network.xor2 net a.(i) b.(i)) in
    lt := Network.or2 net bit_lt (Network.and2 net bit_eq !lt);
    eq := Network.and2 net bit_eq !eq
  done;
  Network.add_output net "lt" !lt;
  Network.add_output net "eq" !eq;
  Network.add_output net "gt" (Network.not_ net (Network.or2 net !lt !eq));
  net

let full_adder () =
  let net = Network.create () in
  let a = Network.add_input net "a" in
  let b = Network.add_input net "b" in
  let c = Network.add_input net "cin" in
  let sum, carry = full_adder_bits net a b c in
  Network.add_output net "sum" sum;
  Network.add_output net "cout" carry;
  net

let square w out_bits =
  let net = Network.create () in
  let a = Array.of_list (inputs net "x" w) in
  let columns = Array.make (max out_bits (2 * w)) [] in
  for i = 0 to w - 1 do
    for j = 0 to w - 1 do
      if i + j < out_bits then
        columns.(i + j) <- Network.and2 net a.(i) a.(j) :: columns.(i + j)
    done
  done;
  let carry_in = ref [] in
  for col = 0 to out_bits - 1 do
    let wires = ref (columns.(col) @ !carry_in) in
    carry_in := [];
    while List.length !wires > 1 do
      match !wires with
      | x :: y :: c :: rest ->
          let sum, carry = full_adder_bits net x y c in
          wires := sum :: rest;
          carry_in := carry :: !carry_in
      | [ x; y ] ->
          let sum, carry = half_adder_bits net x y in
          wires := [ sum ];
          carry_in := carry :: !carry_in
      | _ -> assert false
    done;
    let bit = match !wires with [ x ] -> x | [] -> Network.const net false | _ -> assert false in
    Network.add_output net (Printf.sprintf "s%d" col) bit
  done;
  net

let cordic_stage w shift =
  let net = Network.create () in
  let x = Array.of_list (inputs net "x" w) in
  let y = Array.of_list (inputs net "y" w) in
  let d = Network.add_input net "d" in
  (* z = y >> shift (arithmetic shift: sign-extend with y's MSB) *)
  let z = Array.init w (fun i -> if i + shift < w then y.(i + shift) else y.(w - 1)) in
  (* d = 1: x + z; d = 0: x - z = x + ¬z + 1 *)
  let nd = Network.not_ net d in
  let carry = ref nd in
  for i = 0 to w - 1 do
    let operand = Network.xor2 net z.(i) nd in
    let sum, cy = full_adder_bits net x.(i) operand !carry in
    carry := cy;
    Network.add_output net (Printf.sprintf "r%d" i) sum
  done;
  Network.add_output net "cout" !carry;
  net

let t481 () =
  (* The published t481 admits a compact two-level decomposition into 4-input
     blocks.  We use the documented substitute
       k(p,q,r,s) = (p xor q) or (r and s)
       t481'(x)   = parity of the four block outputs xnor'd pairwise,
     which preserves the benchmark's structural profile (16 inputs, 1 output,
     shallow decomposed form). *)
  let net = Network.create () in
  let x = Array.of_list (inputs net "x" 16) in
  let block i =
    let p = x.(4 * i) and q = x.((4 * i) + 1) and r = x.((4 * i) + 2) and s = x.((4 * i) + 3) in
    Network.or2 net (Network.xor2 net p q) (Network.and2 net r s)
  in
  let b0 = block 0 and b1 = block 1 and b2 = block 2 and b3 = block 3 in
  let pair01 = Network.not_ net (Network.xor2 net b0 b1) in
  let pair23 = Network.not_ net (Network.xor2 net b2 b3) in
  Network.add_output net "t" (Network.xor2 net pair01 pair23);
  net
