type t = {
  comb : Network.t;
  num_pis : int;
  num_pos : int;
  init : bool array;
}

let create comb ~num_pis ~num_pos ~init =
  let regs = Array.length init in
  if Network.num_inputs comb <> num_pis + regs then
    invalid_arg "Seq.create: input count mismatch";
  if Network.num_outputs comb <> num_pos + regs then
    invalid_arg "Seq.create: output count mismatch";
  { comb; num_pis; num_pos; init = Array.copy init }

let combinational t = t.comb
let num_pis t = t.num_pis
let num_pos t = t.num_pos
let num_regs t = Array.length t.init
let initial_state t = Array.copy t.init

let step t state inputs =
  if Array.length inputs <> t.num_pis then invalid_arg "Seq.step: input width";
  if Array.length state <> Array.length t.init then invalid_arg "Seq.step: state width";
  let all = Network.eval t.comb (Array.append inputs state) in
  (Array.sub all 0 t.num_pos, Array.sub all t.num_pos (Array.length t.init))

let simulate t stream =
  let state = ref (Array.copy t.init) in
  List.map
    (fun inputs ->
      let outputs, next = step t !state inputs in
      state := next;
      outputs)
    stream

let pp_stats ppf t =
  Format.fprintf ppf "pis=%d pos=%d regs=%d core:(%a)" t.num_pis t.num_pos
    (Array.length t.init) Network.pp_stats t.comb
