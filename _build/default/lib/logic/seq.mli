(** Sequential circuits: a combinational core plus a register file.

    The ISCAS-89 benchmarks the paper evaluates are sequential; the paper
    (after [17]) works on their {e combinational profiles} — the core with
    every flip-flop cut into a pseudo primary input (the Q pin) and a pseudo
    primary output (the D pin).  This module makes that cut explicit and
    reversible: a [Seq.t] wraps a combinational {!Network.t} whose inputs
    are [real PIs @ register outputs] and whose outputs are
    [real POs @ register inputs], together with the initial state.

    {!simulate} gives the cycle-accurate reference semantics;
    [Rram.Seq_exec] runs the same machine on the crossbar simulator, holding
    the state in the in-memory program between clock ticks. *)

type t

val create : Network.t -> num_pis:int -> num_pos:int -> init:bool array -> t
(** The network must have [num_pis + Array.length init] inputs (reals first)
    and [num_pos + Array.length init] outputs (reals first). *)

val combinational : t -> Network.t
(** The combinational profile — what the paper's flow optimizes. *)

val num_pis : t -> int
val num_pos : t -> int
val num_regs : t -> int
val initial_state : t -> bool array

val step : t -> bool array -> bool array -> bool array * bool array
(** [step t state inputs] = (outputs, next_state). *)

val simulate : t -> bool array list -> bool array list
(** Run from the initial state over an input stream; one output vector per
    cycle. *)

val pp_stats : Format.formatter -> t -> unit
