(** NPN canonization of small truth tables.

    Two functions are NPN-equivalent when one maps to the other by Negating
    inputs, Permuting inputs, and/or Negating the output.  The canonical
    representative is the lexicographically smallest table bit-string over
    the whole transformation group — exact, by enumeration, so it is
    restricted to ≤ {!max_vars} (5) variables (5!·2⁶ = 7 680 transforms).

    Used to cache resyntheses in the cut-based MIG rewriter: all cuts in one
    NPN class share a single optimized implementation. *)

val max_vars : int

type transform = {
  perm : int array;  (** canonical input i comes from original input perm.(i) *)
  input_neg : bool array;  (** negate original input before use *)
  output_neg : bool;
}

val canonize : Truth_table.t -> Truth_table.t * transform
(** Canonical table and the transform that produced it. *)

val apply : transform -> Truth_table.t -> Truth_table.t
(** Apply a transform to a table (sanity/inverse-testing helper). *)

val signals_for : transform -> 'a array -> ('a -> 'a) -> 'a array * bool
(** [signals_for t inputs negate] rewires an implementation of the canonical
    function to compute the original: returns the operand array to feed the
    canonical implementation's inputs, plus whether to negate its output. *)
