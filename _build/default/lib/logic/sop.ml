type t = { n : int; cubes : Cube.t list }

let create n = { n; cubes = [] }
let num_vars t = t.n
let cubes t = t.cubes
let num_cubes t = List.length t.cubes

let add_cube t c =
  if Cube.num_vars c <> t.n then invalid_arg "Sop.add_cube: arity mismatch";
  { t with cubes = c :: t.cubes }

let of_cubes n cubes = List.fold_left add_cube (create n) cubes

let const n v = if v then of_cubes n [ Cube.create n ] else create n

let eval t a = List.exists (fun c -> Cube.eval c a) t.cubes

let to_truth_table t =
  List.fold_left
    (fun acc c -> Truth_table.bor acc (Cube.to_truth_table c))
    (Truth_table.const t.n false)
    t.cubes

(* Merge two cubes that agree everywhere except one variable where they hold
   opposite literals; the result drops that variable.  Returns None when the
   cubes are not mergeable. *)
let try_merge a b =
  let n = Cube.num_vars a in
  let diff = ref None and ok = ref true in
  for i = 0 to n - 1 do
    match (Cube.get a i, Cube.get b i) with
    | x, y when x = y -> ()
    | Cube.Pos, Cube.Neg | Cube.Neg, Cube.Pos -> (
        match !diff with None -> diff := Some i | Some _ -> ok := false)
    | _ -> ok := false
  done;
  match (!ok, !diff) with
  | true, Some i -> Some (Cube.set a i Cube.DC)
  | _ -> None

let remove_contained cubes =
  let rec go kept = function
    | [] -> List.rev kept
    | c :: rest ->
        if
          List.exists (fun d -> Cube.contains d c) kept
          || List.exists (fun d -> Cube.contains d c) rest
        then go kept rest
        else go (c :: kept) rest
  in
  go [] cubes

let minimize t =
  let rec fix cubes =
    let cubes = remove_contained (List.sort_uniq Cube.compare cubes) in
    let merged = ref [] and changed = ref false in
    let arr = Array.of_list cubes in
    let used = Array.make (Array.length arr) false in
    for i = 0 to Array.length arr - 1 do
      if not used.(i) then begin
        let current = ref arr.(i) in
        for j = i + 1 to Array.length arr - 1 do
          if not used.(j) then
            match try_merge !current arr.(j) with
            | Some m ->
                current := m;
                used.(j) <- true;
                changed := true
            | None -> ()
        done;
        merged := !current :: !merged
      end
    done;
    if !changed then fix !merged else List.rev !merged
  in
  { t with cubes = fix t.cubes }

let of_truth_table tt =
  let n = Truth_table.num_vars tt in
  let cubes = ref [] in
  for m = 0 to (1 lsl n) - 1 do
    if Truth_table.get tt m then begin
      let c = ref (Cube.create n) in
      for i = 0 to n - 1 do
        c := Cube.set !c i (if m land (1 lsl i) <> 0 then Cube.Pos else Cube.Neg)
      done;
      cubes := !c :: !cubes
    end
  done;
  minimize (of_cubes n !cubes)

let complement_naive t =
  (* ¬(c1 ∨ c2 ∨ …) = ¬c1 ∧ ¬c2 ∧ …, each ¬ci a union of single literals. *)
  let n = t.n in
  let lits_of_cube c =
    List.map
      (fun (i, pos) -> Cube.set (Cube.create n) i (if pos then Cube.Neg else Cube.Pos))
      (Cube.literals c)
  in
  let meet a b =
    let r = ref a in
    for i = 0 to n - 1 do
      match Cube.get b i with
      | Cube.DC -> ()
      | lit -> r := Cube.set !r i lit
    done;
    !r
  in
  let product acc cube_lits =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b -> if Cube.intersects a b then Some (meet a b) else None)
          cube_lits)
      acc
  in
  match t.cubes with
  | [] -> const n true
  | first :: rest ->
      let acc = List.fold_left (fun acc c -> product acc (lits_of_cube c)) (lits_of_cube first) rest in
      minimize (of_cubes n acc)

let num_literals t = List.fold_left (fun acc c -> acc + Cube.num_literals c) 0 t.cubes

let equal_semantics a b =
  a.n = b.n && Truth_table.equal (to_truth_table a) (to_truth_table b)

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf " + ")
    Cube.pp ppf t.cubes
