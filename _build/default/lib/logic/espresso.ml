(* Cube-list algebra in the espresso style.  Covers are manipulated as plain
   cube lists; the recursions are over the variable set, selecting the most
   binate variable first (the classic unate heuristic). *)

let cubes = Sop.cubes
let num_vars = Sop.num_vars

let is_universal c = Cube.num_literals c = 0

(* Positive/negative literal occurrence counts per variable. *)
let occurrence_counts n cover =
  let pos = Array.make n 0 and neg = Array.make n 0 in
  List.iter
    (fun c ->
      List.iter
        (fun (v, positive) ->
          if positive then pos.(v) <- pos.(v) + 1 else neg.(v) <- neg.(v) + 1)
        (Cube.literals c))
    cover;
  (pos, neg)

(* The variable occurring in both polarities with the highest total count;
   [None] when the cover is unate. *)
let most_binate n cover =
  let pos, neg = occurrence_counts n cover in
  let best = ref None in
  for v = 0 to n - 1 do
    if pos.(v) > 0 && neg.(v) > 0 then
      match !best with
      | Some (_, score) when pos.(v) + neg.(v) <= score -> ()
      | _ -> best := Some (v, pos.(v) + neg.(v))
  done;
  Option.map fst !best

(* Cofactor of a cube list w.r.t. literal (v = positive). *)
let cofactor_literal cover v positive =
  List.filter_map
    (fun c ->
      match Cube.get c v with
      | Cube.DC -> Some c
      | Cube.Pos -> if positive then Some (Cube.set c v Cube.DC) else None
      | Cube.Neg -> if positive then None else Some (Cube.set c v Cube.DC))
    cover

(* Cofactor w.r.t. a whole cube: used for containment checking. *)
let cofactor_cube cover q =
  List.filter_map
    (fun c ->
      if not (Cube.intersects c q) then None
      else begin
        let r = ref c in
        List.iter (fun (v, _) -> r := Cube.set !r v Cube.DC) (Cube.literals q);
        Some !r
      end)
    cover

let rec tautology_cubes n cover =
  if List.exists is_universal cover then true
  else
    match cover with
    | [] -> false
    | _ -> (
        match most_binate n cover with
        | None ->
            (* unate, no universal cube: cannot be a tautology *)
            false
        | Some v ->
            tautology_cubes n (cofactor_literal cover v true)
            && tautology_cubes n (cofactor_literal cover v false))

let tautology sop = tautology_cubes (num_vars sop) (cubes sop)

let rec complement_cubes n cover =
  if List.exists is_universal cover then []
  else
    match cover with
    | [] -> [ Cube.create n ]
    | [ c ] ->
        (* De Morgan on a single cube: one single-literal cube per literal *)
        List.map
          (fun (v, positive) ->
            Cube.set (Cube.create n) v (if positive then Cube.Neg else Cube.Pos))
          (Cube.literals c)
    | _ -> (
        match most_binate n cover with
        | Some v ->
            let c1 = complement_cubes n (cofactor_literal cover v true) in
            let c0 = complement_cubes n (cofactor_literal cover v false) in
            List.map (fun c -> Cube.set c v Cube.Pos) c1
            @ List.map (fun c -> Cube.set c v Cube.Neg) c0
        | None ->
            (* unate cover: split on any bound variable *)
            let v =
              match List.concat_map Cube.literals cover with
              | (v, _) :: _ -> v
              | [] -> assert false
            in
            let c1 = complement_cubes n (cofactor_literal cover v true) in
            let c0 = complement_cubes n (cofactor_literal cover v false) in
            List.map (fun c -> Cube.set c v Cube.Pos) c1
            @ List.map (fun c -> Cube.set c v Cube.Neg) c0)

let dedup cover =
  let rec keep acc = function
    | [] -> List.rev acc
    | c :: rest ->
        if
          List.exists (fun d -> Cube.contains d c) acc
          || List.exists (fun d -> Cube.contains d c) rest
        then keep acc rest
        else keep (c :: acc) rest
  in
  keep [] (List.sort_uniq Cube.compare cover)

let complement sop =
  Sop.of_cubes (num_vars sop) (dedup (complement_cubes (num_vars sop) (cubes sop)))

let covers sop cube = tautology_cubes (num_vars sop) (cofactor_cube (cubes sop) cube)

let expand sop =
  let n = num_vars sop in
  let off = complement_cubes n (cubes sop) in
  let clashes c = List.exists (fun d -> Cube.intersects c d) off in
  let expand_cube c =
    List.fold_left
      (fun c (v, _) ->
        let candidate = Cube.set c v Cube.DC in
        if clashes candidate then c else candidate)
      c (Cube.literals c)
  in
  Sop.of_cubes n (dedup (List.map expand_cube (cubes sop)))

let irredundant sop =
  let n = num_vars sop in
  let rec go kept = function
    | [] -> List.rev kept
    | c :: rest ->
        let others = List.rev_append kept rest in
        if others <> [] && tautology_cubes n (cofactor_cube others c) then go kept rest
        else go (c :: kept) rest
  in
  (* try to drop large covers' small cubes first: sort by literal count
     descending so specific cubes are considered for removal early *)
  let ordered =
    List.sort (fun a b -> compare (Cube.num_literals b) (Cube.num_literals a)) (cubes sop)
  in
  Sop.of_cubes n (go [] ordered)

let minimize ?(max_iters = 3) sop =
  let rec loop i current =
    if i >= max_iters then current
    else begin
      let next = irredundant (expand (Sop.minimize current)) in
      if Sop.num_cubes next = Sop.num_cubes current && Sop.num_literals next = Sop.num_literals current
      then next
      else loop (i + 1) next
    end
  in
  loop 0 sop
