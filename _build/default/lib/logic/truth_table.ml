type t = { n : int; bits : Bitvec.t }

let max_vars = 24

let check_arity n =
  if n < 0 || n > max_vars then invalid_arg "Truth_table: arity out of range"

let create n =
  check_arity n;
  { n; bits = Bitvec.create (1 lsl n) }

let num_vars t = t.n

let const n v =
  let t = create n in
  Bitvec.fill t.bits v;
  t

(* Precomputed alternating masks for variables living inside one word. *)
let var_masks =
  [| 0xAAAAAAAAAAAAAAAAL; 0xCCCCCCCCCCCCCCCCL; 0xF0F0F0F0F0F0F0F0L;
     0xFF00FF00FF00FF00L; 0xFFFF0000FFFF0000L; 0xFFFFFFFF00000000L |]

let var n i =
  check_arity n;
  if i < 0 || i >= n then invalid_arg "Truth_table.var: variable out of range";
  let t = create n in
  let words = Bitvec.num_words t.bits in
  if i < 6 then
    for w = 0 to words - 1 do
      Bitvec.set_word t.bits w var_masks.(i)
    done
  else begin
    (* Variable i toggles every 2^(i-6) words. *)
    let period = 1 lsl (i - 6) in
    for w = 0 to words - 1 do
      if w land period <> 0 then Bitvec.set_word t.bits w Int64.minus_one
    done
  end;
  t

let get t m = Bitvec.get t.bits m
let set t m v = Bitvec.set t.bits m v

let lift2 f a b =
  if a.n <> b.n then invalid_arg "Truth_table: arity mismatch";
  { n = a.n; bits = f a.bits b.bits }

let band = lift2 Bitvec.band
let bor = lift2 Bitvec.bor
let bxor = lift2 Bitvec.bxor
let bnot a = { a with bits = Bitvec.bnot a.bits }

let maj3 a b c =
  if a.n <> b.n || b.n <> c.n then invalid_arg "Truth_table: arity mismatch";
  { n = a.n; bits = Bitvec.maj3 a.bits b.bits c.bits }

let mux s a b =
  if s.n <> a.n || a.n <> b.n then invalid_arg "Truth_table: arity mismatch";
  { n = s.n; bits = Bitvec.mux s.bits a.bits b.bits }

let equal a b = a.n = b.n && Bitvec.equal a.bits b.bits

let count_ones t = Bitvec.popcount t.bits

let cofactor t i v =
  if i < 0 || i >= t.n then invalid_arg "Truth_table.cofactor";
  let r = create t.n in
  let size = 1 lsl t.n in
  let bit = 1 lsl i in
  for m = 0 to size - 1 do
    let src = if v then m lor bit else m land lnot bit in
    Bitvec.set r.bits m (Bitvec.get t.bits src)
  done;
  r

let depends_on t i = not (equal (cofactor t i false) (cofactor t i true))

let of_function n f =
  check_arity n;
  let t = create n in
  let a = Array.make n false in
  for m = 0 to (1 lsl n) - 1 do
    for i = 0 to n - 1 do
      a.(i) <- m land (1 lsl i) <> 0
    done;
    if f a then Bitvec.set t.bits m true
  done;
  t

let of_bits s =
  let len = String.length s in
  let n =
    let rec log2 acc v = if v <= 1 then acc else log2 (acc + 1) (v lsr 1) in
    log2 0 len
  in
  if len <> 1 lsl n then invalid_arg "Truth_table.of_bits: length not a power of two";
  let t = create n in
  String.iteri
    (fun m c ->
      match c with
      | '1' -> Bitvec.set t.bits m true
      | '0' -> ()
      | _ -> invalid_arg "Truth_table.of_bits: expected '0' or '1'")
    s;
  t

let to_bits t = String.init (1 lsl t.n) (fun m -> if get t m then '1' else '0')

let bitvec t = t.bits

let pp ppf t = Format.fprintf ppf "%s" (to_bits t)
