(** Technology-independent combinational netlist.

    The common intermediate representation produced by every parser
    (BLIF, ISCAS-89 bench, PLA, AIGER) and consumed by the MIG, AIG and BDD
    builders.  Nodes are created in topological order: a gate's fanins must
    already exist.  Gates [And]/[Or]/[Xor] are n-ary (n ≥ 1); [Not]/[Buf]
    take one fanin; [Maj] and [Mux] take exactly three; [Table] evaluates a
    {!Sop.t} cover over its fanins. *)

type id = int

type kind =
  | Const of bool
  | Input of int  (** primary input, payload = input index *)
  | And
  | Or
  | Xor
  | Nand
  | Nor
  | Xnor
  | Not
  | Buf
  | Maj
  | Mux  (** fanins = [| sel; when_true; when_false |] *)
  | Table of Sop.t

type t

val create : unit -> t

val add_input : t -> string -> id
(** Declare a primary input with the given (unique) name. *)

val const : t -> bool -> id
val gate : t -> kind -> id array -> id
(** Add a gate.  Raises [Invalid_argument] on bad arity or dangling fanin. *)

val and2 : t -> id -> id -> id
val or2 : t -> id -> id -> id
val xor2 : t -> id -> id -> id
val not_ : t -> id -> id
val maj : t -> id -> id -> id -> id
val mux : t -> id -> id -> id -> id
(** Convenience builders. *)

val add_output : t -> string -> id -> unit
(** Declare a primary output driven by a node. *)

val num_nodes : t -> int
val num_inputs : t -> int
val num_outputs : t -> int
val num_gates : t -> int
(** Nodes that are neither inputs nor constants. *)

val kind : t -> id -> kind
val fanins : t -> id -> id array
val input_names : t -> string array
val outputs : t -> (string * id) list
val input_id : t -> int -> id
(** Node id of the i-th primary input. *)

val find_input : t -> string -> id option

val simulate : t -> Bitvec.t array -> Bitvec.t array
(** [simulate t ins] evaluates the network on one pattern set per input
    (all widths equal) and returns one pattern set per output, in output
    declaration order. *)

val truth_tables : t -> Truth_table.t array
(** Exact output functions; only valid for ≤ {!Truth_table.max_vars}
    inputs. *)

val eval : t -> bool array -> bool array
(** Single-vector evaluation. *)

val extract_outputs : t -> int list -> t
(** [extract_outputs t which] copies the cones of the selected outputs
    (by output index) into a fresh network.  All primary inputs are kept,
    so input counts (and simulation vector shapes) are preserved. *)

val pp_stats : Format.formatter -> t -> unit
