(** Sum-of-products covers (disjunctions of {!Cube.t}).

    The representation used by PLA files and BLIF [.names] tables, plus a few
    light optimizations (single-cube containment, merging of distance-1
    cubes) that keep parsed covers small before conversion to a graph. *)

type t

val create : int -> t
(** The empty (constant-false) cover over [n] variables. *)

val num_vars : t -> int
val cubes : t -> Cube.t list
val num_cubes : t -> int
val add_cube : t -> Cube.t -> t

val of_cubes : int -> Cube.t list -> t

val const : int -> bool -> t
(** Constant false (empty cover) or true (single universal cube). *)

val eval : t -> bool array -> bool

val to_truth_table : t -> Truth_table.t

val of_truth_table : Truth_table.t -> t
(** Exact cover by true minterms, then compacted with {!minimize}. *)

val minimize : t -> t
(** Cheap two-rule minimization: remove contained cubes and repeatedly merge
    pairs of cubes that differ in exactly one bound literal.  Sound (the
    function is unchanged) but not minimal. *)

val complement_naive : t -> t
(** De Morgan expansion; exponential in the worst case, only used for small
    covers (PLA [.type fr] handling and tests). *)

val num_literals : t -> int
val equal_semantics : t -> t -> bool
val pp : Format.formatter -> t -> unit
