let max_vars = 5

type transform = { perm : int array; input_neg : bool array; output_neg : bool }

let eval tt x =
  let m = ref 0 in
  Array.iteri (fun i b -> if b then m := !m lor (1 lsl i)) x;
  Truth_table.get tt !m

let apply t tt =
  let n = Truth_table.num_vars tt in
  Truth_table.of_function n (fun y ->
      let x = Array.make n false in
      for i = 0 to n - 1 do
        x.(t.perm.(i)) <- y.(i)
      done;
      for v = 0 to n - 1 do
        if t.input_neg.(v) then x.(v) <- not x.(v)
      done;
      eval tt x <> t.output_neg)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          List.map (fun rest -> x :: rest) (permutations (List.filter (fun y -> y <> x) l)))
        l

let canonize tt =
  let n = Truth_table.num_vars tt in
  if n > max_vars then invalid_arg "Npn.canonize: too many variables";
  let perms = permutations (List.init n (fun i -> i)) in
  let best = ref None in
  List.iter
    (fun perm_list ->
      let perm = Array.of_list perm_list in
      for neg_mask = 0 to (1 lsl n) - 1 do
        let input_neg = Array.init n (fun v -> neg_mask land (1 lsl v) <> 0) in
        List.iter
          (fun output_neg ->
            let t = { perm; input_neg; output_neg } in
            let candidate = apply t tt in
            let key = Truth_table.to_bits candidate in
            match !best with
            | Some (best_key, _, _) when best_key <= key -> ()
            | _ -> best := Some (key, candidate, t))
          [ false; true ]
      done)
    perms;
  match !best with Some (_, canonical, t) -> (canonical, t) | None -> assert false

let signals_for t inputs negate =
  let n = Array.length t.perm in
  let operands =
    Array.init n (fun i ->
        let v = t.perm.(i) in
        if t.input_neg.(v) then negate inputs.(v) else inputs.(v))
  in
  (operands, t.output_neg)
