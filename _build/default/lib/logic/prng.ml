type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let of_string s =
  (* FNV-1a, 64-bit *)
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  { state = !h }

let next64 t =
  (* splitmix64 step *)
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
  v mod bound

let bool t = Int64.logand (next64 t) 1L = 1L

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
