(** Two-level minimization in the espresso style.

    A compact implementation of the classic loop over cube covers:

    - {!complement}: cover complement by unate-recursive Shannon expansion
      (polynomial in practice, unlike the naive De Morgan product);
    - {!tautology}: unate-recursive tautology check;
    - {!expand}: enlarge each cube literal-by-literal against the off-set;
    - {!irredundant}: drop cubes covered by the rest of the cover;
    - {!minimize}: EXPAND → IRREDUNDANT iterated to a fixpoint.

    Sound for any cover (the function is preserved — property-checked); not
    guaranteed minimum, like espresso itself.  Used to re-express parsed PLA
    covers and as the resynthesis engine of the cut-based MIG rewriter. *)

val tautology : Sop.t -> bool
(** Is the cover the constant-true function? *)

val complement : Sop.t -> Sop.t
(** Cover of the complement function. *)

val covers : Sop.t -> Cube.t -> bool
(** Does the cover contain every minterm of the cube? *)

val expand : Sop.t -> Sop.t
(** Maximally enlarge each cube against the off-set, then drop cubes that
    became contained in earlier ones. *)

val irredundant : Sop.t -> Sop.t
(** Remove cubes whose minterms are covered by the remaining cubes. *)

val minimize : ?max_iters:int -> Sop.t -> Sop.t
(** The full loop; also applies {!Sop.minimize}'s cheap merging. *)
