(** Constructors for well-defined benchmark functions.

    Every function here builds a {!Network.t} from scratch; these are the
    benchmarks whose mathematical definition is public (parity, one-counters,
    symmetric functions, wide muxes, ALU, clipper, adders, multipliers), used
    to realize the named suites of the paper exactly rather than
    approximately. *)

val parity : int -> Network.t
(** [parity n]: single output, XOR of [n] inputs. *)

val majority_n : int -> Network.t
(** [majority_n n] ([n] odd): 1 iff more than half of the inputs are 1,
    realized as a sorting-free adder-tree comparator. *)

val rd : int -> int -> Network.t
(** [rd n k]: the LGsynth "rdXY" family — [k]-bit binary count of ones among
    [n] inputs (rd53 = [rd 5 3], rd73 = [rd 7 3], rd84 = [rd 8 4]). *)

val sym_range : int -> int -> int -> Network.t
(** [sym_range n lo hi]: symmetric function, 1 iff the number of ones among
    [n] inputs lies in [\[lo, hi\]] (9sym = [sym_range 9 3 6]). *)

val mux_tree : int -> Network.t
(** [mux_tree k]: a [2^k:1] multiplexer with [k] select and [2^k] data inputs
    (cm150a-style; [mux_tree 4] has 20 inputs) plus one enable input to match
    the 21-input benchmark. *)

val alu4 : unit -> Network.t
(** 74181-style 4-bit ALU slice: inputs a\[4\], b\[4\], carry-in, mode and
    4 select lines (14 inputs); outputs f\[4\], carry-out, propagate,
    generate, a=b (8 outputs). *)

val clip : unit -> Network.t
(** Saturating clipper: 9-bit signed input clipped to 5-bit signed output. *)

val ripple_adder : int -> Network.t
(** [ripple_adder w]: [w]-bit adder with carry-in; outputs sum and
    carry-out. *)

val carry_lookahead_adder : int -> Network.t
(** [carry_lookahead_adder w]: same function as {!ripple_adder} but with
    logarithmic-depth parallel-prefix carries. *)

val multiplier : int -> Network.t
(** [multiplier w]: [w×w]-bit array multiplier, [2w] outputs. *)

val comparator : int -> Network.t
(** [comparator w]: unsigned [a < b], [a = b], [a > b]. *)

val full_adder : unit -> Network.t
(** 3 inputs, outputs sum and carry — the quickstart example circuit. *)

val square : int -> int -> Network.t
(** [square w out_bits]: the low [out_bits] bits of the square of a [w]-bit
    input (the arithmetic profile of the 5xp1 benchmark: [square 7 10]). *)

val cordic_stage : int -> int -> Network.t
(** [cordic_stage w shift]: one CORDIC micro-rotation on a [w]-bit
    coordinate — inputs x\[w\], y\[w\] and a direction bit d; output
    [x + (y >> shift)] when [d] and [x - (y >> shift)] otherwise
    ([cordic_stage 11 2] has the 23 inputs of the cordic benchmark). *)

val t481 : unit -> Network.t
(** The 16-input t481 benchmark in its known decomposed form:
    a 2-level composition of 4-input subfunctions (documented in the body). *)
