(** BDD→RRAM synthesis — the baseline of [11] (Chakraborti et al., IDT 2014).

    Every BDD node is a 2:1 multiplexer [f = x·h + ¬x·l] realized with
    material implication.  After a two-step prologue that copies each used
    input variable into a device and computes its complement, each node
    costs one parallel load step plus five IMP steps:

    {v
      load: rA ← h, rB ← l, rC ← 0, rD ← 0
      s1:   rA ← x  IMP rA     (= x → h)
      s2:   rB ← ¬x IMP rB     (= ¬x → l)
      s3:   rC ← rB IMP rC     (= ¬rB)
      s4:   rC ← rA IMP rC     (= ¬rA ∨ ¬rB = ¬f)
      s5:   rD ← rC IMP rD     (= f)
    v}

    Two scheduling modes:
    - [`Sequential] — one node at a time, steps ≈ 6·nodes (the literal
      reading of [11]);
    - [`Levelized]  — all nodes of one variable level run in parallel,
      steps ≈ 6·(occupied levels), a stronger variant of the baseline.

    Either way the step count grows with the BDD (node count or variable
    count), while the MIG flow grows with MIG depth — the crossover the
    paper's Table III demonstrates. *)

type mode = [ `Sequential | `Levelized ]

type result = {
  program : Program.t;
  bdd_nodes : int;
  measured_rrams : int;
  measured_steps : int;
}

val compile : ?mode:mode -> Bdd_lib.Bdd_of_network.result -> result
(** The program's inputs are the {e network's} inputs (the permutation is
    applied internally). *)
