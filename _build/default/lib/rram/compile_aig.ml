open Aig_lib

type mode = [ `Sequential | `Levelized ]

type result = {
  program : Program.t;
  aig_nodes : int;
  measured_rrams : int;
  measured_steps : int;
}

let compile ?(mode = `Sequential) aig =
  let num_inputs = Aig.num_pis aig in
  let b = Program.Builder.create ~num_inputs in
  let order = Aig.topo_order aig in
  let aig_nodes = List.length order in
  (* Reference counts for result liveness (outputs pin their drivers). *)
  let refcount = Hashtbl.create 997 in
  let bump s =
    let n = Aig.node_of s in
    if Aig.kind aig n = Aig.And then
      Hashtbl.replace refcount n (1 + try Hashtbl.find refcount n with Not_found -> 0)
  in
  List.iter
    (fun n ->
      let f0, f1 = Aig.fanins aig n in
      bump f0;
      bump f1)
    order;
  Array.iter bump (Aig.pos aig);
  (* Prologue: every primary input is staged into a device once, so it can
     serve as an implication source. *)
  let input_reg = Array.init num_inputs (fun _ -> Program.Builder.alloc b) in
  Program.Builder.push_step b
    (List.init num_inputs (fun i -> Isa.Load (input_reg.(i), Isa.Input i)));
  let result_reg = Hashtbl.create 997 in
  (* Plain-value register of a node (not a signal). *)
  let node_reg n =
    match Aig.kind aig n with
    | Aig.Pi k -> input_reg.(k)
    | Aig.And -> Hashtbl.find result_reg n
    | Aig.Const -> invalid_arg "Compile_aig: constant fanin should be folded"
  in
  let release s =
    let n = Aig.node_of s in
    if Aig.kind aig n = Aig.And then begin
      let c = Hashtbl.find refcount n - 1 in
      Hashtbl.replace refcount n c;
      if c = 0 then Program.Builder.free b (Hashtbl.find result_reg n)
    end
  in
  (* Emit one AND node; returns (load, pre_inv, s1, s2, s3, temps) where the
     step slots may be empty lists. *)
  let emit_node n =
    let f0, f1 = Aig.fanins aig n in
    (* prefer a complemented fanin in the b role: its ¬b is a plain copy *)
    let a_sig, b_sig = if Aig.is_compl f0 && not (Aig.is_compl f1) then (f1, f0) else (f0, f1) in
    let r1 = Program.Builder.alloc b in
    let r2 = Program.Builder.alloc b in
    let load = ref [ Isa.Reset r2 ] in
    let temps = ref [ r1 ] in
    (* r1 must end holding ¬b *)
    let s1 =
      if Aig.is_compl b_sig then begin
        (* ¬b = plain source value: a direct copy during loading *)
        load := Isa.Load (r1, Isa.Reg (node_reg (Aig.node_of b_sig))) :: !load;
        []
      end
      else begin
        load := Isa.Reset r1 :: !load;
        [ Isa.Imp { src = node_reg (Aig.node_of b_sig); dst = r1 } ]
      end
    in
    (* a must be available as a register holding its value *)
    let pre_inv = ref [] in
    let a_reg =
      if Aig.is_compl a_sig then begin
        let rx = Program.Builder.alloc b in
        temps := rx :: !temps;
        load := Isa.Reset rx :: !load;
        pre_inv := [ Isa.Imp { src = node_reg (Aig.node_of a_sig); dst = rx } ];
        rx
      end
      else node_reg (Aig.node_of a_sig)
    in
    let s2 = [ Isa.Imp { src = a_reg; dst = r1 } ] in
    let s3 = [ Isa.Imp { src = r1; dst = r2 } ] in
    Hashtbl.replace result_reg n r2;
    (List.rev !load, !pre_inv, s1, s2, s3, !temps)
  in
  (match mode with
  | `Sequential ->
      List.iter
        (fun n ->
          let load, pre_inv, s1, s2, s3, temps = emit_node n in
          Program.Builder.push_step b load;
          Program.Builder.push_step b pre_inv;
          Program.Builder.push_step b s1;
          Program.Builder.push_step b s2;
          Program.Builder.push_step b s3;
          List.iter (Program.Builder.free b) temps;
          let f0, f1 = Aig.fanins aig n in
          release f0;
          release f1)
        order
  | `Levelized ->
      let levels, _depth = Aig.levels aig in
      let by_level = Hashtbl.create 97 in
      List.iter
        (fun n ->
          let l = levels.(n) in
          Hashtbl.replace by_level l (n :: (try Hashtbl.find by_level l with Not_found -> [])))
        order;
      let max_level = List.fold_left (fun acc n -> max acc levels.(n)) 0 order in
      for l = 1 to max_level do
        match Hashtbl.find_opt by_level l with
        | None -> ()
        | Some nodes ->
            let nodes = List.rev nodes in
            let slots = Array.make 5 [] in
            let temps = ref [] in
            List.iter
              (fun n ->
                let load, pre_inv, s1, s2, s3, t = emit_node n in
                slots.(0) <- slots.(0) @ load;
                slots.(1) <- slots.(1) @ pre_inv;
                slots.(2) <- slots.(2) @ s1;
                slots.(3) <- slots.(3) @ s2;
                slots.(4) <- slots.(4) @ s3;
                temps := t @ !temps)
              nodes;
            Array.iter (fun s -> Program.Builder.push_step b s) slots;
            List.iter (Program.Builder.free b) !temps;
            List.iter
              (fun n ->
                let f0, f1 = Aig.fanins aig n in
                release f0;
                release f1)
              nodes
      done);
  (* Outputs: complemented drivers get a shared final inversion. *)
  let final_preset = ref [] and final_inv = ref [] in
  let memo = Hashtbl.create 17 in
  let outputs =
    Array.map
      (fun s ->
        match Hashtbl.find_opt memo s with
        | Some o -> o
        | None ->
            let n = Aig.node_of s and c = Aig.is_compl s in
            let invert_of src =
              let inv = Program.Builder.alloc b in
              final_preset := Isa.Reset inv :: !final_preset;
              final_inv := Isa.Imp { src; dst = inv } :: !final_inv;
              Isa.Reg inv
            in
            let o =
              match Aig.kind aig n with
              | Aig.Const -> Isa.Const c
              | Aig.Pi k -> if c then invert_of input_reg.(k) else Isa.Input k
              | Aig.And ->
                  if c then invert_of (Hashtbl.find result_reg n)
                  else Isa.Reg (Hashtbl.find result_reg n)
            in
            Hashtbl.replace memo s o;
            o)
      (Aig.pos aig)
  in
  Program.Builder.push_step b !final_preset;
  Program.Builder.push_step b !final_inv;
  let program = Program.Builder.finish b ~outputs in
  {
    program;
    aig_nodes;
    measured_rrams = program.Program.num_regs;
    measured_steps = Program.num_steps program;
  }
