(** Crossbar placement (extension).

    Fig. 3 of the paper realizes a gate as devices sharing one horizontal
    nanowire through a load resistor: the devices of one gate must sit on
    the same row, and a row executes one gate at a time.  This module
    assigns the registers of a compiled program to a physical
    rows × columns array under that constraint:

    - registers that interact through {!Isa.Imp} pulses (p and q share the
      nanowire) are grouped into row-clusters by union-find;
    - clusters are packed onto rows first-fit-decreasing;
    - {!Isa.Maj_pulse} and {!Isa.Load} are driven through the top
      electrodes, so they impose no row constraint.

    The result reports the array geometry a controller would need —
    rows, row width (columns), utilization.

    Caveat: the compiler's register reuse makes one physical device serve
    many gates over time, so the transitive IMP-interaction clusters can
    merge into few long rows (IMP realization) or none at all (MAJ programs
    have no IMP pulses, so every device is row-free).  The numbers are an
    honest worst case for the given program; row-aware register allocation
    that splits clusters is future work. *)

type t = {
  rows : int;
  columns : int;  (** width of the widest row *)
  row_of : int array;  (** register -> row *)
  column_of : int array;  (** register -> column within its row *)
  utilization : float;  (** registers / (rows × columns) *)
}

val place : Program.t -> t

val validate : Program.t -> t -> (unit, string) result
(** Every IMP pulse's source and destination must share a row, and no two
    registers may share a (row, column) site. *)

val pp : Format.formatter -> t -> unit
